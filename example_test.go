package nvrel_test

import (
	"fmt"
	"log"

	"nvrel"
)

// Example reproduces the paper's headline comparison.
func Example() {
	four, err := nvrel.BuildFourVersion(nvrel.DefaultFourVersion())
	if err != nil {
		log.Fatal(err)
	}
	e4, err := four.ExpectedPaperReliability()
	if err != nil {
		log.Fatal(err)
	}
	six, err := nvrel.BuildSixVersion(nvrel.DefaultSixVersion())
	if err != nil {
		log.Fatal(err)
	}
	e6, err := six.ExpectedPaperReliability()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E[R_4v] = %.7f\n", e4)
	fmt.Printf("E[R_6v] = %.8f\n", e6)
	// Output:
	// E[R_4v] = 0.8223487
	// E[R_6v] = 0.94064835
}

// ExampleModel_StateDistribution shows how the six-version system splits
// its time across module-population states.
func ExampleModel_StateDistribution() {
	six, err := nvrel.BuildSixVersion(nvrel.DefaultSixVersion())
	if err != nil {
		log.Fatal(err)
	}
	states, err := six.StateDistribution()
	if err != nil {
		log.Fatal(err)
	}
	top := states[0]
	fmt.Printf("modal state: %d healthy, %d compromised, %d down\n",
		top.Healthy, top.Compromised, top.Down)
	// Output:
	// modal state: 5 healthy, 1 compromised, 0 down
}

// ExampleBuildSixVersion_customInterval solves the rejuvenation model at a
// non-default clock interval.
func ExampleBuildSixVersion_customInterval() {
	p := nvrel.DefaultSixVersion()
	p.RejuvenationInterval = 450 // the paper's reported optimum region
	six, err := nvrel.BuildSixVersion(p)
	if err != nil {
		log.Fatal(err)
	}
	e, err := six.ExpectedPaperReliability()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E[R_6v at 450 s] = %.8f\n", e)
	// Output:
	// E[R_6v at 450 s] = 0.94349525
}

// ExampleDependentReliability evaluates a custom nine-version design with
// the generalized dependent-error model.
func ExampleDependentReliability() {
	rf, err := nvrel.DependentReliability(
		nvrel.ReliabilityParams{P: 0.08, PPrime: 0.5, Alpha: 0.5},
		nvrel.Scheme{N: 9, F: 2, R: 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R(9,0,0) = %.6f\n", rf(9, 0, 0))
	// Output:
	// R(9,0,0) = 0.959375
}

// ExampleBurstyAttacker compares steady and bursty adversaries at the
// same average intensity.
func ExampleBurstyAttacker() {
	bursty, err := nvrel.BurstyAttacker(1.0/1523, 0.1, 3000)
	if err != nil {
		log.Fatal(err)
	}
	m, err := nvrel.BuildSixVersionAttacked(nvrel.DefaultSixVersion(), bursty)
	if err != nil {
		log.Fatal(err)
	}
	e, err := m.ExpectedPaperReliability()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E[R_6v under 10%%-duty attacks] = %.6f\n", e)
	// Output:
	// E[R_6v under 10%-duty attacks] = 0.929842
}
