package nvrel_test

// One benchmark per table/figure of the paper's evaluation (§V), plus
// benchmarks for the solver substrates. Each evaluation benchmark
// regenerates the corresponding artifact end to end (model construction,
// reachability, steady-state solve, reward evaluation) and reports the key
// output as a benchmark metric, so `go test -bench` doubles as the
// reproduction harness:
//
//	BenchmarkHeadlineFourVersion  — §V-B E[R_4v] (paper: 0.8233477)
//	BenchmarkHeadlineSixVersion   — §V-B E[R_6v] (paper: 0.93464665)
//	BenchmarkTableIIValidation    — Table II parameter validation
//	BenchmarkFig3                 — Figure 3 interval sweep
//	BenchmarkFig4a..BenchmarkFig4d — Figure 4 sensitivity sweeps
//	BenchmarkSimulationCrossCheck — DES cross-validation (E8)
//	BenchmarkOptimalInterval      — optimal-interval search (E9)

import (
	"testing"

	"nvrel"
	"nvrel/internal/experiments"
	"nvrel/internal/percept"
)

func BenchmarkHeadlineFourVersion(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		m, err := nvrel.BuildFourVersion(nvrel.DefaultFourVersion())
		if err != nil {
			b.Fatal(err)
		}
		last, err = m.ExpectedPaperReliability()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last, "E[R_4v]")
}

func BenchmarkHeadlineSixVersion(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		m, err := nvrel.BuildSixVersion(nvrel.DefaultSixVersion())
		if err != nil {
			b.Fatal(err)
		}
		last, err = m.ExpectedPaperReliability()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last, "E[R_6v]")
}

func BenchmarkTableIIValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p4 := nvrel.DefaultFourVersion()
		if err := p4.Validate(false); err != nil {
			b.Fatal(err)
		}
		p6 := nvrel.DefaultSixVersion()
		if err := p6.Validate(true); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkSweep(b *testing.B, run func() (nvrel.Series, error), metric func(nvrel.Series) (float64, string)) {
	b.Helper()
	var last nvrel.Series
	for i := 0; i < b.N; i++ {
		s, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	if v, name := metric(last); name != "" {
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig3(b *testing.B) {
	benchmarkSweep(b,
		func() (nvrel.Series, error) { return nvrel.Fig3(nil) },
		func(s nvrel.Series) (float64, string) {
			best, err := s.Best()
			if err != nil {
				return 0, ""
			}
			return best.X, "best-interval-s"
		})
}

func BenchmarkFig4a(b *testing.B) {
	benchmarkSweep(b,
		func() (nvrel.Series, error) { return nvrel.Fig4a(nil) },
		func(s nvrel.Series) (float64, string) {
			if xs := s.Crossovers(); len(xs) > 0 {
				return xs[0], "low-crossover-s"
			}
			return 0, ""
		})
}

func BenchmarkFig4b(b *testing.B) {
	benchmarkSweep(b,
		func() (nvrel.Series, error) { return nvrel.Fig4b(nil) },
		func(s nvrel.Series) (float64, string) {
			first, last := s.Points[0], s.Points[len(s.Points)-1]
			return 100 * (first.SixVersion - last.SixVersion) / first.SixVersion, "6v-drop-pct"
		})
}

func BenchmarkFig4c(b *testing.B) {
	benchmarkSweep(b,
		func() (nvrel.Series, error) { return nvrel.Fig4c(nil) },
		func(s nvrel.Series) (float64, string) {
			first, last := s.Points[0], s.Points[len(s.Points)-1]
			return 100 * (first.SixVersion - last.SixVersion) / first.SixVersion, "6v-drop-pct"
		})
}

func BenchmarkFig4d(b *testing.B) {
	benchmarkSweep(b,
		func() (nvrel.Series, error) { return nvrel.Fig4d(nil) },
		func(s nvrel.Series) (float64, string) {
			if xs := s.Crossovers(); len(xs) > 0 {
				return xs[0], "break-even-pprime"
			}
			return 0, ""
		})
}

func BenchmarkSimulationCrossCheck(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		est, err := percept.Replicate(percept.Config{
			Params:       nvrel.DefaultSixVersion(),
			Rejuvenation: true,
			Horizon:      4e5,
			WarmUp:       2e4,
		}, 4, uint64(9000+i))
		if err != nil {
			b.Fatal(err)
		}
		last = est.AnalyticReward.Mean
	}
	b.ReportMetric(last, "sim-E[R_6v]")
}

func BenchmarkOptimalInterval(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		best, err := experiments.RunOptimize(100, 3000, 10)
		if err != nil {
			b.Fatal(err)
		}
		last = best.Interval
	}
	b.ReportMetric(last, "optimal-interval-s")
}

func BenchmarkTransientCurves(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		points, err := nvrel.Transient(nil)
		if err != nil {
			b.Fatal(err)
		}
		last = points[len(points)-1].SixVersion
	}
	b.ReportMetric(last, "E[R_6v](t-end)")
}

func BenchmarkAblations(b *testing.B) {
	var rows []nvrel.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = nvrel.Ablations()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "variants")
}

func BenchmarkArchitectureExplorer(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := nvrel.Architectures(9)
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, r := range rows {
			if r.Reliability > best {
				best = r.Reliability
			}
		}
	}
	b.ReportMetric(best, "best-E[R]")
}

func BenchmarkSurvivalCurves(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := nvrel.Survival(120, nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].SixVersion
	}
	b.ReportMetric(last, "P(survive-4h)")
}

func BenchmarkAttackBurstiness(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAttacker(nil)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].SixVersion
	}
	b.ReportMetric(last, "E[R_6v]-bursty")
}

func BenchmarkSensitivity(b *testing.B) {
	var count int
	for i := 0; i < b.N; i++ {
		es, err := experiments.RunSensitivity()
		if err != nil {
			b.Fatal(err)
		}
		count = len(es)
	}
	b.ReportMetric(float64(count), "parameters")
}

func BenchmarkOutage(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOutage(4, uint64(500+i))
		if err != nil {
			b.Fatal(err)
		}
		last = res.FourVersionExact
	}
	b.ReportMetric(last/86400, "4v-MTTO-days")
}

func BenchmarkProtocolRounds(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunProtocol(500, uint64(700+i))
		if err != nil {
			b.Fatal(err)
		}
		last = res.Tally.Safety()
	}
	b.ReportMetric(last, "protocol-safety")
}

func BenchmarkTransientPropagation(b *testing.B) {
	m, err := nvrel.BuildSixVersion(nvrel.DefaultSixVersion())
	if err != nil {
		b.Fatal(err)
	}
	rf, err := m.PaperReliability()
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{0, 600, 3600, 86400}
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		rs, err := m.TransientReliability(rf, times)
		if err != nil {
			b.Fatal(err)
		}
		last = rs[len(rs)-1]
	}
	b.ReportMetric(last, "E[R](1d)")
}

func BenchmarkVotingSchemes(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunVoting(2, 2e5, uint64(100+i))
		if err != nil {
			b.Fatal(err)
		}
		last = rows[0].Safety
	}
	b.ReportMetric(last, "threshold-safety")
}
