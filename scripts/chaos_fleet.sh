#!/usr/bin/env bash
# Fleet chaos gate: a 2-peer sharded fleet where the entry peer's
# OUTBOUND proxy hops ride a seeded faultinject chaos transport
# (drops, stalls, synthesized 503s, truncated bodies), plus a SIGKILL +
# restart of the other peer mid-run. The load generator drives the
# chaotic entry point with a zero-client-error gate and an availability
# SLO: every fault must be absorbed by retry, circuit breaking, or a
# degraded-mode local solve — never surfaced to a client. Artifacts:
# chaos_fleet.json (loadgen report), chaos_plan.json, chaos_peer_*.log,
# chaos_fleet_metrics.prom.
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p artifacts

echo "== chaos fleet: build"
go build -o artifacts/nvrel ./cmd/nvrel

echo "== chaos fleet: seeded transport fault plan"
cat >artifacts/chaos_plan.json <<'EOF'
{
  "seed": 7,
  "faults": [
    { "site": "transport.drop", "after": 3, "count": 4 },
    { "site": "transport.500", "after": 12, "count": 4 },
    { "site": "transport.delay", "mode": "stall", "delay_ms": 150, "after": 20, "count": 3 },
    { "site": "transport.partial", "after": 26, "count": 3 }
  ]
}
EOF

read -r port_a port_b < <(python3 - <<'EOF'
import socket
socks = []
for _ in range(2):
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    socks.append(s)
print(socks[0].getsockname()[1], socks[1].getsockname()[1])
for s in socks:
    s.close()
EOF
)
url_a="http://127.0.0.1:$port_a"
url_b="http://127.0.0.1:$port_b"
peers="$url_a,$url_b"

echo "== chaos fleet: boot pair (chaos transport on peer_a)"
artifacts/nvrel serve -addr "127.0.0.1:$port_a" -peers "$peers" -self "$url_a" \
    -chaos-plan artifacts/chaos_plan.json \
    -peer-retries 2 -breaker-cooldown 1s -probe-interval 500ms \
    >artifacts/chaos_peer_a.log 2>&1 &
peer_a_pid=$!
artifacts/nvrel serve -addr "127.0.0.1:$port_b" -peers "$peers" -self "$url_b" \
    >artifacts/chaos_peer_b.log 2>&1 &
peer_b_pid=$!
cleanup() {
    kill "$peer_a_pid" "$peer_b_pid" 2>/dev/null || true
    wait "$peer_a_pid" "$peer_b_pid" 2>/dev/null || true
}
trap cleanup EXIT

for url in "$url_a" "$url_b"; do
    ready=0
    for _ in $(seq 1 100); do
        if curl -fsS -o /dev/null "$url/readyz" 2>/dev/null; then
            ready=1
            break
        fi
        sleep 0.1
    done
    if [[ "$ready" != 1 ]]; then
        echo "chaos fleet: peer $url never turned ready" >&2
        cat artifacts/chaos_peer_a.log artifacts/chaos_peer_b.log >&2
        exit 1
    fi
done
if ! grep -q 'chaos plan .* armed' artifacts/chaos_peer_a.log; then
    echo "chaos fleet: peer_a did not arm the chaos plan" >&2
    cat artifacts/chaos_peer_a.log >&2
    exit 1
fi

echo "== chaos fleet: loadgen through the chaotic entry + peer kill/restart"
artifacts/nvrel loadgen -url "$url_a" -duration 8s -concurrency 4 \
    -mix 0.5,0.3,0.2 -max-error-rate 0 -slo-availability 0.999 \
    -o artifacts/chaos_fleet.json >artifacts/chaos_fleet.log 2>&1 &
lg_pid=$!
sleep 2
kill -9 "$peer_b_pid"
wait "$peer_b_pid" 2>/dev/null || true
echo "   peer_b SIGKILLed mid-run"
sleep 2
artifacts/nvrel serve -addr "127.0.0.1:$port_b" -peers "$peers" -self "$url_b" \
    >>artifacts/chaos_peer_b.log 2>&1 &
peer_b_pid=$!
echo "   peer_b restarted"
lg_rc=0
wait "$lg_pid" || lg_rc=$?
cat artifacts/chaos_fleet.log
if [[ "$lg_rc" != 0 ]]; then
    echo "chaos fleet: loadgen gate failed (exit $lg_rc): a fault escaped to a client" >&2
    exit 1
fi

echo "== chaos fleet: assert the faults were absorbed, not avoided"
curl -fsS "$url_a/metrics" >artifacts/chaos_fleet_metrics.prom
for counter in fleet_degraded_solve fleet_breaker_open; do
    if ! awk -v c="$counter" '$1 == c { if ($2 + 0 > 0) found = 1 } END { exit !found }' \
        artifacts/chaos_fleet_metrics.prom; then
        echo "chaos fleet: $counter did not move on the chaotic peer" >&2
        grep '^fleet_' artifacts/chaos_fleet_metrics.prom >&2 || true
        exit 1
    fi
done
python3 - artifacts/chaos_fleet.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["errors"] == 0, f"client saw {doc['errors']} errors"
assert doc.get("degraded", 0) > 0, "no degraded answers: the chaos never bit"
burn = doc.get("slo", {}).get("availability_burn_rate", 0)
assert burn < 1, f"availability budget burned at {burn}x"
print(f"   {doc['total_requests']} requests, 0 errors, {doc['degraded']} degraded, burn {burn:.2f}x")
EOF

echo "== chaos fleet: restarted peer rejoins"
reconverged=0
for _ in $(seq 1 100); do
    if curl -fsS "$url_a/healthz" 2>/dev/null |
        python3 -c '
import json, sys
doc = json.load(sys.stdin)
peers = {p["peer"]: p for p in doc.get("peers", [])}
sys.argv[1] in peers or sys.exit(1)
p = peers[sys.argv[1]]
sys.exit(0 if p["healthy"] and p["breaker"] == "closed" else 1)
' "$url_b" 2>/dev/null; then
        reconverged=1
        break
    fi
    sleep 0.2
done
if [[ "$reconverged" != 1 ]]; then
    echo "chaos fleet: restarted peer never re-converged" >&2
    curl -fsS "$url_a/healthz" >&2 || true
    exit 1
fi
echo "chaos fleet: all green"
