#!/usr/bin/env bash
# Repo health gate: vet, formatting, and the full test suite under the
# race detector. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all green"
