#!/usr/bin/env bash
# Repo health gate: vet, formatting, and the full test suite under the
# race detector. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "== no-alloc benchmark guards (-benchtime=1x)"
bench_out=$(go test -run '^$' -bench 'NoAlloc' -benchmem -benchtime=1x ./...)
echo "$bench_out"
if ! echo "$bench_out" | awk '/allocs\/op/ { if ($(NF-1)+0 != 0) { print "nonzero allocs: " $0 > "/dev/stderr"; bad = 1 } } END { exit bad }'; then
    echo "no-alloc guard: a NoAlloc benchmark allocated; see lines above" >&2
    exit 1
fi

echo "== bench + solver-metrics artifacts (reps=1)"
mkdir -p artifacts
go run ./cmd/nvrel -metrics artifacts/metrics.json bench -reps 1 -o artifacts/BENCH_ci.json
# The snapshot must carry live solver counters: GS sweeps (via the
# gs-sparse probe), restamps and plan memo hits (model-cache sweeps), and
# a worker-utilization reading from the parallel pool.
for metric in linalg.gs.sweeps petri.restamp petri.plan.memo_hit parallel.pool.utilization; do
    if ! grep -q "\"$metric\":" artifacts/metrics.json; then
        echo "metrics artifact: $metric missing" >&2
        exit 1
    fi
    if grep -Eq "\"$metric\": 0,?$" artifacts/metrics.json; then
        echo "metrics artifact: $metric is zero" >&2
        exit 1
    fi
done

echo "== bench regression gate vs checked-in baseline"
# Wall time crosses machine shapes, so the CI time gate is a sanity bound
# (catches algorithmic blowups, not percent-level drift); alloc counts
# are stable across machines, so that gate is tight. Local runs on the
# baseline machine can use the default 1.25x via:
#   go run ./cmd/nvrel bench -reps 3 -o new.json && \
#   go run ./cmd/nvrel bench -compare BENCH_sweeps.json new.json
go run ./cmd/nvrel bench -compare -time-ratio 25 -alloc-ratio 1.5 \
    BENCH_sweeps.json artifacts/BENCH_ci.json | tee artifacts/bench_compare.txt

echo "== warm-start gate: iteration reduction + cold/warm agreement"
# The command exits non-zero unless the reference sweep's warm pass needs
# <= 0.6x the cold iterations and every warm distribution agrees with its
# cold counterpart to 1e-12 (see DESIGN.md section 10).
go run ./cmd/nvrel -metrics artifacts/metrics_warmstart.json \
    bench -warmstart -o artifacts/BENCH_warmstart.json
# The engine must actually have warmed: registry hits and accepted seeds.
for metric in warmstart.lookup.hit warmstart.insert linalg.seed.warm; do
    if ! grep -q "\"$metric\":" artifacts/metrics_warmstart.json; then
        echo "warmstart gate: $metric missing from metrics" >&2
        exit 1
    fi
    if grep -Eq "\"$metric\": 0,?$" artifacts/metrics_warmstart.json; then
        echo "warmstart gate: $metric is zero" >&2
        exit 1
    fi
done

echo "== serve daemon smoke test (incl. 2-peer fleet stage)"
./scripts/serve_smoke.sh
# The smoke's fleet stage writes the merged-cluster artifacts CI uploads.
for f in artifacts/fleet.json artifacts/fleet_trace.json; do
    if [[ ! -s "$f" ]]; then
        echo "serve smoke: expected fleet artifact $f missing or empty" >&2
        exit 1
    fi
done

echo "== loadgen gate: latency, cache hit rate, speedup, SLO burn"
# A repeat-heavy mix against a self-served daemon: cached answers must be
# at least 10x faster than cold solves at the median, with zero errors.
# The p99 bound is a cross-machine sanity ceiling (like -time-ratio
# above), not a percent-level SLO; the SLO gates assert the burn-rate
# math on a run that must have zero errors and nothing near 5s.
go run ./cmd/nvrel loadgen -self-serve -duration 5s -concurrency 3 \
    -mix 0.9,0.07,0.03 -max-p99 5s -max-error-rate 0 -min-hit-rate 0.5 \
    -min-p50-speedup 10 -slo-availability 0.999 -slo-p99 5s \
    -o artifacts/loadgen.json
if ! grep -q '"hit_speedup_p50"' artifacts/loadgen.json; then
    echo "loadgen gate: artifact missing hit_speedup_p50" >&2
    exit 1
fi
if ! grep -q '"slo"' artifacts/loadgen.json; then
    echo "loadgen gate: artifact missing slo block" >&2
    exit 1
fi

echo "== shadow gate: N-version self-check at rate 1.0 + audit replay"
# Every solve of a self-served burst is re-solved on an independent
# solver rung (DESIGN.md section 14): at least one comparison must be
# sampled, none may diverge, and the burst must stay inside the same p99
# ceiling as the loadgen gate above. The flight-recorder dump is then
# replayed through `nvrel audit`, whose -max-diverge-rate 0 gate exits
# non-zero on any divergence.
go run ./cmd/nvrel loadgen -self-serve -duration 3s -concurrency 2 \
    -mix 0.5,0.3,0.2 -shadow-rate 1.0 -min-shadow-sampled 1 \
    -max-shadow-diverge 0 -max-p99 5s -max-error-rate 0 \
    -flight-out artifacts/flight.json -o artifacts/shadow_loadgen.json
if ! grep -q '"sampled"' artifacts/shadow_loadgen.json; then
    echo "shadow gate: loadgen report missing shadow block" >&2
    exit 1
fi
go run ./cmd/nvrel audit -flight artifacts/flight.json \
    -max-diverge-rate 0 -o artifacts/audit.json
if ! grep -q '"diverge_rate": 0' artifacts/audit.json; then
    echo "shadow gate: audit report disagrees with its exit status" >&2
    exit 1
fi

echo "== chaos gate: fault plan over the standard sweeps"
go run ./cmd/nvrel chaos -steps 2 -o artifacts/chaos.json
# The command already exits non-zero when a fault escapes containment;
# the grep is a belt-and-braces check that the report agrees.
if ! grep -q '"silent_wrong": 0' artifacts/chaos.json; then
    echo "chaos gate: report disagrees with exit status" >&2
    exit 1
fi

echo "== chaos fleet gate: seeded transport faults + peer kill/restart"
# A 2-peer fleet with a chaos transport on one peer and a SIGKILL/restart
# of the other, driven by loadgen with -max-error-rate 0 and an
# availability SLO: faults must be absorbed (retry / breaker / degraded
# local solves), never surfaced to clients. Writes artifacts/chaos_fleet.*.
./scripts/chaos_fleet.sh
for f in artifacts/chaos_fleet.json artifacts/chaos_plan.json; do
    if [[ ! -s "$f" ]]; then
        echo "chaos fleet gate: expected artifact $f missing or empty" >&2
        exit 1
    fi
done

echo "check.sh: all green"
