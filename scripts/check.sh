#!/usr/bin/env bash
# Repo health gate: vet, formatting, and the full test suite under the
# race detector. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "== no-alloc benchmark guards (-benchtime=1x)"
bench_out=$(go test -run '^$' -bench 'NoAlloc' -benchmem -benchtime=1x ./...)
echo "$bench_out"
if ! echo "$bench_out" | awk '/allocs\/op/ { if ($(NF-1)+0 != 0) { print "nonzero allocs: " $0 > "/dev/stderr"; bad = 1 } } END { exit bad }'; then
    echo "no-alloc guard: a NoAlloc benchmark allocated; see lines above" >&2
    exit 1
fi

echo "check.sh: all green"
