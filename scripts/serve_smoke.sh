#!/usr/bin/env bash
# End-to-end smoke test for the `nvrel serve` daemon: boot it on an
# ephemeral port, wait for readiness, POST a solve, scrape /metrics, and
# save the span ring as a Perfetto-loadable trace. Artifacts land in
# artifacts/ (serve.log, metrics.prom, trace.json, solve.json) so CI
# uploads them alongside the bench and chaos reports.
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p artifacts

echo "== serve smoke: build"
go build -o artifacts/nvrel ./cmd/nvrel

echo "== serve smoke: boot on an ephemeral port"
artifacts/nvrel serve -addr 127.0.0.1:0 >artifacts/serve.log 2>&1 &
serve_pid=$!
cleanup() {
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

# The daemon prints "listening on http://HOST:PORT" once the listener is
# bound; poll the log for it, then poll /readyz until the warm-up solve
# has flipped readiness.
base_url=""
for _ in $(seq 1 50); do
    base_url=$(sed -n 's|^nvrel serve: listening on \(http://[^ ]*\)$|\1|p' artifacts/serve.log | head -1)
    [[ -n "$base_url" ]] && break
    sleep 0.1
done
if [[ -z "$base_url" ]]; then
    echo "serve smoke: daemon never announced its address" >&2
    cat artifacts/serve.log >&2
    exit 1
fi
echo "   daemon at $base_url"

ready=0
for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$base_url/readyz" 2>/dev/null; then
        ready=1
        break
    fi
    sleep 0.1
done
if [[ "$ready" != 1 ]]; then
    echo "serve smoke: /readyz never turned ready" >&2
    cat artifacts/serve.log >&2
    exit 1
fi

echo "== serve smoke: POST /solve"
curl -fsS -X POST -d '{"arch":"6v"}' "$base_url/solve" >artifacts/solve.json
if ! grep -q '"reliability"' artifacts/solve.json; then
    echo "serve smoke: /solve response carries no reliability" >&2
    cat artifacts/solve.json >&2
    exit 1
fi

echo "== serve smoke: POST /solve/batch"
batch_body='{"requests":[{"arch":"6v"},{"arch":"4v"},{"arch":"6v"}]}'
curl -fsS -X POST -d "$batch_body" "$base_url/solve/batch" >artifacts/solve_batch.json
if [[ "$(grep -c '"reliability"' artifacts/solve_batch.json)" -lt 3 ]]; then
    echo "serve smoke: batch response carries fewer than 3 reliabilities" >&2
    cat artifacts/solve_batch.json >&2
    exit 1
fi
if ! grep -q '"unique_solves"' artifacts/solve_batch.json; then
    echo "serve smoke: batch response missing unique_solves" >&2
    exit 1
fi
# The same batch again must be answered from the result cache.
curl -fsS -X POST -d "$batch_body" "$base_url/solve/batch" >artifacts/solve_batch2.json
if [[ "$(grep -c '"cache": "hit"' artifacts/solve_batch2.json)" -lt 3 ]]; then
    echo "serve smoke: repeated batch was not served from cache" >&2
    cat artifacts/solve_batch2.json >&2
    exit 1
fi

echo "== serve smoke: /debug/flight carries the solve's trace"
# A fresh (uncached) solve must land in the numerics flight recorder
# under the same trace_id the client saw in its response.
curl -fsS -X POST -d '{"arch":"4v","n":9}' "$base_url/solve" >artifacts/solve_flight.json
flight_trace=$(grep -o '"trace_id": "[0-9a-f]*"' artifacts/solve_flight.json | head -1 | grep -o '[0-9a-f]\{16\}')
if [[ -z "$flight_trace" ]]; then
    echo "serve smoke: flight-probe solve response carries no trace_id" >&2
    cat artifacts/solve_flight.json >&2
    exit 1
fi
curl -fsS "$base_url/debug/flight" >artifacts/flight_ring.json
if ! grep -q "$flight_trace" artifacts/flight_ring.json; then
    echo "serve smoke: trace $flight_trace missing from /debug/flight ring" >&2
    cat artifacts/flight_ring.json >&2
    exit 1
fi
echo "   trace $flight_trace present in the flight ring"

echo "== serve smoke: scrape /metrics"
curl -fsS "$base_url/metrics" >artifacts/metrics.prom
# The scrape must show the daemon's own request counter already moving:
# the readiness polls and the solve above all passed through it.
if ! awk '$1 == "serve_request" { if ($2 + 0 > 0) found = 1 } END { exit !found }' artifacts/metrics.prom; then
    echo "serve smoke: serve_request counter missing or zero in /metrics" >&2
    grep '^serve_' artifacts/metrics.prom >&2 || true
    exit 1
fi
if ! grep -q '^serve_solve_ok ' artifacts/metrics.prom; then
    echo "serve smoke: serve_solve_ok missing from /metrics" >&2
    exit 1
fi

echo "== serve smoke: save /traces"
curl -fsS "$base_url/traces" >artifacts/trace.json
if ! grep -q '"serve.solve"' artifacts/trace.json; then
    echo "serve smoke: trace carries no serve.solve span" >&2
    exit 1
fi

echo "== serve smoke: 2-peer sharded pair"
# Sharding needs the peer URLs up front, so ephemeral :0 ports won't do:
# grab two currently-free ports and boot a pair joined into one ring.
read -r port_a port_b < <(python3 - <<'EOF'
import socket
socks = []
for _ in range(2):
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    socks.append(s)
print(socks[0].getsockname()[1], socks[1].getsockname()[1])
for s in socks:
    s.close()
EOF
)
url_a="http://127.0.0.1:$port_a"
url_b="http://127.0.0.1:$port_b"
peers="$url_a,$url_b"
artifacts/nvrel serve -addr "127.0.0.1:$port_a" -peers "$peers" -self "$url_a" >artifacts/serve_peer_a.log 2>&1 &
peer_a_pid=$!
artifacts/nvrel serve -addr "127.0.0.1:$port_b" -peers "$peers" -self "$url_b" >artifacts/serve_peer_b.log 2>&1 &
peer_b_pid=$!
cleanup_pair() {
    kill "$peer_a_pid" "$peer_b_pid" 2>/dev/null || true
    wait "$peer_a_pid" "$peer_b_pid" 2>/dev/null || true
}
trap 'cleanup; cleanup_pair' EXIT
for url in "$url_a" "$url_b"; do
    pair_ready=0
    for _ in $(seq 1 100); do
        if curl -fsS -o /dev/null "$url/readyz" 2>/dev/null; then
            pair_ready=1
            break
        fi
        sleep 0.1
    done
    if [[ "$pair_ready" != 1 ]]; then
        echo "serve smoke: sharded peer $url never turned ready" >&2
        cat artifacts/serve_peer_a.log artifacts/serve_peer_b.log >&2
        exit 1
    fi
done
# The same request through either entry point must be answered by the
# ring owner of its key: both X-Nvrel-Served-By headers agree, the
# reliabilities are identical, and the non-owner's proxy counter moved.
body='{"arch":"4v","n":7}'
served_a=$(curl -fsS -D - -o artifacts/solve_peer_a.json -X POST -d "$body" "$url_a/solve" |
    tr -d '\r' | awk -F': ' 'tolower($1) == "x-nvrel-served-by" { print $2 }')
served_b=$(curl -fsS -D - -o artifacts/solve_peer_b.json -X POST -d "$body" "$url_b/solve" |
    tr -d '\r' | awk -F': ' 'tolower($1) == "x-nvrel-served-by" { print $2 }')
if [[ -z "$served_a" || "$served_a" != "$served_b" ]]; then
    echo "serve smoke: sharded entries disagree on the owner ('$served_a' vs '$served_b')" >&2
    exit 1
fi
rel_a=$(grep -o '"reliability": [0-9.e+-]*' artifacts/solve_peer_a.json | head -1)
rel_b=$(grep -o '"reliability": [0-9.e+-]*' artifacts/solve_peer_b.json | head -1)
if [[ -z "$rel_a" || "$rel_a" != "$rel_b" ]]; then
    echo "serve smoke: sharded reliabilities differ ('$rel_a' vs '$rel_b')" >&2
    exit 1
fi
proxied=0
for url in "$url_a" "$url_b"; do
    if curl -fsS "$url/metrics" | awk '$1 == "serve_proxy" { if ($2 + 0 > 0) found = 1 } END { exit !found }'; then
        proxied=1
    fi
done
if [[ "$proxied" != 1 ]]; then
    echo "serve smoke: no serve_proxy count moved on either peer" >&2
    exit 1
fi
echo "   owner $served_a answered both entry points ($rel_a)"

echo "== serve smoke: cross-peer trace stitches on both rings"
# The entry point that is NOT the owner proxied its solve, so that
# request's trace ID must appear in BOTH peers' span rings.
if [[ "$served_a" == "$url_a" ]]; then
    proxied_resp=artifacts/solve_peer_b.json
else
    proxied_resp=artifacts/solve_peer_a.json
fi
trace_id=$(grep -o '"trace_id": "[0-9a-f]*"' "$proxied_resp" | head -1 | grep -o '[0-9a-f]\{16\}')
if [[ -z "$trace_id" ]]; then
    echo "serve smoke: proxied solve response carries no trace_id" >&2
    cat "$proxied_resp" >&2
    exit 1
fi
curl -fsS "$url_a/traces" >artifacts/trace_peer_a.json
curl -fsS "$url_b/traces" >artifacts/trace_peer_b.json
for f in artifacts/trace_peer_a.json artifacts/trace_peer_b.json; do
    if ! grep -q "$trace_id" "$f"; then
        echo "serve smoke: trace $trace_id missing from $f — proxied solve did not stitch" >&2
        exit 1
    fi
done
echo "   trace $trace_id present in both peers' rings"

echo "== serve smoke: /cluster/metrics.json sums the fleet"
curl -fsS "$url_a/cluster/metrics.json" >artifacts/cluster_metrics.json
curl -fsS "$url_a/cluster/metrics" >artifacts/cluster_metrics.prom
python3 - artifacts/cluster_metrics.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert not doc.get("errors"), f"cluster scrape had errors: {doc['errors']}"
peers = doc["peers"]
assert len(peers) == 2, f"expected 2 peers, got {peers}"
per = doc["per_peer"]
merged = doc["merged"]
want = sum(per[p].get("counters", {}).get("serve.request", 0) for p in peers)
got = merged["counters"]["serve.request"]
assert got == want > 0, f"merged serve.request={got}, per-peer sum={want}"
hname = "serve.request.seconds"
hists = [per[p].get("histograms", {}).get(hname) for p in peers]
if all(hists):
    hsum = sum(h["count"] for h in hists)
    hm = merged["histograms"][hname]
    assert hm["count"] == hsum > 0, f"merged {hname} count={hm['count']}, sum={hsum}"
    assert sum(hm["counts"]) == hsum, "merged histogram buckets do not sum to count"
print(f"   merged serve.request={got} across {len(peers)} peers checks out")
EOF
if ! grep -q '^serve_request ' artifacts/cluster_metrics.prom; then
    echo "serve smoke: /cluster/metrics Prometheus text missing serve_request" >&2
    exit 1
fi

echo "== serve smoke: nvrel fleet snapshot"
artifacts/nvrel fleet -peers "$peers" -strict \
    -o artifacts/fleet.json -trace artifacts/fleet_trace.json
python3 - artifacts/fleet.json artifacts/fleet_trace.json "$trace_id" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["manifest"]["command"] == "fleet"
want = sum(p.get("counters", {}).get("serve.request", 0) for p in doc["per_peer"].values())
assert doc["merged"]["counters"]["serve.request"] == want > 0
trace = json.load(open(sys.argv[2]))
events = trace["traceEvents"]
assert events, "stitched fleet trace is empty"
ts = [e["ts"] for e in events]
assert ts == sorted(ts), "stitched fleet trace not time-ordered"
stitched = [e for e in events if e.get("args", {}).get("trace_id") == sys.argv[3]]
assert len(stitched) >= 2, f"proxied trace has {len(stitched)} spans in the fleet timeline, want >=2"
print(f"   fleet.json + fleet_trace.json: {len(events)} spans, proxied trace spans={len(stitched)}")
EOF

echo "== serve smoke: peer kill/restart under load (self-healing)"
# SIGKILL one peer of the pair mid-loadgen: every request the dead peer
# owned must still come back 200 from the surviving entry point (as a
# degraded local solve), the survivor's breaker must open, and after the
# peer restarts the ring must re-converge — breaker closed, proxied
# solves owned by the restarted peer again.
artifacts/nvrel loadgen -url "$url_a" -duration 6s -concurrency 3 \
    -mix 0.5,0.3,0.2 -max-error-rate 0 -slo-availability 0.999 \
    -o artifacts/smoke_kill_loadgen.json >artifacts/smoke_kill_loadgen.log 2>&1 &
lg_pid=$!
sleep 1.5
kill -9 "$peer_b_pid"
wait "$peer_b_pid" 2>/dev/null || true
echo "   peer_b SIGKILLed mid-run"
sleep 1.5
artifacts/nvrel serve -addr "127.0.0.1:$port_b" -peers "$peers" -self "$url_b" \
    >>artifacts/serve_peer_b.log 2>&1 &
peer_b_pid=$!
echo "   peer_b restarted"
lg_rc=0
wait "$lg_pid" || lg_rc=$?
if [[ "$lg_rc" != 0 ]]; then
    echo "serve smoke: loadgen saw client-visible errors during the peer kill (exit $lg_rc)" >&2
    cat artifacts/smoke_kill_loadgen.log >&2
    exit 1
fi
# The survivor must have served the dead peer's keys itself...
if ! grep -q '"degraded"' artifacts/smoke_kill_loadgen.json; then
    echo "serve smoke: no degraded answers recorded while a peer was dead" >&2
    cat artifacts/smoke_kill_loadgen.json >&2
    exit 1
fi
curl -fsS "$url_a/metrics" >artifacts/smoke_kill_metrics.prom
if ! awk '$1 == "fleet_degraded_solve" { if ($2 + 0 > 0) found = 1 } END { exit !found }' artifacts/smoke_kill_metrics.prom; then
    echo "serve smoke: fleet_degraded_solve did not move on the survivor" >&2
    grep '^fleet_' artifacts/smoke_kill_metrics.prom >&2 || true
    exit 1
fi
# ...and its circuit breaker must have opened on the dead peer.
if ! awk '$1 == "fleet_breaker_open" { if ($2 + 0 > 0) found = 1 } END { exit !found }' artifacts/smoke_kill_metrics.prom; then
    echo "serve smoke: fleet_breaker_open did not move on the survivor" >&2
    grep '^fleet_' artifacts/smoke_kill_metrics.prom >&2 || true
    exit 1
fi
# Re-convergence: the survivor's prober sees the restarted peer, closes
# the breaker, and /healthz reports it healthy again (bounded poll).
reconverged=0
for _ in $(seq 1 100); do
    if curl -fsS "$url_a/healthz" 2>/dev/null |
        python3 -c '
import json, sys
doc = json.load(sys.stdin)
peers = {p["peer"]: p for p in doc.get("peers", [])}
sys.argv[1] in peers or sys.exit(1)
p = peers[sys.argv[1]]
sys.exit(0 if p["healthy"] and p["breaker"] == "closed" else 1)
' "$url_b" 2>/dev/null; then
        reconverged=1
        break
    fi
    sleep 0.2
done
if [[ "$reconverged" != 1 ]]; then
    echo "serve smoke: restarted peer never re-converged on $url_a/healthz" >&2
    curl -fsS "$url_a/healthz" >&2 || true
    exit 1
fi
if ! curl -fsS "$url_a/metrics" | awk '$1 == "fleet_breaker_close" { if ($2 + 0 > 0) found = 1 } END { exit !found }'; then
    echo "serve smoke: breaker never closed again after the restart" >&2
    exit 1
fi
# The ring must agree again: both entries route a shared key to one owner.
served_a2=$(curl -fsS -D - -o /dev/null -X POST -d "$body" "$url_a/solve" |
    tr -d '\r' | awk -F': ' 'tolower($1) == "x-nvrel-served-by" { print $2 }')
served_b2=$(curl -fsS -D - -o /dev/null -X POST -d "$body" "$url_b/solve" |
    tr -d '\r' | awk -F': ' 'tolower($1) == "x-nvrel-served-by" { print $2 }')
if [[ -z "$served_a2" || "$served_a2" != "$served_b2" ]]; then
    echo "serve smoke: ring did not re-converge after restart ('$served_a2' vs '$served_b2')" >&2
    exit 1
fi
echo "   survivor degraded + breaker open->close + ring re-converged"

cleanup_pair
trap cleanup EXIT

echo "== serve smoke: rejuvenation drain (-rejuvenate-requests)"
# A daemon with a 2-request rejuvenation budget must drain and exit 0 on
# its own after the second solve — the paper's software rejuvenation
# applied to the serving process, with a supervisor doing the restart.
artifacts/nvrel serve -addr 127.0.0.1:0 -rejuvenate-requests 2 \
    >artifacts/serve_rejuvenate.log 2>&1 &
rejuv_pid=$!
trap 'cleanup; kill "$rejuv_pid" 2>/dev/null || true' EXIT
rejuv_url=""
for _ in $(seq 1 100); do
    rejuv_url=$(sed -n 's|^nvrel serve: listening on \(http://[^ ]*\)$|\1|p' artifacts/serve_rejuvenate.log | head -1)
    if [[ -n "$rejuv_url" ]] && curl -fsS -o /dev/null "$rejuv_url/readyz" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
curl -fsS -X POST -d '{"arch":"4v"}' "$rejuv_url/solve" >/dev/null
curl -fsS -X POST -d '{"arch":"4v"}' "$rejuv_url/solve" >/dev/null
rejuv_rc=0
wait "$rejuv_pid" || rejuv_rc=$?
if [[ "$rejuv_rc" != 0 ]]; then
    echo "serve smoke: rejuvenating daemon exited $rejuv_rc, want clean 0 for the supervisor" >&2
    cat artifacts/serve_rejuvenate.log >&2
    exit 1
fi
if ! grep -q 'rejuvenating' artifacts/serve_rejuvenate.log; then
    echo "serve smoke: no rejuvenation message in the log" >&2
    cat artifacts/serve_rejuvenate.log >&2
    exit 1
fi
trap cleanup EXIT
echo "   drained and exited 0 after 2 requests"

echo "== serve smoke: graceful shutdown on SIGTERM"
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
trap - EXIT
if [[ "$rc" != 0 ]]; then
    echo "serve smoke: daemon exited $rc on SIGTERM (want graceful 0)" >&2
    cat artifacts/serve.log >&2
    exit 1
fi
if ! grep -q 'shutting down' artifacts/serve.log; then
    echo "serve smoke: no drain message in the log" >&2
    cat artifacts/serve.log >&2
    exit 1
fi

echo "serve smoke: all green"
