#!/usr/bin/env bash
# End-to-end smoke test for the `nvrel serve` daemon: boot it on an
# ephemeral port, wait for readiness, POST a solve, scrape /metrics, and
# save the span ring as a Perfetto-loadable trace. Artifacts land in
# artifacts/ (serve.log, metrics.prom, trace.json, solve.json) so CI
# uploads them alongside the bench and chaos reports.
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p artifacts

echo "== serve smoke: build"
go build -o artifacts/nvrel ./cmd/nvrel

echo "== serve smoke: boot on an ephemeral port"
artifacts/nvrel serve -addr 127.0.0.1:0 >artifacts/serve.log 2>&1 &
serve_pid=$!
cleanup() {
    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

# The daemon prints "listening on http://HOST:PORT" once the listener is
# bound; poll the log for it, then poll /readyz until the warm-up solve
# has flipped readiness.
base_url=""
for _ in $(seq 1 50); do
    base_url=$(sed -n 's|^nvrel serve: listening on \(http://[^ ]*\)$|\1|p' artifacts/serve.log | head -1)
    [[ -n "$base_url" ]] && break
    sleep 0.1
done
if [[ -z "$base_url" ]]; then
    echo "serve smoke: daemon never announced its address" >&2
    cat artifacts/serve.log >&2
    exit 1
fi
echo "   daemon at $base_url"

ready=0
for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$base_url/readyz" 2>/dev/null; then
        ready=1
        break
    fi
    sleep 0.1
done
if [[ "$ready" != 1 ]]; then
    echo "serve smoke: /readyz never turned ready" >&2
    cat artifacts/serve.log >&2
    exit 1
fi

echo "== serve smoke: POST /solve"
curl -fsS -X POST -d '{"arch":"6v"}' "$base_url/solve" >artifacts/solve.json
if ! grep -q '"reliability"' artifacts/solve.json; then
    echo "serve smoke: /solve response carries no reliability" >&2
    cat artifacts/solve.json >&2
    exit 1
fi

echo "== serve smoke: scrape /metrics"
curl -fsS "$base_url/metrics" >artifacts/metrics.prom
# The scrape must show the daemon's own request counter already moving:
# the readiness polls and the solve above all passed through it.
if ! awk '$1 == "serve_request" { if ($2 + 0 > 0) found = 1 } END { exit !found }' artifacts/metrics.prom; then
    echo "serve smoke: serve_request counter missing or zero in /metrics" >&2
    grep '^serve_' artifacts/metrics.prom >&2 || true
    exit 1
fi
if ! grep -q '^serve_solve_ok ' artifacts/metrics.prom; then
    echo "serve smoke: serve_solve_ok missing from /metrics" >&2
    exit 1
fi

echo "== serve smoke: save /traces"
curl -fsS "$base_url/traces" >artifacts/trace.json
if ! grep -q '"serve.solve"' artifacts/trace.json; then
    echo "serve smoke: trace carries no serve.solve span" >&2
    exit 1
fi

echo "== serve smoke: graceful shutdown on SIGTERM"
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
trap - EXIT
if [[ "$rc" != 0 ]]; then
    echo "serve smoke: daemon exited $rc on SIGTERM (want graceful 0)" >&2
    cat artifacts/serve.log >&2
    exit 1
fi
if ! grep -q 'shutting down' artifacts/serve.log; then
    echo "serve smoke: no drain message in the log" >&2
    cat artifacts/serve.log >&2
    exit 1
fi

echo "serve smoke: all green"
