module nvrel

go 1.22
