package bftvote

import (
	"testing"
	"testing/quick"

	"nvrel/internal/des"
)

func behaviors(honest, wrong, equivocating, silent int) []Behavior {
	var bs []Behavior
	for i := 0; i < honest; i++ {
		bs = append(bs, Honest)
	}
	for i := 0; i < wrong; i++ {
		bs = append(bs, Wrong)
	}
	for i := 0; i < equivocating; i++ {
		bs = append(bs, Equivocating)
	}
	for i := 0; i < silent; i++ {
		bs = append(bs, Silent)
	}
	return bs
}

func defaultRound(bs []Behavior, quorum int) RoundConfig {
	return RoundConfig{
		Behaviors:    bs,
		Quorum:       quorum,
		CorrectLabel: 1,
		WrongLabel:   2,
		Network:      NetworkConfig{MeanDelay: 0.01},
		Timeout:      10,
	}
}

func TestRoundAllHonestDecides(t *testing.T) {
	// The paper's six-version setting: n=6, f=1, r=1, quorum 4.
	res, err := Run(defaultRound(behaviors(6, 0, 0, 0), 4), des.NewRNG(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.CorrectDecisions(1); got != 6 {
		t.Errorf("correct decisions = %d, want 6", got)
	}
	if res.ConflictingDecisions() {
		t.Error("conflicting decisions among honest replicas")
	}
	// All-to-all broadcast: n*(n-1) messages.
	if res.MessagesSent != 30 {
		t.Errorf("messages = %d, want 30", res.MessagesSent)
	}
}

func TestRoundToleratesFByzantineAndRSilent(t *testing.T) {
	// 4 honest + 1 equivocating + 1 silent (rejuvenating): the quorum of
	// 4 is exactly reachable from the honest votes.
	res, err := Run(defaultRound(behaviors(4, 0, 1, 1), 4), des.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Every honest replica (indices 0-3) decides the correct label; the
	// equivocator may also decide (it hears the honest quorum) but the
	// silent replica never does.
	for i := 0; i < 4; i++ {
		if d := res.Decisions[i]; !d.Decided || d.Label != 1 {
			t.Errorf("honest replica %d: %+v", i, d)
		}
	}
	if res.ConflictingDecisions() {
		t.Error("equivocation broke agreement")
	}
	if res.Decisions[5].Decided {
		t.Error("silent replica decided")
	}
}

func TestRoundSkipsWhenQuorumUnreachable(t *testing.T) {
	// 3 honest + 2 wrong + 1 silent with quorum 4: neither label reaches
	// four votes; every replica must skip (inconclusive but safe).
	res, err := Run(defaultRound(behaviors(3, 2, 0, 1), 4), des.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Decisions {
		if d.Decided {
			t.Errorf("replica %d decided %d despite unreachable quorum", i, d.Label)
		}
	}
}

func TestRoundErroneousDecisionWhenWrongQuorum(t *testing.T) {
	// 4 wrong + 2 honest: the wrong label assembles a quorum — the
	// perception-error case of assumption A.3.
	res, err := Run(defaultRound(behaviors(2, 4, 0, 0), 4), des.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	wrongDeciders := 0
	for _, d := range res.Decisions {
		if d.Decided && d.Label == 2 {
			wrongDeciders++
		}
	}
	if wrongDeciders == 0 {
		t.Error("expected the wrong label to win a quorum")
	}
	if res.ConflictingDecisions() {
		t.Error("safety violated even though only one label had a quorum")
	}
}

func TestRoundMessageLoss(t *testing.T) {
	cfg := defaultRound(behaviors(6, 0, 0, 0), 4)
	cfg.Network.DropProbability = 0.9
	res, err := Run(cfg, des.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesDropped == 0 {
		t.Error("expected drops at 90% loss")
	}
	// Decisions may or may not happen, but safety must hold.
	if res.ConflictingDecisions() {
		t.Error("loss broke safety")
	}
}

func TestRoundDeterministicDelays(t *testing.T) {
	cfg := defaultRound(behaviors(6, 0, 0, 0), 4)
	cfg.Network = NetworkConfig{JitterlessDelay: 0.5}
	res, err := Run(cfg, des.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Decisions {
		if !d.Decided {
			t.Fatalf("replica %d undecided", i)
		}
		// Own vote at t=0, peers arrive at exactly 0.5: the quorum closes
		// at 0.5.
		if d.At != 0.5 {
			t.Errorf("replica %d decided at %g, want 0.5", i, d.At)
		}
	}
}

func TestRoundValidation(t *testing.T) {
	rng := des.NewRNG(1)
	tests := []struct {
		name   string
		mutate func(*RoundConfig)
	}{
		{name: "no replicas", mutate: func(c *RoundConfig) { c.Behaviors = nil }},
		{name: "zero quorum", mutate: func(c *RoundConfig) { c.Quorum = 0 }},
		{name: "quorum above n", mutate: func(c *RoundConfig) { c.Quorum = 99 }},
		{name: "bad behavior", mutate: func(c *RoundConfig) { c.Behaviors[0] = Behavior(42) }},
		{name: "same labels", mutate: func(c *RoundConfig) { c.WrongLabel = c.CorrectLabel }},
		{name: "zero timeout", mutate: func(c *RoundConfig) { c.Timeout = 0 }},
		{name: "negative delay", mutate: func(c *RoundConfig) { c.Network.MeanDelay = -1 }},
		{name: "drop probability one", mutate: func(c *RoundConfig) { c.Network.DropProbability = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := defaultRound(behaviors(4, 0, 0, 0), 3)
			tt.mutate(&cfg)
			if _, err := Run(cfg, rng); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := Run(defaultRound(behaviors(4, 0, 0, 0), 3), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// TestQuorumSafetyProperty is the core BFT property: with n >= 3f+2r+1,
// quorum 2f+r+1, at most f Byzantine (wrong or equivocating) and at most
// r silent replicas, no two replicas ever decide different labels —
// regardless of delays, loss, and the equivocation pattern.
func TestQuorumSafetyProperty(t *testing.T) {
	f := func(seed uint32, fRaw, rRaw, lossRaw uint8) bool {
		fCount := int(fRaw % 3) // 0..2 Byzantine
		rCount := int(rRaw % 3) // 0..2 silent
		n := 3*fCount + 2*rCount + 1
		quorum := 2*fCount + rCount + 1
		bs := make([]Behavior, 0, n)
		for i := 0; i < fCount; i++ {
			if i%2 == 0 {
				bs = append(bs, Equivocating)
			} else {
				bs = append(bs, Wrong)
			}
		}
		for i := 0; i < rCount; i++ {
			bs = append(bs, Silent)
		}
		for len(bs) < n {
			bs = append(bs, Honest)
		}
		cfg := RoundConfig{
			Behaviors:    bs,
			Quorum:       quorum,
			CorrectLabel: 1,
			WrongLabel:   2,
			Network: NetworkConfig{
				MeanDelay:       0.05,
				DropProbability: float64(lossRaw%50) / 100,
			},
			Timeout: 50,
		}
		res, err := Run(cfg, des.NewRNG(uint64(seed)))
		if err != nil {
			return false
		}
		return !res.ConflictingDecisions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLivenessProperty: with a loss-free network and at least quorum many
// honest replicas, every honest replica decides the correct label.
func TestLivenessProperty(t *testing.T) {
	f := func(seed uint32, fRaw, rRaw uint8) bool {
		fCount := int(fRaw % 3)
		rCount := int(rRaw % 3)
		n := 3*fCount + 2*rCount + 1
		quorum := 2*fCount + rCount + 1
		honest := n - fCount - rCount
		if honest < quorum {
			return true // not a liveness scenario
		}
		bs := behaviors(honest, fCount, 0, rCount)
		cfg := defaultRound(bs, quorum)
		cfg.Timeout = 100
		res, err := Run(cfg, des.NewRNG(uint64(seed)))
		if err != nil {
			return false
		}
		return res.CorrectDecisions(1) >= honest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBehaviorString(t *testing.T) {
	tests := []struct {
		give Behavior
		want string
	}{
		{Honest, "honest"}, {Wrong, "wrong"},
		{Equivocating, "equivocating"}, {Silent, "silent"},
		{Behavior(9), "Behavior(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
