// Package bftvote implements the message-level voting protocol the
// paper's voter abstracts (§II-B): the N ML modules act as replicas of a
// BFT-style one-shot agreement on each perception output. Every replica
// broadcasts its classification; a replica decides a label once it holds
// a quorum of 2f+1 (or 2f+r+1 with rejuvenation) matching votes.
//
// The quorum size guarantees the property the paper's reliability
// functions rely on: with n >= 3f+2r+1 replicas of which at most f are
// Byzantine and at most r silent (rejuvenating or crashed), two honest
// replicas can never decide different labels — any two quorums intersect
// in at least f+1 replicas, hence in an honest replica, which votes only
// once. Byzantine replicas may equivocate (send different labels to
// different peers) without breaking this.
//
// The package runs on the discrete-event engine (package des) with
// configurable network delays and message loss, and reports decision
// latency and message complexity alongside the outcome.
package bftvote

import (
	"errors"
	"fmt"
)

// Label is a perception output class.
type Label int

// ReplicaID identifies a replica (an ML module version).
type ReplicaID int

// Behavior is a replica's fault mode for one round.
type Behavior int

// Replica behaviors.
const (
	// Honest replicas vote their classifier's label consistently.
	Honest Behavior = iota + 1
	// Wrong replicas vote a consistent but incorrect label (a compromised
	// module that misclassifies).
	Wrong
	// Equivocating replicas send different labels to different peers (a
	// Byzantine module under adversarial control).
	Equivocating
	// Silent replicas send nothing (rejuvenating or crashed modules).
	Silent
)

// String returns the behavior name.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Wrong:
		return "wrong"
	case Equivocating:
		return "equivocating"
	case Silent:
		return "silent"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// Vote is one replica's signed statement for a round.
type Vote struct {
	From  ReplicaID
	Label Label
}

// Decision is a replica's outcome for the round.
type Decision struct {
	// Decided reports whether a quorum was assembled before the round
	// ended.
	Decided bool
	// Label is the decided label (valid only when Decided).
	Label Label
	// At is the simulation time of the decision.
	At float64
}

// Errors returned by the protocol configuration.
var (
	ErrBadQuorum   = errors.New("bftvote: quorum must be positive and at most the replica count")
	ErrNoReplicas  = errors.New("bftvote: at least one replica required")
	ErrBadBehavior = errors.New("bftvote: replica count and behavior count differ")
)
