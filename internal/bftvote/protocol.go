package bftvote

import (
	"errors"
	"fmt"

	"nvrel/internal/des"
)

// RoundConfig describes one voting round.
type RoundConfig struct {
	// Behaviors assigns each replica its fault mode; its length is the
	// replica count n.
	Behaviors []Behavior
	// Quorum is the number of matching votes needed to decide (2f+1, or
	// 2f+r+1 with rejuvenation).
	Quorum int
	// CorrectLabel is what honest replicas vote.
	CorrectLabel Label
	// WrongLabel is what Wrong replicas vote and one of the labels
	// equivocating replicas use.
	WrongLabel Label
	// Network configures delays and loss.
	Network NetworkConfig
	// Timeout ends the round; replicas without a quorum by then skip.
	Timeout float64
}

// Validate checks the round configuration.
func (c RoundConfig) Validate() error {
	if len(c.Behaviors) == 0 {
		return ErrNoReplicas
	}
	if c.Quorum <= 0 || c.Quorum > len(c.Behaviors) {
		return ErrBadQuorum
	}
	for i, b := range c.Behaviors {
		switch b {
		case Honest, Wrong, Equivocating, Silent:
		default:
			return fmt.Errorf("bftvote: replica %d has unknown behavior %d", i, b)
		}
	}
	if c.CorrectLabel == c.WrongLabel {
		return errors.New("bftvote: correct and wrong labels must differ")
	}
	if c.Timeout <= 0 {
		return errors.New("bftvote: timeout must be positive")
	}
	return c.Network.Validate()
}

// RoundResult summarizes a completed round.
type RoundResult struct {
	// Decisions holds each replica's outcome (silent replicas never
	// decide).
	Decisions []Decision
	// MessagesSent counts all votes put on the wire (n*(n-1) hand-shakes
	// for an all-to-all broadcast minus silent replicas).
	MessagesSent int
	// MessagesDropped counts votes lost to the network.
	MessagesDropped int
}

// CorrectDecisions counts replicas that decided the correct label.
func (r *RoundResult) CorrectDecisions(correct Label) int {
	var c int
	for _, d := range r.Decisions {
		if d.Decided && d.Label == correct {
			c++
		}
	}
	return c
}

// ConflictingDecisions reports whether two replicas decided different
// labels — the safety violation the quorum size must prevent.
func (r *RoundResult) ConflictingDecisions() bool {
	var (
		seen  bool
		label Label
	)
	for _, d := range r.Decisions {
		if !d.Decided {
			continue
		}
		if seen && d.Label != label {
			return true
		}
		seen, label = true, d.Label
	}
	return false
}

// replica is the per-node state machine.
type replica struct {
	id      ReplicaID
	quorum  int
	silent  bool // rejuvenating/crashed: neither votes nor processes
	tallies map[Label]int
	voted   map[ReplicaID]bool
	out     *Decision
	sim     *des.Simulation
}

// onVote processes a received (or own) vote: first vote per sender counts.
func (r *replica) onVote(v Vote) {
	if r.silent || r.out.Decided || r.voted[v.From] {
		return
	}
	r.voted[v.From] = true
	r.tallies[v.Label]++
	if r.tallies[v.Label] >= r.quorum {
		*r.out = Decision{Decided: true, Label: v.Label, At: r.sim.Now()}
	}
}

// Run executes one voting round to completion (all deliveries processed or
// timeout reached) and returns the outcome.
func Run(cfg RoundConfig, rng *des.RNG) (*RoundResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("bftvote: nil rng")
	}
	n := len(cfg.Behaviors)
	var sim des.Simulation
	net := &network{cfg: cfg.Network, sim: &sim, rng: rng}

	res := &RoundResult{Decisions: make([]Decision, n)}
	replicas := make([]*replica, n)
	for i := 0; i < n; i++ {
		replicas[i] = &replica{
			id:      ReplicaID(i),
			quorum:  cfg.Quorum,
			silent:  cfg.Behaviors[i] == Silent,
			tallies: make(map[Label]int),
			voted:   make(map[ReplicaID]bool),
			out:     &res.Decisions[i],
			sim:     &sim,
		}
	}

	// Each non-silent replica broadcasts its vote to every peer and counts
	// its own vote immediately.
	for i, b := range cfg.Behaviors {
		if b == Silent {
			continue
		}
		from := ReplicaID(i)
		ownLabel := cfg.CorrectLabel
		if b == Wrong {
			ownLabel = cfg.WrongLabel
		}
		if b == Equivocating {
			// An equivocator tells itself nothing useful; pick the wrong
			// label for its own tally.
			ownLabel = cfg.WrongLabel
		}
		replicas[i].onVote(Vote{From: from, Label: ownLabel})
		for j := range replicas {
			if j == i {
				continue
			}
			label := ownLabel
			if b == Equivocating {
				// Split the peer set: even-indexed peers hear the correct
				// label, odd-indexed the wrong one.
				if j%2 == 0 {
					label = cfg.CorrectLabel
				} else {
					label = cfg.WrongLabel
				}
			}
			target := replicas[j]
			net.send(Vote{From: from, Label: label}, target.onVote)
		}
	}

	sim.RunUntil(cfg.Timeout)
	res.MessagesSent = net.sent
	res.MessagesDropped = net.dropped
	return res, nil
}
