package bftvote

import (
	"fmt"
	"math"

	"nvrel/internal/des"
)

// NetworkConfig describes the message substrate between replicas.
type NetworkConfig struct {
	// MeanDelay is the mean one-way message delay (exponentially
	// distributed). Zero means instantaneous delivery.
	MeanDelay float64
	// JitterlessDelay, when positive, replaces the exponential delay with
	// a fixed one (useful for deterministic tests).
	JitterlessDelay float64
	// DropProbability is the independent chance a message is lost.
	DropProbability float64
}

// Validate checks the configuration.
func (c NetworkConfig) Validate() error {
	if c.MeanDelay < 0 || math.IsNaN(c.MeanDelay) {
		return fmt.Errorf("bftvote: mean delay %g must be non-negative", c.MeanDelay)
	}
	if c.JitterlessDelay < 0 || math.IsNaN(c.JitterlessDelay) {
		return fmt.Errorf("bftvote: fixed delay %g must be non-negative", c.JitterlessDelay)
	}
	if c.DropProbability < 0 || c.DropProbability >= 1 {
		return fmt.Errorf("bftvote: drop probability %g must lie in [0,1)", c.DropProbability)
	}
	return nil
}

// network delivers votes between replicas over the simulation.
type network struct {
	cfg NetworkConfig
	sim *des.Simulation
	rng *des.RNG

	sent, dropped int
}

// send schedules delivery of v to the receiver, applying loss and delay.
func (n *network) send(v Vote, deliver func(Vote)) {
	n.sent++
	if n.cfg.DropProbability > 0 && n.rng.Bernoulli(n.cfg.DropProbability) {
		n.dropped++
		return
	}
	delay := 0.0
	switch {
	case n.cfg.JitterlessDelay > 0:
		delay = n.cfg.JitterlessDelay
	case n.cfg.MeanDelay > 0:
		delay = n.rng.Exp(n.cfg.MeanDelay)
	}
	if _, err := n.sim.Schedule(delay, func() { deliver(v) }); err != nil {
		// Delays are generated non-negative; scheduling cannot fail.
		panic(fmt.Sprintf("bftvote: schedule: %v", err))
	}
}
