package petri

import (
	"errors"
	"testing"
)

func TestIncidenceMM1K(t *testing.T) {
	n := buildMM1K(t, 3, 1, 1)
	c, err := n.Incidence()
	if err != nil {
		t.Fatalf("Incidence: %v", err)
	}
	// Places: queue (0), free (1); transitions: arrive (0), serve (1).
	want := [][]int{
		{1, -1},
		{-1, 1},
	}
	for p := range want {
		for tr := range want[p] {
			if c[p][tr] != want[p][tr] {
				t.Errorf("C[%d][%d] = %d, want %d", p, tr, c[p][tr], want[p][tr])
			}
		}
	}
}

func TestPInvariantsMM1K(t *testing.T) {
	n := buildMM1K(t, 3, 1, 1)
	invs, err := n.PInvariants()
	if err != nil {
		t.Fatalf("PInvariants: %v", err)
	}
	if len(invs) != 1 {
		t.Fatalf("invariants = %v, want exactly one", invs)
	}
	if invs[0][0] != 1 || invs[0][1] != 1 {
		t.Errorf("invariant = %v, want [1 1]", invs[0])
	}
}

// buildTwoConservationNet has two disjoint token-conservation loops, so
// two minimal P-invariants.
func buildTwoConservationNet(t *testing.T) *Net {
	t.Helper()
	b := NewBuilder("two-loops")
	a1 := b.AddPlace("a1", 1)
	a2 := b.AddPlace("a2", 0)
	b1 := b.AddPlace("b1", 2)
	b2 := b.AddPlace("b2", 0)
	b.AddTransition(Spec{
		Name: "aFwd", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: a1}}, Outputs: []Arc{{Place: a2}},
	})
	b.AddTransition(Spec{
		Name: "aBack", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: a2}}, Outputs: []Arc{{Place: a1}},
	})
	b.AddTransition(Spec{
		Name: "bFwd", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: b1}}, Outputs: []Arc{{Place: b2}},
	})
	b.AddTransition(Spec{
		Name: "bBack", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: b2}}, Outputs: []Arc{{Place: b1}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPInvariantsTwoLoops(t *testing.T) {
	n := buildTwoConservationNet(t)
	invs, err := n.PInvariants()
	if err != nil {
		t.Fatalf("PInvariants: %v", err)
	}
	if len(invs) != 2 {
		t.Fatalf("invariants = %v, want two", invs)
	}
	// Sorted: [0 0 1 1] then [1 1 0 0].
	want := [][]int{{0, 0, 1, 1}, {1, 1, 0, 0}}
	for i := range want {
		for j := range want[i] {
			if invs[i][j] != want[i][j] {
				t.Fatalf("invariants = %v, want %v", invs, want)
			}
		}
	}
}

func TestPInvariantsWeighted(t *testing.T) {
	// 2 tokens of "half" convert to 1 token of "whole" and back:
	// invariant is 1*half + 2*whole.
	b := NewBuilder("weighted")
	half := b.AddPlace("half", 4)
	whole := b.AddPlace("whole", 0)
	b.AddTransition(Spec{
		Name: "combine", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: half, Weight: 2}},
		Outputs: []Arc{{Place: whole}},
	})
	b.AddTransition(Spec{
		Name: "split", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: whole}},
		Outputs: []Arc{{Place: half, Weight: 2}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	invs, err := n.PInvariants()
	if err != nil {
		t.Fatalf("PInvariants: %v", err)
	}
	if len(invs) != 1 || invs[0][0] != 1 || invs[0][1] != 2 {
		t.Errorf("invariants = %v, want [[1 2]]", invs)
	}
	// And the invariant holds over the reachability graph.
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariant(invs[0]); err != nil {
		t.Errorf("CheckInvariant: %v", err)
	}
}

func TestPInvariantsRejectMarkingDependentArcs(t *testing.T) {
	b := NewBuilder("dyn")
	p := b.AddPlace("p", 2)
	q := b.AddPlace("q", 0)
	b.AddTransition(Spec{
		Name: "drain", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: p, WeightFn: func(m Marking) int { return m[p] }}},
		Outputs: []Arc{{Place: q}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.PInvariants(); !errors.Is(err, ErrMarkingDependentArcs) {
		t.Errorf("err = %v, want ErrMarkingDependentArcs", err)
	}
	if _, err := n.Incidence(); !errors.Is(err, ErrMarkingDependentArcs) {
		t.Errorf("err = %v, want ErrMarkingDependentArcs", err)
	}
}

func TestPInvariantsNoConservation(t *testing.T) {
	// A source transition breaks all conservation: no invariants involving
	// the fed place.
	b := NewBuilder("source")
	p := b.AddPlace("p", 0)
	b.AddTransition(Spec{
		Name: "feed", Kind: Exponential, Rate: 1,
		Outputs: []Arc{{Place: p}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	invs, err := n.PInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 0 {
		t.Errorf("invariants = %v, want none", invs)
	}
}

func TestCheckInvariantDetectsViolation(t *testing.T) {
	n := buildMM1K(t, 3, 1, 1)
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariant([]int{1, 1}); err != nil {
		t.Errorf("valid invariant rejected: %v", err)
	}
	if err := g.CheckInvariant([]int{1, 0}); err == nil {
		t.Error("non-invariant accepted")
	}
	if err := g.CheckInvariant([]int{1}); err == nil {
		t.Error("wrong-length invariant accepted")
	}
}

func TestTInvariantsMM1K(t *testing.T) {
	// arrive then serve returns the queue to its marking: x = [1 1].
	n := buildMM1K(t, 3, 1, 1)
	invs, err := n.TInvariants()
	if err != nil {
		t.Fatalf("TInvariants: %v", err)
	}
	if len(invs) != 1 || invs[0][0] != 1 || invs[0][1] != 1 {
		t.Errorf("T-invariants = %v, want [[1 1]]", invs)
	}
}

func TestTInvariantsLifecycle(t *testing.T) {
	// The paper's module lifecycle: Tc then Tf then Tr cycles a module
	// H -> C -> N -> H, so [1 1 1] is the unique minimal T-invariant.
	b := NewBuilder("lifecycle")
	h := b.AddPlace("H", 4)
	c := b.AddPlace("C", 0)
	f := b.AddPlace("F", 0)
	b.AddTransition(Spec{Name: "Tc", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: h}}, Outputs: []Arc{{Place: c}}})
	b.AddTransition(Spec{Name: "Tf", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: c}}, Outputs: []Arc{{Place: f}}})
	b.AddTransition(Spec{Name: "Tr", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: f}}, Outputs: []Arc{{Place: h}}})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	invs, err := n.TInvariants()
	if err != nil {
		t.Fatalf("TInvariants: %v", err)
	}
	if len(invs) != 1 || invs[0][0] != 1 || invs[0][1] != 1 || invs[0][2] != 1 {
		t.Errorf("T-invariants = %v, want [[1 1 1]]", invs)
	}
	// And the P-invariant view: H + C + F conserved.
	pinvs, err := n.PInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(pinvs) != 1 || pinvs[0][0] != 1 || pinvs[0][1] != 1 || pinvs[0][2] != 1 {
		t.Errorf("P-invariants = %v, want [[1 1 1]]", pinvs)
	}
}

func TestTInvariantsWeighted(t *testing.T) {
	// combine consumes 2 half-tokens, split produces 2: firing each once
	// cycles the marking, so [1 1].
	b := NewBuilder("weighted-t")
	half := b.AddPlace("half", 4)
	whole := b.AddPlace("whole", 0)
	b.AddTransition(Spec{Name: "combine", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: half, Weight: 2}}, Outputs: []Arc{{Place: whole}}})
	b.AddTransition(Spec{Name: "split", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: whole}}, Outputs: []Arc{{Place: half, Weight: 2}}})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	invs, err := n.TInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 || invs[0][0] != 1 || invs[0][1] != 1 {
		t.Errorf("T-invariants = %v, want [[1 1]]", invs)
	}
}

func TestTInvariantsRejectMarkingDependent(t *testing.T) {
	b := NewBuilder("dyn-t")
	p := b.AddPlace("p", 2)
	b.AddTransition(Spec{
		Name: "drain", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: p, WeightFn: func(m Marking) int { return m[p] }}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.TInvariants(); !errors.Is(err, ErrMarkingDependentArcs) {
		t.Errorf("err = %v", err)
	}
}

func TestGCD(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{12, 8, 4}, {8, 12, 4}, {-12, 8, 4}, {7, 13, 1}, {0, 0, 1}, {0, 5, 5},
	}
	for _, tt := range tests {
		if got := gcd(tt.a, tt.b); got != tt.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestStructurallyBounded(t *testing.T) {
	// The conserved MM1K net is certified bounded.
	bounded := buildMM1K(t, 3, 1, 1)
	ok, err := bounded.StructurallyBounded()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("conserved net should be certified bounded")
	}

	// A source transition feeding a place defeats the certificate.
	b := NewBuilder("unbounded")
	p := b.AddPlace("p", 0)
	b.AddTransition(Spec{
		Name: "feed", Kind: Exponential, Rate: 1,
		Outputs: []Arc{{Place: p}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ok, err = n.StructurallyBounded()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("net with a source transition should not be certified")
	}

	// Marking-dependent arcs propagate the structural-analysis error.
	bd := NewBuilder("dyn-bound")
	q := bd.AddPlace("q", 1)
	bd.AddTransition(Spec{
		Name: "t", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: q, WeightFn: func(m Marking) int { return m[q] }}},
	})
	dn, err := bd.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dn.StructurallyBounded(); err == nil {
		t.Error("marking-dependent net should error")
	}
}
