package petri

import "nvrel/internal/faultinject"

// Fault-injection sites of the generator assembly path. Hooks sit behind
// the faultinject global gate (one atomic load, no allocation when chaos
// is off).
var (
	// fiStampCorrupt rewrites one value of a freshly stamped CSR
	// generator — the paper's "corrupted model parameter" fault. The mode
	// (NaN, Inf, sign flip, silent rate scale) comes from the armed plan.
	fiStampCorrupt = faultinject.SiteFor("petri.stamp.corrupt")
)
