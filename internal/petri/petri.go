// Package petri implements the Deterministic and Stochastic Petri Net
// (DSPN) formalism used by the paper's perception-system models: places,
// immediate transitions (with priorities and marking-dependent weights),
// exponentially timed transitions (with marking-dependent rates), and
// deterministic transitions, plus guard functions and inhibitor arcs.
//
// The package also builds the tangible reachability graph with
// vanishing-marking elimination, producing the continuous-time Markov chain
// and deterministic-clock structure consumed by packages ctmc and mrgp. It
// plays the role TimeNET's modeling layer plays in the paper.
package petri

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates transition timing semantics.
type Kind int

// Transition kinds.
const (
	Immediate Kind = iota + 1
	Exponential
	Deterministic
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Immediate:
		return "immediate"
	case Exponential:
		return "exponential"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Marking is a token count per place, indexed by PlaceRef.
type Marking []int

// Clone returns a copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Key returns a canonical string key for map lookup.
func (m Marking) Key() string {
	var b strings.Builder
	for i, v := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Total returns the total number of tokens.
func (m Marking) Total() int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// PlaceRef identifies a place within its net.
type PlaceRef int

// TransitionRef identifies a transition within its net.
type TransitionRef int

// WeightFn computes a marking-dependent arc multiplicity.
type WeightFn func(Marking) int

// RateFn computes a marking-dependent firing rate or weight.
type RateFn func(Marking) float64

// GuardFn is an enabling predicate evaluated on the current marking.
type GuardFn func(Marking) bool

// Arc connects a place to a transition (input/inhibitor) or a transition to
// a place (output). A nil WeightFn means the constant Weight is used; the
// constant defaults to 1 when both are zero-valued.
type Arc struct {
	Place    PlaceRef
	Weight   int
	WeightFn WeightFn
}

func (a Arc) multiplicity(m Marking) int {
	if a.WeightFn != nil {
		return a.WeightFn(m)
	}
	if a.Weight == 0 {
		return 1
	}
	return a.Weight
}

// Spec declares a transition for Builder.AddTransition.
type Spec struct {
	Name string
	Kind Kind

	// Rate is the firing rate for Exponential transitions or the conflict
	// weight for Immediate transitions. Exactly one of Rate and RateFn must
	// be set for those kinds (Rate > 0 counts as set).
	Rate   float64
	RateFn RateFn

	// Delay is the firing delay of Deterministic transitions.
	Delay float64

	// Priority orders immediate transitions: higher fires first. Ignored
	// for timed transitions.
	Priority int

	// Guard, if non-nil, must hold for the transition to be enabled.
	Guard GuardFn

	Inputs     []Arc
	Outputs    []Arc
	Inhibitors []Arc
}

type place struct {
	name    string
	initial int
}

type transition struct {
	Spec
	id TransitionRef
}

// Net is an immutable DSPN produced by a Builder.
type Net struct {
	name        string
	places      []place
	transitions []transition
	byName      map[string]TransitionRef
}

// Builder assembles a Net. The zero value is not usable; call NewBuilder.
type Builder struct {
	net  *Net
	errs []error
}

// NewBuilder returns a builder for a net with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{net: &Net{name: name, byName: make(map[string]TransitionRef)}}
}

// AddPlace declares a place with an initial token count and returns its ref.
func (b *Builder) AddPlace(name string, initial int) PlaceRef {
	if name == "" {
		b.errs = append(b.errs, errors.New("petri: place name must not be empty"))
	}
	if initial < 0 {
		b.errs = append(b.errs, fmt.Errorf("petri: place %q has negative initial marking %d", name, initial))
	}
	for _, p := range b.net.places {
		if p.name == name {
			b.errs = append(b.errs, fmt.Errorf("petri: duplicate place name %q", name))
		}
	}
	b.net.places = append(b.net.places, place{name: name, initial: initial})
	return PlaceRef(len(b.net.places) - 1)
}

// AddTransition declares a transition and returns its ref.
func (b *Builder) AddTransition(s Spec) TransitionRef {
	id := TransitionRef(len(b.net.transitions))
	b.validateSpec(s)
	if _, dup := b.net.byName[s.Name]; dup {
		b.errs = append(b.errs, fmt.Errorf("petri: duplicate transition name %q", s.Name))
	} else if s.Name != "" {
		b.net.byName[s.Name] = id
	}
	b.net.transitions = append(b.net.transitions, transition{Spec: s, id: id})
	return id
}

func (b *Builder) validateSpec(s Spec) {
	fail := func(format string, args ...any) {
		b.errs = append(b.errs, fmt.Errorf("petri: transition %q: "+format, append([]any{s.Name}, args...)...))
	}
	if s.Name == "" {
		b.errs = append(b.errs, errors.New("petri: transition name must not be empty"))
	}
	switch s.Kind {
	case Immediate, Exponential:
		hasConst := s.Rate != 0
		hasFn := s.RateFn != nil
		if hasConst == hasFn {
			fail("exactly one of Rate and RateFn must be set")
		}
		if hasConst && (s.Rate < 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0)) {
			fail("invalid rate %g", s.Rate)
		}
		if s.Delay != 0 {
			fail("Delay is only valid for deterministic transitions")
		}
	case Deterministic:
		if s.Delay <= 0 || math.IsNaN(s.Delay) || math.IsInf(s.Delay, 0) {
			fail("invalid delay %g", s.Delay)
		}
		if s.Rate != 0 || s.RateFn != nil {
			fail("Rate is only valid for immediate and exponential transitions")
		}
	default:
		fail("unknown kind %v", s.Kind)
	}
	if s.Priority != 0 && s.Kind != Immediate {
		fail("Priority is only valid for immediate transitions")
	}
	checkArcs := func(role string, arcs []Arc) {
		for _, a := range arcs {
			if int(a.Place) < 0 || int(a.Place) >= len(b.net.places) {
				fail("%s arc references unknown place %d", role, a.Place)
			}
			if a.Weight < 0 {
				fail("%s arc has negative weight %d", role, a.Weight)
			}
			if a.Weight != 0 && a.WeightFn != nil {
				fail("%s arc sets both Weight and WeightFn", role)
			}
		}
	}
	checkArcs("input", s.Inputs)
	checkArcs("output", s.Outputs)
	checkArcs("inhibitor", s.Inhibitors)
}

// Build finalizes the net, returning all accumulated errors.
func (b *Builder) Build() (*Net, error) {
	if len(b.net.places) == 0 {
		b.errs = append(b.errs, errors.New("petri: net has no places"))
	}
	if len(b.net.transitions) == 0 {
		b.errs = append(b.errs, errors.New("petri: net has no transitions"))
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	return b.net, nil
}

// Name returns the net name.
func (n *Net) Name() string { return n.name }

// NumPlaces returns the number of places.
func (n *Net) NumPlaces() int { return len(n.places) }

// NumTransitions returns the number of transitions.
func (n *Net) NumTransitions() int { return len(n.transitions) }

// PlaceName returns the name of the given place.
func (n *Net) PlaceName(p PlaceRef) string { return n.places[p].name }

// TransitionName returns the name of the given transition.
func (n *Net) TransitionName(t TransitionRef) string { return n.transitions[t].Name }

// TransitionByName looks up a transition by name.
func (n *Net) TransitionByName(name string) (TransitionRef, bool) {
	t, ok := n.byName[name]
	return t, ok
}

// InitialMarking returns the declared initial marking.
func (n *Net) InitialMarking() Marking {
	m := make(Marking, len(n.places))
	for i, p := range n.places {
		m[i] = p.initial
	}
	return m
}

// FormatMarking renders a marking with place names for diagnostics.
func (n *Net) FormatMarking(m Marking) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range m {
		if v == 0 {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s:%d", n.places[i].name, v)
	}
	b.WriteByte('}')
	return b.String()
}
