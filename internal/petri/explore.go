package petri

import (
	"errors"
	"fmt"
	"sort"
)

// Exploration limits and errors.
const defaultMaxMarkings = 1 << 18

var (
	// ErrImmediateCycle is returned when immediate transitions can fire in
	// a cycle without reaching a tangible marking.
	ErrImmediateCycle = errors.New("petri: cycle of vanishing markings")

	// ErrStateSpaceTooLarge is returned when exploration exceeds the
	// marking budget.
	ErrStateSpaceTooLarge = errors.New("petri: state space exceeds marking budget")

	// ErrMultipleDeterministic is returned when more than one deterministic
	// transition is enabled in some tangible marking; the MRGP solver in
	// this repository requires the standard DSPN restriction of at most one.
	ErrMultipleDeterministic = errors.New("petri: multiple deterministic transitions enabled in one marking")
)

// RateEdge is an aggregated exponential transition between tangible
// markings: from state From, at rate Rate, the chain jumps to state To.
// Via and Prob record the edge's provenance — the exponential transition
// whose firing produced it and the branching probability of the vanishing
// cascade it triggered — so Rate can be re-stamped for a structurally
// identical net with different rate parameters (see Graph.Restamp).
type RateEdge struct {
	From, To int
	Rate     float64

	Via  TransitionRef
	Prob float64
}

// ProbEdge is a probabilistic successor: with probability Prob the system
// lands in tangible state To.
type ProbEdge struct {
	To   int
	Prob float64
}

// DetSchedule describes the deterministic transition enabled in a tangible
// marking and the distribution over tangible markings reached when it fires
// (after eliminating any vanishing markings its firing triggers).
type DetSchedule struct {
	Transition TransitionRef
	Delay      float64
	Successors []ProbEdge
}

// Graph is the tangible reachability graph of a DSPN: the state space of
// the underlying stochastic process.
type Graph struct {
	Net      *Net
	Markings []Marking // tangible markings, index = state id
	Initial  []float64 // distribution over tangible states at time zero

	// Exp holds aggregated exponential rate edges (no self-loops).
	Exp []RateEdge

	// Det[i] describes the deterministic transition enabled in state i, or
	// is nil when none is enabled.
	Det []*DetSchedule

	index map[string]int

	// topo memoizes rate-independent derived structure (the CSR assembly
	// plan, the clock branching matrix) and is shared by Restamp so every
	// sibling of a sweep reuses it. Nil for hand-assembled graphs.
	topo *topology
}

// ExploreOptions tunes reachability exploration.
type ExploreOptions struct {
	// MaxMarkings bounds the number of distinct markings visited
	// (tangible + vanishing). Zero means the package default.
	MaxMarkings int
}

// Explore builds the tangible reachability graph from the net's initial
// marking.
func Explore(n *Net, opts ExploreOptions) (*Graph, error) {
	maxMarkings := opts.MaxMarkings
	if maxMarkings <= 0 {
		maxMarkings = defaultMaxMarkings
	}
	g := &Graph{Net: n, index: make(map[string]int), topo: &topology{}}
	e := &explorer{net: n, graph: g, max: maxMarkings, vanishing: make(map[string][]ProbEdge)}

	// Resolving the initial marking interns its tangible support, seeding
	// the exploration frontier.
	init, err := e.resolve(n.InitialMarking(), nil)
	if err != nil {
		return nil, fmt.Errorf("resolving initial marking: %w", err)
	}

	if err := e.run(); err != nil {
		return nil, err
	}

	g.Initial = make([]float64, len(g.Markings))
	for _, pe := range init {
		g.Initial[pe.To] += pe.Prob
	}
	metExploreRuns.Inc()
	metExploreStates.Add(int64(g.NumStates()))
	metExploreEdges.Add(int64(len(g.Exp)))
	return g, nil
}

// NumStates returns the number of tangible states.
func (g *Graph) NumStates() int { return len(g.Markings) }

// StateIndex returns the state id of a tangible marking, if present.
func (g *Graph) StateIndex(m Marking) (int, bool) {
	i, ok := g.index[m.Key()]
	return i, ok
}

// Tokens returns the token count of place p in tangible state s.
func (g *Graph) Tokens(s int, p PlaceRef) int { return g.Markings[s][p] }

type explorer struct {
	net       *Net
	graph     *Graph
	max       int
	frontier  []int
	visited   int
	vanishing map[string][]ProbEdge // memoized vanishing resolutions
}

// intern registers a tangible marking, returning its state id.
func (e *explorer) intern(m Marking) (int, error) {
	key := m.Key()
	if id, ok := e.graph.index[key]; ok {
		return id, nil
	}
	if e.visited++; e.visited > e.max {
		return 0, ErrStateSpaceTooLarge
	}
	id := len(e.graph.Markings)
	e.graph.index[key] = id
	e.graph.Markings = append(e.graph.Markings, m.Clone())
	e.graph.Det = append(e.graph.Det, nil)
	e.frontier = append(e.frontier, id)
	return id, nil
}

// resolve eliminates vanishing markings reachable from m by immediate
// firings, returning a distribution over tangible state ids. The stack
// parameter carries the keys of vanishing markings on the current expansion
// path for cycle detection.
func (e *explorer) resolve(m Marking, stack []string) ([]ProbEdge, error) {
	if !e.net.IsVanishing(m) {
		id, err := e.intern(m)
		if err != nil {
			return nil, err
		}
		return []ProbEdge{{To: id, Prob: 1}}, nil
	}
	key := m.Key()
	if memo, ok := e.vanishing[key]; ok {
		return memo, nil
	}
	for _, k := range stack {
		if k == key {
			return nil, fmt.Errorf("%w at %s", ErrImmediateCycle, e.net.FormatMarking(m))
		}
	}
	if e.visited++; e.visited > e.max {
		return nil, ErrStateSpaceTooLarge
	}
	stack = append(stack, key)

	immediates, _, _ := e.net.enabledByKind(m)
	var total float64
	weights := make([]float64, len(immediates))
	for i, t := range immediates {
		w := e.net.rateOf(t, m)
		weights[i] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("petri: enabled immediate transitions have zero total weight in %s", e.net.FormatMarking(m))
	}
	acc := make(map[int]float64)
	for i, t := range immediates {
		p := weights[i] / total
		next, err := e.net.Fire(t, m)
		if err != nil {
			return nil, err
		}
		sub, err := e.resolve(next, stack)
		if err != nil {
			return nil, err
		}
		for _, pe := range sub {
			acc[pe.To] += p * pe.Prob
		}
	}
	out := sortedEdges(acc)
	e.vanishing[key] = out
	return out, nil
}

// run processes the tangible frontier until exhaustion.
func (e *explorer) run() error {
	for len(e.frontier) > 0 {
		id := e.frontier[len(e.frontier)-1]
		e.frontier = e.frontier[:len(e.frontier)-1]
		if err := e.expand(id); err != nil {
			return err
		}
	}
	return nil
}

// expand computes the exponential rate edges and the deterministic schedule
// of tangible state id.
func (e *explorer) expand(id int) error {
	m := e.graph.Markings[id]
	_, exps, dets := e.net.enabledByKind(m)

	if len(dets) > 1 {
		names := make([]string, len(dets))
		for i, t := range dets {
			names[i] = e.net.TransitionName(t)
		}
		return fmt.Errorf("%w: %v in %s", ErrMultipleDeterministic, names, e.net.FormatMarking(m))
	}

	for _, t := range exps {
		rate := e.net.rateOf(t, m)
		next, err := e.net.Fire(t, m)
		if err != nil {
			return err
		}
		dist, err := e.resolve(next, nil)
		if err != nil {
			return err
		}
		for _, pe := range dist {
			if pe.To == id {
				continue // rate mass returning to the same tangible state is a no-op
			}
			e.graph.Exp = append(e.graph.Exp, RateEdge{
				From: id, To: pe.To, Rate: rate * pe.Prob,
				Via: t, Prob: pe.Prob,
			})
		}
	}

	if len(dets) == 1 {
		t := dets[0]
		next, err := e.net.Fire(t, m)
		if err != nil {
			return err
		}
		dist, err := e.resolve(next, nil)
		if err != nil {
			return err
		}
		e.graph.Det[id] = &DetSchedule{
			Transition: t,
			Delay:      e.net.transitions[t].Delay,
			Successors: dist,
		}
	}
	return nil
}

func sortedEdges(acc map[int]float64) []ProbEdge {
	out := make([]ProbEdge, 0, len(acc))
	for to, p := range acc {
		out = append(out, ProbEdge{To: to, Prob: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}
