package petri

import (
	"math"
	"math/rand"
	"testing"

	"nvrel/internal/linalg"
)

// randomReachabilityGraph fabricates a Graph shaped like an explored
// reachability graph: n tangible states, each with a ring successor (for
// irreducibility) plus a few random rate edges, rates spanning the
// repair-vs-failure magnitudes of the paper's models.
func randomReachabilityGraph(rng *rand.Rand, n int) *Graph {
	g := &Graph{
		Markings: make([]Marking, n),
		Det:      make([]*DetSchedule, n),
	}
	for i := 0; i < n; i++ {
		add := func(j int) {
			g.Exp = append(g.Exp, RateEdge{
				From: i, To: j,
				Rate: math.Pow(10, -3+4*rng.Float64()),
			})
		}
		add((i + 1) % n)
		for extra := rng.Intn(4); extra > 0; extra-- {
			if j := rng.Intn(n); j != i {
				add(j)
			}
		}
	}
	return g
}

// TestGeneratorCSRMatchesDense: the plan-stamped CSR (and its transpose)
// must carry exactly the entries of the dense generator.
func TestGeneratorCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := linalg.NewWorkspace()
	for rep := 0; rep < 20; rep++ {
		n := 2 + rng.Intn(40)
		g := randomReachabilityGraph(rng, n)
		dense, err := g.Generator()
		if err != nil {
			t.Fatalf("Generator: %v", err)
		}
		c, err := g.GeneratorCSR(ws)
		if err != nil {
			t.Fatalf("GeneratorCSR: %v", err)
		}
		ct, err := g.GeneratorCSRTranspose(ws)
		if err != nil {
			t.Fatalf("GeneratorCSRTranspose: %v", err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := c.At(i, j), dense.At(i, j); got != want {
					t.Fatalf("rep %d: Q[%d][%d] = %v, want %v", rep, i, j, got, want)
				}
				if got, want := ct.At(j, i), dense.At(i, j); got != want {
					t.Fatalf("rep %d: Qt[%d][%d] = %v, want %v", rep, j, i, got, want)
				}
			}
		}
		ws.PutCSR(c)
		ws.PutCSR(ct)
	}
}

// TestSteadyStateSparseMatchesDense: property-style agreement of the GS
// steady state with dense GTH on random reachability-shaped chains.
func TestSteadyStateSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ws := linalg.NewWorkspace()
	for rep := 0; rep < 20; rep++ {
		n := 1 + rng.Intn(50)
		g := randomReachabilityGraph(rng, n)
		want, err := g.SteadyStateDenseWS(ws)
		if err != nil {
			t.Fatalf("rep %d: dense: %v", rep, err)
		}
		got, err := g.SteadyStateSparseWS(ws)
		if err != nil {
			t.Fatalf("rep %d: sparse: %v", rep, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("rep %d (n=%d): pi[%d] = %.17g, want %.17g", rep, n, i, got[i], want[i])
			}
		}
	}
}

// TestUniformizationSparseMatchesDense: transient propagation through the
// stamped CSR agrees with the dense kernel on random graphs.
func TestUniformizationSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := linalg.NewWorkspace()
	for rep := 0; rep < 10; rep++ {
		n := 1 + rng.Intn(30)
		g := randomReachabilityGraph(rng, n)
		q, err := g.Generator()
		if err != nil {
			t.Fatalf("Generator: %v", err)
		}
		c, err := g.GeneratorCSR(ws)
		if err != nil {
			t.Fatalf("GeneratorCSR: %v", err)
		}
		pi := make([]float64, n)
		pi[rng.Intn(n)] = 1
		for _, horizon := range []float64{0.4, 9} {
			want, err := linalg.UniformizedPower(q, pi, horizon, 0, 1e-12)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			got, err := ws.UniformizedPowerCSR(c, pi, horizon, 0, 1e-12, nil)
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("rep %d t=%g: pi[%d] = %.17g, want %.17g", rep, horizon, i, got[i], want[i])
				}
			}
		}
		ws.PutCSR(c)
	}
}

// buildRing returns a three-place cyclic net whose CTMC states are the
// token distributions; rates are parameters so the net can be restamped.
func buildRing(t testing.TB, tokens int, r1, r2, r3 float64) *Net {
	t.Helper()
	b := NewBuilder("ring")
	pa := b.AddPlace("a", tokens)
	pb := b.AddPlace("b", 0)
	pc := b.AddPlace("c", 0)
	step := func(name string, rate float64, from, to PlaceRef) {
		b.AddTransition(Spec{
			Name: name, Kind: Exponential, Rate: rate,
			Inputs:  []Arc{{Place: from}},
			Outputs: []Arc{{Place: to}},
		})
	}
	step("t1", r1, pa, pb)
	step("t2", r2, pb, pc)
	step("t3", r3, pc, pa)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

// TestRestampSharesSparsePlan: restamped siblings must reuse the explored
// graph's assembly plan (same pointer) and stamp values identical to a
// fresh exploration of the re-parameterized net.
func TestRestampSharesSparsePlan(t *testing.T) {
	g, err := Explore(buildRing(t, 5, 1, 2, 3), ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	plan := g.SparsePlan()
	restamped, err := g.Restamp(buildRing(t, 5, 4, 5, 6))
	if err != nil {
		t.Fatalf("Restamp: %v", err)
	}
	if restamped.SparsePlan() != plan {
		t.Fatal("restamped graph did not share the generator plan")
	}
	fresh, err := Explore(buildRing(t, 5, 4, 5, 6), ExploreOptions{})
	if err != nil {
		t.Fatalf("fresh Explore: %v", err)
	}
	want, err := fresh.GeneratorCSR(nil)
	if err != nil {
		t.Fatalf("fresh GeneratorCSR: %v", err)
	}
	got, err := restamped.GeneratorCSR(nil)
	if err != nil {
		t.Fatalf("restamped GeneratorCSR: %v", err)
	}
	n := g.NumStates()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Q[%d][%d] = %v, fresh exploration has %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

// TestPlanRejectsForeignGraph: stamping a graph with a different shape
// through a plan must fail, not corrupt memory.
func TestPlanRejectsForeignGraph(t *testing.T) {
	g, err := Explore(buildRing(t, 4, 1, 2, 3), ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	other, err := Explore(buildRing(t, 7, 1, 2, 3), ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore other: %v", err)
	}
	if _, err := g.SparsePlan().Stamp(other, nil); err == nil {
		t.Fatal("Stamp accepted a graph from a different topology")
	}
}

// TestRestampedCSRSolveNoAlloc: the production sweep loop — restamp,
// stamp the transpose CSR through the shared plan, Gauss-Seidel solve into
// a caller-owned vector — must be allocation-free once pools are warm.
func TestRestampedCSRSolveNoAlloc(t *testing.T) {
	g, err := Explore(buildRing(t, 12, 1, 2, 3), ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	restamped, err := g.Restamp(buildRing(t, 12, 2.5, 1.5, 0.5))
	if err != nil {
		t.Fatalf("Restamp: %v", err)
	}
	ws := linalg.NewWorkspace()
	dst := make([]float64, g.NumStates())
	solve := func() {
		qt, err := restamped.GeneratorCSRTranspose(ws)
		if err != nil {
			t.Fatalf("GeneratorCSRTranspose: %v", err)
		}
		if _, err := ws.SteadyStateGS(qt, dst); err != nil {
			t.Fatalf("SteadyStateGS: %v", err)
		}
		ws.PutCSR(qt)
	}
	solve() // warm-up: builds the plan and fills the pools
	if allocs := testing.AllocsPerRun(50, solve); allocs != 0 {
		t.Errorf("allocations per re-stamped solve = %v, want 0", allocs)
	}
}

// BenchmarkRestampedCSRSolveNoAlloc guards the same property in benchmark
// form; -benchmem must report 0 allocs/op.
func BenchmarkRestampedCSRSolveNoAlloc(b *testing.B) {
	g, err := Explore(buildRing(b, 12, 1, 2, 3), ExploreOptions{})
	if err != nil {
		b.Fatalf("Explore: %v", err)
	}
	ws := linalg.NewWorkspace()
	dst := make([]float64, g.NumStates())
	qt, err := g.GeneratorCSRTranspose(ws)
	if err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	if _, err := ws.SteadyStateGS(qt, dst); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	ws.PutCSR(qt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt, err := g.GeneratorCSRTranspose(ws)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ws.SteadyStateGS(qt, dst); err != nil {
			b.Fatal(err)
		}
		ws.PutCSR(qt)
	}
}
