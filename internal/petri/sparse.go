package petri

import (
	"fmt"
	"sort"
	"sync"

	"nvrel/internal/faultinject"
	"nvrel/internal/linalg"
)

// GeneratorPlan is a precomputed CSR assembly recipe for the generator
// matrix of a reachability graph: the sparsity pattern of Q (and of its
// transpose, for the column-oriented steady-state sweeps) plus, for every
// exponential rate edge, the Vals slots the edge's rate accumulates into.
// The pattern depends only on the graph topology, which petri.Restamp
// preserves, so one plan serves every re-stamped sibling of a sweep: each
// point re-stamps by rewriting the values array, never re-deriving the
// structure. The diagonal is always materialized (even for states whose
// exponential exit rate is zero) so kernels can read exit rates directly.
type GeneratorPlan struct {
	n      int
	rowPtr []int
	colIdx []int
	// edgeOff[k] and edgeDiag[k] are the Vals slots edge k adds its rate
	// to (+rate at (From,To), -rate at (From,From)) in the forward layout.
	edgeOff  []int
	edgeDiag []int

	tRowPtr []int
	tColIdx []int
	// tEdgeOff/tEdgeDiag are the same slots in the transposed layout
	// (row To holds the incoming rates of state To).
	tEdgeOff  []int
	tEdgeDiag []int
}

// topology is the part of a reachability graph shared across Restamp
// siblings: it memoizes derived structures that depend only on the state
// space and the edge/schedule shape, never on the stamped rates. All
// fields are built at most once and are read-only afterwards, so sharing
// across concurrently solving goroutines is safe.
type topology struct {
	planOnce sync.Once
	plan     *GeneratorPlan

	detOnce sync.Once
	det     *linalg.CSR // clock branching probabilities (rate-independent)
}

// NewGeneratorPlan derives the CSR assembly plan of g's generator. Prefer
// Graph.SparsePlan, which memoizes the plan on the shared topology.
func NewGeneratorPlan(g *Graph) *GeneratorPlan {
	n := g.NumStates()
	p := &GeneratorPlan{
		n:         n,
		edgeOff:   make([]int, len(g.Exp)),
		edgeDiag:  make([]int, len(g.Exp)),
		tEdgeOff:  make([]int, len(g.Exp)),
		tEdgeDiag: make([]int, len(g.Exp)),
	}
	p.rowPtr, p.colIdx = patternFor(n, g.Exp, false)
	p.tRowPtr, p.tColIdx = patternFor(n, g.Exp, true)
	for k, e := range g.Exp {
		p.edgeOff[k] = slotOf(p.rowPtr, p.colIdx, e.From, e.To)
		p.edgeDiag[k] = slotOf(p.rowPtr, p.colIdx, e.From, e.From)
		p.tEdgeOff[k] = slotOf(p.tRowPtr, p.tColIdx, e.To, e.From)
		p.tEdgeDiag[k] = slotOf(p.tRowPtr, p.tColIdx, e.From, e.From)
	}
	return p
}

// patternFor builds the sorted CSR pattern of the edge set (optionally
// transposed), with every diagonal entry materialized.
func patternFor(n int, edges []RateEdge, transpose bool) (rowPtr, colIdx []int) {
	perRow := make([][]int, n)
	for i := range perRow {
		perRow[i] = append(perRow[i], i) // diagonal
	}
	for _, e := range edges {
		r, c := e.From, e.To
		if transpose {
			r, c = c, r
		}
		perRow[r] = append(perRow[r], c)
	}
	rowPtr = make([]int, n+1)
	nnz := 0
	for i, cols := range perRow {
		sort.Ints(cols)
		w := 0
		for k, c := range cols {
			if k > 0 && c == cols[w-1] {
				continue
			}
			cols[w] = c
			w++
		}
		perRow[i] = cols[:w]
		nnz += w
	}
	colIdx = make([]int, 0, nnz)
	for i, cols := range perRow {
		rowPtr[i] = len(colIdx)
		colIdx = append(colIdx, cols...)
	}
	rowPtr[n] = len(colIdx)
	return rowPtr, colIdx
}

// slotOf locates the Vals index of entry (i, j) in a sorted CSR pattern.
func slotOf(rowPtr, colIdx []int, i, j int) int {
	lo, hi := rowPtr[i], rowPtr[i+1]
	k := lo + sort.SearchInts(colIdx[lo:hi], j)
	if k >= hi || colIdx[k] != j {
		panic(fmt.Sprintf("petri: pattern misses entry (%d,%d)", i, j))
	}
	return k
}

// States returns the number of tangible states the plan covers.
func (p *GeneratorPlan) States() int { return p.n }

// NNZ returns the number of stored generator entries.
func (p *GeneratorPlan) NNZ() int { return len(p.colIdx) }

// Stamp assembles g's generator Q into a workspace-pooled CSR by rewriting
// only the values array of the precomputed pattern. g must be the graph
// the plan was built from or one of its Restamp siblings. Release the
// result with ws.PutCSR.
func (p *GeneratorPlan) Stamp(g *Graph, ws *linalg.Workspace) (*linalg.CSR, error) {
	return p.stamp(g, ws, p.rowPtr, p.colIdx, p.edgeOff, p.edgeDiag)
}

// StampTranspose assembles the transpose of g's generator (row j holding
// the incoming rates of state j), the layout the Gauss-Seidel steady-state
// sweep consumes.
func (p *GeneratorPlan) StampTranspose(g *Graph, ws *linalg.Workspace) (*linalg.CSR, error) {
	return p.stamp(g, ws, p.tRowPtr, p.tColIdx, p.tEdgeOff, p.tEdgeDiag)
}

func (p *GeneratorPlan) stamp(g *Graph, ws *linalg.Workspace, rowPtr, colIdx, off, diag []int) (*linalg.CSR, error) {
	if g.NumStates() != p.n || len(g.Exp) != len(off) {
		return nil, fmt.Errorf("%w: plan covers %d states/%d edges, graph has %d/%d",
			ErrStructureMismatch, p.n, len(off), g.NumStates(), len(g.Exp))
	}
	c := ws.CSR(p.n, p.n, len(colIdx))
	copy(c.RowPtr, rowPtr)
	copy(c.ColIdx, colIdx)
	for k, e := range g.Exp {
		c.Vals[off[k]] += e.Rate
		c.Vals[diag[k]] -= e.Rate
	}
	if faultinject.Enabled() {
		fiStampCorrupt.Corrupt(c.Vals)
	}
	return c, nil
}

// SparsePlan returns the graph's generator assembly plan, building it on
// first use and memoizing it on the topology shared with every Restamp
// sibling. Graphs assembled without Explore fall back to a fresh plan per
// call.
func (g *Graph) SparsePlan() *GeneratorPlan {
	if g.topo == nil {
		metPlanBuilds.Inc()
		return NewGeneratorPlan(g)
	}
	built := false
	g.topo.planOnce.Do(func() {
		built = true
		metPlanBuilds.Inc()
		g.topo.plan = NewGeneratorPlan(g)
	})
	if !built {
		metPlanMemoHits.Inc()
	}
	return g.topo.plan
}

// GeneratorCSR assembles the CTMC generator in CSR form from the graph's
// rate edges without materializing a dense matrix. The CSR comes from ws
// (release with ws.PutCSR); a nil workspace allocates.
func (g *Graph) GeneratorCSR(ws *linalg.Workspace) (*linalg.CSR, error) {
	if g.NumStates() == 0 {
		return nil, ErrNoStates
	}
	return g.SparsePlan().Stamp(g, ws)
}

// GeneratorCSRTranspose assembles the transpose of the generator in CSR
// form; see GeneratorCSR.
func (g *Graph) GeneratorCSRTranspose(ws *linalg.Workspace) (*linalg.CSR, error) {
	if g.NumStates() == 0 {
		return nil, ErrNoStates
	}
	return g.SparsePlan().StampTranspose(g, ws)
}

// DetBranchCSR returns the clock branching matrix D (D[i][j] = probability
// that the deterministic firing in state i lands in tangible state j,
// zero rows for states without a deterministic transition). The
// probabilities are rate-independent, so the matrix is built once per
// topology and shared read-only across Restamp siblings.
func (g *Graph) DetBranchCSR() *linalg.CSR {
	if g.topo == nil {
		return buildDetCSR(g)
	}
	g.topo.detOnce.Do(func() { g.topo.det = buildDetCSR(g) })
	return g.topo.det
}

func buildDetCSR(g *Graph) *linalg.CSR {
	n := g.NumStates()
	nnz := 0
	for _, sched := range g.Det {
		if sched != nil {
			nnz += len(sched.Successors)
		}
	}
	c := linalg.NewCSR(n, n, nnz)
	k := 0
	for i, sched := range g.Det {
		c.RowPtr[i] = k
		if sched == nil {
			continue
		}
		for _, pe := range sched.Successors {
			c.ColIdx[k] = pe.To
			c.Vals[k] = pe.Prob
			k++
		}
	}
	c.RowPtr[n] = k
	return c
}
