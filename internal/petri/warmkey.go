package petri

// TopologyKey identifies the explored topology this graph was built on:
// two graphs share a key exactly when one is a Restamp sibling of the
// other (same marking set, state indices, and edge pattern — only rates
// and delays may differ). The key is the shared topology pointer, opaque
// to callers; it is the natural registry key for warm-start seeding
// because a stationary vector is only a meaningful initial guess on the
// identical state enumeration. A graph built without exploration (nil
// topology) returns nil, which callers must treat as "never share".
func (g *Graph) TopologyKey() any {
	if g == nil || g.topo == nil {
		return nil
	}
	return g.topo
}

// RateSignature appends this graph's full parameter vector — every
// exponential edge rate in edge order, then every deterministic delay in
// state order — to dst and returns the extended slice. Restamp siblings
// have signatures of identical length and layout, so the L1 distance
// between two signatures measures how far apart two parameter points are;
// the warm-start registry uses it to pick the nearest already-solved
// neighbor.
func (g *Graph) RateSignature(dst []float64) []float64 {
	for _, e := range g.Exp {
		dst = append(dst, e.Rate)
	}
	for _, sched := range g.Det {
		if sched == nil {
			dst = append(dst, 0)
		} else {
			dst = append(dst, sched.Delay)
		}
	}
	return dst
}
