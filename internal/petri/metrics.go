package petri

import "nvrel/internal/obs"

// Metric handles for state-space exploration, restamping, and the
// steady-state solver routing. All updates are no-ops while obs is
// disabled (the default).
var (
	metExploreRuns   = obs.CounterFor("petri.explore.runs")
	metExploreStates = obs.CounterFor("petri.explore.states")
	metExploreEdges  = obs.CounterFor("petri.explore.edges")

	// metRestamps counts Graph.Restamp calls — sweeps that reused an
	// explored topology instead of re-exploring.
	metRestamps = obs.CounterFor("petri.restamp")

	// Generator-plan memoization: builds derive the CSR pattern, memo
	// hits reuse the one shared across Restamp siblings.
	metPlanBuilds   = obs.CounterFor("petri.plan.build")
	metPlanMemoHits = obs.CounterFor("petri.plan.memo_hit")

	// Steady-state routing: dense direct solves, sparse Gauss-Seidel
	// solves, and sparse solves that fell back to dense GTH after the
	// iteration failed (convergence, guard rejection, or panic).
	metSolveDense    = obs.CounterFor("petri.solve.dense")
	metSolveSparse   = obs.CounterFor("petri.solve.sparse")
	metSolveFallback = obs.CounterFor("petri.solve.fallback_dense")

	// Fallback-chain outcomes: solves that escalated to the uniformized
	// power backstop, solves that recovered on any fallback rung after a
	// failure, and solves whose chain was exhausted (a typed error reached
	// the caller).
	metSolveFallbackPower = obs.CounterFor("petri.solve.fallback_power")
	metSolveRecovered     = obs.CounterFor("petri.solve.recovered")
	metSolveFailed        = obs.CounterFor("petri.solve.failed")
)
