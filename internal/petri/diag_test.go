package petri

import (
	"math"
	"math/rand"
	"testing"

	"nvrel/internal/linalg"
)

// TestSteadyStateDiagDensePath: state spaces below the sparse threshold
// must report the dense GTH path with no Gauss-Seidel sweeps.
func TestSteadyStateDiagDensePath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := linalg.SparseThreshold / 2
	g := randomReachabilityGraph(rng, n)
	pi, diag, err := g.SteadyStateDiagWS(nil)
	if err != nil {
		t.Fatalf("SteadyStateDiagWS: %v", err)
	}
	if diag.Path != PathDense {
		t.Fatalf("path = %v, want %v", diag.Path, PathDense)
	}
	if diag.States != n {
		t.Fatalf("states = %d, want %d", diag.States, n)
	}
	if diag.GSSweeps != 0 {
		t.Fatalf("GSSweeps = %d on the dense path, want 0", diag.GSSweeps)
	}
	if diag.Fallback != nil {
		t.Fatalf("fallback = %v on the dense path, want nil", diag.Fallback)
	}
	var sum float64
	for _, v := range pi {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pi sums to %v, want 1", sum)
	}
}

// TestSteadyStateDiagSparsePath: state spaces at or above the threshold
// must report the sparse path with a positive sweep count and no fallback —
// the diagnostics exist precisely so a silent degrade to the dense backstop
// becomes assertable.
func TestSteadyStateDiagSparsePath(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ws := linalg.NewWorkspace()
	n := linalg.SparseThreshold + 40
	g := randomReachabilityGraph(rng, n)
	pi, diag, err := g.SteadyStateDiagWS(ws)
	if err != nil {
		t.Fatalf("SteadyStateDiagWS: %v", err)
	}
	if diag.Path != PathSparse {
		t.Fatalf("path = %v (fallback: %v), want %v", diag.Path, diag.Fallback, PathSparse)
	}
	if diag.GSSweeps <= 0 {
		t.Fatalf("GSSweeps = %d on the sparse path, want > 0", diag.GSSweeps)
	}
	if diag.Fallback != nil {
		t.Fatalf("fallback = %v without a dense backstop run, want nil", diag.Fallback)
	}
	want, err := g.SteadyStateDenseWS(ws)
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	for i := range want {
		if math.Abs(pi[i]-want[i]) > 1e-10 {
			t.Fatalf("pi[%d] = %.17g, dense reference %.17g", i, pi[i], want[i])
		}
	}
}

// TestSolvePathString: the enum renders stable labels for logs and JSON.
func TestSolvePathString(t *testing.T) {
	cases := map[SolvePath]string{
		PathDense:               "dense",
		PathSparse:              "sparse",
		PathSparseFallbackDense: "sparse-fallback-dense",
		SolvePath(99):           "unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("SolvePath(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}
