package petri

import (
	"context"
	"errors"
	"fmt"

	"nvrel/internal/linalg"
	"nvrel/internal/obs"
)

// ErrNoStates is returned when a graph has an empty tangible state space.
var ErrNoStates = errors.New("petri: graph has no tangible states")

// Generator assembles the CTMC generator matrix over the tangible states
// from the exponential rate edges. Deterministic transitions are not
// represented; callers analyzing a DSPN with a deterministic transition
// should use package mrgp, which combines this generator with the
// deterministic schedules.
func (g *Graph) Generator() (*linalg.Dense, error) {
	return g.GeneratorWS(nil)
}

// GeneratorWS is the workspace-backed form of Generator: the matrix comes
// from ws (release it with ws.PutMat when done). A nil workspace allocates.
func (g *Graph) GeneratorWS(ws *linalg.Workspace) (*linalg.Dense, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, ErrNoStates
	}
	q := ws.Mat(n, n)
	for _, e := range g.Exp {
		q.Add(e.From, e.To, e.Rate)
		q.Add(e.From, e.From, -e.Rate)
	}
	return q, nil
}

// HasDeterministic reports whether any tangible state enables a
// deterministic transition.
func (g *Graph) HasDeterministic() bool {
	for _, d := range g.Det {
		if d != nil {
			return true
		}
	}
	return false
}

// RewardFn maps a tangible marking to a rate reward.
type RewardFn func(Marking) float64

// RewardVector evaluates a reward function over every tangible state.
func (g *Graph) RewardVector(f RewardFn) []float64 {
	r := make([]float64, g.NumStates())
	for i, m := range g.Markings {
		r[i] = f(m)
	}
	return r
}

// SteadyState computes the stationary distribution of a graph with no
// deterministic transitions (a plain GSPN/CTMC).
func (g *Graph) SteadyState() ([]float64, error) {
	return g.SteadyStateWS(nil)
}

// SteadyStateWS is the workspace-backed form of SteadyState; scratch comes
// from ws. The returned vector is freshly allocated either way. State
// spaces of linalg.SparseThreshold states or more route through the sparse
// Gauss-Seidel solver (with dense GTH as convergence backstop); smaller
// ones go straight to dense GTH, whose constant factors win there.
func (g *Graph) SteadyStateWS(ws *linalg.Workspace) ([]float64, error) {
	pi, _, err := g.SteadyStateDiagWS(ws)
	return pi, err
}

// SteadyStateCtxWS is SteadyStateWS with a context: the iterative kernels
// check for cancellation periodically and the fallback chain stops at the
// first deadline failure instead of retrying slower solvers against a
// dead clock.
func (g *Graph) SteadyStateCtxWS(ctx context.Context, ws *linalg.Workspace) ([]float64, error) {
	pi, _, err := g.SteadyStateDiagCtxWS(ctx, ws)
	return pi, err
}

// SolvePath identifies which solver produced a steady-state result.
type SolvePath int

// Solver paths, in routing order.
const (
	// PathDense is the dense GTH direct solve.
	PathDense SolvePath = iota
	// PathSparse is the CSR Gauss-Seidel iteration.
	PathSparse
	// PathSparseFallbackDense means the Gauss-Seidel iteration did not
	// converge and the dense GTH backstop produced the result.
	PathSparseFallbackDense
	// PathDenseFallbackPower means the dense GTH solve failed (or its
	// result was rejected by the distribution guard) and the uniformized
	// power backstop produced the result.
	PathDenseFallbackPower
	// PathSparseFallbackPower means both the Gauss-Seidel iteration and
	// the dense GTH backstop failed, and the uniformized power backstop
	// produced the result.
	PathSparseFallbackPower
)

func (p SolvePath) String() string {
	switch p {
	case PathDense:
		return "dense"
	case PathSparse:
		return "sparse"
	case PathSparseFallbackDense:
		return "sparse-fallback-dense"
	case PathDenseFallbackPower:
		return "dense-fallback-power"
	case PathSparseFallbackPower:
		return "sparse-fallback-power"
	default:
		return "unknown"
	}
}

// Attempt records one failed rung of the fallback chain: which solver ran,
// how many iterations it spent, and the typed error that sent the chain to
// the next rung. Successful rungs are not recorded — the SolveDiag Path
// identifies the solver that produced the result — so a clean first-try
// solve allocates nothing here.
type Attempt struct {
	// Solver is "gs", "gth" or "power".
	Solver string
	// Sweeps is the iteration count of the failed attempt (zero for GTH).
	Sweeps int
	// Err is the typed failure that forced the fallback.
	Err error
}

// SolveDiag reports how a steady-state solve went: the path taken, the
// Gauss-Seidel sweep count (zero on the dense path), the first failure
// that forced a fallback (nil otherwise), and the per-attempt outcomes of
// every failed rung. It exists so callers and tests can assert the solver
// behavior that the result vector alone cannot reveal — most importantly
// that a sparse solve did not silently degrade to a backstop.
type SolveDiag struct {
	States   int
	Path     SolvePath
	GSSweeps int
	Fallback error
	Attempts []Attempt

	// PowerIters is the iteration count of the uniformized power rung when
	// it produced the result (zero when power never ran or failed; failed
	// power attempts record their count in Attempts).
	PowerIters int

	// Seeded reports whether the iterative kernel that produced the result
	// started from an accepted warm-start seed. A seed consumed by a rung
	// that then fell back does not count: fallback rungs always restart
	// from uniform.
	Seeded bool

	// SeedSource describes where an accepted seed came from (set by the
	// warm-start registry layer; empty for cold solves).
	SeedSource string

	// Residual is the final relative L1 residual of the accepting
	// Gauss-Seidel sweep when the sparse rung produced the result (zero
	// for the direct dense path, which has no iteration residual, and for
	// fallback rungs). It feeds the numerics flight recorder: a residual
	// creeping toward the stall band is the early signal of a chain the
	// iterative solver is barely holding.
	Residual float64
}

// Iterations is the total iterative-kernel work of the solve: Gauss-Seidel
// sweeps plus power iterations, including the sweeps of failed attempts
// (GSSweeps already counts a failed GS rung; failed power rungs record
// their iterations in Attempts and are added here).
func (d SolveDiag) Iterations() int {
	total := d.GSSweeps + d.PowerIters
	for _, a := range d.Attempts {
		if a.Solver == "power" {
			total += a.Sweeps
		}
	}
	return total
}

// SteadyStateDiagWS computes the stationary distribution like
// SteadyStateWS and additionally reports which solver path produced it.
func (g *Graph) SteadyStateDiagWS(ws *linalg.Workspace) ([]float64, SolveDiag, error) {
	return g.SteadyStateDiagCtxWS(nil, ws)
}

// isDeadline reports whether err is a typed deadline failure — the one
// failure kind the fallback chain must not retry past, because every
// later rung would burn time against a clock that already expired.
func isDeadline(err error) bool {
	se, ok := linalg.AsSolveError(err)
	return ok && se.Kind == linalg.FailDeadline
}

// SteadyStateDiagCtxWS is the hardened steady-state entry point: solver
// routing by size, a validated fallback chain driven by typed failures
// (sparse: GS -> dense GTH -> uniformized power; dense: GTH -> power),
// panic recovery around every kernel, and a distribution guard on every
// candidate result. The contract is that a fault anywhere in the solve
// either recovers on a later rung or surfaces as a typed
// *linalg.SolveError — never a silently wrong vector.
func (g *Graph) SteadyStateDiagCtxWS(ctx context.Context, ws *linalg.Workspace) ([]float64, SolveDiag, error) {
	return g.SteadyStateSeededDiagCtxWS(ctx, ws, nil)
}

// SteadyStateSeededDiagCtxWS is SteadyStateDiagCtxWS with an optional
// warm-start seed: a previous stationary vector from a Restamp sibling of
// this graph. Only the first Gauss-Seidel rung consumes the seed — the
// dense GTH route and every fallback rung restart from their usual
// initialization, so chain semantics and the direct paths are unchanged
// and a nil seed reproduces SteadyStateDiagCtxWS bit for bit. The
// returned diag reports whether the producing kernel actually started
// warm (Seeded) alongside the usual path and iteration counts.
func (g *Graph) SteadyStateSeededDiagCtxWS(ctx context.Context, ws *linalg.Workspace, seed []float64) ([]float64, SolveDiag, error) {
	ctx, sp := obs.StartSpan(ctx, "petri.solve")
	pi, diag, err := g.steadyStateDiagCtxWS(ctx, ws, seed)
	sp.Int("states", int64(diag.States)).
		Str("path", diag.Path.String()).
		Int("gs_sweeps", int64(diag.GSSweeps)).
		Int("power_iters", int64(diag.PowerIters)).
		Int("fallbacks", int64(len(diag.Attempts))).
		Str("seeded", map[bool]string{false: "cold", true: "warm"}[diag.Seeded]).
		Err(err)
	sp.End()
	return pi, diag, err
}

func (g *Graph) steadyStateDiagCtxWS(ctx context.Context, ws *linalg.Workspace, seed []float64) ([]float64, SolveDiag, error) {
	if g.HasDeterministic() {
		return nil, SolveDiag{}, errors.New("petri: graph has deterministic transitions; use mrgp.Solve")
	}
	if err := linalg.CtxError("petri.solve", ctx); err != nil {
		return nil, SolveDiag{States: g.NumStates()}, err
	}
	if g.NumStates() >= linalg.SparseThreshold {
		return g.steadyStateSparseDiagCtxWS(ctx, ws, seed)
	}
	metSolveDense.Inc()
	diag := SolveDiag{States: g.NumStates(), Path: PathDense}
	pi, err := g.steadyStateDenseGuarded(ctx, ws)
	if err == nil {
		return pi, diag, nil
	}
	diag.Fallback = err
	diag.Attempts = append(diag.Attempts, Attempt{Solver: "gth", Err: err})
	if isDeadline(err) {
		metSolveFailed.Inc()
		return nil, diag, err
	}
	diag.Path = PathDenseFallbackPower
	metSolveFallbackPower.Inc()
	pi, iters, perr := g.steadyStatePowerGuarded(ctx, ws)
	if perr != nil {
		diag.Attempts = append(diag.Attempts, Attempt{Solver: "power", Sweeps: iters, Err: perr})
		metSolveFailed.Inc()
		return nil, diag, perr
	}
	diag.PowerIters = iters
	metSolveRecovered.Inc()
	return pi, diag, nil
}

// SteadyStateDenseWS computes the stationary distribution by dense GTH
// elimination, unconditionally. It is the reference path the sparse solver
// is validated against and the backstop when iteration fails to converge.
func (g *Graph) SteadyStateDenseWS(ws *linalg.Workspace) ([]float64, error) {
	q, err := g.GeneratorWS(ws)
	if err != nil {
		return nil, err
	}
	defer ws.PutMat(q)
	return ws.SteadyStateGTH(q, nil)
}

// SteadyStateSparseWS computes the stationary distribution by Gauss-Seidel
// sweeps over the transposed CSR generator, never materializing a dense
// matrix. If the iteration does not converge it falls back to dense GTH.
func (g *Graph) SteadyStateSparseWS(ws *linalg.Workspace) ([]float64, error) {
	pi, _, err := g.steadyStateSparseDiagCtxWS(nil, ws, nil)
	return pi, err
}

func (g *Graph) steadyStateSparseDiagCtxWS(ctx context.Context, ws *linalg.Workspace, seed []float64) ([]float64, SolveDiag, error) {
	metSolveSparse.Inc()
	diag := SolveDiag{States: g.NumStates(), Path: PathSparse}
	pi := make([]float64, g.NumStates())
	sweeps, warm, res, err := g.sparseGSGuarded(ctx, ws, pi, seed)
	diag.GSSweeps = sweeps
	if err == nil {
		diag.Seeded = warm
		diag.Residual = res
		return pi, diag, nil
	}
	diag.Fallback = err
	diag.Attempts = append(diag.Attempts, Attempt{Solver: "gs", Sweeps: sweeps, Err: err})
	if isDeadline(err) {
		metSolveFailed.Inc()
		return nil, diag, err
	}
	// Rung 2: dense GTH. The dense generator is assembled independently
	// from the rate edges, so a corrupted CSR stamp does not poison it.
	metSolveFallback.Inc()
	diag.Path = PathSparseFallbackDense
	dpi, derr := g.steadyStateDenseGuarded(ctx, ws)
	if derr == nil {
		metSolveRecovered.Inc()
		return dpi, diag, nil
	}
	diag.Attempts = append(diag.Attempts, Attempt{Solver: "gth", Err: derr})
	if isDeadline(derr) {
		metSolveFailed.Inc()
		return nil, diag, derr
	}
	// Rung 3: uniformized power iteration, which needs nothing from the
	// generator beyond matvecs.
	diag.Path = PathSparseFallbackPower
	metSolveFallbackPower.Inc()
	ppi, iters, perr := g.steadyStatePowerGuarded(ctx, ws)
	if perr != nil {
		diag.Attempts = append(diag.Attempts, Attempt{Solver: "power", Sweeps: iters, Err: perr})
		metSolveFailed.Inc()
		return nil, diag, perr
	}
	diag.PowerIters = iters
	metSolveRecovered.Inc()
	return ppi, diag, nil
}

// sparseGSGuarded runs one Gauss-Seidel attempt with panic recovery and a
// result guard; pi receives the distribution on success. The rung span
// covers generator stamping plus validation; the nested kernel span
// isolates the Gauss-Seidel iteration itself (the kernel stays
// span-free internally so its NoAlloc guarantees are untouched).
func (g *Graph) sparseGSGuarded(ctx context.Context, ws *linalg.Workspace, pi, seed []float64) (sweeps int, warm bool, residual float64, err error) {
	ctx, sp := obs.StartSpan(ctx, "petri.rung.gs")
	defer func() {
		sp.Int("sweeps", int64(sweeps)).Err(err)
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			err = linalg.NewPanicError("petri.solve.gs", r)
		}
	}()
	qt, err := g.GeneratorCSRTranspose(ws)
	if err != nil {
		return 0, false, 0, err
	}
	_, ksp := obs.StartSpan(ctx, "linalg.gs")
	sweeps, warm, residual, err = ws.SteadyStateGSSeededResCtx(ctx, qt, pi, seed)
	ksp.Int("sweeps", int64(sweeps)).Int("nnz", int64(qt.NNZ())).Err(err)
	ksp.End()
	ws.PutCSR(qt)
	if err == nil {
		err = linalg.ValidateDistribution("petri.solve.gs", pi)
	}
	return sweeps, warm, residual, err
}

// steadyStateDenseGuarded runs one dense GTH attempt with panic recovery
// and a result guard. The body inlines SteadyStateDenseWS so the kernel
// span covers only the GTH elimination, not the generator assembly.
func (g *Graph) steadyStateDenseGuarded(ctx context.Context, ws *linalg.Workspace) (pi []float64, err error) {
	ctx, sp := obs.StartSpan(ctx, "petri.rung.gth")
	defer func() {
		sp.Err(err)
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			pi, err = nil, linalg.NewPanicError("petri.solve.gth", r)
		}
	}()
	q, err := g.GeneratorWS(ws)
	if err != nil {
		return nil, err
	}
	defer ws.PutMat(q)
	_, ksp := obs.StartSpan(ctx, "linalg.gth")
	pi, err = ws.SteadyStateGTH(q, nil)
	ksp.Err(err)
	ksp.End()
	if err == nil {
		if verr := linalg.ValidateDistribution("petri.solve.gth", pi); verr != nil {
			return nil, verr
		}
	}
	return pi, err
}

// steadyStatePowerGuarded runs one uniformized power-iteration attempt —
// the last rung of the chain — with panic recovery and a result guard.
func (g *Graph) steadyStatePowerGuarded(ctx context.Context, ws *linalg.Workspace) (pi []float64, iters int, err error) {
	ctx, sp := obs.StartSpan(ctx, "petri.rung.power")
	defer func() {
		sp.Int("iters", int64(iters)).Err(err)
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			pi, iters, err = nil, 0, linalg.NewPanicError("petri.solve.power", r)
		}
	}()
	q, err := g.GeneratorCSR(ws)
	if err != nil {
		return nil, 0, err
	}
	pi = make([]float64, g.NumStates())
	_, ksp := obs.StartSpan(ctx, "linalg.power")
	iters, err = ws.SteadyStatePowerCtx(ctx, q, pi)
	ksp.Int("iters", int64(iters)).Int("nnz", int64(q.NNZ())).Err(err)
	ksp.End()
	ws.PutCSR(q)
	if err == nil {
		err = linalg.ValidateDistribution("petri.solve.power", pi)
	}
	if err != nil {
		return nil, iters, err
	}
	return pi, iters, nil
}

// SteadyStateRungCtxWS runs exactly one named rung of the steady-state
// chain — "gs" (sparse Gauss-Seidel), "gth" (dense direct), or "power"
// (uniformized power iteration) — with NO fallback: a failing rung
// surfaces its typed error instead of rerouting. It is the
// shadow-verification primitive (internal/shadow): a cross-check
// re-solve must stay on the independent path it was assigned, because
// silently falling back onto the primary's path would compare the
// primary result against itself. The returned count is the rung's
// iterative work (GS sweeps or power iterations; zero for the direct
// GTH elimination). The result is guard-validated like every chain rung.
func (g *Graph) SteadyStateRungCtxWS(ctx context.Context, ws *linalg.Workspace, rung string) ([]float64, int, error) {
	if g.HasDeterministic() {
		return nil, 0, errors.New("petri: graph has deterministic transitions; use mrgp.Solve")
	}
	switch rung {
	case "gs":
		pi := make([]float64, g.NumStates())
		sweeps, _, _, err := g.sparseGSGuarded(ctx, ws, pi, nil)
		if err != nil {
			return nil, sweeps, err
		}
		return pi, sweeps, nil
	case "gth":
		pi, err := g.steadyStateDenseGuarded(ctx, ws)
		return pi, 0, err
	case "power":
		return g.steadyStatePowerGuarded(ctx, ws)
	default:
		return nil, 0, fmt.Errorf("petri: unknown solver rung %q (want gs, gth, or power)", rung)
	}
}

// ExpectedReward computes the steady-state expected reward of a graph with
// no deterministic transitions.
func (g *Graph) ExpectedReward(f RewardFn) (float64, error) {
	pi, err := g.SteadyState()
	if err != nil {
		return 0, err
	}
	return linalg.Dot(pi, g.RewardVector(f))
}
