package petri

import (
	"errors"

	"nvrel/internal/linalg"
)

// ErrNoStates is returned when a graph has an empty tangible state space.
var ErrNoStates = errors.New("petri: graph has no tangible states")

// Generator assembles the CTMC generator matrix over the tangible states
// from the exponential rate edges. Deterministic transitions are not
// represented; callers analyzing a DSPN with a deterministic transition
// should use package mrgp, which combines this generator with the
// deterministic schedules.
func (g *Graph) Generator() (*linalg.Dense, error) {
	return g.GeneratorWS(nil)
}

// GeneratorWS is the workspace-backed form of Generator: the matrix comes
// from ws (release it with ws.PutMat when done). A nil workspace allocates.
func (g *Graph) GeneratorWS(ws *linalg.Workspace) (*linalg.Dense, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, ErrNoStates
	}
	q := ws.Mat(n, n)
	for _, e := range g.Exp {
		q.Add(e.From, e.To, e.Rate)
		q.Add(e.From, e.From, -e.Rate)
	}
	return q, nil
}

// HasDeterministic reports whether any tangible state enables a
// deterministic transition.
func (g *Graph) HasDeterministic() bool {
	for _, d := range g.Det {
		if d != nil {
			return true
		}
	}
	return false
}

// RewardFn maps a tangible marking to a rate reward.
type RewardFn func(Marking) float64

// RewardVector evaluates a reward function over every tangible state.
func (g *Graph) RewardVector(f RewardFn) []float64 {
	r := make([]float64, g.NumStates())
	for i, m := range g.Markings {
		r[i] = f(m)
	}
	return r
}

// SteadyState computes the stationary distribution of a graph with no
// deterministic transitions (a plain GSPN/CTMC).
func (g *Graph) SteadyState() ([]float64, error) {
	return g.SteadyStateWS(nil)
}

// SteadyStateWS is the workspace-backed form of SteadyState; scratch comes
// from ws. The returned vector is freshly allocated either way. State
// spaces of linalg.SparseThreshold states or more route through the sparse
// Gauss-Seidel solver (with dense GTH as convergence backstop); smaller
// ones go straight to dense GTH, whose constant factors win there.
func (g *Graph) SteadyStateWS(ws *linalg.Workspace) ([]float64, error) {
	if g.HasDeterministic() {
		return nil, errors.New("petri: graph has deterministic transitions; use mrgp.Solve")
	}
	if g.NumStates() >= linalg.SparseThreshold {
		return g.SteadyStateSparseWS(ws)
	}
	return g.SteadyStateDenseWS(ws)
}

// SteadyStateDenseWS computes the stationary distribution by dense GTH
// elimination, unconditionally. It is the reference path the sparse solver
// is validated against and the backstop when iteration fails to converge.
func (g *Graph) SteadyStateDenseWS(ws *linalg.Workspace) ([]float64, error) {
	q, err := g.GeneratorWS(ws)
	if err != nil {
		return nil, err
	}
	defer ws.PutMat(q)
	return ws.SteadyStateGTH(q, nil)
}

// SteadyStateSparseWS computes the stationary distribution by Gauss-Seidel
// sweeps over the transposed CSR generator, never materializing a dense
// matrix. If the iteration does not converge it falls back to dense GTH.
func (g *Graph) SteadyStateSparseWS(ws *linalg.Workspace) ([]float64, error) {
	qt, err := g.GeneratorCSRTranspose(ws)
	if err != nil {
		return nil, err
	}
	pi := make([]float64, g.NumStates())
	err = ws.SteadyStateGS(qt, pi)
	ws.PutCSR(qt)
	if errors.Is(err, linalg.ErrNotConverged) {
		return g.SteadyStateDenseWS(ws)
	}
	if err != nil {
		return nil, err
	}
	return pi, nil
}

// ExpectedReward computes the steady-state expected reward of a graph with
// no deterministic transitions.
func (g *Graph) ExpectedReward(f RewardFn) (float64, error) {
	pi, err := g.SteadyState()
	if err != nil {
		return 0, err
	}
	return linalg.Dot(pi, g.RewardVector(f))
}
