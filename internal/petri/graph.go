package petri

import (
	"errors"

	"nvrel/internal/linalg"
)

// ErrNoStates is returned when a graph has an empty tangible state space.
var ErrNoStates = errors.New("petri: graph has no tangible states")

// Generator assembles the CTMC generator matrix over the tangible states
// from the exponential rate edges. Deterministic transitions are not
// represented; callers analyzing a DSPN with a deterministic transition
// should use package mrgp, which combines this generator with the
// deterministic schedules.
func (g *Graph) Generator() (*linalg.Dense, error) {
	return g.GeneratorWS(nil)
}

// GeneratorWS is the workspace-backed form of Generator: the matrix comes
// from ws (release it with ws.PutMat when done). A nil workspace allocates.
func (g *Graph) GeneratorWS(ws *linalg.Workspace) (*linalg.Dense, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, ErrNoStates
	}
	q := ws.Mat(n, n)
	for _, e := range g.Exp {
		q.Add(e.From, e.To, e.Rate)
		q.Add(e.From, e.From, -e.Rate)
	}
	return q, nil
}

// HasDeterministic reports whether any tangible state enables a
// deterministic transition.
func (g *Graph) HasDeterministic() bool {
	for _, d := range g.Det {
		if d != nil {
			return true
		}
	}
	return false
}

// RewardFn maps a tangible marking to a rate reward.
type RewardFn func(Marking) float64

// RewardVector evaluates a reward function over every tangible state.
func (g *Graph) RewardVector(f RewardFn) []float64 {
	r := make([]float64, g.NumStates())
	for i, m := range g.Markings {
		r[i] = f(m)
	}
	return r
}

// SteadyState computes the stationary distribution of a graph with no
// deterministic transitions (a plain GSPN/CTMC).
func (g *Graph) SteadyState() ([]float64, error) {
	return g.SteadyStateWS(nil)
}

// SteadyStateWS is the workspace-backed form of SteadyState; scratch comes
// from ws. The returned vector is freshly allocated either way. State
// spaces of linalg.SparseThreshold states or more route through the sparse
// Gauss-Seidel solver (with dense GTH as convergence backstop); smaller
// ones go straight to dense GTH, whose constant factors win there.
func (g *Graph) SteadyStateWS(ws *linalg.Workspace) ([]float64, error) {
	pi, _, err := g.SteadyStateDiagWS(ws)
	return pi, err
}

// SolvePath identifies which solver produced a steady-state result.
type SolvePath int

// Solver paths, in routing order.
const (
	// PathDense is the dense GTH direct solve.
	PathDense SolvePath = iota
	// PathSparse is the CSR Gauss-Seidel iteration.
	PathSparse
	// PathSparseFallbackDense means the Gauss-Seidel iteration did not
	// converge and the dense GTH backstop produced the result.
	PathSparseFallbackDense
)

func (p SolvePath) String() string {
	switch p {
	case PathDense:
		return "dense"
	case PathSparse:
		return "sparse"
	case PathSparseFallbackDense:
		return "sparse-fallback-dense"
	default:
		return "unknown"
	}
}

// SolveDiag reports how a steady-state solve went: the path taken, the
// Gauss-Seidel sweep count (zero on the dense path), and the convergence
// error that forced a fallback (nil otherwise). It exists so callers and
// tests can assert the solver behavior that the result vector alone
// cannot reveal — most importantly that a sparse solve did not silently
// degrade to the dense backstop.
type SolveDiag struct {
	States   int
	Path     SolvePath
	GSSweeps int
	Fallback error
}

// SteadyStateDiagWS computes the stationary distribution like
// SteadyStateWS and additionally reports which solver path produced it.
func (g *Graph) SteadyStateDiagWS(ws *linalg.Workspace) ([]float64, SolveDiag, error) {
	if g.HasDeterministic() {
		return nil, SolveDiag{}, errors.New("petri: graph has deterministic transitions; use mrgp.Solve")
	}
	if g.NumStates() >= linalg.SparseThreshold {
		return g.steadyStateSparseDiagWS(ws)
	}
	metSolveDense.Inc()
	diag := SolveDiag{States: g.NumStates(), Path: PathDense}
	pi, err := g.SteadyStateDenseWS(ws)
	return pi, diag, err
}

// SteadyStateDenseWS computes the stationary distribution by dense GTH
// elimination, unconditionally. It is the reference path the sparse solver
// is validated against and the backstop when iteration fails to converge.
func (g *Graph) SteadyStateDenseWS(ws *linalg.Workspace) ([]float64, error) {
	q, err := g.GeneratorWS(ws)
	if err != nil {
		return nil, err
	}
	defer ws.PutMat(q)
	return ws.SteadyStateGTH(q, nil)
}

// SteadyStateSparseWS computes the stationary distribution by Gauss-Seidel
// sweeps over the transposed CSR generator, never materializing a dense
// matrix. If the iteration does not converge it falls back to dense GTH.
func (g *Graph) SteadyStateSparseWS(ws *linalg.Workspace) ([]float64, error) {
	pi, _, err := g.steadyStateSparseDiagWS(ws)
	return pi, err
}

func (g *Graph) steadyStateSparseDiagWS(ws *linalg.Workspace) ([]float64, SolveDiag, error) {
	metSolveSparse.Inc()
	diag := SolveDiag{States: g.NumStates(), Path: PathSparse}
	qt, err := g.GeneratorCSRTranspose(ws)
	if err != nil {
		return nil, diag, err
	}
	pi := make([]float64, g.NumStates())
	diag.GSSweeps, err = ws.SteadyStateGS(qt, pi)
	ws.PutCSR(qt)
	if errors.Is(err, linalg.ErrNotConverged) {
		metSolveFallback.Inc()
		diag.Path = PathSparseFallbackDense
		diag.Fallback = err
		pi, err := g.SteadyStateDenseWS(ws)
		return pi, diag, err
	}
	if err != nil {
		return nil, diag, err
	}
	return pi, diag, nil
}

// ExpectedReward computes the steady-state expected reward of a graph with
// no deterministic transitions.
func (g *Graph) ExpectedReward(f RewardFn) (float64, error) {
	pi, err := g.SteadyState()
	if err != nil {
		return 0, err
	}
	return linalg.Dot(pi, g.RewardVector(f))
}
