package petri

import (
	"fmt"
	"math"
)

// Enabled reports whether transition t may fire in marking m: every input
// place holds at least the arc multiplicity, every inhibitor place holds
// strictly fewer tokens than its arc multiplicity, and the guard (if any)
// holds.
func (n *Net) Enabled(t TransitionRef, m Marking) bool {
	tr := &n.transitions[t]
	if tr.Guard != nil && !tr.Guard(m) {
		return false
	}
	for _, a := range tr.Inputs {
		if m[a.Place] < a.multiplicity(m) {
			return false
		}
	}
	for _, a := range tr.Inhibitors {
		if m[a.Place] >= a.multiplicity(m) {
			return false
		}
	}
	// An immediate or exponential transition with a marking-dependent
	// weight of zero is effectively disabled.
	switch tr.Kind {
	case Immediate, Exponential:
		if w := n.rateOf(t, m); w <= 0 {
			return false
		}
	}
	return true
}

// Fire returns the marking after firing t in m. Arc multiplicities are
// evaluated on the pre-firing marking (standard GSPN semantics, required by
// the paper's w5/w6 arcs whose multiplicity depends on #Pmr before the
// rejuvenation batch completes). Fire does not re-check enabledness of
// guards; callers should test Enabled first.
func (n *Net) Fire(t TransitionRef, m Marking) (Marking, error) {
	tr := &n.transitions[t]
	out := m.Clone()
	for _, a := range tr.Inputs {
		w := a.multiplicity(m)
		out[a.Place] -= w
		if out[a.Place] < 0 {
			return nil, fmt.Errorf("petri: firing %q in %s drives place %q negative",
				tr.Name, n.FormatMarking(m), n.places[a.Place].name)
		}
	}
	for _, a := range tr.Outputs {
		out[a.Place] += a.multiplicity(m)
	}
	return out, nil
}

// rateOf evaluates the rate (exponential) or weight (immediate) of t in m.
func (n *Net) rateOf(t TransitionRef, m Marking) float64 {
	tr := &n.transitions[t]
	if tr.RateFn != nil {
		return tr.RateFn(m)
	}
	return tr.Rate
}

// enabledByKind returns the enabled transitions of each kind in m. For
// immediate transitions only the highest enabled priority class is returned.
func (n *Net) enabledByKind(m Marking) (immediates, exponentials, deterministics []TransitionRef) {
	bestPriority := math.MinInt
	for i := range n.transitions {
		t := TransitionRef(i)
		if !n.Enabled(t, m) {
			continue
		}
		switch n.transitions[i].Kind {
		case Immediate:
			switch p := n.transitions[i].Priority; {
			case p > bestPriority:
				bestPriority = p
				immediates = immediates[:0]
				immediates = append(immediates, t)
			case p == bestPriority:
				immediates = append(immediates, t)
			}
		case Exponential:
			exponentials = append(exponentials, t)
		case Deterministic:
			deterministics = append(deterministics, t)
		}
	}
	return immediates, exponentials, deterministics
}

// IsVanishing reports whether any immediate transition is enabled in m.
func (n *Net) IsVanishing(m Marking) bool {
	for i := range n.transitions {
		if n.transitions[i].Kind == Immediate && n.Enabled(TransitionRef(i), m) {
			return true
		}
	}
	return false
}
