package petri

import (
	"errors"
	"math"
	"testing"
)

// buildMM1K constructs an M/M/1/K queue net.
func buildMM1K(t *testing.T, k int, lam, mu float64) *Net {
	t.Helper()
	b := NewBuilder("mm1k")
	queue := b.AddPlace("queue", 0)
	free := b.AddPlace("free", k)
	b.AddTransition(Spec{
		Name: "arrive", Kind: Exponential, Rate: lam,
		Inputs:  []Arc{{Place: free}},
		Outputs: []Arc{{Place: queue}},
	})
	b.AddTransition(Spec{
		Name: "serve", Kind: Exponential, Rate: mu,
		Inputs:  []Arc{{Place: queue}},
		Outputs: []Arc{{Place: free}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestExploreMM1K(t *testing.T) {
	const (
		k   = 4
		lam = 2.0
		mu  = 3.0
	)
	n := buildMM1K(t, k, lam, mu)
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if g.NumStates() != k+1 {
		t.Fatalf("NumStates = %d, want %d", g.NumStates(), k+1)
	}
	pi, err := g.SteadyState()
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	// Compare against the analytic M/M/1/K distribution, keyed by queue
	// length (place 0).
	rho := lam / mu
	var norm float64
	for i := 0; i <= k; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for s, m := range g.Markings {
		want := math.Pow(rho, float64(m[0])) / norm
		if math.Abs(pi[s]-want) > 1e-12 {
			t.Errorf("pi(queue=%d) = %g, want %g", m[0], pi[s], want)
		}
	}
}

func TestExploreInitialDistribution(t *testing.T) {
	n := buildMM1K(t, 2, 1, 1)
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if len(g.Initial) != g.NumStates() {
		t.Fatalf("Initial length = %d, states = %d", len(g.Initial), g.NumStates())
	}
	init, ok := g.StateIndex(n.InitialMarking())
	if !ok {
		t.Fatal("initial marking not in graph")
	}
	for s, p := range g.Initial {
		want := 0.0
		if s == init {
			want = 1
		}
		if p != want {
			t.Errorf("Initial[%d] = %g, want %g", s, p, want)
		}
	}
}

func TestExploreVanishingElimination(t *testing.T) {
	// An exponential firing lands in a vanishing marking that forks through
	// two weighted immediates (w=1 and w=3) to different tangible markings.
	b := NewBuilder("fork")
	start := b.AddPlace("start", 1)
	mid := b.AddPlace("mid", 0)
	left := b.AddPlace("left", 0)
	right := b.AddPlace("right", 0)
	b.AddTransition(Spec{
		Name: "go", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: start}},
		Outputs: []Arc{{Place: mid}},
	})
	b.AddTransition(Spec{
		Name: "pickLeft", Kind: Immediate, Rate: 1,
		Inputs:  []Arc{{Place: mid}},
		Outputs: []Arc{{Place: left}},
	})
	b.AddTransition(Spec{
		Name: "pickRight", Kind: Immediate, Rate: 3,
		Inputs:  []Arc{{Place: mid}},
		Outputs: []Arc{{Place: right}},
	})
	// Return transitions keep the chain irreducible.
	b.AddTransition(Spec{
		Name: "backL", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: left}},
		Outputs: []Arc{{Place: start}},
	})
	b.AddTransition(Spec{
		Name: "backR", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: right}},
		Outputs: []Arc{{Place: start}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	// Tangible markings: start, left, right. The vanishing mid marking must
	// not appear.
	if g.NumStates() != 3 {
		t.Fatalf("NumStates = %d, want 3", g.NumStates())
	}
	for _, m := range g.Markings {
		if m[mid] != 0 {
			t.Errorf("vanishing marking leaked into graph: %v", m)
		}
	}
	// Rate split must follow the immediate weights: 1/4 vs 3/4.
	var rateLeft, rateRight float64
	startIdx, _ := g.StateIndex(n.InitialMarking())
	for _, e := range g.Exp {
		if e.From != startIdx {
			continue
		}
		switch {
		case g.Markings[e.To][left] == 1:
			rateLeft += e.Rate
		case g.Markings[e.To][right] == 1:
			rateRight += e.Rate
		}
	}
	if math.Abs(rateLeft-0.25) > 1e-12 || math.Abs(rateRight-0.75) > 1e-12 {
		t.Errorf("rates = (%g, %g), want (0.25, 0.75)", rateLeft, rateRight)
	}
}

func TestExploreImmediatePriority(t *testing.T) {
	// Two immediates enabled; the higher priority one must win exclusively.
	b := NewBuilder("prio")
	mid := b.AddPlace("mid", 1)
	hi := b.AddPlace("hi", 0)
	lo := b.AddPlace("lo", 0)
	b.AddTransition(Spec{
		Name: "highPrio", Kind: Immediate, Rate: 1, Priority: 2,
		Inputs:  []Arc{{Place: mid}},
		Outputs: []Arc{{Place: hi}},
	})
	b.AddTransition(Spec{
		Name: "lowPrio", Kind: Immediate, Rate: 100, Priority: 1,
		Inputs:  []Arc{{Place: mid}},
		Outputs: []Arc{{Place: lo}},
	})
	b.AddTransition(Spec{
		Name: "cycle", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: hi}},
		Outputs: []Arc{{Place: mid}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	for _, m := range g.Markings {
		if m[lo] != 0 {
			t.Errorf("low-priority immediate fired: %v", m)
		}
	}
}

func TestExploreImmediateCycleDetected(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.AddPlace("a", 1)
	c := b.AddPlace("c", 0)
	b.AddTransition(Spec{
		Name: "ab", Kind: Immediate, Rate: 1,
		Inputs:  []Arc{{Place: a}},
		Outputs: []Arc{{Place: c}},
	})
	b.AddTransition(Spec{
		Name: "ba", Kind: Immediate, Rate: 1,
		Inputs:  []Arc{{Place: c}},
		Outputs: []Arc{{Place: a}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Explore(n, ExploreOptions{}); !errors.Is(err, ErrImmediateCycle) {
		t.Errorf("err = %v, want ErrImmediateCycle", err)
	}
}

func TestExploreStateSpaceBudget(t *testing.T) {
	// An unbounded counter: source transition with no inputs.
	b := NewBuilder("unbounded")
	p := b.AddPlace("p", 0)
	b.AddTransition(Spec{
		Name: "grow", Kind: Exponential, Rate: 1,
		Outputs: []Arc{{Place: p}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Explore(n, ExploreOptions{MaxMarkings: 50}); !errors.Is(err, ErrStateSpaceTooLarge) {
		t.Errorf("err = %v, want ErrStateSpaceTooLarge", err)
	}
}

func TestExploreMultipleDeterministicRejected(t *testing.T) {
	b := NewBuilder("twodet")
	p := b.AddPlace("p", 1)
	q := b.AddPlace("q", 1)
	b.AddTransition(Spec{
		Name: "d1", Kind: Deterministic, Delay: 1,
		Inputs:  []Arc{{Place: p}},
		Outputs: []Arc{{Place: p}},
	})
	b.AddTransition(Spec{
		Name: "d2", Kind: Deterministic, Delay: 2,
		Inputs:  []Arc{{Place: q}},
		Outputs: []Arc{{Place: q}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Explore(n, ExploreOptions{}); !errors.Is(err, ErrMultipleDeterministic) {
		t.Errorf("err = %v, want ErrMultipleDeterministic", err)
	}
}

func TestExploreDeterministicSchedule(t *testing.T) {
	// Deterministic clock alternating two phases, plus an exponential
	// background transition.
	b := NewBuilder("clock")
	tick := b.AddPlace("tick", 1)
	tock := b.AddPlace("tock", 0)
	work := b.AddPlace("work", 1)
	done := b.AddPlace("done", 0)
	b.AddTransition(Spec{
		Name: "clock", Kind: Deterministic, Delay: 5,
		Inputs:  []Arc{{Place: tick}},
		Outputs: []Arc{{Place: tock}},
	})
	b.AddTransition(Spec{
		Name: "reset", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: tock}},
		Outputs: []Arc{{Place: tick}},
	})
	b.AddTransition(Spec{
		Name: "finish", Kind: Exponential, Rate: 2,
		Inputs:  []Arc{{Place: work}},
		Outputs: []Arc{{Place: done}},
	})
	b.AddTransition(Spec{
		Name: "restart", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: done}},
		Outputs: []Arc{{Place: work}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if !g.HasDeterministic() {
		t.Fatal("graph should have deterministic schedules")
	}
	var withDet, withoutDet int
	for s, d := range g.Det {
		if d == nil {
			withoutDet++
			if g.Markings[s][tick] != 0 {
				t.Errorf("state %v has tick token but no schedule", g.Markings[s])
			}
			continue
		}
		withDet++
		if d.Delay != 5 {
			t.Errorf("Delay = %g, want 5", d.Delay)
		}
		var total float64
		for _, pe := range d.Successors {
			total += pe.Prob
			if g.Markings[pe.To][tock] != 1 {
				t.Errorf("deterministic successor lacks tock token: %v", g.Markings[pe.To])
			}
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("successor probabilities sum to %g", total)
		}
	}
	if withDet != 2 || withoutDet != 2 {
		t.Errorf("det/no-det split = %d/%d, want 2/2", withDet, withoutDet)
	}
	if _, err := g.SteadyState(); err == nil {
		t.Error("SteadyState must refuse graphs with deterministic transitions")
	}
}

func TestGraphExpectedRewardMM1K(t *testing.T) {
	n := buildMM1K(t, 3, 1, 1)
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	// Uniform stationary distribution (rho = 1): mean queue length = 1.5.
	mean, err := g.ExpectedReward(func(m Marking) float64 { return float64(m[0]) })
	if err != nil {
		t.Fatalf("ExpectedReward: %v", err)
	}
	if math.Abs(mean-1.5) > 1e-12 {
		t.Errorf("mean queue = %g, want 1.5", mean)
	}
}

func TestGraphTokensAndRewardVector(t *testing.T) {
	n := buildMM1K(t, 2, 1, 1)
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	r := g.RewardVector(func(m Marking) float64 { return float64(m[0] * 10) })
	for s := range g.Markings {
		if want := float64(g.Tokens(s, 0) * 10); r[s] != want {
			t.Errorf("reward[%d] = %g, want %g", s, r[s], want)
		}
	}
}

// TestExploreInitialVanishingMarking: when the initial marking itself
// enables immediate transitions, the initial distribution must be spread
// over the tangible markings the cascade reaches.
func TestExploreInitialVanishingMarking(t *testing.T) {
	b := NewBuilder("vanishing-start")
	start := b.AddPlace("start", 1)
	left := b.AddPlace("left", 0)
	right := b.AddPlace("right", 0)
	b.AddTransition(Spec{
		Name: "goLeft", Kind: Immediate, Rate: 1,
		Inputs:  []Arc{{Place: start}},
		Outputs: []Arc{{Place: left}},
	})
	b.AddTransition(Spec{
		Name: "goRight", Kind: Immediate, Rate: 3,
		Inputs:  []Arc{{Place: start}},
		Outputs: []Arc{{Place: right}},
	})
	b.AddTransition(Spec{
		Name: "swapLR", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: left}},
		Outputs: []Arc{{Place: right}},
	})
	b.AddTransition(Spec{
		Name: "swapRL", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: right}},
		Outputs: []Arc{{Place: left}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if g.NumStates() != 2 {
		t.Fatalf("NumStates = %d, want 2", g.NumStates())
	}
	// The vanishing start marking must not be a state, and the initial
	// distribution splits 1/4 vs 3/4 by the immediate weights.
	if _, ok := g.StateIndex(n.InitialMarking()); ok {
		t.Error("vanishing initial marking appears as a tangible state")
	}
	var pLeft, pRight float64
	for s, m := range g.Markings {
		if m[left] == 1 {
			pLeft = g.Initial[s]
		}
		if m[right] == 1 {
			pRight = g.Initial[s]
		}
	}
	if math.Abs(pLeft-0.25) > 1e-12 || math.Abs(pRight-0.75) > 1e-12 {
		t.Errorf("initial = (%g, %g), want (0.25, 0.75)", pLeft, pRight)
	}
}

// TestExploreAbsorbingTangible: an absorbing tangible marking (no timed
// transitions enabled) is a legal graph; only the CTMC solve fails.
func TestExploreAbsorbingTangible(t *testing.T) {
	b := NewBuilder("absorbing")
	src := b.AddPlace("src", 1)
	sink := b.AddPlace("sink", 0)
	b.AddTransition(Spec{
		Name: "drain", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: src}},
		Outputs: []Arc{{Place: sink}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if g.NumStates() != 2 {
		t.Fatalf("NumStates = %d", g.NumStates())
	}
	if _, err := g.SteadyState(); err == nil {
		t.Error("steady state of an absorbing chain should fail")
	}
}

// Token conservation: in the MM1K net, queue+free is invariant across all
// reachable markings (a P-invariant).
func TestExploreTokenConservation(t *testing.T) {
	n := buildMM1K(t, 5, 2, 3)
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	for _, m := range g.Markings {
		if m.Total() != 5 {
			t.Errorf("marking %v violates token conservation", m)
		}
	}
}
