package petri

import (
	"errors"
	"fmt"
	"sort"
)

// ErrMarkingDependentArcs is returned when structural analysis is asked of
// a net whose arc multiplicities depend on the marking: such arcs have no
// fixed incidence entry.
var ErrMarkingDependentArcs = errors.New("petri: structural analysis requires constant arc weights")

// Incidence returns the place x transition incidence matrix
// C[p][t] = out(p, t) - in(p, t) for nets with constant arc weights.
// Inhibitor arcs do not move tokens and are ignored.
func (n *Net) Incidence() ([][]int, error) {
	c := make([][]int, len(n.places))
	for p := range c {
		c[p] = make([]int, len(n.transitions))
	}
	for ti := range n.transitions {
		tr := &n.transitions[ti]
		for _, a := range tr.Inputs {
			if a.WeightFn != nil {
				return nil, fmt.Errorf("%w: transition %q input arc", ErrMarkingDependentArcs, tr.Name)
			}
			c[a.Place][ti] -= constWeight(a)
		}
		for _, a := range tr.Outputs {
			if a.WeightFn != nil {
				return nil, fmt.Errorf("%w: transition %q output arc", ErrMarkingDependentArcs, tr.Name)
			}
			c[a.Place][ti] += constWeight(a)
		}
	}
	return c, nil
}

func constWeight(a Arc) int {
	if a.Weight == 0 {
		return 1
	}
	return a.Weight
}

// PInvariants computes the minimal-support non-negative place invariants
// (P-semiflows) of a net with constant arc weights using the Farkas
// algorithm: vectors y >= 0 with y^T C = 0, meaning the weighted token sum
// sum_p y[p] * m[p] is constant over every firing sequence.
func (n *Net) PInvariants() ([][]int, error) {
	c, err := n.Incidence()
	if err != nil {
		return nil, err
	}
	return farkas(c), nil
}

// TInvariants computes the minimal-support non-negative transition
// invariants (T-semiflows): vectors x >= 0 with C x = 0, meaning firing
// every transition t exactly x[t] times returns the net to its starting
// marking. A live and bounded net is covered by T-invariants; the module
// lifecycle Tc -> Tf -> Tr is the canonical one in the paper's models.
func (n *Net) TInvariants() ([][]int, error) {
	c, err := n.Incidence()
	if err != nil {
		return nil, err
	}
	// T-invariants of C are P-invariants of C^T: reuse the Farkas core by
	// transposing.
	nPlaces := len(n.places)
	nTrans := len(n.transitions)
	ct := make([][]int, nTrans)
	for t := 0; t < nTrans; t++ {
		ct[t] = make([]int, nPlaces)
		for p := 0; p < nPlaces; p++ {
			ct[t][p] = c[p][t]
		}
	}
	return farkas(ct), nil
}

// farkas runs the Farkas minimal-semiflow algorithm on an incidence-like
// matrix with rows indexed by the entity the invariant weights.
func farkas(c [][]int) [][]int {
	nRows := len(c)
	if nRows == 0 {
		return nil
	}
	nCols := len(c[0])

	type row struct {
		c   []int
		inv []int
	}
	rows := make([]row, nRows)
	for r := 0; r < nRows; r++ {
		rows[r] = row{c: append([]int(nil), c[r]...), inv: make([]int, nRows)}
		rows[r].inv[r] = 1
	}
	for col := 0; col < nCols; col++ {
		var zero, pos, neg []row
		for _, r := range rows {
			switch {
			case r.c[col] == 0:
				zero = append(zero, r)
			case r.c[col] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := rp.c[col], -rn.c[col]
				g := gcd(a, b)
				fp, fn := b/g, a/g
				nc := make([]int, nCols)
				for k := range nc {
					nc[k] = fp*rp.c[k] + fn*rn.c[k]
				}
				niv := make([]int, nRows)
				for k := range niv {
					niv[k] = fp*rp.inv[k] + fn*rn.inv[k]
				}
				zero = append(zero, row{c: nc, inv: niv})
			}
		}
		rows = zero
	}
	seen := make(map[string]bool)
	var out [][]int
	for _, r := range rows {
		if isZeroVector(r.inv) {
			continue
		}
		v := normalizeVector(r.inv)
		key := fmt.Sprint(v)
		if !seen[key] {
			seen[key] = true
			out = append(out, v)
		}
	}
	out = minimalSupport(out)
	sort.Slice(out, func(i, j int) bool { return lessVec(out[i], out[j]) })
	return out
}

// StructurallyBounded reports whether every place is covered by a
// positive-weight P-invariant, which certifies that the net is bounded
// for every initial marking (each covered place's token count is capped
// by the invariant's conserved sum). A false result does not prove
// unboundedness — it only means no certificate exists; reachability
// exploration still enforces its marking budget either way.
func (n *Net) StructurallyBounded() (bool, error) {
	invs, err := n.PInvariants()
	if err != nil {
		return false, err
	}
	covered := make([]bool, n.NumPlaces())
	for _, inv := range invs {
		for p, w := range inv {
			if w > 0 {
				covered[p] = true
			}
		}
	}
	for _, ok := range covered {
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// CheckInvariant verifies over the tangible reachability graph that the
// weighted token sum is the same in every reachable tangible marking. It
// works for any net, including marking-dependent arc weights, since it
// inspects reached markings rather than structure.
func (g *Graph) CheckInvariant(weights []int) error {
	if len(weights) != g.Net.NumPlaces() {
		return fmt.Errorf("petri: invariant has %d weights for %d places", len(weights), g.Net.NumPlaces())
	}
	if g.NumStates() == 0 {
		return ErrNoStates
	}
	want := weightedSum(weights, g.Markings[0])
	for _, m := range g.Markings[1:] {
		if got := weightedSum(weights, m); got != want {
			return fmt.Errorf("petri: invariant violated: %d in %s vs %d in %s",
				got, g.Net.FormatMarking(m), want, g.Net.FormatMarking(g.Markings[0]))
		}
	}
	return nil
}

func weightedSum(weights []int, m Marking) int {
	var s int
	for p, w := range weights {
		s += w * m[p]
	}
	return s
}

func normalizeVector(v []int) []int {
	g := 0
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		g = gcd(g, x)
	}
	if g <= 1 {
		return append([]int(nil), v...)
	}
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = x / g
	}
	return out
}

func isZeroVector(v []int) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// minimalSupport drops invariants whose support strictly contains another
// invariant's support.
func minimalSupport(vs [][]int) [][]int {
	var out [][]int
	for i, v := range vs {
		minimal := true
		for j, w := range vs {
			if i == j {
				continue
			}
			if supportSubset(w, v) && !supportEqual(w, v) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, v)
		}
	}
	return out
}

func supportSubset(a, b []int) bool {
	for i := range a {
		if a[i] != 0 && b[i] == 0 {
			return false
		}
	}
	return true
}

func supportEqual(a, b []int) bool {
	return supportSubset(a, b) && supportSubset(b, a)
}

func lessVec(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
