package petri

import (
	"errors"
	"testing"
)

// buildRestampNet is a parameterized queue with marking-dependent service
// (rate mu times the queue length), a deterministic maintenance clock, and
// a weighted immediate fork — every edge kind Restamp must recompute or
// preserve.
func buildRestampNet(t *testing.T, lam, mu, delay float64) *Net {
	t.Helper()
	b := NewBuilder("restamp")
	queue := b.AddPlace("queue", 0)
	free := b.AddPlace("free", 3)
	tick := b.AddPlace("tick", 1)
	tock := b.AddPlace("tock", 0)
	b.AddTransition(Spec{
		Name: "arrive", Kind: Exponential, Rate: lam,
		Inputs:  []Arc{{Place: free}},
		Outputs: []Arc{{Place: queue}},
	})
	b.AddTransition(Spec{
		Name: "serve", Kind: Exponential,
		RateFn:  func(m Marking) float64 { return mu * float64(m[queue]) },
		Inputs:  []Arc{{Place: queue}},
		Outputs: []Arc{{Place: free}},
	})
	b.AddTransition(Spec{
		Name: "clock", Kind: Deterministic, Delay: delay,
		Inputs:  []Arc{{Place: tick}},
		Outputs: []Arc{{Place: tock}},
	})
	// The clock rearms through a weighted immediate fork so the restamped
	// graph also carries non-trivial branching probabilities.
	b.AddTransition(Spec{
		Name: "rearmFast", Kind: Immediate, Rate: 1,
		Inputs:  []Arc{{Place: tock}},
		Outputs: []Arc{{Place: tick}},
	})
	b.AddTransition(Spec{
		Name: "rearmSlow", Kind: Immediate, Rate: 3,
		Inputs:  []Arc{{Place: tock}},
		Outputs: []Arc{{Place: tick}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

// TestRestampMatchesFreshExplore: a graph explored at one parameter point
// and restamped at another must be bit-identical to exploring the second
// net from scratch — same states in the same order, same edges with the
// exact same float rates, same deterministic schedules.
func TestRestampMatchesFreshExplore(t *testing.T) {
	base := buildRestampNet(t, 2, 3, 5)
	g, err := Explore(base, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore(base): %v", err)
	}

	target := buildRestampNet(t, 0.7, 11, 2.5)
	restamped, err := g.Restamp(target)
	if err != nil {
		t.Fatalf("Restamp: %v", err)
	}
	fresh, err := Explore(target, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore(target): %v", err)
	}

	if restamped.NumStates() != fresh.NumStates() {
		t.Fatalf("NumStates = %d, fresh = %d", restamped.NumStates(), fresh.NumStates())
	}
	for s := range fresh.Markings {
		if restamped.Markings[s].Key() != fresh.Markings[s].Key() {
			t.Errorf("marking %d = %v, fresh %v", s, restamped.Markings[s], fresh.Markings[s])
		}
		if restamped.Initial[s] != fresh.Initial[s] {
			t.Errorf("Initial[%d] = %g, fresh %g", s, restamped.Initial[s], fresh.Initial[s])
		}
	}
	if len(restamped.Exp) != len(fresh.Exp) {
		t.Fatalf("len(Exp) = %d, fresh = %d", len(restamped.Exp), len(fresh.Exp))
	}
	for i := range fresh.Exp {
		if restamped.Exp[i] != fresh.Exp[i] {
			t.Errorf("Exp[%d] = %+v, fresh %+v", i, restamped.Exp[i], fresh.Exp[i])
		}
	}
	if len(restamped.Det) != len(fresh.Det) {
		t.Fatalf("len(Det) = %d, fresh = %d", len(restamped.Det), len(fresh.Det))
	}
	for s := range fresh.Det {
		rs, fs := restamped.Det[s], fresh.Det[s]
		if (rs == nil) != (fs == nil) {
			t.Fatalf("Det[%d] nil-ness differs", s)
		}
		if rs == nil {
			continue
		}
		if rs.Transition != fs.Transition || rs.Delay != fs.Delay {
			t.Errorf("Det[%d] = (%d, %g), fresh (%d, %g)", s, rs.Transition, rs.Delay, fs.Transition, fs.Delay)
		}
		if len(rs.Successors) != len(fs.Successors) {
			t.Fatalf("Det[%d] successors = %d, fresh %d", s, len(rs.Successors), len(fs.Successors))
		}
		for j := range fs.Successors {
			if rs.Successors[j] != fs.Successors[j] {
				t.Errorf("Det[%d].Successors[%d] = %+v, fresh %+v", s, j, rs.Successors[j], fs.Successors[j])
			}
		}
	}
}

// TestRestampSharesTopology: the restamped graph must share (not copy) the
// markings, initial distribution, and state index with the explored one —
// that sharing is the point of the cache.
func TestRestampSharesTopology(t *testing.T) {
	base := buildRestampNet(t, 2, 3, 5)
	g, err := Explore(base, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	restamped, err := g.Restamp(buildRestampNet(t, 4, 6, 10))
	if err != nil {
		t.Fatalf("Restamp: %v", err)
	}
	if len(g.Markings) == 0 || &restamped.Markings[0] != &g.Markings[0] {
		t.Error("Markings were copied, want shared backing array")
	}
	if &restamped.Initial[0] != &g.Initial[0] {
		t.Error("Initial was copied, want shared backing array")
	}
}

// TestRestampStructureMismatch: nets with a different shape must be
// rejected, not silently mis-stamped.
func TestRestampStructureMismatch(t *testing.T) {
	base := buildRestampNet(t, 2, 3, 5)
	g, err := Explore(base, ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}

	// Different place count.
	other := buildMM1K(t, 2, 1, 1)
	if _, err := g.Restamp(other); !errors.Is(err, ErrStructureMismatch) {
		t.Errorf("place-count mismatch: err = %v, want ErrStructureMismatch", err)
	}

	// Same shape, different transition name.
	b := NewBuilder("renamed")
	queue := b.AddPlace("queue", 0)
	free := b.AddPlace("free", 3)
	tick := b.AddPlace("tick", 1)
	tock := b.AddPlace("tock", 0)
	b.AddTransition(Spec{
		Name: "arriveRenamed", Kind: Exponential, Rate: 2,
		Inputs:  []Arc{{Place: free}},
		Outputs: []Arc{{Place: queue}},
	})
	b.AddTransition(Spec{
		Name: "serve", Kind: Exponential,
		RateFn:  func(m Marking) float64 { return 3 * float64(m[queue]) },
		Inputs:  []Arc{{Place: queue}},
		Outputs: []Arc{{Place: free}},
	})
	b.AddTransition(Spec{
		Name: "clock", Kind: Deterministic, Delay: 5,
		Inputs:  []Arc{{Place: tick}},
		Outputs: []Arc{{Place: tock}},
	})
	b.AddTransition(Spec{
		Name: "rearmFast", Kind: Immediate, Rate: 1,
		Inputs:  []Arc{{Place: tock}},
		Outputs: []Arc{{Place: tick}},
	})
	b.AddTransition(Spec{
		Name: "rearmSlow", Kind: Immediate, Rate: 3,
		Inputs:  []Arc{{Place: tock}},
		Outputs: []Arc{{Place: tick}},
	})
	renamed, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := g.Restamp(renamed); !errors.Is(err, ErrStructureMismatch) {
		t.Errorf("renamed transition: err = %v, want ErrStructureMismatch", err)
	}
}
