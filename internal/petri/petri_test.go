package petri

import (
	"strings"
	"testing"
)

func TestBuilderValidNet(t *testing.T) {
	b := NewBuilder("mm1k")
	queue := b.AddPlace("queue", 0)
	free := b.AddPlace("free", 3)
	b.AddTransition(Spec{
		Name: "arrive", Kind: Exponential, Rate: 2,
		Inputs:  []Arc{{Place: free}},
		Outputs: []Arc{{Place: queue}},
	})
	b.AddTransition(Spec{
		Name: "serve", Kind: Exponential, Rate: 3,
		Inputs:  []Arc{{Place: queue}},
		Outputs: []Arc{{Place: free}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if n.NumPlaces() != 2 || n.NumTransitions() != 2 {
		t.Errorf("got %d places, %d transitions", n.NumPlaces(), n.NumTransitions())
	}
	if n.PlaceName(queue) != "queue" {
		t.Errorf("PlaceName = %q", n.PlaceName(queue))
	}
	if _, ok := n.TransitionByName("serve"); !ok {
		t.Error("TransitionByName(serve) not found")
	}
	if _, ok := n.TransitionByName("nope"); ok {
		t.Error("TransitionByName(nope) unexpectedly found")
	}
	m := n.InitialMarking()
	if m[queue] != 0 || m[free] != 3 {
		t.Errorf("initial marking = %v", m)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{
			name:  "empty net",
			build: func(b *Builder) {},
			want:  "no places",
		},
		{
			name: "duplicate place",
			build: func(b *Builder) {
				b.AddPlace("p", 0)
				b.AddPlace("p", 0)
			},
			want: "duplicate place",
		},
		{
			name: "negative initial marking",
			build: func(b *Builder) {
				b.AddPlace("p", -1)
			},
			want: "negative initial marking",
		},
		{
			name: "duplicate transition",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Exponential, Rate: 1, Inputs: []Arc{{Place: p}}})
				b.AddTransition(Spec{Name: "t", Kind: Exponential, Rate: 1, Inputs: []Arc{{Place: p}}})
			},
			want: "duplicate transition",
		},
		{
			name: "exponential without rate",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Exponential, Inputs: []Arc{{Place: p}}})
			},
			want: "exactly one of Rate and RateFn",
		},
		{
			name: "exponential with both rates",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{
					Name: "t", Kind: Exponential, Rate: 1,
					RateFn: func(Marking) float64 { return 1 },
					Inputs: []Arc{{Place: p}},
				})
			},
			want: "exactly one of Rate and RateFn",
		},
		{
			name: "deterministic without delay",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Deterministic, Inputs: []Arc{{Place: p}}})
			},
			want: "invalid delay",
		},
		{
			name: "deterministic with rate",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Deterministic, Delay: 1, Rate: 2, Inputs: []Arc{{Place: p}}})
			},
			want: "Rate is only valid",
		},
		{
			name: "exponential with delay",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Exponential, Rate: 1, Delay: 3, Inputs: []Arc{{Place: p}}})
			},
			want: "Delay is only valid",
		},
		{
			name: "priority on timed transition",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Exponential, Rate: 1, Priority: 2, Inputs: []Arc{{Place: p}}})
			},
			want: "Priority is only valid",
		},
		{
			name: "unknown kind",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Inputs: []Arc{{Place: p}}})
			},
			want: "unknown kind",
		},
		{
			name: "arc to unknown place",
			build: func(b *Builder) {
				b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Exponential, Rate: 1, Inputs: []Arc{{Place: 7}}})
			},
			want: "unknown place",
		},
		{
			name: "negative arc weight",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{Name: "t", Kind: Exponential, Rate: 1, Inputs: []Arc{{Place: p, Weight: -2}}})
			},
			want: "negative weight",
		},
		{
			name: "arc with weight and weight fn",
			build: func(b *Builder) {
				p := b.AddPlace("p", 1)
				b.AddTransition(Spec{
					Name: "t", Kind: Exponential, Rate: 1,
					Inputs: []Arc{{Place: p, Weight: 1, WeightFn: func(Marking) int { return 1 }}},
				})
			},
			want: "both Weight and WeightFn",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder("bad")
			tt.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("expected error, got nil")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{Immediate, "immediate"},
		{Exponential, "exponential"},
		{Deterministic, "deterministic"},
		{Kind(42), "Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestMarkingKeyAndClone(t *testing.T) {
	m := Marking{1, 0, 3}
	if m.Key() != "1,0,3" {
		t.Errorf("Key = %q", m.Key())
	}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Error("Clone aliases original")
	}
	if m.Total() != 4 {
		t.Errorf("Total = %d", m.Total())
	}
}

func TestEnabledAndFire(t *testing.T) {
	b := NewBuilder("basic")
	src := b.AddPlace("src", 2)
	dst := b.AddPlace("dst", 0)
	move := b.AddTransition(Spec{
		Name: "move", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: src, Weight: 2}},
		Outputs: []Arc{{Place: dst, Weight: 3}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := n.InitialMarking()
	if !n.Enabled(move, m) {
		t.Fatal("move should be enabled with 2 tokens")
	}
	next, err := n.Fire(move, m)
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if next[src] != 0 || next[dst] != 3 {
		t.Errorf("after fire: %v", next)
	}
	if n.Enabled(move, next) {
		t.Error("move should be disabled with 0 tokens")
	}
}

func TestInhibitorArc(t *testing.T) {
	b := NewBuilder("inhibited")
	p := b.AddPlace("p", 1)
	blocker := b.AddPlace("blocker", 0)
	tr := b.AddTransition(Spec{
		Name: "t", Kind: Exponential, Rate: 1,
		Inputs:     []Arc{{Place: p}},
		Inhibitors: []Arc{{Place: blocker, Weight: 2}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := n.InitialMarking()
	if !n.Enabled(tr, m) {
		t.Error("enabled with 0 blocker tokens (< weight 2)")
	}
	m[blocker] = 1
	if !n.Enabled(tr, m) {
		t.Error("enabled with 1 blocker token (< weight 2)")
	}
	m[blocker] = 2
	if n.Enabled(tr, m) {
		t.Error("disabled with 2 blocker tokens (>= weight 2)")
	}
}

func TestGuard(t *testing.T) {
	b := NewBuilder("guarded")
	p := b.AddPlace("p", 1)
	q := b.AddPlace("q", 0)
	tr := b.AddTransition(Spec{
		Name: "t", Kind: Exponential, Rate: 1,
		Guard:  func(m Marking) bool { return m[q] == 0 },
		Inputs: []Arc{{Place: p}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m := n.InitialMarking()
	if !n.Enabled(tr, m) {
		t.Error("guard should hold with q empty")
	}
	m[q] = 1
	if n.Enabled(tr, m) {
		t.Error("guard should fail with q occupied")
	}
}

func TestMarkingDependentWeightEvaluatedPreFiring(t *testing.T) {
	// Transition consumes all tokens from src (weight = #src) and emits the
	// same count into dst; both weights must see the pre-firing marking.
	b := NewBuilder("batch")
	src := b.AddPlace("src", 3)
	dst := b.AddPlace("dst", 0)
	tr := b.AddTransition(Spec{
		Name: "drain", Kind: Exponential, Rate: 1,
		Inputs:  []Arc{{Place: src, WeightFn: func(m Marking) int { return m[src] }}},
		Outputs: []Arc{{Place: dst, WeightFn: func(m Marking) int { return m[src] }}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	next, err := n.Fire(tr, n.InitialMarking())
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if next[src] != 0 || next[dst] != 3 {
		t.Errorf("after batch fire: %v, want src=0 dst=3", next)
	}
}

func TestFireUnderflowError(t *testing.T) {
	b := NewBuilder("underflow")
	p := b.AddPlace("p", 1)
	tr := b.AddTransition(Spec{
		Name: "t", Kind: Exponential, Rate: 1,
		Inputs: []Arc{{Place: p, Weight: 2}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := n.Fire(tr, n.InitialMarking()); err == nil {
		t.Error("expected underflow error")
	}
}

func TestZeroRateFnDisablesTransition(t *testing.T) {
	b := NewBuilder("zero-rate")
	p := b.AddPlace("p", 1)
	tr := b.AddTransition(Spec{
		Name: "t", Kind: Exponential,
		RateFn: func(m Marking) float64 { return 0 },
		Inputs: []Arc{{Place: p}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if n.Enabled(tr, n.InitialMarking()) {
		t.Error("transition with zero rate should be disabled")
	}
}

func TestIsVanishing(t *testing.T) {
	b := NewBuilder("vanish")
	p := b.AddPlace("p", 1)
	q := b.AddPlace("q", 0)
	b.AddTransition(Spec{
		Name: "imm", Kind: Immediate, Rate: 1,
		Inputs:  []Arc{{Place: p}},
		Outputs: []Arc{{Place: q}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !n.IsVanishing(n.InitialMarking()) {
		t.Error("marking with enabled immediate should be vanishing")
	}
	if n.IsVanishing(Marking{0, 1}) {
		t.Error("marking without enabled immediates should be tangible")
	}
}

func TestFormatMarking(t *testing.T) {
	b := NewBuilder("fmt")
	b.AddPlace("a", 1)
	b.AddPlace("b", 0)
	b.AddPlace("c", 2)
	p := b.AddPlace("d", 0)
	b.AddTransition(Spec{Name: "t", Kind: Exponential, Rate: 1, Inputs: []Arc{{Place: p}}})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got := n.FormatMarking(n.InitialMarking())
	if got != "{a:1, c:2}" {
		t.Errorf("FormatMarking = %q", got)
	}
}
