package petri

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the net in Graphviz DOT format using the conventions of
// the paper's figures: places are circles annotated with their initial
// tokens, immediate transitions are thin black bars, exponential
// transitions are white rectangles, deterministic transitions are bold
// black rectangles, and inhibitor arcs end in an open dot.
func (n *Net) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", n.name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n\n")

	for i, p := range n.places {
		label := p.name
		if p.initial > 0 {
			label = fmt.Sprintf("%s\\n%d", p.name, p.initial)
		}
		fmt.Fprintf(&b, "  p%d [shape=circle, label=\"%s\"];\n", i, label)
	}
	b.WriteString("\n")

	for i := range n.transitions {
		tr := &n.transitions[i]
		var attrs string
		switch tr.Kind {
		case Immediate:
			attrs = "shape=box, style=filled, fillcolor=black, fontcolor=white, height=0.08, width=0.4"
		case Exponential:
			attrs = "shape=box, style=filled, fillcolor=white"
		case Deterministic:
			attrs = "shape=box, style=\"filled,bold\", fillcolor=gray20, fontcolor=white"
		}
		label := tr.Name
		if tr.Guard != nil {
			label += "\\n[guard]"
		}
		fmt.Fprintf(&b, "  t%d [%s, label=\"%s\"];\n", i, attrs, label)
	}
	b.WriteString("\n")

	arcLabel := func(a Arc) string {
		switch {
		case a.WeightFn != nil:
			return " [label=\"w(m)\"]"
		case a.Weight > 1:
			return fmt.Sprintf(" [label=\"%d\"]", a.Weight)
		default:
			return ""
		}
	}
	for i := range n.transitions {
		tr := &n.transitions[i]
		for _, a := range tr.Inputs {
			fmt.Fprintf(&b, "  p%d -> t%d%s;\n", a.Place, i, arcLabel(a))
		}
		for _, a := range tr.Outputs {
			fmt.Fprintf(&b, "  t%d -> p%d%s;\n", i, a.Place, arcLabel(a))
		}
		for _, a := range tr.Inhibitors {
			fmt.Fprintf(&b, "  p%d -> t%d [arrowhead=odot%s];\n", a.Place, i, inhibitorWeight(a))
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func inhibitorWeight(a Arc) string {
	switch {
	case a.WeightFn != nil:
		return ", label=\"w(m)\""
	case a.Weight > 1:
		return fmt.Sprintf(", label=\"%d\"", a.Weight)
	default:
		return ""
	}
}
