package petri

import "testing"

// buildBenchNet constructs an N-module lifecycle net comparable in
// structure to the paper's Figure 2(a) with the given module count.
func buildBenchNet(b *testing.B, modules int) *Net {
	b.Helper()
	bd := NewBuilder("bench")
	h := bd.AddPlace("H", modules)
	c := bd.AddPlace("C", 0)
	f := bd.AddPlace("F", 0)
	bd.AddTransition(Spec{
		Name: "compromise", Kind: Exponential, Rate: 1.0 / 1523,
		Inputs: []Arc{{Place: h}}, Outputs: []Arc{{Place: c}},
	})
	bd.AddTransition(Spec{
		Name: "fail", Kind: Exponential, Rate: 1.0 / 3000,
		Inputs: []Arc{{Place: c}}, Outputs: []Arc{{Place: f}},
	})
	bd.AddTransition(Spec{
		Name: "repair", Kind: Exponential, Rate: 1.0 / 3,
		Inputs: []Arc{{Place: f}}, Outputs: []Arc{{Place: h}},
	})
	n, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func BenchmarkExploreLifecycle6(b *testing.B) {
	n := buildBenchNet(b, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Explore(n, ExploreOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreLifecycle20(b *testing.B) {
	n := buildBenchNet(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Explore(n, ExploreOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphSteadyState(b *testing.B) {
	n := buildBenchNet(b, 12)
	g, err := Explore(n, ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SteadyState(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFire(b *testing.B) {
	n := buildBenchNet(b, 6)
	m := n.InitialMarking()
	t, _ := n.TransitionByName("compromise")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Fire(t, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkingKey(b *testing.B) {
	m := Marking{4, 2, 0, 1, 0, 1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Key()
	}
}
