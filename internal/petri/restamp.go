package petri

import (
	"errors"
	"fmt"
)

// ErrStructureMismatch is returned by Restamp when the target net does not
// have the same places and transitions as the net the graph was explored
// from.
var ErrStructureMismatch = errors.New("petri: net structure differs from explored graph")

// Restamp re-targets a reachability graph at a structurally identical net
// whose timed-transition rates (and deterministic delays) may differ, and
// returns a new graph without re-exploring the state space. The markings,
// state indices, initial distribution, and branching probabilities are
// shared with the receiver; only the exponential edge rates and the
// deterministic delays are recomputed from the new net.
//
// Restamp is only sound when, between the two nets, (1) the reachable
// marking set and the enabled-transition sets are unchanged — guards, arc
// weights, initial markings, and the zero-pattern of rate functions must
// not depend on the parameters that changed — and (2) immediate-transition
// weights are unchanged, so every vanishing-cascade branching probability
// is preserved. The nvp model builders satisfy both for pure rate/delay
// changes (sweeping means or the clock period) because their immediate
// weights depend only on the marking and their exponential rates are
// strictly positive whenever enabled. Restamp checks structural shape
// (place and transition counts and names, kinds) but cannot verify the
// semantic conditions; callers own them.
//
// For any marking m the new rate is net.rateOf(via, m) * prob with prob
// carried over verbatim, which is float-for-float the product Explore
// would have computed — restamped sweeps are bit-identical to freshly
// explored ones.
func (g *Graph) Restamp(net *Net) (*Graph, error) {
	old := g.Net
	if len(net.places) != len(old.places) || len(net.transitions) != len(old.transitions) {
		return nil, fmt.Errorf("%w: %d/%d places, %d/%d transitions",
			ErrStructureMismatch, len(net.places), len(old.places), len(net.transitions), len(old.transitions))
	}
	for i := range net.places {
		if net.places[i].name != old.places[i].name || net.places[i].initial != old.places[i].initial {
			return nil, fmt.Errorf("%w: place %d is %q(%d), explored with %q(%d)", ErrStructureMismatch,
				i, net.places[i].name, net.places[i].initial, old.places[i].name, old.places[i].initial)
		}
	}
	for i := range net.transitions {
		nt, ot := &net.transitions[i], &old.transitions[i]
		if nt.Name != ot.Name || nt.Kind != ot.Kind || nt.Priority != ot.Priority {
			return nil, fmt.Errorf("%w: transition %d is %q/%v, explored with %q/%v", ErrStructureMismatch,
				i, nt.Name, nt.Kind, ot.Name, ot.Kind)
		}
	}

	out := &Graph{
		Net:      net,
		Markings: g.Markings,
		Initial:  g.Initial,
		Exp:      make([]RateEdge, len(g.Exp)),
		Det:      make([]*DetSchedule, len(g.Det)),
		index:    g.index,
		topo:     g.topo,
	}
	for i, e := range g.Exp {
		e.Rate = net.rateOf(e.Via, g.Markings[e.From]) * e.Prob
		out.Exp[i] = e
	}
	for i, sched := range g.Det {
		if sched == nil {
			continue
		}
		out.Det[i] = &DetSchedule{
			Transition: sched.Transition,
			Delay:      net.transitions[sched.Transition].Delay,
			Successors: sched.Successors,
		}
	}
	metRestamps.Inc()
	return out, nil
}
