package petri

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder("dotnet")
	src := b.AddPlace("src", 2)
	dst := b.AddPlace("dst", 0)
	gate := b.AddPlace("gate", 0)
	b.AddTransition(Spec{
		Name: "exp", Kind: Exponential, Rate: 1,
		Inputs:     []Arc{{Place: src, Weight: 2}},
		Outputs:    []Arc{{Place: dst}},
		Inhibitors: []Arc{{Place: gate, Weight: 3}},
	})
	b.AddTransition(Spec{
		Name: "imm", Kind: Immediate, Rate: 1,
		Guard:  func(m Marking) bool { return true },
		Inputs: []Arc{{Place: dst}},
		Outputs: []Arc{{
			Place:    src,
			WeightFn: func(m Marking) int { return 1 },
		}},
	})
	b.AddTransition(Spec{
		Name: "det", Kind: Deterministic, Delay: 5,
		Inputs:  []Arc{{Place: dst}},
		Outputs: []Arc{{Place: src}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "dotnet"`,
		`shape=circle`,
		`src\n2`,       // initial marking annotation
		`label="2"`,    // constant arc weight
		`label="w(m)"`, // marking-dependent arc weight
		`arrowhead=odot`,
		`label="3"`, // inhibitor weight
		`imm\n[guard]`,
		`fillcolor=black`,  // immediate styling
		`fillcolor=white`,  // exponential styling
		`fillcolor=gray20`, // deterministic styling
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}
