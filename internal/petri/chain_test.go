package petri

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"nvrel/internal/faultinject"
	"nvrel/internal/linalg"
)

// armFault arms one fault and enables injection for the test body.
func armFault(t *testing.T, f faultinject.Fault) {
	t.Helper()
	faultinject.Reset()
	if err := faultinject.Arm(f, 7); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable()
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})
}

// chainGraph builds a sparse-routed graph plus its clean reference
// solutions (GS path and dense GTH path).
func chainGraph(t *testing.T, seed int64) (*Graph, *linalg.Workspace, []float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := randomReachabilityGraph(rng, linalg.SparseThreshold+40)
	ws := linalg.NewWorkspace()
	clean, diag, err := g.SteadyStateDiagWS(ws)
	if err != nil || diag.Path != PathSparse {
		t.Fatalf("clean solve: path=%v err=%v", diag.Path, err)
	}
	dense, err := g.SteadyStateDenseWS(ws)
	if err != nil {
		t.Fatal(err)
	}
	return g, ws, clean, dense
}

// TestChainRecoversFromInjectedGSStall: a forced mid-solve Gauss-Seidel
// failure falls back to dense GTH, records the failed attempt, and the
// recovered result matches the single-path dense reference to 1e-12 (the
// satellite chain-equality property).
func TestChainRecoversFromInjectedGSStall(t *testing.T) {
	g, ws, clean, dense := chainGraph(t, 61)
	armFault(t, faultinject.Fault{Site: "linalg.gs.stall"})
	pi, diag, err := g.SteadyStateDiagWS(ws)
	if err != nil {
		t.Fatalf("chain did not recover: %v", err)
	}
	if diag.Path != PathSparseFallbackDense {
		t.Fatalf("path = %v, want %v", diag.Path, PathSparseFallbackDense)
	}
	if len(diag.Attempts) != 1 || diag.Attempts[0].Solver != "gs" || diag.Attempts[0].Err == nil {
		t.Fatalf("attempts = %+v, want one failed gs attempt", diag.Attempts)
	}
	se, ok := linalg.AsSolveError(diag.Fallback)
	if !ok || se.Kind != linalg.FailNotConverged {
		t.Fatalf("fallback error = %v, want typed not-converged", diag.Fallback)
	}
	for i := range pi {
		if math.Abs(pi[i]-dense[i]) > 1e-12 {
			t.Fatalf("pi[%d] = %.17g, dense reference %.17g", i, pi[i], dense[i])
		}
		if math.Abs(pi[i]-clean[i]) > 1e-9 {
			t.Fatalf("pi[%d] deviates %g from the clean GS result", i, math.Abs(pi[i]-clean[i]))
		}
	}
}

// TestChainRecoversFromCorruptedStamp: a NaN written into the CSR stamp is
// rejected by the generator guard before any iteration, and the chain
// recovers through the independently assembled dense generator.
func TestChainRecoversFromCorruptedStamp(t *testing.T) {
	g, ws, _, dense := chainGraph(t, 62)
	armFault(t, faultinject.Fault{Site: "petri.stamp.corrupt", Mode: "nan"})
	pi, diag, err := g.SteadyStateDiagWS(ws)
	if err != nil {
		t.Fatalf("chain did not recover: %v", err)
	}
	if diag.Path != PathSparseFallbackDense {
		t.Fatalf("path = %v, want %v", diag.Path, PathSparseFallbackDense)
	}
	se, ok := linalg.AsSolveError(diag.Fallback)
	if !ok || se.Kind != linalg.FailNaN {
		t.Fatalf("fallback error = %v, want typed NaN rejection", diag.Fallback)
	}
	if diag.GSSweeps != 0 {
		t.Fatalf("GSSweeps = %d, want 0 (rejected before iterating)", diag.GSSweeps)
	}
	for i := range pi {
		if math.Abs(pi[i]-dense[i]) > 1e-12 {
			t.Fatalf("pi[%d] = %.17g, dense reference %.17g", i, pi[i], dense[i])
		}
	}
}

// TestChainRecoversFromSilentRateScale: the nastiest fault — one rate
// silently multiplied by 1.75, sign pattern intact — is still caught by
// the conservation check and recovered, never returned as a wrong number.
func TestChainRecoversFromSilentRateScale(t *testing.T) {
	g, ws, _, dense := chainGraph(t, 63)
	armFault(t, faultinject.Fault{Site: "petri.stamp.corrupt", Mode: "scale", Value: 1.75})
	pi, diag, err := g.SteadyStateDiagWS(ws)
	if err != nil {
		t.Fatalf("chain did not recover: %v", err)
	}
	se, ok := linalg.AsSolveError(diag.Fallback)
	if !ok || se.Kind != linalg.FailGenerator {
		t.Fatalf("fallback error = %v, want typed generator rejection", diag.Fallback)
	}
	for i := range pi {
		if math.Abs(pi[i]-dense[i]) > 1e-12 {
			t.Fatalf("pi[%d] = %.17g, dense reference %.17g", i, pi[i], dense[i])
		}
	}
}

// TestChainRecoversFromKernelPanic: an injected panic inside the GS kernel
// is recovered, converted to a typed FailPanic, and the solve completes on
// the dense rung. A panic must never abort the caller.
func TestChainRecoversFromKernelPanic(t *testing.T) {
	g, ws, _, dense := chainGraph(t, 64)
	armFault(t, faultinject.Fault{Site: "linalg.kernel.panic"})
	pi, diag, err := g.SteadyStateDiagWS(ws)
	if err != nil {
		t.Fatalf("chain did not recover: %v", err)
	}
	se, ok := linalg.AsSolveError(diag.Fallback)
	if !ok || se.Kind != linalg.FailPanic {
		t.Fatalf("fallback error = %v, want typed panic", diag.Fallback)
	}
	for i := range pi {
		if math.Abs(pi[i]-dense[i]) > 1e-12 {
			t.Fatalf("pi[%d] = %.17g, dense reference %.17g", i, pi[i], dense[i])
		}
	}
}

// TestChainDeadlineStopsFallback: once the context is dead, the chain
// surfaces the typed deadline error instead of burning the remaining rungs
// against an expired clock.
func TestChainDeadlineStopsFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	g := randomReachabilityGraph(rng, linalg.SparseThreshold+40)
	ws := linalg.NewWorkspace()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, diag, err := g.SteadyStateDiagCtxWS(ctx, ws)
	se, ok := linalg.AsSolveError(err)
	if !ok || se.Kind != linalg.FailDeadline {
		t.Fatalf("expired ctx gave %v", err)
	}
	if len(diag.Attempts) > 1 {
		t.Fatalf("chain kept going after a deadline: %+v", diag.Attempts)
	}
}

// TestSolvePathStringNew: labels of the power-backstop paths.
func TestSolvePathStringNew(t *testing.T) {
	cases := map[SolvePath]string{
		PathDenseFallbackPower:  "dense-fallback-power",
		PathSparseFallbackPower: "sparse-fallback-power",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("SolvePath(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}
