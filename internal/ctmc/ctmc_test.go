package ctmc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"nvrel/internal/linalg"
)

func buildTwoState(t *testing.T, lam, mu float64) *Chain {
	t.Helper()
	c, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.AddRate(0, 1, lam); err != nil {
		t.Fatalf("AddRate: %v", err)
	}
	if err := c.AddRate(1, 0, mu); err != nil {
		t.Fatalf("AddRate: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); !errors.Is(err, ErrEmptyChain) {
		t.Errorf("New(0) err = %v, want ErrEmptyChain", err)
	}
}

func TestAddRateValidation(t *testing.T) {
	c, _ := New(2)
	tests := []struct {
		name string
		i, j int
		rate float64
	}{
		{name: "negative rate", i: 0, j: 1, rate: -1},
		{name: "zero rate", i: 0, j: 1, rate: 0},
		{name: "nan rate", i: 0, j: 1, rate: math.NaN()},
		{name: "self loop", i: 1, j: 1, rate: 1},
		{name: "out of range source", i: 5, j: 1, rate: 1},
		{name: "out of range target", i: 0, j: 9, rate: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := c.AddRate(tt.i, tt.j, tt.rate); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	c := buildTwoState(t, 2, 8)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	if math.Abs(pi[0]-0.8) > 1e-12 || math.Abs(pi[1]-0.2) > 1e-12 {
		t.Errorf("pi = %v, want [0.8 0.2]", pi)
	}
}

func TestAddRateAccumulates(t *testing.T) {
	c, _ := New(2)
	if err := c.AddRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	q := c.Generator()
	if q.At(0, 1) != 3 || q.At(0, 0) != -3 {
		t.Errorf("generator = %v", q)
	}
}

func TestGeneratorIsCopy(t *testing.T) {
	c := buildTwoState(t, 1, 1)
	q := c.Generator()
	q.Set(0, 1, 99)
	if c.Generator().At(0, 1) != 1 {
		t.Error("Generator returned aliased storage")
	}
}

func TestFromGenerator(t *testing.T) {
	q, _ := linalg.NewDenseFrom([][]float64{
		{-1, 1},
		{2, -2},
	})
	c, err := FromGenerator(q)
	if err != nil {
		t.Fatalf("FromGenerator: %v", err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatalf("SteadyState: %v", err)
	}
	if math.Abs(pi[0]-2.0/3) > 1e-12 {
		t.Errorf("pi = %v", pi)
	}
}

func TestFromGeneratorRejectsInvalid(t *testing.T) {
	bad, _ := linalg.NewDenseFrom([][]float64{
		{-1, 2}, // row sums to 1, not 0
		{2, -2},
	})
	if _, err := FromGenerator(bad); err == nil {
		t.Error("expected validation error")
	}
	if _, err := FromGenerator(linalg.NewDense(2, 3)); err == nil {
		t.Error("expected error for non-square")
	}
}

func TestTransientMatchesClosedForm(t *testing.T) {
	const (
		lam = 0.4
		mu  = 0.6
	)
	c := buildTwoState(t, lam, mu)
	for _, tt := range []float64{0, 0.25, 1, 4} {
		got, err := c.Transient([]float64{1, 0}, tt)
		if err != nil {
			t.Fatalf("Transient: %v", err)
		}
		want := lam / (lam + mu) * (1 - math.Exp(-(lam+mu)*tt))
		if math.Abs(got[1]-want) > 1e-10 {
			t.Errorf("t=%g: got %g, want %g", tt, got[1], want)
		}
	}
}

func TestExpectedReward(t *testing.T) {
	c := buildTwoState(t, 2, 8) // pi = [0.8, 0.2]
	r, err := c.ExpectedReward([]float64{1, 0})
	if err != nil {
		t.Fatalf("ExpectedReward: %v", err)
	}
	if math.Abs(r-0.8) > 1e-12 {
		t.Errorf("reward = %g, want 0.8", r)
	}
	if _, err := c.ExpectedReward([]float64{1}); !errors.Is(err, ErrRewardMismatch) {
		t.Errorf("err = %v, want ErrRewardMismatch", err)
	}
}

func TestAccumulatedReward(t *testing.T) {
	// Reward 1 in state 0, starting in state 0 with no way out:
	// accumulated reward over [0,t] is exactly t.
	c, _ := New(2)
	if err := c.AddRate(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	got, err := c.AccumulatedReward([]float64{1, 0}, []float64{1, 0}, 7)
	if err != nil {
		t.Fatalf("AccumulatedReward: %v", err)
	}
	if math.Abs(got-7) > 1e-9 {
		t.Errorf("reward = %g, want 7", got)
	}
	if _, err := c.AccumulatedReward([]float64{1, 0}, []float64{1}, 7); err == nil {
		t.Error("expected reward mismatch error")
	}
	if _, err := c.AccumulatedReward([]float64{1}, []float64{1, 0}, 7); err == nil {
		t.Error("expected initial distribution mismatch error")
	}
}

func TestTransientDimensionValidation(t *testing.T) {
	c := buildTwoState(t, 1, 1)
	if _, err := c.Transient([]float64{1}, 1); err == nil {
		t.Error("expected error for wrong pi0 length")
	}
	if _, err := c.OccupancyIntegral([]float64{1}, 1); err == nil {
		t.Error("expected error for wrong pi0 length")
	}
}

// Property: transient distribution remains a distribution at all times.
func TestTransientIsDistributionProperty(t *testing.T) {
	f := func(rawLam, rawMu, rawT uint8) bool {
		lam := float64(rawLam)/32 + 0.05
		mu := float64(rawMu)/32 + 0.05
		tm := float64(rawT) / 16
		c, err := New(3)
		if err != nil {
			return false
		}
		_ = c.AddRate(0, 1, lam)
		_ = c.AddRate(1, 2, mu)
		_ = c.AddRate(2, 0, lam+mu)
		got, err := c.Transient([]float64{1, 0, 0}, tm)
		if err != nil {
			return false
		}
		var s float64
		for _, v := range got {
			if v < -1e-10 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: steady state is a fixed point of the transient operator.
func TestSteadyStateFixedPointProperty(t *testing.T) {
	f := func(rawA, rawB uint8) bool {
		a := float64(rawA)/64 + 0.1
		b := float64(rawB)/64 + 0.1
		c, err := New(3)
		if err != nil {
			return false
		}
		_ = c.AddRate(0, 1, a)
		_ = c.AddRate(1, 0, b)
		_ = c.AddRate(1, 2, a)
		_ = c.AddRate(2, 1, b)
		pi, err := c.SteadyState()
		if err != nil {
			return false
		}
		moved, err := c.Transient(pi, 3.7)
		if err != nil {
			return false
		}
		for i := range pi {
			if math.Abs(pi[i]-moved[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
