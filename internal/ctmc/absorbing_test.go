package ctmc

import (
	"errors"
	"math"
	"testing"
)

func TestFirstPassageTwoState(t *testing.T) {
	// 0 -> 1 at rate lam: mean hitting time of {1} from 0 is 1/lam.
	const lam = 0.25
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(0, 1, lam); err != nil {
		t.Fatal(err)
	}
	fp, err := NewFirstPassage(c, []bool{false, true})
	if err != nil {
		t.Fatalf("NewFirstPassage: %v", err)
	}
	times, err := fp.MeanTimes()
	if err != nil {
		t.Fatalf("MeanTimes: %v", err)
	}
	if math.Abs(times[0]-1/lam) > 1e-12 {
		t.Errorf("t[0] = %g, want %g", times[0], 1/lam)
	}
	if times[1] != 0 {
		t.Errorf("t[1] = %g, want 0", times[1])
	}
}

func TestFirstPassageBirthDeathKnown(t *testing.T) {
	// Pure birth chain 0 -> 1 -> 2 with rate 1: hitting time of {2} from 0
	// is 2, from 1 is 1.
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.AddRate(0, 1, 1)
	_ = c.AddRate(1, 2, 1)
	fp, err := NewFirstPassage(c, []bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	times, err := fp.MeanTimes()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(times[0]-2) > 1e-12 || math.Abs(times[1]-1) > 1e-12 {
		t.Errorf("times = %v, want [2 1 0]", times)
	}
}

func TestFirstPassageWithBacktracking(t *testing.T) {
	// 0 <-> 1 -> 2. Mean hitting time of {2}: from 1, either go to 2
	// (rate mu) or back to 0 (rate back). Standard equations:
	//   t0 = 1/lam + t1
	//   t1 = 1/(mu+back) + back/(mu+back) * t0
	const (
		lam  = 2.0
		back = 3.0
		mu   = 1.0
	)
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.AddRate(0, 1, lam)
	_ = c.AddRate(1, 0, back)
	_ = c.AddRate(1, 2, mu)
	fp, err := NewFirstPassage(c, []bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	times, err := fp.MeanTimes()
	if err != nil {
		t.Fatal(err)
	}
	// Solve by hand: t1 = 1/(mu+back) + back/(mu+back)*(1/lam + t1)
	// => t1 (1 - back/(mu+back)) = 1/(mu+back) + back/((mu+back) lam)
	// => t1 * mu/(mu+back) = (1 + back/lam)/(mu+back)
	// => t1 = (1 + back/lam)/mu
	wantT1 := (1 + back/lam) / mu
	wantT0 := 1/lam + wantT1
	if math.Abs(times[1]-wantT1) > 1e-12 {
		t.Errorf("t1 = %g, want %g", times[1], wantT1)
	}
	if math.Abs(times[0]-wantT0) > 1e-12 {
		t.Errorf("t0 = %g, want %g", times[0], wantT0)
	}
}

func TestFirstPassageFromDistribution(t *testing.T) {
	c, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.AddRate(0, 1, 1)
	_ = c.AddRate(1, 2, 1)
	fp, err := NewFirstPassage(c, []bool{false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fp.MeanTimeFrom([]float64{0.5, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("mean from mixture = %g, want 1.5", got)
	}
	if _, err := fp.MeanTimeFrom([]float64{1}); !errors.Is(err, ErrRewardMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestFirstPassageValidation(t *testing.T) {
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.AddRate(0, 1, 1)
	if _, err := NewFirstPassage(c, []bool{true}); !errors.Is(err, ErrRewardMismatch) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewFirstPassage(c, []bool{true, true}); !errors.Is(err, ErrNoTransientStates) {
		t.Errorf("err = %v", err)
	}
}

func TestFirstPassageUnreachableTarget(t *testing.T) {
	// Target never reachable: -Q_TT is singular (state 0 has no outflow).
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.AddRate(1, 0, 1)
	if _, err := NewFirstPassage(c, []bool{false, true}); err == nil {
		t.Error("expected error for unreachable target")
	}
}
