// Package ctmc provides continuous-time Markov chain analysis on top of the
// linalg kernel: steady-state and transient solutions, expected accumulated
// rewards, and validation. The perception-system models in this repository
// reduce to small CTMCs (the architecture without rejuvenation) or to CTMCs
// subordinated to a deterministic clock (see package mrgp).
package ctmc

import (
	"errors"
	"fmt"

	"nvrel/internal/linalg"
)

// Common errors returned by this package.
var (
	ErrEmptyChain     = errors.New("ctmc: chain has no states")
	ErrBadRate        = errors.New("ctmc: transition rate must be positive and finite")
	ErrUnknownState   = errors.New("ctmc: unknown state index")
	ErrRewardMismatch = errors.New("ctmc: reward vector length does not match state count")
)

// Chain is a finite continuous-time Markov chain under construction or
// analysis. States are dense integer indices [0, n); callers keep their own
// mapping from domain objects to indices.
type Chain struct {
	n         int
	generator *linalg.Dense
	built     bool
}

// New returns a chain with n states and no transitions.
func New(n int) (*Chain, error) {
	if n <= 0 {
		return nil, ErrEmptyChain
	}
	return &Chain{n: n, generator: linalg.NewDense(n, n)}, nil
}

// FromGenerator wraps an existing generator matrix. The matrix is validated
// and cloned.
func FromGenerator(q *linalg.Dense) (*Chain, error) {
	rows, cols := q.Dims()
	if rows != cols || rows == 0 {
		return nil, ErrEmptyChain
	}
	if err := linalg.CheckGenerator(q, 1e-9*scaleOf(q)); err != nil {
		return nil, err
	}
	return &Chain{n: rows, generator: q.Clone(), built: true}, nil
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return c.n }

// AddRate adds a transition from state i to state j with the given rate.
// Repeated calls accumulate. The diagonal is maintained automatically.
func (c *Chain) AddRate(i, j int, rate float64) error {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		return fmt.Errorf("%w: (%d,%d) with %d states", ErrUnknownState, i, j, c.n)
	}
	if i == j {
		return fmt.Errorf("ctmc: self-loop (%d,%d) is meaningless in a CTMC", i, j)
	}
	if rate <= 0 || rate != rate || rate > 1e300 {
		return fmt.Errorf("%w: rate(%d->%d) = %g", ErrBadRate, i, j, rate)
	}
	c.generator.Add(i, j, rate)
	c.generator.Add(i, i, -rate)
	return nil
}

// Generator returns a copy of the generator matrix.
func (c *Chain) Generator() *linalg.Dense { return c.generator.Clone() }

// SteadyState returns the stationary distribution of the chain, which must
// be irreducible.
func (c *Chain) SteadyState() ([]float64, error) {
	return linalg.SteadyStateGTH(c.generator)
}

// Transient returns the state distribution at time t starting from pi0.
func (c *Chain) Transient(pi0 []float64, t float64) ([]float64, error) {
	if len(pi0) != c.n {
		return nil, ErrRewardMismatch
	}
	return linalg.UniformizedPower(c.generator, pi0, t, 0, 1e-12)
}

// OccupancyIntegral returns, per state, the expected time spent in that
// state over [0, t] starting from pi0.
func (c *Chain) OccupancyIntegral(pi0 []float64, t float64) ([]float64, error) {
	if len(pi0) != c.n {
		return nil, ErrRewardMismatch
	}
	return linalg.UniformizedIntegral(c.generator, pi0, t, 0, 1e-12)
}

// ExpectedReward returns the steady-state expected reward sum_i pi_i * r_i.
func (c *Chain) ExpectedReward(reward []float64) (float64, error) {
	if len(reward) != c.n {
		return 0, ErrRewardMismatch
	}
	pi, err := c.SteadyState()
	if err != nil {
		return 0, err
	}
	return linalg.Dot(pi, reward)
}

// AccumulatedReward returns the expected reward accumulated over [0, t]
// starting from pi0, for a rate-reward vector r.
func (c *Chain) AccumulatedReward(pi0, reward []float64, t float64) (float64, error) {
	if len(reward) != c.n {
		return 0, ErrRewardMismatch
	}
	occ, err := c.OccupancyIntegral(pi0, t)
	if err != nil {
		return 0, err
	}
	return linalg.Dot(occ, reward)
}

func scaleOf(q *linalg.Dense) float64 {
	if m := q.MaxAbs(); m > 1 {
		return m
	}
	return 1
}
