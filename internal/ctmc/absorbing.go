package ctmc

import (
	"errors"
	"fmt"

	"nvrel/internal/linalg"
)

// ErrNoTransientStates is returned when every state is absorbing.
var ErrNoTransientStates = errors.New("ctmc: no transient states")

// FirstPassage analyzes the time until the chain first enters the target
// set, treating target states as absorbing.
type FirstPassage struct {
	n         int
	transient []int // indices of non-target states
	position  map[int]int
	inv       *linalg.LU // factorization of -Q_TT
}

// NewFirstPassage prepares a first-passage analysis of chain c into the
// states marked true in target.
func NewFirstPassage(c *Chain, target []bool) (*FirstPassage, error) {
	if len(target) != c.n {
		return nil, ErrRewardMismatch
	}
	fp := &FirstPassage{n: c.n, position: make(map[int]int)}
	for s, isTarget := range target {
		if !isTarget {
			fp.position[s] = len(fp.transient)
			fp.transient = append(fp.transient, s)
		}
	}
	if len(fp.transient) == 0 {
		return nil, ErrNoTransientStates
	}
	// Build -Q_TT (the negated transient-to-transient generator block).
	m := len(fp.transient)
	qtt := linalg.NewDense(m, m)
	q := c.generator
	for a, s := range fp.transient {
		for b, sp := range fp.transient {
			qtt.Set(a, b, -q.At(s, sp))
		}
	}
	inv, err := linalg.Factorize(qtt)
	if err != nil {
		return nil, fmt.Errorf("ctmc: target set unreachable from some transient state: %w", err)
	}
	fp.inv = inv
	return fp, nil
}

// MeanTimes returns, per transient state, the expected time to reach the
// target set. The result is indexed like the original chain; target states
// carry zero.
func (fp *FirstPassage) MeanTimes() ([]float64, error) {
	ones := make([]float64, len(fp.transient))
	for i := range ones {
		ones[i] = 1
	}
	// -Q_TT * t = 1  (standard mean hitting time system).
	t, err := fp.inv.Solve(ones)
	if err != nil {
		return nil, err
	}
	out := make([]float64, fp.n)
	for a, s := range fp.transient {
		out[s] = t[a]
	}
	return out, nil
}

// MeanTimeFrom returns the expected hitting time from a distribution over
// all states (mass on target states contributes zero).
func (fp *FirstPassage) MeanTimeFrom(pi0 []float64) (float64, error) {
	if len(pi0) != fp.n {
		return 0, ErrRewardMismatch
	}
	times, err := fp.MeanTimes()
	if err != nil {
		return 0, err
	}
	return linalg.Dot(pi0, times)
}
