package reliability

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// defaultParams are the Table II defaults.
var defaultParams = Params{P: 0.08, PPrime: 0.5, Alpha: 0.5}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Params
		wantErr bool
	}{
		{name: "defaults", give: defaultParams},
		{name: "bounds", give: Params{P: 0, PPrime: 1, Alpha: 1}},
		{name: "p negative", give: Params{P: -0.1, PPrime: 0.5, Alpha: 0.5}, wantErr: true},
		{name: "p above one", give: Params{P: 1.1, PPrime: 0.5, Alpha: 0.5}, wantErr: true},
		{name: "p prime NaN", give: Params{P: 0.1, PPrime: math.NaN(), Alpha: 0.5}, wantErr: true},
		{name: "alpha above one", give: Params{P: 0.1, PPrime: 0.5, Alpha: 2}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConstructorsRejectBadParams(t *testing.T) {
	bad := Params{P: -1, PPrime: 0.5, Alpha: 0.5}
	if _, err := FourVersion(bad); !errors.Is(err, ErrBadParams) {
		t.Errorf("FourVersion err = %v", err)
	}
	if _, err := SixVersion(bad); !errors.Is(err, ErrBadParams) {
		t.Errorf("SixVersion err = %v", err)
	}
	if _, err := Dependent(bad, Scheme{N: 4, F: 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("Dependent err = %v", err)
	}
	if _, err := Independent(bad, Scheme{N: 4, F: 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("Independent err = %v", err)
	}
	if _, err := Dependent(defaultParams, Scheme{N: 2, F: 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("Dependent with undersized scheme err = %v", err)
	}
}

func TestSchemeValidateAndThreshold(t *testing.T) {
	tests := []struct {
		name          string
		give          Scheme
		wantErr       bool
		wantThreshold int
		wantMaxDown   int
	}{
		{name: "four-version f=1", give: Scheme{N: 4, F: 1}, wantThreshold: 3, wantMaxDown: 1},
		{name: "six-version f=1 r=1", give: Scheme{N: 6, F: 1, R: 1}, wantThreshold: 4, wantMaxDown: 2},
		{name: "three-version majority", give: Scheme{N: 3, F: 0, R: 1}, wantThreshold: 2, wantMaxDown: 1},
		{name: "single module", give: Scheme{N: 1, F: 0, R: 0}, wantThreshold: 1, wantMaxDown: 0},
		{name: "too few replicas", give: Scheme{N: 3, F: 1}, wantErr: true},
		{name: "negative f", give: Scheme{N: 4, F: -1}, wantErr: true},
		{name: "empty", give: Scheme{}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if tt.wantErr {
				return
			}
			if got := tt.give.Threshold(); got != tt.wantThreshold {
				t.Errorf("Threshold() = %d, want %d", got, tt.wantThreshold)
			}
			if got := tt.give.MaxDown(); got != tt.wantMaxDown {
				t.Errorf("MaxDown() = %d, want %d", got, tt.wantMaxDown)
			}
		})
	}
}

// TestFourVersionKnownValues pins the verbatim appendix formulas at the
// Table II defaults (hand-computed).
func TestFourVersionKnownValues(t *testing.T) {
	r, err := FourVersion(defaultParams)
	if err != nil {
		t.Fatalf("FourVersion: %v", err)
	}
	tests := []struct {
		i, j, k int
		want    float64
	}{
		{4, 0, 0, 1 - (0.08*0.125 + 4*0.08*0.25*0.5)},   // 0.95
		{3, 1, 0, 1 - (0.08*0.25 + 3*0.08*0.5*0.5*0.5)}, // 0.95
		{3, 0, 1, 1 - 0.08*0.25},                        // 0.98
		{2, 2, 0, 1 - (0.08*0.25 + 2*0.08*0.5*0.5*0.5)}, // 0.96
		{2, 1, 1, 1 - 0.08*0.5*0.5},                     // 0.98
		{1, 3, 0, 1 - (0.125 + 3*0.08*0.25*0.5)},        // 0.845
		{1, 2, 1, 1 - 0.08*0.25},                        // 0.98
		{0, 4, 0, 1 - (0.0625 + 3*0.125*0.5)},           // 0.75
		{0, 3, 1, 1 - 0.125},                            // 0.875
		{0, 0, 4, 0},                                    // k too large
		{1, 1, 2, 0},                                    // k too large
		{2, 0, 2, 0},                                    // k too large
	}
	for _, tt := range tests {
		if got := r(tt.i, tt.j, tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("R(%d,%d,%d) = %.12g, want %.12g", tt.i, tt.j, tt.k, got, tt.want)
		}
	}
}

func TestSixVersionKnownValues(t *testing.T) {
	r, err := SixVersion(defaultParams)
	if err != nil {
		t.Fatalf("SixVersion: %v", err)
	}
	const (
		p  = 0.08
		pp = 0.5
		a  = 0.5
	)
	tests := []struct {
		i, j, k int
		want    float64
	}{
		{6, 0, 0, 1 - (p*0.03125 + 6*p*0.0625*0.5 + 15*p*0.125*0.25)},
		{5, 0, 1, 1 - (p*0.0625 + 5*p*0.125*0.5)},
		{4, 0, 2, 1 - p*0.125},
		{2, 2, 2, 1 - p*a*pp*pp},
		{0, 6, 0, 1 - (math.Pow(pp, 6) + 6*math.Pow(pp, 5)*0.5 + 15*math.Pow(pp, 4)*0.25)},
		{0, 4, 2, 1 - math.Pow(pp, 4)},
		{0, 0, 6, 0},
		{1, 2, 3, 0},
		{3, 0, 3, 0},
	}
	for _, tt := range tests {
		if got := r(tt.i, tt.j, tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("R(%d,%d,%d) = %.12g, want %.12g", tt.i, tt.j, tt.k, got, tt.want)
		}
	}
}

func TestStateFnPanicsOnBadState(t *testing.T) {
	r, err := FourVersion(defaultParams)
	if err != nil {
		t.Fatalf("FourVersion: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for state not summing to n")
		}
	}()
	r(1, 1, 1)
}

// TestVerbatimMatchesDependentWhereConsistent verifies that the appendix
// formulas agree with the generalized dependent model on every state
// except the three entries where the appendix is internally inconsistent
// (documented in DESIGN.md): R_{2,2,0} and R_{0,4,0} for the four-version
// system and R_{4,2,0} for the six-version system.
func TestVerbatimMatchesDependentWhereConsistent(t *testing.T) {
	params := []Params{
		defaultParams,
		{P: 0.01, PPrime: 0.9, Alpha: 0.2},
		{P: 0.2, PPrime: 0.3, Alpha: 0.8},
	}
	inconsistent4 := map[[3]int]bool{{2, 2, 0}: true, {0, 4, 0}: true}
	inconsistent6 := map[[3]int]bool{{4, 2, 0}: true}

	for _, pr := range params {
		v4, err := FourVersion(pr)
		if err != nil {
			t.Fatalf("FourVersion: %v", err)
		}
		d4, err := Dependent(pr, Scheme{N: 4, F: 1})
		if err != nil {
			t.Fatalf("Dependent: %v", err)
		}
		forEachState(4, func(i, j, k int) {
			got, want := v4(i, j, k), d4(i, j, k)
			if inconsistent4[[3]int{i, j, k}] {
				if math.Abs(got-want) < 1e-12 && pr.Alpha != 1 {
					t.Errorf("params %+v: R4(%d,%d,%d) unexpectedly consistent", pr, i, j, k)
				}
				return
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("params %+v: R4(%d,%d,%d): verbatim %.12g != dependent %.12g", pr, i, j, k, got, want)
			}
		})

		v6, err := SixVersion(pr)
		if err != nil {
			t.Fatalf("SixVersion: %v", err)
		}
		d6, err := Dependent(pr, Scheme{N: 6, F: 1, R: 1})
		if err != nil {
			t.Fatalf("Dependent: %v", err)
		}
		forEachState(6, func(i, j, k int) {
			got, want := v6(i, j, k), d6(i, j, k)
			if inconsistent6[[3]int{i, j, k}] {
				return // differs by the omitted p*a^3*(1-p')^2 term
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("params %+v: R6(%d,%d,%d): verbatim %.12g != dependent %.12g", pr, i, j, k, got, want)
			}
		})
	}
}

func TestSixVersionInconsistentEntryDelta(t *testing.T) {
	// The omitted term in R_{4,2,0} is exactly p*a^3*(1-p')^2.
	pr := defaultParams
	v6, err := SixVersion(pr)
	if err != nil {
		t.Fatalf("SixVersion: %v", err)
	}
	d6, err := Dependent(pr, Scheme{N: 6, F: 1, R: 1})
	if err != nil {
		t.Fatalf("Dependent: %v", err)
	}
	delta := v6(4, 2, 0) - d6(4, 2, 0)
	want := pr.P * math.Pow(pr.Alpha, 3) * math.Pow(1-pr.PPrime, 2)
	if math.Abs(delta-want) > 1e-12 {
		t.Errorf("delta = %.12g, want %.12g", delta, want)
	}
}

// forEachState enumerates all (i, j, k) with i+j+k = n.
func forEachState(n int, f func(i, j, k int)) {
	for i := 0; i <= n; i++ {
		for j := 0; j+i <= n; j++ {
			f(i, j, n-i-j)
		}
	}
}

func TestDependentPerfectModulesAreReliable(t *testing.T) {
	r, err := Dependent(Params{P: 0, PPrime: 0, Alpha: 0.5}, Scheme{N: 6, F: 1, R: 1})
	if err != nil {
		t.Fatalf("Dependent: %v", err)
	}
	forEachState(6, func(i, j, k int) {
		got := r(i, j, k)
		want := 1.0
		if i+j < 4 {
			want = 0
		}
		if got != want {
			t.Errorf("R(%d,%d,%d) = %g, want %g", i, j, k, got, want)
		}
	})
}

func TestIndependentMatchesBinomialHandCalc(t *testing.T) {
	// n=4, f=1, all healthy, p=0.5: P(err) = P(Bin(4,0.5) >= 3) = 5/16.
	r, err := Independent(Params{P: 0.5, PPrime: 0.5, Alpha: 0.9}, Scheme{N: 4, F: 1})
	if err != nil {
		t.Fatalf("Independent: %v", err)
	}
	if got, want := r(4, 0, 0), 1-5.0/16; math.Abs(got-want) > 1e-12 {
		t.Errorf("R(4,0,0) = %g, want %g", got, want)
	}
	// All compromised: same binomial on p'.
	if got, want := r(0, 4, 0), 1-5.0/16; math.Abs(got-want) > 1e-12 {
		t.Errorf("R(0,4,0) = %g, want %g", got, want)
	}
}

func TestIndependentIgnoresAlpha(t *testing.T) {
	s := Scheme{N: 4, F: 1}
	rLow, err := Independent(Params{P: 0.1, PPrime: 0.5, Alpha: 0}, s)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := Independent(Params{P: 0.1, PPrime: 0.5, Alpha: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	forEachState(4, func(i, j, k int) {
		if rLow(i, j, k) != rHigh(i, j, k) {
			t.Errorf("alpha changed independent model at (%d,%d,%d)", i, j, k)
		}
	})
}

// Property: every model yields reliabilities in [0, 1] across random
// parameters and all states.
func TestModelsInUnitIntervalProperty(t *testing.T) {
	f := func(rp, rpp, ra uint8) bool {
		pr := Params{
			P:      float64(rp) / 255,
			PPrime: float64(rpp) / 255,
			Alpha:  float64(ra) / 255,
		}
		fns := make([]StateFn, 0, 4)
		ns := make([]int, 0, 4)
		if fn, err := FourVersion(pr); err == nil {
			fns, ns = append(fns, fn), append(ns, 4)
		} else {
			return false
		}
		if fn, err := SixVersion(pr); err == nil {
			fns, ns = append(fns, fn), append(ns, 6)
		} else {
			return false
		}
		if fn, err := Dependent(pr, Scheme{N: 6, F: 1, R: 1}); err == nil {
			fns, ns = append(fns, fn), append(ns, 6)
		} else {
			return false
		}
		if fn, err := Independent(pr, Scheme{N: 4, F: 1}); err == nil {
			fns, ns = append(fns, fn), append(ns, 4)
		} else {
			return false
		}
		ok := true
		for idx, fn := range fns {
			forEachState(ns[idx], func(i, j, k int) {
				v := fn(i, j, k)
				if v < 0 || v > 1 || math.IsNaN(v) {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: reliability of the dependent model is non-increasing in p'.
func TestDependentMonotoneInPPrimeProperty(t *testing.T) {
	f := func(rp, ra, r1, r2 uint8) bool {
		p := float64(rp) / 300
		a := float64(ra) / 255
		pp1 := float64(r1) / 255
		pp2 := float64(r2) / 255
		if pp1 > pp2 {
			pp1, pp2 = pp2, pp1
		}
		s := Scheme{N: 6, F: 1, R: 1}
		lo, err := Dependent(Params{P: p, PPrime: pp1, Alpha: a}, s)
		if err != nil {
			return false
		}
		hi, err := Dependent(Params{P: p, PPrime: pp2, Alpha: a}, s)
		if err != nil {
			return false
		}
		ok := true
		forEachState(6, func(i, j, k int) {
			if hi(i, j, k) > lo(i, j, k)+1e-12 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGenerativeIsProperDistribution(t *testing.T) {
	// The generative healthy-error law must sum to one for every i (the
	// Ege-style Dependent law does not; that is its known approximation).
	for i := 0; i <= 8; i++ {
		var sum float64
		for m := 0; m <= i; m++ {
			switch {
			case m == 0 && i == 0:
				sum += 1
			case m == 0:
				sum += 1 - 0.08
			default:
				sum += 0.08 * float64(binomial(i-1, m-1)) * pow(0.5, m-1) * pow(0.5, i-m)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("i=%d: generative law sums to %g", i, sum)
		}
	}
}

func TestGenerativeKnownValues(t *testing.T) {
	r, err := Generative(defaultParams, Scheme{N: 4, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All healthy (i=4, T=3): P(err) = p [C(3,2) a^2 (1-a) + a^3]
	// = 0.08 (3*0.125 + 0.125) = 0.04.
	if got, want := r(4, 0, 0), 1-0.04; math.Abs(got-want) > 1e-12 {
		t.Errorf("R(4,0,0) = %.12f, want %.12f", got, want)
	}
	// All compromised: identical to the other models (binomial on p').
	if got, want := r(0, 4, 0), 1-(4*0.125*0.5+0.0625); math.Abs(got-want) > 1e-12 {
		t.Errorf("R(0,4,0) = %.12f, want %.12f", got, want)
	}
	// Skip states.
	if r(1, 1, 2) != 0 {
		t.Errorf("R(1,1,2) = %g, want 0", r(1, 1, 2))
	}
}

func TestGenerativeValidation(t *testing.T) {
	if _, err := Generative(Params{P: -1, PPrime: 0.5, Alpha: 0.5}, Scheme{N: 4, F: 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("err = %v", err)
	}
	if _, err := Generative(defaultParams, Scheme{N: 2, F: 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("err = %v", err)
	}
}

func TestBinomialHelpers(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {4, 0, 1}, {4, 2, 6}, {6, 3, 20}, {6, 4, 15}, {5, 5, 1},
		{4, 5, 0}, {4, -1, 0},
	}
	for _, tt := range tests {
		if got := binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
	if got := binomialPMF(4, 2, 0.5); math.Abs(got-0.375) > 1e-15 {
		t.Errorf("binomialPMF(4,2,0.5) = %g, want 0.375", got)
	}
	var total float64
	for k := 0; k <= 6; k++ {
		total += binomialPMF(6, k, 0.3)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("binomial PMF sums to %g", total)
	}
}
