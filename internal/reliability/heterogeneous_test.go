package reliability

import (
	"errors"
	"math"
	"testing"
)

func TestHeterogeneousMatchesIndependentWhenEqual(t *testing.T) {
	// Equal per-version rates must reduce exactly to the Independent
	// model.
	s := Scheme{N: 6, F: 1, R: 1}
	const p = 0.08
	het, err := Heterogeneous(HeterogeneousParams{
		HealthyErr:     []float64{p, p, p, p, p, p},
		CompromisedErr: 0.5,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := Independent(Params{P: p, PPrime: 0.5, Alpha: 0.3}, s)
	if err != nil {
		t.Fatal(err)
	}
	forEachState(6, func(i, j, k int) {
		if math.Abs(het(i, j, k)-ind(i, j, k)) > 1e-12 {
			t.Errorf("(%d,%d,%d): het %.12f != ind %.12f", i, j, k, het(i, j, k), ind(i, j, k))
		}
	})
}

func TestHeterogeneousSubsetAveraging(t *testing.T) {
	// Two versions, one perfect and one broken, one healthy module
	// (i=1, j=0, k=1), scheme N=2 f=0 r=1 (threshold 2): with only one
	// operational module the voter can never decide -> reliability 0,
	// regardless of which version survives.
	s := Scheme{N: 2, F: 0, R: 0}
	het, err := Heterogeneous(HeterogeneousParams{
		HealthyErr:     []float64{0, 1},
		CompromisedErr: 0.5,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold is 1: a single healthy module decides alone. Averaged
	// over which version is healthy: 1/2 * (1-0) + 1/2 * (1-1) = 0.5.
	if got := het(1, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("R(1,0,1) = %g, want 0.5 (subset average)", got)
	}
	// Both healthy: P(err) = P(>=1 wrong among both) ... threshold 1
	// wrong output IS an error only when >= threshold = 1. The broken
	// version always errs, so P(err) = 1 -> R = 0.
	if got := het(2, 0, 0); got != 0 {
		t.Errorf("R(2,0,0) = %g, want 0", got)
	}
}

func TestHeterogeneousPoissonBinomialHandCalc(t *testing.T) {
	// Three versions with rates 0.1, 0.2, 0.3 all healthy; scheme N=3
	// f=0 r=1 => threshold 2. P(>=2 wrong) =
	// 0.1*0.2*0.7 + 0.1*0.8*0.3 + 0.9*0.2*0.3 + 0.1*0.2*0.3 = 0.098.
	s := Scheme{N: 3, F: 0, R: 1}
	het, err := Heterogeneous(HeterogeneousParams{
		HealthyErr:     []float64{0.1, 0.2, 0.3},
		CompromisedErr: 0.5,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (0.1*0.2*0.7 + 0.1*0.8*0.3 + 0.9*0.2*0.3 + 0.1*0.2*0.3)
	if got := het(3, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("R(3,0,0) = %.12f, want %.12f", got, want)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	s := Scheme{N: 4, F: 1}
	cases := []HeterogeneousParams{
		{HealthyErr: []float64{0.1, 0.1}, CompromisedErr: 0.5},            // wrong length
		{HealthyErr: []float64{0.1, 0.1, 0.1, 2}, CompromisedErr: 0.5},    // out of range
		{HealthyErr: []float64{0.1, 0.1, 0.1, 0.1}, CompromisedErr: -0.5}, // bad p'
		{HealthyErr: []float64{0.1, 0.1, 0.1, math.NaN()}, CompromisedErr: 0.5},
	}
	for i, hp := range cases {
		if _, err := Heterogeneous(hp, s); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: err = %v, want ErrBadParams", i, err)
		}
	}
}

func TestOutcomesSumToOne(t *testing.T) {
	out, err := Outcomes(Params{P: 0.08, PPrime: 0.5, Alpha: 0.5}, Scheme{N: 6, F: 1, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	forEachState(6, func(i, j, k int) {
		c, e, s := out(i, j, k)
		if sum := c + e + s; math.Abs(sum-1) > 1e-12 {
			t.Errorf("(%d,%d,%d): outcomes sum to %g", i, j, k, sum)
		}
		if c < 0 || e < 0 || s < 0 {
			t.Errorf("(%d,%d,%d): negative outcome (%g,%g,%g)", i, j, k, c, e, s)
		}
	})
}

func TestOutcomesConsistentWithGenerative(t *testing.T) {
	// 1 - P(error) from Outcomes must equal the Generative reliability.
	pr := Params{P: 0.08, PPrime: 0.5, Alpha: 0.5}
	s := Scheme{N: 6, F: 1, R: 1}
	out, err := Outcomes(pr, s)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generative(pr, s)
	if err != nil {
		t.Fatal(err)
	}
	forEachState(6, func(i, j, k int) {
		_, e, _ := out(i, j, k)
		if i+j < s.Threshold() {
			return // Generative reports 0 for skip states by convention
		}
		if math.Abs((1-e)-gen(i, j, k)) > 1e-12 {
			t.Errorf("(%d,%d,%d): 1-P(err) %.12f != generative %.12f", i, j, k, 1-e, gen(i, j, k))
		}
	})
}

func TestOutcomesSkipStates(t *testing.T) {
	out, err := Outcomes(Params{P: 0.08, PPrime: 0.5, Alpha: 0.5}, Scheme{N: 4, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, e, s := out(1, 1, 2)
	if c != 0 || e != 0 || s != 1 {
		t.Errorf("skip state = (%g,%g,%g), want (0,0,1)", c, e, s)
	}
}

func TestOutcomesValidation(t *testing.T) {
	if _, err := Outcomes(Params{P: -1, PPrime: 0.5, Alpha: 0.5}, Scheme{N: 4, F: 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("err = %v", err)
	}
	if _, err := Outcomes(Params{P: 0.1, PPrime: 0.5, Alpha: 0.5}, Scheme{N: 1, F: 1}); !errors.Is(err, ErrBadParams) {
		t.Errorf("err = %v", err)
	}
}

func TestHeterogeneousCompromisedOnly(t *testing.T) {
	// All compromised states ignore the per-version rates entirely.
	s := Scheme{N: 4, F: 1}
	het, err := Heterogeneous(HeterogeneousParams{
		HealthyErr:     []float64{0.01, 0.99, 0.5, 0.2},
		CompromisedErr: 0.5,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := Independent(Params{P: 0.1, PPrime: 0.5, Alpha: 0.1}, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(het(0, 4, 0)-ind(0, 4, 0)) > 1e-12 {
		t.Errorf("R(0,4,0): het %.12f != ind %.12f", het(0, 4, 0), ind(0, 4, 0))
	}
}
