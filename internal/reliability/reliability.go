// Package reliability implements the output-reliability functions of the
// paper: the probability that the voter of an N-version perception system
// produces a correct output given the number of healthy (i), compromised
// (j), and non-operational or rejuvenating (k) ML modules.
//
// Three models are provided:
//
//   - FourVersion / SixVersion: the paper's appendix formulas, implemented
//     verbatim (matrices R_f4 and R_f6). These are the functions behind the
//     published headline numbers. The printed appendix contains two
//     impossible terms that are corrected here with the minimal reading
//     that restores consistency (documented at the relevant functions).
//   - Dependent: a self-consistent generalization of the appendix's
//     Ege-style dependent-error model to arbitrary N, f, r. It agrees with
//     most appendix entries exactly and differs from three entries where
//     the appendix is internally inconsistent (R_{2,2,0}, R_{0,4,0},
//     R_{4,2,0}); the differences are exercised in the tests.
//   - Independent: a no-dependency baseline (alpha ignored; healthy errors
//     i.i.d. Bernoulli(p)).
//
// All models share the threat semantics of assumptions A.2/A.3: an output
// is erroneous only when at least T modules vote incorrectly, where T is
// the voting threshold (2f+1 without rejuvenation, 2f+r+1 with); states
// without enough operational modules to reach T correct outputs have
// reliability zero (the voter safely skips, which the reward counts as not
// correct).
package reliability

import (
	"errors"
	"fmt"
	"math"
)

// Params are the error-probability inputs of Table II.
type Params struct {
	// P is the output error probability of a healthy ML module.
	P float64
	// PPrime is the output error probability of a compromised ML module
	// (p' > p; outputs in a compromised state approach random).
	PPrime float64
	// Alpha is the error-probability dependency factor between healthy
	// modules (0 = independent-ish, 1 = fully dependent).
	Alpha float64
}

// Validate checks that all parameters are probabilities.
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("reliability: parameter %s = %g outside [0,1]", name, v)
		}
		return nil
	}
	if err := check("p", p.P); err != nil {
		return err
	}
	if err := check("p'", p.PPrime); err != nil {
		return err
	}
	return check("alpha", p.Alpha)
}

// StateFn maps a module-state triple (i healthy, j compromised, k down or
// rejuvenating) to output reliability in [0, 1].
type StateFn func(i, j, k int) float64

// ErrBadParams wraps parameter validation failures from constructors.
var ErrBadParams = errors.New("reliability: invalid parameters")

// FourVersion returns the paper's R_f4 state reliability function for the
// four-version system without rejuvenation (n = 4, f = 1, voting threshold
// 2f+1 = 3). States with k > 1 have reliability zero.
func FourVersion(pr Params) (StateFn, error) {
	if err := pr.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	p, pp, a := pr.P, pr.PPrime, pr.Alpha
	table := map[[3]int]float64{
		{4, 0, 0}: 1 - (p*a*a*a + 4*p*a*a*(1-a)),
		{3, 1, 0}: 1 - (p*a*a + 3*p*a*(1-a)*pp),
		{3, 0, 1}: 1 - p*a*a,
		{2, 2, 0}: 1 - (p*pp*pp + 2*p*a*pp*(1-pp)),
		{2, 1, 1}: 1 - p*a*pp,
		{1, 3, 0}: 1 - (pp*pp*pp + 3*p*pp*pp*(1-pp)),
		{1, 2, 1}: 1 - p*pp*pp,
		{0, 4, 0}: 1 - (pow(pp, 4) + 3*pow(pp, 3)*(1-pp)),
		{0, 3, 1}: 1 - pow(pp, 3),
	}
	return fromTable(table, 4), nil
}

// SixVersion returns the paper's R_f6 state reliability function for the
// six-version system with rejuvenation (n = 6, f = 1, r = 1, voting
// threshold 2f+r+1 = 4). States with k > 2 have reliability zero.
//
// Two printed terms are corrected with the minimal consistent reading:
//   - R_{2,3,1}: the impossible "p*a*p'^4" (only three compromised modules
//     exist) is read as p*a*p'^3;
//   - R_{2,4,0}: the duplicated "2p(1-a)p'^4" is read as "(1-p)p'^4", which
//     makes the entry agree exactly with the dependent model every other
//     entry of the row follows.
func SixVersion(pr Params) (StateFn, error) {
	if err := pr.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	p, pp, a := pr.P, pr.PPrime, pr.Alpha
	q := 1 - pp
	table := map[[3]int]float64{
		{6, 0, 0}: 1 - (p*pow(a, 5) + 6*p*pow(a, 4)*(1-a) + 15*p*pow(a, 3)*pow(1-a, 2)),
		{5, 1, 0}: 1 - (p*pow(a, 4) + 5*p*pow(a, 3)*(1-a) + 10*p*a*a*pow(1-a, 2)*pp),
		{5, 0, 1}: 1 - (p*pow(a, 4) + 5*p*pow(a, 3)*(1-a)),
		{4, 2, 0}: 1 - (p*pow(a, 3)*pp*pp + 2*p*pow(a, 3)*pp*q +
			4*p*a*a*(1-a)*pp*pp + 8*p*a*a*(1-a)*pp*q + 6*p*a*pow(1-a, 2)*pp*pp),
		{4, 1, 1}: 1 - (p*pow(a, 3) + 4*p*a*a*(1-a)*pp),
		{4, 0, 2}: 1 - p*pow(a, 3),
		{3, 3, 0}: 1 - (p*a*a*pow(pp, 3) + 3*p*a*a*pp*pp*q + 3*p*a*(1-a)*pow(pp, 3) +
			3*p*a*a*pp*q*q + 9*p*a*(1-a)*pp*pp*q + 3*p*pow(1-a, 2)*pow(pp, 3)),
		{3, 2, 1}: 1 - (p*a*a*pp*pp + 2*p*a*a*pp*q + 3*p*a*(1-a)*pp*pp),
		{3, 1, 2}: 1 - p*a*a*pp,
		{2, 4, 0}: 1 - (p*a*pow(pp, 4) + 4*p*a*pow(pp, 3)*q + (1-p)*pow(pp, 4) +
			6*p*a*pp*pp*q*q + 8*p*(1-a)*pow(pp, 3)*q + 2*p*(1-a)*pow(pp, 4)),
		{2, 3, 1}: 1 - (p*a*pow(pp, 3) + 3*p*a*pp*pp*q + 2*p*(1-a)*pow(pp, 3)),
		{2, 2, 2}: 1 - p*a*pp*pp,
		{1, 5, 0}: 1 - (pow(pp, 5) + 5*pow(pp, 4)*q + 10*p*pow(pp, 3)*q*q),
		{1, 4, 1}: 1 - (pow(pp, 4) + 4*p*pow(pp, 3)*q),
		{1, 3, 2}: 1 - p*pow(pp, 3),
		{0, 6, 0}: 1 - (pow(pp, 6) + 6*pow(pp, 5)*q + 15*pow(pp, 4)*q*q),
		{0, 5, 1}: 1 - (pow(pp, 5) + 5*pow(pp, 4)*q),
		{0, 4, 2}: 1 - pow(pp, 4),
	}
	return fromTable(table, 6), nil
}

// fromTable builds a StateFn from explicit entries; any (i, j, k) summing
// to n but absent from the table has reliability zero (voting rule not
// satisfiable), and triples not summing to n are rejected by panic since
// they indicate a solver bug, not user input.
func fromTable(table map[[3]int]float64, n int) StateFn {
	for k, v := range table {
		// The appendix formulas are first-order expansions whose error
		// terms can leave [0,1] for extreme (p, p', alpha) combinations
		// well outside the paper's operating regime; clamp like a reward
		// function must be.
		table[k] = clamp01(v)
	}
	return func(i, j, k int) float64 {
		if i+j+k != n || i < 0 || j < 0 || k < 0 {
			panic(fmt.Sprintf("reliability: state (%d,%d,%d) does not describe %d modules", i, j, k, n))
		}
		return table[[3]int{i, j, k}]
	}
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

func pow(x float64, n int) float64 {
	r := 1.0
	for ; n > 0; n-- {
		r *= x
	}
	return r
}
