package reliability

import (
	"errors"
	"fmt"
)

// Scheme describes the voting rule of an N-version system in the BFT style
// of §II-B: n modules tolerate f compromised modules and r simultaneously
// rejuvenating or recovering modules.
type Scheme struct {
	N int // number of ML module versions
	F int // tolerated compromised modules
	R int // simultaneously rejuvenating/recovering modules (0 = no rejuvenation)
}

// Validate checks the BFT resource bound n >= 3f + 2r + 1.
func (s Scheme) Validate() error {
	if s.N <= 0 || s.F < 0 || s.R < 0 {
		return fmt.Errorf("reliability: scheme %+v has negative or empty fields", s)
	}
	if need := 3*s.F + 2*s.R + 1; s.N < need {
		return fmt.Errorf("reliability: scheme %+v violates n >= 3f+2r+1 (need %d)", s, need)
	}
	return nil
}

// Threshold returns the number of agreeing outputs required for a decision
// (2f+r+1), which is also the number of wrong outputs that constitutes a
// perception error under assumptions A.2/A.3.
func (s Scheme) Threshold() int { return 2*s.F + s.R + 1 }

// MaxDown returns the largest k for which the voting rule can still be
// satisfied: beyond it the voter cannot gather Threshold() outputs.
func (s Scheme) MaxDown() int { return s.N - s.Threshold() }

// Dependent returns the generalized Ege-style dependent-error reliability
// function for an arbitrary scheme. The probability that exactly m of i
// healthy modules err is modeled as
//
//	P(0) = 1 - p                     (for i >= 1; P(0) = 1 when i = 0)
//	P(m) = C(i,m) p a^(m-1) (1-a)^(i-m)   for 1 <= m <= i
//
// while compromised modules err independently with probability p'. A state
// is an error when at least Threshold() modules err; reliability is zero
// when fewer than Threshold() modules are operational.
func Dependent(pr Params, s Scheme) (StateFn, error) {
	if err := pr.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	if err := s.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	healthy := func(i, m int) float64 { return dependentErrProb(pr.P, pr.Alpha, i, m) }
	return thresholdModel(pr, s, healthy), nil
}

// Generative returns the exact reliability function of the common-cause
// chain model that package mlsim samples from: with probability p a
// perturbation fools one healthy module outright and each remaining
// healthy module independently with probability alpha, while compromised
// modules err independently with probability p'. Unlike the Ege-style
// Dependent model this is a proper probability distribution,
//
//	P(0) = 1 - p
//	P(m) = p C(i-1, m-1) a^(m-1) (1-a)^(i-m)   for 1 <= m <= i,
//
// so it is the right analytic counterpart for cross-validating the
// event-level simulator's request outcomes.
func Generative(pr Params, s Scheme) (StateFn, error) {
	if err := pr.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	if err := s.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	healthy := func(i, m int) float64 {
		switch {
		case m < 0 || m > i:
			return 0
		case m == 0:
			if i == 0 {
				return 1
			}
			return 1 - pr.P
		default:
			return pr.P * float64(binomial(i-1, m-1)) * pow(pr.Alpha, m-1) * pow(1-pr.Alpha, i-m)
		}
	}
	return thresholdModel(pr, s, healthy), nil
}

// OutcomeFn maps a module-population state to the full voted-outcome
// distribution: the probabilities that one request yields a correct
// decision (at least Threshold correct outputs), an erroneous decision
// (at least Threshold wrong outputs), or an inconclusive-but-safe skip.
// The three sum to one.
type OutcomeFn func(i, j, k int) (correct, erroneous, skipped float64)

// Outcomes returns the voted-outcome decomposition under the generative
// error model. The paper's reliability R = 1 - P(error) merges correct
// and skipped outputs; this decomposition separates them, which matters
// operationally: a skip is safe but still leaves the vehicle without a
// perception output.
func Outcomes(pr Params, s Scheme) (OutcomeFn, error) {
	if err := pr.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	if err := s.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	healthy := func(i, m int) float64 {
		switch {
		case m < 0 || m > i:
			return 0
		case m == 0:
			if i == 0 {
				return 1
			}
			return 1 - pr.P
		default:
			return pr.P * float64(binomial(i-1, m-1)) * pow(pr.Alpha, m-1) * pow(1-pr.Alpha, i-m)
		}
	}
	threshold := s.Threshold()
	n := s.N
	return func(i, j, k int) (float64, float64, float64) {
		if i+j+k != n || i < 0 || j < 0 || k < 0 {
			panic(fmt.Sprintf("reliability: state (%d,%d,%d) does not describe %d modules", i, j, k, n))
		}
		operational := i + j
		if operational < threshold {
			return 0, 0, 1 // the voter can never decide
		}
		var pCorrect, pError float64
		for mh := 0; mh <= i; mh++ {
			ph := healthy(i, mh)
			if ph == 0 {
				continue
			}
			for mc := 0; mc <= j; mc++ {
				p := ph * binomialPMF(j, mc, pr.PPrime)
				wrong := mh + mc
				right := operational - wrong
				switch {
				case right >= threshold:
					pCorrect += p
				case wrong >= threshold:
					pError += p
				}
			}
		}
		skip := 1 - pCorrect - pError
		if skip < 0 {
			skip = 0
		}
		return pCorrect, pError, skip
	}, nil
}

// Independent returns a baseline reliability function in which healthy
// modules err i.i.d. with probability p (alpha is ignored).
func Independent(pr Params, s Scheme) (StateFn, error) {
	if err := pr.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	if err := s.Validate(); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	healthy := func(i, m int) float64 { return binomialPMF(i, m, pr.P) }
	return thresholdModel(pr, s, healthy), nil
}

// thresholdModel assembles a StateFn from a healthy-error distribution and
// the independent compromised-error binomial.
func thresholdModel(pr Params, s Scheme, healthy func(i, m int) float64) StateFn {
	threshold := s.Threshold()
	n := s.N
	return func(i, j, k int) float64 {
		if i+j+k != n || i < 0 || j < 0 || k < 0 {
			panic(fmt.Sprintf("reliability: state (%d,%d,%d) does not describe %d modules", i, j, k, n))
		}
		if i+j < threshold {
			return 0 // voter cannot reach a decision; skip counts as not correct
		}
		var perr float64
		for mh := 0; mh <= i; mh++ {
			ph := healthy(i, mh)
			if ph == 0 {
				continue
			}
			for mc := 0; mc <= j; mc++ {
				if mh+mc < threshold {
					continue
				}
				perr += ph * binomialPMF(j, mc, pr.PPrime)
			}
		}
		r := 1 - perr
		if r < 0 {
			// The dependent model's healthy-error mass can exceed one for
			// extreme (p, alpha); clamp like the paper's reward functions.
			r = 0
		}
		return r
	}
}

// dependentErrProb returns the Ege-style probability that exactly m of i
// healthy modules err.
func dependentErrProb(p, a float64, i, m int) float64 {
	switch {
	case m < 0 || m > i:
		return 0
	case m == 0:
		if i == 0 {
			return 1
		}
		return 1 - p
	default:
		return float64(binomial(i, m)) * p * pow(a, m-1) * pow(1-a, i-m)
	}
}

// binomialPMF returns C(n,k) q^k (1-q)^(n-k).
func binomialPMF(n, k int, q float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	return float64(binomial(n, k)) * pow(q, k) * pow(1-q, n-k)
}

// binomial returns C(n,k) for the small n used here.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}
