package reliability

import (
	"errors"
	"fmt"
)

// HeterogeneousParams describe an N-version system whose module versions
// have individually measured accuracies — the situation of a real
// deployment (the paper averages LeNet/AlexNet/ResNet into one p; here
// each version keeps its own).
type HeterogeneousParams struct {
	// HealthyErr is each module's error probability while healthy
	// (length N, matching the scheme).
	HealthyErr []float64
	// CompromisedErr is the error probability of a compromised module
	// (compromised outputs approach random regardless of the version, so
	// a single scalar as in the paper).
	CompromisedErr float64
}

// Validate checks the parameters against the scheme.
func (hp HeterogeneousParams) Validate(s Scheme) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(hp.HealthyErr) != s.N {
		return fmt.Errorf("reliability: %d healthy error rates for %d versions", len(hp.HealthyErr), s.N)
	}
	for i, p := range hp.HealthyErr {
		if p < 0 || p > 1 || p != p {
			return fmt.Errorf("reliability: version %d error rate %g outside [0,1]", i, p)
		}
	}
	if hp.CompromisedErr < 0 || hp.CompromisedErr > 1 || hp.CompromisedErr != hp.CompromisedErr {
		return fmt.Errorf("reliability: compromised error rate %g outside [0,1]", hp.CompromisedErr)
	}
	return nil
}

// Heterogeneous returns a reliability function for modules with
// per-version accuracies and independent errors. Since the analytic state
// (i, j, k) does not identify which versions are healthy, the healthy
// error distribution is averaged over all subsets of size i (computed
// exactly via the elementary-symmetric-polynomial recursion, not by
// enumeration), and compromised modules err independently with
// CompromisedErr. The wrong-output count distribution per subset is the
// Poisson-binomial law, computed by dynamic programming.
func Heterogeneous(hp HeterogeneousParams, s Scheme) (StateFn, error) {
	if err := hp.Validate(s); err != nil {
		return nil, errors.Join(ErrBadParams, err)
	}
	n := s.N
	threshold := s.Threshold()

	// wrongDist[i][m] = P(exactly m of the i healthy modules err),
	// averaged over all i-subsets of versions with equal weight.
	//
	// Both the subset average and the per-subset Poisson-binomial law are
	// captured by one DP over versions: process versions one at a time;
	// state (#included, #wrong). Each version is included in a random
	// subset; averaging over subsets of size exactly i is done by
	// conditioning the unconstrained inclusion DP on the count, which is
	// equivalent to tracking joint (included, wrong) counts with
	// inclusion "weight" 1 and normalizing by C(n, i).
	type key struct{ inc, wrong int }
	weights := map[key]float64{{0, 0}: 1}
	for _, p := range hp.HealthyErr {
		next := make(map[key]float64, len(weights)*2)
		for k, w := range weights {
			// Version excluded from the healthy subset.
			next[k] += w
			// Version included: errs with its own probability.
			next[key{k.inc + 1, k.wrong + 1}] += w * p
			next[key{k.inc + 1, k.wrong}] += w * (1 - p)
		}
		weights = next
	}
	wrongDist := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		wrongDist[i] = make([]float64, i+1)
	}
	for k, w := range weights {
		wrongDist[k.inc][k.wrong] += w
	}
	for i := 0; i <= n; i++ {
		// Normalize by the total subset weight C(n, i).
		c := float64(binomial(n, i))
		for m := range wrongDist[i] {
			wrongDist[i][m] /= c
		}
	}

	return func(i, j, k int) float64 {
		if i+j+k != n || i < 0 || j < 0 || k < 0 {
			panic(fmt.Sprintf("reliability: state (%d,%d,%d) does not describe %d modules", i, j, k, n))
		}
		if i+j < threshold {
			return 0
		}
		var perr float64
		for mh := 0; mh <= i; mh++ {
			ph := wrongDist[i][mh]
			if ph == 0 {
				continue
			}
			for mc := 0; mc <= j; mc++ {
				if mh+mc < threshold {
					continue
				}
				perr += ph * binomialPMF(j, mc, hp.CompromisedErr)
			}
		}
		return clamp01(1 - perr)
	}, nil
}
