// Package parallel provides the bounded worker pool used by the sweep and
// replication engines. Work items are claimed in index order, results are
// written by index (so output ordering never depends on scheduling), and the
// first error — by index, not by wall-clock — cancels the remaining work.
// Every construct degenerates to a plain loop when one worker is configured,
// and the contract is that a parallel run is bit-identical to that loop.
//
// The default worker count is runtime.NumCPU; it can be overridden
// process-wide with SetWorkers (the CLI's -workers flag) or the
// NVREL_WORKERS environment variable.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"nvrel/internal/obs"
)

var (
	overrideMu sync.RWMutex
	override   int // 0 means "no explicit override"
)

// SetWorkers fixes the process-wide default worker count and returns the
// previous override (0 when none was set). Passing 0 restores automatic
// selection (NVREL_WORKERS, then runtime.NumCPU).
func SetWorkers(n int) (prev int) {
	overrideMu.Lock()
	defer overrideMu.Unlock()
	prev = override
	if n < 0 {
		n = 0
	}
	override = n
	return prev
}

// Workers returns the effective default worker count: an explicit
// SetWorkers value, else a positive NVREL_WORKERS environment variable,
// else runtime.NumCPU.
func Workers() int {
	overrideMu.RLock()
	n := override
	overrideMu.RUnlock()
	if n > 0 {
		return n
	}
	if s := os.Getenv("NVREL_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.NumCPU()
}

// MinItemsPerWorker is the work floor below which ForEach and Map shed
// workers: spinning up a goroutine for fewer items than this costs more in
// scheduling than the fan-out recovers on the solver workloads the pool
// exists for.
const MinItemsPerWorker = 4

// EffectiveWorkers returns the worker count ForEach and Map will actually
// use for n items: Workers() clamped to runtime.NumCPU — the solves are
// pure CPU work, so goroutines beyond the core count only add scheduling
// overhead — and shed further so every worker has at least
// MinItemsPerWorker items. Small sweeps therefore run inline instead of
// paying pool overhead, and a 2-worker request on a 1-CPU machine
// degenerates to the serial loop it would have fought the scheduler to
// imitate. ForEachN and MapN take the caller's count verbatim and are not
// clamped.
func EffectiveWorkers(n int) int {
	w := Workers()
	if cpus := runtime.NumCPU(); w > cpus {
		w = cpus
	}
	if n > 0 {
		if byWork := (n + MinItemsPerWorker - 1) / MinItemsPerWorker; w > byWork {
			w = byWork
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(0..n-1) on EffectiveWorkers(n) goroutines. See ForEachN.
func ForEach(n int, fn func(i int) error) error {
	return ForEachN(EffectiveWorkers(n), n, fn)
}

// ForEachN runs fn(0..n-1) on at most workers goroutines. Indices are
// claimed in increasing order. When some call fails, the pool stops
// claiming new indices, waits for in-flight calls, and returns the error
// of the lowest failing index — the same error a serial loop would have
// returned, because every index below the lowest failure completes.
func ForEachN(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if obs.Enabled() {
		return forEachNObserved(workers, n, fn)
	}
	return forEachN(workers, n, fn)
}

// forEachN is the uninstrumented pool core; workers is already clamped to
// [1, n] and n is positive.
func forEachN(workers, n int, fn func(i int) error) error {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || stopped.Load() {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					errMu.Unlock()
					stopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// ForEachRes runs fn(res, 0..n-1) on EffectiveWorkers(n) goroutines,
// handing each worker one resource for its entire run: acquire is called
// once per worker on that worker's goroutine and release once when it
// exits. Use it to share a workspace arena across the pool — one
// checkout per worker instead of one per item. Ordering and error
// semantics match ForEach: indices are claimed in increasing order and
// the error of the lowest failing index is returned. One configured
// worker degenerates to a plain loop over a single resource, and a
// parallel run is bit-identical to that loop whenever fn is.
func ForEachRes[R any](n int, acquire func() R, release func(R), fn func(res R, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := EffectiveWorkers(n)
	if workers > n {
		workers = n
	}
	if !obs.Enabled() {
		return forEachResN(workers, n, acquire, release, fn)
	}
	finish := beginPoolRun(workers, n)
	var busy atomic.Int64
	err := forEachResN(workers, n, acquire, release, func(res R, i int) error {
		t0 := nowNS()
		e := fn(res, i)
		busy.Add(nowNS() - t0)
		return e
	})
	finish(busy.Load())
	return err
}

// forEachResN is the worker-scoped-resource pool core; workers is already
// clamped to [1, n] and n is positive.
func forEachResN[R any](workers, n int, acquire func() R, release func(R), fn func(res R, i int) error) error {
	if workers <= 1 {
		res := acquire()
		defer release(res)
		for i := 0; i < n; i++ {
			if err := fn(res, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := acquire()
			defer release(res)
			for {
				i := int(next.Add(1) - 1)
				if i >= n || stopped.Load() {
					return
				}
				if err := fn(res, i); err != nil {
					errMu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					errMu.Unlock()
					stopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map evaluates fn over 0..n-1 on EffectiveWorkers(n) goroutines and
// returns the results in index order. On error the slice is nil and the
// error is the one of the lowest failing index.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN[T](EffectiveWorkers(n), n, fn)
}

// MapN is Map with an explicit worker count.
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachN(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
