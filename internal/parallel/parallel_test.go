package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachNVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		n := 57
		counts := make([]atomic.Int32, n)
		if err := ForEachN(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachNZeroAndNegative(t *testing.T) {
	called := false
	if err := ForEachN(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachN(4, -3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for empty range")
	}
}

func TestForEachNReturnsLowestIndexError(t *testing.T) {
	// Indices 9 and 23 fail; the serial loop would report index 9. The
	// pool must report the same error regardless of worker count.
	for _, workers := range []int{1, 2, 4, 16} {
		err := ForEachN(workers, 40, func(i int) error {
			if i == 9 || i == 23 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 9" {
			t.Fatalf("workers=%d: got %v, want boom at 9", workers, err)
		}
	}
}

func TestForEachNCancelsAfterError(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("stop")
	err := ForEachN(2, 100000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if got := ran.Load(); got == 100000 {
		t.Error("no cancellation: every index ran despite an early error")
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 9} {
		out, err := MapN(workers, 25, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapErrorDropsResults(t *testing.T) {
	out, err := MapN(3, 10, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("bad point")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatalf("expected nil results on error, got %v", out)
	}
}

func TestWorkersOverridePrecedence(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)

	t.Setenv("NVREL_WORKERS", "3")
	if got := Workers(); got != 3 {
		t.Fatalf("env override: got %d, want 3", got)
	}
	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("explicit override beats env: got %d, want 5", got)
	}
	SetWorkers(0)
	t.Setenv("NVREL_WORKERS", "not-a-number")
	if got := Workers(); got <= 0 {
		t.Fatalf("fallback must be positive, got %d", got)
	}
}

func TestEffectiveWorkersClampsToCPUAndWork(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)

	cpus := runtime.NumCPU()

	// A request beyond the core count is clamped: pure-CPU solves gain
	// nothing from extra goroutines.
	SetWorkers(cpus + 7)
	if got := EffectiveWorkers(1000); got != cpus {
		t.Errorf("oversubscribed request: got %d, want %d", got, cpus)
	}

	// Tiny sweeps shed workers down to the minimum-work floor.
	SetWorkers(cpus)
	if got := EffectiveWorkers(1); got != 1 {
		t.Errorf("n=1: got %d, want 1", got)
	}
	if got := EffectiveWorkers(MinItemsPerWorker); got != 1 {
		t.Errorf("n=%d: got %d, want 1", MinItemsPerWorker, got)
	}
	want := 2
	if cpus < 2 {
		want = 1
	}
	if got := EffectiveWorkers(2 * MinItemsPerWorker); got != want {
		t.Errorf("n=%d: got %d, want %d", 2*MinItemsPerWorker, got, want)
	}

	// Zero items still yields a usable worker count.
	if got := EffectiveWorkers(0); got < 1 {
		t.Errorf("n=0: got %d, want >= 1", got)
	}
}

func TestForEachMatchesSerialOnSmallSweeps(t *testing.T) {
	// ForEach must visit every index exactly once regardless of how many
	// workers EffectiveWorkers sheds.
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	for _, n := range []int{1, 3, 4, 5, 17} {
		counts := make([]atomic.Int32, n)
		if err := ForEach(n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}
