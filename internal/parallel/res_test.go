package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachResVisitsEveryIndexOnce(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	const n = 100
	var hits [n]atomic.Int64
	err := ForEachRes(n,
		func() int { return 0 },
		func(int) {},
		func(_ int, i int) error {
			hits[i].Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForEachResAcquiresPerWorkerNotPerItem(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var acquires, releases atomic.Int64
	const n = 64
	err := ForEachRes(n,
		func() int { return int(acquires.Add(1)) },
		func(int) { releases.Add(1) },
		func(res int, i int) error {
			if res == 0 {
				return errors.New("zero resource")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	a, r := acquires.Load(), releases.Load()
	if a != r {
		t.Fatalf("acquires %d != releases %d", a, r)
	}
	if a > int64(EffectiveWorkers(n)) {
		t.Fatalf("acquired %d resources for %d workers — per-item acquisition", a, EffectiveWorkers(n))
	}
}

func TestForEachResReturnsLowestIndexError(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	// Fail a scattering of indices; the contract is the error of the
	// lowest failing index, exactly like ForEach.
	err := ForEachRes(200,
		func() struct{} { return struct{}{} },
		func(struct{}) {},
		func(_ struct{}, i int) error {
			if i == 17 || i == 3 || i == 150 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
	if err == nil || err.Error() != "fail 3" {
		t.Fatalf("err = %v, want fail 3", err)
	}
}

func TestForEachResSingleWorkerIsSerialLoop(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	var order []int
	var acquires int
	err := ForEachRes(10,
		func() int { acquires++; return acquires },
		func(int) {},
		func(res int, i int) error {
			if res != 1 {
				return fmt.Errorf("worker resource %d", res)
			}
			order = append(order, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if acquires != 1 {
		t.Fatalf("one worker acquired %d resources", acquires)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestForEachResZeroItems(t *testing.T) {
	called := false
	err := ForEachRes(0,
		func() int { called = true; return 0 },
		func(int) { called = true },
		func(int, int) error { called = true; return nil })
	if err != nil || called {
		t.Fatalf("n=0: err=%v called=%v", err, called)
	}
}

func TestForEachResSharesArena(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	// The intended composition: acquire/release backed by a shared pool.
	var mu sync.Mutex
	free := []int{}
	next := 0
	acquire := func() int {
		mu.Lock()
		defer mu.Unlock()
		if n := len(free); n > 0 {
			v := free[n-1]
			free = free[:n-1]
			return v
		}
		next++
		return next
	}
	release := func(v int) {
		mu.Lock()
		free = append(free, v)
		mu.Unlock()
	}
	for round := 0; round < 3; round++ {
		if err := ForEachRes(30, acquire, release, func(int, int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if next > 3 {
		t.Fatalf("three rounds at three workers allocated %d resources; arena not reused", next)
	}
}
