package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nvrel/internal/faultinject"
	"nvrel/internal/obs"
)

// Fault-injection sites of the hardened pool, exercised by the chaos
// harness: an injected panic inside a worker's item and an injected stall
// that pushes an item past its per-attempt deadline.
var (
	fiWorkerPanic = faultinject.SiteFor("parallel.worker.panic")
	fiWorkerStall = faultinject.SiteFor("parallel.worker.stall")
)

// PanicError is the typed failure recorded for an item whose function
// panicked. The panic is recovered inside the pool — a worker panic must
// never abort the whole sweep — and the worker that observed it is retired
// and replaced by a fresh goroutine.
type PanicError struct {
	// Index is the work item whose function panicked.
	Index int
	// Value is the recovered panic payload.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", e.Index, e.Value)
}

// ForEachCtx runs fn(0..n-1) on EffectiveWorkers(n) goroutines, passing a
// context that is cancelled as soon as any item fails or the parent
// context dies. Context-aware in-flight items therefore drain promptly on
// the first hard error instead of running to completion against a result
// nobody will read — and items blocked on ctx.Done() cannot hang the pool
// forever. Like ForEachN, the returned error is the one of the lowest
// failing index.
func ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := EffectiveWorkers(n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := child.Err(); err != nil {
				return err
			}
			ictx, sp := obs.StartSpan(child, "parallel.item")
			sp.Int("index", int64(i)).Int("worker", 0)
			err := fn(ictx, i)
			sp.Err(err)
			sp.End()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || child.Err() != nil {
					return
				}
				ictx, sp := obs.StartSpan(child, "parallel.item")
				sp.Int("index", int64(i)).Int("worker", int64(worker))
				err := fn(ictx, i)
				sp.Err(err)
				sp.End()
				if err != nil {
					errMu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					errMu.Unlock()
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr == nil {
		// No item reported an error but the parent context may have died
		// mid-run, leaving later indices unclaimed.
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return firstErr
}

// HardenedOptions tunes ForEachHardened. The zero value is usable.
type HardenedOptions struct {
	// Workers is the pool size; 0 means EffectiveWorkers(n).
	Workers int
	// MaxAttempts is the per-item attempt budget; 0 means 2 (one retry on
	// a fresh worker after a panic or per-attempt timeout).
	MaxAttempts int
	// Backoff is the delay before an item's first retry, doubling per
	// subsequent attempt; 0 means 1ms.
	Backoff time.Duration
	// ItemTimeout bounds each attempt with a child context deadline; 0
	// means no per-attempt deadline.
	ItemTimeout time.Duration
}

// ForEachHardened runs fn(0..n-1) with worker rejuvenation and per-item
// fault containment, returning one error slot per item (nil on success)
// instead of aborting on the first failure:
//
//   - a panic in fn is recovered and recorded as a typed *PanicError; the
//     worker goroutine that observed it is retired and replaced by a fresh
//     one, in case the panic left goroutine-associated state poisoned;
//   - an attempt that blows its ItemTimeout deadline is cut off via its
//     child context (fn must honor ctx for this to bound wall-clock);
//   - panicked and timed-out items are retried on a fresh attempt with
//     exponential backoff until MaxAttempts is exhausted; deterministic
//     failures (typed solver errors) are recorded immediately, because
//     rerunning the same solve yields the same rejection;
//   - cancellation of the parent context records a context error for every
//     item not yet completed and stops promptly.
//
// Sweep drivers use this to turn "one bad point kills the run" into
// "every point reports its own outcome".
func ForEachHardened(ctx context.Context, n int, fn func(ctx context.Context, i int) error, opts HardenedOptions) []error {
	errs := make([]error, n)
	if n <= 0 {
		return errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = EffectiveWorkers(n)
	}
	if workers > n {
		workers = n
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}

	type task struct {
		idx     int
		attempt int // 0-based
	}
	// Buffered to n: at most n tasks are outstanding at any moment (each
	// item has one live task until it completes), so enqueues never block.
	tasks := make(chan task, n)
	var (
		pending  atomic.Int64
		errMu    sync.Mutex
		wg       sync.WaitGroup
		closeOne sync.Once
	)
	pending.Store(int64(n))
	for i := 0; i < n; i++ {
		tasks <- task{idx: i}
	}

	// complete records an item's final outcome and closes the queue when
	// the last item settles.
	complete := func(idx int, err error) {
		if err != nil {
			metItemFailed.Inc()
			errMu.Lock()
			errs[idx] = err
			errMu.Unlock()
		}
		if pending.Add(-1) == 0 {
			closeOne.Do(func() { close(tasks) })
		}
	}

	// finish routes one attempt's outcome: success or deterministic
	// failure settles the item; a recoverable failure with budget left
	// re-enqueues it after backoff.
	finish := func(t task, err error) {
		if err == nil || !retryableError(ctx, err) || t.attempt+1 >= maxAttempts {
			complete(t.idx, err)
			return
		}
		metItemRetries.Inc()
		delay := backoff << t.attempt
		retry := task{idx: t.idx, attempt: t.attempt + 1}
		time.AfterFunc(delay, func() { tasks <- retry })
	}

	// runItem executes one attempt with panic recovery and the optional
	// per-attempt deadline. It reports whether fn panicked, so the calling
	// worker can retire itself. The item span carries worker attribution —
	// which goroutine incarnation ran which item on which attempt — so a
	// trace shows retries landing on fresh workers after a rejuvenation.
	runItem := func(t task, worker int64) (panicked bool) {
		sctx, sp := obs.StartSpan(ctx, "parallel.item")
		sp.Int("index", int64(t.idx)).Int("attempt", int64(t.attempt)).Int("worker", worker)
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				metWorkerPanics.Inc()
				perr := &PanicError{Index: t.idx, Value: r}
				sp.Err(perr)
				sp.End()
				finish(t, perr)
			}
		}()
		if err := ctx.Err(); err != nil {
			sp.Err(err)
			sp.End()
			complete(t.idx, err)
			return false
		}
		ictx := sctx
		if opts.ItemTimeout > 0 {
			var cancel context.CancelFunc
			ictx, cancel = context.WithTimeout(sctx, opts.ItemTimeout)
			defer cancel()
		}
		if faultinject.Enabled() {
			fiWorkerPanic.Panic()
			fiWorkerStall.Stall(ictx)
		}
		err := fn(ictx, t.idx)
		sp.Err(err)
		sp.End()
		finish(t, err)
		return false
	}

	// workerIDs hands every worker incarnation — initial or respawned — a
	// distinct id for span attribution.
	var workerIDs atomic.Int64
	var worker func()
	worker = func() {
		defer wg.Done()
		id := workerIDs.Add(1) - 1
		for t := range tasks {
			if runItem(t, id) {
				// This goroutine just observed a panic in user code.
				// Retire it and hand its slot to a fresh worker
				// (rejuvenation): the item bookkeeping is already done,
				// but any state associated with this goroutine is suspect.
				metWorkerRespawns.Inc()
				wg.Add(1)
				go worker()
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	return errs
}

// retryableError reports whether a failed attempt is worth a fresh try: a
// recovered panic or a per-attempt deadline blow while the parent context
// is still alive. Deterministic failures are not retried.
func retryableError(parent context.Context, err error) bool {
	if parent.Err() != nil {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}
