package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nvrel/internal/faultinject"
)

// TestForEachCtxDrainsBlockedItemsOnError is the regression test for the
// pool-shutdown fix: before ForEachCtx, an item blocked on ctx.Done()
// could hang the pool forever once another item failed, because nothing
// propagated the failure to in-flight work. Run under -race in CI.
func TestForEachCtxDrainsBlockedItemsOnError(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- ForEachCtx(context.Background(), 8, func(ctx context.Context, i int) error {
			if i == 0 {
				return boom
			}
			// Every other item blocks until the pool propagates the
			// cancellation triggered by item 0's failure.
			<-ctx.Done()
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("ForEachCtx = %v, want boom", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ForEachCtx hung: error did not cancel in-flight items")
	}
}

// TestForEachCtxParentCancellation: a dead parent context stops the pool
// and surfaces the context error even when no item fails.
func TestForEachCtxParentCancellation(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 64, func(ctx context.Context, i int) error {
		if ran.Add(1) == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx = %v, want context.Canceled", err)
	}
	if ran.Load() >= 64 {
		t.Fatal("cancellation did not stop the pool early")
	}
}

// TestForEachCtxCompletesClean: no errors, every index runs exactly once.
func TestForEachCtxCompletesClean(t *testing.T) {
	seen := make([]atomic.Int64, 100)
	err := ForEachCtx(context.Background(), 100, func(ctx context.Context, i int) error {
		seen[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if v := seen[i].Load(); v != 1 {
			t.Fatalf("index %d ran %d times", i, v)
		}
	}
}

// TestHardenedRecoversPanicWithRetry: a panic on the first attempt is
// retried on a fresh worker and the item succeeds — the sweep result is
// bit-identical to a clean run.
func TestHardenedRecoversPanicWithRetry(t *testing.T) {
	var calls atomic.Int64
	errs := ForEachHardened(context.Background(), 4, func(ctx context.Context, i int) error {
		if i == 2 && calls.Add(1) == 1 {
			panic("transient corruption")
		}
		return nil
	}, HardenedOptions{Workers: 2})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
}

// TestHardenedExhaustsBudgetToTypedError: an item that panics on every
// attempt settles as a *PanicError after MaxAttempts, without aborting the
// other items.
func TestHardenedExhaustsBudgetToTypedError(t *testing.T) {
	var okItems atomic.Int64
	errs := ForEachHardened(context.Background(), 6, func(ctx context.Context, i int) error {
		if i == 3 {
			panic("persistent corruption")
		}
		okItems.Add(1)
		return nil
	}, HardenedOptions{Workers: 3, MaxAttempts: 3})
	var pe *PanicError
	if !errors.As(errs[3], &pe) || pe.Index != 3 {
		t.Fatalf("errs[3] = %v, want *PanicError for index 3", errs[3])
	}
	for i, err := range errs {
		if i != 3 && err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if okItems.Load() != 5 {
		t.Fatalf("%d other items completed, want 5", okItems.Load())
	}
}

// TestHardenedDoesNotRetryDeterministicErrors: a typed solver-style error
// is recorded immediately — rerunning the same rejection wastes budget.
func TestHardenedDoesNotRetryDeterministicErrors(t *testing.T) {
	var calls atomic.Int64
	bad := fmt.Errorf("typed rejection")
	errs := ForEachHardened(context.Background(), 1, func(ctx context.Context, i int) error {
		calls.Add(1)
		return bad
	}, HardenedOptions{MaxAttempts: 4})
	if !errors.Is(errs[0], bad) {
		t.Fatalf("errs[0] = %v", errs[0])
	}
	if calls.Load() != 1 {
		t.Fatalf("deterministic error retried %d times", calls.Load()-1)
	}
}

// TestHardenedItemTimeout: an attempt that blows its per-attempt deadline
// is retried; with the stall gone it succeeds.
func TestHardenedItemTimeout(t *testing.T) {
	var calls atomic.Int64
	errs := ForEachHardened(context.Background(), 1, func(ctx context.Context, i int) error {
		if calls.Add(1) == 1 {
			<-ctx.Done() // simulate a solver honoring its deadline
			return ctx.Err()
		}
		return nil
	}, HardenedOptions{ItemTimeout: 20 * time.Millisecond, MaxAttempts: 2})
	if errs[0] != nil {
		t.Fatalf("timed-out item not recovered on retry: %v", errs[0])
	}
	if calls.Load() != 2 {
		t.Fatalf("item ran %d times, want 2", calls.Load())
	}
}

// TestHardenedParentCancellation: a dead parent records a context error
// for unfinished items instead of hanging or retrying.
func TestHardenedParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs := ForEachHardened(ctx, 8, func(ctx context.Context, i int) error {
		return nil
	}, HardenedOptions{Workers: 2})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("item %d = %v, want context.Canceled", i, err)
		}
	}
}

// TestHardenedInjectedWorkerPanic: the chaos site inside the pool is
// recovered, the worker respawned, and the run completes with every item
// green (the injected fault fires once and the retry lands clean).
func TestHardenedInjectedWorkerPanic(t *testing.T) {
	faultinject.Reset()
	if err := faultinject.Arm(faultinject.Fault{Site: "parallel.worker.panic"}, 3); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable()
	defer func() {
		faultinject.Disable()
		faultinject.Reset()
	}()
	errs := ForEachHardened(context.Background(), 8, func(ctx context.Context, i int) error {
		return nil
	}, HardenedOptions{Workers: 2})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if got := faultinject.SiteFor("parallel.worker.panic").Fired(); got != 1 {
		t.Fatalf("site fired %d times, want 1", got)
	}
}
