package parallel

import (
	"sync/atomic"
	"time"

	"nvrel/internal/obs"
)

// Metric handles for the worker pool. All updates are no-ops while obs is
// disabled (the default); ForEachN only takes the instrumented path — and
// only then allocates the timing closure — when obs.Enabled() reports true,
// so the hot path stays allocation-free.
var (
	metPoolRuns  = obs.CounterFor("parallel.pool.runs")
	metPoolTasks = obs.CounterFor("parallel.pool.tasks")

	// Busy is the summed wall-clock nanoseconds workers spent inside fn;
	// wall is the pool's own elapsed nanoseconds; idle = wall*workers -
	// busy approximates queue wait plus scheduling overhead (the pool has
	// no explicit queue, so idle time is the closest observable proxy).
	metPoolBusyNS = obs.CounterFor("parallel.pool.busy_ns")
	metPoolWallNS = obs.CounterFor("parallel.pool.wall_ns")
	metPoolIdleNS = obs.CounterFor("parallel.pool.idle_ns")

	// Utilization of the most recent pool run: busy / (wall * workers),
	// in [0, 1]. Workers is the count the most recent run launched.
	metPoolUtilization = obs.GaugeFor("parallel.pool.utilization")
	metPoolWorkers     = obs.GaugeFor("parallel.pool.workers")

	// Hardened-pool resilience: panics recovered from user code, workers
	// retired and respawned after observing a panic (rejuvenation), item
	// retry attempts, and items whose retry budget ran out (their typed
	// error reached the caller's per-item slice).
	metWorkerPanics   = obs.CounterFor("parallel.worker.panic")
	metWorkerRespawns = obs.CounterFor("parallel.worker.respawn")
	metItemRetries    = obs.CounterFor("parallel.item.retry")
	metItemFailed     = obs.CounterFor("parallel.item.failed")
)

// nowNS is a monotonic-clock sample for busy-time accounting.
func nowNS() int64 { return int64(time.Since(poolEpoch)) }

var poolEpoch = time.Now()

// beginPoolRun records the start of one pool run and returns the closure
// that books its wall/busy/idle split once the run's summed busy
// nanoseconds are known. Shared by every instrumented pool front-end
// (ForEachN, ForEachRes).
func beginPoolRun(workers, n int) (finish func(busyNS int64)) {
	metPoolRuns.Inc()
	metPoolTasks.Add(int64(n))
	metPoolWorkers.Set(float64(workers))
	start := time.Now()
	return func(busyNS int64) {
		wall := int64(time.Since(start))
		if wall <= 0 {
			return
		}
		metPoolWallNS.Add(wall)
		metPoolBusyNS.Add(busyNS)
		if idle := wall*int64(workers) - busyNS; idle > 0 {
			metPoolIdleNS.Add(idle)
		}
		metPoolUtilization.Set(float64(busyNS) / (float64(wall) * float64(workers)))
	}
}

// forEachNObserved wraps the core pool loop with busy/wall accounting.
func forEachNObserved(workers, n int, fn func(i int) error) error {
	finish := beginPoolRun(workers, n)
	var busy atomic.Int64
	err := forEachN(workers, n, func(i int) error {
		t0 := nowNS()
		e := fn(i)
		busy.Add(nowNS() - t0)
		return e
	})
	finish(busy.Load())
	return err
}
