package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Network-level chaos: an http.RoundTripper that injects the failure
// shapes a flaky peer shows — dropped connections, slow answers,
// synthesized 5xx, and bodies that cut off mid-read — at four named
// sites driven by the same deterministic hit-window plan machinery as
// the solver sites. A serve daemon armed with a transport plan (the
// -chaos-plan flag) sees its OWN outbound proxy hops fail on a seeded
// schedule, which is how the fleet gates exercise retry, breakers, and
// degraded-mode fallback without real network trouble.
//
// Site semantics (all fire by hit count; one RoundTrip advances each
// consulted site's counter by one, in the order below):
//
//	transport.drop    — the request never reaches the peer: a transport
//	                    error before any bytes are written.
//	transport.delay   — the hop stalls for the armed DelayMS (bounded by
//	                    the request context) before proceeding.
//	transport.500     — the peer "answers" a synthesized 503 with no
//	                    body; the real request is never sent.
//	transport.partial — the real response's body is truncated after
//	                    partialBodyBytes and ends in io.ErrUnexpectedEOF.
const (
	SiteTransportDrop    = "transport.drop"
	SiteTransportDelay   = "transport.delay"
	SiteTransport500     = "transport.500"
	SiteTransportPartial = "transport.partial"
)

// partialBodyBytes is how much of a real body a fired transport.partial
// site lets through before the read error.
const partialBodyBytes = 64

// DroppedError is the transport error a fired transport.drop site
// returns, typed so tests and retry layers can tell injected drops from
// genuine dial failures.
type DroppedError struct{ URL string }

func (e *DroppedError) Error() string {
	return fmt.Sprintf("faultinject: dropped connection to %s", e.URL)
}

// Transport is the chaos RoundTripper. The zero value is not usable;
// build with NewTransport. When no site is armed (or injection is
// globally disabled) every request passes straight through to Base at
// the cost of four atomic loads.
type Transport struct {
	Base    http.RoundTripper
	drop    *Site
	delay   *Site
	fail    *Site
	partial *Site
}

// NewTransport wraps base (nil = http.DefaultTransport) with the four
// standard transport sites.
func NewTransport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		Base:    base,
		drop:    SiteFor(SiteTransportDrop),
		delay:   SiteFor(SiteTransportDelay),
		fail:    SiteFor(SiteTransport500),
		partial: SiteFor(SiteTransportPartial),
	}
}

// RoundTrip consults the chaos sites in a fixed order (drop, delay, 5xx,
// then the real hop with possible body truncation), so a plan's hit
// windows line up with request indices deterministically.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.drop.Fire() {
		// The request body (if any) is owed a close per the
		// RoundTripper contract even when the "connection" drops.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &DroppedError{URL: req.URL.String()}
	}
	t.delay.Stall(req.Context())
	if t.fail.Fire() {
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable (faultinject)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(strings.NewReader("faultinject: synthesized 503\n")),
			Request:    req,
		}, nil
	}
	resp, err := t.Base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.partial.Fire() {
		resp.Body = &truncatedBody{rc: resp.Body, remaining: partialBodyBytes}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// truncatedBody passes through the first remaining bytes, then fails the
// read with io.ErrUnexpectedEOF — the shape of a peer dying mid-response.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The real body was shorter than the truncation point; the cut
		// must still look like a mid-stream death, not a clean end.
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
