package faultinject

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"
)

// Fault is one entry of a chaos plan: which site fires, at which hook
// hits, and with what payload.
type Fault struct {
	// Site names the injection point (see the fi* var blocks of the
	// instrumented packages, or Sites() at runtime).
	Site string `json:"site"`
	// Mode is one of "fire" (default; also spelled "panic"/"stall" for
	// readability at those hooks), "nan", "inf", "negate", "scale".
	Mode string `json:"mode,omitempty"`
	// After is the 1-based hook-hit index of the first firing hit
	// (default 1: fire on the first hit).
	After int64 `json:"after,omitempty"`
	// Count is how many consecutive hits fire (default 1).
	Count int64 `json:"count,omitempty"`
	// Value is the ModeScale factor (default 1.75).
	Value float64 `json:"value,omitempty"`
	// DelayMS is the Stall duration in milliseconds (default 50).
	DelayMS int `json:"delay_ms,omitempty"`
}

// Plan is a seeded set of faults. Plans are applied one fault at a time
// by the chaos driver (Arm) so outcomes attribute cleanly, but nothing
// prevents arming several faults at once.
type Plan struct {
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// ParsePlan decodes and validates a JSON chaos plan.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultinject: plan is not valid JSON: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Validate checks every fault names a site and a known mode.
func (p *Plan) Validate() error {
	if len(p.Faults) == 0 {
		return fmt.Errorf("faultinject: plan has no faults")
	}
	for i, f := range p.Faults {
		if f.Site == "" {
			return fmt.Errorf("faultinject: fault %d has no site", i)
		}
		if _, ok := modeNames[f.Mode]; !ok {
			return fmt.Errorf("faultinject: fault %d (%s): unknown mode %q", i, f.Site, f.Mode)
		}
		if f.After < 0 || f.Count < 0 {
			return fmt.Errorf("faultinject: fault %d (%s): negative after/count", i, f.Site)
		}
	}
	return nil
}

// Arm configures and arms the fault's site. The site keeps its hit
// counters from zero, so call Reset between fault runs. Injection still
// requires the global Enable gate.
func Arm(f Fault, seed int64) error {
	if _, ok := modeNames[f.Mode]; !ok {
		return fmt.Errorf("faultinject: unknown mode %q for site %s", f.Mode, f.Site)
	}
	s := SiteFor(f.Site)
	s.armed.Store(false)
	s.mode = modeNames[f.Mode]
	s.after = f.After
	if s.after <= 0 {
		s.after = 1
	}
	s.count = f.Count
	if s.count <= 0 {
		s.count = 1
	}
	s.value = f.Value
	if s.value == 0 {
		s.value = 1.75
	}
	s.delay = time.Duration(f.DelayMS) * time.Millisecond
	h := fnv.New64a()
	h.Write([]byte(f.Site))
	s.seed = uint64(seed) ^ h.Sum64()
	s.hits.Store(0)
	s.fired.Store(0)
	s.armed.Store(true)
	return nil
}
