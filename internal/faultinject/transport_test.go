package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// withChaos enables injection for one test and restores the previous
// global state (sites disarmed, counters zeroed) afterwards.
func withChaos(t *testing.T) {
	t.Helper()
	Reset()
	prev := Enable()
	t.Cleanup(func() {
		Reset()
		if !prev {
			Disable()
		}
	})
}

func chaosClient(t *testing.T, backend http.Handler) (*http.Client, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	client := &http.Client{Transport: NewTransport(http.DefaultTransport)}
	return client, ts, &hits
}

func TestTransportDropFiresOnPlannedWindow(t *testing.T) {
	withChaos(t)
	client, ts, hits := chaosClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	// Requests 2 and 3 (1-based hit indices) are dropped.
	if err := Arm(Fault{Site: SiteTransportDrop, After: 2, Count: 2}, 7); err != nil {
		t.Fatal(err)
	}
	var outcomes []string
	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			var dropped *DroppedError
			if !errors.As(err, &dropped) {
				t.Fatalf("request %d: error %v, want *DroppedError", i, err)
			}
			outcomes = append(outcomes, "drop")
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		outcomes = append(outcomes, "ok")
	}
	want := "ok drop drop ok ok"
	if got := strings.Join(outcomes, " "); got != want {
		t.Errorf("outcome sequence %q, want %q (deterministic hit window)", got, want)
	}
	if hits.Load() != 3 {
		t.Errorf("backend saw %d requests, want 3 (drops never reach it)", hits.Load())
	}
	if SiteFor(SiteTransportDrop).Fired() != 2 {
		t.Errorf("drop site fired %d, want 2", SiteFor(SiteTransportDrop).Fired())
	}
}

func TestTransportSynthesized503(t *testing.T) {
	withChaos(t)
	client, ts, hits := chaosClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("real answer"))
	}))
	if err := Arm(Fault{Site: SiteTransport500, After: 1, Count: 1}, 7); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "faultinject") {
		t.Errorf("synthesized body %q does not name faultinject", body)
	}
	if hits.Load() != 0 {
		t.Errorf("backend saw %d requests, want 0 (503 synthesized before the hop)", hits.Load())
	}
	// The window has passed: the next request is real.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real answer" || hits.Load() != 1 {
		t.Errorf("post-window request: body %q backend hits %d, want real answer / 1", body, hits.Load())
	}
}

func TestTransportPartialBodyTruncates(t *testing.T) {
	withChaos(t)
	long := strings.Repeat("x", 4096)
	client, ts, _ := chaosClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(long))
	}))
	if err := Arm(Fault{Site: SiteTransportPartial, After: 1, Count: 1}, 7); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(body) == 0 || len(body) >= len(long) {
		t.Errorf("got %d body bytes, want a nonzero truncated prefix", len(body))
	}
	// A JSON decode of the truncated body must fail loudly, which is what
	// the serve proxy's buffered read turns into a retry.
	var v map[string]any
	if jerr := json.Unmarshal(body, &v); jerr == nil {
		t.Errorf("truncated body decoded cleanly; want a decode error")
	}
}

func TestTransportDelayHonorsContext(t *testing.T) {
	withChaos(t)
	client, ts, _ := chaosClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	// A 10s stall bounded by a 20ms context: the request must come back
	// promptly (the stall aborts at ctx done, then the hop proceeds and
	// fails on the dead context).
	if err := Arm(Fault{Site: SiteTransportDelay, Mode: "stall", DelayMS: 10_000, After: 1, Count: 1}, 7); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	t0 := time.Now()
	resp, err := client.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("delayed request took %v; the stall ignored the context", elapsed)
	}
	if SiteFor(SiteTransportDelay).Fired() != 1 {
		t.Errorf("delay site fired %d, want 1", SiteFor(SiteTransportDelay).Fired())
	}
}

func TestTransportDisabledPassesThrough(t *testing.T) {
	Reset()
	prev := Enabled()
	Disable()
	t.Cleanup(func() {
		if prev {
			Enable()
		}
	})
	client, ts, hits := chaosClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	// Armed but globally disabled: nothing fires.
	if err := Arm(Fault{Site: SiteTransportDrop, After: 1, Count: 100}, 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if hits.Load() != 3 {
		t.Errorf("backend saw %d requests, want 3", hits.Load())
	}
	if SiteFor(SiteTransportDrop).Fired() != 0 {
		t.Errorf("disabled transport fired %d times", SiteFor(SiteTransportDrop).Fired())
	}
}
