// Package faultinject is the deterministic, seedable chaos harness the
// solve stack is hardened against. Hot paths declare named fault sites
// (package-level handles resolved once via SiteFor, mirroring the obs
// metric registry) and call the site hooks at the points where a real
// fault could strike: a corrupted CSR stamp value, a Gauss-Seidel sweep
// that stops improving, a panic inside a kernel or a pool worker, a worker
// that stalls past its deadline.
//
// The design contract is identical to internal/obs: zero overhead when
// disabled. Injection is off by default, every hook short-circuits on one
// atomic load, and neither path allocates, so the instrumented kernels
// keep their AllocsPerRun == 0 guarantees (see
// BenchmarkFaultInjectDisabledNoAlloc).
//
// Faults fire by hit count, which makes runs deterministic for a fixed
// execution order: each armed site counts its hook invocations and fires
// on hits [After, After+Count). Which value a corruption hook rewrites is
// drawn from a per-site splitmix64 stream seeded from the plan seed and
// the site name, so the same plan perturbs the same slots every run.
package faultinject

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvrel/internal/obs"
)

// enabled gates every hook. It is process-global: the chaos driver flips
// it around each fault run, and benchmarks flip it to measure both paths.
var enabled atomic.Bool

// Enable turns fault injection on and reports the previous state.
func Enable() bool { return enabled.Swap(true) }

// Disable turns fault injection off and reports the previous state.
func Disable() bool { return enabled.Swap(false) }

// Enabled reports whether fault injection is on.
func Enabled() bool { return enabled.Load() }

// Fault-fire accounting, so chaos runs can assert a plan was exercised.
var metFired = obs.CounterFor("faultinject.fired")

// Mode selects what an armed site does when it fires. Sites consume the
// mode that matches their hook: Corrupt honors the value modes, Stall
// honors the delay, Fire and Panic only need the hit window.
type Mode uint8

// Fault modes.
const (
	// ModeFire makes Fire report true in the hit window (forced stalls,
	// early exits). It is the default and is valid at every hook.
	ModeFire Mode = iota
	// ModeNaN writes a NaN over the chosen slice slot.
	ModeNaN
	// ModeInf writes +Inf over the chosen slice slot.
	ModeInf
	// ModeNegate flips the sign of the chosen slice slot.
	ModeNegate
	// ModeScale multiplies the chosen slice slot by the fault value.
	ModeScale
)

var modeNames = map[string]Mode{
	"":       ModeFire,
	"fire":   ModeFire,
	"panic":  ModeFire,
	"stall":  ModeFire,
	"nan":    ModeNaN,
	"inf":    ModeInf,
	"negate": ModeNegate,
	"scale":  ModeScale,
}

// Site is a named fault-injection point. The zero value is inert; sites
// are interned by SiteFor and armed by Plan application. All hook methods
// are safe for concurrent use.
type Site struct {
	name  string
	armed atomic.Bool

	// Plan configuration, written only while the site is disarmed.
	mode  Mode
	after int64         // 1-based hit index of the first firing hit
	count int64         // number of firing hits
	value float64       // ModeScale factor
	delay time.Duration // Stall duration
	seed  uint64        // splitmix64 stream for slot selection

	hits  atomic.Int64
	fired atomic.Int64
}

// registry interns sites by name so hot packages can resolve handles in
// var blocks, exactly like obs metric handles.
var reg = struct {
	mu    sync.Mutex
	sites map[string]*Site
}{sites: make(map[string]*Site)}

// SiteFor returns the site registered under name, creating it on first
// use. Resolve handles once in a package var block and call the hooks
// from hot loops.
func SiteFor(name string) *Site {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	s, ok := reg.sites[name]
	if !ok {
		s = &Site{name: name}
		reg.sites[name] = s
	}
	return s
}

// Sites returns the sorted names of every registered site.
func Sites() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	names := make([]string, 0, len(reg.sites))
	for n := range reg.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Fired returns how many times the site has fired since the last Reset.
func (s *Site) Fired() int64 {
	if s == nil {
		return 0
	}
	return s.fired.Load()
}

// Hits returns how many times the site's hooks were reached while armed.
func (s *Site) Hits() int64 {
	if s == nil {
		return 0
	}
	return s.hits.Load()
}

// fire counts one hook hit on an armed site and reports whether this hit
// falls in the plan's firing window.
func (s *Site) fire() bool {
	if s == nil || !s.armed.Load() {
		return false
	}
	h := s.hits.Add(1)
	if h < s.after || h >= s.after+s.count {
		return false
	}
	s.fired.Add(1)
	metFired.Inc()
	return true
}

// Fire reports whether the site fires at this hit. The disabled path is
// one atomic load and never allocates.
func (s *Site) Fire() bool {
	if !enabled.Load() {
		return false
	}
	return s.fire()
}

// Corrupt rewrites one pseudo-randomly chosen slot of vals according to
// the armed mode when the site fires. The slot is drawn from the site's
// deterministic splitmix64 stream keyed on the hit index, so a plan
// corrupts the same slot on every run with the same call order.
func (s *Site) Corrupt(vals []float64) bool {
	if !enabled.Load() {
		return false
	}
	if !s.fire() || len(vals) == 0 {
		return false
	}
	i := int(splitmix64(s.seed^uint64(s.hits.Load())) % uint64(len(vals)))
	switch s.mode {
	case ModeNaN:
		vals[i] = math.NaN()
	case ModeInf:
		vals[i] = math.Inf(1)
	case ModeNegate:
		vals[i] = -vals[i]
	case ModeScale:
		vals[i] *= s.value
	default:
		vals[i] = math.NaN()
	}
	return true
}

// Injected is the panic payload of Site.Panic, so recovery layers can
// distinguish injected chaos from genuine solver bugs in reports.
type Injected struct{ Site string }

func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at site %s", e.Site)
}

// Panic panics with an *Injected payload when the site fires.
func (s *Site) Panic() {
	if !enabled.Load() {
		return
	}
	if s.fire() {
		panic(&Injected{Site: s.name})
	}
}

// Stall blocks for the armed delay — or until ctx is done, whichever
// comes first — when the site fires. A nil ctx stalls unconditionally.
func (s *Site) Stall(ctx context.Context) {
	if !enabled.Load() {
		return
	}
	if !s.fire() {
		return
	}
	d := s.delay
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Reset disarms every site and zeroes its hit and fire counters.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, s := range reg.sites {
		s.armed.Store(false)
		s.hits.Store(0)
		s.fired.Store(0)
	}
}

// splitmix64 is the SplitMix64 output function: a tiny, allocation-free
// mixer whose stream quality is ample for picking corruption slots.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
