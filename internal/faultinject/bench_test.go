package faultinject

import (
	"testing"
)

// BenchmarkFaultInjectDisabledNoAlloc guards the package contract: with
// injection disabled — the production default — every hook is one atomic
// load and zero allocations, so instrumented solver kernels keep their
// AllocsPerRun == 0 guarantees. Enforced by the check.sh no-alloc stage.
func BenchmarkFaultInjectDisabledNoAlloc(b *testing.B) {
	Reset()
	Disable()
	site := SiteFor("bench.disabled")
	vals := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if site.Fire() {
			b.Fatal("disabled site fired")
		}
		site.Corrupt(vals)
		site.Panic()
		site.Stall(nil)
	}
}

// BenchmarkFaultInjectArmedMissNoAlloc: an armed site outside its firing
// window (the common case while a chaos run waits for its hit) also stays
// allocation-free.
func BenchmarkFaultInjectArmedMissNoAlloc(b *testing.B) {
	Reset()
	if err := Arm(Fault{Site: "bench.miss", After: 1 << 60}, 1); err != nil {
		b.Fatal(err)
	}
	prev := Enable()
	defer func() {
		enabled.Store(prev)
		Reset()
	}()
	site := SiteFor("bench.miss")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if site.Fire() {
			b.Fatal("site fired outside its window")
		}
	}
}
