package faultinject

import (
	"context"
	"math"
	"testing"
	"time"
)

// withInjection arms one fault and enables injection for the test body.
func withInjection(t *testing.T, f Fault, seed int64) *Site {
	t.Helper()
	Reset()
	if err := Arm(f, seed); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	prev := Enable()
	t.Cleanup(func() {
		enabled.Store(prev)
		Reset()
	})
	return SiteFor(f.Site)
}

// TestDisabledSiteNeverFires: without the global gate, armed sites stay
// inert and count nothing.
func TestDisabledSiteNeverFires(t *testing.T) {
	Reset()
	if err := Arm(Fault{Site: "test.disabled"}, 1); err != nil {
		t.Fatal(err)
	}
	Disable()
	s := SiteFor("test.disabled")
	for i := 0; i < 10; i++ {
		if s.Fire() {
			t.Fatal("disabled site fired")
		}
	}
	if s.Hits() != 0 || s.Fired() != 0 {
		t.Fatalf("disabled site counted hits=%d fired=%d", s.Hits(), s.Fired())
	}
}

// TestFireWindow: a fault fires exactly on hits [After, After+Count).
func TestFireWindow(t *testing.T) {
	s := withInjection(t, Fault{Site: "test.window", After: 3, Count: 2}, 1)
	var fired []int
	for i := 1; i <= 8; i++ {
		if s.Fire() {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [3 4]", fired)
	}
	if s.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", s.Fired())
	}
}

// TestCorruptModesAreDeterministic: each value mode rewrites exactly one
// slot, and the same seed picks the same slot across runs.
func TestCorruptModesAreDeterministic(t *testing.T) {
	cases := []struct {
		mode  string
		check func(orig, got float64) bool
	}{
		{"nan", func(_, got float64) bool { return math.IsNaN(got) }},
		{"inf", func(_, got float64) bool { return math.IsInf(got, 1) }},
		{"negate", func(orig, got float64) bool { return got == -orig }},
		{"scale", func(orig, got float64) bool { return got == orig*1.75 }},
	}
	for _, tc := range cases {
		slot := -1
		for run := 0; run < 3; run++ {
			s := withInjection(t, Fault{Site: "test.corrupt." + tc.mode, Mode: tc.mode}, 42)
			vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
			if !s.Corrupt(vals) {
				t.Fatalf("%s: first Corrupt did not fire", tc.mode)
			}
			changed := -1
			for i, v := range vals {
				if v != float64(i+1) {
					if changed >= 0 {
						t.Fatalf("%s: more than one slot changed", tc.mode)
					}
					changed = i
				}
			}
			if changed < 0 {
				t.Fatalf("%s: no slot changed", tc.mode)
			}
			if !tc.check(float64(changed+1), vals[changed]) {
				t.Fatalf("%s: slot %d rewritten to %v", tc.mode, changed, vals[changed])
			}
			if slot >= 0 && changed != slot {
				t.Fatalf("%s: slot %d on rerun, %d first (not deterministic)", tc.mode, changed, slot)
			}
			slot = changed
		}
	}
}

// TestPanicPayload: injected panics carry the recognizable payload.
func TestPanicPayload(t *testing.T) {
	s := withInjection(t, Fault{Site: "test.panic"}, 1)
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok {
			t.Fatalf("recovered %T (%v), want *Injected", r, r)
		}
		if inj.Site != "test.panic" {
			t.Fatalf("payload site = %q", inj.Site)
		}
	}()
	s.Panic()
	t.Fatal("Panic did not panic")
}

// TestStallHonorsContext: a stall wakes up early when the context dies.
func TestStallHonorsContext(t *testing.T) {
	s := withInjection(t, Fault{Site: "test.stall", DelayMS: 5000}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Stall(ctx)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("stall ignored context: slept %v", d)
	}
}

// TestPlanParseAndValidate: JSON plans round-trip and bad plans are
// rejected.
func TestPlanParseAndValidate(t *testing.T) {
	p, err := ParsePlan([]byte(`{"seed": 7, "faults": [{"site": "a.b", "mode": "nan", "after": 2}]}`))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 7 || len(p.Faults) != 1 || p.Faults[0].After != 2 {
		t.Fatalf("plan = %+v", p)
	}
	for _, bad := range []string{
		`{"seed": 1}`,
		`{"faults": [{"site": ""}]}`,
		`{"faults": [{"site": "x", "mode": "melt"}]}`,
		`not json`,
	} {
		if _, err := ParsePlan([]byte(bad)); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

// TestResetDisarms: after Reset, armed sites stop firing and counters are
// zeroed.
func TestResetDisarms(t *testing.T) {
	s := withInjection(t, Fault{Site: "test.reset"}, 1)
	if !s.Fire() {
		t.Fatal("armed site did not fire")
	}
	Reset()
	if s.Fire() {
		t.Fatal("reset site fired")
	}
	if s.Hits() != 0 || s.Fired() != 0 {
		t.Fatalf("reset left hits=%d fired=%d", s.Hits(), s.Fired())
	}
}
