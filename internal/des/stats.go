package des

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nvrel/internal/parallel"
)

// Accumulator computes running mean and variance (Welford's algorithm).
// The zero value is an empty accumulator.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add records a sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.Variance() / float64(a.n))
}

// Summary is a replication estimate with a 95% confidence interval.
type Summary struct {
	Mean   float64
	StdErr float64
	Lo, Hi float64 // 95% confidence bounds
	N      int
}

// Contains reports whether v lies inside the confidence interval.
func (s Summary) Contains(v float64) bool { return v >= s.Lo && v <= s.Hi }

// String formats the summary for reports.
func (s Summary) String() string {
	return fmt.Sprintf("%.6f ± %.6f (95%% CI [%.6f, %.6f], n=%d)", s.Mean, 1.96*s.StdErr, s.Lo, s.Hi, s.N)
}

// Summarize converts an accumulator into a Summary using the normal
// approximation (adequate for the >=30 replications used here).
func (a *Accumulator) Summarize() Summary {
	se := a.StdErr()
	return Summary{
		Mean:   a.mean,
		StdErr: se,
		Lo:     a.mean - 1.96*se,
		Hi:     a.mean + 1.96*se,
		N:      a.n,
	}
}

// Replicate runs f for n independent replications in parallel and
// summarizes the results. Each replication receives its index and a forked
// RNG stream. All substreams are forked from the master serially before
// any replication starts and the samples are accumulated in replication
// order, so the summary is bit-identical at every worker count.
func Replicate(n int, seed uint64, f func(rep int, rng *RNG) (float64, error)) (Summary, error) {
	if n <= 0 {
		return Summary{}, errors.New("des: replication count must be positive")
	}
	master := NewRNG(seed)
	rngs := make([]*RNG, n)
	for rep := range rngs {
		rngs[rep] = master.Fork()
	}
	values := make([]float64, n)
	err := parallel.ForEach(n, func(rep int) error {
		v, err := f(rep, rngs[rep])
		if err != nil {
			return fmt.Errorf("replication %d: %w", rep, err)
		}
		values[rep] = v
		return nil
	})
	if err != nil {
		return Summary{}, err
	}
	var acc Accumulator
	for _, v := range values {
		acc.Add(v)
	}
	return acc.Summarize(), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples using the
// nearest-rank method on a sorted copy. It returns 0 for an empty sample.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// TimeWeighted accumulates a time-weighted average of a piecewise-constant
// signal, e.g. the fraction of time a module spends healthy.
type TimeWeighted struct {
	lastTime  float64
	lastValue float64
	area      float64
	started   bool
}

// Observe records that the signal holds value v from time t onward.
// Observations must be non-decreasing in t.
func (w *TimeWeighted) Observe(t, v float64) {
	if w.started {
		if t < w.lastTime {
			panic("des: time-weighted observation out of order")
		}
		w.area += (t - w.lastTime) * w.lastValue
	}
	w.lastTime, w.lastValue, w.started = t, v, true
}

// Average closes the window at time t and returns the time-weighted mean
// over [0, t]; the signal counts as zero before the first observation.
func (w *TimeWeighted) Average(t float64) float64 {
	if !w.started || t <= 0 {
		return 0
	}
	area := w.area + (t-w.lastTime)*w.lastValue
	return area / t
}
