package des

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(r.Float64())
	}
	if math.Abs(acc.Mean()-0.5) > 0.005 {
		t.Errorf("mean = %g, want ~0.5", acc.Mean())
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	const mean = 3.5
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(r.Exp(mean))
	}
	if math.Abs(acc.Mean()-mean) > 0.05 {
		t.Errorf("exp mean = %g, want ~%g", acc.Mean(), mean)
	}
}

func TestRNGExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 5)
	const samples = 100000
	for i := 0; i < samples; i++ {
		counts[r.Intn(5)]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)/samples-0.2) > 0.01 {
			t.Errorf("Intn(5) value %d frequency %g, want ~0.2", v, float64(c)/samples)
		}
	}
}

func TestRNGIntnPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(19)
	hits := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/samples-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency %g", float64(hits)/samples)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(23)
	f1, f2 := r.Fork(), r.Fork()
	equal := 0
	for i := 0; i < 64; i++ {
		if f1.Uint64() == f2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Errorf("forked streams collide on %d/64 draws", equal)
	}
}

func TestSimulationOrdering(t *testing.T) {
	var s Simulation
	var order []int
	mustSchedule(t, &s, 3, func() { order = append(order, 3) })
	mustSchedule(t, &s, 1, func() { order = append(order, 1) })
	mustSchedule(t, &s, 2, func() { order = append(order, 2) })
	s.RunUntil(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 10 {
		t.Errorf("Now = %g, want 10", s.Now())
	}
	if s.Fired() != 3 {
		t.Errorf("Fired = %d", s.Fired())
	}
}

func TestSimulationTieBreakFIFO(t *testing.T) {
	var s Simulation
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		mustSchedule(t, &s, 1, func() { order = append(order, i) })
	}
	s.RunUntil(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestSimulationCancel(t *testing.T) {
	var s Simulation
	fired := false
	h, err := s.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	if !h.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	s.RunUntil(5)
	if fired {
		t.Error("canceled event fired")
	}
	// Canceling twice or canceling a nil handle is harmless.
	h.Cancel()
	var nilHandle *Handle
	nilHandle.Cancel()
}

func TestSimulationHorizonStopsClock(t *testing.T) {
	var s Simulation
	fired := false
	mustSchedule(t, &s, 100, func() { fired = true })
	s.RunUntil(50)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Now() != 50 {
		t.Errorf("Now = %g, want 50", s.Now())
	}
	// The event is still pending and fires on a later run.
	s.RunUntil(150)
	if !fired {
		t.Error("pending event did not fire on resumed run")
	}
}

func TestSimulationEventAtExactHorizonFires(t *testing.T) {
	var s Simulation
	fired := false
	mustSchedule(t, &s, 10, func() { fired = true })
	s.RunUntil(10)
	if !fired {
		t.Error("event at exact horizon did not fire")
	}
}

func TestSimulationNestedScheduling(t *testing.T) {
	var s Simulation
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			if _, err := s.Schedule(1, tick); err != nil {
				t.Errorf("nested schedule: %v", err)
			}
		}
	}
	mustSchedule(t, &s, 1, tick)
	s.RunUntil(100)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != 100 {
		t.Errorf("Now = %g", s.Now())
	}
}

func TestScheduleValidation(t *testing.T) {
	var s Simulation
	if _, err := s.Schedule(-1, func() {}); !errors.Is(err, ErrTimeTravel) {
		t.Errorf("err = %v, want ErrTimeTravel", err)
	}
	if _, err := s.Schedule(math.NaN(), func() {}); !errors.Is(err, ErrTimeTravel) {
		t.Errorf("err = %v, want ErrTimeTravel", err)
	}
	if _, err := s.Schedule(1, nil); err == nil {
		t.Error("nil action accepted")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var s Simulation
	if s.Step() {
		t.Error("Step on empty simulation returned true")
	}
	h, _ := s.Schedule(1, func() {})
	h.Cancel()
	if s.Step() {
		t.Error("Step with only canceled events returned true")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after draining canceled", s.Pending())
	}
}

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	// Population variance of this classic dataset is 4; unbiased sample
	// variance is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %g, want %g", a.Variance(), 32.0/7)
	}
}

func TestAccumulatorDegenerate(t *testing.T) {
	var a Accumulator
	if a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should report zero spread")
	}
	a.Add(3)
	if a.Variance() != 0 {
		t.Error("single sample should report zero variance")
	}
}

func TestSummaryContainsAndString(t *testing.T) {
	var a Accumulator
	for i := 0; i < 100; i++ {
		a.Add(float64(i % 10))
	}
	s := a.Summarize()
	if !s.Contains(s.Mean) {
		t.Error("CI does not contain its own mean")
	}
	if s.Contains(s.Hi + 1) {
		t.Error("CI contains value above Hi")
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestReplicate(t *testing.T) {
	// Each replication returns the mean of exponential samples; the
	// replication CI must cover the true mean.
	sum, err := Replicate(40, 99, func(rep int, rng *RNG) (float64, error) {
		var acc Accumulator
		for i := 0; i < 2000; i++ {
			acc.Add(rng.Exp(2))
		}
		return acc.Mean(), nil
	})
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	if !sum.Contains(2) {
		t.Errorf("CI %v does not contain true mean 2", sum)
	}
	if sum.N != 40 {
		t.Errorf("N = %d", sum.N)
	}
}

func TestReplicateErrors(t *testing.T) {
	if _, err := Replicate(0, 1, func(int, *RNG) (float64, error) { return 0, nil }); err == nil {
		t.Error("zero replications accepted")
	}
	wantErr := errors.New("boom")
	if _, err := Replicate(3, 1, func(rep int, _ *RNG) (float64, error) {
		if rep == 1 {
			return 0, wantErr
		}
		return 1, nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestReplicateDeterministicAcrossRuns(t *testing.T) {
	run := func() Summary {
		s, err := Replicate(5, 1234, func(rep int, rng *RNG) (float64, error) {
			return rng.Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different summaries: %v vs %v", a, b)
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 1)
	w.Observe(4, 0)
	w.Observe(6, 1)
	// [0,4): 1, [4,6): 0, [6,10): 1 -> (4 + 0 + 4)/10 = 0.8
	if got := w.Average(10); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Average = %g, want 0.8", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.Average(10) != 0 {
		t.Error("empty window should average 0")
	}
}

func TestTimeWeightedOutOfOrderPanics(t *testing.T) {
	var w TimeWeighted
	w.Observe(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.Observe(4, 0)
}

// Property: simulation clock is monotone regardless of scheduling pattern.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		var s Simulation
		last := -1.0
		ok := true
		for _, d := range delays {
			delay := float64(d) / 16
			if _, err := s.Schedule(delay, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			}); err != nil {
				return false
			}
		}
		s.RunUntil(math.Inf(1))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mustSchedule(t *testing.T, s *Simulation, delay float64, action Action) *Handle {
	t.Helper()
	h, err := s.Schedule(delay, action)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	return h
}

func TestQuantile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.9, 5}, {1, 5},
		{-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(samples, tt.q); got != tt.want {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty sample should return 0")
	}
	// The input slice must not be reordered.
	if samples[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}
