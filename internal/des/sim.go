package des

import (
	"container/heap"
	"errors"
	"math"
)

// ErrTimeTravel is returned when an event is scheduled in the past.
var ErrTimeTravel = errors.New("des: cannot schedule event in the past")

// Action is invoked when its event fires.
type Action func()

// Handle refers to a scheduled event and allows cancellation.
type Handle struct {
	time     float64
	seq      uint64
	action   Action
	canceled bool
	index    int // heap position, -1 once popped
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h *Handle) Cancel() {
	if h != nil {
		h.canceled = true
	}
}

// Canceled reports whether the event was canceled.
func (h *Handle) Canceled() bool { return h != nil && h.canceled }

// Time returns the scheduled firing time.
func (h *Handle) Time() float64 { return h.time }

// Simulation is a future-event-list simulator. The zero value is ready to
// use and starts at time zero.
type Simulation struct {
	now    float64
	events eventHeap
	seq    uint64
	fired  uint64
}

// Now returns the current simulation time.
func (s *Simulation) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulation) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled (possibly canceled) events.
func (s *Simulation) Pending() int { return s.events.Len() }

// Schedule enqueues action to fire after delay. Ties are broken in
// scheduling order, which keeps runs deterministic.
func (s *Simulation) Schedule(delay float64, action Action) (*Handle, error) {
	if delay < 0 || math.IsNaN(delay) {
		return nil, ErrTimeTravel
	}
	if action == nil {
		return nil, errors.New("des: nil action")
	}
	h := &Handle{time: s.now + delay, seq: s.seq, action: action}
	s.seq++
	heap.Push(&s.events, h)
	return h, nil
}

// Step fires the next pending event, returning false when none remain.
func (s *Simulation) Step() bool {
	for s.events.Len() > 0 {
		h := heap.Pop(&s.events).(*Handle)
		if h.canceled {
			continue
		}
		s.now = h.time
		s.fired++
		metEvents.Inc()
		h.action()
		return true
	}
	return false
}

// RunUntil fires events in order until the clock reaches horizon or no
// events remain. Events scheduled exactly at the horizon still fire; the
// clock never exceeds the horizon.
func (s *Simulation) RunUntil(horizon float64) {
	for s.events.Len() > 0 {
		next := s.peek()
		if next == nil {
			return
		}
		if next.time > horizon {
			s.now = horizon
			return
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// peek returns the next non-canceled event without firing it.
func (s *Simulation) peek() *Handle {
	for s.events.Len() > 0 {
		h := s.events[0]
		if !h.canceled {
			return h
		}
		heap.Pop(&s.events)
	}
	return nil
}

// eventHeap orders events by (time, seq).
type eventHeap []*Handle

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Handle)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
