package des

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(3)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var s Simulation
	action := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(1, action); err != nil {
			b.Fatal(err)
		}
		s.Step()
	}
}

func BenchmarkEventHeapChurn(b *testing.B) {
	// 1000 pending events with continuous schedule/fire churn: the
	// steady-state load of the perception simulator.
	var s Simulation
	r := NewRNG(7)
	var reschedule func()
	reschedule = func() {
		if _, err := s.Schedule(r.Exp(1), reschedule); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		reschedule()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkAccumulator(b *testing.B) {
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Add(float64(i % 100))
	}
}
