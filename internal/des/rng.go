// Package des is a small discrete-event simulation engine: a future-event
// list with cancellation, a fast deterministic random number generator, and
// replication statistics. It powers the event-level perception-system
// simulator (package percept) used to cross-validate the analytic DSPN
// solvers.
package des

import "math"

// RNG is a deterministic pseudo-random generator (xoshiro256** seeded via
// splitmix64). It is not cryptographically secure; it exists so simulation
// runs are reproducible from a seed and allocation-free.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponential sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("des: exponential mean must be positive")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Intn returns a uniform sample in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn bound must be positive")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator, for per-replication streams.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
