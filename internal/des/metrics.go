package des

import "nvrel/internal/obs"

// Metric handles for the event simulator. All updates are no-ops while obs
// is disabled (the default).
var (
	// Events fired (canceled events popped off the heap do not count).
	metEvents = obs.CounterFor("des.events")
)
