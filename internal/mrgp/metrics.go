package mrgp

import "nvrel/internal/obs"

// Metric handles for the Markov-regenerative solvers. All updates are
// no-ops while obs is disabled (the default).
var (
	// Solve routing: dense embedded-chain solves, matrix-free sparse
	// solves, general (state-dependent clock) solves, and sparse solves
	// whose power iteration failed to converge and fell back to dense.
	metSolveDense    = obs.CounterFor("mrgp.solve.dense")
	metSolveSparse   = obs.CounterFor("mrgp.solve.sparse")
	metSolveGeneral  = obs.CounterFor("mrgp.solve.general")
	metSolveFallback = obs.CounterFor("mrgp.solve.fallback_dense")

	// Routing vs recovery: routed_* counts which kernel family the size
	// routing picked; recovered_dense counts solves where the dense path
	// succeeded AFTER the sparse path failed. fallback_dense above counts
	// the fallback attempts themselves (recovered or not), so
	// fallback_dense - recovered_dense is the number of chains that
	// exhausted both paths.
	metRoutedDense    = obs.CounterFor("mrgp.solve.routed_dense")
	metRoutedSparse   = obs.CounterFor("mrgp.solve.routed_sparse")
	metRecoveredDense = obs.CounterFor("mrgp.solve.recovered_dense")

	// Sparse embedded-chain power iteration: cycles run across solves and
	// the final L1 residual of the most recent solve.
	metPowerCycles   = obs.CounterFor("mrgp.power.cycles")
	metPowerResidual = obs.GaugeFor("mrgp.power.final_residual")
)
