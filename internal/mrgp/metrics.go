package mrgp

import "nvrel/internal/obs"

// Metric handles for the Markov-regenerative solvers. All updates are
// no-ops while obs is disabled (the default).
var (
	// Solve routing: dense embedded-chain solves, matrix-free sparse
	// solves, general (state-dependent clock) solves, and sparse solves
	// whose power iteration failed to converge and fell back to dense.
	metSolveDense    = obs.CounterFor("mrgp.solve.dense")
	metSolveSparse   = obs.CounterFor("mrgp.solve.sparse")
	metSolveGeneral  = obs.CounterFor("mrgp.solve.general")
	metSolveFallback = obs.CounterFor("mrgp.solve.fallback_dense")

	// Sparse embedded-chain power iteration: cycles run across solves and
	// the final L1 residual of the most recent solve.
	metPowerCycles   = obs.CounterFor("mrgp.power.cycles")
	metPowerResidual = obs.GaugeFor("mrgp.power.final_residual")
)
