package mrgp

import (
	"math"
	"testing"

	"nvrel/internal/linalg"
)

func TestPropagatorDistribution(t *testing.T) {
	const (
		lambda = 0.5
		tau    = 2.0
	)
	n := buildRejuvenationToy(t, lambda, tau)
	g := explore(t, n)
	prop, err := NewPropagator(g)
	if err != nil {
		t.Fatalf("NewPropagator: %v", err)
	}
	if prop.Delay() != tau {
		t.Errorf("Delay = %g", prop.Delay())
	}
	freshIdx, ok := g.StateIndex(n.InitialMarking())
	if !ok {
		t.Fatal("fresh state missing")
	}
	init := make([]float64, g.NumStates())
	init[freshIdx] = 1

	// Within the first cycle the component simply decays:
	// P(fresh at t) = e^{-lambda t} for t < tau.
	for _, tt := range []float64{0, 0.5, 1.5} {
		pi, err := prop.Distribution(init, tt)
		if err != nil {
			t.Fatalf("Distribution(%g): %v", tt, err)
		}
		want := math.Exp(-lambda * tt)
		if math.Abs(pi[freshIdx]-want) > 1e-9 {
			t.Errorf("P(fresh at %g) = %.9f, want %.9f", tt, pi[freshIdx], want)
		}
	}
	// Immediately after a tick the component is fresh again, then decays:
	// P(fresh at tau + s) = e^{-lambda s}.
	pi, err := prop.Distribution(init, tau+0.5)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Exp(-lambda * 0.5); math.Abs(pi[freshIdx]-want) > 1e-9 {
		t.Errorf("P(fresh at tau+0.5) = %.9f, want %.9f", pi[freshIdx], want)
	}
}

func TestPropagatorAccumulatedReward(t *testing.T) {
	const (
		lambda = 0.5
		tau    = 2.0
	)
	n := buildRejuvenationToy(t, lambda, tau)
	g := explore(t, n)
	prop, err := NewPropagator(g)
	if err != nil {
		t.Fatal(err)
	}
	freshIdx, _ := g.StateIndex(n.InitialMarking())
	init := make([]float64, g.NumStates())
	init[freshIdx] = 1
	reward := make([]float64, g.NumStates())
	reward[freshIdx] = 1

	// Over k full cycles: k * Integral_0^tau e^{-lambda t} dt.
	perCycle := (1 - math.Exp(-lambda*tau)) / lambda
	for _, cycles := range []int{1, 3} {
		got, err := prop.AccumulatedReward(init, reward, float64(cycles)*tau)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(cycles) * perCycle
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("accumulated over %d cycles = %.9f, want %.9f", cycles, got, want)
		}
	}
	// Constant reward of one accumulates exactly t.
	ones := make([]float64, g.NumStates())
	for i := range ones {
		ones[i] = 1
	}
	got, err := prop.AccumulatedReward(init, ones, 5.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.5) > 1e-8 {
		t.Errorf("constant reward accumulated %.9f, want 5.5", got)
	}
}

func TestPropagatorValidation(t *testing.T) {
	n := buildRejuvenationToy(t, 0.5, 2)
	g := explore(t, n)
	prop, err := NewPropagator(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prop.Distribution([]float64{1}, 1); err == nil {
		t.Error("wrong-length distribution accepted")
	}
	if _, err := prop.Distribution(make([]float64, g.NumStates()), -1); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := prop.AccumulatedReward([]float64{1}, []float64{1}, 1); err == nil {
		t.Error("wrong-length vectors accepted")
	}
	// Graphs without deterministic transitions are rejected.
	plain := buildMM1KForGeneral(t)
	pg := explore(t, plain)
	if _, err := NewPropagator(pg); err == nil {
		t.Error("pure CTMC accepted")
	}
}

func TestPropagatorDistributionStaysStochastic(t *testing.T) {
	n := buildRejuvenationToy(t, 1.0/1523, 600)
	g := explore(t, n)
	prop, err := NewPropagator(g)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]float64, g.NumStates())
	idx, _ := g.StateIndex(n.InitialMarking())
	init[idx] = 1
	for _, tt := range []float64{0, 100, 600, 599.999, 600.001, 12345} {
		pi, err := prop.Distribution(init, tt)
		if err != nil {
			t.Fatalf("t=%g: %v", tt, err)
		}
		if s := linalg.Sum(pi); math.Abs(s-1) > 1e-9 {
			t.Errorf("t=%g: distribution sums to %g", tt, s)
		}
	}
}
