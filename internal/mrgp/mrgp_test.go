package mrgp

import (
	"errors"
	"math"
	"testing"

	"nvrel/internal/linalg"
	"nvrel/internal/petri"
)

// buildRejuvenationToy builds the classic single-component rejuvenation
// model: the component degrades at rate lambda; a clock fires every tau and
// restores it to fresh. P(fresh) = (1 - e^{-lambda tau}) / (lambda tau).
func buildRejuvenationToy(t *testing.T, lambda, tau float64) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("rejuvenation-toy")
	fresh := b.AddPlace("fresh", 1)
	deg := b.AddPlace("deg", 0)
	clock := b.AddPlace("clock", 1)
	restore := b.AddPlace("restore", 0)
	b.AddTransition(petri.Spec{
		Name: "degrade", Kind: petri.Exponential, Rate: lambda,
		Inputs:  []petri.Arc{{Place: fresh}},
		Outputs: []petri.Arc{{Place: deg}},
	})
	b.AddTransition(petri.Spec{
		Name: "tick", Kind: petri.Deterministic, Delay: tau,
		Inputs:  []petri.Arc{{Place: clock}},
		Outputs: []petri.Arc{{Place: restore}},
	})
	b.AddTransition(petri.Spec{
		Name: "restoreDegraded", Kind: petri.Immediate, Rate: 1,
		Inputs:  []petri.Arc{{Place: restore}, {Place: deg}},
		Outputs: []petri.Arc{{Place: fresh}, {Place: clock}},
	})
	b.AddTransition(petri.Spec{
		Name: "restoreFresh", Kind: petri.Immediate, Rate: 1,
		Inputs:  []petri.Arc{{Place: restore}, {Place: fresh}},
		Outputs: []petri.Arc{{Place: fresh}, {Place: clock}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func explore(t *testing.T, n *petri.Net) *petri.Graph {
	t.Helper()
	g, err := petri.Explore(n, petri.ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return g
}

func TestSolveRejuvenationToy(t *testing.T) {
	tests := []struct {
		name        string
		lambda, tau float64
	}{
		{name: "frequent clock", lambda: 0.1, tau: 1},
		{name: "balanced", lambda: 1, tau: 1},
		{name: "rare clock", lambda: 2, tau: 10},
		{name: "paper-like scales", lambda: 1.0 / 1523, tau: 600},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := buildRejuvenationToy(t, tt.lambda, tt.tau)
			g := explore(t, n)
			sol, err := Solve(g)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if sol.Delay != tt.tau {
				t.Errorf("Delay = %g, want %g", sol.Delay, tt.tau)
			}
			freshRef := petri.PlaceRef(0)
			var pFresh float64
			for s, m := range g.Markings {
				if m[freshRef] == 1 {
					pFresh += sol.Pi[s]
				}
			}
			want := (1 - math.Exp(-tt.lambda*tt.tau)) / (tt.lambda * tt.tau)
			if math.Abs(pFresh-want) > 1e-9 {
				t.Errorf("P(fresh) = %.12g, want %.12g", pFresh, want)
			}
			// Embedded chain starts every cycle fresh.
			for s, m := range g.Markings {
				wantEmb := 0.0
				if m[freshRef] == 1 {
					wantEmb = 1
				}
				if math.Abs(sol.Embedded[s]-wantEmb) > 1e-9 {
					t.Errorf("Embedded[%d] = %g, want %g", s, sol.Embedded[s], wantEmb)
				}
			}
		})
	}
}

// buildIdentityClock attaches a no-op deterministic clock to an M/M/1/K
// queue. The clock firing changes nothing, so the DSPN steady state must
// coincide with the plain CTMC steady state.
func buildIdentityClock(t *testing.T, k int, lam, mu, tau float64) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("identity-clock")
	queue := b.AddPlace("queue", 0)
	free := b.AddPlace("free", k)
	clock := b.AddPlace("clock", 1)
	b.AddTransition(petri.Spec{
		Name: "arrive", Kind: petri.Exponential, Rate: lam,
		Inputs:  []petri.Arc{{Place: free}},
		Outputs: []petri.Arc{{Place: queue}},
	})
	b.AddTransition(petri.Spec{
		Name: "serve", Kind: petri.Exponential, Rate: mu,
		Inputs:  []petri.Arc{{Place: queue}},
		Outputs: []petri.Arc{{Place: free}},
	})
	b.AddTransition(petri.Spec{
		Name: "noop", Kind: petri.Deterministic, Delay: tau,
		Inputs:  []petri.Arc{{Place: clock}},
		Outputs: []petri.Arc{{Place: clock}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestSolveIdentityClockMatchesCTMC(t *testing.T) {
	const (
		k   = 4
		lam = 2.0
		mu  = 3.0
		tau = 1.7
	)
	n := buildIdentityClock(t, k, lam, mu, tau)
	g := explore(t, n)
	sol, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Reference: the same queue without the clock.
	rho := lam / mu
	var norm float64
	for i := 0; i <= k; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for s, m := range g.Markings {
		want := math.Pow(rho, float64(m[0])) / norm
		if math.Abs(sol.Pi[s]-want) > 1e-9 {
			t.Errorf("pi(queue=%d) = %g, want %g", m[0], sol.Pi[s], want)
		}
	}
}

func TestSolvePiIsDistribution(t *testing.T) {
	n := buildRejuvenationToy(t, 0.7, 2.3)
	g := explore(t, n)
	sol, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s := linalg.Sum(sol.Pi); math.Abs(s-1) > 1e-12 {
		t.Errorf("sum(Pi) = %g", s)
	}
	for i, p := range sol.Pi {
		if p < 0 {
			t.Errorf("Pi[%d] = %g < 0", i, p)
		}
	}
}

func TestExpectedReward(t *testing.T) {
	const (
		lambda = 1.0
		tau    = 1.0
	)
	n := buildRejuvenationToy(t, lambda, tau)
	g := explore(t, n)
	got, err := ExpectedReward(g, func(m petri.Marking) float64 {
		return float64(m[0]) // 1 while fresh
	})
	if err != nil {
		t.Fatalf("ExpectedReward: %v", err)
	}
	want := (1 - math.Exp(-lambda*tau)) / (lambda * tau)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("reward = %g, want %g", got, want)
	}
}

func TestSolveRejectsPureCTMC(t *testing.T) {
	b := petri.NewBuilder("pure")
	p := b.AddPlace("p", 1)
	q := b.AddPlace("q", 0)
	b.AddTransition(petri.Spec{
		Name: "pq", Kind: petri.Exponential, Rate: 1,
		Inputs:  []petri.Arc{{Place: p}},
		Outputs: []petri.Arc{{Place: q}},
	})
	b.AddTransition(petri.Spec{
		Name: "qp", Kind: petri.Exponential, Rate: 1,
		Inputs:  []petri.Arc{{Place: q}},
		Outputs: []petri.Arc{{Place: p}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := explore(t, n)
	if _, err := Solve(g); !errors.Is(err, ErrNoDeterministic) {
		t.Errorf("err = %v, want ErrNoDeterministic", err)
	}
}

func TestSolveRejectsPartiallyEnabledClock(t *testing.T) {
	// The deterministic transition is gated behind a place that an
	// exponential transition can empty, so some tangible states lack it.
	b := petri.NewBuilder("gated")
	gate := b.AddPlace("gate", 1)
	other := b.AddPlace("other", 0)
	b.AddTransition(petri.Spec{
		Name: "det", Kind: petri.Deterministic, Delay: 5,
		Inputs:  []petri.Arc{{Place: gate}},
		Outputs: []petri.Arc{{Place: gate}},
	})
	b.AddTransition(petri.Spec{
		Name: "close", Kind: petri.Exponential, Rate: 1,
		Inputs:  []petri.Arc{{Place: gate}},
		Outputs: []petri.Arc{{Place: other}},
	})
	b.AddTransition(petri.Spec{
		Name: "open", Kind: petri.Exponential, Rate: 1,
		Inputs:  []petri.Arc{{Place: other}},
		Outputs: []petri.Arc{{Place: gate}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := explore(t, n)
	if _, err := Solve(g); !errors.Is(err, ErrClockNotAlwaysEnabled) {
		t.Errorf("err = %v, want ErrClockNotAlwaysEnabled", err)
	}
}

func TestSolveRejectsMixedDelays(t *testing.T) {
	// Two deterministic transitions with different delays enabled in
	// different tangible states (never together).
	b := petri.NewBuilder("mixed")
	a := b.AddPlace("a", 1)
	c := b.AddPlace("c", 0)
	b.AddTransition(petri.Spec{
		Name: "d1", Kind: petri.Deterministic, Delay: 1,
		Inputs:  []petri.Arc{{Place: a}},
		Outputs: []petri.Arc{{Place: c}},
	})
	b.AddTransition(petri.Spec{
		Name: "d2", Kind: petri.Deterministic, Delay: 2,
		Inputs:  []petri.Arc{{Place: c}},
		Outputs: []petri.Arc{{Place: a}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := explore(t, n)
	if _, err := Solve(g); !errors.Is(err, ErrMixedClocks) {
		t.Errorf("err = %v, want ErrMixedClocks", err)
	}
}

// Long-period clocks should converge to the subordinated CTMC's absorbing
// behaviour; the toy model's P(fresh) tends to 0 as tau grows, 1 as tau
// shrinks. Monotonicity is the property the rejuvenation-interval sweep in
// the paper relies on for this toy.
func TestSolveToyMonotoneInTau(t *testing.T) {
	const lambda = 0.5
	prev := math.Inf(1)
	for _, tau := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
		n := buildRejuvenationToy(t, lambda, tau)
		g := explore(t, n)
		sol, err := Solve(g)
		if err != nil {
			t.Fatalf("tau=%g: %v", tau, err)
		}
		var pFresh float64
		for s, m := range g.Markings {
			if m[0] == 1 {
				pFresh += sol.Pi[s]
			}
		}
		if pFresh >= prev {
			t.Errorf("P(fresh) not strictly decreasing at tau=%g: %g >= %g", tau, pFresh, prev)
		}
		prev = pFresh
	}
}
