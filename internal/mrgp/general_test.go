package mrgp

import (
	"errors"
	"math"
	"testing"

	"nvrel/internal/petri"
)

func TestSolveGeneralMatchesSolveOnToy(t *testing.T) {
	tests := []struct {
		name        string
		lambda, tau float64
	}{
		{name: "fast clock", lambda: 0.3, tau: 0.5},
		{name: "slow clock", lambda: 1.2, tau: 8},
		{name: "paper scales", lambda: 1.0 / 1523, tau: 600},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := buildRejuvenationToy(t, tt.lambda, tt.tau)
			g := explore(t, n)
			specialized, err := Solve(g)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			general, err := SolveGeneral(g)
			if err != nil {
				t.Fatalf("SolveGeneral: %v", err)
			}
			for s := range specialized.Pi {
				if math.Abs(specialized.Pi[s]-general.Pi[s]) > 1e-9 {
					t.Errorf("state %d: specialized %.12g vs general %.12g",
						s, specialized.Pi[s], general.Pi[s])
				}
			}
		})
	}
}

func TestSolveGeneralMatchesSolveOnIdentityClock(t *testing.T) {
	n := buildIdentityClock(t, 4, 2, 3, 1.7)
	g := explore(t, n)
	specialized, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	general, err := SolveGeneral(g)
	if err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	for s := range specialized.Pi {
		if math.Abs(specialized.Pi[s]-general.Pi[s]) > 1e-9 {
			t.Errorf("state %d: %.12g vs %.12g", s, specialized.Pi[s], general.Pi[s])
		}
	}
}

// buildGatedClock is the net Solve rejects: the deterministic transition
// is enabled only while a gate place is marked. The closed form for the
// gate-state probability is 1/2 at lambda = mu = 1 regardless of the
// delay (see the derivation in the test body).
func buildGatedClock(t *testing.T, lam, mu, tau float64) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("gated")
	gate := b.AddPlace("gate", 1)
	other := b.AddPlace("other", 0)
	b.AddTransition(petri.Spec{
		Name: "det", Kind: petri.Deterministic, Delay: tau,
		Inputs:  []petri.Arc{{Place: gate}},
		Outputs: []petri.Arc{{Place: gate}},
	})
	b.AddTransition(petri.Spec{
		Name: "close", Kind: petri.Exponential, Rate: lam,
		Inputs:  []petri.Arc{{Place: gate}},
		Outputs: []petri.Arc{{Place: other}},
	})
	b.AddTransition(petri.Spec{
		Name: "open", Kind: petri.Exponential, Rate: mu,
		Inputs:  []petri.Arc{{Place: other}},
		Outputs: []petri.Arc{{Place: gate}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestSolveGeneralGatedClock(t *testing.T) {
	// The deterministic firing is a no-op (gate -> gate), so the visible
	// process is simply the two-state CTMC: P(gate) = mu/(lam+mu). The
	// general solver must agree despite the internal timer bookkeeping.
	tests := []struct {
		lam, mu, tau float64
	}{
		{lam: 1, mu: 1, tau: 5},
		{lam: 0.25, mu: 2, tau: 1},
		{lam: 3, mu: 0.5, tau: 0.2},
	}
	for _, tt := range tests {
		n := buildGatedClock(t, tt.lam, tt.mu, tt.tau)
		g := explore(t, n)
		if _, err := Solve(g); !errors.Is(err, ErrClockNotAlwaysEnabled) {
			t.Fatalf("Solve should reject the gated clock, got %v", err)
		}
		sol, err := SolveGeneral(g)
		if err != nil {
			t.Fatalf("SolveGeneral: %v", err)
		}
		gateIdx, ok := g.StateIndex(n.InitialMarking())
		if !ok {
			t.Fatal("gate state missing")
		}
		want := tt.mu / (tt.lam + tt.mu)
		if math.Abs(sol.Pi[gateIdx]-want) > 1e-9 {
			t.Errorf("lam=%g mu=%g tau=%g: P(gate) = %.12g, want %.12g",
				tt.lam, tt.mu, tt.tau, sol.Pi[gateIdx], want)
		}
	}
}

// buildDeferredRestore models a repairable component where the
// deterministic transition matters: the component fails at rate lam; a
// deterministic inspection (delay tau, enabled only while failed) restores
// it. P(up) = E[up time]/(E[up]+tau) = (1/lam)/(1/lam + tau).
func buildDeferredRestore(t *testing.T, lam, tau float64) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("deferred-restore")
	up := b.AddPlace("up", 1)
	down := b.AddPlace("down", 0)
	b.AddTransition(petri.Spec{
		Name: "fail", Kind: petri.Exponential, Rate: lam,
		Inputs:  []petri.Arc{{Place: up}},
		Outputs: []petri.Arc{{Place: down}},
	})
	b.AddTransition(petri.Spec{
		Name: "inspectRestore", Kind: petri.Deterministic, Delay: tau,
		Inputs:  []petri.Arc{{Place: down}},
		Outputs: []petri.Arc{{Place: up}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestSolveGeneralDeferredRestore(t *testing.T) {
	for _, tt := range []struct{ lam, tau float64 }{
		{lam: 1, tau: 1},
		{lam: 0.1, tau: 4},
		{lam: 5, tau: 0.25},
	} {
		n := buildDeferredRestore(t, tt.lam, tt.tau)
		g := explore(t, n)
		sol, err := SolveGeneral(g)
		if err != nil {
			t.Fatalf("SolveGeneral: %v", err)
		}
		upIdx, ok := g.StateIndex(n.InitialMarking())
		if !ok {
			t.Fatal("up state missing")
		}
		want := (1 / tt.lam) / (1/tt.lam + tt.tau)
		if math.Abs(sol.Pi[upIdx]-want) > 1e-9 {
			t.Errorf("lam=%g tau=%g: P(up) = %.12g, want %.12g", tt.lam, tt.tau, sol.Pi[upIdx], want)
		}
	}
}

func TestSolveGeneralRejectsPureCTMC(t *testing.T) {
	n := buildMM1KForGeneral(t)
	g := explore(t, n)
	if _, err := SolveGeneral(g); !errors.Is(err, ErrNoDeterministic) {
		t.Errorf("err = %v, want ErrNoDeterministic", err)
	}
}

func buildMM1KForGeneral(t *testing.T) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("mm1k")
	q := b.AddPlace("q", 0)
	f := b.AddPlace("f", 2)
	b.AddTransition(petri.Spec{
		Name: "a", Kind: petri.Exponential, Rate: 1,
		Inputs: []petri.Arc{{Place: f}}, Outputs: []petri.Arc{{Place: q}},
	})
	b.AddTransition(petri.Spec{
		Name: "s", Kind: petri.Exponential, Rate: 1,
		Inputs: []petri.Arc{{Place: q}}, Outputs: []petri.Arc{{Place: f}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSolveGeneralDetectsDeadlock(t *testing.T) {
	// A state with no timed transitions at all: token moves to a sink.
	b := petri.NewBuilder("deadlock")
	src := b.AddPlace("src", 1)
	sink := b.AddPlace("sink", 0)
	clock := b.AddPlace("clock", 1)
	b.AddTransition(petri.Spec{
		Name: "drain", Kind: petri.Exponential, Rate: 1,
		Inputs:  []petri.Arc{{Place: src}},
		Outputs: []petri.Arc{{Place: sink}},
	})
	// Deterministic transition enabled only while src is marked; once the
	// token drains, nothing is enabled.
	b.AddTransition(petri.Spec{
		Name: "det", Kind: petri.Deterministic, Delay: 1,
		Guard:   func(m petri.Marking) bool { return m[src] > 0 },
		Inputs:  []petri.Arc{{Place: clock}},
		Outputs: []petri.Arc{{Place: clock}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := explore(t, n)
	if _, err := SolveGeneral(g); !errors.Is(err, ErrNoTimedTransitions) {
		t.Errorf("err = %v, want ErrNoTimedTransitions", err)
	}
}

func TestSolveGeneralMixedDelays(t *testing.T) {
	// Two deterministic phases with different delays, linked by
	// exponential escapes: a 2-phase alternating system.
	// Phase A (delay 1) fires -> B; phase B (delay 2) fires -> A.
	// No exponentials: cycle is deterministic with period 3.
	b := petri.NewBuilder("two-phase")
	a := b.AddPlace("a", 1)
	c := b.AddPlace("c", 0)
	b.AddTransition(petri.Spec{
		Name: "ab", Kind: petri.Deterministic, Delay: 1,
		Inputs:  []petri.Arc{{Place: a}},
		Outputs: []petri.Arc{{Place: c}},
	})
	b.AddTransition(petri.Spec{
		Name: "ba", Kind: petri.Deterministic, Delay: 2,
		Inputs:  []petri.Arc{{Place: c}},
		Outputs: []petri.Arc{{Place: a}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := explore(t, n)
	if _, err := Solve(g); !errors.Is(err, ErrMixedClocks) {
		t.Fatalf("Solve should reject mixed delays, got %v", err)
	}
	sol, err := SolveGeneral(g)
	if err != nil {
		t.Fatalf("SolveGeneral: %v", err)
	}
	aIdx, ok := g.StateIndex(n.InitialMarking())
	if !ok {
		t.Fatal("state a missing")
	}
	if math.Abs(sol.Pi[aIdx]-1.0/3) > 1e-9 {
		t.Errorf("P(a) = %.12g, want 1/3", sol.Pi[aIdx])
	}
}
