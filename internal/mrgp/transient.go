package mrgp

import (
	"nvrel/internal/linalg"
)

// transientTarget is the uniformization mass (rate x time) at which the
// base-case series is evaluated; longer horizons are reached by doubling.
const transientTarget = 32

// transientPair computes T = e^{Q t} and U = Integral_0^t e^{Q s} ds as
// matrices.
//
// Direct uniformization needs O(rate*t) series terms; with the paper's
// rejuvenation intervals (hundreds to thousands of seconds against a 1/3 Hz
// repair rate) that is over a thousand matrix terms. Scaling and doubling
// evaluates the series at t/2^k where rate*t/2^k <= transientTarget and
// then applies
//
//	T(2s) = T(s) T(s)
//	U(2s) = U(s) + T(s) U(s)
//
// k times, reducing the work by roughly rate*t/(transientTarget + 3k).
func transientPair(q *linalg.Dense, t float64) (tm, um *linalg.Dense, err error) {
	n, _ := q.Dims()
	rate := maxExitRate(q)
	if rate == 0 || t == 0 {
		// Frozen chain: T = I, U = t*I.
		tm = linalg.Identity(n)
		um = linalg.Identity(n)
		um.Scale(t)
		return tm, um, nil
	}

	doublings := 0
	base := t
	for rate*base > transientTarget {
		base /= 2
		doublings++
	}

	tm, um, err = uniformizedPair(q, rate, base)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < doublings; i++ {
		tu, err := tm.Mul(um)
		if err != nil {
			return nil, nil, err
		}
		if err := um.AddMat(tu); err != nil {
			return nil, nil, err
		}
		if tm, err = tm.Mul(tm); err != nil {
			return nil, nil, err
		}
	}
	return tm, um, nil
}

// uniformizedPair evaluates both series at horizon t directly.
func uniformizedPair(q *linalg.Dense, rate, t float64) (tm, um *linalg.Dense, err error) {
	n, _ := q.Dims()
	p := q.Clone()
	p.Scale(1 / rate)
	for i := 0; i < n; i++ {
		p.Add(i, i, 1)
	}
	weights, right := linalg.PoissonWeights(rate*t, truncationEpsilon)
	tail := make([]float64, right+1)
	acc := 0.0
	for k := 0; k <= right; k++ {
		acc += weights[k]
		tail[k] = 1 - acc
		if tail[k] < 0 {
			tail[k] = 0
		}
	}

	tm = linalg.NewDense(n, n)
	um = linalg.NewDense(n, n)
	power := linalg.Identity(n) // P^k
	for k := 0; k <= right; k++ {
		addScaled(tm, power, weights[k])
		addScaled(um, power, tail[k]/rate)
		if k == right {
			break
		}
		if power, err = power.Mul(p); err != nil {
			return nil, nil, err
		}
	}
	return tm, um, nil
}

// addScaled accumulates dst += s * src.
func addScaled(dst, src *linalg.Dense, s float64) {
	if s == 0 {
		return
	}
	rows, cols := dst.Dims()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst.Add(i, j, s*src.At(i, j))
		}
	}
}

// maxExitRate returns the uniformization rate max_i |Q[i,i]| with a small
// safety margin.
func maxExitRate(q *linalg.Dense) float64 {
	n, _ := q.Dims()
	var max float64
	for i := 0; i < n; i++ {
		d := q.At(i, i)
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max * 1.02
}
