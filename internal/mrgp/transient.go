package mrgp

import (
	"nvrel/internal/linalg"
)

// transientTarget is the uniformization mass (rate x time) at which the
// base-case series is evaluated; longer horizons are reached by doubling.
const transientTarget = 32

// transientPair computes T = e^{Q t} and U = Integral_0^t e^{Q s} ds as
// matrices. Both come from ws (nil allocates); release them with ws.PutMat.
// State spaces of linalg.SparseThreshold states or more subordinate the
// series through the CSR kernels (O(n*nnz) per term with no dense-dense
// products); smaller ones use the dense scaling-and-doubling path.
func transientPair(ws *linalg.Workspace, q *linalg.Dense, t float64) (tm, um *linalg.Dense, err error) {
	if n, _ := q.Dims(); n >= linalg.SparseThreshold {
		qc := linalg.CSRFromDense(q)
		return transientPairCSR(ws, qc, t)
	}
	return transientPairDense(ws, q, t)
}

// transientPairDense computes the pair with dense scaling and doubling.
//
// Direct uniformization needs O(rate*t) series terms; with the paper's
// rejuvenation intervals (hundreds to thousands of seconds against a 1/3 Hz
// repair rate) that is over a thousand matrix terms. Scaling and doubling
// evaluates the series at t/2^k where rate*t/2^k <= transientTarget and
// then applies
//
//	T(2s) = T(s) T(s)
//	U(2s) = U(s) + T(s) U(s)
//
// k times, reducing the work by roughly rate*t/(transientTarget + 3k).
func transientPairDense(ws *linalg.Workspace, q *linalg.Dense, t float64) (tm, um *linalg.Dense, err error) {
	n, _ := q.Dims()
	rate := maxExitRate(q)
	if rate == 0 || t == 0 {
		// Frozen chain: T = I, U = t*I.
		tm = ws.Mat(n, n)
		um = ws.Mat(n, n)
		for i := 0; i < n; i++ {
			tm.Set(i, i, 1)
			um.Set(i, i, t)
		}
		return tm, um, nil
	}

	doublings := 0
	base := t
	for rate*base > transientTarget {
		base /= 2
		doublings++
	}

	tm, um, err = uniformizedPair(ws, q, rate, base)
	if err != nil {
		return nil, nil, err
	}
	if doublings > 0 {
		tu := ws.Mat(n, n)
		tmp := ws.Mat(n, n)
		for i := 0; i < doublings; i++ {
			if err := tu.MulInto(tm, um); err != nil {
				return nil, nil, err
			}
			if err := um.AddMat(tu); err != nil {
				return nil, nil, err
			}
			if err := tmp.MulInto(tm, tm); err != nil {
				return nil, nil, err
			}
			tm, tmp = tmp, tm
		}
		ws.PutMat(tu)
		ws.PutMat(tmp)
	}
	return tm, um, nil
}

// uniformizedPair evaluates both series at horizon t directly. tm and um
// come from ws; release them with ws.PutMat.
func uniformizedPair(ws *linalg.Workspace, q *linalg.Dense, rate, t float64) (tm, um *linalg.Dense, err error) {
	n, _ := q.Dims()
	p := ws.Mat(n, n)
	defer ws.PutMat(p)
	p.CopyFrom(q)
	p.Scale(1 / rate)
	for i := 0; i < n; i++ {
		p.Add(i, i, 1)
	}
	weights, right := ws.Poisson(rate*t, truncationEpsilon)
	tail := ws.Vec(right + 1)
	acc := 0.0
	for k := 0; k <= right; k++ {
		acc += weights[k]
		tail[k] = 1 - acc
		if tail[k] < 0 {
			tail[k] = 0
		}
	}

	tm = ws.Mat(n, n)
	um = ws.Mat(n, n)
	power := ws.Mat(n, n) // P^k
	next := ws.Mat(n, n)
	for i := 0; i < n; i++ {
		power.Set(i, i, 1)
	}
	for k := 0; k <= right; k++ {
		addScaled(tm, power, weights[k])
		addScaled(um, power, tail[k]/rate)
		if k == right {
			break
		}
		if err := next.MulInto(power, p); err != nil {
			return nil, nil, err
		}
		power, next = next, power
	}
	ws.PutMat(power)
	ws.PutMat(next)
	ws.PutVec(tail)
	return tm, um, nil
}

// transientPairCSR evaluates both series at the full horizon with the
// matrix powers subordinated through the CSR kernel: each term costs
// O(n*nnz) instead of the dense product's O(n^3), so skipping the doubling
// shortcut (whose squarings are dense-dense) is a net win once the
// generator is sparse. tm and um come from ws; release them with ws.PutMat.
func transientPairCSR(ws *linalg.Workspace, q *linalg.CSR, t float64) (tm, um *linalg.Dense, err error) {
	n, _ := q.Dims()
	rate := q.MaxAbsDiag() * 1.02
	if rate == 0 || t == 0 {
		tm = ws.Mat(n, n)
		um = ws.Mat(n, n)
		for i := 0; i < n; i++ {
			tm.Set(i, i, 1)
			um.Set(i, i, t)
		}
		return tm, um, nil
	}

	// P = I + Q/rate, kept in CSR form (same pattern as Q).
	p := ws.CSR(n, n, q.NNZ())
	defer ws.PutCSR(p)
	copy(p.RowPtr, q.RowPtr)
	copy(p.ColIdx, q.ColIdx)
	for i := 0; i < n; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			v := q.Vals[k] / rate
			if q.ColIdx[k] == i {
				v++
			}
			p.Vals[k] = v
		}
	}

	weights, right := ws.Poisson(rate*t, truncationEpsilon)
	tail := ws.Vec(right + 1)
	acc := 0.0
	for k := 0; k <= right; k++ {
		acc += weights[k]
		tail[k] = 1 - acc
		if tail[k] < 0 {
			tail[k] = 0
		}
	}

	tm = ws.Mat(n, n)
	um = ws.Mat(n, n)
	power := ws.Mat(n, n) // P^k
	next := ws.Mat(n, n)
	for i := 0; i < n; i++ {
		power.Set(i, i, 1)
	}
	for k := 0; k <= right; k++ {
		addScaled(tm, power, weights[k])
		addScaled(um, power, tail[k]/rate)
		if k == right {
			break
		}
		if err := next.MulCSRInto(power, p); err != nil {
			return nil, nil, err
		}
		power, next = next, power
	}
	ws.PutMat(power)
	ws.PutMat(next)
	ws.PutVec(tail)
	return tm, um, nil
}

// addScaled accumulates dst += s * src.
func addScaled(dst, src *linalg.Dense, s float64) {
	if s == 0 {
		return
	}
	rows, cols := dst.Dims()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst.Add(i, j, s*src.At(i, j))
		}
	}
}

// maxExitRate returns the uniformization rate max_i |Q[i,i]| with a small
// safety margin.
func maxExitRate(q *linalg.Dense) float64 {
	n, _ := q.Dims()
	var max float64
	for i := 0; i < n; i++ {
		d := q.At(i, i)
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max * 1.02
}
