package mrgp

import (
	"testing"

	"nvrel/internal/petri"
)

func benchGraph(b *testing.B, tau float64) *petri.Graph {
	b.Helper()
	bd := petri.NewBuilder("bench")
	fresh := bd.AddPlace("fresh", 4)
	deg := bd.AddPlace("deg", 0)
	clock := bd.AddPlace("clock", 1)
	restore := bd.AddPlace("restore", 0)
	bd.AddTransition(petri.Spec{
		Name: "degrade", Kind: petri.Exponential, Rate: 1.0 / 1523,
		Inputs: []petri.Arc{{Place: fresh}}, Outputs: []petri.Arc{{Place: deg}},
	})
	bd.AddTransition(petri.Spec{
		Name: "tick", Kind: petri.Deterministic, Delay: tau,
		Inputs: []petri.Arc{{Place: clock}}, Outputs: []petri.Arc{{Place: restore}},
	})
	bd.AddTransition(petri.Spec{
		Name: "restoreDeg", Kind: petri.Immediate, Rate: 1, Priority: 2,
		Inputs:  []petri.Arc{{Place: restore}, {Place: deg}},
		Outputs: []petri.Arc{{Place: fresh}, {Place: clock}},
	})
	bd.AddTransition(petri.Spec{
		Name: "restoreNothing", Kind: petri.Immediate, Rate: 1, Priority: 1,
		Guard:   func(m petri.Marking) bool { return m[deg] == 0 },
		Inputs:  []petri.Arc{{Place: restore}},
		Outputs: []petri.Arc{{Place: clock}},
	})
	n, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	g, err := petri.Explore(n, petri.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSolveShortPeriod(b *testing.B) {
	g := benchGraph(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLongPeriod(b *testing.B) {
	// A long period stresses the scaling-and-doubling uniformization.
	g := benchGraph(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGeneral(b *testing.B) {
	g := benchGraph(b, 600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGeneral(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientPair(b *testing.B) {
	g := benchGraph(b, 600)
	q, err := g.Generator()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := transientPair(nil, q, 600); err != nil {
			b.Fatal(err)
		}
	}
}
