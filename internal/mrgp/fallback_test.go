package mrgp

import (
	"context"
	"math"
	"testing"
	"time"

	"nvrel/internal/faultinject"
	"nvrel/internal/linalg"
	"nvrel/internal/obs"
	"nvrel/internal/petri"
)

// armMrgpFault arms one fault and enables injection for the test body.
func armMrgpFault(t *testing.T, f faultinject.Fault) {
	t.Helper()
	faultinject.Reset()
	if err := faultinject.Arm(f, 9); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable()
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})
}

// sparseRoutedGraph returns a clocked DSPN with the threshold dropped so
// SolveWS routes it through the sparse solver, plus its dense reference.
func sparseRoutedGraph(t *testing.T) (*petri.Graph, *Solution) {
	t.Helper()
	g := explore(t, buildClockedPopulation(t, 4, 15))
	prev := linalg.SparseThreshold
	linalg.SparseThreshold = 1
	t.Cleanup(func() { linalg.SparseThreshold = prev })
	dense, err := SolveDenseWS(nil, g)
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	return g, dense
}

// TestSparseFailsTypedUnderInjectedStall: the sparse solver alone surfaces
// an injected embedded-power stall as a typed not-converged SolveError.
func TestSparseFailsTypedUnderInjectedStall(t *testing.T) {
	g, _ := sparseRoutedGraph(t)
	armMrgpFault(t, faultinject.Fault{Site: "mrgp.power.stall"})
	_, err := SolveSparseWS(nil, g)
	se, ok := linalg.AsSolveError(err)
	if !ok || se.Kind != linalg.FailNotConverged {
		t.Fatalf("injected stall gave %v", err)
	}
}

// TestSolveRecoversFromInjectedPowerStall: SolveWS falls back to the dense
// path after the injected sparse failure, the result matches the dense
// reference, and the recovered_dense counter distinguishes the rescue
// from plain size routing (the satellite-3 contract).
func TestSolveRecoversFromInjectedPowerStall(t *testing.T) {
	g, dense := sparseRoutedGraph(t)
	prevObs := obs.Enabled()
	obs.Enable()
	t.Cleanup(func() { obs.SetEnabled(prevObs) })
	routedSparse0 := obs.CounterFor("mrgp.solve.routed_sparse").Value()
	routedDense0 := obs.CounterFor("mrgp.solve.routed_dense").Value()
	recovered0 := obs.CounterFor("mrgp.solve.recovered_dense").Value()
	fallback0 := obs.CounterFor("mrgp.solve.fallback_dense").Value()

	armMrgpFault(t, faultinject.Fault{Site: "mrgp.power.stall"})
	sol, err := SolveWS(nil, g)
	if err != nil {
		t.Fatalf("SolveWS did not recover: %v", err)
	}
	for i := range sol.Pi {
		if math.Abs(sol.Pi[i]-dense.Pi[i]) > 1e-12 {
			t.Fatalf("Pi[%d] = %.17g, dense reference %.17g", i, sol.Pi[i], dense.Pi[i])
		}
	}
	if d := obs.CounterFor("mrgp.solve.routed_sparse").Value() - routedSparse0; d != 1 {
		t.Errorf("routed_sparse delta = %d, want 1", d)
	}
	if d := obs.CounterFor("mrgp.solve.routed_dense").Value() - routedDense0; d != 0 {
		t.Errorf("routed_dense delta = %d, want 0 (a rescue is not a routing decision)", d)
	}
	if d := obs.CounterFor("mrgp.solve.recovered_dense").Value() - recovered0; d != 1 {
		t.Errorf("recovered_dense delta = %d, want 1", d)
	}
	if d := obs.CounterFor("mrgp.solve.fallback_dense").Value() - fallback0; d != 1 {
		t.Errorf("fallback_dense delta = %d, want 1", d)
	}
}

// TestSolveRecoversFromInjectedPanic: a panic inside the embedded cycle
// loop is recovered and the dense rung produces the result.
func TestSolveRecoversFromInjectedPanic(t *testing.T) {
	g, dense := sparseRoutedGraph(t)
	armMrgpFault(t, faultinject.Fault{Site: "mrgp.kernel.panic"})
	sol, err := SolveWS(nil, g)
	if err != nil {
		t.Fatalf("SolveWS did not recover from the panic: %v", err)
	}
	for i := range sol.Pi {
		if math.Abs(sol.Pi[i]-dense.Pi[i]) > 1e-12 {
			t.Fatalf("Pi[%d] deviates from the dense reference", i)
		}
	}
}

// TestSolveCtxDeadline: an expired context surfaces as a typed deadline
// failure without falling back.
func TestSolveCtxDeadline(t *testing.T) {
	g, _ := sparseRoutedGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := SolveCtxWS(ctx, nil, g)
	se, ok := linalg.AsSolveError(err)
	if !ok || se.Kind != linalg.FailDeadline {
		t.Fatalf("expired ctx gave %v", err)
	}
}
