// Package mrgp solves the steady state of the Deterministic and Stochastic
// Petri Nets used by the rejuvenation architecture via Markov regenerative
// process (MRGP) analysis.
//
// The solver targets the class of DSPNs produced by the paper's models: a
// single deterministic transition (the rejuvenation clock) that is enabled
// in every tangible marking and is only reset by its own firing. Under
// these conditions the clock fires at fixed epochs tau, 2*tau, ... and those
// epochs are regeneration points of the marking process:
//
//  1. between epochs the process evolves as the subordinated CTMC with
//     generator Q built from the exponential transitions;
//  2. at an epoch the clock fires, triggering an immediate-transition
//     cascade described by a stochastic branching matrix D.
//
// The embedded chain at epochs has transition matrix  P = e^{Q tau} D.
// Its stationary vector sigma, combined with the expected sojourn times
// sigma * Integral_0^tau e^{Qt} dt, yields the time-stationary distribution.
package mrgp

import (
	"context"
	"errors"
	"fmt"

	"nvrel/internal/linalg"
	"nvrel/internal/obs"
	"nvrel/internal/petri"
)

// Solver errors.
var (
	// ErrNoDeterministic is returned for graphs without any deterministic
	// transition; use Graph.SteadyState instead.
	ErrNoDeterministic = errors.New("mrgp: graph has no deterministic transition")

	// ErrClockNotAlwaysEnabled is returned when some tangible marking does
	// not enable the deterministic transition; such models are outside the
	// solver's regeneration class.
	ErrClockNotAlwaysEnabled = errors.New("mrgp: deterministic transition not enabled in every tangible marking")

	// ErrMixedClocks is returned when tangible markings enable different
	// deterministic transitions or delays.
	ErrMixedClocks = errors.New("mrgp: multiple distinct deterministic transitions or delays")
)

// Solution holds the steady-state analysis of a clocked DSPN.
type Solution struct {
	// Pi is the time-stationary distribution over tangible states.
	Pi []float64

	// Embedded is the stationary distribution of the chain embedded just
	// after clock firings.
	Embedded []float64

	// Delay is the clock period tau.
	Delay float64

	// Cycles is the number of embedded-chain power cycles the sparse
	// solver ran (0 on the dense direct path, which has no iteration).
	Cycles int

	// Warm reports whether the sparse solver started from an accepted
	// warm-start seed instead of the uniform vector.
	Warm bool
}

const truncationEpsilon = 1e-12

// Solve computes the steady-state distribution of the tangible reachability
// graph g, which must enable one deterministic transition (with one common
// delay) in every tangible state.
func Solve(g *petri.Graph) (*Solution, error) {
	return SolveWS(nil, g)
}

// SolveWS is the workspace-backed form of Solve: all scratch matrices and
// Poisson weight vectors come from ws, so sweeping a parameter over the
// same model solves allocation-free after the first point. The returned
// Solution owns its vectors either way.
//
// State spaces of linalg.SparseThreshold states or more route through the
// matrix-free sparse solver (SolveSparseWS), falling back to the dense
// path when the sparse path fails for any recoverable reason; smaller
// ones solve dense directly, float-for-float identical to Solve has
// always been.
func SolveWS(ws *linalg.Workspace, g *petri.Graph) (*Solution, error) {
	return SolveCtxWS(nil, ws, g)
}

// isStructuralErr reports model-class failures the dense path would hit
// identically, so falling back cannot recover them.
func isStructuralErr(err error) bool {
	return errors.Is(err, petri.ErrNoStates) ||
		errors.Is(err, ErrNoDeterministic) ||
		errors.Is(err, ErrClockNotAlwaysEnabled) ||
		errors.Is(err, ErrMixedClocks)
}

// isDeadline reports whether err is a typed deadline failure; the fallback
// must not rerun a slower solver against an expired clock.
func isDeadline(err error) bool {
	se, ok := linalg.AsSolveError(err)
	return ok && se.Kind == linalg.FailDeadline
}

// SolveCtxWS is the hardened MRGP entry point: size routing, panic
// recovery around both kernels, a distribution guard on every candidate
// result, and a sparse -> dense fallback driven by any recoverable typed
// failure (not only convergence). The routed_dense/routed_sparse counters
// record the routing decision; recovered_dense records dense successes
// that followed a sparse failure, so observability can tell "small model,
// dense by design" apart from "sparse path failed and was rescued".
func SolveCtxWS(ctx context.Context, ws *linalg.Workspace, g *petri.Graph) (*Solution, error) {
	return SolveSeededCtxWS(ctx, ws, g, nil)
}

// SolveSeededCtxWS is SolveCtxWS with an optional warm-start seed for the
// embedded-chain stationary vector (a previous Solution's Embedded from a
// Restamp sibling of g). Only the first sparse rung consumes the seed; the
// dense fallback and the dense-by-size route ignore it entirely, so chain
// semantics and the direct paths are untouched and a nil seed reproduces
// SolveCtxWS bit for bit.
func SolveSeededCtxWS(ctx context.Context, ws *linalg.Workspace, g *petri.Graph, seed []float64) (*Solution, error) {
	ctx, sp := obs.StartSpan(ctx, "mrgp.solve")
	defer sp.End()
	sp.Int("states", int64(g.NumStates()))
	if err := linalg.CtxError("mrgp.solve", ctx); err != nil {
		sp.Err(err)
		return nil, err
	}
	if g.NumStates() >= linalg.SparseThreshold {
		metRoutedSparse.Inc()
		sp.Str("routed", "sparse")
		sol, err := solveSparseGuarded(ctx, ws, g, seed)
		if err == nil {
			sp.Int("cycles", int64(sol.Cycles)).
				Str("seeded", map[bool]string{false: "cold", true: "warm"}[sol.Warm])
			return sol, nil
		}
		if isStructuralErr(err) || isDeadline(err) {
			sp.Err(err)
			return nil, err
		}
		metSolveFallback.Inc()
		sol, derr := solveDenseGuarded(ctx, ws, g)
		if derr == nil {
			metRecoveredDense.Inc()
			sp.Str("recovered", "dense")
			return sol, nil
		}
		sp.Err(derr)
		return nil, derr
	}
	metRoutedDense.Inc()
	sp.Str("routed", "dense")
	sol, err := solveDenseGuarded(ctx, ws, g)
	sp.Err(err)
	return sol, err
}

// solveSparseGuarded runs one sparse attempt with panic recovery and
// result guards on both output distributions.
func solveSparseGuarded(ctx context.Context, ws *linalg.Workspace, g *petri.Graph, seed []float64) (sol *Solution, err error) {
	ctx, sp := obs.StartSpan(ctx, "mrgp.rung.sparse")
	defer func() {
		sp.Err(err)
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, linalg.NewPanicError("mrgp.solve.sparse", r)
		}
	}()
	sol, err = SolveSparseSeededCtxWS(ctx, ws, g, seed)
	if err == nil {
		if verr := validateSolution("mrgp.solve.sparse", sol); verr != nil {
			return nil, verr
		}
	}
	return sol, err
}

// solveDenseGuarded runs one dense attempt with panic recovery and result
// guards.
func solveDenseGuarded(ctx context.Context, ws *linalg.Workspace, g *petri.Graph) (sol *Solution, err error) {
	_, sp := obs.StartSpan(ctx, "mrgp.rung.dense")
	defer func() {
		sp.Err(err)
		sp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, linalg.NewPanicError("mrgp.solve.dense", r)
		}
	}()
	if err := linalg.CtxError("mrgp.solve.dense", ctx); err != nil {
		return nil, err
	}
	sol, err = SolveDenseWS(ws, g)
	if err == nil {
		if verr := validateSolution("mrgp.solve.dense", sol); verr != nil {
			return nil, verr
		}
	}
	return sol, err
}

// SolveRungCtxWS runs exactly one MRGP formulation — "dense" (dense
// transient pair + GTH on the embedded chain) or "sparse" (matrix-free
// uniformized series + embedded power iteration) — with NO size routing
// and NO fallback: a failing rung surfaces its typed error. Like
// petri.Graph.SteadyStateRungCtxWS it exists for shadow verification,
// where the re-solve must stay on the path independent of the one that
// produced the primary answer. Both rungs keep the guarded panic
// recovery and result validation of the hardened entry point.
func SolveRungCtxWS(ctx context.Context, ws *linalg.Workspace, g *petri.Graph, rung string) (*Solution, error) {
	switch rung {
	case "dense":
		return solveDenseGuarded(ctx, ws, g)
	case "sparse":
		return solveSparseGuarded(ctx, ws, g, nil)
	default:
		return nil, fmt.Errorf("mrgp: unknown solver rung %q (want dense or sparse)", rung)
	}
}

// validateSolution guards both output vectors of a Solution: the
// time-stationary and the embedded distributions each must be a valid
// point on the probability simplex.
func validateSolution(site string, sol *Solution) error {
	if err := linalg.ValidateDistribution(site, sol.Pi); err != nil {
		return err
	}
	return linalg.ValidateDistribution(site, sol.Embedded)
}

// SolveDenseWS computes the solution with the dense kernels (dense
// generator, dense scaling-and-doubling transient pair, GTH on the
// embedded chain), unconditionally. It is the reference path the sparse
// solver is validated against and the backstop when the sparse power
// iteration does not converge.
func SolveDenseWS(ws *linalg.Workspace, g *petri.Graph) (*Solution, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, petri.ErrNoStates
	}
	if !g.HasDeterministic() {
		return nil, ErrNoDeterministic
	}
	delay, err := commonDelay(g)
	if err != nil {
		return nil, err
	}
	metSolveDense.Inc()

	q, err := g.GeneratorWS(ws)
	if err != nil {
		return nil, err
	}
	defer ws.PutMat(q)

	// D: branching matrix applied at clock firings.
	d := ws.Mat(n, n)
	defer ws.PutMat(d)
	for i, sched := range g.Det {
		for _, pe := range sched.Successors {
			d.Add(i, pe.To, pe.Prob)
		}
	}

	// T = e^{Q tau} and U = Integral_0^tau e^{Qt} dt via uniformization
	// with scaling and doubling (see transient.go).
	tMat, uMat, err := transientPairDense(ws, q, delay)
	if err != nil {
		return nil, fmt.Errorf("transient pair: %w", err)
	}
	defer ws.PutMat(tMat)
	defer ws.PutMat(uMat)

	p := ws.Mat(n, n)
	defer ws.PutMat(p)
	if err := p.MulInto(tMat, d); err != nil {
		return nil, err
	}
	sigma, err := embeddedStationary(ws, p)
	if err != nil {
		return nil, fmt.Errorf("embedded chain: %w", err)
	}

	occupancy := make([]float64, n)
	if err := uMat.VecMulInto(occupancy, sigma); err != nil {
		return nil, err
	}
	linalg.Normalize(occupancy)

	return &Solution{Pi: occupancy, Embedded: sigma, Delay: delay}, nil
}

// ExpectedReward computes the steady-state expected reward of a clocked
// DSPN graph under the given rate-reward function.
func ExpectedReward(g *petri.Graph, f petri.RewardFn) (float64, error) {
	sol, err := Solve(g)
	if err != nil {
		return 0, err
	}
	return linalg.Dot(sol.Pi, g.RewardVector(f))
}

// embeddedStationary solves sigma = sigma * P for the embedded chain. The
// chain is typically reducible: states visited only mid-cycle are transient
// at regeneration epochs (for instance, markings without a rejuvenation
// wave in flight are never observed immediately after a clock tick). The
// stationary vector is therefore computed on the unique closed recurrent
// class and is zero elsewhere.
func embeddedStationary(ws *linalg.Workspace, p *linalg.Dense) ([]float64, error) {
	n, _ := p.Dims()
	members, err := recurrentClass(p)
	if err != nil {
		return nil, err
	}
	sigma := make([]float64, n)
	if len(members) == 1 {
		sigma[members[0]] = 1
		return sigma, nil
	}
	sub := ws.Mat(len(members), len(members))
	defer ws.PutMat(sub)
	for a, i := range members {
		// Renormalize rows over the class: mass leaking to transient
		// states is truncation noise, and a recurrent class keeps its mass
		// by definition.
		var rowSum float64
		for _, j := range members {
			rowSum += p.At(i, j)
		}
		if rowSum <= 0 {
			return nil, ErrNotErgodic
		}
		for b, j := range members {
			sub.Set(a, b, p.At(i, j)/rowSum)
		}
	}
	subPi := ws.Vec(len(members))
	defer ws.PutVec(subPi)
	if _, err := ws.SteadyStateDTMC(sub, subPi); err != nil {
		return nil, err
	}
	for a, i := range members {
		sigma[i] = subPi[a]
	}
	return sigma, nil
}

// commonDelay verifies the regeneration-class restrictions and returns the
// shared clock period.
func commonDelay(g *petri.Graph) (float64, error) {
	var (
		delay float64
		tref  petri.TransitionRef
		seen  bool
	)
	for i, sched := range g.Det {
		if sched == nil {
			return 0, fmt.Errorf("%w: state %s", ErrClockNotAlwaysEnabled, g.Net.FormatMarking(g.Markings[i]))
		}
		if !seen {
			delay, tref, seen = sched.Delay, sched.Transition, true
			continue
		}
		if sched.Transition != tref || sched.Delay != delay {
			return 0, fmt.Errorf("%w: %q/%g vs %q/%g", ErrMixedClocks,
				g.Net.TransitionName(tref), delay, g.Net.TransitionName(sched.Transition), sched.Delay)
		}
	}
	return delay, nil
}
