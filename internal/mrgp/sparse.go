package mrgp

import (
	"context"
	"fmt"
	"math"

	"nvrel/internal/faultinject"
	"nvrel/internal/linalg"
	"nvrel/internal/obs"
	"nvrel/internal/petri"
)

// Power-iteration limits for the sparse embedded chain. The tolerance is on
// the L1 change per cycle; the stall band accepts the float64 rounding
// floor when improvement dies out, mirroring linalg.SteadyStateGS.
const (
	embTol       = 1e-15
	embStallTol  = 1e-12
	embMaxCycles = 50000
)

// SolveSparseWS computes the steady state of a clocked DSPN without ever
// materializing a dense matrix. The embedded chain P = e^{Q tau} D is
// never formed: its stationary vector is found by power iteration
//
//	v <- normalize((v * e^{Q tau}) * D)
//
// where v * e^{Q tau} is the matrix-free uniformization series (cur <-
// cur + (cur*Q)/rate per Poisson term) and D is the CSR clock branching
// matrix cached on the graph topology. e^{Q tau} is strictly positive on
// an irreducible subordinated chain, so the iteration contracts onto the
// stationary vector of the unique closed class of P — the same limit the
// dense path extracts by classifying the recurrent class explicitly — and
// the mass it places on epoch-transient states decays geometrically to
// zero. Occupancy then follows from one matrix-free integral series.
//
// Memory is O(nnz + n) against the dense path's O(n^2), and a cycle costs
// O(rate*tau) sparse matvecs, so the solver reaches state spaces the
// dense path cannot hold. linalg.ErrNotConverged (wrapped) signals the
// caller to fall back to SolveDenseWS.
func SolveSparseWS(ws *linalg.Workspace, g *petri.Graph) (*Solution, error) {
	return SolveSparseCtxWS(nil, ws, g)
}

// SolveSparseCtxWS is SolveSparseWS with a context: the cycle loop checks
// for cancellation once per embedded-chain cycle (each cycle is a full
// uniformization series, so the check granularity is coarse but the cost
// per check is negligible) and returns a typed SolveError{Kind:
// FailDeadline} when the context dies. A nil context never checks.
func SolveSparseCtxWS(ctx context.Context, ws *linalg.Workspace, g *petri.Graph) (*Solution, error) {
	return SolveSparseSeededCtxWS(ctx, ws, g, nil)
}

// SolveSparseSeededCtxWS is SolveSparseCtxWS with an optional warm-start
// seed for the embedded-chain power iteration: a seed accepted by
// linalg.ApplySeed (right length, finite, non-negative, positive mass)
// replaces the uniform starting vector — typically the Embedded vector of
// a neighboring parameter point on the same topology. The iteration
// contracts onto the stationary vector of the unique closed class of
// P = e^{Q tau} D from any starting distribution with mass on it, and any
// mass a stale seed puts on epoch-transient states decays geometrically,
// so the fixed point is independent of the seed; only the cycle count
// changes. A nil or rejected seed reproduces the cold solve bit for bit.
func SolveSparseSeededCtxWS(ctx context.Context, ws *linalg.Workspace, g *petri.Graph, seed []float64) (*Solution, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, petri.ErrNoStates
	}
	if !g.HasDeterministic() {
		return nil, ErrNoDeterministic
	}
	delay, err := commonDelay(g)
	if err != nil {
		return nil, err
	}
	metSolveSparse.Inc()

	q, err := g.GeneratorCSR(ws)
	if err != nil {
		return nil, err
	}
	defer ws.PutCSR(q)
	d := g.DetBranchCSR()
	rate := q.MaxAbsDiag() * 1.02

	v := ws.Vec(n)
	moved := ws.Vec(n)
	next := ws.Vec(n)
	defer ws.PutVec(v)
	defer ws.PutVec(moved)
	defer ws.PutVec(next)
	warm := linalg.ApplySeed(v, seed)
	if !warm {
		for i := range v {
			v[i] = 1 / float64(n)
		}
	}

	converged := false
	prev := math.Inf(1)
	stall := 0
	cycles := 0
	lastDelta := math.Inf(1)
	// The embedded-chain span must close before the occupancy span opens
	// (they are sibling kernels under mrgp.rung.sparse), so it ends via
	// this helper on every exit from the loop rather than a defer that
	// would stretch it over the integral below.
	_, ksp := obs.StartSpan(ctx, "mrgp.kernel.embedded")
	kspEnded := false
	endEmbedded := func(err error) {
		if kspEnded {
			return
		}
		kspEnded = true
		ksp.Int("cycles", int64(cycles)).Int("nnz", int64(q.NNZ())).Float("residual", lastDelta).Err(err)
		ksp.End()
	}
	defer endEmbedded(nil)
	for cycle := 0; cycle < embMaxCycles; cycle++ {
		if err := linalg.CtxError("mrgp.power", ctx); err != nil {
			return nil, err
		}
		if faultinject.Enabled() {
			fiMrgpPanic.Panic()
			if fiPowerStall.Fire() {
				return nil, &linalg.SolveError{Site: "mrgp.power", Kind: linalg.FailNotConverged, Index: -1,
					Err: fmt.Errorf("%w: injected embedded power stall at cycle %d", linalg.ErrNotConverged, cycle)}
			}
		}
		if _, err := ws.UniformizedPowerCSR(q, v, delay, rate, truncationEpsilon, moved); err != nil {
			return nil, err
		}
		if err := d.VecMulInto(next, moved); err != nil {
			return nil, err
		}
		var delta, norm float64
		for i := range next {
			norm += next[i]
		}
		if math.IsNaN(norm) || math.IsInf(norm, 0) {
			return nil, &linalg.SolveError{Site: "mrgp.power", Kind: linalg.FailNaN, Index: -1,
				Err: fmt.Errorf("mrgp: embedded iterate went non-finite at cycle %d", cycle)}
		}
		if norm <= 0 {
			return nil, &linalg.SolveError{Site: "mrgp.power", Kind: linalg.FailNotConverged, Index: -1,
				Err: fmt.Errorf("mrgp: embedded iterate vanished at cycle %d", cycle)}
		}
		inv := 1 / norm
		for i := range next {
			next[i] *= inv
			diff := next[i] - v[i]
			if diff < 0 {
				diff = -diff
			}
			delta += diff
		}
		v, next = next, v
		cycles = cycle + 1
		lastDelta = delta
		if delta <= embTol {
			converged = true
			break
		}
		if delta >= prev*0.98 {
			if stall++; stall >= 10 && delta <= embStallTol {
				converged = true
				break
			}
		} else {
			stall = 0
		}
		prev = delta
	}
	metPowerCycles.Add(int64(cycles))
	metPowerResidual.Set(lastDelta)
	if !converged {
		err := &linalg.SolveError{Site: "mrgp.power", Kind: linalg.FailNotConverged, Index: -1, Residual: lastDelta,
			Err: fmt.Errorf("%w: embedded power iteration after %d cycles", linalg.ErrNotConverged, embMaxCycles)}
		endEmbedded(err)
		return nil, err
	}
	endEmbedded(nil)

	sigma := make([]float64, n)
	copy(sigma, v)

	occupancy := make([]float64, n)
	_, osp := obs.StartSpan(ctx, "mrgp.kernel.occupancy")
	_, oerr := ws.UniformizedIntegralCSR(q, sigma, delay, rate, truncationEpsilon, occupancy)
	osp.Err(oerr)
	osp.End()
	if oerr != nil {
		return nil, oerr
	}
	linalg.Normalize(occupancy)

	return &Solution{Pi: occupancy, Embedded: sigma, Delay: delay, Cycles: cycles, Warm: warm}, nil
}
