package mrgp

import (
	"errors"

	"nvrel/internal/linalg"
)

// ErrNotErgodic is returned when the embedded chain has no unique closed
// recurrent class.
var ErrNotErgodic = errors.New("mrgp: embedded chain has no unique recurrent class")

// probEdgeFloor ignores vanishing transition probabilities produced by
// uniformization truncation noise when classifying states.
const probEdgeFloor = 1e-14

// recurrentClass returns the states of the unique closed communicating
// class of the stochastic matrix p. States outside the class are transient
// under the embedded chain (they are entered only mid-cycle, never at a
// regeneration epoch).
func recurrentClass(p *linalg.Dense) ([]int, error) {
	n, _ := p.Dims()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && p.At(i, j) > probEdgeFloor {
				adj[i] = append(adj[i], j)
			}
		}
	}
	comp := tarjanSCC(adj)

	// A class is closed when no member has an edge leaving the class.
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	closed := make([]bool, nComp)
	for i := range closed {
		closed[i] = true
	}
	for u, outs := range adj {
		for _, v := range outs {
			if comp[u] != comp[v] {
				closed[comp[u]] = false
			}
		}
	}
	var members []int
	found := -1
	for c, isClosed := range closed {
		if !isClosed {
			continue
		}
		if found >= 0 {
			return nil, ErrNotErgodic
		}
		found = c
	}
	if found < 0 {
		return nil, ErrNotErgodic
	}
	for s, c := range comp {
		if c == found {
			members = append(members, s)
		}
	}
	return members, nil
}

// tarjanSCC computes strongly connected components iteratively, returning a
// component id per vertex.
func tarjanSCC(adj [][]int) []int {
	n := len(adj)
	const unvisited = -1
	var (
		index    = make([]int, n)
		lowlink  = make([]int, n)
		onStack  = make([]bool, n)
		comp     = make([]int, n)
		stack    []int
		nextIdx  int
		nextComp int
	)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}

	type frame struct {
		v, child int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: start}}
		index[start] = nextIdx
		lowlink[start] = nextIdx
		nextIdx++
		stack = append(stack, start)
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.child < len(adj[v]) {
				w := adj[v][f.child]
				f.child++
				if index[w] == unvisited {
					index[w] = nextIdx
					lowlink[w] = nextIdx
					nextIdx++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			// v finished: pop frame, propagate lowlink, emit SCC if root.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nextComp
					if w == v {
						break
					}
				}
				nextComp++
			}
		}
	}
	return comp
}
