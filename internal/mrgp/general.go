package mrgp

import (
	"context"
	"errors"
	"fmt"

	"nvrel/internal/linalg"
	"nvrel/internal/obs"
	"nvrel/internal/petri"
)

// ErrNoTimedTransitions is returned when a state enables neither
// exponential nor deterministic transitions (an absorbing deadlock).
var ErrNoTimedTransitions = errors.New("mrgp: absorbing tangible marking (no timed transitions enabled)")

// SolveGeneral computes the steady-state distribution of a DSPN whose
// deterministic transitions may be enabled in only part of the state
// space, using the full Markov-regenerative treatment:
//
//   - a tangible state without a deterministic transition regenerates at
//     its first exponential firing (an ordinary CTMC sojourn);
//   - a tangible state with a deterministic transition d starts d's timer
//     (enabling memory policy). The subordinated CTMC runs until either
//     the timer expires at tau — d fires, followed by its immediate
//     cascade — or the chain leaves the set of states enabling d, which
//     discards the timer and regenerates immediately.
//
// The embedded Markov chain over regeneration points and the expected
// per-cycle state occupancies yield the time-stationary distribution by
// the Markov-regenerative ratio formula. Deterministic transitions with
// different delays are supported as long as at most one is enabled per
// marking (enforced by petri.Explore).
//
// When every tangible state enables the same deterministic transition the
// method reduces exactly to the clock-synchronous solver in Solve; Solve
// remains available because its regeneration period (the full clock
// period) is longer and therefore cheaper and better conditioned.
func SolveGeneral(g *petri.Graph) (*Solution, error) {
	return SolveGeneralWS(nil, g)
}

// SolveGeneralCtxWS is SolveGeneralWS with a context, used only for span
// parenting: the general solver has no iterative kernels worth
// cancelling, but its span must still nest under the caller's solve span
// so 6v ClockWaitsForWave traces stay one tree.
func SolveGeneralCtxWS(ctx context.Context, ws *linalg.Workspace, g *petri.Graph) (sol *Solution, err error) {
	_, sp := obs.StartSpan(ctx, "mrgp.solve.general")
	sp.Int("states", int64(g.NumStates()))
	defer func() {
		sp.Err(err)
		sp.End()
	}()
	return SolveGeneralWS(ws, g)
}

// SolveGeneralWS is the workspace-backed form of SolveGeneral; see SolveWS
// for the reuse contract.
func SolveGeneralWS(ws *linalg.Workspace, g *petri.Graph) (*Solution, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, petri.ErrNoStates
	}
	if !g.HasDeterministic() {
		return nil, ErrNoDeterministic
	}
	metSolveGeneral.Inc()

	q, err := g.GeneratorWS(ws)
	if err != nil {
		return nil, err
	}
	defer ws.PutMat(q)

	// Group deterministic-enabled states by (transition, delay).
	type groupKey struct {
		tr    petri.TransitionRef
		delay float64
	}
	groups := make(map[groupKey][]int)
	var maxDelay float64
	for s, sched := range g.Det {
		if sched == nil {
			continue
		}
		k := groupKey{tr: sched.Transition, delay: sched.Delay}
		groups[k] = append(groups[k], s)
		if sched.Delay > maxDelay {
			maxDelay = sched.Delay
		}
	}

	// kernel[s][s'] = embedded-chain transition probability;
	// occupancy[s][u] = expected time in u during s's regeneration period.
	kernel := ws.Mat(n, n)
	defer ws.PutMat(kernel)
	occupancy := ws.Mat(n, n)
	defer ws.PutMat(occupancy)

	// Exponential-only states: one CTMC sojourn.
	for s := 0; s < n; s++ {
		if g.Det[s] != nil {
			continue
		}
		exitRate := -q.At(s, s)
		if exitRate <= 0 {
			return nil, fmt.Errorf("%w: state %s", ErrNoTimedTransitions, g.Net.FormatMarking(g.Markings[s]))
		}
		for sp := 0; sp < n; sp++ {
			if sp == s {
				continue
			}
			if rate := q.At(s, sp); rate > 0 {
				kernel.Set(s, sp, rate/exitRate)
			}
		}
		occupancy.Set(s, s, 1/exitRate)
	}

	// Deterministic groups: subordinated CTMC with absorption outside the
	// group, truncated at the group's delay.
	for key, members := range groups {
		inGroup := make([]bool, n)
		for _, s := range members {
			inGroup[s] = true
		}
		// Absorbing generator: rows outside the group are zeroed.
		qa := ws.Mat(n, n)
		qa.CopyFrom(q)
		for s := 0; s < n; s++ {
			if !inGroup[s] {
				for j := 0; j < n; j++ {
					qa.Set(s, j, 0)
				}
			}
		}
		tm, um, err := transientPair(ws, qa, key.delay)
		ws.PutMat(qa)
		if err != nil {
			return nil, fmt.Errorf("group %q/%g: %w", g.Net.TransitionName(key.tr), key.delay, err)
		}
		for _, s := range members {
			// Occupancy: time spent in group states before absorption or
			// timer expiry. Columns outside the group accumulate parked
			// time after absorption and are not counted here (those
			// states run their own regeneration periods).
			for _, u := range members {
				occupancy.Set(s, u, um.At(s, u))
			}
			// Kernel part 1: absorbed before the timer expired.
			for sp := 0; sp < n; sp++ {
				if !inGroup[sp] {
					kernel.Add(s, sp, tm.At(s, sp))
				}
			}
			// Kernel part 2: timer expired in state u; d fires and its
			// immediate cascade branches.
			for _, u := range members {
				pu := tm.At(s, u)
				if pu <= 0 {
					continue
				}
				for _, succ := range g.Det[u].Successors {
					kernel.Add(s, succ.To, pu*succ.Prob)
				}
			}
		}
		ws.PutMat(tm)
		ws.PutMat(um)
	}

	// The deterministic firing (or absorption) can return to the same
	// state, so the embedded kernel may carry self-loops — each
	// regeneration epoch is an epoch regardless of whether the state
	// changed, and the Markov-regenerative ratio formula uses the
	// self-loop-inclusive stationary vector.
	sigma, err := embeddedStationary(ws, kernel)
	if err != nil {
		return nil, fmt.Errorf("embedded chain: %w", err)
	}
	pi := make([]float64, n)
	if err := occupancy.VecMulInto(pi, sigma); err != nil {
		return nil, err
	}
	for i, v := range pi {
		if v < 0 {
			if v < -linalg.NegativeTol {
				return nil, &linalg.SolveError{Site: "mrgp.general", Kind: linalg.FailNegative, Index: i, Value: v, Residual: -v,
					Err: fmt.Errorf("mrgp: negative occupancy %g in state %d", v, i)}
			}
			pi[i] = 0
		}
	}
	linalg.Normalize(pi)
	sol := &Solution{Pi: pi, Embedded: sigma, Delay: maxDelay}
	if err := validateSolution("mrgp.general", sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// ExpectedRewardGeneral computes the steady-state expected reward via the
// general solver.
func ExpectedRewardGeneral(g *petri.Graph, f petri.RewardFn) (float64, error) {
	sol, err := SolveGeneral(g)
	if err != nil {
		return 0, err
	}
	return linalg.Dot(sol.Pi, g.RewardVector(f))
}
