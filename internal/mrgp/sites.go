package mrgp

import "nvrel/internal/faultinject"

// Fault-injection sites of the MRGP solvers. Hooks sit behind the
// faultinject global gate (one atomic load, no allocation when chaos is
// off).
var (
	// fiPowerStall forces the sparse embedded-chain power iteration to
	// give up mid-solve with a typed not-converged error, exercising the
	// sparse -> dense recovery fallback.
	fiPowerStall = faultinject.SiteFor("mrgp.power.stall")
	// fiMrgpPanic panics inside the embedded-chain cycle loop, exercising
	// the recover-and-fall-back layer of SolveCtxWS.
	fiMrgpPanic = faultinject.SiteFor("mrgp.kernel.panic")
)
