package mrgp

import (
	"errors"
	"fmt"

	"nvrel/internal/linalg"
	"nvrel/internal/petri"
)

// Propagator computes transient distributions of a clock-synchronous DSPN
// (the same class Solve handles: one deterministic transition enabled in
// every tangible marking). Between clock ticks the state evolves as
// e^{Q s}; at each tick the branching matrix D applies, so
//
//	pi(t) = pi0 (e^{Q tau} D)^k e^{Q s},  t = k tau + s, 0 <= s < tau.
type Propagator struct {
	n     int
	delay float64
	q     *linalg.Dense
	qc    *linalg.CSR   // sparse generator for large state spaces, else nil
	tTau  *linalg.Dense // e^{Q tau}
	uTau  *linalg.Dense // Integral_0^tau e^{Q t} dt
	d     *linalg.Dense // tick branching
}

// NewPropagator validates the graph and precomputes the cycle operators.
func NewPropagator(g *petri.Graph) (*Propagator, error) {
	n := g.NumStates()
	if n == 0 {
		return nil, petri.ErrNoStates
	}
	if !g.HasDeterministic() {
		return nil, ErrNoDeterministic
	}
	delay, err := commonDelay(g)
	if err != nil {
		return nil, err
	}
	q, err := g.Generator()
	if err != nil {
		return nil, err
	}
	d := linalg.NewDense(n, n)
	for i, sched := range g.Det {
		for _, pe := range sched.Successors {
			d.Add(i, pe.To, pe.Prob)
		}
	}
	// nil workspace: the propagator retains tTau/uTau, so they must not be
	// pooled scratch.
	tTau, uTau, err := transientPair(nil, q, delay)
	if err != nil {
		return nil, err
	}
	p := &Propagator{n: n, delay: delay, q: q, tTau: tTau, uTau: uTau, d: d}
	if n >= linalg.SparseThreshold {
		p.qc = linalg.CSRFromDense(q)
	}
	return p, nil
}

// Delay returns the clock period.
func (p *Propagator) Delay() float64 { return p.delay }

// Distribution returns the state distribution at time t >= 0 starting
// from pi0 with the clock freshly armed at time zero.
func (p *Propagator) Distribution(pi0 []float64, t float64) ([]float64, error) {
	if len(pi0) != p.n {
		return nil, errors.New("mrgp: initial distribution length mismatch")
	}
	if t < 0 {
		return nil, fmt.Errorf("mrgp: negative time %g", t)
	}
	cur := append([]float64(nil), pi0...)
	for t >= p.delay {
		moved, err := p.tTau.VecMul(cur)
		if err != nil {
			return nil, err
		}
		if cur, err = p.d.VecMul(moved); err != nil {
			return nil, err
		}
		t -= p.delay
	}
	if t == 0 {
		return cur, nil
	}
	if p.qc != nil {
		var ws *linalg.Workspace
		return ws.UniformizedPowerCSR(p.qc, cur, t, 0, truncationEpsilon, nil)
	}
	return linalg.UniformizedPower(p.q, cur, t, 0, truncationEpsilon)
}

// AccumulatedReward returns Integral_0^t E[r(X_s)] ds starting from pi0,
// the expected reward accumulated over [0, t].
func (p *Propagator) AccumulatedReward(pi0, reward []float64, t float64) (float64, error) {
	if len(pi0) != p.n || len(reward) != p.n {
		return 0, errors.New("mrgp: vector length mismatch")
	}
	if t < 0 {
		return 0, fmt.Errorf("mrgp: negative time %g", t)
	}
	var total float64
	cur := append([]float64(nil), pi0...)
	for t >= p.delay {
		occ, err := p.uTau.VecMul(cur)
		if err != nil {
			return 0, err
		}
		inc, err := linalg.Dot(occ, reward)
		if err != nil {
			return 0, err
		}
		total += inc
		moved, err := p.tTau.VecMul(cur)
		if err != nil {
			return 0, err
		}
		if cur, err = p.d.VecMul(moved); err != nil {
			return 0, err
		}
		t -= p.delay
	}
	if t > 0 {
		var occ []float64
		var err error
		if p.qc != nil {
			var ws *linalg.Workspace
			occ, err = ws.UniformizedIntegralCSR(p.qc, cur, t, 0, truncationEpsilon, nil)
		} else {
			occ, err = linalg.UniformizedIntegral(p.q, cur, t, 0, truncationEpsilon)
		}
		if err != nil {
			return 0, err
		}
		inc, err := linalg.Dot(occ, reward)
		if err != nil {
			return 0, err
		}
		total += inc
	}
	return total, nil
}
