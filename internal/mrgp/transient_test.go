package mrgp

import (
	"math"
	"testing"

	"nvrel/internal/linalg"
)

// randomGenerator builds a small irreducible generator from a seed.
func randomGenerator(n int, seed uint64) *linalg.Dense {
	q := linalg.NewDense(n, n)
	s := seed*2654435769 + 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1000)/1000 + 0.05
	}
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			r := next()
			q.Set(i, j, r)
			row += r
		}
		q.Set(i, i, -row)
	}
	return q
}

// TestTransientPairMatchesRowUniformization compares the doubled matrices
// against the direct row-by-row uniformization for horizons long enough to
// force several doublings.
func TestTransientPairMatchesRowUniformization(t *testing.T) {
	for _, horizon := range []float64{0.5, 3, 40, 300} {
		q := randomGenerator(5, 7)
		tm, um, err := transientPair(nil, q, horizon)
		if err != nil {
			t.Fatalf("transientPair(%g): %v", horizon, err)
		}
		for i := 0; i < 5; i++ {
			basis := make([]float64, 5)
			basis[i] = 1
			tRow, err := linalg.UniformizedPower(q, basis, horizon, 0, 1e-13)
			if err != nil {
				t.Fatal(err)
			}
			uRow, err := linalg.UniformizedIntegral(q, basis, horizon, 0, 1e-13)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 5; j++ {
				if math.Abs(tm.At(i, j)-tRow[j]) > 1e-8 {
					t.Errorf("t=%g: T[%d,%d] = %g, want %g", horizon, i, j, tm.At(i, j), tRow[j])
				}
				if math.Abs(um.At(i, j)-uRow[j]) > 1e-7 {
					t.Errorf("t=%g: U[%d,%d] = %g, want %g", horizon, i, j, um.At(i, j), uRow[j])
				}
			}
		}
	}
}

func TestTransientPairZeroTime(t *testing.T) {
	q := randomGenerator(3, 1)
	tm, um, err := transientPair(nil, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			wantT := 0.0
			if i == j {
				wantT = 1
			}
			if tm.At(i, j) != wantT {
				t.Errorf("T[%d,%d] = %g", i, j, tm.At(i, j))
			}
			if um.At(i, j) != 0 {
				t.Errorf("U[%d,%d] = %g", i, j, um.At(i, j))
			}
		}
	}
}

func TestTransientPairFrozenChain(t *testing.T) {
	q := linalg.NewDense(2, 2) // zero generator
	tm, um, err := transientPair(nil, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tm.At(0, 0) != 1 || tm.At(0, 1) != 0 {
		t.Errorf("T = %v", tm)
	}
	if um.At(0, 0) != 5 || um.At(1, 1) != 5 {
		t.Errorf("U = %v", um)
	}
}

// TestTransientPairRowsStochastic checks the structural invariants: rows
// of T sum to one and rows of U sum to the horizon.
func TestTransientPairRowsStochastic(t *testing.T) {
	q := randomGenerator(6, 11)
	const horizon = 120.0
	tm, um, err := transientPair(nil, q, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		var ts, us float64
		for j := 0; j < 6; j++ {
			ts += tm.At(i, j)
			us += um.At(i, j)
		}
		if math.Abs(ts-1) > 1e-9 {
			t.Errorf("row %d of T sums to %g", i, ts)
		}
		if math.Abs(us-horizon) > 1e-6 {
			t.Errorf("row %d of U sums to %g, want %g", i, us, horizon)
		}
	}
}
