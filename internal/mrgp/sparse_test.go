package mrgp

import (
	"math"
	"math/rand"
	"testing"

	"nvrel/internal/linalg"
	"nvrel/internal/petri"
)

// buildClockedPopulation builds a clock-synchronous DSPN with a population
// of size modules cycling fresh -> degraded -> down -> fresh at exponential
// rates, plus a deterministic clock (period tau) whose firing restores all
// degraded modules instantly. Every tangible marking enables the clock, so
// the model is in Solve's regeneration class, and the state space grows
// quadratically with the population — enough to exercise the sparse path.
func buildClockedPopulation(t testing.TB, modules int, tau float64) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("clocked-population")
	fresh := b.AddPlace("fresh", modules)
	deg := b.AddPlace("deg", 0)
	down := b.AddPlace("down", 0)
	clock := b.AddPlace("clock", 1)
	fired := b.AddPlace("fired", 0)
	b.AddTransition(petri.Spec{
		Name: "degrade", Kind: petri.Exponential, Rate: 1.0 / 40,
		Inputs:  []petri.Arc{{Place: fresh}},
		Outputs: []petri.Arc{{Place: deg}},
	})
	b.AddTransition(petri.Spec{
		Name: "fail", Kind: petri.Exponential, Rate: 1.0 / 25,
		Inputs:  []petri.Arc{{Place: deg}},
		Outputs: []petri.Arc{{Place: down}},
	})
	b.AddTransition(petri.Spec{
		Name: "repair", Kind: petri.Exponential, Rate: 1.0 / 2,
		Inputs:  []petri.Arc{{Place: down}},
		Outputs: []petri.Arc{{Place: fresh}},
	})
	b.AddTransition(petri.Spec{
		Name: "tick", Kind: petri.Deterministic, Delay: tau,
		Inputs:  []petri.Arc{{Place: clock}},
		Outputs: []petri.Arc{{Place: fired}},
	})
	b.AddTransition(petri.Spec{
		Name: "sweep", Kind: petri.Immediate, Rate: 1, Priority: 2,
		Guard:   func(m petri.Marking) bool { return m[deg] > 0 },
		Inputs:  []petri.Arc{{Place: fired}, {Place: deg, WeightFn: func(m petri.Marking) int { return m[deg] }}},
		Outputs: []petri.Arc{{Place: clock}, {Place: fresh, WeightFn: func(m petri.Marking) int { return m[deg] }}},
	})
	b.AddTransition(petri.Spec{
		Name: "rearm", Kind: petri.Immediate, Rate: 1, Priority: 1,
		Inputs:  []petri.Arc{{Place: fired}},
		Outputs: []petri.Arc{{Place: clock}},
	})
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

// TestSolveSparseMatchesDense: the matrix-free solver must agree with the
// dense reference to 1e-12 across model shapes and clock periods.
func TestSolveSparseMatchesDense(t *testing.T) {
	tests := []struct {
		name    string
		net     *petri.Net
		modules int
	}{
		{name: "toy frequent clock", net: buildRejuvenationToy(t, 0.1, 1)},
		{name: "toy rare clock", net: buildRejuvenationToy(t, 2, 10)},
		{name: "toy paper scales", net: buildRejuvenationToy(t, 1.0/1523, 600)},
		{name: "population small", net: buildClockedPopulation(t, 4, 15)},
		{name: "population larger", net: buildClockedPopulation(t, 9, 30)},
	}
	ws := linalg.NewWorkspace()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := explore(t, tt.net)
			want, err := SolveDenseWS(ws, g)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			got, err := SolveSparseWS(ws, g)
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			if got.Delay != want.Delay {
				t.Errorf("Delay = %g, want %g", got.Delay, want.Delay)
			}
			for i := range want.Pi {
				if math.Abs(got.Pi[i]-want.Pi[i]) > 1e-12 {
					t.Errorf("Pi[%d] = %.17g, want %.17g (diff %g)", i, got.Pi[i], want.Pi[i], got.Pi[i]-want.Pi[i])
				}
				if math.Abs(got.Embedded[i]-want.Embedded[i]) > 1e-12 {
					t.Errorf("Embedded[%d] = %.17g, want %.17g", i, got.Embedded[i], want.Embedded[i])
				}
			}
		})
	}
}

// TestSolveRoutesThroughSparse: above the threshold SolveWS must produce
// the sparse result; the two paths already agree to 1e-12, so just pin the
// routing by lowering the threshold.
func TestSolveRoutesThroughSparse(t *testing.T) {
	g := explore(t, buildClockedPopulation(t, 4, 15))
	prev := linalg.SparseThreshold
	defer func() { linalg.SparseThreshold = prev }()

	linalg.SparseThreshold = 1 << 30
	dense, err := SolveWS(nil, g)
	if err != nil {
		t.Fatalf("dense route: %v", err)
	}
	linalg.SparseThreshold = 1
	sparse, err := SolveWS(nil, g)
	if err != nil {
		t.Fatalf("sparse route: %v", err)
	}
	var diff float64
	for i := range dense.Pi {
		diff = math.Max(diff, math.Abs(dense.Pi[i]-sparse.Pi[i]))
	}
	if diff > 1e-12 {
		t.Errorf("routes disagree by %g", diff)
	}
}

// TestTransientPairCSRMatchesDense: the CSR-subordinated series must match
// the dense scaling-and-doubling pair to 1e-12 entrywise.
func TestTransientPairCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ws := linalg.NewWorkspace()
	for rep := 0; rep < 8; rep++ {
		n := 2 + rng.Intn(25)
		q := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			add := func(j int) {
				rate := math.Pow(10, -2+3*rng.Float64())
				q.Add(i, j, rate)
				q.Add(i, i, -rate)
			}
			add((i + 1) % n)
			if j := rng.Intn(n); j != i {
				add(j)
			}
		}
		for _, horizon := range []float64{0.5, 20, 400} {
			tmD, umD, err := transientPairDense(ws, q, horizon)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			tmS, umS, err := transientPairCSR(ws, linalg.CSRFromDense(q), horizon)
			if err != nil {
				t.Fatalf("csr: %v", err)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(tmS.At(i, j) - tmD.At(i, j)); d > 1e-12 {
						t.Fatalf("rep %d t=%g: T[%d][%d] differs by %g", rep, horizon, i, j, d)
					}
					if d := math.Abs(umS.At(i, j) - umD.At(i, j)); d > 1e-12*(1+horizon) {
						t.Fatalf("rep %d t=%g: U[%d][%d] differs by %g", rep, horizon, i, j, d)
					}
				}
			}
			ws.PutMat(tmD)
			ws.PutMat(umD)
			ws.PutMat(tmS)
			ws.PutMat(umS)
		}
	}
}
