package nvp

import (
	"math"
	"testing"

	"nvrel/internal/mrgp"
)

// TestSparseSolversMatchDenseOnPaperModels: the acceptance bar of the
// sparse engine — on the paper's own configurations (and N-scaled
// variants of them) the sparse and dense steady-state paths agree to
// 1e-12 elementwise.
func TestSparseSolversMatchDenseOnPaperModels(t *testing.T) {
	t.Run("no-rejuvenation", func(t *testing.T) {
		for _, n := range []int{4, 6, 12} {
			p := DefaultFourVersion()
			p.N = n
			m, err := BuildNoRejuvenation(p)
			if err != nil {
				t.Fatalf("N=%d: %v", n, err)
			}
			want, err := m.Graph.SteadyStateDenseWS(nil)
			if err != nil {
				t.Fatalf("N=%d dense: %v", n, err)
			}
			got, err := m.Graph.SteadyStateSparseWS(nil)
			if err != nil {
				t.Fatalf("N=%d sparse: %v", n, err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Errorf("N=%d: pi[%d] = %.17g, want %.17g", n, i, got[i], want[i])
				}
			}
		}
	})
	t.Run("with-rejuvenation", func(t *testing.T) {
		for _, n := range []int{6, 10} {
			p := DefaultSixVersion()
			p.N = n
			m, err := BuildWithRejuvenation(p)
			if err != nil {
				t.Fatalf("N=%d: %v", n, err)
			}
			want, err := mrgp.SolveDenseWS(nil, m.Graph)
			if err != nil {
				t.Fatalf("N=%d dense: %v", n, err)
			}
			got, err := mrgp.SolveSparseWS(nil, m.Graph)
			if err != nil {
				t.Fatalf("N=%d sparse: %v", n, err)
			}
			for i := range want.Pi {
				if math.Abs(got.Pi[i]-want.Pi[i]) > 1e-12 {
					t.Errorf("N=%d: Pi[%d] = %.17g, want %.17g", n, i, got.Pi[i], want.Pi[i])
				}
			}
		}
	})
}
