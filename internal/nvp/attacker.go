package nvp

import (
	"fmt"
	"math"

	"nvrel/internal/petri"
)

// AttackerParams models a bursty adversary as a two-state Markov-modulated
// compromise process: the attacker alternates between an active campaign
// phase and a quiet phase, and the module-compromise transition Tc fires
// at a different rate in each phase. The paper's threat model assumes a
// constant attack intensity (assumption 1, "attacks and faults can
// continuously happen"); this extension asks how burstiness at the same
// average intensity changes the comparison.
type AttackerParams struct {
	// MeanTimeOn is the mean duration of an attack campaign (s).
	MeanTimeOn float64
	// MeanTimeOff is the mean quiet time between campaigns (s).
	MeanTimeOff float64
	// OnRate is the compromise rate (1/s) while the campaign is active.
	OnRate float64
	// OffRate is the compromise rate (1/s) while quiet (often zero: pure
	// attack-driven compromise).
	OffRate float64
}

// Validate checks the attacker parameters.
func (a AttackerParams) Validate() error {
	check := func(name string, v float64, allowZero bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (!allowZero && v == 0) {
			return fmt.Errorf("nvp: attacker %s = %g invalid", name, v)
		}
		return nil
	}
	if err := check("MeanTimeOn", a.MeanTimeOn, false); err != nil {
		return err
	}
	if err := check("MeanTimeOff", a.MeanTimeOff, false); err != nil {
		return err
	}
	if err := check("OnRate", a.OnRate, true); err != nil {
		return err
	}
	if err := check("OffRate", a.OffRate, true); err != nil {
		return err
	}
	if a.OnRate == 0 && a.OffRate == 0 {
		return fmt.Errorf("nvp: attacker with zero rates in both phases never compromises")
	}
	return nil
}

// AverageRate returns the long-run average compromise rate of the
// modulated process.
func (a AttackerParams) AverageRate() float64 {
	on := a.MeanTimeOn / (a.MeanTimeOn + a.MeanTimeOff)
	return on*a.OnRate + (1-on)*a.OffRate
}

// BurstyAttacker builds attacker parameters with the given duty cycle and
// phase-cycle length whose average compromise rate equals averageRate:
// the campaign phase carries the whole intensity, the quiet phase none.
func BurstyAttacker(averageRate, dutyCycle, cycleLength float64) (AttackerParams, error) {
	if dutyCycle <= 0 || dutyCycle > 1 || math.IsNaN(dutyCycle) {
		return AttackerParams{}, fmt.Errorf("nvp: duty cycle %g must lie in (0,1]", dutyCycle)
	}
	if averageRate <= 0 || cycleLength <= 0 {
		return AttackerParams{}, fmt.Errorf("nvp: average rate and cycle length must be positive")
	}
	if dutyCycle == 1 {
		// Degenerate: always on. Keep a tiny off phase so the modulating
		// chain stays irreducible, with matching rates so dynamics are
		// exactly constant.
		return AttackerParams{
			MeanTimeOn:  cycleLength,
			MeanTimeOff: cycleLength,
			OnRate:      averageRate,
			OffRate:     averageRate,
		}, nil
	}
	return AttackerParams{
		MeanTimeOn:  dutyCycle * cycleLength,
		MeanTimeOff: (1 - dutyCycle) * cycleLength,
		OnRate:      averageRate / dutyCycle,
		OffRate:     0,
	}, nil
}

// attachAttacker adds the modulating places and phase transitions to a
// builder and returns the campaign-phase place for rate functions.
func attachAttacker(b *petri.Builder, a AttackerParams) petri.PlaceRef {
	aon := b.AddPlace("Aon", 0)
	aoff := b.AddPlace("Aoff", 1)
	b.AddTransition(petri.Spec{
		Name: "Tstart", Kind: petri.Exponential, Rate: 1 / a.MeanTimeOff,
		Inputs:  []petri.Arc{{Place: aoff}},
		Outputs: []petri.Arc{{Place: aon}},
	})
	b.AddTransition(petri.Spec{
		Name: "Tstop", Kind: petri.Exponential, Rate: 1 / a.MeanTimeOn,
		Inputs:  []petri.Arc{{Place: aon}},
		Outputs: []petri.Arc{{Place: aoff}},
	})
	return aon
}

// BuildNoRejuvenationAttacked is BuildNoRejuvenation with the modulated
// compromise process replacing the constant-rate Tc.
func BuildNoRejuvenationAttacked(p Params, a AttackerParams) (*Model, error) {
	m, err := buildAttacked(p, a, false)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// BuildWithRejuvenationAttacked is BuildWithRejuvenation with the
// modulated compromise process replacing the constant-rate Tc.
func BuildWithRejuvenationAttacked(p Params, a AttackerParams) (*Model, error) {
	return buildAttacked(p, a, true)
}

// buildAttacked builds either architecture, attaching the attacker first
// and overriding Tc with the phase-dependent rate.
func buildAttacked(p Params, a AttackerParams, rejuvenation bool) (*Model, error) {
	if err := p.Validate(rejuvenation); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	override := func(b *petri.Builder, pmh, pmc petri.PlaceRef) {
		aon := attachAttacker(b, a)
		b.AddTransition(petri.Spec{
			Name: "Tc", Kind: petri.Exponential,
			RateFn: func(m petri.Marking) float64 {
				if m[aon] > 0 {
					return a.OnRate
				}
				return a.OffRate
			},
			Inputs:  []petri.Arc{{Place: pmh}},
			Outputs: []petri.Arc{{Place: pmc}},
		})
	}
	if rejuvenation {
		return buildRejuvenationNet(p, override)
	}
	return buildPlainNet(p, override)
}
