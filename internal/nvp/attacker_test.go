package nvp

import (
	"math"
	"testing"
)

func TestBurstyAttackerConservesAverageRate(t *testing.T) {
	const (
		avg   = 1.0 / 1523
		cycle = 3000.0
	)
	for _, duty := range []float64{1, 0.5, 0.2, 0.05} {
		a, err := BurstyAttacker(avg, duty, cycle)
		if err != nil {
			t.Fatalf("duty %g: %v", duty, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("duty %g: Validate: %v", duty, err)
		}
		if got := a.AverageRate(); math.Abs(got-avg) > 1e-15 {
			t.Errorf("duty %g: average rate %g, want %g", duty, got, avg)
		}
	}
}

func TestBurstyAttackerValidation(t *testing.T) {
	if _, err := BurstyAttacker(0.001, 0, 3000); err == nil {
		t.Error("zero duty accepted")
	}
	if _, err := BurstyAttacker(0.001, 1.5, 3000); err == nil {
		t.Error("duty above one accepted")
	}
	if _, err := BurstyAttacker(0, 0.5, 3000); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := BurstyAttacker(0.001, 0.5, 0); err == nil {
		t.Error("zero cycle accepted")
	}
}

func TestAttackerParamsValidate(t *testing.T) {
	good := AttackerParams{MeanTimeOn: 100, MeanTimeOff: 200, OnRate: 0.01}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []AttackerParams{
		{MeanTimeOn: 0, MeanTimeOff: 200, OnRate: 0.01},
		{MeanTimeOn: 100, MeanTimeOff: 0, OnRate: 0.01},
		{MeanTimeOn: 100, MeanTimeOff: 200},
		{MeanTimeOn: 100, MeanTimeOff: 200, OnRate: math.NaN()},
		{MeanTimeOn: 100, MeanTimeOff: 200, OnRate: -1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, a)
		}
	}
}

// TestAttackedDutyOneMatchesBaseline: an always-on attacker at the default
// rate is exactly the paper's constant-intensity model.
func TestAttackedDutyOneMatchesBaseline(t *testing.T) {
	a, err := BurstyAttacker(1.0/1523, 1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, rejuv := range []bool{false, true} {
		var (
			attacked, baseline *Model
		)
		if rejuv {
			attacked, err = BuildWithRejuvenationAttacked(DefaultSixVersion(), a)
			if err != nil {
				t.Fatal(err)
			}
			baseline, err = BuildWithRejuvenation(DefaultSixVersion())
		} else {
			attacked, err = BuildNoRejuvenationAttacked(DefaultFourVersion(), a)
			if err != nil {
				t.Fatal(err)
			}
			baseline, err = BuildNoRejuvenation(DefaultFourVersion())
		}
		if err != nil {
			t.Fatal(err)
		}
		ea, err := attacked.ExpectedPaperReliability()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := baseline.ExpectedPaperReliability()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ea-eb) > 1e-9 {
			t.Errorf("rejuv=%v: attacked duty-1 %.9f != baseline %.9f", rejuv, ea, eb)
		}
	}
}

func TestAttackedBurstinessDirections(t *testing.T) {
	// The headline E18 finding: at constant average intensity, burstiness
	// helps the plain system and hurts the rejuvenated one.
	steady, err := BurstyAttacker(1.0/1523, 1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := BurstyAttacker(1.0/1523, 0.1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	e4 := func(a AttackerParams) float64 {
		m, err := BuildNoRejuvenationAttacked(DefaultFourVersion(), a)
		if err != nil {
			t.Fatal(err)
		}
		e, err := m.ExpectedPaperReliability()
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e6 := func(a AttackerParams) float64 {
		m, err := BuildWithRejuvenationAttacked(DefaultSixVersion(), a)
		if err != nil {
			t.Fatal(err)
		}
		e, err := m.ExpectedPaperReliability()
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if e4(bursty) <= e4(steady) {
		t.Errorf("burstiness should help the four-version system: %g vs %g", e4(bursty), e4(steady))
	}
	if e6(bursty) >= e6(steady) {
		t.Errorf("burstiness should hurt the six-version system: %g vs %g", e6(bursty), e6(steady))
	}
}

func TestAttackedRejectsBadInputs(t *testing.T) {
	good, err := BurstyAttacker(0.001, 0.5, 3000)
	if err != nil {
		t.Fatal(err)
	}
	badParams := DefaultFourVersion()
	badParams.P = 7
	if _, err := BuildNoRejuvenationAttacked(badParams, good); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := BuildWithRejuvenationAttacked(DefaultSixVersion(), AttackerParams{}); err == nil {
		t.Error("zero attacker accepted")
	}
}
