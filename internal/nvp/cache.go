package nvp

import (
	"container/list"
	"sync"

	"nvrel/internal/petri"
)

// ModelCache memoizes reachability-graph exploration across builds that
// share net structure. Sweeping a rate or delay parameter (every figure in
// the evaluation does exactly that) re-explores an identical topology per
// point; the cache explores once per structural key and re-stamps the
// marking-dependent rates for each subsequent point via petri.Restamp,
// which is bit-identical to a fresh exploration.
//
// The structural key is (architecture, N, R, clock policy, firing
// semantics): those are the parameters that shape the net — places, arc
// weights, guards and enabled sets — while F and the reliability mix enter
// only the reliability function and the mean times and clock interval enter
// only the stamped rates and delays. Attacker-modified builds (tcOverride)
// change the transition set and deliberately bypass the cache.
//
// A ModelCache is safe for concurrent use. A nil *ModelCache is valid and
// simply builds from scratch every time.
//
// The cache is bounded: under serve's parameter-mix traffic every distinct
// (architecture, N, R, clock, semantics) shape is a new exploration, and an
// unbounded map would grow for the life of the daemon. Least-recently-used
// shapes are evicted past the bound (nvp.cache.evict counts them); an
// evicted shape is simply re-explored on its next request.
type ModelCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // of cacheKey; front = most recently used
	entries map[cacheKey]*cacheEntry
}

type cacheKey struct {
	arch  Architecture
	n, r  int
	clock ClockPolicy
	sem   ServerSemantics
}

type cacheEntry struct {
	once  sync.Once
	graph *petri.Graph
	err   error
	elem  *list.Element
}

// defaultModelCacheLimit bounds NewModelCache. Each entry is one explored
// reachability graph — the big ones are hundreds of thousands of states —
// so 64 live structural shapes is already far beyond any sweep while
// keeping a worst-case daemon footprint bounded.
const defaultModelCacheLimit = 64

// NewModelCache returns an empty cache holding at most 64 explored
// topologies.
func NewModelCache() *ModelCache {
	return NewModelCacheBound(defaultModelCacheLimit)
}

// NewModelCacheBound returns an empty cache holding at most max explored
// topologies (max <= 0 means unbounded).
func NewModelCacheBound(max int) *ModelCache {
	return &ModelCache{max: max, order: list.New(), entries: make(map[cacheKey]*cacheEntry)}
}

// BuildNoRejuvenation is the caching equivalent of the package-level
// BuildNoRejuvenation.
func (c *ModelCache) BuildNoRejuvenation(p Params) (*Model, error) {
	if c == nil {
		return BuildNoRejuvenation(p)
	}
	if err := p.Validate(false); err != nil {
		return nil, err
	}
	net, refs, err := assemblePlainNet(p, nil)
	if err != nil {
		return nil, err
	}
	key := cacheKey{arch: NoRejuvenation, n: p.N, r: p.R, clock: p.Clock, sem: p.semantics()}
	g, err := c.graphFor(key, net)
	if err != nil {
		return nil, err
	}
	return &Model{
		Arch: NoRejuvenation, Params: p, Net: net, Graph: g,
		pmh: refs.pmh, pmc: refs.pmc, pmf: refs.pmf, pmr: -1,
	}, nil
}

// BuildWithRejuvenation is the caching equivalent of the package-level
// BuildWithRejuvenation.
func (c *ModelCache) BuildWithRejuvenation(p Params) (*Model, error) {
	if c == nil {
		return BuildWithRejuvenation(p)
	}
	if err := p.Validate(true); err != nil {
		return nil, err
	}
	net, refs, err := assembleRejuvenationNet(p, nil)
	if err != nil {
		return nil, err
	}
	key := cacheKey{arch: WithRejuvenation, n: p.N, r: p.R, clock: p.Clock, sem: p.semantics()}
	g, err := c.graphFor(key, net)
	if err != nil {
		return nil, err
	}
	return &Model{
		Arch: WithRejuvenation, Params: p, Net: net, Graph: g,
		pmh: refs.pmh, pmc: refs.pmc, pmf: refs.pmf, pmr: refs.pmr,
	}, nil
}

// graphFor returns a reachability graph for net, exploring on the first
// request per key and re-stamping the cached topology afterwards. The
// first caller's graph is returned as explored, so the cached path never
// differs from the direct one.
func (c *ModelCache) graphFor(key cacheKey, net *petri.Net) (*petri.Graph, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.order.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{}
		e.elem = c.order.PushFront(key)
		c.entries[key] = e
		for c.max > 0 && c.order.Len() > c.max {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(cacheKey))
			metCacheEvicts.Inc()
		}
	}
	c.mu.Unlock()
	explored := false
	e.once.Do(func() {
		explored = true
		e.graph, e.err = petri.Explore(net, petri.ExploreOptions{})
	})
	if explored {
		metCacheMisses.Inc()
	} else {
		metCacheHits.Inc()
	}
	if e.err != nil {
		return nil, e.err
	}
	if e.graph.Net == net {
		return e.graph, nil
	}
	return e.graph.Restamp(net)
}
