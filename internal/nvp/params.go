// Package nvp builds and solves the paper's N-version perception-system
// models: the DSPN of Figure 2(a) (N ML modules subject to compromise,
// failure, and repair, without rejuvenation) and the DSPN of Figures
// 2(b)+(c) (the same system with a deterministic rejuvenation clock). It
// combines the petri, ctmc/mrgp, and reliability packages into the paper's
// expected output reliability E[R_sys] = sum pi(i,j,k) R(i,j,k).
package nvp

import (
	"errors"
	"fmt"
	"math"

	"nvrel/internal/reliability"
)

// ServerSemantics selects how the exponential module transitions (Tc, Tf,
// Tr) scale with the number of tokens in their input place.
type ServerSemantics int

const (
	// SingleServer fires at a constant rate while at least one token is
	// present (TimeNET's default; reproduces the paper's numbers).
	SingleServer ServerSemantics = iota + 1
	// PerToken fires at rate proportional to the token count
	// (infinite-server semantics: N independent modules).
	PerToken
)

// String returns the semantics name.
func (s ServerSemantics) String() string {
	switch s {
	case SingleServer:
		return "single-server"
	case PerToken:
		return "per-token"
	default:
		return fmt.Sprintf("ServerSemantics(%d)", int(s))
	}
}

// ClockPolicy selects when the rejuvenation clock restarts after firing.
// The paper's Table I guard for Trt is partially garbled (see DESIGN.md);
// both defensible readings are implemented.
type ClockPolicy int

const (
	// ClockFreeRunning restarts the clock as soon as the rejuvenation
	// wave is dispatched (guard g3 read as "#Pmr + #Pac > 0", the printed
	// form): ticks arrive every RejuvenationInterval. This is the default
	// and reproduces the paper's numbers most closely.
	ClockFreeRunning ClockPolicy = iota
	// ClockWaitsForWave restarts the clock only after the dispatched wave
	// completes (guard g3 read as "#Pmr + #Pac = 0"): consecutive ticks
	// are spaced RejuvenationInterval plus the wave duration. This model
	// leaves the synchronous regeneration class and is solved with the
	// general Markov-regenerative solver.
	ClockWaitsForWave
)

// String returns the policy name.
func (c ClockPolicy) String() string {
	switch c {
	case ClockFreeRunning:
		return "free-running"
	case ClockWaitsForWave:
		return "waits-for-wave"
	default:
		return fmt.Sprintf("ClockPolicy(%d)", int(c))
	}
}

// Params collects the model inputs of Table II.
type Params struct {
	// N is the number of ML module versions.
	N int
	// F is the number of tolerated compromised modules.
	F int
	// R is the number of modules that may rejuvenate or recover
	// simultaneously (only used by the rejuvenation architecture).
	R int

	// Alpha is the error-probability dependency between healthy modules.
	Alpha float64
	// P is the output error probability of a healthy module.
	P float64
	// PPrime is the output error probability of a compromised module.
	PPrime float64

	// MeanTimeToCompromise is 1/lambda_c, the mean time for a fault or
	// attack to degrade a healthy module (transition Tc).
	MeanTimeToCompromise float64
	// MeanTimeToFailure is 1/lambda, the mean time for a compromised
	// module to stop entirely (transition Tf).
	MeanTimeToFailure float64
	// MeanTimeToRepair is 1/mu, the mean time to restore a failed module
	// (transition Tr).
	MeanTimeToRepair float64
	// MeanTimeToRejuvenate is the per-module base of 1/mu_r; the effective
	// mean is MeanTimeToRejuvenate x #Pmr (transition Trj).
	MeanTimeToRejuvenate float64
	// RejuvenationInterval is 1/gamma, the deterministic clock period
	// (transition Trc).
	RejuvenationInterval float64

	// Semantics selects the firing semantics of Tc/Tf/Tr. The zero value
	// means SingleServer.
	Semantics ServerSemantics

	// Clock selects the rejuvenation-clock restart policy (only used by
	// the rejuvenation architecture). The zero value is ClockFreeRunning.
	Clock ClockPolicy
}

// Table II defaults.
const (
	defaultAlpha                = 0.5
	defaultP                    = 0.08
	defaultPPrime               = 0.5
	defaultMeanTimeToCompromise = 1523
	defaultMeanTimeToFailure    = 3000
	defaultMeanTimeToRepair     = 3
	defaultMeanTimeToRejuvenate = 3
	defaultRejuvenationInterval = 600
)

// DefaultFourVersion returns the Table II parameters for the four-version
// system without rejuvenation (n = 4, f = 1).
func DefaultFourVersion() Params {
	p := defaults()
	p.N, p.F, p.R = 4, 1, 0
	return p
}

// DefaultSixVersion returns the Table II parameters for the six-version
// system with rejuvenation (n = 6, f = 1, r = 1).
func DefaultSixVersion() Params {
	p := defaults()
	p.N, p.F, p.R = 6, 1, 1
	return p
}

func defaults() Params {
	return Params{
		Alpha:                defaultAlpha,
		P:                    defaultP,
		PPrime:               defaultPPrime,
		MeanTimeToCompromise: defaultMeanTimeToCompromise,
		MeanTimeToFailure:    defaultMeanTimeToFailure,
		MeanTimeToRepair:     defaultMeanTimeToRepair,
		MeanTimeToRejuvenate: defaultMeanTimeToRejuvenate,
		RejuvenationInterval: defaultRejuvenationInterval,
		Semantics:            SingleServer,
	}
}

// Reliability returns the error-probability parameters.
func (p Params) Reliability() reliability.Params {
	return reliability.Params{P: p.P, PPrime: p.PPrime, Alpha: p.Alpha}
}

// Scheme returns the BFT voting scheme implied by N, F, R.
func (p Params) Scheme() reliability.Scheme {
	return reliability.Scheme{N: p.N, F: p.F, R: p.R}
}

// Validate checks structural and timing parameters. needRejuvenation adds
// the constraints of the clocked architecture.
func (p Params) Validate(needRejuvenation bool) error {
	var errs []error
	if p.N <= 0 {
		errs = append(errs, fmt.Errorf("nvp: N = %d must be positive", p.N))
	}
	if err := p.Reliability().Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := p.Scheme().Validate(); err != nil {
		errs = append(errs, err)
	}
	checkTime := func(name string, v float64) {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			errs = append(errs, fmt.Errorf("nvp: %s = %g must be positive and finite", name, v))
		}
	}
	checkTime("MeanTimeToCompromise", p.MeanTimeToCompromise)
	checkTime("MeanTimeToFailure", p.MeanTimeToFailure)
	checkTime("MeanTimeToRepair", p.MeanTimeToRepair)
	if needRejuvenation {
		checkTime("MeanTimeToRejuvenate", p.MeanTimeToRejuvenate)
		checkTime("RejuvenationInterval", p.RejuvenationInterval)
		if p.R <= 0 {
			errs = append(errs, fmt.Errorf("nvp: rejuvenation architecture requires R > 0, got %d", p.R))
		}
	}
	switch p.Semantics {
	case SingleServer, PerToken, 0:
	default:
		errs = append(errs, fmt.Errorf("nvp: unknown semantics %d", p.Semantics))
	}
	switch p.Clock {
	case ClockFreeRunning, ClockWaitsForWave:
	default:
		errs = append(errs, fmt.Errorf("nvp: unknown clock policy %d", p.Clock))
	}
	return errors.Join(errs...)
}

// semantics returns the effective server semantics.
func (p Params) semantics() ServerSemantics {
	if p.Semantics == 0 {
		return SingleServer
	}
	return p.Semantics
}
