package nvp

import (
	"errors"

	"nvrel/internal/ctmc"
)

// ErrOutageUnsupported is returned when exact outage analysis is requested
// for the clocked architecture; use the simulator (percept) there.
var ErrOutageUnsupported = errors.New("nvp: exact outage analysis requires the architecture without rejuvenation")

// MeanTimeToVoterOutage returns the expected time, starting from the
// all-healthy state, until the voter first cannot reach a decision: fewer
// than 2f+1 (or 2f+r+1) modules remain operational, i.e. the system first
// enters a state with k > N - threshold. This is the architecture's
// MTTF-style safety metric — before this instant every output is either
// correct, erroneous, or deliberately skipped; after it the voter is
// structurally silent until a repair completes.
//
// Exact analysis is available for the CTMC architecture (no rejuvenation).
// The clocked architecture needs the deterministic timer in the hitting
// analysis; estimate it with the percept simulator instead.
func (m *Model) MeanTimeToVoterOutage() (float64, error) {
	if m.Arch == WithRejuvenation {
		return 0, ErrOutageUnsupported
	}
	maxDown := m.Params.Scheme().MaxDown()
	target := make([]bool, m.Graph.NumStates())
	reachable := false
	for s, mk := range m.Graph.Markings {
		_, _, k := m.classify(mk)
		if k > maxDown {
			target[s] = true
			reachable = true
		}
	}
	if !reachable {
		return 0, errors.New("nvp: no voter-outage states are reachable in this model")
	}
	q, err := m.Graph.Generator()
	if err != nil {
		return 0, err
	}
	chain, err := ctmc.FromGenerator(q)
	if err != nil {
		return 0, err
	}
	fp, err := ctmc.NewFirstPassage(chain, target)
	if err != nil {
		return 0, err
	}
	return fp.MeanTimeFrom(m.Graph.Initial)
}
