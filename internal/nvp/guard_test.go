package nvp

import (
	"testing"

	"nvrel/internal/faultinject"
	"nvrel/internal/linalg"
)

// TestSolveGuardsResultNaN: the top-level result guard catches a NaN
// injected into the distribution after every solver-level guard passed —
// no reliability number can ever be computed from a poisoned vector.
func TestSolveGuardsResultNaN(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	if err := faultinject.Arm(faultinject.Fault{Site: "nvp.result.nan"}, 1); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable()
	defer func() {
		faultinject.Disable()
		faultinject.Reset()
	}()
	_, err = m.Solve()
	se, ok := linalg.AsSolveError(err)
	if !ok || se.Kind != linalg.FailNaN || se.Site != "nvp.solve" {
		t.Fatalf("poisoned result gave %v, want typed NaN at nvp.solve", err)
	}
}
