package nvp

import (
	"errors"
	"math"
	"testing"

	"nvrel/internal/reliability"
)

func TestSurvivalProbabilityBounds(t *testing.T) {
	for _, rejuv := range []bool{false, true} {
		m := buildArch(t, rejuv)
		rf, err := m.PaperReliability()
		if err != nil {
			t.Fatal(err)
		}
		prev := 1.0
		for _, window := range []float64{0, 600, 3600, 24 * 3600} {
			p, err := m.SurvivalProbability(rf, 1.0/120, window)
			if err != nil {
				t.Fatalf("rejuv=%v window=%g: %v", rejuv, window, err)
			}
			if p < 0 || p > 1+1e-12 {
				t.Errorf("rejuv=%v: P(survive %g) = %g outside [0,1]", rejuv, window, p)
			}
			if p > prev+1e-12 {
				t.Errorf("rejuv=%v: survival not non-increasing at %g: %g > %g", rejuv, window, p, prev)
			}
			prev = p
		}
	}
}

func TestSurvivalAtZeroWindowIsOne(t *testing.T) {
	m := buildArch(t, false)
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.SurvivalProbability(rf, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("P(survive 0) = %g", p)
	}
}

func TestSurvivalZeroRequestRateIsOne(t *testing.T) {
	m := buildArch(t, true)
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.SurvivalProbability(rf, 0, 5e4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("P(survive with no requests) = %g", p)
	}
}

func TestSurvivalRejuvenationHelps(t *testing.T) {
	m4 := buildArch(t, false)
	rf4, err := m4.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	m6 := buildArch(t, true)
	rf6, err := m6.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	const (
		rate   = 1.0 / 300
		window = 24 * 3600.0
	)
	p4, err := m4.SurvivalProbability(rf4, rate, window)
	if err != nil {
		t.Fatal(err)
	}
	p6, err := m6.SurvivalProbability(rf6, rate, window)
	if err != nil {
		t.Fatal(err)
	}
	if p6 <= p4 {
		t.Errorf("six-version survival %g should beat four-version %g", p6, p4)
	}
}

func TestSurvivalValidation(t *testing.T) {
	m := buildArch(t, false)
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SurvivalProbability(rf, -1, 10); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := m.SurvivalProbability(rf, 1, -10); err == nil {
		t.Error("negative window accepted")
	}
	p := DefaultSixVersion()
	p.Clock = ClockWaitsForWave
	waits, err := BuildWithRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	rf6, err := waits.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waits.SurvivalProbability(rf6, 1, 10); !errors.Is(err, ErrTransientUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestErrorProbabilitySkipStatesAreSafe(t *testing.T) {
	m := buildArch(t, false)
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	perr := m.ErrorProbability(rf)
	// Fewer than 3 operational modules: the voter always skips.
	if got := perr(1, 1, 2); got != 0 {
		t.Errorf("perr(1,1,2) = %g, want 0", got)
	}
	if got := perr(0, 0, 4); got != 0 {
		t.Errorf("perr(0,0,4) = %g, want 0", got)
	}
	// Fully healthy: 1 - R_{4,0,0} = 0.05 at the defaults.
	if got := perr(4, 0, 0); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("perr(4,0,0) = %g, want 0.05", got)
	}
}

// TestSurvivalShortWindowClosedForm: over a window much shorter than any
// lifecycle time scale the system stays in the all-healthy state, so
// survival is approximately exp(-rate * perr(healthy) * t).
func TestSurvivalShortWindowClosedForm(t *testing.T) {
	m := buildArch(t, false)
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	const (
		rate   = 0.5
		window = 10.0
	)
	got, err := m.SurvivalProbability(rf, rate, window)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-rate * 0.05 * window)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("short-window survival = %.6f, want ~%.6f", got, want)
	}
}

func buildArch(t *testing.T, rejuv bool) *Model {
	t.Helper()
	if rejuv {
		m, err := BuildWithRejuvenation(DefaultSixVersion())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerativeReliabilityAvailable(t *testing.T) {
	// The generative reliability model plugs into the same evaluation
	// path as the others.
	m := buildArch(t, true)
	rf, err := reliability.Generative(m.Params.Reliability(), m.Params.Scheme())
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.ExpectedReliability(rf)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0.9 || e >= 1 {
		t.Errorf("generative E[R_6v] = %g out of expected band", e)
	}
}
