package nvp

import (
	"fmt"

	"nvrel/internal/linalg"
	"nvrel/internal/reliability"
)

// ErrorProbability returns the per-state probability that one perception
// request produces an erroneous voted output. In states with at least
// Threshold operational modules it is 1 - R(i,j,k) (the paper's R is
// exactly 1 - P(error)); with fewer operational modules the voter can
// never gather Threshold wrong outputs either, so every output is safely
// skipped and the error probability is zero.
func (m *Model) ErrorProbability(rf reliability.StateFn) func(i, j, k int) float64 {
	threshold := m.Params.Scheme().Threshold()
	return func(i, j, k int) float64 {
		if i+j < threshold {
			return 0
		}
		return 1 - rf(i, j, k)
	}
}

// SurvivalProbability returns P(no erroneous voted output during [0, t]):
// perception requests arrive as a Poisson process with the given rate,
// each request is erroneous with the state-dependent probability
// ErrorProbability, and the system starts all-healthy with a freshly
// armed clock.
//
// Mathematically this is the Feynman-Kac functional
// E[exp(-Integral_0^t requestRate * perr(X_s) ds)], computed by
// propagating through the defective generator Q' = Q - diag(requestRate *
// perr): the row mass lost under e^{Q' t} is exactly the probability an
// error event occurred. For the clocked architecture the propagation
// alternates e^{Q' tau} with the tick branching matrix.
func (m *Model) SurvivalProbability(rf reliability.StateFn, requestRate, t float64) (float64, error) {
	if requestRate < 0 {
		return 0, fmt.Errorf("nvp: request rate %g must be non-negative", requestRate)
	}
	if t < 0 {
		return 0, fmt.Errorf("nvp: window %g must be non-negative", t)
	}
	if m.Arch == WithRejuvenation && m.Params.Clock == ClockWaitsForWave {
		return 0, ErrTransientUnsupported
	}

	perr := m.ErrorProbability(rf)
	q, err := m.Graph.Generator()
	if err != nil {
		return 0, err
	}
	// Defective generator: subtract the error-event intensity on the
	// diagonal. Off-diagonals stay non-negative, so uniformization applies
	// unchanged; the lost row mass is the absorbed (error) probability.
	n := m.Graph.NumStates()
	for s, mk := range m.Graph.Markings {
		i, j, k := m.classify(mk)
		q.Add(s, s, -requestRate*perr(i, j, k))
	}

	cur := append([]float64(nil), m.Graph.Initial...)
	if m.Arch == WithRejuvenation {
		// Tick branching matrix.
		d := linalg.NewDense(n, n)
		for s, sched := range m.Graph.Det {
			if sched == nil {
				return 0, fmt.Errorf("nvp: state %d lacks a clock schedule", s)
			}
			for _, pe := range sched.Successors {
				d.Add(s, pe.To, pe.Prob)
			}
		}
		tau := m.Params.RejuvenationInterval
		for t >= tau {
			moved, err := linalg.UniformizedPower(q, cur, tau, 0, 1e-12)
			if err != nil {
				return 0, err
			}
			if cur, err = d.VecMul(moved); err != nil {
				return 0, err
			}
			t -= tau
		}
	}
	if t > 0 {
		if cur, err = linalg.UniformizedPower(q, cur, t, 0, 1e-12); err != nil {
			return 0, err
		}
	}
	return linalg.Sum(cur), nil
}
