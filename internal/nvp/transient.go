package nvp

import (
	"errors"
	"fmt"

	"nvrel/internal/linalg"
	"nvrel/internal/mrgp"
	"nvrel/internal/reliability"
)

// ErrTransientUnsupported is returned for model variants without a
// transient solver (currently the waits-for-wave clock policy).
var ErrTransientUnsupported = errors.New("nvp: transient analysis unsupported for this clock policy")

// TransientReliability returns E[R(t)] at each requested time, starting
// from the all-healthy initial marking with a freshly armed clock. It
// shows how output reliability degrades from a pristine deployment toward
// the steady state the paper reports.
func (m *Model) TransientReliability(rf reliability.StateFn, times []float64) ([]float64, error) {
	if m.Arch == WithRejuvenation && m.Params.Clock == ClockWaitsForWave {
		return nil, ErrTransientUnsupported
	}
	reward := m.rewardVector(rf)
	init := m.Graph.Initial

	out := make([]float64, len(times))
	switch {
	case m.Arch != WithRejuvenation:
		// Large state spaces propagate through the matrix-free CSR series;
		// small ones keep the dense kernel and its bit-exact seed behavior.
		var (
			q   *linalg.Dense
			qc  *linalg.CSR
			ws  *linalg.Workspace
			err error
		)
		if m.Graph.NumStates() >= linalg.SparseThreshold {
			qc, err = m.Graph.GeneratorCSR(nil)
		} else {
			q, err = m.Graph.Generator()
		}
		if err != nil {
			return nil, err
		}
		for i, t := range times {
			if t < 0 {
				return nil, fmt.Errorf("nvp: negative time %g", t)
			}
			var pi []float64
			if qc != nil {
				pi, err = ws.UniformizedPowerCSR(qc, init, t, 0, 1e-12, nil)
			} else {
				pi, err = linalg.UniformizedPower(q, init, t, 0, 1e-12)
			}
			if err != nil {
				return nil, err
			}
			if out[i], err = linalg.Dot(pi, reward); err != nil {
				return nil, err
			}
		}
	default:
		prop, err := mrgp.NewPropagator(m.Graph)
		if err != nil {
			return nil, err
		}
		for i, t := range times {
			pi, err := prop.Distribution(init, t)
			if err != nil {
				return nil, err
			}
			if out[i], err = linalg.Dot(pi, reward); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MissionReliability returns the time-averaged expected reliability over a
// mission window [0, t]: (1/t) Integral_0^t E[R(s)] ds. For short missions
// it exceeds the steady-state value because the system starts all-healthy.
func (m *Model) MissionReliability(rf reliability.StateFn, t float64) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("nvp: mission length %g must be positive", t)
	}
	if m.Arch == WithRejuvenation && m.Params.Clock == ClockWaitsForWave {
		return 0, ErrTransientUnsupported
	}
	reward := m.rewardVector(rf)
	init := m.Graph.Initial

	if m.Arch != WithRejuvenation {
		var occ []float64
		if m.Graph.NumStates() >= linalg.SparseThreshold {
			qc, err := m.Graph.GeneratorCSR(nil)
			if err != nil {
				return 0, err
			}
			var ws *linalg.Workspace
			if occ, err = ws.UniformizedIntegralCSR(qc, init, t, 0, 1e-12, nil); err != nil {
				return 0, err
			}
		} else {
			q, err := m.Graph.Generator()
			if err != nil {
				return 0, err
			}
			if occ, err = linalg.UniformizedIntegral(q, init, t, 0, 1e-12); err != nil {
				return 0, err
			}
		}
		acc, err := linalg.Dot(occ, reward)
		if err != nil {
			return 0, err
		}
		return acc / t, nil
	}
	prop, err := mrgp.NewPropagator(m.Graph)
	if err != nil {
		return 0, err
	}
	acc, err := prop.AccumulatedReward(init, reward, t)
	if err != nil {
		return 0, err
	}
	return acc / t, nil
}

// rewardVector evaluates rf over the tangible states.
func (m *Model) rewardVector(rf reliability.StateFn) []float64 {
	reward := make([]float64, m.Graph.NumStates())
	for s, mk := range m.Graph.Markings {
		i, j, k := m.classify(mk)
		reward[s] = rf(i, j, k)
	}
	return reward
}
