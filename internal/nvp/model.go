package nvp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"nvrel/internal/faultinject"
	"nvrel/internal/linalg"
	"nvrel/internal/mrgp"
	"nvrel/internal/obs"
	"nvrel/internal/petri"
	"nvrel/internal/reliability"
)

// fiResultNaN corrupts the solved distribution after every solver guard
// has passed — the harshest chaos site, proving the top-level result guard
// is load-bearing on its own.
var fiResultNaN = faultinject.SiteFor("nvp.result.nan")

// Architecture distinguishes the two perception-system variants.
type Architecture int

const (
	// NoRejuvenation is the Figure 2(a) DSPN.
	NoRejuvenation Architecture = iota + 1
	// WithRejuvenation is the Figure 2(b)+(c) DSPN.
	WithRejuvenation
)

// String returns the architecture name.
func (a Architecture) String() string {
	switch a {
	case NoRejuvenation:
		return "no-rejuvenation"
	case WithRejuvenation:
		return "with-rejuvenation"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// Model is a solved-ready perception-system DSPN.
type Model struct {
	Arch   Architecture
	Params Params
	Net    *petri.Net
	Graph  *petri.Graph

	pmh, pmc, pmf petri.PlaceRef
	pmr           petri.PlaceRef // only for WithRejuvenation
}

// ModuleState is a module-population state (i healthy, j compromised,
// k non-operational or rejuvenating) with its steady-state probability.
type ModuleState struct {
	Healthy, Compromised, Down int
	Probability                float64
}

// weightEpsilon is the paper's placeholder weight for empty places in
// w1/w2 (Table I): the system cannot distinguish healthy from compromised
// modules, so the choice is weighted by the population sizes, with a tiny
// floor so the branch stays defined when one population is empty.
const weightEpsilon = 0.00001

// tcOverride replaces the default constant-rate compromise transition;
// used by the Markov-modulated attacker extension.
type tcOverride func(b *petri.Builder, pmh, pmc petri.PlaceRef)

// BuildNoRejuvenation constructs and explores the Figure 2(a) model.
func BuildNoRejuvenation(p Params) (*Model, error) {
	if err := p.Validate(false); err != nil {
		return nil, err
	}
	return buildPlainNet(p, nil)
}

// plainRefs carries the place references of the plain net; the builder
// assigns them deterministically, so they are identical across assemblies.
type plainRefs struct {
	pmh, pmc, pmf petri.PlaceRef
}

// assemblePlainNet assembles the architecture without rejuvenation,
// optionally with a custom compromise process, without exploring it.
func assemblePlainNet(p Params, override tcOverride) (*petri.Net, plainRefs, error) {
	b := petri.NewBuilder("perception-no-rejuvenation")
	pmh := b.AddPlace("Pmh", p.N)
	pmc := b.AddPlace("Pmc", 0)
	pmf := b.AddPlace("Pmf", 0)

	if override != nil {
		override(b, pmh, pmc)
		addModuleLifecycle(b, p, pmh, pmc, pmf, false)
	} else {
		addModuleLifecycle(b, p, pmh, pmc, pmf, true)
	}

	net, err := b.Build()
	if err != nil {
		return nil, plainRefs{}, err
	}
	return net, plainRefs{pmh: pmh, pmc: pmc, pmf: pmf}, nil
}

// buildPlainNet assembles and explores the architecture without
// rejuvenation, optionally with a custom compromise process.
func buildPlainNet(p Params, override tcOverride) (*Model, error) {
	net, refs, err := assemblePlainNet(p, override)
	if err != nil {
		return nil, err
	}
	g, err := petri.Explore(net, petri.ExploreOptions{})
	if err != nil {
		return nil, err
	}
	return &Model{
		Arch: NoRejuvenation, Params: p, Net: net, Graph: g,
		pmh: refs.pmh, pmc: refs.pmc, pmf: refs.pmf, pmr: -1,
	}, nil
}

// BuildWithRejuvenation constructs and explores the Figure 2(b)+(c) model.
func BuildWithRejuvenation(p Params) (*Model, error) {
	if err := p.Validate(true); err != nil {
		return nil, err
	}
	return buildRejuvenationNet(p, nil)
}

// rejRefs carries the place references of the rejuvenation net.
type rejRefs struct {
	pmh, pmc, pmf, pmr petri.PlaceRef
}

// assembleRejuvenationNet assembles the clocked architecture, optionally
// with a custom compromise process, without exploring it.
func assembleRejuvenationNet(p Params, override tcOverride) (*petri.Net, rejRefs, error) {
	b := petri.NewBuilder("perception-rejuvenation")
	pmh := b.AddPlace("Pmh", p.N)
	pmc := b.AddPlace("Pmc", 0)
	pmf := b.AddPlace("Pmf", 0)
	pac := b.AddPlace("Pac", 0)
	pmr := b.AddPlace("Pmr", 0)
	prc := b.AddPlace("Prc", 1)
	ptr := b.AddPlace("Ptr", 0)

	if override != nil {
		override(b, pmh, pmc)
		addModuleLifecycle(b, p, pmh, pmc, pmf, false)
	} else {
		addModuleLifecycle(b, p, pmh, pmc, pmf, true)
	}

	r := p.R
	// Rejuvenation clock (Figure 2(b)): Trc moves the clock token from Prc
	// to Ptr every RejuvenationInterval; Trt returns it once the
	// rejuvenation wave has been dispatched (guard g3).
	b.AddTransition(petri.Spec{
		Name: "Trc", Kind: petri.Deterministic, Delay: p.RejuvenationInterval,
		Inputs:  []petri.Arc{{Place: prc}},
		Outputs: []petri.Arc{{Place: ptr}},
	})
	// Tac dispatches r activation tokens when the clock has fired (token in
	// Ptr) and no previous wave is still in flight (guard g1, read as
	// #Pac + #Pmr = 0 per DESIGN.md). Under the waits-for-wave policy Tac
	// additionally moves the clock token to a wait place so the wave is
	// dispatched exactly once per tick while Trt holds the clock until the
	// wave drains.
	tacSpec := petri.Spec{
		Name: "Tac", Kind: petri.Immediate, Rate: 1, Priority: 3,
		Guard: func(m petri.Marking) bool {
			return m[ptr] >= 1 && m[pac] == 0 && m[pmr] == 0
		},
		Outputs: []petri.Arc{{Place: pac, Weight: r}},
	}
	var pwait petri.PlaceRef = -1
	if p.Clock == ClockWaitsForWave {
		pwait = b.AddPlace("Pwait", 0)
		tacSpec.Inputs = []petri.Arc{{Place: ptr}}
		tacSpec.Outputs = append(tacSpec.Outputs, petri.Arc{Place: pwait})
	}
	b.AddTransition(tacSpec)
	// g2 (Table I): at most r modules may be rejuvenating or under repair.
	g2 := func(m petri.Marking) bool { return m[pmf]+m[pmr] < r }
	// Trj1 picks a compromised module for rejuvenation, Trj2 a healthy one;
	// the weights w1/w2 encode that the system cannot tell them apart.
	b.AddTransition(petri.Spec{
		Name: "Trj1", Kind: petri.Immediate, Priority: 2,
		RateFn: func(m petri.Marking) float64 {
			if m[pmc] == 0 {
				return weightEpsilon
			}
			return float64(m[pmc]) / float64(m[pmc]+m[pmh])
		},
		Guard:   g2,
		Inputs:  []petri.Arc{{Place: pmc}, {Place: pac}},
		Outputs: []petri.Arc{{Place: pmr}},
	})
	b.AddTransition(petri.Spec{
		Name: "Trj2", Kind: petri.Immediate, Priority: 2,
		RateFn: func(m petri.Marking) float64 {
			if m[pmh] == 0 {
				return weightEpsilon
			}
			return float64(m[pmh]) / float64(m[pmc]+m[pmh])
		},
		Guard:   g2,
		Inputs:  []petri.Arc{{Place: pmh}, {Place: pac}},
		Outputs: []petri.Arc{{Place: pmr}},
	})
	// Trt resets the clock. Under the free-running policy it fires once
	// the wave is in flight (guard g3 as printed, "#Pmr + #Pac > 0") and
	// consumes the Ptr token; under the waits-for-wave policy it consumes
	// the Pwait token once the wave has drained.
	trtSpec := petri.Spec{
		Name: "Trt", Kind: petri.Immediate, Rate: 1, Priority: 1,
		Guard:   func(m petri.Marking) bool { return m[pmr]+m[pac] > 0 },
		Inputs:  []petri.Arc{{Place: ptr}},
		Outputs: []petri.Arc{{Place: prc}},
	}
	if p.Clock == ClockWaitsForWave {
		trtSpec.Guard = func(m petri.Marking) bool { return m[pmr]+m[pac] == 0 }
		trtSpec.Inputs = []petri.Arc{{Place: pwait}}
	}
	b.AddTransition(trtSpec)
	// Trj completes rejuvenation: it consumes min(#Pmr, r) tokens (w5) and
	// returns the same number to Pmh (w6) at rate 1/(base x #Pmr).
	batch := func(m petri.Marking) int {
		if m[pmr] < r {
			return m[pmr]
		}
		return r
	}
	b.AddTransition(petri.Spec{
		Name: "Trj", Kind: petri.Exponential,
		RateFn: func(m petri.Marking) float64 {
			if m[pmr] == 0 {
				return 0
			}
			return 1 / (p.MeanTimeToRejuvenate * float64(m[pmr]))
		},
		Inputs:  []petri.Arc{{Place: pmr, WeightFn: batch}},
		Outputs: []petri.Arc{{Place: pmh, WeightFn: batch}},
	})

	net, err := b.Build()
	if err != nil {
		return nil, rejRefs{}, err
	}
	return net, rejRefs{pmh: pmh, pmc: pmc, pmf: pmf, pmr: pmr}, nil
}

// buildRejuvenationNet assembles and explores the clocked architecture,
// optionally with a custom compromise process.
func buildRejuvenationNet(p Params, override tcOverride) (*Model, error) {
	net, refs, err := assembleRejuvenationNet(p, override)
	if err != nil {
		return nil, err
	}
	g, err := petri.Explore(net, petri.ExploreOptions{})
	if err != nil {
		return nil, err
	}
	return &Model{
		Arch: WithRejuvenation, Params: p, Net: net, Graph: g,
		pmh: refs.pmh, pmc: refs.pmc, pmf: refs.pmf, pmr: refs.pmr,
	}, nil
}

// addModuleLifecycle adds the lifecycle transitions shared by both
// models; includeTc is false when a custom compromise process already
// provides Tc.
func addModuleLifecycle(b *petri.Builder, p Params, pmh, pmc, pmf petri.PlaceRef, includeTc bool) {
	rate := func(mean float64, place petri.PlaceRef) petri.Spec {
		spec := petri.Spec{Kind: petri.Exponential}
		switch p.semantics() {
		case PerToken:
			spec.RateFn = func(m petri.Marking) float64 {
				return float64(m[place]) / mean
			}
		default:
			spec.Rate = 1 / mean
		}
		return spec
	}

	if includeTc {
		tc := rate(p.MeanTimeToCompromise, pmh)
		tc.Name = "Tc"
		tc.Inputs = []petri.Arc{{Place: pmh}}
		tc.Outputs = []petri.Arc{{Place: pmc}}
		b.AddTransition(tc)
	}

	tf := rate(p.MeanTimeToFailure, pmc)
	tf.Name = "Tf"
	tf.Inputs = []petri.Arc{{Place: pmc}}
	tf.Outputs = []petri.Arc{{Place: pmf}}
	b.AddTransition(tf)

	tr := rate(p.MeanTimeToRepair, pmf)
	tr.Name = "Tr"
	tr.Inputs = []petri.Arc{{Place: pmf}}
	tr.Outputs = []petri.Arc{{Place: pmh}}
	b.AddTransition(tr)
}

// classify maps a tangible marking to the module-population triple.
func (m *Model) classify(mk petri.Marking) (healthy, compromised, down int) {
	healthy = mk[m.pmh]
	compromised = mk[m.pmc]
	down = mk[m.pmf]
	if m.pmr >= 0 {
		down += mk[m.pmr]
	}
	return healthy, compromised, down
}

// Solve returns the steady-state distribution over tangible states using
// the solver appropriate to the architecture: GTH on the CTMC without
// rejuvenation, the clock-synchronous Markov-regenerative solver for the
// free-running clock, and the general Markov-regenerative solver when the
// clock stops during rejuvenation waves.
func (m *Model) Solve() ([]float64, error) {
	return m.SolveWS(nil)
}

// SolveWS is the workspace-backed form of Solve: all solver scratch comes
// from ws, making repeated solves over same-sized models allocation-light.
// The result is float-for-float identical to Solve. A workspace must not be
// shared between goroutines.
func (m *Model) SolveWS(ws *linalg.Workspace) ([]float64, error) {
	return m.SolveCtxWS(nil, ws)
}

// SolveCtxWS is SolveWS with a context deadline threaded through the
// underlying solvers, plus a final distribution guard: whatever path
// produced the vector, it is validated (finite, non-negative, simplex)
// before any caller computes a reliability number from it.
func (m *Model) SolveCtxWS(ctx context.Context, ws *linalg.Workspace) ([]float64, error) {
	pi, _, err := m.SolveDiagCtxWS(ctx, ws)
	return pi, err
}

// SolverKind names the solver the architecture and clock policy route to:
// "ctmc" (GTH/GS on the plain CTMC), "mrgp" (clock-synchronous
// Markov-regenerative), or "mrgp-general" (waits-for-wave clock).
func (m *Model) SolverKind() string {
	switch {
	case m.Arch != WithRejuvenation:
		return "ctmc"
	case m.Params.Clock == ClockWaitsForWave:
		return "mrgp-general"
	default:
		return "mrgp"
	}
}

// SolveDiagCtxWS solves like SolveCtxWS and additionally reports the
// petri.SolveDiag for the CTMC architecture (path taken, GS sweeps,
// fallback attempts). The Markov-regenerative architectures have no
// per-rung diagnostics struct; they report only the state count.
func (m *Model) SolveDiagCtxWS(ctx context.Context, ws *linalg.Workspace) ([]float64, petri.SolveDiag, error) {
	pi, _, diag, err := m.solveSeededDiagCtxWS(ctx, ws, nil)
	return pi, diag, err
}

// SolveSeededDiagCtxWS is SolveDiagCtxWS with an optional warm-start seed.
// What the seed means depends on the routed solver: the previous stationary
// distribution pi for the CTMC architecture, the previous embedded-chain
// vector for the clock-synchronous Markov-regenerative path. The general
// (waits-for-wave) solver ignores seeds. A nil seed reproduces
// SolveDiagCtxWS bit for bit; callers normally go through
// WarmRegistry.SolveDiagCtxWS, which pairs each solve with the matching
// iterate automatically.
func (m *Model) SolveSeededDiagCtxWS(ctx context.Context, ws *linalg.Workspace, seed []float64) ([]float64, petri.SolveDiag, error) {
	pi, _, diag, err := m.solveSeededDiagCtxWS(ctx, ws, seed)
	return pi, diag, err
}

// solveSeededDiagCtxWS additionally returns the iterate vector a future
// warm start should begin from — pi itself on the CTMC path, the embedded
// vector on the Markov-regenerative path, nil where seeding is
// unsupported.
func (m *Model) solveSeededDiagCtxWS(ctx context.Context, ws *linalg.Workspace, seed []float64) ([]float64, []float64, petri.SolveDiag, error) {
	ctx, sp := obs.StartSpan(ctx, "nvp.solve")
	sp.Str("arch", m.Arch.String()).Str("solver", m.SolverKind())
	var (
		pi      []float64
		iterate []float64
		diag    petri.SolveDiag
		err     error
	)
	if m.Arch != WithRejuvenation {
		pi, diag, err = m.Graph.SteadyStateSeededDiagCtxWS(ctx, ws, seed)
		iterate = pi
	} else if m.Params.Clock == ClockWaitsForWave {
		diag = petri.SolveDiag{States: m.Graph.NumStates()}
		var sol *mrgp.Solution
		sol, err = mrgp.SolveGeneralCtxWS(ctx, ws, m.Graph)
		if sol != nil {
			pi = sol.Pi
		}
	} else {
		diag = petri.SolveDiag{States: m.Graph.NumStates()}
		var sol *mrgp.Solution
		sol, err = mrgp.SolveSeededCtxWS(ctx, ws, m.Graph, seed)
		if sol != nil {
			pi = sol.Pi
			iterate = sol.Embedded
			// The embedded power cycles are this path's iterative work;
			// surface them in the power slot so SolveDiag.Iterations()
			// measures both architectures uniformly.
			diag.PowerIters = sol.Cycles
			diag.Seeded = sol.Warm
		}
	}
	if err != nil {
		sp.Err(err)
		sp.End()
		return nil, nil, diag, err
	}
	if faultinject.Enabled() && fiResultNaN.Fire() && len(pi) > 0 {
		pi[0] = math.NaN()
	}
	if err := linalg.ValidateDistribution("nvp.solve", pi); err != nil {
		sp.Err(err)
		sp.End()
		return nil, nil, diag, err
	}
	sp.Int("states", int64(diag.States))
	sp.End()
	return pi, iterate, diag, nil
}

// ShadowRung names the solver rung a shadow verification should re-solve
// this model on: a path deliberately different from — and numerically
// independent of — the one that produced the primary result (described
// by diag). Empty means no independent rung remains (the primary answer
// already consumed the whole chain, or the architecture has no second
// formulation), in which case the shadow layer counts the solve as
// skipped rather than comparing a path against itself.
//
// The diversity matrix (DESIGN.md §14): for the CTMC architecture,
// sparse GS is cross-checked by dense GTH, dense GTH by uniformized
// power, a GS→GTH fallback by power, and a GTH→power fallback by GS; a
// solve that already fell all the way to power has no rung left. For
// the clock-synchronous MRGP architecture the sparse embedded-chain
// solution is cross-checked by the dense formulation and vice versa
// (diag.PowerIters carries the sparse path's cycle count, so zero means
// the dense path answered). The general (waits-for-wave) solver has a
// single formulation and is never shadowed.
func (m *Model) ShadowRung(diag petri.SolveDiag) string {
	switch m.SolverKind() {
	case "ctmc":
		switch diag.Path {
		case petri.PathSparse:
			return "gth"
		case petri.PathDense, petri.PathSparseFallbackDense:
			return "power"
		case petri.PathDenseFallbackPower:
			return "gs"
		}
		return ""
	case "mrgp":
		if diag.PowerIters > 0 {
			return "mrgp-dense"
		}
		return "mrgp-sparse"
	default:
		return ""
	}
}

// SolveRungCtxWS re-solves the model on exactly one named rung ("gs",
// "gth", "power" for the CTMC architecture; "mrgp-dense", "mrgp-sparse"
// for the clock-synchronous one) with no fallback, returning the
// distribution and the rung's iterative work. It is always a cold solve
// — no warm-start seed — so the shadow result shares nothing with the
// primary beyond the model itself.
func (m *Model) SolveRungCtxWS(ctx context.Context, ws *linalg.Workspace, rung string) ([]float64, int, error) {
	ctx, sp := obs.StartSpan(ctx, "nvp.solve.rung")
	defer sp.End()
	sp.Str("arch", m.Arch.String()).Str("rung", rung)
	var (
		pi    []float64
		iters int
		err   error
	)
	switch rung {
	case "gs", "gth", "power":
		if m.SolverKind() != "ctmc" {
			err = fmt.Errorf("nvp: rung %q needs the ctmc architecture, model solves via %s", rung, m.SolverKind())
			break
		}
		pi, iters, err = m.Graph.SteadyStateRungCtxWS(ctx, ws, rung)
	case "mrgp-dense", "mrgp-sparse":
		if m.SolverKind() != "mrgp" {
			err = fmt.Errorf("nvp: rung %q needs the mrgp architecture, model solves via %s", rung, m.SolverKind())
			break
		}
		var sol *mrgp.Solution
		sol, err = mrgp.SolveRungCtxWS(ctx, ws, m.Graph, strings.TrimPrefix(rung, "mrgp-"))
		if sol != nil {
			pi = sol.Pi
			iters = sol.Cycles
		}
	default:
		err = fmt.Errorf("nvp: unknown solver rung %q", rung)
	}
	if err != nil {
		sp.Err(err)
		return nil, iters, err
	}
	if err := linalg.ValidateDistribution("nvp.solve.rung", pi); err != nil {
		sp.Err(err)
		return nil, iters, err
	}
	return pi, iters, nil
}

// StateDistribution aggregates the steady state into module-population
// states (i, j, k), sorted by decreasing probability.
func (m *Model) StateDistribution() ([]ModuleState, error) {
	pi, err := m.Solve()
	if err != nil {
		return nil, err
	}
	type key struct{ i, j, k int }
	agg := make(map[key]float64)
	for s, mk := range m.Graph.Markings {
		i, j, k := m.classify(mk)
		agg[key{i, j, k}] += pi[s]
	}
	out := make([]ModuleState, 0, len(agg))
	for k, p := range agg {
		out = append(out, ModuleState{Healthy: k.i, Compromised: k.j, Down: k.k, Probability: p})
	}
	sortStates(out)
	return out, nil
}

// ExpectedReliability computes E[R_sys] = sum pi(i,j,k) R(i,j,k) under the
// given state reliability function.
func (m *Model) ExpectedReliability(rf reliability.StateFn) (float64, error) {
	return m.ExpectedReliabilityWS(nil, rf)
}

// ExpectedReliabilityWS is the workspace-backed form of ExpectedReliability.
func (m *Model) ExpectedReliabilityWS(ws *linalg.Workspace, rf reliability.StateFn) (float64, error) {
	return m.ExpectedReliabilityCtxWS(nil, ws, rf)
}

// ExpectedReliabilityCtxWS is ExpectedReliabilityWS with a context
// threaded through the solve.
func (m *Model) ExpectedReliabilityCtxWS(ctx context.Context, ws *linalg.Workspace, rf reliability.StateFn) (float64, error) {
	pi, err := m.SolveCtxWS(ctx, ws)
	if err != nil {
		return 0, err
	}
	var e float64
	for s, mk := range m.Graph.Markings {
		i, j, k := m.classify(mk)
		e += pi[s] * rf(i, j, k)
	}
	return e, nil
}

// PaperReliability returns the paper's verbatim reliability function when
// the model matches one of the two published configurations — the
// four-version system (n=4, f=1, voting 3-of-4) or the six-version system
// (n=6, f=1, r=1, voting 4-of-6). The appendix matrices hardcode those
// voting thresholds, so any other (N, f, r) uses the generalized dependent
// model instead.
func (m *Model) PaperReliability() (reliability.StateFn, error) {
	pr := m.Params.Reliability()
	switch {
	case m.Params.N == 4 && m.Params.F == 1 && m.Params.R == 0:
		return reliability.FourVersion(pr)
	case m.Params.N == 6 && m.Params.F == 1 && m.Params.R == 1:
		return reliability.SixVersion(pr)
	default:
		return reliability.Dependent(pr, m.Params.Scheme())
	}
}

// ExpectedPaperReliability is the one-call headline metric: E[R_sys] under
// the paper's reliability functions.
func (m *Model) ExpectedPaperReliability() (float64, error) {
	return m.ExpectedPaperReliabilityWS(nil)
}

// ExpectedPaperReliabilityWS is the workspace-backed form of
// ExpectedPaperReliability.
func (m *Model) ExpectedPaperReliabilityWS(ws *linalg.Workspace) (float64, error) {
	return m.ExpectedPaperReliabilityCtxWS(nil, ws)
}

// ExpectedPaperReliabilityCtxWS is ExpectedPaperReliabilityWS with a
// context threaded through the solve.
func (m *Model) ExpectedPaperReliabilityCtxWS(ctx context.Context, ws *linalg.Workspace) (float64, error) {
	rf, err := m.PaperReliability()
	if err != nil {
		return 0, err
	}
	return m.ExpectedReliabilityCtxWS(ctx, ws, rf)
}

// ExpectedPaperReliabilityFrom computes E[R_sys] under the paper's
// reliability function from an already-solved distribution. The summation
// loop is identical to ExpectedReliabilityCtxWS, so callers that solve
// once (for diagnostics) and weigh separately get a bit-for-bit match
// with the one-call path.
func (m *Model) ExpectedPaperReliabilityFrom(pi []float64) (float64, error) {
	rf, err := m.PaperReliability()
	if err != nil {
		return 0, err
	}
	if len(pi) != len(m.Graph.Markings) {
		return 0, fmt.Errorf("nvp: distribution has %d states, graph has %d", len(pi), len(m.Graph.Markings))
	}
	var e float64
	for s, mk := range m.Graph.Markings {
		i, j, k := m.classify(mk)
		e += pi[s] * rf(i, j, k)
	}
	return e, nil
}

func sortStates(states []ModuleState) {
	for i := 1; i < len(states); i++ {
		for j := i; j > 0 && states[j].Probability > states[j-1].Probability; j-- {
			states[j], states[j-1] = states[j-1], states[j]
		}
	}
}
