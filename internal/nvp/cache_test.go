package nvp

import (
	"sync"
	"testing"

	"nvrel/internal/obs"
)

// TestCacheMatchesDirectBuild: sweeping the timing parameters through a
// shared cache must reproduce the direct (uncached) builds bit-for-bit —
// the whole correctness claim of the reachability-graph reuse.
func TestCacheMatchesDirectBuild(t *testing.T) {
	cache := NewModelCache()
	taus := []float64{100, 450, 600, 1500, 3000}
	mttcs := []float64{800, 1523, 2500}

	for _, clock := range []ClockPolicy{ClockFreeRunning, ClockWaitsForWave} {
		for _, tau := range taus {
			for _, mttc := range mttcs {
				p6 := DefaultSixVersion()
				p6.RejuvenationInterval = tau
				p6.MeanTimeToCompromise = mttc
				p6.Clock = clock

				direct, err := BuildWithRejuvenation(p6)
				if err != nil {
					t.Fatalf("direct 6v(%v, tau=%g, mttc=%g): %v", clock, tau, mttc, err)
				}
				cached, err := cache.BuildWithRejuvenation(p6)
				if err != nil {
					t.Fatalf("cached 6v(%v, tau=%g, mttc=%g): %v", clock, tau, mttc, err)
				}
				want, err := direct.ExpectedPaperReliability()
				if err != nil {
					t.Fatalf("direct solve: %v", err)
				}
				got, err := cached.ExpectedPaperReliability()
				if err != nil {
					t.Fatalf("cached solve: %v", err)
				}
				if got != want {
					t.Errorf("6v(%v, tau=%g, mttc=%g): cached = %v, direct = %v", clock, tau, mttc, got, want)
				}
			}
		}
	}

	for _, mttc := range mttcs {
		p4 := DefaultFourVersion()
		p4.MeanTimeToCompromise = mttc

		direct, err := BuildNoRejuvenation(p4)
		if err != nil {
			t.Fatalf("direct 4v(mttc=%g): %v", mttc, err)
		}
		cached, err := cache.BuildNoRejuvenation(p4)
		if err != nil {
			t.Fatalf("cached 4v(mttc=%g): %v", mttc, err)
		}
		want, err := direct.ExpectedPaperReliability()
		if err != nil {
			t.Fatalf("direct solve: %v", err)
		}
		got, err := cached.ExpectedPaperReliability()
		if err != nil {
			t.Fatalf("cached solve: %v", err)
		}
		if got != want {
			t.Errorf("4v(mttc=%g): cached = %v, direct = %v", mttc, got, want)
		}
	}
}

// TestCacheSharesExploration: two builds with the same structural key must
// share one exploration (same marking backing array); a different N must
// not.
func TestCacheSharesExploration(t *testing.T) {
	cache := NewModelCache()
	pA := DefaultSixVersion()
	pB := DefaultSixVersion()
	pB.RejuvenationInterval = 900

	mA, err := cache.BuildWithRejuvenation(pA)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := cache.BuildWithRejuvenation(pB)
	if err != nil {
		t.Fatal(err)
	}
	if &mA.Graph.Markings[0] != &mB.Graph.Markings[0] {
		t.Error("same structural key: explorations not shared")
	}

	pC := DefaultSixVersion()
	pC.N = 7
	mC, err := cache.BuildWithRejuvenation(pC)
	if err != nil {
		t.Fatal(err)
	}
	if &mC.Graph.Markings[0] == &mA.Graph.Markings[0] {
		t.Error("different N: explorations wrongly shared")
	}
}

// TestCacheNilReceiver: a nil cache must degrade to direct builds.
func TestCacheNilReceiver(t *testing.T) {
	var cache *ModelCache
	m, err := cache.BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatalf("nil cache build: %v", err)
	}
	if _, err := m.ExpectedPaperReliability(); err != nil {
		t.Fatalf("nil cache solve: %v", err)
	}
}

// TestCacheConcurrent: many goroutines sweeping through one cache (the
// sweep engines do exactly this) must race-free produce the same values as
// direct builds. Run with -race to make this meaningful.
func TestCacheConcurrent(t *testing.T) {
	cache := NewModelCache()
	taus := []float64{100, 300, 600, 900, 1200, 1500, 2000, 3000}

	want := make([]float64, len(taus))
	for i, tau := range taus {
		p := DefaultSixVersion()
		p.RejuvenationInterval = tau
		m, err := BuildWithRejuvenation(p)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = m.ExpectedPaperReliability(); err != nil {
			t.Fatal(err)
		}
	}

	got := make([]float64, len(taus))
	errs := make([]error, len(taus))
	var wg sync.WaitGroup
	for i, tau := range taus {
		wg.Add(1)
		go func(i int, tau float64) {
			defer wg.Done()
			p := DefaultSixVersion()
			p.RejuvenationInterval = tau
			m, err := cache.BuildWithRejuvenation(p)
			if err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = m.ExpectedPaperReliability()
		}(i, tau)
	}
	wg.Wait()
	for i := range taus {
		if errs[i] != nil {
			t.Fatalf("tau=%g: %v", taus[i], errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("tau=%g: concurrent cached = %v, direct = %v", taus[i], got[i], want[i])
		}
	}
}

// TestCacheLRUEviction: the cache must stay within its structural-shape
// bound under parameter-mix traffic, evicting least-recently-used shapes
// (counted by nvp.cache.evict) and rebuilding them correctly on re-request.
func TestCacheLRUEviction(t *testing.T) {
	prev := obs.Enable()
	defer obs.SetEnabled(prev)
	evict0 := metCacheEvicts.Value()
	miss0 := metCacheMisses.Value()

	cache := NewModelCacheBound(2)
	build := func(n int) {
		t.Helper()
		p := DefaultFourVersion()
		p.N = n
		if _, err := cache.BuildNoRejuvenation(p); err != nil {
			t.Fatalf("build N=%d: %v", n, err)
		}
	}
	build(4) // explore shape N=4
	build(5) // explore shape N=5
	build(4) // touch N=4 so N=5 is the LRU victim
	build(6) // explore shape N=6, evicting N=5
	if got := metCacheEvicts.Value() - evict0; got != 1 {
		t.Errorf("nvp.cache.evict delta = %d, want 1", got)
	}
	build(4) // still cached: no new exploration
	missesBefore := metCacheMisses.Value()
	build(5) // evicted: must re-explore (a miss), and still solve correctly
	if got := metCacheMisses.Value() - missesBefore; got != 1 {
		t.Errorf("re-request of evicted shape cost %d explorations, want 1", got)
	}
	if total := metCacheMisses.Value() - miss0; total != 4 {
		t.Errorf("total explorations = %d, want 4 (N=4,5,6 + re-explored 5)", total)
	}

	// Eviction must never change results: the rebuilt shape matches the
	// direct build bit-for-bit.
	p := DefaultFourVersion()
	p.N = 5
	direct, err := BuildNoRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := cache.BuildNoRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := direct.ExpectedPaperReliability()
	got, _ := cached.ExpectedPaperReliability()
	if got != want {
		t.Errorf("post-eviction rebuild = %v, direct = %v", got, want)
	}
}

// TestCacheUnboundedWhenMaxZero: NewModelCacheBound(0) must never evict.
func TestCacheUnboundedWhenMaxZero(t *testing.T) {
	prev := obs.Enable()
	defer obs.SetEnabled(prev)
	evict0 := metCacheEvicts.Value()
	cache := NewModelCacheBound(0)
	for n := 4; n <= 8; n++ {
		p := DefaultFourVersion()
		p.N = n
		if _, err := cache.BuildNoRejuvenation(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := metCacheEvicts.Value() - evict0; got != 0 {
		t.Errorf("unbounded cache evicted %d entries", got)
	}
}
