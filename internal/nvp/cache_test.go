package nvp

import (
	"sync"
	"testing"
)

// TestCacheMatchesDirectBuild: sweeping the timing parameters through a
// shared cache must reproduce the direct (uncached) builds bit-for-bit —
// the whole correctness claim of the reachability-graph reuse.
func TestCacheMatchesDirectBuild(t *testing.T) {
	cache := NewModelCache()
	taus := []float64{100, 450, 600, 1500, 3000}
	mttcs := []float64{800, 1523, 2500}

	for _, clock := range []ClockPolicy{ClockFreeRunning, ClockWaitsForWave} {
		for _, tau := range taus {
			for _, mttc := range mttcs {
				p6 := DefaultSixVersion()
				p6.RejuvenationInterval = tau
				p6.MeanTimeToCompromise = mttc
				p6.Clock = clock

				direct, err := BuildWithRejuvenation(p6)
				if err != nil {
					t.Fatalf("direct 6v(%v, tau=%g, mttc=%g): %v", clock, tau, mttc, err)
				}
				cached, err := cache.BuildWithRejuvenation(p6)
				if err != nil {
					t.Fatalf("cached 6v(%v, tau=%g, mttc=%g): %v", clock, tau, mttc, err)
				}
				want, err := direct.ExpectedPaperReliability()
				if err != nil {
					t.Fatalf("direct solve: %v", err)
				}
				got, err := cached.ExpectedPaperReliability()
				if err != nil {
					t.Fatalf("cached solve: %v", err)
				}
				if got != want {
					t.Errorf("6v(%v, tau=%g, mttc=%g): cached = %v, direct = %v", clock, tau, mttc, got, want)
				}
			}
		}
	}

	for _, mttc := range mttcs {
		p4 := DefaultFourVersion()
		p4.MeanTimeToCompromise = mttc

		direct, err := BuildNoRejuvenation(p4)
		if err != nil {
			t.Fatalf("direct 4v(mttc=%g): %v", mttc, err)
		}
		cached, err := cache.BuildNoRejuvenation(p4)
		if err != nil {
			t.Fatalf("cached 4v(mttc=%g): %v", mttc, err)
		}
		want, err := direct.ExpectedPaperReliability()
		if err != nil {
			t.Fatalf("direct solve: %v", err)
		}
		got, err := cached.ExpectedPaperReliability()
		if err != nil {
			t.Fatalf("cached solve: %v", err)
		}
		if got != want {
			t.Errorf("4v(mttc=%g): cached = %v, direct = %v", mttc, got, want)
		}
	}
}

// TestCacheSharesExploration: two builds with the same structural key must
// share one exploration (same marking backing array); a different N must
// not.
func TestCacheSharesExploration(t *testing.T) {
	cache := NewModelCache()
	pA := DefaultSixVersion()
	pB := DefaultSixVersion()
	pB.RejuvenationInterval = 900

	mA, err := cache.BuildWithRejuvenation(pA)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := cache.BuildWithRejuvenation(pB)
	if err != nil {
		t.Fatal(err)
	}
	if &mA.Graph.Markings[0] != &mB.Graph.Markings[0] {
		t.Error("same structural key: explorations not shared")
	}

	pC := DefaultSixVersion()
	pC.N = 7
	mC, err := cache.BuildWithRejuvenation(pC)
	if err != nil {
		t.Fatal(err)
	}
	if &mC.Graph.Markings[0] == &mA.Graph.Markings[0] {
		t.Error("different N: explorations wrongly shared")
	}
}

// TestCacheNilReceiver: a nil cache must degrade to direct builds.
func TestCacheNilReceiver(t *testing.T) {
	var cache *ModelCache
	m, err := cache.BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatalf("nil cache build: %v", err)
	}
	if _, err := m.ExpectedPaperReliability(); err != nil {
		t.Fatalf("nil cache solve: %v", err)
	}
}

// TestCacheConcurrent: many goroutines sweeping through one cache (the
// sweep engines do exactly this) must race-free produce the same values as
// direct builds. Run with -race to make this meaningful.
func TestCacheConcurrent(t *testing.T) {
	cache := NewModelCache()
	taus := []float64{100, 300, 600, 900, 1200, 1500, 2000, 3000}

	want := make([]float64, len(taus))
	for i, tau := range taus {
		p := DefaultSixVersion()
		p.RejuvenationInterval = tau
		m, err := BuildWithRejuvenation(p)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = m.ExpectedPaperReliability(); err != nil {
			t.Fatal(err)
		}
	}

	got := make([]float64, len(taus))
	errs := make([]error, len(taus))
	var wg sync.WaitGroup
	for i, tau := range taus {
		wg.Add(1)
		go func(i int, tau float64) {
			defer wg.Done()
			p := DefaultSixVersion()
			p.RejuvenationInterval = tau
			m, err := cache.BuildWithRejuvenation(p)
			if err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = m.ExpectedPaperReliability()
		}(i, tau)
	}
	wg.Wait()
	for i := range taus {
		if errs[i] != nil {
			t.Fatalf("tau=%g: %v", taus[i], errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("tau=%g: concurrent cached = %v, direct = %v", taus[i], got[i], want[i])
		}
	}
}
