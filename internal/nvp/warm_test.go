package nvp

import (
	"math"
	"math/rand"
	"testing"

	"nvrel/internal/faultinject"
	"nvrel/internal/linalg"
	"nvrel/internal/obs"
)

// nudgeFour returns the sparse-routed four-version parameters with its
// solver-visible rates randomly nudged by up to rel (relative).
func nudgeFour(rng *rand.Rand, rel float64) Params {
	p := DefaultFourVersion()
	p.N = 24
	p.MeanTimeToCompromise *= 1 + rel*(2*rng.Float64()-1)
	p.MeanTimeToFailure *= 1 + rel*(2*rng.Float64()-1)
	p.MeanTimeToRepair *= 1 + rel*(2*rng.Float64()-1)
	return p
}

// nudgeSix returns the sparse-routed six-version parameters with both its
// exponential rates and its deterministic clock randomly nudged.
func nudgeSix(rng *rand.Rand, rel float64) Params {
	p := DefaultSixVersion()
	p.N = 10
	p.MeanTimeToCompromise *= 1 + rel*(2*rng.Float64()-1)
	p.MeanTimeToRejuvenate *= 1 + rel*(2*rng.Float64()-1)
	p.RejuvenationInterval *= 1 + rel*(2*rng.Float64()-1)
	return p
}

// TestWarmRegistryAgreesWithColdFuzz: the acceptance property of the
// warm-start engine — across randomized parameter nudges spanning
// 1e-4..0.3 relative, a registry-seeded solve agrees with the cold solve
// elementwise to 1e-12 on both iterative routes (CTMC Gauss-Seidel and
// MRGP embedded chain), and the registry actually seeds once warmed.
func TestWarmRegistryAgreesWithColdFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ws := linalg.NewWorkspace()
	for _, tc := range []struct {
		name  string
		build func(*ModelCache, Params) (*Model, error)
		nudge func(*rand.Rand, float64) Params
	}{
		{"gs", (*ModelCache).BuildNoRejuvenation, nudgeFour},
		{"mrgp", (*ModelCache).BuildWithRejuvenation, nudgeSix},
	} {
		cache := NewModelCache()
		reg := NewWarmRegistry()
		seeded := 0
		for i := 0; i < 12; i++ {
			rel := math.Pow(10, -4*rng.Float64()) * 0.3 // 3e-5 .. 0.3
			m, err := tc.build(cache, tc.nudge(rng, rel))
			if err != nil {
				t.Fatalf("%s point %d: build: %v", tc.name, i, err)
			}
			cold, _, err := m.SolveDiagCtxWS(nil, ws)
			if err != nil {
				t.Fatalf("%s point %d: cold solve: %v", tc.name, i, err)
			}
			warm, diag, err := reg.SolveDiagCtxWS(nil, m, ws)
			if err != nil {
				t.Fatalf("%s point %d: warm solve: %v", tc.name, i, err)
			}
			if diag.Seeded {
				seeded++
				if diag.SeedSource != "topology-neighbor" {
					t.Fatalf("%s point %d: SeedSource = %q", tc.name, i, diag.SeedSource)
				}
			}
			for j := range cold {
				if d := math.Abs(warm[j] - cold[j]); d > 1e-12 {
					t.Fatalf("%s point %d: pi[%d] warm-cold diff %g", tc.name, i, j, d)
				}
			}
		}
		if seeded == 0 {
			t.Fatalf("%s: no solve was ever seeded", tc.name)
		}
	}
}

// TestWarmRegistryDensePassthrough: paper-scale models route to the dense
// direct solvers, where the registry must be a bit-identical passthrough.
func TestWarmRegistryDensePassthrough(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	ws := linalg.NewWorkspace()
	cold, coldDiag, err := m.SolveDiagCtxWS(nil, ws)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewWarmRegistry()
	for rep := 0; rep < 2; rep++ { // second pass: registry warmed, still inert
		warm, diag, err := reg.SolveDiagCtxWS(nil, m, ws)
		if err != nil {
			t.Fatal(err)
		}
		if diag.Seeded || diag.SeedSource != "" {
			t.Fatalf("dense solve reported seeding: %+v", diag)
		}
		if diag.Path != coldDiag.Path {
			t.Fatalf("dense path changed: %v vs %v", diag.Path, coldDiag.Path)
		}
		for j := range cold {
			if warm[j] != cold[j] {
				t.Fatalf("rep %d: dense passthrough not bit-identical at %d", rep, j)
			}
		}
	}
}

// TestNilWarmRegistrySolvesCold: a nil registry is inert.
func TestNilWarmRegistrySolvesCold(t *testing.T) {
	p := DefaultFourVersion()
	p.N = 24
	m, err := BuildNoRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	ws := linalg.NewWorkspace()
	cold, _, err := m.SolveDiagCtxWS(nil, ws)
	if err != nil {
		t.Fatal(err)
	}
	var reg *WarmRegistry
	got, diag, err := reg.SolveDiagCtxWS(nil, m, ws)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Seeded {
		t.Fatal("nil registry reported a seeded solve")
	}
	for j := range cold {
		if got[j] != cold[j] {
			t.Fatalf("nil registry not bit-identical at %d", j)
		}
	}
}

// TestWarmRegistryCorruptSeedDegrades: with the warmstart.seed.corrupt
// fault firing on every lookup, seeded solves must degrade to the uniform
// cold start — counter evidence of the rejection, results still within
// solver tolerance of cold — never to a wrong answer.
func TestWarmRegistryCorruptSeedDegrades(t *testing.T) {
	prevObs := obs.Enable()
	t.Cleanup(func() { obs.SetEnabled(prevObs) })
	faultinject.Reset()
	if err := faultinject.Arm(faultinject.Fault{Site: "warmstart.seed.corrupt", Mode: "nan", Count: 1 << 30}, 7); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable()
	t.Cleanup(func() {
		faultinject.Disable()
		faultinject.Reset()
	})

	rng := rand.New(rand.NewSource(23))
	cache := NewModelCache()
	reg := NewWarmRegistry()
	ws := linalg.NewWorkspace()
	before := obs.Capture()
	for i := 0; i < 6; i++ {
		m, err := cache.BuildNoRejuvenation(nudgeFour(rng, 0.05))
		if err != nil {
			t.Fatal(err)
		}
		cold, _, err := m.SolveDiagCtxWS(nil, ws)
		if err != nil {
			t.Fatal(err)
		}
		got, diag, err := reg.SolveDiagCtxWS(nil, m, ws)
		if err != nil {
			t.Fatalf("point %d: corrupted-seed solve errored: %v", i, err)
		}
		if diag.Seeded {
			t.Fatalf("point %d: NaN-corrupted seed was accepted", i)
		}
		for j := range cold {
			if got[j] != cold[j] {
				t.Fatalf("point %d: corrupted seed changed pi[%d]: %g vs %g", i, j, got[j], cold[j])
			}
		}
	}
	after := obs.Capture()
	if fired := faultinject.SiteFor("warmstart.seed.corrupt").Fired(); fired == 0 {
		t.Fatal("corruption site never fired")
	}
	if d := after.Counters["linalg.seed.rejected"] - before.Counters["linalg.seed.rejected"]; d == 0 {
		t.Fatal("no linalg.seed.rejected evidence of the graceful degradation")
	}
}
