package nvp

import (
	"math"
	"testing"

	"nvrel/internal/linalg"
	"nvrel/internal/petri"
	"nvrel/internal/reliability"
)

// Paper §V-B reports E[R_4v] = 0.8233477 and E[R_6v] = 0.93464665 from
// TimeNET. Our exact solvers land within 0.7% of both (the residual is a
// property of the paper's unpublished TimeNET configuration; see
// EXPERIMENTS.md). The golden values below pin this repository's results
// so regressions are caught at full precision.
const (
	goldenFourVersion = 0.8223487
	goldenSixVersion  = 0.94064835

	paperFourVersion = 0.8233477
	paperSixVersion  = 0.93464665
)

func TestDefaultParams(t *testing.T) {
	p4 := DefaultFourVersion()
	if p4.N != 4 || p4.F != 1 || p4.R != 0 {
		t.Errorf("DefaultFourVersion N/F/R = %d/%d/%d", p4.N, p4.F, p4.R)
	}
	if err := p4.Validate(false); err != nil {
		t.Errorf("Validate: %v", err)
	}
	p6 := DefaultSixVersion()
	if p6.N != 6 || p6.F != 1 || p6.R != 1 {
		t.Errorf("DefaultSixVersion N/F/R = %d/%d/%d", p6.N, p6.F, p6.R)
	}
	if err := p6.Validate(true); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if p6.RejuvenationInterval != 600 || p6.MeanTimeToCompromise != 1523 {
		t.Errorf("Table II defaults wrong: %+v", p6)
	}
}

func TestParamsValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
		rejuv  bool
	}{
		{name: "zero N", mutate: func(p *Params) { p.N = 0 }},
		{name: "negative p", mutate: func(p *Params) { p.P = -1 }},
		{name: "scheme too small", mutate: func(p *Params) { p.N = 3 }},
		{name: "zero compromise time", mutate: func(p *Params) { p.MeanTimeToCompromise = 0 }},
		{name: "negative failure time", mutate: func(p *Params) { p.MeanTimeToFailure = -5 }},
		{name: "NaN repair time", mutate: func(p *Params) { p.MeanTimeToRepair = math.NaN() }},
		{name: "bad semantics", mutate: func(p *Params) { p.Semantics = 99 }},
		{name: "rejuvenation without R", mutate: func(p *Params) { p.R = 0; p.N = 4 }, rejuv: true},
		{name: "zero interval", mutate: func(p *Params) { p.RejuvenationInterval = 0 }, rejuv: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultSixVersion()
			if !tt.rejuv {
				p = DefaultFourVersion()
			}
			tt.mutate(&p)
			if err := p.Validate(tt.rejuv); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestBuildersRejectInvalidParams(t *testing.T) {
	bad := DefaultFourVersion()
	bad.P = 2
	if _, err := BuildNoRejuvenation(bad); err == nil {
		t.Error("BuildNoRejuvenation accepted invalid params")
	}
	bad6 := DefaultSixVersion()
	bad6.RejuvenationInterval = -1
	if _, err := BuildWithRejuvenation(bad6); err == nil {
		t.Error("BuildWithRejuvenation accepted invalid params")
	}
	// A four-version parameter set (R = 0) cannot drive the rejuvenation
	// architecture.
	if _, err := BuildWithRejuvenation(DefaultFourVersion()); err == nil {
		t.Error("BuildWithRejuvenation accepted R = 0")
	}
}

func TestFourVersionHeadline(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatalf("BuildNoRejuvenation: %v", err)
	}
	e, err := m.ExpectedPaperReliability()
	if err != nil {
		t.Fatalf("ExpectedPaperReliability: %v", err)
	}
	if math.Abs(e-goldenFourVersion) > 5e-7 {
		t.Errorf("E[R_4v] = %.7f, want %.7f (golden)", e, goldenFourVersion)
	}
	if rel := math.Abs(e-paperFourVersion) / paperFourVersion; rel > 0.005 {
		t.Errorf("E[R_4v] = %.7f deviates %.3f%% from paper value %.7f", e, 100*rel, paperFourVersion)
	}
}

func TestSixVersionHeadline(t *testing.T) {
	m, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatalf("BuildWithRejuvenation: %v", err)
	}
	e, err := m.ExpectedPaperReliability()
	if err != nil {
		t.Fatalf("ExpectedPaperReliability: %v", err)
	}
	if math.Abs(e-goldenSixVersion) > 5e-7 {
		t.Errorf("E[R_6v] = %.8f, want %.8f (golden)", e, goldenSixVersion)
	}
	if rel := math.Abs(e-paperSixVersion) / paperSixVersion; rel > 0.01 {
		t.Errorf("E[R_6v] = %.8f deviates %.3f%% from paper value %.8f", e, 100*rel, paperSixVersion)
	}
}

func TestRejuvenationImprovesReliability(t *testing.T) {
	// The paper's central claim: the six-version system with rejuvenation
	// beats the four-version system without it by >13% at the defaults.
	m4, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	e4, err := m4.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	m6, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	e6, err := m6.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if gain := (e6 - e4) / e4; gain < 0.13 {
		t.Errorf("improvement = %.1f%%, want > 13%%", 100*gain)
	}
}

func TestStateDistributionFourVersion(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	states, err := m.StateDistribution()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range states {
		if s.Healthy+s.Compromised+s.Down != 4 {
			t.Errorf("state %+v does not sum to N", s)
		}
		if s.Probability < 0 {
			t.Errorf("negative probability %+v", s)
		}
		total += s.Probability
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", total)
	}
	// Sorted descending.
	for i := 1; i < len(states); i++ {
		if states[i].Probability > states[i-1].Probability {
			t.Errorf("states not sorted at %d", i)
		}
	}
	// With repair three orders of magnitude faster than failure, nearly
	// all mass sits on k = 0 states.
	var kZero float64
	for _, s := range states {
		if s.Down == 0 {
			kZero += s.Probability
		}
	}
	if kZero < 0.99 {
		t.Errorf("P(k=0) = %g, want > 0.99", kZero)
	}
}

func TestStateDistributionSixVersion(t *testing.T) {
	m, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	states, err := m.StateDistribution()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range states {
		if s.Healthy+s.Compromised+s.Down != 6 {
			t.Errorf("state %+v does not sum to N", s)
		}
		total += s.Probability
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", total)
	}
	// Rejuvenation keeps the system predominantly healthy: the modal state
	// must have at least five healthy modules.
	if states[0].Healthy < 5 {
		t.Errorf("modal state %+v has fewer than 5 healthy modules", states[0])
	}
}

func TestModuleCountConservation(t *testing.T) {
	// P-invariant: Pmh + Pmc + Pmf (+ Pmr) = N in every tangible marking.
	m4, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range m4.Graph.Markings {
		i, j, k := m4.classify(mk)
		if i+j+k != 4 {
			t.Errorf("4v marking %v breaks module conservation", mk)
		}
	}
	m6, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range m6.Graph.Markings {
		i, j, k := m6.classify(mk)
		if i+j+k != 6 {
			t.Errorf("6v marking %v breaks module conservation", mk)
		}
	}
}

func TestSixVersionClockAlwaysRunning(t *testing.T) {
	// Every tangible marking must hold the clock token in Prc (the MRGP
	// solver's regeneration-class requirement).
	m, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	prc, ok := findPlace(m.Net, "Prc")
	if !ok {
		t.Fatal("place Prc not found")
	}
	for _, mk := range m.Graph.Markings {
		if mk[prc] != 1 {
			t.Errorf("tangible marking %s lacks clock token", m.Net.FormatMarking(mk))
		}
	}
}

func TestSixVersionAtMostRRejuvenating(t *testing.T) {
	m, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	pmr, ok := findPlace(m.Net, "Pmr")
	if !ok {
		t.Fatal("place Pmr not found")
	}
	for _, mk := range m.Graph.Markings {
		if mk[pmr] > m.Params.R {
			t.Errorf("marking %s exceeds r rejuvenating modules", m.Net.FormatMarking(mk))
		}
	}
}

func TestPaperReliabilityFallsBackToDependent(t *testing.T) {
	// A 7-version f=2 system has no verbatim matrix; the dependent model
	// must be used.
	p := DefaultFourVersion()
	p.N, p.F = 7, 2
	m, err := BuildNoRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.ExpectedPaperReliability()
	if err != nil {
		t.Fatalf("ExpectedPaperReliability: %v", err)
	}
	if e <= 0 || e >= 1 {
		t.Errorf("E[R_7v] = %g outside (0,1)", e)
	}
}

func TestExpectedReliabilityWithCustomFunction(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	// Constant reward of one integrates to one.
	e, err := m.ExpectedReliability(func(i, j, k int) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("E[1] = %g", e)
	}
}

func TestIndependentReliabilityLowerAtDefaults(t *testing.T) {
	// At the defaults the dependent model (alpha = 0.5) concentrates
	// healthy errors, making >=T-wrong events likelier than independent
	// errors would; the verbatim paper model must therefore report lower
	// reliability than the independent baseline in the all-healthy state.
	pr := reliability.Params{P: 0.08, PPrime: 0.5, Alpha: 0.5}
	dep, err := reliability.Dependent(pr, reliability.Scheme{N: 4, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := reliability.Independent(pr, reliability.Scheme{N: 4, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dep(4, 0, 0) >= ind(4, 0, 0) {
		t.Errorf("dependent %g should be below independent %g in (4,0,0)", dep(4, 0, 0), ind(4, 0, 0))
	}
}

func TestClockPolicies(t *testing.T) {
	free, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	eFree, err := free.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultSixVersion()
	p.Clock = ClockWaitsForWave
	waits, err := BuildWithRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	eWaits, err := waits.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	// The wave lasts ~3 s against a 600 s period, so the two policies
	// differ by well under 0.1% — but they must differ (the waits policy
	// stretches the effective period).
	if math.Abs(eFree-eWaits) > 1e-3 {
		t.Errorf("policies diverge too much: free %.8f vs waits %.8f", eFree, eWaits)
	}
	if eFree == eWaits {
		t.Error("policies should not be bit-identical")
	}
	// The waits policy must hold strictly fewer or equal reliability (its
	// effective rejuvenation frequency is lower).
	if eWaits > eFree {
		t.Errorf("waits policy %.8f should not beat free-running %.8f", eWaits, eFree)
	}
}

func TestClockPolicyValidation(t *testing.T) {
	p := DefaultSixVersion()
	p.Clock = ClockPolicy(9)
	if err := p.Validate(true); err == nil {
		t.Error("unknown clock policy accepted")
	}
	if ClockFreeRunning.String() != "free-running" ||
		ClockWaitsForWave.String() != "waits-for-wave" ||
		ClockPolicy(9).String() != "ClockPolicy(9)" {
		t.Error("clock policy names wrong")
	}
}

func TestSemanticsString(t *testing.T) {
	if SingleServer.String() != "single-server" || PerToken.String() != "per-token" {
		t.Error("semantics names wrong")
	}
	if ServerSemantics(9).String() != "ServerSemantics(9)" {
		t.Error("unknown semantics formatting wrong")
	}
	if NoRejuvenation.String() != "no-rejuvenation" || WithRejuvenation.String() != "with-rejuvenation" {
		t.Error("architecture names wrong")
	}
	if Architecture(7).String() != "Architecture(7)" {
		t.Error("unknown architecture formatting wrong")
	}
}

func TestSolveDistributionsSumToOne(t *testing.T) {
	m4, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	pi4, err := m4.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s := linalg.Sum(pi4); math.Abs(s-1) > 1e-9 {
		t.Errorf("4v pi sums to %g", s)
	}
	m6, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	pi6, err := m6.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s := linalg.Sum(pi6); math.Abs(s-1) > 1e-9 {
		t.Errorf("6v pi sums to %g", s)
	}
}

func findPlace(n *petri.Net, name string) (petri.PlaceRef, bool) {
	for i := 0; i < n.NumPlaces(); i++ {
		if n.PlaceName(petri.PlaceRef(i)) == name {
			return petri.PlaceRef(i), true
		}
	}
	return 0, false
}
