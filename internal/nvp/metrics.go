package nvp

import "nvrel/internal/obs"

// Metric handles for the model layer. All updates are no-ops while obs is
// disabled (the default).
var (
	// ModelCache exploration outcomes: a miss explores the reachability
	// graph from scratch, a hit reuses the memoized topology (re-stamping
	// rates when the net instance differs).
	metCacheHits   = obs.CounterFor("nvp.cache.hit")
	metCacheMisses = obs.CounterFor("nvp.cache.miss")
	metCacheEvicts = obs.CounterFor("nvp.cache.evict")
)
