package nvp

import (
	"context"

	"nvrel/internal/linalg"
	"nvrel/internal/petri"
	"nvrel/internal/warmstart"
)

// WarmRegistry pairs a Model solve with the warm-start seed store: each
// solve first looks up the nearest already-solved neighbor on the model's
// topology and seeds the iterative kernels with its iterate, then records
// its own iterate for future neighbors. Seeding is a pure hint — the
// kernels re-validate every seed and converge to the same fixed point from
// any accepted start — so results are within solver tolerance of the cold
// path and bit-identical wherever seeding does not apply.
//
// Seeding applies only where an iterative kernel runs: models below
// linalg.SparseThreshold route to the dense direct solvers and are passed
// through untouched (bit-identical to the cold path), as is the general
// waits-for-wave Markov-regenerative solver. A nil *WarmRegistry is inert
// and solves cold, so callers can thread an optional registry without nil
// checks.
//
// The registry is safe for concurrent use by a worker pool, but note that
// warm-start results then depend on solve completion order: a point may be
// seeded by whichever neighbor finished first. Drivers that must be
// bit-reproducible across worker counts should either solve cold or use
// one registry per deterministic work sequence.
type WarmRegistry struct {
	reg *warmstart.Registry
}

// NewWarmRegistry returns an empty warm-start registry.
func NewWarmRegistry() *WarmRegistry {
	return &WarmRegistry{reg: warmstart.NewRegistry()}
}

// SolveDiagCtxWS solves m like Model.SolveDiagCtxWS, seeded from and
// feeding the registry. The returned diag carries the seed provenance:
// Seeded is true when the producing kernel actually started from the
// registry's vector, and SeedSource names the registry policy.
func (w *WarmRegistry) SolveDiagCtxWS(ctx context.Context, m *Model, ws *linalg.Workspace) ([]float64, petri.SolveDiag, error) {
	if w == nil || m.Graph.NumStates() < linalg.SparseThreshold || m.Params.Clock == ClockWaitsForWave {
		return m.SolveDiagCtxWS(ctx, ws)
	}
	key := m.Graph.TopologyKey()
	if key == nil {
		return m.SolveDiagCtxWS(ctx, ws)
	}
	sig := m.Graph.RateSignature(nil)
	seed := w.reg.Lookup(key, sig)
	pi, iterate, diag, err := m.solveSeededDiagCtxWS(ctx, ws, seed)
	if err != nil {
		return nil, diag, err
	}
	if diag.Seeded {
		diag.SeedSource = "topology-neighbor"
	}
	w.reg.Insert(key, sig, iterate)
	return pi, diag, nil
}
