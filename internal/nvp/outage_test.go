package nvp

import (
	"errors"
	"testing"
)

func TestMeanTimeToVoterOutageFourVersion(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	mtto, err := m.MeanTimeToVoterOutage()
	if err != nil {
		t.Fatalf("MeanTimeToVoterOutage: %v", err)
	}
	// Golden value from the exact first-passage solve; the scale is set by
	// how unlikely a second failure is during a 3 s repair.
	if mtto < 3.2e6 || mtto > 3.5e6 {
		t.Errorf("MTTO = %.0f s, want ~3.34e6", mtto)
	}
}

func TestMeanTimeToVoterOutageScalesWithRepair(t *testing.T) {
	// Faster repair shrinks the window for a concurrent second failure, so
	// the outage time grows roughly inversely with the repair time.
	slow := DefaultFourVersion()
	slow.MeanTimeToRepair = 30
	mSlow, err := BuildNoRejuvenation(slow)
	if err != nil {
		t.Fatal(err)
	}
	slowT, err := mSlow.MeanTimeToVoterOutage()
	if err != nil {
		t.Fatal(err)
	}
	fast := DefaultFourVersion()
	fast.MeanTimeToRepair = 0.3
	mFast, err := BuildNoRejuvenation(fast)
	if err != nil {
		t.Fatal(err)
	}
	fastT, err := mFast.MeanTimeToVoterOutage()
	if err != nil {
		t.Fatal(err)
	}
	if fastT < 20*slowT {
		t.Errorf("fast repair MTTO %.3g should dwarf slow repair %.3g", fastT, slowT)
	}
}

func TestMeanTimeToVoterOutageRejectsClockedModel(t *testing.T) {
	m, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MeanTimeToVoterOutage(); !errors.Is(err, ErrOutageUnsupported) {
		t.Errorf("err = %v, want ErrOutageUnsupported", err)
	}
}
