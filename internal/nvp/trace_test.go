package nvp

import (
	"testing"
	"time"

	"nvrel/internal/obs"
)

// collectSolveTrace solves m with tracing on and returns the spans of the
// solve's trace tree.
func collectSolveTrace(t *testing.T, m *Model) []obs.SpanRecord {
	t.Helper()
	prev := obs.TraceEnable()
	obs.TraceReset()
	defer obs.SetTraceEnabled(prev)
	if _, err := m.Solve(); err != nil {
		t.Fatalf("solve: %v", err)
	}
	all := obs.TraceSnapshot()
	if len(all) == 0 {
		t.Fatal("solve recorded no spans")
	}
	return obs.CollectTrace(all[0].Trace)
}

// byName indexes a span set, failing on duplicates so the assertions
// below stay unambiguous.
func byName(t *testing.T, recs []obs.SpanRecord) map[string]obs.SpanRecord {
	t.Helper()
	m := make(map[string]obs.SpanRecord, len(recs))
	for _, r := range recs {
		if _, dup := m[r.Name]; dup {
			t.Fatalf("trace has two %q spans: %+v", r.Name, recs)
		}
		m[r.Name] = r
	}
	return m
}

// childSum returns the summed duration of parent's direct children.
func childSum(recs []obs.SpanRecord, parent uint64) time.Duration {
	var sum time.Duration
	for _, r := range recs {
		if r.Parent == parent {
			sum += r.Dur
		}
	}
	return sum
}

// TestSolveTraceNestsCTMC asserts the acceptance-criterion span shape for
// the CTMC architecture: nvp.solve -> petri.solve -> petri.rung.gth ->
// linalg.gth, with each child's duration within its parent's and sibling
// durations summing to no more than the parent.
func TestSolveTraceNestsCTMC(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	recs := collectSolveTrace(t, m)
	spans := byName(t, recs)
	chain := []string{"nvp.solve", "petri.solve", "petri.rung.gth", "linalg.gth"}
	for i := 1; i < len(chain); i++ {
		child, ok := spans[chain[i]]
		if !ok {
			t.Fatalf("trace missing %q span; have %v", chain[i], names(recs))
		}
		parent := spans[chain[i-1]]
		if child.Parent != parent.ID {
			t.Errorf("%q parent = span %d, want %q (span %d)", chain[i], child.Parent, chain[i-1], parent.ID)
		}
		if child.Dur > parent.Dur {
			t.Errorf("%q duration %v exceeds parent %q %v", chain[i], child.Dur, chain[i-1], parent.Dur)
		}
	}
	for _, r := range recs {
		if sum := childSum(recs, r.ID); sum > r.Dur {
			t.Errorf("children of %q sum to %v, parent only %v", r.Name, sum, r.Dur)
		}
	}
	root := spans["nvp.solve"]
	attrs := map[string]any{}
	for _, a := range root.Attrs {
		attrs[a.Key] = a.Value()
	}
	if attrs["solver"] != "ctmc" || attrs["arch"] != "no-rejuvenation" {
		t.Errorf("nvp.solve attrs = %v", attrs)
	}
	if attrs["states"] == nil || attrs["states"].(int64) < 1 {
		t.Errorf("nvp.solve missing states attr: %v", attrs)
	}
}

// TestSolveTraceNestsMRGP asserts the span shape for the rejuvenation
// architecture on the sparse path: nvp.solve -> mrgp.solve ->
// mrgp.rung.sparse -> {mrgp.kernel.embedded, mrgp.kernel.occupancy} as
// sibling kernels.
func TestSolveTraceNestsMRGP(t *testing.T) {
	p := DefaultSixVersion()
	p.N = 10 // 561 states: routes sparse
	m, err := BuildWithRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	recs := collectSolveTrace(t, m)
	spans := byName(t, recs)
	rung, ok := spans["mrgp.rung.sparse"]
	if !ok {
		t.Fatalf("trace missing mrgp.rung.sparse; have %v", names(recs))
	}
	if spans["mrgp.solve"].Parent != spans["nvp.solve"].ID {
		t.Error("mrgp.solve not a child of nvp.solve")
	}
	if rung.Parent != spans["mrgp.solve"].ID {
		t.Error("mrgp.rung.sparse not a child of mrgp.solve")
	}
	for _, kernel := range []string{"mrgp.kernel.embedded", "mrgp.kernel.occupancy"} {
		k, ok := spans[kernel]
		if !ok {
			t.Fatalf("trace missing %q; have %v", kernel, names(recs))
		}
		if k.Parent != rung.ID {
			t.Errorf("%q not a child of mrgp.rung.sparse", kernel)
		}
	}
	if sum := childSum(recs, rung.ID); sum > rung.Dur {
		t.Errorf("kernel spans sum to %v, rung only %v", sum, rung.Dur)
	}
}

func names(recs []obs.SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}
