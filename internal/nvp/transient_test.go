package nvp

import (
	"errors"
	"math"
	"testing"
)

func TestTransientReliabilityFourVersion(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 600, 3600, 20000, 200000}
	rs, err := m.TransientReliability(rf, times)
	if err != nil {
		t.Fatalf("TransientReliability: %v", err)
	}
	// At t = 0 the system is all-healthy: R(0) = R_{4,0,0} = 0.95 at the
	// defaults.
	if math.Abs(rs[0]-rf(4, 0, 0)) > 1e-12 {
		t.Errorf("R(0) = %.6f, want %.6f", rs[0], rf(4, 0, 0))
	}
	// Reliability degrades monotonically toward the steady state for this
	// model (fresh system decays, no renewal).
	for i := 1; i < len(rs); i++ {
		if rs[i] >= rs[i-1] {
			t.Errorf("R not decreasing at t=%g: %.8f >= %.8f", times[i], rs[i], rs[i-1])
		}
	}
	// Long-run value matches the steady state.
	ss, err := m.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs[len(rs)-1]-ss) > 1e-6 {
		t.Errorf("R(200000) = %.8f, steady state %.8f", rs[len(rs)-1], ss)
	}
}

func TestTransientReliabilitySixVersion(t *testing.T) {
	m, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 300, 600, 1200, 50000, 500000, 500600}
	rs, err := m.TransientReliability(rf, times)
	if err != nil {
		t.Fatalf("TransientReliability: %v", err)
	}
	if math.Abs(rs[0]-rf(6, 0, 0)) > 1e-12 {
		t.Errorf("R(0) = %.6f, want %.6f", rs[0], rf(6, 0, 0))
	}
	// The clocked process converges to a cyclo-stationary regime, not to a
	// pointwise limit: R(t) keeps oscillating within each clock cycle, and
	// the steady state reported by the MRGP solver is the cycle average.
	// Check (a) periodicity in the limit and (b) that the late-time value
	// brackets the cycle average within the cycle's oscillation amplitude.
	if math.Abs(rs[5]-rs[6]) > 1e-9 {
		t.Errorf("limit not periodic: R(500000) = %.9f vs R(500600) = %.9f", rs[5], rs[6])
	}
	ss, err := m.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs[5]-ss) > 0.01 {
		t.Errorf("R(500000) = %.8f too far from cycle average %.8f", rs[5], ss)
	}
	// All values live in (0, 1].
	for i, r := range rs {
		if r <= 0 || r > 1 {
			t.Errorf("R(%g) = %g", times[i], r)
		}
	}
}

func TestTransientReliabilityValidation(t *testing.T) {
	m, err := BuildNoRejuvenation(DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TransientReliability(rf, []float64{-1}); err == nil {
		t.Error("negative time accepted")
	}
	p := DefaultSixVersion()
	p.Clock = ClockWaitsForWave
	waits, err := BuildWithRejuvenation(p)
	if err != nil {
		t.Fatal(err)
	}
	rf6, err := waits.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := waits.TransientReliability(rf6, []float64{1}); !errors.Is(err, ErrTransientUnsupported) {
		t.Errorf("err = %v, want ErrTransientUnsupported", err)
	}
	if _, err := waits.MissionReliability(rf6, 10); !errors.Is(err, ErrTransientUnsupported) {
		t.Errorf("err = %v, want ErrTransientUnsupported", err)
	}
}

func TestMissionReliability(t *testing.T) {
	for _, rejuv := range []bool{false, true} {
		var (
			m   *Model
			err error
		)
		if rejuv {
			m, err = BuildWithRejuvenation(DefaultSixVersion())
		} else {
			m, err = BuildNoRejuvenation(DefaultFourVersion())
		}
		if err != nil {
			t.Fatal(err)
		}
		rf, err := m.PaperReliability()
		if err != nil {
			t.Fatal(err)
		}
		short, err := m.MissionReliability(rf, 60)
		if err != nil {
			t.Fatalf("MissionReliability(60): %v", err)
		}
		long, err := m.MissionReliability(rf, 5e5)
		if err != nil {
			t.Fatalf("MissionReliability(5e5): %v", err)
		}
		ss, err := m.ExpectedPaperReliability()
		if err != nil {
			t.Fatal(err)
		}
		// A short mission starting all-healthy beats the steady state; a
		// long mission converges to it.
		if short <= ss {
			t.Errorf("rejuv=%v: short mission %.8f should exceed steady state %.8f", rejuv, short, ss)
		}
		if math.Abs(long-ss) > 5e-3 {
			t.Errorf("rejuv=%v: long mission %.8f should approach steady state %.8f", rejuv, long, ss)
		}
		if _, err := m.MissionReliability(rf, 0); err == nil {
			t.Error("zero mission length accepted")
		}
	}
}

func TestMissionMatchesTransientTrapezoid(t *testing.T) {
	// Independent check: numerically integrate the transient curve and
	// compare with the closed-form accumulated reward.
	m, err := BuildWithRejuvenation(DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := m.PaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	const (
		horizon = 2400.0
		steps   = 480
	)
	times := make([]float64, steps+1)
	for i := range times {
		times[i] = horizon * float64(i) / steps
	}
	rs, err := m.TransientReliability(rf, times)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for i := 1; i < len(times); i++ {
		integral += (rs[i] + rs[i-1]) / 2 * (times[i] - times[i-1])
	}
	want := integral / horizon
	got, err := m.MissionReliability(rf, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// R(t) is discontinuous at clock ticks (the branching matrix applies
	// instantaneously), so the trapezoid rule carries O(step) error around
	// each tick; the tolerance accounts for the four ticks in the window.
	if math.Abs(got-want) > 5e-4 {
		t.Errorf("mission = %.8f, trapezoid %.8f", got, want)
	}
}
