package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/des"
	"nvrel/internal/mlsim"
	"nvrel/internal/nvp"
	"nvrel/internal/percept"
	"nvrel/internal/reliability"
)

// HeteroResult compares evaluating an N-version system with one averaged
// accuracy (the paper's approach: p = mean inaccuracy of the three
// networks) against keeping each version's measured accuracy (extension
// experiment E20).
type HeteroResult struct {
	// PerVersion are the measured per-version inaccuracies from the
	// synthetic benchmark.
	PerVersion []float64
	// AveragedP is their mean (what the paper would use).
	AveragedP float64
	// AveragedE is E[R_4v] with the averaged p under the independent
	// model (the apples-to-apples baseline for Heterogeneous, which
	// assumes independent errors).
	AveragedE float64
	// HeterogeneousE is E[R_4v] with per-version rates.
	HeterogeneousE float64
	// Simulated is the identity-tracking simulator's estimate of the
	// heterogeneous value (95% CI).
	Simulated des.Summary
	// Covered reports whether HeterogeneousE lies in the simulated CI.
	Covered bool
}

// RunHetero measures per-version accuracies on the synthetic benchmark
// and evaluates the four-version system both ways.
func RunHetero(replications int, seed uint64) (*HeteroResult, error) {
	if replications <= 0 {
		replications = 16
	}
	bench, err := mlsim.NewSignBenchmark(mlsim.DefaultBenchmarkConfig())
	if err != nil {
		return nil, err
	}
	rng := des.NewRNG(seed)
	params := nvp.DefaultFourVersion()
	res := &HeteroResult{PerVersion: make([]float64, params.N)}
	for i := range res.PerVersion {
		c, err := bench.NewClassifier(mlsim.DefaultDiversity, seed+uint64(i)+1)
		if err != nil {
			return nil, err
		}
		if res.PerVersion[i], err = bench.EstimateInaccuracy(c, 20000, rng); err != nil {
			return nil, err
		}
		res.AveragedP += res.PerVersion[i]
	}
	res.AveragedP /= float64(params.N)

	model, err := nvp.BuildNoRejuvenation(params)
	if err != nil {
		return nil, err
	}
	avgRF, err := reliability.Independent(reliability.Params{
		P: res.AveragedP, PPrime: params.PPrime, Alpha: params.Alpha,
	}, params.Scheme())
	if err != nil {
		return nil, err
	}
	if res.AveragedE, err = model.ExpectedReliability(avgRF); err != nil {
		return nil, err
	}
	hetRF, err := reliability.Heterogeneous(reliability.HeterogeneousParams{
		HealthyErr:     res.PerVersion,
		CompromisedErr: params.PPrime,
	}, params.Scheme())
	if err != nil {
		return nil, err
	}
	if res.HeterogeneousE, err = model.ExpectedReliability(hetRF); err != nil {
		return nil, err
	}

	var acc des.Accumulator
	master := des.NewRNG(seed + 99)
	for rep := 0; rep < replications; rep++ {
		tally, err := percept.RunHeterogeneous(percept.HeteroConfig{
			Params:          params,
			HealthyErr:      res.PerVersion,
			Horizon:         1.5e6,
			WarmUp:          5e4,
			RequestInterval: 200,
		}, master.Fork())
		if err != nil {
			return nil, err
		}
		acc.Add(tally.Safety())
	}
	res.Simulated = acc.Summarize()
	res.Covered = res.Simulated.Contains(res.HeterogeneousE)
	return res, nil
}

// ReportHetero writes the E20 report.
func ReportHetero(w io.Writer) error {
	res, err := RunHetero(16, 20230708)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E20 (extension): per-version accuracies vs the paper's averaged p")
	fmt.Fprint(w, "  measured inaccuracies:")
	for _, p := range res.PerVersion {
		fmt.Fprintf(w, " %.4f", p)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  averaged p = %.4f -> E[R_4v] = %.6f (independent model)\n", res.AveragedP, res.AveragedE)
	fmt.Fprintf(w, "  per-version rates        -> E[R_4v] = %.6f (Poisson-binomial model)\n", res.HeterogeneousE)
	status := "OK"
	if !res.Covered {
		status = "MISMATCH"
	}
	fmt.Fprintf(w, "  identity-tracking simulation: %s [%s]\n", res.Simulated, status)
	fmt.Fprintln(w, "  (averaging is a good approximation when version accuracies are similar;")
	fmt.Fprintln(w, "  the gap widens with accuracy spread)")
	return nil
}
