package experiments

import (
	"strings"
	"testing"
)

func TestRunVoting(t *testing.T) {
	rows, err := RunVoting(3, 3e5, 77)
	if err != nil {
		t.Fatalf("RunVoting: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 schemes x 2 policies)", len(rows))
	}
	byKey := make(map[string]VotingRow, len(rows))
	for _, r := range rows {
		byKey[r.Scheme+"/"+r.WrongLabels] = r
		if r.Reliability < 0 || r.Reliability > 1 || r.Safety < r.Reliability-1e-9 {
			t.Errorf("implausible row %+v", r)
		}
	}
	// Under independent wrong labels, four agreeing wrong outputs over 43
	// classes are essentially impossible: the threshold voter's safety is
	// nearly perfect.
	th := byKey["4-out-of-n/independent-wrong-labels"]
	if th.Safety < 0.999 {
		t.Errorf("threshold safety under benign errors = %.4f, want ~1", th.Safety)
	}
	// Adversarially agreeing wrong labels realize the counting-rule worst
	// case: strictly lower safety than the benign case.
	adv := byKey["4-out-of-n/common-wrong-label"]
	if adv.Safety >= th.Safety {
		t.Errorf("adversarial safety %.4f should be below benign %.4f", adv.Safety, th.Safety)
	}
	// Unanimity skips massively but is the safest scheme under attack.
	un := byKey["unanimity/common-wrong-label"]
	if un.Skips < 0.2 {
		t.Errorf("unanimity skip rate = %.4f, expected large", un.Skips)
	}
	if un.Safety <= adv.Safety {
		t.Errorf("unanimity safety %.4f should beat threshold %.4f under attack", un.Safety, adv.Safety)
	}
}

func TestReportVotingOutput(t *testing.T) {
	// Exercise the registry path with a tiny configuration by calling the
	// underlying runner directly (the registered report uses a longer
	// horizon; it is covered by the CLI smoke tests).
	rows, err := RunVoting(2, 2e5, 3)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range rows {
		names = append(names, r.Scheme)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"4-out-of-n", "majority", "plurality", "unanimity"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing scheme %s in %s", want, joined)
		}
	}
}
