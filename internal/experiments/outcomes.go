package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/nvp"
	"nvrel/internal/reliability"
)

// OutcomeDecomposition splits one architecture's steady-state voted
// outputs into correct, erroneous, and skipped fractions (extension
// experiment E19). The paper's E[R] merges correct and skipped (it is
// 1 - P(error)); operationally, a skip still leaves the vehicle without a
// perception output for that request, so the split matters.
type OutcomeDecomposition struct {
	Architecture string
	Correct      float64
	Erroneous    float64
	Skipped      float64
	// PaperR is E[R] under the same generative model (Correct + Skipped).
	PaperR float64
}

// RunOutcomes computes the decomposition for both architectures at the
// defaults under the generative error model (whose simulated counterpart
// is the percept request tally).
func RunOutcomes() ([]OutcomeDecomposition, error) {
	var out []OutcomeDecomposition
	for _, rejuv := range []bool{false, true} {
		var (
			m    *nvp.Model
			name string
			err  error
		)
		if rejuv {
			m, err = nvp.BuildWithRejuvenation(nvp.DefaultSixVersion())
			name = "six-version (with rejuvenation)"
		} else {
			m, err = nvp.BuildNoRejuvenation(nvp.DefaultFourVersion())
			name = "four-version (no rejuvenation)"
		}
		if err != nil {
			return nil, err
		}
		outcomes, err := reliability.Outcomes(m.Params.Reliability(), m.Params.Scheme())
		if err != nil {
			return nil, err
		}
		states, err := m.StateDistribution()
		if err != nil {
			return nil, err
		}
		var d OutcomeDecomposition
		d.Architecture = name
		for _, st := range states {
			c, e, s := outcomes(st.Healthy, st.Compromised, st.Down)
			d.Correct += st.Probability * c
			d.Erroneous += st.Probability * e
			d.Skipped += st.Probability * s
		}
		d.PaperR = d.Correct + d.Skipped
		out = append(out, d)
	}
	return out, nil
}

// ReportOutcomes writes the E19 report.
func ReportOutcomes(w io.Writer) error {
	rows, err := RunOutcomes()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E19 (extension): voted-output decomposition at Table II defaults")
	fmt.Fprintln(w, "  (generative error model; the paper's R merges correct and skipped)")
	fmt.Fprintf(w, "  %-34s %-11s %-11s %-11s %s\n", "architecture", "P(correct)", "P(error)", "P(skip)", "1-P(error)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-34s %-11.5f %-11.5f %-11.5f %.5f\n",
			r.Architecture, r.Correct, r.Erroneous, r.Skipped, r.PaperR)
	}
	fmt.Fprintln(w, "  note: the six-version system converts most of the four-version system's")
	fmt.Fprintln(w, "  errors into either correct outputs or safe skips")
	return nil
}
