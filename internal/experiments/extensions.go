package experiments

import (
	"errors"
	"fmt"

	"nvrel/internal/nvp"
	"nvrel/internal/parallel"
	"nvrel/internal/percept"
)

// OptimalInterval is the result of the rejuvenation-interval optimization
// (E9): the interval in [lo, hi] maximizing E[R_6v].
type OptimalInterval struct {
	Interval    float64
	Reliability float64
	// Boundary reports that the optimum sits on an endpoint of the search
	// range (the reliability is monotone over the range).
	Boundary bool
}

// RunOptimize searches [lo, hi] for the rejuvenation interval maximizing
// the six-version expected reliability using golden-section search with a
// final boundary check. The paper performs this search visually on
// Figure 3 ("the maximum reliability is reached for 400-450 s").
func RunOptimize(lo, hi, tol float64) (OptimalInterval, error) {
	if lo <= 0 || hi <= lo {
		return OptimalInterval{}, errors.New("experiments: need 0 < lo < hi")
	}
	if tol <= 0 {
		tol = 1
	}
	eval := func(tau float64) (float64, error) {
		p := nvp.DefaultSixVersion()
		p.RejuvenationInterval = tau
		return evalSix(p)
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	// The two initial probes are independent; later iterations reuse one
	// of them and are inherently sequential.
	var f1, f2 float64
	probes := [2]float64{x1, x2}
	results := [2]float64{}
	err := parallel.ForEach(2, func(i int) error {
		v, err := eval(probes[i])
		results[i] = v
		return err
	})
	if err != nil {
		return OptimalInterval{}, err
	}
	f1, f2 = results[0], results[1]
	for b-a > tol {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			if f2, err = eval(x2); err != nil {
				return OptimalInterval{}, err
			}
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			if f1, err = eval(x1); err != nil {
				return OptimalInterval{}, err
			}
		}
	}
	best := OptimalInterval{Interval: (a + b) / 2}
	// Golden-section assumes unimodality; when the response is monotone
	// over the range the true optimum is an endpoint. Evaluate the interior
	// candidate and both endpoints concurrently, then compare in order.
	finals := [3]float64{best.Interval, lo, hi}
	vals := [3]float64{}
	if err := parallel.ForEach(3, func(i int) error {
		v, err := eval(finals[i])
		vals[i] = v
		return err
	}); err != nil {
		return OptimalInterval{}, err
	}
	best.Reliability = vals[0]
	for i, edge := range []float64{lo, hi} {
		if vals[i+1] > best.Reliability {
			best = OptimalInterval{Interval: edge, Reliability: vals[i+1], Boundary: true}
		}
	}
	return best, nil
}

// SimulationCheck cross-validates the analytic solvers against the
// discrete-event simulator (E8).
type SimulationCheck struct {
	Architecture string
	Analytic     float64
	Simulated    percept.Estimate
	// Covered reports whether the analytic value lies inside the
	// simulation's 95% confidence interval.
	Covered bool
}

// RunSimulationCheck simulates both architectures at the defaults and
// compares them against the exact solvers.
func RunSimulationCheck(replications int, horizon float64, seed uint64) ([]SimulationCheck, error) {
	if replications <= 0 {
		replications = 16
	}
	if horizon <= 0 {
		horizon = 2e6
	}
	var out []SimulationCheck

	a4, err := evalFour(nvp.DefaultFourVersion())
	if err != nil {
		return nil, err
	}
	est4, err := percept.Replicate(percept.Config{
		Params:  nvp.DefaultFourVersion(),
		Horizon: horizon,
		WarmUp:  horizon / 40,
	}, replications, seed)
	if err != nil {
		return nil, fmt.Errorf("four-version simulation: %w", err)
	}
	out = append(out, SimulationCheck{
		Architecture: "four-version (no rejuvenation)",
		Analytic:     a4,
		Simulated:    *est4,
		Covered:      est4.AnalyticReward.Contains(a4),
	})

	a6, err := evalSix(nvp.DefaultSixVersion())
	if err != nil {
		return nil, err
	}
	est6, err := percept.Replicate(percept.Config{
		Params:       nvp.DefaultSixVersion(),
		Rejuvenation: true,
		Horizon:      horizon,
		WarmUp:       horizon / 40,
	}, replications, seed+1)
	if err != nil {
		return nil, fmt.Errorf("six-version simulation: %w", err)
	}
	out = append(out, SimulationCheck{
		Architecture: "six-version (with rejuvenation)",
		Analytic:     a6,
		Simulated:    *est6,
		Covered:      est6.AnalyticReward.Contains(a6),
	})
	return out, nil
}

// ParamRow is one Table II entry.
type ParamRow struct {
	Name       string
	Transition string
	Value      string
}

// TableII returns the default input parameters as the paper lists them.
func TableII() []ParamRow {
	return []ParamRow{
		{Name: "N", Transition: "-", Value: "4 or 6"},
		{Name: "f", Transition: "-", Value: "1"},
		{Name: "r", Transition: "-", Value: "1"},
		{Name: "alpha", Transition: "-", Value: "0.5"},
		{Name: "p", Transition: "-", Value: "0.08"},
		{Name: "p'", Transition: "-", Value: "0.5"},
		{Name: "1/lambda_c", Transition: "Tc", Value: "1523 s"},
		{Name: "1/lambda", Transition: "Tf", Value: "3000 s"},
		{Name: "1/mu", Transition: "Tr", Value: "3 s"},
		{Name: "1/mu_r", Transition: "Trj", Value: "#Pmr x 3 s"},
		{Name: "1/gamma", Transition: "Trc", Value: "600 s"},
	}
}
