package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunAblations(t *testing.T) {
	rows, err := RunAblations()
	if err != nil {
		t.Fatalf("RunAblations: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byVariant := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		byVariant[r.Variant] = r
		if r.FourVersion <= 0 || r.FourVersion > 1 || r.SixVersion <= 0 || r.SixVersion > 1 {
			t.Errorf("row %+v outside (0,1]", r)
		}
	}
	// The verbatim model reproduces the headline; the dependent model is
	// lower for the four-version system (its R_{0,4,0} is stricter).
	verb := byVariant["verbatim appendix"]
	dep := byVariant["dependent (consistent)"]
	if verb.FourVersion <= dep.FourVersion {
		t.Errorf("verbatim 4v %.6f should exceed dependent %.6f", verb.FourVersion, dep.FourVersion)
	}
	// Single-server matches verbatim headline exactly.
	ss := byVariant["single-server"]
	if math.Abs(ss.FourVersion-verb.FourVersion) > 1e-12 {
		t.Errorf("single-server row diverges from verbatim: %.8f vs %.8f", ss.FourVersion, verb.FourVersion)
	}
	// Per-token is materially different (the calibration finding).
	pt := byVariant["per-token"]
	if math.Abs(pt.FourVersion-ss.FourVersion) < 0.01 {
		t.Errorf("per-token %.6f too close to single-server %.6f", pt.FourVersion, ss.FourVersion)
	}
	// The two clock policies differ by under 0.1% but are not identical.
	free := byVariant["free-running"]
	waits := byVariant["waits-for-wave"]
	if free.SixVersion == waits.SixVersion {
		t.Error("clock policies should differ slightly")
	}
	if math.Abs(free.SixVersion-waits.SixVersion) > 1e-3 {
		t.Errorf("clock policies diverge too much: %.8f vs %.8f", free.SixVersion, waits.SixVersion)
	}
}

func TestRunArchitectures(t *testing.T) {
	rows, err := RunArchitectures(6)
	if err != nil {
		t.Fatalf("RunArchitectures: %v", err)
	}
	count := make(map[[4]int]int)
	for _, r := range rows {
		rejuv := 0
		if r.Rejuvenate {
			rejuv = 1
		}
		count[[4]int{r.N, r.F, r.R, rejuv}]++
		if need := 3*r.F + 2*r.R + 1; r.N < need {
			t.Errorf("infeasible design in output: %+v", r)
		}
		if r.Threshold != 2*r.F+r.R+1 {
			t.Errorf("threshold mismatch: %+v", r)
		}
		if r.Reliability < 0 || r.Reliability > 1 {
			t.Errorf("reliability out of range: %+v", r)
		}
	}
	for k, c := range count {
		if c > 1 {
			t.Errorf("duplicate design %v", k)
		}
	}
	// The paper's two configurations appear with their headline values.
	var found4, found6 bool
	for _, r := range rows {
		if r.N == 4 && r.F == 1 && !r.Rejuvenate {
			found4 = true
			if math.Abs(r.Reliability-0.8223487) > 1e-6 {
				t.Errorf("4v headline drifted: %.7f", r.Reliability)
			}
		}
		if r.N == 6 && r.F == 1 && r.R == 1 && r.Rejuvenate {
			found6 = true
			if math.Abs(r.Reliability-0.94064835) > 1e-6 {
				t.Errorf("6v headline drifted: %.8f", r.Reliability)
			}
		}
	}
	if !found4 || !found6 {
		t.Error("paper configurations missing from the explorer output")
	}
}

func TestRunTransientAndMissions(t *testing.T) {
	points, err := RunTransient([]float64{0, 600, 1200})
	if err != nil {
		t.Fatalf("RunTransient: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Fresh systems start at their all-healthy reliability and degrade.
	if points[0].FourVersion <= points[2].FourVersion {
		t.Errorf("4v transient did not degrade: %+v", points)
	}
	missions, err := RunMissions([]float64{600, 86400})
	if err != nil {
		t.Fatalf("RunMissions: %v", err)
	}
	if len(missions) != 2 {
		t.Fatalf("missions = %d", len(missions))
	}
	// Short missions are more reliable than long ones (fresh start).
	if missions[0].SixVersion <= missions[1].SixVersion {
		t.Errorf("mission averages not decreasing: %+v", missions)
	}
}

func TestReportExtensions(t *testing.T) {
	for _, name := range []string{"ablations", "architectures"} {
		var sb strings.Builder
		if err := Run(name, &sb); err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if len(sb.String()) < 100 {
			t.Errorf("%s report suspiciously short: %q", name, sb.String())
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{600, "600s"},
		{3600, "1h"},
		{86400, "1d"},
		{7 * 86400, "7d"},
		{5400, "5400s"}, // not a whole number of hours
	}
	for _, tt := range tests {
		if got := formatSeconds(tt.give); got != tt.want {
			t.Errorf("formatSeconds(%g) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
