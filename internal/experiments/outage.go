package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/nvp"
	"nvrel/internal/percept"
)

// OutageResult carries the mean-time-to-voter-outage comparison (extension
// experiment E14): the expected time until fewer than 2f+1 (respectively
// 2f+r+1) modules remain operational and the voter falls structurally
// silent.
type OutageResult struct {
	// FourVersionExact is the exact first-passage value for the CTMC
	// architecture.
	FourVersionExact float64
	// FourVersionSim is the simulation estimate (cross-check).
	FourVersionSim *percept.OutageEstimate
	// SixVersionSim is the simulation estimate for the clocked
	// architecture (no exact solver: the deterministic timer enters the
	// hitting analysis); the censoring-aware MLE is the headline number.
	SixVersionSim *percept.OutageEstimate
}

// RunOutage computes E14.
func RunOutage(replications int, seed uint64) (*OutageResult, error) {
	if replications <= 0 {
		replications = 24
	}
	m4, err := nvp.BuildNoRejuvenation(nvp.DefaultFourVersion())
	if err != nil {
		return nil, err
	}
	exact, err := m4.MeanTimeToVoterOutage()
	if err != nil {
		return nil, err
	}
	sim4, err := percept.EstimateOutage(percept.Config{
		Params:  nvp.DefaultFourVersion(),
		Horizon: 1, // unused by outage runs; must be positive for validation
	}, replications, seed, 100*exact)
	if err != nil {
		return nil, fmt.Errorf("four-version outage simulation: %w", err)
	}
	sim6, err := percept.EstimateOutage(percept.Config{
		Params:       nvp.DefaultSixVersion(),
		Rejuvenation: true,
		Horizon:      1,
	}, replications, seed+1, 3e8)
	if err != nil {
		return nil, fmt.Errorf("six-version outage simulation: %w", err)
	}
	return &OutageResult{
		FourVersionExact: exact,
		FourVersionSim:   sim4,
		SixVersionSim:    sim6,
	}, nil
}

// ReportOutage writes the E14 report.
func ReportOutage(w io.Writer) error {
	res, err := RunOutage(24, 20230706)
	if err != nil {
		return err
	}
	days := func(s float64) float64 { return s / 86400 }
	fmt.Fprintln(w, "E14 (extension): mean time to voter outage (fewer than threshold modules operational)")
	fmt.Fprintf(w, "  four-version exact:     %.0f s (%.1f days)\n", res.FourVersionExact, days(res.FourVersionExact))
	fmt.Fprintf(w, "  four-version simulated: %s (censored %d)\n", res.FourVersionSim.MeanTime, res.FourVersionSim.Censored)
	fmt.Fprintf(w, "  six-version simulated:  MLE %.0f s (%.1f days), %d/%d censored\n",
		res.SixVersionSim.ExponentialMLE, days(res.SixVersionSim.ExponentialMLE),
		res.SixVersionSim.Censored, res.SixVersionSim.Censored+res.SixVersionSim.MeanTime.N)
	if res.FourVersionExact > 0 && res.SixVersionSim.ExponentialMLE > 0 {
		fmt.Fprintf(w, "  rejuvenation extends voter availability by ~%.0fx\n",
			res.SixVersionSim.ExponentialMLE/res.FourVersionExact)
	}
	return nil
}
