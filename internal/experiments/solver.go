package experiments

import (
	"nvrel/internal/linalg"
	"nvrel/internal/nvp"
	"nvrel/internal/parallel"
)

// solveCache shares reachability-graph topology across every sweep point
// evaluated by this package: each structurally distinct net is explored
// once and re-stamped with the point's rates afterwards, which is
// bit-identical to exploring from scratch (see nvp.ModelCache).
var solveCache = nvp.NewModelCache()

// wsArena hands each worker goroutine its own linalg workspace so repeated
// solves reuse scratch matrices and Poisson weight vectors. Workspaces are
// not concurrency-safe; the arena guarantees exclusive use and — unlike
// the sync.Pool it replaced — never loses warmed workspaces to a GC cycle,
// so the arena holds at most peak-concurrency workspaces for the process
// lifetime.
var wsArena = linalg.NewArena()

// warmReg seeds every iterative solve in this package with the nearest
// already-solved neighbor on the same topology (see nvp.WarmRegistry).
// Paper-scale models route to the dense direct solvers and pass through
// unseeded, so the published figures remain bit-identical to cold solves;
// scaled-up sweeps, optimizer probes, and (N,f,r) enumerations get the
// iteration reduction.
var warmReg = nvp.NewWarmRegistry()

func getWS() *linalg.Workspace   { return wsArena.Get() }
func putWS(ws *linalg.Workspace) { wsArena.Put(ws) }

// forEachWS is the sweep-driver pool front-end: fn runs over 0..n-1 with
// each pool worker holding one arena workspace for its entire run (one
// checkout per worker, not one per point).
func forEachWS(n int, fn func(ws *linalg.Workspace, i int) error) error {
	return parallel.ForEachRes(n, wsArena.Get, wsArena.Put, fn)
}
