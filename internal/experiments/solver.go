package experiments

import (
	"sync"

	"nvrel/internal/linalg"
	"nvrel/internal/nvp"
)

// solveCache shares reachability-graph topology across every sweep point
// evaluated by this package: each structurally distinct net is explored
// once and re-stamped with the point's rates afterwards, which is
// bit-identical to exploring from scratch (see nvp.ModelCache).
var solveCache = nvp.NewModelCache()

// wsPool hands each worker goroutine its own linalg workspace so repeated
// solves reuse scratch matrices and Poisson weight vectors. Workspaces are
// not concurrency-safe; the pool guarantees exclusive use.
var wsPool = sync.Pool{New: func() any { return linalg.NewWorkspace() }}

func getWS() *linalg.Workspace   { return wsPool.Get().(*linalg.Workspace) }
func putWS(ws *linalg.Workspace) { wsPool.Put(ws) }
