package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunSensitivity(t *testing.T) {
	es, err := RunSensitivity()
	if err != nil {
		t.Fatalf("RunSensitivity: %v", err)
	}
	if len(es) != 8 {
		t.Fatalf("elasticities = %d, want 8", len(es))
	}
	byName := make(map[string]Elasticity, len(es))
	for _, e := range es {
		byName[e.Parameter] = e
	}
	// Signs at the defaults: error probabilities hurt, slower compromise
	// helps, more frequent rejuvenation (smaller 1/gamma) helps.
	for _, name := range []string{"p", "p'", "alpha"} {
		if byName[name].SixVersion >= 0 {
			t.Errorf("elasticity of %s should be negative, got %+f", name, byName[name].SixVersion)
		}
	}
	if byName["1/lambda_c"].SixVersion <= 0 {
		t.Errorf("elasticity of 1/lambda_c should be positive, got %+f", byName["1/lambda_c"].SixVersion)
	}
	if byName["1/gamma"].SixVersion >= 0 {
		t.Errorf("elasticity of 1/gamma should be negative (frequent rejuvenation helps), got %+f",
			byName["1/gamma"].SixVersion)
	}
	// The headline robustness finding: rejuvenation slashes the p'
	// sensitivity by an order of magnitude.
	pp := byName["p'"]
	if math.Abs(pp.FourVersion) < 5*math.Abs(pp.SixVersion) {
		t.Errorf("4v p' elasticity %f should dwarf 6v %f", pp.FourVersion, pp.SixVersion)
	}
	// Rejuvenation-only parameters carry no four-version value.
	if !math.IsNaN(byName["1/gamma"].FourVersion) || !math.IsNaN(byName["1/mu_r"].FourVersion) {
		t.Error("rejuvenation-only parameters should have NaN 4v elasticity")
	}
	// Sorted by six-version magnitude.
	for i := 1; i < len(es); i++ {
		if math.Abs(es[i].SixVersion) > math.Abs(es[i-1].SixVersion)+1e-15 {
			t.Errorf("not sorted at %d: %v", i, es)
		}
	}
}

func TestReportSensitivity(t *testing.T) {
	var sb strings.Builder
	if err := ReportSensitivity(&sb); err != nil {
		t.Fatalf("ReportSensitivity: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"E15", "alpha", "1/gamma", "elasticity"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunOutageSmall(t *testing.T) {
	res, err := RunOutage(4, 11)
	if err != nil {
		t.Fatalf("RunOutage: %v", err)
	}
	if res.FourVersionExact < 3.2e6 || res.FourVersionExact > 3.5e6 {
		t.Errorf("exact MTTO = %g", res.FourVersionExact)
	}
	total6 := res.SixVersionSim.Censored + res.SixVersionSim.MeanTime.N
	if total6 != 4 {
		t.Errorf("six-version replications = %d, want 4", total6)
	}
	// The four-version simulation should rarely censor with a 100x
	// horizon; allow at most one unlucky replication.
	if res.FourVersionSim.Censored > 1 {
		t.Errorf("four-version censored = %d", res.FourVersionSim.Censored)
	}
}
