package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunProtocol(t *testing.T) {
	res, err := RunProtocol(1500, 55)
	if err != nil {
		t.Fatalf("RunProtocol: %v", err)
	}
	if res.Tally.Total() != 1500 {
		t.Fatalf("rounds = %d", res.Tally.Total())
	}
	// The message-level safety should land near the analytic E[R_6v]
	// (same states, generative errors instead of the closed forms).
	if math.Abs(res.Tally.Safety()-res.AnalyticSafety) > 0.05 {
		t.Errorf("protocol safety %.4f far from analytic %.4f", res.Tally.Safety(), res.AnalyticSafety)
	}
	// Correct decisions dominate at the defaults.
	if res.Tally.Reliability() < 0.8 {
		t.Errorf("P(correct) = %.4f implausibly low", res.Tally.Reliability())
	}
	// A quorum closes after ~the (quorum-1)-th fastest of five exponential
	// deliveries with 5 ms mean: single-digit milliseconds.
	if res.MeanDecisionLatency <= 0 || res.MeanDecisionLatency > 0.05 {
		t.Errorf("latency = %g s", res.MeanDecisionLatency)
	}
	// All-to-all with occasional silent modules: at most n(n-1) = 30.
	if res.MeanMessages <= 0 || res.MeanMessages > 30 {
		t.Errorf("messages = %g", res.MeanMessages)
	}
}

func TestRunProtocolDeterministic(t *testing.T) {
	a, err := RunProtocol(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProtocol(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally != b.Tally {
		t.Errorf("same seed, different tallies: %+v vs %+v", a.Tally, b.Tally)
	}
}

func TestReportProtocolRegistered(t *testing.T) {
	if _, ok := Registry()["protocol"]; !ok {
		t.Fatal("protocol experiment not registered")
	}
	// Exercise the text path cheaply through RunProtocol (the registered
	// report uses 4000 rounds; covered by CLI smoke runs).
	res, err := RunProtocol(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains("correct", "correct") || res == nil {
		t.Fatal("unreachable")
	}
}
