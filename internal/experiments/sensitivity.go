package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"nvrel/internal/nvp"
	"nvrel/internal/parallel"
)

// Elasticity quantifies one parameter's leverage on E[R_sys]: the
// normalized derivative (dE/E)/(dx/x), estimated by central differences
// with a 1% perturbation. |Elasticity| = 0.1 means a 10% parameter change
// moves the reliability by about 1%.
type Elasticity struct {
	Parameter   string
	FourVersion float64 // NaN when the parameter does not exist in the 4v model
	SixVersion  float64
}

// RunSensitivity computes elasticities of both architectures with respect
// to every Table II parameter at the defaults (extension experiment E15).
// The paper's Figure 4 sweeps four of these parameters qualitatively; the
// elasticities rank all of them on one scale.
func RunSensitivity() ([]Elasticity, error) {
	type param struct {
		name   string
		set    func(*nvp.Params, float64)
		get    func(nvp.Params) float64
		only6v bool
	}
	params := []param{
		{name: "alpha", set: func(p *nvp.Params, v float64) { p.Alpha = v }, get: func(p nvp.Params) float64 { return p.Alpha }},
		{name: "p", set: func(p *nvp.Params, v float64) { p.P = v }, get: func(p nvp.Params) float64 { return p.P }},
		{name: "p'", set: func(p *nvp.Params, v float64) { p.PPrime = v }, get: func(p nvp.Params) float64 { return p.PPrime }},
		{name: "1/lambda_c", set: func(p *nvp.Params, v float64) { p.MeanTimeToCompromise = v }, get: func(p nvp.Params) float64 { return p.MeanTimeToCompromise }},
		{name: "1/lambda", set: func(p *nvp.Params, v float64) { p.MeanTimeToFailure = v }, get: func(p nvp.Params) float64 { return p.MeanTimeToFailure }},
		{name: "1/mu", set: func(p *nvp.Params, v float64) { p.MeanTimeToRepair = v }, get: func(p nvp.Params) float64 { return p.MeanTimeToRepair }},
		{name: "1/mu_r", set: func(p *nvp.Params, v float64) { p.MeanTimeToRejuvenate = v }, get: func(p nvp.Params) float64 { return p.MeanTimeToRejuvenate }, only6v: true},
		{name: "1/gamma", set: func(p *nvp.Params, v float64) { p.RejuvenationInterval = v }, get: func(p nvp.Params) float64 { return p.RejuvenationInterval }, only6v: true},
	}

	const h = 0.01 // relative perturbation
	elasticity := func(base nvp.Params, pm param, solve func(nvp.Params) (float64, error)) (float64, error) {
		x := pm.get(base)
		lo, hi := base, base
		pm.set(&lo, x*(1-h))
		pm.set(&hi, x*(1+h))
		eLo, err := solve(lo)
		if err != nil {
			return 0, err
		}
		eHi, err := solve(hi)
		if err != nil {
			return 0, err
		}
		eMid, err := solve(base)
		if err != nil {
			return 0, err
		}
		return (eHi - eLo) / (2 * h) / eMid, nil
	}

	out := make([]Elasticity, len(params))
	err := parallel.ForEach(len(params), func(i int) error {
		pm := params[i]
		e := Elasticity{Parameter: pm.name, FourVersion: math.NaN()}
		if !pm.only6v {
			v, err := elasticity(nvp.DefaultFourVersion(), pm, solveFour)
			if err != nil {
				return fmt.Errorf("4v elasticity of %s: %w", pm.name, err)
			}
			e.FourVersion = v
		}
		v, err := elasticity(nvp.DefaultSixVersion(), pm, solveSix)
		if err != nil {
			return fmt.Errorf("6v elasticity of %s: %w", pm.name, err)
		}
		e.SixVersion = v
		out[i] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].SixVersion) > math.Abs(out[j].SixVersion)
	})
	return out, nil
}

// ReportSensitivity writes the E15 report.
func ReportSensitivity(w io.Writer) error {
	es, err := RunSensitivity()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E15 (extension): parameter elasticities of E[R_sys] at Table II defaults")
	fmt.Fprintln(w, "  elasticity = relative change of E[R] per relative change of the parameter")
	fmt.Fprintf(w, "  %-12s %-12s %-12s\n", "parameter", "4v", "6v")
	for _, e := range es {
		four := "-"
		if !math.IsNaN(e.FourVersion) {
			four = fmt.Sprintf("%+.5f", e.FourVersion)
		}
		fmt.Fprintf(w, "  %-12s %-12s %+.5f\n", e.Parameter, four, e.SixVersion)
	}
	fmt.Fprintln(w, "  (sorted by six-version leverage; positive means increasing the parameter helps)")
	return nil
}
