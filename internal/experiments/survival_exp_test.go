package experiments

import (
	"strings"
	"testing"
)

func TestRunSurvival(t *testing.T) {
	rows, err := RunSurvival(120, []float64{600, 3600})
	if err != nil {
		t.Fatalf("RunSurvival: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FourVersion < 0 || r.FourVersion > 1 || r.SixVersion < 0 || r.SixVersion > 1 {
			t.Errorf("row %+v outside [0,1]", r)
		}
	}
	// Survival decreases with window length and the six-version system
	// wins on the longer window (the advantage compounds).
	if rows[1].FourVersion >= rows[0].FourVersion {
		t.Errorf("4v survival not decreasing: %+v", rows)
	}
	if rows[1].SixVersion <= rows[1].FourVersion {
		t.Errorf("6v should win at 1h: %+v", rows[1])
	}
}

func TestReportSurvival(t *testing.T) {
	var sb strings.Builder
	if err := ReportSurvival(&sb); err != nil {
		t.Fatalf("ReportSurvival: %v", err)
	}
	if !strings.Contains(sb.String(), "E17") || !strings.Contains(sb.String(), "1h") {
		t.Errorf("report: %q", sb.String())
	}
}
