package experiments

import (
	"math"
	"testing"

	"nvrel/internal/des"
	"nvrel/internal/nvp"
	"nvrel/internal/parallel"
	"nvrel/internal/percept"
)

// atWorkers runs f with the worker count pinned to n and restores the
// previous setting afterwards.
func atWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := parallel.SetWorkers(n)
	defer parallel.SetWorkers(prev)
	f()
}

func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestSweepsWorkerCountInvariant: every figure sweep (E3-E7) must produce
// element-wise identical results at one worker and at many — the parallel
// engine claims bit-identity with the serial order, not approximate
// agreement.
func TestSweepsWorkerCountInvariant(t *testing.T) {
	sweeps := []struct {
		name string
		run  func() (Series, error)
	}{
		{"fig3", func() (Series, error) { return RunFig3(nil) }},
		{"fig4a", func() (Series, error) { return RunFig4a(nil) }},
		{"fig4b", func() (Series, error) { return RunFig4b(nil) }},
		{"fig4c", func() (Series, error) { return RunFig4c(nil) }},
		{"fig4d", func() (Series, error) { return RunFig4d(nil) }},
	}
	for _, sw := range sweeps {
		var serial, wide Series
		var errSerial, errWide error
		atWorkers(t, 1, func() { serial, errSerial = sw.run() })
		atWorkers(t, 7, func() { wide, errWide = sw.run() })
		if errSerial != nil || errWide != nil {
			t.Fatalf("%s: serial err = %v, wide err = %v", sw.name, errSerial, errWide)
		}
		if len(serial.Points) != len(wide.Points) {
			t.Fatalf("%s: %d points serial, %d wide", sw.name, len(serial.Points), len(wide.Points))
		}
		for i := range serial.Points {
			s, w := serial.Points[i], wide.Points[i]
			if !sameFloat(s.X, w.X) || !sameFloat(s.FourVersion, w.FourVersion) || !sameFloat(s.SixVersion, w.SixVersion) {
				t.Errorf("%s point %d: serial %+v, wide %+v", sw.name, i, s, w)
			}
		}
	}
}

// TestReplicateWorkerCountInvariant: the DES replication engine must give
// the exact same confidence interval for a fixed seed at any worker count
// (substreams are pre-forked serially, accumulation is in rep order).
func TestReplicateWorkerCountInvariant(t *testing.T) {
	run := func() des.Summary {
		s, err := des.Replicate(64, 20240805, func(rep int, rng *des.RNG) (float64, error) {
			// A sample whose value depends on the stream state, so any
			// worker-dependent stream handoff would change the summary.
			v := 0.0
			for k := 0; k < 10+rep%5; k++ {
				v += rng.Float64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatalf("Replicate: %v", err)
		}
		return s
	}
	var base des.Summary
	atWorkers(t, 1, func() { base = run() })
	for _, n := range []int{2, 7} {
		var got des.Summary
		atWorkers(t, n, func() { got = run() })
		if got != base {
			t.Errorf("workers=%d: summary %+v, want %+v", n, got, base)
		}
	}
}

// TestSimulationWorkerCountInvariant: the full event-level simulator,
// replicated through the parallel engine, reproduces identical estimates
// for a fixed seed at every worker count.
func TestSimulationWorkerCountInvariant(t *testing.T) {
	cfg := percept.Config{
		Params:          nvp.DefaultSixVersion(),
		Rejuvenation:    true,
		Horizon:         20000,
		RequestInterval: 120,
	}
	run := func() percept.Estimate {
		est, err := percept.Replicate(cfg, 8, 424242)
		if err != nil {
			t.Fatalf("Replicate: %v", err)
		}
		return *est
	}
	var base percept.Estimate
	atWorkers(t, 1, func() { base = run() })
	for _, n := range []int{2, 7} {
		var got percept.Estimate
		atWorkers(t, n, func() { got = run() })
		if got != base {
			t.Errorf("workers=%d: estimate differs from serial\n got: %+v\nwant: %+v", n, got, base)
		}
	}
}
