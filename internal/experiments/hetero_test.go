package experiments

import (
	"math"
	"testing"
)

func TestRunHetero(t *testing.T) {
	res, err := RunHetero(8, 42)
	if err != nil {
		t.Fatalf("RunHetero: %v", err)
	}
	if len(res.PerVersion) != 4 {
		t.Fatalf("per-version rates = %d", len(res.PerVersion))
	}
	var mean float64
	for _, p := range res.PerVersion {
		if p <= 0 || p > 0.3 {
			t.Errorf("measured inaccuracy %g implausible", p)
		}
		mean += p
	}
	mean /= 4
	if math.Abs(mean-res.AveragedP) > 1e-12 {
		t.Errorf("AveragedP = %g, mean = %g", res.AveragedP, mean)
	}
	// With similar per-version rates the two evaluations nearly coincide.
	if math.Abs(res.AveragedE-res.HeterogeneousE) > 0.01 {
		t.Errorf("averaged %g vs heterogeneous %g diverge unexpectedly", res.AveragedE, res.HeterogeneousE)
	}
	if !res.Covered {
		t.Errorf("analytic %g outside simulated CI %v", res.HeterogeneousE, res.Simulated)
	}
}

func TestReportHeteroRegistered(t *testing.T) {
	if _, ok := Registry()["hetero"]; !ok {
		t.Fatal("hetero experiment not registered")
	}
	// The registered report runs 16 replications; exercise the runner with
	// a small count instead.
	res, err := RunHetero(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated.N != 2 {
		t.Errorf("replications = %d", res.Simulated.N)
	}
}
