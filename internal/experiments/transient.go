package experiments

import (
	"fmt"
	"io"
	"math"

	"nvrel/internal/nvp"
	"nvrel/internal/parallel"
)

// TransientPoint is one sample of the reliability-over-time curves.
type TransientPoint struct {
	Time        float64
	FourVersion float64
	SixVersion  float64
}

// TransientGrid is the default sampling grid for the transient experiment:
// dense over the first few rejuvenation cycles, then exponentially sparser
// until the curves settle.
func TransientGrid() []float64 {
	var grid []float64
	for t := 0.0; t <= 3000; t += 150 {
		grid = append(grid, t)
	}
	for _, t := range []float64{4000, 6000, 9000, 15000, 25000, 40000, 80000, 150000} {
		grid = append(grid, t)
	}
	return grid
}

// RunTransient computes E[R(t)] for both architectures from an all-healthy
// start (extension experiment E10: the paper only reports steady states).
func RunTransient(grid []float64) ([]TransientPoint, error) {
	if len(grid) == 0 {
		grid = TransientGrid()
	}
	// The two architectures' curves are independent; compute them
	// concurrently.
	var r4, r6 []float64
	err := parallel.ForEach(2, func(i int) error {
		if i == 0 {
			m4, err := solveCache.BuildNoRejuvenation(nvp.DefaultFourVersion())
			if err != nil {
				return err
			}
			rf4, err := m4.PaperReliability()
			if err != nil {
				return err
			}
			if r4, err = m4.TransientReliability(rf4, grid); err != nil {
				return fmt.Errorf("four-version transient: %w", err)
			}
			return nil
		}
		m6, err := solveCache.BuildWithRejuvenation(nvp.DefaultSixVersion())
		if err != nil {
			return err
		}
		rf6, err := m6.PaperReliability()
		if err != nil {
			return err
		}
		if r6, err = m6.TransientReliability(rf6, grid); err != nil {
			return fmt.Errorf("six-version transient: %w", err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]TransientPoint, len(grid))
	for i, t := range grid {
		out[i] = TransientPoint{Time: t, FourVersion: r4[i], SixVersion: r6[i]}
	}
	return out, nil
}

// MissionRow is one mission-window comparison.
type MissionRow struct {
	Mission     float64 // mission length in seconds
	FourVersion float64
	SixVersion  float64
}

// RunMissions computes the time-averaged reliability over mission windows
// of increasing length (extension: interval reliability for finite
// deployments, converging to the steady states as windows grow).
func RunMissions(windows []float64) ([]MissionRow, error) {
	if len(windows) == 0 {
		windows = []float64{600, 3600, 4 * 3600, 24 * 3600, 7 * 24 * 3600}
	}
	m4, err := solveCache.BuildNoRejuvenation(nvp.DefaultFourVersion())
	if err != nil {
		return nil, err
	}
	rf4, err := m4.PaperReliability()
	if err != nil {
		return nil, err
	}
	m6, err := solveCache.BuildWithRejuvenation(nvp.DefaultSixVersion())
	if err != nil {
		return nil, err
	}
	rf6, err := m6.PaperReliability()
	if err != nil {
		return nil, err
	}
	out := make([]MissionRow, 0, len(windows))
	for _, w := range windows {
		e4, err := m4.MissionReliability(rf4, w)
		if err != nil {
			return nil, fmt.Errorf("four-version mission %g: %w", w, err)
		}
		e6, err := m6.MissionReliability(rf6, w)
		if err != nil {
			return nil, fmt.Errorf("six-version mission %g: %w", w, err)
		}
		out = append(out, MissionRow{Mission: w, FourVersion: e4, SixVersion: e6})
	}
	return out, nil
}

// ReportTransient writes the E10 report.
func ReportTransient(w io.Writer) error {
	points, err := RunTransient(nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E10 (extension): expected reliability over time from an all-healthy start")
	fmt.Fprintf(w, "  %-10s %-12s %-12s\n", "t (s)", "E[R_4v](t)", "E[R_6v](t)")
	for _, p := range points {
		fmt.Fprintf(w, "  %-10g %-12.6f %-12.6f\n", p.Time, p.FourVersion, p.SixVersion)
	}
	missions, err := RunMissions(nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  mission-window averages (1/T Integral_0^T E[R(t)] dt):")
	fmt.Fprintf(w, "  %-10s %-12s %-12s\n", "T (s)", "4v", "6v")
	for _, m := range missions {
		fmt.Fprintf(w, "  %-10s %-12.6f %-12.6f\n", formatSeconds(m.Mission), m.FourVersion, m.SixVersion)
	}
	return nil
}

func formatSeconds(s float64) string {
	switch {
	case s >= 86400 && math.Mod(s, 86400) == 0:
		return fmt.Sprintf("%gd", s/86400)
	case s >= 3600 && math.Mod(s, 3600) == 0:
		return fmt.Sprintf("%gh", s/3600)
	default:
		return fmt.Sprintf("%gs", s)
	}
}
