// Package experiments defines one runnable experiment per table and figure
// of the paper's evaluation (§V) plus the extensions documented in
// DESIGN.md: the headline comparison (E1), the Table II parameter listing
// (E2), the rejuvenation-interval sweep of Figure 3 (E3), the four
// sensitivity sweeps of Figure 4 (E4-E7), the simulation cross-check (E8),
// and the optimal-interval search (E9).
package experiments

import (
	"errors"
	"fmt"
	"math"

	"nvrel/internal/linalg"
	"nvrel/internal/nvp"
	"nvrel/internal/parallel"
)

// Paper-reported reference values, used in reports and regression tests.
const (
	PaperFourVersion = 0.8233477
	PaperSixVersion  = 0.93464665
)

// Point is one sweep sample.
type Point struct {
	// X is the swept parameter value.
	X float64
	// FourVersion is E[R_4v] (NaN when the experiment has no 4v curve).
	FourVersion float64
	// SixVersion is E[R_6v] (NaN when the experiment has no 6v curve).
	SixVersion float64
}

// Series is a full sweep: the reproduction of one figure.
type Series struct {
	ID         string
	Title      string
	XLabel     string
	PaperClaim string
	Points     []Point
}

// evalFour solves the four-version system for params, reusing the cached
// reachability graph, an arena workspace, and the warm-start registry.
func evalFour(p nvp.Params) (float64, error) {
	ws := getWS()
	defer putWS(ws)
	return evalFourWS(ws, p)
}

// evalFourWS is evalFour on a caller-held workspace (sweep drivers hold
// one workspace per pool worker; see forEachWS).
func evalFourWS(ws *linalg.Workspace, p nvp.Params) (float64, error) {
	m, err := solveCache.BuildNoRejuvenation(p)
	if err != nil {
		return 0, err
	}
	return evalModel(ws, m)
}

// evalSix solves the six-version system for params, reusing the cached
// reachability graph, an arena workspace, and the warm-start registry.
func evalSix(p nvp.Params) (float64, error) {
	ws := getWS()
	defer putWS(ws)
	return evalSixWS(ws, p)
}

// evalSixWS is evalSix on a caller-held workspace.
func evalSixWS(ws *linalg.Workspace, p nvp.Params) (float64, error) {
	m, err := solveCache.BuildWithRejuvenation(p)
	if err != nil {
		return 0, err
	}
	return evalModel(ws, m)
}

// evalModel is the shared solve-and-weigh step of every experiment in this
// package: a warm-registry solve (a passthrough for dense-routed models)
// followed by the paper reliability summation over the solved
// distribution — bit-identical to the one-call ExpectedPaperReliabilityWS
// path (see ExpectedPaperReliabilityFrom).
func evalModel(ws *linalg.Workspace, m *nvp.Model) (float64, error) {
	pi, _, err := warmReg.SolveDiagCtxWS(nil, m, ws)
	if err != nil {
		return 0, err
	}
	return m.ExpectedPaperReliabilityFrom(pi)
}

// Headline reproduces the §V-B default-parameter comparison (E1).
type Headline struct {
	FourVersion float64 // E[R_4v], paper: 0.8233477
	SixVersion  float64 // E[R_6v], paper: 0.93464665
	Improvement float64 // relative gain, paper: "superior to 13%"
}

// RunHeadline computes the headline numbers at the Table II defaults. The
// two architectures solve concurrently.
func RunHeadline() (Headline, error) {
	var e4, e6 float64
	err := parallel.ForEach(2, func(i int) error {
		var err error
		if i == 0 {
			if e4, err = evalFour(nvp.DefaultFourVersion()); err != nil {
				return fmt.Errorf("four-version: %w", err)
			}
			return nil
		}
		if e6, err = evalSix(nvp.DefaultSixVersion()); err != nil {
			return fmt.Errorf("six-version: %w", err)
		}
		return nil
	})
	if err != nil {
		return Headline{}, err
	}
	return Headline{
		FourVersion: e4,
		SixVersion:  e6,
		Improvement: (e6 - e4) / e4,
	}, nil
}

// Fig3Grid is the paper's rejuvenation-interval sweep range (200-3000 s).
func Fig3Grid() []float64 {
	grid := make([]float64, 0, 29)
	for v := 200.0; v <= 3000; v += 100 {
		grid = append(grid, v)
	}
	return grid
}

// RunFig3 sweeps the rejuvenation interval for the six-version system.
func RunFig3(grid []float64) (Series, error) {
	if len(grid) == 0 {
		grid = Fig3Grid()
	}
	s := Series{
		ID:     "fig3",
		Title:  "Expected reliability vs rejuvenation interval (six-version)",
		XLabel: "1/gamma (s)",
		PaperClaim: "reliability declines as the interval grows beyond the optimum; " +
			"paper reports the maximum at 400-450 s",
	}
	points := make([]Point, len(grid))
	err := forEachWS(len(grid), func(ws *linalg.Workspace, i int) error {
		tau := grid[i]
		p := nvp.DefaultSixVersion()
		p.RejuvenationInterval = tau
		e6, err := evalSixWS(ws, p)
		if err != nil {
			return fmt.Errorf("tau=%g: %w", tau, err)
		}
		points[i] = Point{X: tau, FourVersion: math.NaN(), SixVersion: e6}
		return nil
	})
	if err != nil {
		return Series{}, err
	}
	s.Points = points
	return s, nil
}

// Fig4aGrid is the mean-time-to-compromise sweep.
func Fig4aGrid() []float64 {
	return []float64{200, 300, 400, 525, 600, 800, 1000, 1523, 2000, 3000, 4000, 5000, 6000, 8000, 10000, 12000}
}

// RunFig4a sweeps the mean time to compromise (1/lambda_c) for both
// systems.
func RunFig4a(grid []float64) (Series, error) {
	if len(grid) == 0 {
		grid = Fig4aGrid()
	}
	s := Series{
		ID:     "fig4a",
		Title:  "Expected reliability vs mean time to compromise",
		XLabel: "1/lambda_c (s)",
		PaperClaim: "four-version wins at both extremes (paper: 1/lambda_c < 525 s and " +
			"> 6000 s); six-version wins in between",
	}
	err := sweepBoth(&s, grid, func(p *nvp.Params, v float64) {
		p.MeanTimeToCompromise = v
	})
	return s, err
}

// Fig4bGrid is the error-dependency sweep (paper: 0.1 to 1).
func Fig4bGrid() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// RunFig4b sweeps the error-probability dependency alpha.
func RunFig4b(grid []float64) (Series, error) {
	if len(grid) == 0 {
		grid = Fig4bGrid()
	}
	s := Series{
		ID:         "fig4b",
		Title:      "Expected reliability vs error dependency between modules",
		XLabel:     "alpha",
		PaperClaim: "small impact: ~1.5% drop for four-version, ~6.6% for six-version over [0.1, 1]",
	}
	err := sweepBoth(&s, grid, func(p *nvp.Params, v float64) { p.Alpha = v })
	return s, err
}

// Fig4cGrid is the healthy-inaccuracy sweep (paper: 0.01 to 0.2).
func Fig4cGrid() []float64 {
	return []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.1, 0.12, 0.14, 0.16, 0.18, 0.2}
}

// RunFig4c sweeps the healthy-module inaccuracy p.
func RunFig4c(grid []float64) (Series, error) {
	if len(grid) == 0 {
		grid = Fig4cGrid()
	}
	s := Series{
		ID:         "fig4c",
		Title:      "Expected reliability vs healthy-module inaccuracy",
		XLabel:     "p",
		PaperClaim: "six-version always wins but drops ~13% over [0.01, 0.2]; four-version drops ~5%",
	}
	err := sweepBoth(&s, grid, func(p *nvp.Params, v float64) { p.P = v })
	return s, err
}

// Fig4dGrid is the compromised-inaccuracy sweep.
func Fig4dGrid() []float64 {
	return []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8}
}

// RunFig4d sweeps the compromised-module inaccuracy p'.
func RunFig4d(grid []float64) (Series, error) {
	if len(grid) == 0 {
		grid = Fig4dGrid()
	}
	s := Series{
		ID:         "fig4d",
		Title:      "Expected reliability vs compromised-module inaccuracy",
		XLabel:     "p'",
		PaperClaim: "rejuvenation (six-version) is beneficial only when p' > ~0.3",
	}
	err := sweepBoth(&s, grid, func(p *nvp.Params, v float64) { p.PPrime = v })
	return s, err
}

// sweepBoth evaluates both architectures over the grid in parallel,
// applying set to each architecture's default parameters. Points land in
// grid order and the returned error is the one a serial sweep would hit
// first (lowest grid index). Each pool worker holds one arena workspace
// for the whole sweep instead of checking one out per point.
func sweepBoth(s *Series, grid []float64, set func(*nvp.Params, float64)) error {
	points := make([]Point, len(grid))
	err := forEachWS(len(grid), func(ws *linalg.Workspace, i int) error {
		v := grid[i]
		p4 := nvp.DefaultFourVersion()
		set(&p4, v)
		e4, err := evalFourWS(ws, p4)
		if err != nil {
			return fmt.Errorf("%s: four-version at %g: %w", s.ID, v, err)
		}
		p6 := nvp.DefaultSixVersion()
		set(&p6, v)
		e6, err := evalSixWS(ws, p6)
		if err != nil {
			return fmt.Errorf("%s: six-version at %g: %w", s.ID, v, err)
		}
		points[i] = Point{X: v, FourVersion: e4, SixVersion: e6}
		return nil
	})
	if err != nil {
		return err
	}
	s.Points = points
	return nil
}

// Crossovers returns the X positions where the six-version curve crosses
// the four-version curve (linear interpolation between grid points).
func (s Series) Crossovers() []float64 {
	var xs []float64
	for i := 1; i < len(s.Points); i++ {
		a, b := s.Points[i-1], s.Points[i]
		da := a.SixVersion - a.FourVersion
		db := b.SixVersion - b.FourVersion
		if math.IsNaN(da) || math.IsNaN(db) || da == 0 || da*db > 0 {
			continue
		}
		t := da / (da - db)
		xs = append(xs, a.X+t*(b.X-a.X))
	}
	return xs
}

// Best returns the point with the highest six-version reliability.
func (s Series) Best() (Point, error) {
	if len(s.Points) == 0 {
		return Point{}, errors.New("experiments: empty series")
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.SixVersion > best.SixVersion {
			best = p
		}
	}
	return best, nil
}
