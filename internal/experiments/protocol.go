package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/bftvote"
	"nvrel/internal/des"
	"nvrel/internal/mlsim"
	"nvrel/internal/nvp"
	"nvrel/internal/voter"
)

// ProtocolResult summarizes the message-level voting experiment (extension
// E16): the six-version system's voter realized as an actual BFT-style
// vote exchange, with module states sampled from the analytic steady state
// and module outputs from the generative error model.
type ProtocolResult struct {
	// Tally classifies each round: correct when an honest replica decided
	// the true label, erroneous when any replica decided a wrong label,
	// skipped when the round timed out without a quorum.
	Tally voter.Tally
	// MeanDecisionLatency is the average time (s) from round start to the
	// first correct decision, over correct rounds.
	MeanDecisionLatency float64
	// MeanMessages is the average number of votes on the wire per round.
	MeanMessages float64
	// AnalyticSafety is E[R_6v] for comparison with 1 - Tally error rate.
	AnalyticSafety float64
}

// RunProtocol executes message-level voting rounds.
func RunProtocol(rounds int, seed uint64) (*ProtocolResult, error) {
	if rounds <= 0 {
		rounds = 4000
	}
	params := nvp.DefaultSixVersion()
	model, err := nvp.BuildWithRejuvenation(params)
	if err != nil {
		return nil, err
	}
	states, err := model.StateDistribution()
	if err != nil {
		return nil, err
	}
	analytic, err := model.ExpectedPaperReliability()
	if err != nil {
		return nil, err
	}
	errModel, err := mlsim.NewErrorModel(params.P, params.PPrime, params.Alpha)
	if err != nil {
		return nil, err
	}

	rng := des.NewRNG(seed)
	sampleState := func() nvp.ModuleState {
		u := rng.Float64()
		acc := 0.0
		for _, s := range states {
			acc += s.Probability
			if u <= acc {
				return s
			}
		}
		return states[len(states)-1]
	}

	res := &ProtocolResult{AnalyticSafety: analytic}
	var latencySum float64
	var latencyN, msgSum int
	for round := 0; round < rounds; round++ {
		st := sampleState()
		correct := errModel.SampleCorrectness(rng, st.Healthy, st.Compromised)
		behaviors := make([]bftvote.Behavior, 0, params.N)
		for _, ok := range correct {
			if ok {
				behaviors = append(behaviors, bftvote.Honest)
			} else {
				behaviors = append(behaviors, bftvote.Wrong)
			}
		}
		for i := 0; i < st.Down; i++ {
			behaviors = append(behaviors, bftvote.Silent)
		}
		rr, err := bftvote.Run(bftvote.RoundConfig{
			Behaviors:    behaviors,
			Quorum:       params.Scheme().Threshold(),
			CorrectLabel: 1,
			WrongLabel:   2,
			Network:      bftvote.NetworkConfig{MeanDelay: 0.005},
			Timeout:      1,
		}, rng.Fork())
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		msgSum += rr.MessagesSent

		outcome := voter.Skipped
		var firstCorrect float64 = -1
		for _, d := range rr.Decisions {
			if !d.Decided {
				continue
			}
			if d.Label == 1 {
				if firstCorrect < 0 || d.At < firstCorrect {
					firstCorrect = d.At
				}
				if outcome == voter.Skipped {
					outcome = voter.Correct
				}
			} else {
				outcome = voter.Erroneous
			}
		}
		res.Tally.Record(outcome)
		if outcome == voter.Correct {
			latencySum += firstCorrect
			latencyN++
		}
	}
	if latencyN > 0 {
		res.MeanDecisionLatency = latencySum / float64(latencyN)
	}
	res.MeanMessages = float64(msgSum) / float64(rounds)
	return res, nil
}

// ReportProtocol writes the E16 report.
func ReportProtocol(w io.Writer) error {
	res, err := RunProtocol(4000, 20230707)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E16 (extension): message-level BFT-style voting (six-version system)")
	fmt.Fprintf(w, "  rounds: %d over states sampled from the analytic steady state\n", res.Tally.Total())
	fmt.Fprintf(w, "  P(correct decision)        = %.4f\n", res.Tally.Reliability())
	fmt.Fprintf(w, "  1 - P(erroneous decision)  = %.4f (analytic E[R_6v] = %.4f)\n", res.Tally.Safety(), res.AnalyticSafety)
	fmt.Fprintf(w, "  P(timeout/skip)            = %.4f\n", 1-res.Tally.Reliability()-res.Tally.ErrorRate())
	fmt.Fprintf(w, "  mean decision latency      = %.4f s (5 ms mean link delay)\n", res.MeanDecisionLatency)
	fmt.Fprintf(w, "  mean votes per round       = %.1f (all-to-all broadcast)\n", res.MeanMessages)
	return nil
}
