package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunHeadlineMatchesPaper(t *testing.T) {
	h, err := RunHeadline()
	if err != nil {
		t.Fatalf("RunHeadline: %v", err)
	}
	if rel := math.Abs(h.FourVersion-PaperFourVersion) / PaperFourVersion; rel > 0.005 {
		t.Errorf("E[R_4v] = %.7f deviates %.3f%% from paper", h.FourVersion, 100*rel)
	}
	if rel := math.Abs(h.SixVersion-PaperSixVersion) / PaperSixVersion; rel > 0.01 {
		t.Errorf("E[R_6v] = %.8f deviates %.3f%% from paper", h.SixVersion, 100*rel)
	}
	if h.Improvement < 0.13 {
		t.Errorf("improvement = %.3f, paper claims > 13%%", h.Improvement)
	}
}

func TestRunFig3Shape(t *testing.T) {
	s, err := RunFig3(nil)
	if err != nil {
		t.Fatalf("RunFig3: %v", err)
	}
	if len(s.Points) != len(Fig3Grid()) {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Paper Figure 3: reliability declines as the interval grows past the
	// optimum. Verify the right side of the sweep is strictly decreasing.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].X < 450 {
			continue
		}
		if s.Points[i].SixVersion >= s.Points[i-1].SixVersion {
			t.Errorf("E[R_6v] not decreasing at tau=%g", s.Points[i].X)
		}
	}
	// At the paper's default interval the value must match the headline.
	for _, p := range s.Points {
		if p.X == 600 {
			h, err := RunHeadline()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p.SixVersion-h.SixVersion) > 1e-12 {
				t.Errorf("fig3 at 600 = %.9f != headline %.9f", p.SixVersion, h.SixVersion)
			}
		}
	}
}

func TestRunFig4aCrossovers(t *testing.T) {
	s, err := RunFig4a(nil)
	if err != nil {
		t.Fatalf("RunFig4a: %v", err)
	}
	xs := s.Crossovers()
	if len(xs) != 2 {
		t.Fatalf("crossovers = %v, want exactly two (paper: ~525 and ~6000)", xs)
	}
	// Shape agreement: a low crossover below the default 1523 and a high
	// crossover above it (paper: 525 and 6000; this model: ~350 and
	// ~9000 — same structure, see EXPERIMENTS.md).
	if xs[0] >= 1523 || xs[1] <= 1523 {
		t.Errorf("crossovers %v do not bracket the default 1523", xs)
	}
	// Four-version must win at both extremes.
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	if first.FourVersion <= first.SixVersion {
		t.Errorf("at 1/lambda_c=%g the four-version should win", first.X)
	}
	if last.FourVersion <= last.SixVersion {
		t.Errorf("at 1/lambda_c=%g the four-version should win", last.X)
	}
}

func TestRunFig4bDrops(t *testing.T) {
	s, err := RunFig4b(nil)
	if err != nil {
		t.Fatalf("RunFig4b: %v", err)
	}
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	drop4 := (first.FourVersion - last.FourVersion) / first.FourVersion
	drop6 := (first.SixVersion - last.SixVersion) / first.SixVersion
	// Paper: ~1.5% and ~6.6%.
	if drop4 < 0.005 || drop4 > 0.03 {
		t.Errorf("four-version alpha drop = %.3f%%, paper ~1.5%%", 100*drop4)
	}
	if drop6 < 0.04 || drop6 > 0.09 {
		t.Errorf("six-version alpha drop = %.3f%%, paper ~6.6%%", 100*drop6)
	}
}

func TestRunFig4cDrops(t *testing.T) {
	s, err := RunFig4c(nil)
	if err != nil {
		t.Fatalf("RunFig4c: %v", err)
	}
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	drop4 := (first.FourVersion - last.FourVersion) / first.FourVersion
	drop6 := (first.SixVersion - last.SixVersion) / first.SixVersion
	// Paper: ~5% and ~13%.
	if drop4 < 0.03 || drop4 > 0.08 {
		t.Errorf("four-version p drop = %.3f%%, paper ~5%%", 100*drop4)
	}
	if drop6 < 0.10 || drop6 > 0.16 {
		t.Errorf("six-version p drop = %.3f%%, paper ~13%%", 100*drop6)
	}
	// Six-version wins everywhere on this sweep (paper: "better for all
	// cases").
	for _, p := range s.Points {
		if p.SixVersion <= p.FourVersion {
			t.Errorf("six-version loses at p=%g", p.X)
		}
	}
}

func TestRunFig4dThreshold(t *testing.T) {
	s, err := RunFig4d(nil)
	if err != nil {
		t.Fatalf("RunFig4d: %v", err)
	}
	xs := s.Crossovers()
	if len(xs) != 1 {
		t.Fatalf("crossovers = %v, want one (paper: ~0.3)", xs)
	}
	if xs[0] < 0.2 || xs[0] > 0.35 {
		t.Errorf("crossover at p' = %.3f, paper ~0.3", xs[0])
	}
	// Rejuvenation beneficial only beyond the threshold.
	for _, p := range s.Points {
		if p.X < xs[0] && p.SixVersion >= p.FourVersion {
			t.Errorf("six-version should lose at p'=%g", p.X)
		}
		if p.X > xs[0]+0.01 && p.SixVersion <= p.FourVersion {
			t.Errorf("six-version should win at p'=%g", p.X)
		}
	}
}

func TestRunOptimize(t *testing.T) {
	best, err := RunOptimize(100, 3000, 5)
	if err != nil {
		t.Fatalf("RunOptimize: %v", err)
	}
	// Under the verbatim rewards the response is monotone decreasing, so
	// the optimum is the left boundary.
	if !best.Boundary || best.Interval != 100 {
		t.Errorf("optimum = %+v, want left boundary 100", best)
	}
	if best.Reliability <= PaperSixVersion {
		t.Errorf("optimal reliability %.6f should beat the 600 s default", best.Reliability)
	}
}

func TestRunOptimizeValidation(t *testing.T) {
	if _, err := RunOptimize(0, 100, 1); err == nil {
		t.Error("lo = 0 accepted")
	}
	if _, err := RunOptimize(200, 100, 1); err == nil {
		t.Error("hi < lo accepted")
	}
}

func TestCrossoversLinearInterpolation(t *testing.T) {
	s := Series{Points: []Point{
		{X: 0, FourVersion: 1, SixVersion: 0},
		{X: 10, FourVersion: 0, SixVersion: 1},
	}}
	xs := s.Crossovers()
	if len(xs) != 1 || math.Abs(xs[0]-5) > 1e-12 {
		t.Errorf("crossovers = %v, want [5]", xs)
	}
}

func TestBestEmptySeries(t *testing.T) {
	var s Series
	if _, err := s.Best(); err == nil {
		t.Error("Best on empty series should fail")
	}
}

func TestTableII(t *testing.T) {
	rows := TableII()
	if len(rows) != 11 {
		t.Fatalf("Table II has %d rows, want 11", len(rows))
	}
	if rows[6].Name != "1/lambda_c" || rows[6].Value != "1523 s" {
		t.Errorf("row 6 = %+v", rows[6])
	}
}

func TestRegistryAndRun(t *testing.T) {
	names := Names()
	if len(names) != 20 {
		t.Fatalf("registry has %d entries: %v", len(names), names)
	}
	var sb strings.Builder
	if err := Run("params", &sb); err != nil {
		t.Fatalf("Run(params): %v", err)
	}
	if !strings.Contains(sb.String(), "1523") {
		t.Errorf("params report missing values: %q", sb.String())
	}
	if err := Run("nope", &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestReportHeadlineOutput(t *testing.T) {
	var sb strings.Builder
	if err := ReportHeadline(&sb); err != nil {
		t.Fatalf("ReportHeadline: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"four-version", "six-version", "improvement", "0.8233477"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesWriteTableAndCSV(t *testing.T) {
	s, err := RunFig4d(Fig4dGrid()[:4])
	if err != nil {
		t.Fatal(err)
	}
	var table strings.Builder
	if err := s.WriteTable(&table); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	if !strings.Contains(table.String(), "E[R_4v]") {
		t.Errorf("table missing header:\n%s", table.String())
	}
	var csv strings.Builder
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 {
		t.Errorf("csv has %d lines, want 5:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "p',four_version,six_version") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestSeriesWriteTableSixOnly(t *testing.T) {
	s, err := RunFig3([]float64{400, 600})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "E[R_4v]") {
		t.Errorf("six-only table should not have a 4v column:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "maximum at") {
		t.Errorf("six-only table should report its maximum:\n%s", sb.String())
	}
}
