package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/nvp"
)

// AttackRow is one burstiness sample: the attack duty cycle with the
// average compromise rate held at the Table II default.
type AttackRow struct {
	DutyCycle   float64
	FourVersion float64
	SixVersion  float64
}

// RunAttacker sweeps attack burstiness at constant average intensity
// (extension experiment E18): a Markov-modulated adversary concentrates
// the same long-run compromise rate (1/1523 per second) into campaigns
// covering the given fraction of time. Duty cycle 1 is the paper's
// constant-intensity threat model.
func RunAttacker(dutyCycles []float64) ([]AttackRow, error) {
	if len(dutyCycles) == 0 {
		dutyCycles = []float64{1, 0.75, 0.5, 0.25, 0.1, 0.05}
	}
	const (
		averageRate = 1.0 / 1523
		cycleLength = 3000.0
	)
	out := make([]AttackRow, 0, len(dutyCycles))
	for _, duty := range dutyCycles {
		a, err := nvp.BurstyAttacker(averageRate, duty, cycleLength)
		if err != nil {
			return nil, err
		}
		m4, err := nvp.BuildNoRejuvenationAttacked(nvp.DefaultFourVersion(), a)
		if err != nil {
			return nil, fmt.Errorf("duty %g: %w", duty, err)
		}
		e4, err := m4.ExpectedPaperReliability()
		if err != nil {
			return nil, err
		}
		m6, err := nvp.BuildWithRejuvenationAttacked(nvp.DefaultSixVersion(), a)
		if err != nil {
			return nil, fmt.Errorf("duty %g: %w", duty, err)
		}
		e6, err := m6.ExpectedPaperReliability()
		if err != nil {
			return nil, err
		}
		out = append(out, AttackRow{DutyCycle: duty, FourVersion: e4, SixVersion: e6})
	}
	return out, nil
}

// ReportAttacker writes the E18 report.
func ReportAttacker(w io.Writer) error {
	rows, err := RunAttacker(nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E18 (extension): attack burstiness at constant average intensity")
	fmt.Fprintln(w, "  a Markov-modulated adversary packs the default compromise rate (1/1523 /s)")
	fmt.Fprintln(w, "  into campaigns covering the duty-cycle fraction of time (3000 s phase cycle)")
	fmt.Fprintf(w, "  %-12s %-12s %-12s\n", "duty cycle", "E[R_4v]", "E[R_6v]")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12g %-12.6f %-12.6f\n", r.DutyCycle, r.FourVersion, r.SixVersion)
	}
	fmt.Fprintln(w, "  finding: burstiness helps the unrejuvenated system (long quiet phases let")
	fmt.Fprintln(w, "  repairs catch up) but hurts the rejuvenated one (campaign compromises")
	fmt.Fprintln(w, "  outpace the fixed 600 s rejuvenation cycle) — the constant-intensity")
	fmt.Fprintln(w, "  assumption in the paper's threat model is favorable to rejuvenation")
	return nil
}
