package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Runner executes a named experiment and writes a human-readable report.
type Runner func(w io.Writer) error

// Registry returns all experiments keyed by CLI name.
func Registry() map[string]Runner {
	return map[string]Runner{
		"headline":      ReportHeadline,
		"params":        ReportTableII,
		"fig3":          seriesRunner(func() (Series, error) { return RunFig3(nil) }),
		"fig4a":         seriesRunner(func() (Series, error) { return RunFig4a(nil) }),
		"fig4b":         seriesRunner(func() (Series, error) { return RunFig4b(nil) }),
		"fig4c":         seriesRunner(func() (Series, error) { return RunFig4c(nil) }),
		"fig4d":         seriesRunner(func() (Series, error) { return RunFig4d(nil) }),
		"optimize":      ReportOptimize,
		"simcheck":      ReportSimulationCheck,
		"transient":     ReportTransient,
		"ablations":     ReportAblations,
		"architectures": ReportArchitectures,
		"voting":        ReportVoting,
		"outage":        ReportOutage,
		"sensitivity":   ReportSensitivity,
		"protocol":      ReportProtocol,
		"survival":      ReportSurvival,
		"attacker":      ReportAttacker,
		"outcomes":      ReportOutcomes,
		"hetero":        ReportHetero,
	}
}

// Names returns the registry keys in a stable order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by name.
func Run(name string, w io.Writer) error {
	r, ok := Registry()[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return r(w)
}

// ReportHeadline writes the E1 report.
func ReportHeadline(w io.Writer) error {
	h, err := RunHeadline()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E1: expected output reliability at Table II defaults")
	fmt.Fprintf(w, "  %-34s %-12s %-12s\n", "system", "this repo", "paper")
	fmt.Fprintf(w, "  %-34s %-12.7f %-12.7f\n", "four-version (no rejuvenation)", h.FourVersion, PaperFourVersion)
	fmt.Fprintf(w, "  %-34s %-12.8f %-12.8f\n", "six-version (with rejuvenation)", h.SixVersion, PaperSixVersion)
	fmt.Fprintf(w, "  improvement: %.1f%% (paper: \"superior to 13%%\")\n", 100*h.Improvement)
	return nil
}

// ReportTableII writes the E2 parameter listing.
func ReportTableII(w io.Writer) error {
	fmt.Fprintln(w, "E2: default input parameters (Table II)")
	fmt.Fprintf(w, "  %-12s %-12s %s\n", "param", "transition", "value")
	for _, row := range TableII() {
		fmt.Fprintf(w, "  %-12s %-12s %s\n", row.Name, row.Transition, row.Value)
	}
	return nil
}

// errWriter accumulates the first write error so report loops stay
// readable while still propagating I/O failures (a full disk or closed
// pipe must surface as a non-zero exit, not a truncated report).
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// WriteTable renders a sweep series as an aligned text table.
func (s Series) WriteTable(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("%s: %s\n", strings.ToUpper(s.ID), s.Title)
	ew.printf("  paper: %s\n", s.PaperClaim)
	has4 := false
	for _, p := range s.Points {
		if !math.IsNaN(p.FourVersion) {
			has4 = true
			break
		}
	}
	if has4 {
		ew.printf("  %-12s %-12s %-12s %s\n", s.XLabel, "E[R_4v]", "E[R_6v]", "winner")
		for _, p := range s.Points {
			winner := "6v"
			if p.FourVersion > p.SixVersion {
				winner = "4v"
			}
			ew.printf("  %-12g %-12.6f %-12.6f %s\n", p.X, p.FourVersion, p.SixVersion, winner)
		}
		if xs := s.Crossovers(); len(xs) > 0 {
			ew.printf("  crossovers at %s = ", s.XLabel)
			for i, x := range xs {
				if i > 0 {
					ew.printf(", ")
				}
				ew.printf("%.0f", x)
			}
			ew.printf("\n")
		}
		return ew.err
	}
	ew.printf("  %-12s %-12s\n", s.XLabel, "E[R_6v]")
	for _, p := range s.Points {
		ew.printf("  %-12g %-12.8f\n", p.X, p.SixVersion)
	}
	best, err := s.Best()
	if err != nil {
		return fmt.Errorf("%s: %w", s.ID, err)
	}
	ew.printf("  maximum at %s = %g (E[R_6v] = %.8f)\n", s.XLabel, best.X, best.SixVersion)
	return ew.err
}

// WriteCSV renders a sweep series as CSV for plotting.
func (s Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,four_version,six_version\n", csvEscape(s.XLabel)); err != nil {
		return err
	}
	for _, p := range s.Points {
		f4 := ""
		if !math.IsNaN(p.FourVersion) {
			f4 = fmt.Sprintf("%.9f", p.FourVersion)
		}
		f6 := ""
		if !math.IsNaN(p.SixVersion) {
			f6 = fmt.Sprintf("%.9f", p.SixVersion)
		}
		if _, err := fmt.Fprintf(w, "%g,%s,%s\n", p.X, f4, f6); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	return strings.NewReplacer(",", "_", "\n", " ", "\"", "'").Replace(s)
}

func seriesRunner(run func() (Series, error)) Runner {
	return func(w io.Writer) error {
		s, err := run()
		if err != nil {
			return err
		}
		return s.WriteTable(w)
	}
}

// ReportOptimize writes the E9 report.
func ReportOptimize(w io.Writer) error {
	best, err := RunOptimize(100, 3000, 1)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E9: optimal rejuvenation interval over [100, 3000] s")
	fmt.Fprintf(w, "  best interval: %.0f s (E[R_6v] = %.8f)\n", best.Interval, best.Reliability)
	if best.Boundary {
		fmt.Fprintln(w, "  note: the optimum sits on the search boundary; under the verbatim")
		fmt.Fprintln(w, "  reward functions more frequent rejuvenation is monotonically better")
		fmt.Fprintln(w, "  (the paper's Figure 3 reports an interior optimum at 400-450 s; see")
		fmt.Fprintln(w, "  EXPERIMENTS.md for the discrepancy analysis)")
	}
	return nil
}

// ReportSimulationCheck writes the E8 report.
func ReportSimulationCheck(w io.Writer) error {
	checks, err := RunSimulationCheck(16, 2e6, 424242)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E8: discrete-event simulation vs analytic solvers")
	for _, c := range checks {
		status := "OK (analytic value inside 95% CI)"
		if !c.Covered {
			status = "MISMATCH (analytic value outside 95% CI)"
		}
		fmt.Fprintf(w, "  %s\n", c.Architecture)
		fmt.Fprintf(w, "    analytic:  %.7f\n", c.Analytic)
		fmt.Fprintf(w, "    simulated: %s\n", c.Simulated.AnalyticReward)
		fmt.Fprintf(w, "    %s\n", status)
	}
	return nil
}
