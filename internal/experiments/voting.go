package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/mlsim"
	"nvrel/internal/nvp"
	"nvrel/internal/percept"
	"nvrel/internal/voter"
)

// VotingRow compares one label-voting scheme under one wrong-label policy.
type VotingRow struct {
	Scheme      string
	WrongLabels string
	Reliability float64 // P(correct decision)
	Safety      float64 // 1 - P(erroneous decision)
	Skips       float64 // P(inconclusive, output suppressed)
}

// RunVoting simulates the six-version system with label-level voting and
// compares decision schemes under benign (independent wrong labels) and
// adversarial (agreeing wrong labels) misclassification (extension
// experiment E13). The paper abstracts voting to the counting rule of
// A.2/A.3; this experiment quantifies what that abstraction hides: under
// benign errors wrong outputs rarely agree, so threshold voters almost
// never emit an erroneous output, while adversarially coordinated errors
// realize the counting rule's worst case.
func RunVoting(replications int, horizon float64, seed uint64) ([]VotingRow, error) {
	if replications <= 0 {
		replications = 8
	}
	if horizon <= 0 {
		horizon = 1e6
	}
	schemes := []voter.LabelScheme{
		voter.Threshold{K: 4}, // the paper's 2f+r+1 threshold
		voter.Majority{},
		voter.Plurality{},
		voter.Unanimity{},
	}
	policies := []mlsim.WrongLabelPolicy{mlsim.CommonWrongLabel, mlsim.IndependentWrongLabels}

	var rows []VotingRow
	for _, policy := range policies {
		for i, scheme := range schemes {
			cfg := percept.Config{
				Params:          nvp.DefaultSixVersion(),
				Rejuvenation:    true,
				Horizon:         horizon,
				WarmUp:          horizon / 40,
				RequestInterval: 120,
				Classes:         43, // GTSRB-sized label space
				WrongLabels:     policy,
				LabelScheme:     scheme,
			}
			est, err := percept.Replicate(cfg, replications, seed+uint64(i)*31+uint64(policy)*977)
			if err != nil {
				return nil, fmt.Errorf("scheme %s / %s: %w", scheme.Name(), policy, err)
			}
			rows = append(rows, VotingRow{
				Scheme:      scheme.Name(),
				WrongLabels: policy.String(),
				Reliability: est.LabelReliability.Mean,
				Safety:      est.LabelSafety.Mean,
				Skips:       est.LabelSafety.Mean - est.LabelReliability.Mean,
			})
		}
	}
	return rows, nil
}

// ReportVoting writes the E13 report.
func ReportVoting(w io.Writer) error {
	rows, err := RunVoting(8, 1e6, 20230705)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E13 (extension): label-voting schemes on the six-version system (43 classes)")
	fmt.Fprintf(w, "  %-14s %-26s %-12s %-12s %s\n", "scheme", "wrong labels", "P(correct)", "1-P(error)", "P(skip)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %-26s %-12.4f %-12.4f %.4f\n", r.Scheme, r.WrongLabels, r.Reliability, r.Safety, r.Skips)
	}
	fmt.Fprintln(w, "  (the paper's counting rule corresponds to the adversarial common-wrong-label case)")
	return nil
}
