package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/nvp"
	"nvrel/internal/parallel"
	"nvrel/internal/reliability"
)

// AblationRow is one modeling-choice comparison at the Table II defaults.
type AblationRow struct {
	Dimension   string
	Variant     string
	FourVersion float64
	SixVersion  float64
	Note        string
}

// RunAblations evaluates the modeling choices DESIGN.md calls out, each at
// the Table II defaults (extension experiment E11):
//
//   - reliability model: the paper's verbatim appendix formulas versus the
//     self-consistent dependent model versus the independence baseline;
//   - firing semantics: single-server (TimeNET default, used for the
//     published numbers) versus per-token;
//   - clock policy: free-running (guard g3 as printed) versus
//     waits-for-wave.
func RunAblations() ([]AblationRow, error) {
	var rows []AblationRow

	// Reliability-model choice.
	type rfChoice struct {
		name string
		make func(pr reliability.Params, s reliability.Scheme, n int) (reliability.StateFn, error)
		note string
	}
	verbatim := func(pr reliability.Params, _ reliability.Scheme, n int) (reliability.StateFn, error) {
		if n == 4 {
			return reliability.FourVersion(pr)
		}
		return reliability.SixVersion(pr)
	}
	dependent := func(pr reliability.Params, s reliability.Scheme, _ int) (reliability.StateFn, error) {
		return reliability.Dependent(pr, s)
	}
	independent := func(pr reliability.Params, s reliability.Scheme, _ int) (reliability.StateFn, error) {
		return reliability.Independent(pr, s)
	}
	for _, choice := range []rfChoice{
		{name: "verbatim appendix", make: verbatim, note: "reproduces the published numbers"},
		{name: "dependent (consistent)", make: dependent, note: "differs in R_{2,2,0}, R_{0,4,0}, R_{4,2,0}"},
		{name: "independent baseline", make: independent, note: "alpha ignored"},
	} {
		m4, err := solveCache.BuildNoRejuvenation(nvp.DefaultFourVersion())
		if err != nil {
			return nil, err
		}
		rf4, err := choice.make(m4.Params.Reliability(), m4.Params.Scheme(), 4)
		if err != nil {
			return nil, err
		}
		e4, err := m4.ExpectedReliability(rf4)
		if err != nil {
			return nil, err
		}
		m6, err := solveCache.BuildWithRejuvenation(nvp.DefaultSixVersion())
		if err != nil {
			return nil, err
		}
		rf6, err := choice.make(m6.Params.Reliability(), m6.Params.Scheme(), 6)
		if err != nil {
			return nil, err
		}
		e6, err := m6.ExpectedReliability(rf6)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Dimension: "reliability model", Variant: choice.name,
			FourVersion: e4, SixVersion: e6, Note: choice.note,
		})
	}

	// Firing semantics.
	for _, sem := range []nvp.ServerSemantics{nvp.SingleServer, nvp.PerToken} {
		p4 := nvp.DefaultFourVersion()
		p4.Semantics = sem
		e4, err := solveFour(p4)
		if err != nil {
			return nil, err
		}
		p6 := nvp.DefaultSixVersion()
		p6.Semantics = sem
		e6, err := solveSix(p6)
		if err != nil {
			return nil, err
		}
		note := "matches the paper (TimeNET default)"
		if sem == nvp.PerToken {
			note = "independent modules; far from the published numbers"
		}
		rows = append(rows, AblationRow{
			Dimension: "firing semantics", Variant: sem.String(),
			FourVersion: e4, SixVersion: e6, Note: note,
		})
	}

	// Clock policy (six-version only; the four-version model has no clock).
	for _, clock := range []nvp.ClockPolicy{nvp.ClockFreeRunning, nvp.ClockWaitsForWave} {
		p6 := nvp.DefaultSixVersion()
		p6.Clock = clock
		e6, err := solveSix(p6)
		if err != nil {
			return nil, err
		}
		e4, err := solveFour(nvp.DefaultFourVersion())
		if err != nil {
			return nil, err
		}
		note := "guard g3 as printed"
		if clock == nvp.ClockWaitsForWave {
			note = "clock held during waves; solved with the general MRGP solver"
		}
		rows = append(rows, AblationRow{
			Dimension: "clock policy", Variant: clock.String(),
			FourVersion: e4, SixVersion: e6, Note: note,
		})
	}
	return rows, nil
}

func solveFour(p nvp.Params) (float64, error) { return evalFour(p) }

func solveSix(p nvp.Params) (float64, error) { return evalSix(p) }

// ReportAblations writes the E11 report.
func ReportAblations(w io.Writer) error {
	rows, err := RunAblations()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E11 (extension): modeling-choice ablations at Table II defaults")
	fmt.Fprintf(w, "  %-20s %-24s %-11s %-11s %s\n", "dimension", "variant", "E[R_4v]", "E[R_6v]", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %-24s %-11.7f %-11.7f %s\n", r.Dimension, r.Variant, r.FourVersion, r.SixVersion, r.Note)
	}
	return nil
}

// ArchitectureRow is one candidate N-version design.
type ArchitectureRow struct {
	N, F, R     int
	Rejuvenate  bool
	Threshold   int
	Reliability float64
}

// RunArchitectures evaluates every feasible (N, f, r) design with N up to
// maxN at the Table II defaults (extension experiment E12): the
// architecture-selection question the paper's conclusion raises.
func RunArchitectures(maxN int) ([]ArchitectureRow, error) {
	if maxN <= 0 {
		maxN = 9
	}
	// Enumerate the feasible designs first, then solve them in parallel;
	// rows land in enumeration order.
	type combo struct{ n, f, r int }
	var combos []combo
	for n := 1; n <= maxN; n++ {
		for f := 0; 3*f+1 <= n; f++ {
			combos = append(combos, combo{n, f, 0})
			for r := 1; 3*f+2*r+1 <= n; r++ {
				combos = append(combos, combo{n, f, r})
			}
		}
	}
	rows := make([]ArchitectureRow, len(combos))
	err := parallel.ForEach(len(combos), func(i int) error {
		c := combos[i]
		if c.r == 0 {
			p := nvp.DefaultFourVersion()
			p.N, p.F, p.R = c.n, c.f, 0
			e, err := solveFour(p)
			if err != nil {
				return fmt.Errorf("n=%d f=%d: %w", c.n, c.f, err)
			}
			rows[i] = ArchitectureRow{N: c.n, F: c.f, Threshold: 2*c.f + 1, Reliability: e}
			return nil
		}
		p := nvp.DefaultSixVersion()
		p.N, p.F, p.R = c.n, c.f, c.r
		e, err := solveSix(p)
		if err != nil {
			return fmt.Errorf("n=%d f=%d r=%d: %w", c.n, c.f, c.r, err)
		}
		rows[i] = ArchitectureRow{
			N: c.n, F: c.f, R: c.r, Rejuvenate: true,
			Threshold: 2*c.f + c.r + 1, Reliability: e,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ReportArchitectures writes the E12 report.
func ReportArchitectures(w io.Writer) error {
	rows, err := RunArchitectures(9)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E12 (extension): every feasible (N, f, r) design at Table II defaults")
	fmt.Fprintf(w, "  %-4s %-3s %-3s %-14s %-10s %s\n", "N", "f", "r", "rejuvenation", "voter", "E[R_sys]")
	best := rows[0]
	for _, r := range rows {
		rejuv := "no"
		if r.Rejuvenate {
			rejuv = "yes"
		}
		fmt.Fprintf(w, "  %-4d %-3d %-3d %-14s %d-of-%-5d %.7f\n",
			r.N, r.F, r.R, rejuv, r.Threshold, r.N, r.Reliability)
		if r.Reliability > best.Reliability {
			best = r
		}
	}
	fmt.Fprintf(w, "  best design: N=%d f=%d r=%d (E[R_sys] = %.7f)\n", best.N, best.F, best.R, best.Reliability)
	return nil
}
