package experiments

import (
	"fmt"
	"io"

	"nvrel/internal/nvp"
	"nvrel/internal/reliability"
)

// SurvivalRow is one mission-window survival comparison.
type SurvivalRow struct {
	Window      float64 // mission length (s)
	FourVersion float64 // P(no erroneous output), four-version
	SixVersion  float64 // P(no erroneous output), six-version
}

// RunSurvival computes mission survival probabilities — P(zero erroneous
// voted outputs during the window) with Poisson perception requests —
// for both architectures (extension experiment E17). The per-request
// error probabilities come from the generative error model
// (reliability.Generative), the law the event-level simulator samples
// from, so these numbers are cross-validated against simulation in the
// test suite.
func RunSurvival(requestInterval float64, windows []float64) ([]SurvivalRow, error) {
	if requestInterval <= 0 {
		requestInterval = 120
	}
	if len(windows) == 0 {
		windows = []float64{600, 1200, 2400, 3600, 2 * 3600, 4 * 3600}
	}
	m4, err := nvp.BuildNoRejuvenation(nvp.DefaultFourVersion())
	if err != nil {
		return nil, err
	}
	rf4, err := reliability.Generative(m4.Params.Reliability(), m4.Params.Scheme())
	if err != nil {
		return nil, err
	}
	m6, err := nvp.BuildWithRejuvenation(nvp.DefaultSixVersion())
	if err != nil {
		return nil, err
	}
	rf6, err := reliability.Generative(m6.Params.Reliability(), m6.Params.Scheme())
	if err != nil {
		return nil, err
	}
	rate := 1 / requestInterval
	out := make([]SurvivalRow, 0, len(windows))
	for _, w := range windows {
		p4, err := m4.SurvivalProbability(rf4, rate, w)
		if err != nil {
			return nil, fmt.Errorf("four-version window %g: %w", w, err)
		}
		p6, err := m6.SurvivalProbability(rf6, rate, w)
		if err != nil {
			return nil, fmt.Errorf("six-version window %g: %w", w, err)
		}
		out = append(out, SurvivalRow{Window: w, FourVersion: p4, SixVersion: p6})
	}
	return out, nil
}

// ReportSurvival writes the E17 report.
func ReportSurvival(w io.Writer) error {
	const interval = 120.0
	rows, err := RunSurvival(interval, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E17 (extension): mission survival — P(zero erroneous outputs in the window)")
	fmt.Fprintf(w, "  Poisson perception requests every %.0f s on average; generative error model\n", interval)
	fmt.Fprintf(w, "  %-10s %-12s %-12s\n", "window", "4v", "6v")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-12.6f %-12.6f\n", formatSeconds(r.Window), r.FourVersion, r.SixVersion)
	}
	fmt.Fprintln(w, "  (per-request errors are common enough at the defaults that long missions")
	fmt.Fprintln(w, "  almost surely see at least one; the six-version advantage compounds per window)")
	return nil
}
