package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunAttacker(t *testing.T) {
	rows, err := RunAttacker([]float64{1, 0.1})
	if err != nil {
		t.Fatalf("RunAttacker: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Duty 1 reproduces the headline numbers exactly.
	if math.Abs(rows[0].FourVersion-0.8223487) > 1e-6 {
		t.Errorf("duty-1 E[R_4v] = %.7f", rows[0].FourVersion)
	}
	if math.Abs(rows[0].SixVersion-0.94064835) > 1e-6 {
		t.Errorf("duty-1 E[R_6v] = %.8f", rows[0].SixVersion)
	}
	// The E18 finding: burstiness helps 4v, hurts 6v.
	if rows[1].FourVersion <= rows[0].FourVersion {
		t.Errorf("bursty 4v %.6f should beat steady %.6f", rows[1].FourVersion, rows[0].FourVersion)
	}
	if rows[1].SixVersion >= rows[0].SixVersion {
		t.Errorf("bursty 6v %.6f should trail steady %.6f", rows[1].SixVersion, rows[0].SixVersion)
	}
}

func TestReportAttacker(t *testing.T) {
	var sb strings.Builder
	if err := ReportAttacker(&sb); err != nil {
		t.Fatalf("ReportAttacker: %v", err)
	}
	if !strings.Contains(sb.String(), "E18") || !strings.Contains(sb.String(), "duty") {
		t.Errorf("report: %q", sb.String())
	}
}
