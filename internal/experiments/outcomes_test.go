package experiments

import (
	"math"
	"strings"
	"testing"

	"nvrel/internal/nvp"
	"nvrel/internal/percept"
)

func TestRunOutcomes(t *testing.T) {
	rows, err := RunOutcomes()
	if err != nil {
		t.Fatalf("RunOutcomes: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if s := r.Correct + r.Erroneous + r.Skipped; math.Abs(s-1) > 1e-9 {
			t.Errorf("%s: outcomes sum to %g", r.Architecture, s)
		}
		if math.Abs(r.PaperR-(r.Correct+r.Skipped)) > 1e-12 {
			t.Errorf("%s: PaperR inconsistent", r.Architecture)
		}
	}
	four, six := rows[0], rows[1]
	if six.Correct <= four.Correct || six.Erroneous >= four.Erroneous {
		t.Errorf("six-version should dominate: %+v vs %+v", six, four)
	}
	// The four-version system skips heavily at the defaults (half its time
	// is spent with all modules compromised, where 2-2 splits abound).
	if four.Skipped < 0.2 {
		t.Errorf("four-version skip rate = %.4f, expected large", four.Skipped)
	}
}

// TestOutcomesPredictSimulatedTallies closes the loop: the analytic
// decomposition must match the event-level simulator's request tallies.
func TestOutcomesPredictSimulatedTallies(t *testing.T) {
	rows, err := RunOutcomes()
	if err != nil {
		t.Fatal(err)
	}
	est, err := percept.Replicate(percept.Config{
		Params:          nvp.DefaultSixVersion(),
		Rejuvenation:    true,
		Horizon:         2e6,
		WarmUp:          5e4,
		RequestInterval: 200,
	}, 10, 8088)
	if err != nil {
		t.Fatal(err)
	}
	six := rows[1]
	if math.Abs(est.RequestReliability.Mean-six.Correct) > 0.01 {
		t.Errorf("simulated P(correct) %.4f vs analytic %.4f", est.RequestReliability.Mean, six.Correct)
	}
	if math.Abs(est.RequestErrorRate.Mean-six.Erroneous) > 0.01 {
		t.Errorf("simulated P(error) %.4f vs analytic %.4f", est.RequestErrorRate.Mean, six.Erroneous)
	}
}

func TestReportOutcomes(t *testing.T) {
	var sb strings.Builder
	if err := ReportOutcomes(&sb); err != nil {
		t.Fatalf("ReportOutcomes: %v", err)
	}
	if !strings.Contains(sb.String(), "E19") || !strings.Contains(sb.String(), "P(skip)") {
		t.Errorf("report: %q", sb.String())
	}
}
