package obs

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format against a golden
// file: name sanitization ('.' and leading digits), cumulative histogram
// buckets ending in +Inf, and summary quantile rows for timings.
func TestWritePrometheusGolden(t *testing.T) {
	s := Snapshot{
		Counters: map[string]int64{
			"petri.solve.dense": 3,
			"0weird.name":       1,
		},
		Gauges: map[string]float64{
			"linalg.gs.residual": 1.5e-10,
		},
		Histograms: map[string]HistogramSnapshot{
			"linalg.uniform.k": {
				Bounds: []float64{1, 10, 100},
				Counts: []int64{2, 3, 0, 1},
				Count:  6,
				Sum:    123.5,
			},
		},
		Timings: map[string]TimingSnapshot{
			"nvp.solve": {
				Count:        4,
				TotalSeconds: 0.25,
				MeanSeconds:  0.0625,
				MaxSeconds:   0.1,
				P50Seconds:   0.05,
				P95Seconds:   0.09,
				P99Seconds:   0.1,
			},
		},
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	want, err := os.ReadFile("testdata/prometheus.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("prometheus output differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusBucketCumulativity checks the histogram invariant
// directly: each _bucket value must be >= the previous and the +Inf
// bucket must equal _count.
func TestWritePrometheusBucketCumulativity(t *testing.T) {
	s := Snapshot{
		Histograms: map[string]HistogramSnapshot{
			"h": {Bounds: []float64{1, 2, 3}, Counts: []int64{5, 0, 2, 1}, Count: 8, Sum: 10},
		},
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="1"} 5`,
		`h_bucket{le="2"} 5`,
		`h_bucket{le="3"} 7`,
		`h_bucket{le="+Inf"} 8`,
		`h_count 8`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusCoversEveryInternedMetric captures the live
// registry and asserts each interned metric yields exactly one TYPE
// family in the exposition.
func TestWritePrometheusCoversEveryInternedMetric(t *testing.T) {
	withEnabled(t, func() {
		CounterFor("test.prom.counter").Inc()
		GaugeFor("test.prom.gauge").Set(1)
		HistogramFor("test.prom.hist", []float64{1, 2}).Observe(1.5)
		TimingFor("test.prom.timing").Record(time.Millisecond)
	})
	snap := Capture()
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	families := make(map[string]int)
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name := strings.Fields(rest)[0]
			families[name]++
		}
	}
	total := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms) + len(snap.Timings)
	if len(families) != total {
		t.Errorf("exposition has %d families, registry has %d metrics", len(families), total)
	}
	for name, n := range families {
		if n != 1 {
			t.Errorf("family %q emitted %d times, want exactly once", name, n)
		}
	}
	for _, want := range []string{"test_prom_counter", "test_prom_gauge", "test_prom_hist", "test_prom_timing_seconds"} {
		if families[want] != 1 {
			t.Errorf("interned metric %q missing from exposition", want)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"petri.solve.dense": "petri_solve_dense",
		"already_clean:ok":  "already_clean:ok",
		"9starts.with.num":  "_9starts_with_num",
		"spaces and-dash":   "spaces_and_dash",
		"":                  "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramForRejectsNaNBounds(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("HistogramFor accepted NaN bound")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "test.bad.nan") {
			t.Errorf("panic %v does not name the offending histogram", r)
		}
	}()
	HistogramFor("test.bad.nan", []float64{1, math.NaN(), 3})
}

func TestHistogramForRejectsNonMonotonicBounds(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("HistogramFor accepted non-monotonic bounds")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "test.bad.order") {
			t.Errorf("panic %v does not name the offending histogram", r)
		}
	}()
	HistogramFor("test.bad.order", []float64{1, 3, 2})
}

func TestHistogramForRejectsDuplicateBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HistogramFor accepted duplicate bounds")
		}
	}()
	HistogramFor("test.bad.dup", []float64{1, 2, 2})
}

func TestTimingQuantiles(t *testing.T) {
	withEnabled(t, func() {
		tm := TimingFor("test.quantile.timing")
		// 90 short observations at ~1ms and 10 long at ~64ms: p50 must
		// land in the short octave, p99 in the long one. Log2 buckets
		// are accurate to a factor of two, so assert octaves not exact
		// values.
		for i := 0; i < 90; i++ {
			tm.Record(time.Millisecond)
		}
		for i := 0; i < 10; i++ {
			tm.Record(64 * time.Millisecond)
		}
		p50, p99 := tm.Quantile(0.50), tm.Quantile(0.99)
		if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
			t.Errorf("p50 = %v, want ~1ms", p50)
		}
		if p99 < 32*time.Millisecond || p99 > 64*time.Millisecond {
			t.Errorf("p99 = %v, want ~64ms (clamped to max)", p99)
		}
		if max := tm.Quantile(1.0); max > 64*time.Millisecond {
			t.Errorf("p100 = %v exceeds recorded max", max)
		}

		s := Capture()
		ts := s.Timings["test.quantile.timing"]
		if ts.P50Seconds <= 0 || ts.P95Seconds < ts.P50Seconds || ts.P99Seconds < ts.P95Seconds {
			t.Errorf("snapshot percentiles not monotone: %+v", ts)
		}
		if ts.P99Seconds > ts.MaxSeconds {
			t.Errorf("snapshot p99 %g exceeds max %g", ts.P99Seconds, ts.MaxSeconds)
		}
	})
}

func TestTimingQuantileEmpty(t *testing.T) {
	var tm *Timing
	if tm.Quantile(0.5) != 0 {
		t.Error("nil timing quantile nonzero")
	}
	fresh := TimingFor("test.quantile.empty")
	if fresh.Quantile(0.99) != 0 {
		t.Error("empty timing quantile nonzero")
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	withEnabled(t, func() {
		CounterFor("test.json.counter").Inc()
	})
	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"test.json.counter"`) {
		t.Error("JSON snapshot missing interned counter")
	}
}
