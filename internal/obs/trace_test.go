package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing runs f with span recording forced on against a fresh ring,
// restoring the previous state afterwards.
func withTracing(t testing.TB, f func()) {
	t.Helper()
	prev := TraceEnable()
	TraceReset()
	defer SetTraceEnabled(prev)
	f()
}

func TestTraceDisabledIsInert(t *testing.T) {
	prev := TraceDisable()
	defer SetTraceEnabled(prev)
	TraceReset()
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "test.disabled")
	if sp != nil {
		t.Fatal("disabled StartSpan returned a live span")
	}
	if ctx2 != ctx {
		t.Error("disabled StartSpan derived a new context")
	}
	sp.Int("n", 4).Float("x", 1.5).Str("path", "sparse").Err(nil)
	sp.End()
	if got := TraceSnapshot(); len(got) != 0 {
		t.Errorf("disabled tracer recorded %d spans", len(got))
	}
}

func TestSpanNestingThroughContext(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartSpan(nil, "solve")
		root.Int("states", 325).Str("path", "sparse")
		ctx2, child := StartSpan(ctx, "rung.gs")
		child.Int("sweeps", 17)
		_, grand := StartSpan(ctx2, "kernel.gs")
		grand.End()
		child.End()
		root.End()

		recs := CollectTrace(root.TraceID())
		if len(recs) != 3 {
			t.Fatalf("collected %d spans, want 3", len(recs))
		}
		byName := map[string]SpanRecord{}
		for _, r := range recs {
			byName[r.Name] = r
		}
		s, c, g := byName["solve"], byName["rung.gs"], byName["kernel.gs"]
		if s.Parent != 0 || s.Root != s.ID {
			t.Errorf("root span parent=%d root=%d id=%d", s.Parent, s.Root, s.ID)
		}
		if c.Parent != s.ID || c.Root != s.ID {
			t.Errorf("child parent=%d root=%d, want %d/%d", c.Parent, c.Root, s.ID, s.ID)
		}
		if g.Parent != c.ID || g.Root != s.ID {
			t.Errorf("grandchild parent=%d root=%d, want %d/%d", g.Parent, g.Root, c.ID, s.ID)
		}
		if len(s.Attrs) != 2 || s.Attrs[0].Key != "states" || s.Attrs[0].Int != 325 {
			t.Errorf("root attrs = %+v", s.Attrs)
		}
		// Children end before the parent, so child durations must fit
		// within the parent's.
		if c.Dur > s.Dur || g.Dur > c.Dur {
			t.Errorf("child durations exceed parent: solve=%v gs=%v kernel=%v", s.Dur, c.Dur, g.Dur)
		}
	})
}

func TestSiblingTracesGetDistinctRoots(t *testing.T) {
	withTracing(t, func() {
		_, a := StartSpan(nil, "solve.a")
		a.End()
		_, b := StartSpan(nil, "solve.b")
		b.End()
		if a.Root() == b.Root() {
			t.Error("independent root spans share a trace root")
		}
		if a.TraceID() == b.TraceID() || a.TraceID() == 0 {
			t.Errorf("independent root spans share trace ID %d", a.TraceID())
		}
		if len(CollectTrace(a.TraceID())) != 1 || len(CollectTrace(b.TraceID())) != 1 {
			t.Error("CollectTrace mixed spans across traces")
		}
	})
}

func TestRingWrapEvictsOldest(t *testing.T) {
	tr := NewTracer(4)
	tr.enabled.Store(true)
	var ids []uint64
	for i := 0; i < 10; i++ {
		_, sp := tr.StartSpan(nil, "wrap")
		ids = append(ids, sp.ID())
		sp.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(recs))
	}
	// The survivors must be exactly the 4 most recently ended spans.
	want := map[uint64]bool{}
	for _, id := range ids[len(ids)-4:] {
		want[id] = true
	}
	for _, r := range recs {
		if !want[r.ID] {
			t.Errorf("span %d survived wrap; want only the last 4 of %v", r.ID, ids)
		}
	}
}

func TestAttrOverflowDropsExtras(t *testing.T) {
	withTracing(t, func() {
		_, sp := StartSpan(nil, "attrs")
		for i := 0; i < maxSpanAttrs+3; i++ {
			sp.Int("k", int64(i))
		}
		sp.End()
		recs := CollectTrace(sp.TraceID())
		if len(recs) != 1 || len(recs[0].Attrs) != maxSpanAttrs {
			t.Fatalf("attr overflow: got %d attrs, want %d", len(recs[0].Attrs), maxSpanAttrs)
		}
	})
}

func TestErrAttachesOnlyOnError(t *testing.T) {
	withTracing(t, func() {
		_, ok := StartSpan(nil, "ok")
		ok.Err(nil)
		ok.End()
		_, bad := StartSpan(nil, "bad")
		bad.Err(context.DeadlineExceeded)
		bad.End()
		for _, r := range CollectTrace(ok.TraceID()) {
			if len(r.Attrs) != 0 {
				t.Errorf("Err(nil) attached attrs: %+v", r.Attrs)
			}
		}
		recs := CollectTrace(bad.TraceID())
		if len(recs) != 1 || len(recs[0].Attrs) != 1 || recs[0].Attrs[0].Key != "error" {
			t.Errorf("Err(err) did not attach error attr: %+v", recs)
		}
	})
}

func TestWriteTraceEventsIsChromeLoadable(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartSpan(nil, "nvp.solve")
		root.Int("states", 10).Str("path", "dense")
		_, child := StartSpan(ctx, "petri.solve")
		time.Sleep(time.Millisecond)
		child.End()
		root.End()

		var buf bytes.Buffer
		if err := EncodeTraceEvents(&buf, CollectTrace(root.TraceID())); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				TS   float64        `json:"ts"`
				Dur  float64        `json:"dur"`
				TID  uint64         `json:"tid"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("trace-event output is not JSON: %v", err)
		}
		if len(doc.TraceEvents) != 2 {
			t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
		}
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				t.Errorf("event %q phase = %q, want X", ev.Name, ev.Ph)
			}
			if ev.TID != root.TraceID() {
				t.Errorf("event %q tid = %d, want trace %d", ev.Name, ev.TID, root.TraceID())
			}
			if ev.Args["trace_id"] != FormatTraceID(root.TraceID()) {
				t.Errorf("event %q trace_id arg = %v", ev.Name, ev.Args["trace_id"])
			}
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("event %q has negative ts/dur: %v/%v", ev.Name, ev.TS, ev.Dur)
			}
			if _, ok := ev.Args["span_id"]; !ok {
				t.Errorf("event %q missing span_id arg", ev.Name)
			}
		}
		var rootEv, childEv *float64
		for i := range doc.TraceEvents {
			ev := &doc.TraceEvents[i]
			switch ev.Name {
			case "nvp.solve":
				rootEv = &ev.Dur
				if ev.Args["path"] != "dense" {
					t.Errorf("root args = %+v", ev.Args)
				}
			case "petri.solve":
				childEv = &ev.Dur
				if _, ok := ev.Args["parent_id"]; !ok {
					t.Error("child event missing parent_id")
				}
			}
		}
		if rootEv == nil || childEv == nil {
			t.Fatal("missing expected events")
		}
		if *childEv > *rootEv {
			t.Errorf("child dur %v exceeds parent %v", *childEv, *rootEv)
		}
	})
}

func TestSummarizeTraceDepths(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartSpan(nil, "solve")
		ctx2, rung := StartSpan(ctx, "rung")
		_, kern := StartSpan(ctx2, "kernel")
		kern.Int("sweeps", 12)
		kern.End()
		rung.End()
		root.End()

		rows := SummarizeTrace(CollectTrace(root.TraceID()))
		if len(rows) != 3 {
			t.Fatalf("summary has %d rows, want 3", len(rows))
		}
		want := []struct {
			name, parent string
			depth        int
		}{{"solve", "", 0}, {"rung", "solve", 1}, {"kernel", "rung", 2}}
		for i, w := range want {
			if rows[i].Name != w.name || rows[i].Parent != w.parent || rows[i].Depth != w.depth {
				t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
			}
		}
		if rows[2].Attrs["sweeps"] != int64(12) {
			t.Errorf("kernel attrs = %+v", rows[2].Attrs)
		}
	})
}

func TestSummarizeTraceOrphansBecomeRoots(t *testing.T) {
	recs := []SpanRecord{
		{ID: 5, Parent: 2, Root: 1, Name: "orphan", Dur: time.Millisecond},
	}
	rows := SummarizeTrace(recs)
	if len(rows) != 1 || rows[0].Depth != 0 || rows[0].Parent != "" {
		t.Errorf("orphaned span not surfaced as root: %+v", rows)
	}
}

func TestConcurrentSpans(t *testing.T) {
	withTracing(t, func() {
		var wg sync.WaitGroup
		const workers, per = 8, 200
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					ctx, sp := StartSpan(nil, "concurrent")
					_, c := StartSpan(ctx, "concurrent.child")
					c.End()
					sp.End()
				}
			}()
		}
		wg.Wait()
		// The default ring holds DefaultTraceCapacity spans; all slots
		// must be well-formed after heavy concurrent writes.
		for _, r := range TraceSnapshot() {
			if !strings.HasPrefix(r.Name, "concurrent") || r.ID == 0 {
				t.Fatalf("corrupt span after concurrent writes: %+v", r)
			}
		}
	})
}

func TestSetTraceCapacityPreservesEnabled(t *testing.T) {
	prev := TraceEnable()
	defer func() {
		SetTraceEnabled(prev)
		SetTraceCapacity(DefaultTraceCapacity)
	}()
	SetTraceCapacity(2)
	if !TraceEnabled() {
		t.Fatal("SetTraceCapacity dropped enabled state")
	}
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(nil, "cap")
		sp.End()
	}
	if got := len(TraceSnapshot()); got != 2 {
		t.Errorf("resized ring holds %d spans, want 2", got)
	}
}

// BenchmarkTraceDisabledNoAlloc guards the tracer's zero-overhead
// contract: with tracing off, StartSpan plus every attribute setter and
// End must not allocate. check.sh runs it with -benchtime=1x and fails on
// a nonzero allocs/op.
func BenchmarkTraceDisabledNoAlloc(b *testing.B) {
	prev := TraceDisable()
	defer SetTraceEnabled(prev)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx2, sp := StartSpan(ctx, "bench.trace")
		sp.Int("n", int64(i)).Str("path", "sparse").Err(nil)
		_, child := StartSpan(ctx2, "bench.trace.child")
		child.End()
		sp.End()
	}
}

func TestRemoteSpanJoinsTrace(t *testing.T) {
	withTracing(t, func() {
		// Peer A starts a request trace...
		actx, a := StartSpan(nil, "serve.request")
		trace, parent := a.TraceID(), a.ID()
		a.End()
		_ = actx

		// ...and peer B (simulated: a remote-parent context, as built from
		// the X-Nvrel-Trace header) continues it.
		bctx := ContextWithRemoteSpan(context.Background(), trace, parent)
		cctx, b := StartSpan(bctx, "serve.solve")
		if b.TraceID() != trace {
			t.Fatalf("remote-joined span trace = %d, want %d", b.TraceID(), trace)
		}
		_, c := StartSpan(cctx, "serve.solve.child")
		c.End()
		b.End()

		recs := CollectTrace(trace)
		if len(recs) != 3 {
			t.Fatalf("CollectTrace(%d) = %d spans, want 3 across both 'peers'", trace, len(recs))
		}
		byName := map[string]SpanRecord{}
		for _, r := range recs {
			byName[r.Name] = r
		}
		if got := byName["serve.solve"].Parent; got != parent {
			t.Errorf("remote-joined span parent = %d, want remote span %d", got, parent)
		}
		if got := byName["serve.solve.child"].Trace; got != trace {
			t.Errorf("grandchild trace = %d, want %d", got, trace)
		}
	})
}

func TestRemoteSpanIgnoredUnderLocalParent(t *testing.T) {
	withTracing(t, func() {
		ctx, parent := StartSpan(nil, "local.parent")
		ctx = ContextWithRemoteSpan(ctx, 42, 43)
		_, child := StartSpan(ctx, "local.child")
		if child.TraceID() != parent.TraceID() {
			t.Errorf("local parent lost to remote hint: trace %d, want %d", child.TraceID(), parent.TraceID())
		}
		child.End()
		parent.End()
	})
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	h := EncodeTraceHeader(0xdeadbeef12345678, 0x42)
	trace, span, ok := ParseTraceHeader(h)
	if !ok || trace != 0xdeadbeef12345678 || span != 0x42 {
		t.Fatalf("round trip of %q = %x/%x ok=%v", h, trace, span, ok)
	}
	if EncodeTraceHeader(0, 7) != "" {
		t.Error("zero trace encoded non-empty")
	}
	for _, bad := range []string{"", "zzz", "12", "-", "0-1", "12-zz", "g-1"} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", bad)
		}
	}
	if FormatTraceID(0) != "" {
		t.Error("FormatTraceID(0) not empty")
	}
	if got := FormatTraceID(0xab); got != "00000000000000ab" {
		t.Errorf("FormatTraceID = %q", got)
	}
}

// TestTraceExportsOrderedByStart is the ordering contract: both
// TraceSnapshot (behind /traces) and EncodeTraceEvents emit spans in
// stable, monotonically non-decreasing start order, even though the ring
// stores them in claim (End) order.
func TestTraceExportsOrderedByStart(t *testing.T) {
	withTracing(t, func() {
		// Start A before B, but end B first, so ring claim order is B, A.
		_, a := StartSpan(nil, "first.started")
		time.Sleep(time.Millisecond)
		_, b := StartSpan(nil, "second.started")
		b.End()
		a.End()

		recs := TraceSnapshot()
		for i := 1; i < len(recs); i++ {
			if recs[i].Start.Before(recs[i-1].Start) {
				t.Fatalf("snapshot out of start order at %d: %v after %v", i, recs[i].Start, recs[i-1].Start)
			}
		}
		if len(recs) != 2 || recs[0].Name != "first.started" {
			t.Fatalf("snapshot order = %+v, want first.started first", recs)
		}

		// Feed the encoder the records REVERSED; output must still be
		// monotone in ts.
		rev := []SpanRecord{recs[1], recs[0]}
		var buf bytes.Buffer
		if err := EncodeTraceEvents(&buf, rev); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string  `json:"name"`
				TS   float64 `json:"ts"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		if len(doc.TraceEvents) != 2 || doc.TraceEvents[0].Name != "first.started" {
			t.Fatalf("encoder did not re-sort: %+v", doc.TraceEvents)
		}
		for i := 1; i < len(doc.TraceEvents); i++ {
			if doc.TraceEvents[i].TS < doc.TraceEvents[i-1].TS {
				t.Fatalf("encoded ts not monotone at %d: %+v", i, doc.TraceEvents)
			}
		}
	})
}

// TestMergeTraceEventsStitchesPeers simulates the fleet path: two
// tracers ("peers") record halves of one proxied request, each exports
// its own Chrome doc, and MergeTraceEvents folds them into one timeline
// with the shared trace ID as the track.
func TestMergeTraceEventsStitchesPeers(t *testing.T) {
	peerA, peerB := NewTracer(16), NewTracer(16)
	peerA.enabled.Store(true)
	peerB.enabled.Store(true)

	_, req := peerA.StartSpan(nil, "serve.request")
	trace := req.TraceID()
	time.Sleep(time.Millisecond)
	rctx := ContextWithRemoteSpan(context.Background(), trace, req.ID())
	_, solve := peerB.StartSpan(rctx, "serve.solve")
	solve.End()
	req.End()

	var docA, docB, merged bytes.Buffer
	if err := EncodeTraceEvents(&docA, peerA.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTraceEvents(&docB, peerB.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := MergeTraceEvents(&merged, &docA, &docB); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			TS   float64        `json:"ts"`
			TID  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("merged doc has %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "serve.request" || doc.TraceEvents[1].Name != "serve.solve" {
		t.Fatalf("merged events out of order: %+v", doc.TraceEvents)
	}
	for _, ev := range doc.TraceEvents {
		if ev.TID != trace {
			t.Errorf("event %q tid = %d, want shared trace %d", ev.Name, ev.TID, trace)
		}
		if ev.Args["trace_id"] != FormatTraceID(trace) {
			t.Errorf("event %q trace_id arg = %v", ev.Name, ev.Args["trace_id"])
		}
	}
	if doc.TraceEvents[1].TS < doc.TraceEvents[0].TS {
		t.Error("absolute timestamps lost cross-peer ordering")
	}
	if err := MergeTraceEvents(io.Discard, strings.NewReader("not json")); err == nil {
		t.Error("malformed document accepted")
	}
}
