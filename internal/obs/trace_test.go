package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing runs f with span recording forced on against a fresh ring,
// restoring the previous state afterwards.
func withTracing(t testing.TB, f func()) {
	t.Helper()
	prev := TraceEnable()
	TraceReset()
	defer SetTraceEnabled(prev)
	f()
}

func TestTraceDisabledIsInert(t *testing.T) {
	prev := TraceDisable()
	defer SetTraceEnabled(prev)
	TraceReset()
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "test.disabled")
	if sp != nil {
		t.Fatal("disabled StartSpan returned a live span")
	}
	if ctx2 != ctx {
		t.Error("disabled StartSpan derived a new context")
	}
	sp.Int("n", 4).Float("x", 1.5).Str("path", "sparse").Err(nil)
	sp.End()
	if got := TraceSnapshot(); len(got) != 0 {
		t.Errorf("disabled tracer recorded %d spans", len(got))
	}
}

func TestSpanNestingThroughContext(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartSpan(nil, "solve")
		root.Int("states", 325).Str("path", "sparse")
		ctx2, child := StartSpan(ctx, "rung.gs")
		child.Int("sweeps", 17)
		_, grand := StartSpan(ctx2, "kernel.gs")
		grand.End()
		child.End()
		root.End()

		recs := CollectTrace(root.Root())
		if len(recs) != 3 {
			t.Fatalf("collected %d spans, want 3", len(recs))
		}
		byName := map[string]SpanRecord{}
		for _, r := range recs {
			byName[r.Name] = r
		}
		s, c, g := byName["solve"], byName["rung.gs"], byName["kernel.gs"]
		if s.Parent != 0 || s.Root != s.ID {
			t.Errorf("root span parent=%d root=%d id=%d", s.Parent, s.Root, s.ID)
		}
		if c.Parent != s.ID || c.Root != s.ID {
			t.Errorf("child parent=%d root=%d, want %d/%d", c.Parent, c.Root, s.ID, s.ID)
		}
		if g.Parent != c.ID || g.Root != s.ID {
			t.Errorf("grandchild parent=%d root=%d, want %d/%d", g.Parent, g.Root, c.ID, s.ID)
		}
		if len(s.Attrs) != 2 || s.Attrs[0].Key != "states" || s.Attrs[0].Int != 325 {
			t.Errorf("root attrs = %+v", s.Attrs)
		}
		// Children end before the parent, so child durations must fit
		// within the parent's.
		if c.Dur > s.Dur || g.Dur > c.Dur {
			t.Errorf("child durations exceed parent: solve=%v gs=%v kernel=%v", s.Dur, c.Dur, g.Dur)
		}
	})
}

func TestSiblingTracesGetDistinctRoots(t *testing.T) {
	withTracing(t, func() {
		_, a := StartSpan(nil, "solve.a")
		a.End()
		_, b := StartSpan(nil, "solve.b")
		b.End()
		if a.Root() == b.Root() {
			t.Error("independent root spans share a trace root")
		}
		if len(CollectTrace(a.Root())) != 1 || len(CollectTrace(b.Root())) != 1 {
			t.Error("CollectTrace mixed spans across roots")
		}
	})
}

func TestRingWrapEvictsOldest(t *testing.T) {
	tr := NewTracer(4)
	tr.enabled.Store(true)
	for i := 0; i < 10; i++ {
		_, sp := tr.StartSpan(nil, "wrap")
		sp.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(recs))
	}
	for _, r := range recs {
		if r.ID <= 6 {
			t.Errorf("span %d survived wrap; oldest retained should be 7", r.ID)
		}
	}
}

func TestAttrOverflowDropsExtras(t *testing.T) {
	withTracing(t, func() {
		_, sp := StartSpan(nil, "attrs")
		for i := 0; i < maxSpanAttrs+3; i++ {
			sp.Int("k", int64(i))
		}
		sp.End()
		recs := CollectTrace(sp.Root())
		if len(recs) != 1 || len(recs[0].Attrs) != maxSpanAttrs {
			t.Fatalf("attr overflow: got %d attrs, want %d", len(recs[0].Attrs), maxSpanAttrs)
		}
	})
}

func TestErrAttachesOnlyOnError(t *testing.T) {
	withTracing(t, func() {
		_, ok := StartSpan(nil, "ok")
		ok.Err(nil)
		ok.End()
		_, bad := StartSpan(nil, "bad")
		bad.Err(context.DeadlineExceeded)
		bad.End()
		for _, r := range CollectTrace(ok.Root()) {
			if len(r.Attrs) != 0 {
				t.Errorf("Err(nil) attached attrs: %+v", r.Attrs)
			}
		}
		recs := CollectTrace(bad.Root())
		if len(recs) != 1 || len(recs[0].Attrs) != 1 || recs[0].Attrs[0].Key != "error" {
			t.Errorf("Err(err) did not attach error attr: %+v", recs)
		}
	})
}

func TestWriteTraceEventsIsChromeLoadable(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartSpan(nil, "nvp.solve")
		root.Int("states", 10).Str("path", "dense")
		_, child := StartSpan(ctx, "petri.solve")
		time.Sleep(time.Millisecond)
		child.End()
		root.End()

		var buf bytes.Buffer
		if err := EncodeTraceEvents(&buf, CollectTrace(root.Root())); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				TS   float64        `json:"ts"`
				Dur  float64        `json:"dur"`
				TID  uint64         `json:"tid"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("trace-event output is not JSON: %v", err)
		}
		if len(doc.TraceEvents) != 2 {
			t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
		}
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				t.Errorf("event %q phase = %q, want X", ev.Name, ev.Ph)
			}
			if ev.TID != root.Root() {
				t.Errorf("event %q tid = %d, want root %d", ev.Name, ev.TID, root.Root())
			}
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("event %q has negative ts/dur: %v/%v", ev.Name, ev.TS, ev.Dur)
			}
			if _, ok := ev.Args["span_id"]; !ok {
				t.Errorf("event %q missing span_id arg", ev.Name)
			}
		}
		var rootEv, childEv *float64
		for i := range doc.TraceEvents {
			ev := &doc.TraceEvents[i]
			switch ev.Name {
			case "nvp.solve":
				rootEv = &ev.Dur
				if ev.Args["path"] != "dense" {
					t.Errorf("root args = %+v", ev.Args)
				}
			case "petri.solve":
				childEv = &ev.Dur
				if _, ok := ev.Args["parent_id"]; !ok {
					t.Error("child event missing parent_id")
				}
			}
		}
		if rootEv == nil || childEv == nil {
			t.Fatal("missing expected events")
		}
		if *childEv > *rootEv {
			t.Errorf("child dur %v exceeds parent %v", *childEv, *rootEv)
		}
	})
}

func TestSummarizeTraceDepths(t *testing.T) {
	withTracing(t, func() {
		ctx, root := StartSpan(nil, "solve")
		ctx2, rung := StartSpan(ctx, "rung")
		_, kern := StartSpan(ctx2, "kernel")
		kern.Int("sweeps", 12)
		kern.End()
		rung.End()
		root.End()

		rows := SummarizeTrace(CollectTrace(root.Root()))
		if len(rows) != 3 {
			t.Fatalf("summary has %d rows, want 3", len(rows))
		}
		want := []struct {
			name, parent string
			depth        int
		}{{"solve", "", 0}, {"rung", "solve", 1}, {"kernel", "rung", 2}}
		for i, w := range want {
			if rows[i].Name != w.name || rows[i].Parent != w.parent || rows[i].Depth != w.depth {
				t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
			}
		}
		if rows[2].Attrs["sweeps"] != int64(12) {
			t.Errorf("kernel attrs = %+v", rows[2].Attrs)
		}
	})
}

func TestSummarizeTraceOrphansBecomeRoots(t *testing.T) {
	recs := []SpanRecord{
		{ID: 5, Parent: 2, Root: 1, Name: "orphan", Dur: time.Millisecond},
	}
	rows := SummarizeTrace(recs)
	if len(rows) != 1 || rows[0].Depth != 0 || rows[0].Parent != "" {
		t.Errorf("orphaned span not surfaced as root: %+v", rows)
	}
}

func TestConcurrentSpans(t *testing.T) {
	withTracing(t, func() {
		var wg sync.WaitGroup
		const workers, per = 8, 200
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					ctx, sp := StartSpan(nil, "concurrent")
					_, c := StartSpan(ctx, "concurrent.child")
					c.End()
					sp.End()
				}
			}()
		}
		wg.Wait()
		// The default ring holds DefaultTraceCapacity spans; all slots
		// must be well-formed after heavy concurrent writes.
		for _, r := range TraceSnapshot() {
			if !strings.HasPrefix(r.Name, "concurrent") || r.ID == 0 {
				t.Fatalf("corrupt span after concurrent writes: %+v", r)
			}
		}
	})
}

func TestSetTraceCapacityPreservesEnabled(t *testing.T) {
	prev := TraceEnable()
	defer func() {
		SetTraceEnabled(prev)
		SetTraceCapacity(DefaultTraceCapacity)
	}()
	SetTraceCapacity(2)
	if !TraceEnabled() {
		t.Fatal("SetTraceCapacity dropped enabled state")
	}
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(nil, "cap")
		sp.End()
	}
	if got := len(TraceSnapshot()); got != 2 {
		t.Errorf("resized ring holds %d spans, want 2", got)
	}
}

// BenchmarkTraceDisabledNoAlloc guards the tracer's zero-overhead
// contract: with tracing off, StartSpan plus every attribute setter and
// End must not allocate. check.sh runs it with -benchtime=1x and fails on
// a nonzero allocs/op.
func BenchmarkTraceDisabledNoAlloc(b *testing.B) {
	prev := TraceDisable()
	defer SetTraceEnabled(prev)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx2, sp := StartSpan(ctx, "bench.trace")
		sp.Int("n", int64(i)).Str("path", "sparse").Err(nil)
		_, child := StartSpan(ctx2, "bench.trace.child")
		child.End()
		sp.End()
	}
}
