package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// This file encodes a registry snapshot in Prometheus text exposition
// format (version 0.0.4), the wire format every Prometheus-compatible
// scraper speaks. Metric names in the registry use dots
// ("petri.solve.dense"); the encoder sanitizes them to the Prometheus
// charset ("petri_solve_dense"). Families are emitted in sorted name
// order within each kind so output is deterministic and diffable — the
// golden-file test depends on that.

// promName sanitizes a registry metric name into the Prometheus metric
// name charset [a-zA-Z0-9_:], mapping every other rune (dots, dashes,
// spaces) to '_' and prefixing '_' when the name starts with a digit.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		if i == 0 && c >= '0' && c <= '9' {
			b = append(b, '_')
		}
		b = append(b, c)
	}
	return string(b)
}

// promFloat formats a value the way Prometheus expects: shortest
// round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus encodes a point-in-time capture of the default
// registry in Prometheus text exposition format. It is what the serve
// daemon's /metrics endpoint returns.
func WritePrometheus(w io.Writer) error {
	return Capture().WritePrometheus(w)
}

// WritePrometheus encodes the snapshot in Prometheus text exposition
// format: counters and gauges as single samples, histograms as
// cumulative _bucket{le=...} series (ending with the mandatory +Inf
// bucket) plus _sum and _count, and timings as <name>_seconds summaries
// with quantile labels plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		p := promName(name)
		bw.line("# TYPE " + p + " counter")
		bw.line(p + " " + strconv.FormatInt(s.Counters[name], 10))
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := promName(name)
		bw.line("# TYPE " + p + " gauge")
		bw.line(p + " " + promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p := promName(name)
		bw.line("# TYPE " + p + " histogram")
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			bw.line(p + `_bucket{le="` + promFloat(bound) + `"} ` + strconv.FormatInt(cum, 10))
		}
		bw.line(p + `_bucket{le="+Inf"} ` + strconv.FormatInt(h.Count, 10))
		bw.line(p + "_sum " + promFloat(h.Sum))
		bw.line(p + "_count " + strconv.FormatInt(h.Count, 10))
	}
	for _, name := range sortedKeys(s.Timings) {
		t := s.Timings[name]
		p := promName(name) + "_seconds"
		bw.line("# TYPE " + p + " summary")
		bw.line(p + `{quantile="0.5"} ` + promFloat(t.P50Seconds))
		bw.line(p + `{quantile="0.95"} ` + promFloat(t.P95Seconds))
		bw.line(p + `{quantile="0.99"} ` + promFloat(t.P99Seconds))
		bw.line(p + "_sum " + promFloat(t.TotalSeconds))
		bw.line(p + "_count " + strconv.FormatInt(t.Count, 10))
	}
	return bw.err
}

// WriteJSON encodes a capture of the default registry as indented JSON —
// the /metrics.json endpoint, and the same Snapshot shape the -metrics
// flag writes.
func WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Capture())
}

// errWriter latches the first write error so the encoder body stays free
// of per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) line(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s+"\n")
}
