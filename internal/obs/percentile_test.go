package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// naivePercentile is the oracle: sort, take the 1-based nearest rank
// ceil(q*n), clamped to [1, n].
func naivePercentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestPercentileEdgeCases(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty samples should return 0")
	}
	one := []float64{42}
	for _, q := range []float64{0, 0.5, 1} {
		if got := Percentile(one, q); got != 42 {
			t.Errorf("Percentile([42], %v) = %v", q, got)
		}
	}
	s := []float64{3, 1, 2}
	if got := Percentile(s, 0); got != 1 {
		t.Errorf("q=0 = %v, want min", got)
	}
	if got := Percentile(s, 1); got != 3 {
		t.Errorf("q=1 = %v, want max", got)
	}
	if got := Percentile(s, -0.5); got != 1 {
		t.Errorf("q<0 = %v, want min", got)
	}
	if got := Percentile(s, 1.5); got != 3 {
		t.Errorf("q>1 = %v, want max", got)
	}
	if s[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileFuzzAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fixedQ := []float64{0, 0.5, 0.95, 0.99, 1}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		samples := make([]float64, n)
		for i := range samples {
			switch rng.Intn(3) {
			case 0: // uniform
				samples[i] = rng.Float64() * 1000
			case 1: // heavy tail
				samples[i] = math.Exp(rng.NormFloat64() * 3)
			default: // lots of ties
				samples[i] = float64(rng.Intn(5))
			}
		}
		qs := append(append([]float64(nil), fixedQ...), rng.Float64(), rng.Float64())
		for _, q := range qs {
			got := Percentile(samples, q)
			want := naivePercentile(samples, q)
			if got != want {
				t.Fatalf("trial %d n=%d q=%v: Percentile=%v oracle=%v", trial, n, q, got, want)
			}
		}
	}
}

func TestPercentileMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := make([]float64, 257)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := Percentile(samples, q)
		if v < prev {
			t.Fatalf("Percentile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}
