package obs

// MergeSnapshots folds per-peer metric snapshots into one fleet-level
// view:
//
//   - counters sum under their plain name — `serve_request` across the
//     fleet is the sum of every peer's `serve_request`;
//   - histograms with identical bounds merge bucket-wise (counts, count,
//     sum all add), so fleet latency distributions stay exact rather
//     than quantile-averaged; a histogram whose bounds differ from an
//     already-merged one falls back to a per-peer `name@peer` key
//     instead of silently mixing incompatible layouts;
//   - gauges and timings are point-in-time or pre-quantiled per process
//     and cannot be summed meaningfully, so they keep per-peer
//     attribution under `name@peer`.
//
// Peers are visited in sorted-key order, so merging is deterministic
// regardless of map iteration.
func MergeSnapshots(peers map[string]Snapshot) Snapshot {
	m := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Timings:    map[string]TimingSnapshot{},
	}
	for _, peer := range sortedKeys(peers) {
		s := peers[peer]
		for name, v := range s.Counters {
			m.Counters[name] += v
		}
		for name, v := range s.Gauges {
			m.Gauges[name+"@"+peer] = v
		}
		for name, h := range s.Histograms {
			prev, ok := m.Histograms[name]
			if !ok {
				m.Histograms[name] = cloneHistogram(h)
				continue
			}
			if !sameBounds(prev.Bounds, h.Bounds) {
				m.Histograms[name+"@"+peer] = cloneHistogram(h)
				continue
			}
			for i := range prev.Counts {
				if i < len(h.Counts) {
					prev.Counts[i] += h.Counts[i]
				}
			}
			prev.Count += h.Count
			prev.Sum += h.Sum
			m.Histograms[name] = prev
		}
		for name, t := range s.Timings {
			m.Timings[name+"@"+peer] = t
		}
	}
	return m
}

func cloneHistogram(h HistogramSnapshot) HistogramSnapshot {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
