package obs

import (
	"math"
	"sync"
	"time"
)

// SLOConfig declares the service-level objectives a tracker scores
// against. Zero fields take the defaults below, so a zero SLOConfig is
// usable as-is.
type SLOConfig struct {
	// Window is the rolling evaluation window (default 5m).
	Window time.Duration
	// Slices is how many time slices the window is divided into
	// (default 30); expiry granularity is Window/Slices.
	Slices int
	// Availability is the fraction of requests that must succeed
	// (default 0.999). Values >= 1 are clamped just below 1 so the
	// error budget never divides by zero.
	Availability float64
	// LatencyP is the latency objective's quantile (default 0.99), and
	// Latency the duration that quantile must stay under (default 1s).
	LatencyP float64
	Latency  time.Duration
}

const (
	defaultSLOWindow       = 5 * time.Minute
	defaultSLOSlices       = 30
	defaultSLOAvailability = 0.999
	defaultSLOLatencyP     = 0.99
	defaultSLOLatency      = time.Second
	// maxSLOObjective caps objectives so 1-objective (the budget) stays
	// positive and burn rates stay finite/JSON-encodable.
	maxSLOObjective = 0.9999999
)

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = defaultSLOWindow
	}
	if c.Slices <= 0 {
		c.Slices = defaultSLOSlices
	}
	if c.Availability <= 0 {
		c.Availability = defaultSLOAvailability
	}
	if c.Availability > maxSLOObjective {
		c.Availability = maxSLOObjective
	}
	if c.LatencyP <= 0 {
		c.LatencyP = defaultSLOLatencyP
	}
	if c.LatencyP > maxSLOObjective {
		c.LatencyP = maxSLOObjective
	}
	if c.Latency <= 0 {
		c.Latency = defaultSLOLatency
	}
	return c
}

// SLOTracker scores requests against rolling-window availability and
// latency objectives. The window is a fixed array of time slices, each
// holding a request/error count and the same log2-ns latency histogram
// the Timing metrics use — so a tracker is a few KB, never allocates
// per request, and reports exact windowed counts rather than decayed
// estimates.
type SLOTracker struct {
	cfg    SLOConfig
	sliceD time.Duration
	now    func() time.Time // injectable for tests

	mu     sync.Mutex
	slices []sloSlice
}

type sloSlice struct {
	epoch  int64 // sliceD-granular time; stale slices are re-zeroed lazily
	total  int64
	errors int64
	lat    [latencyBuckets]int64
}

// NewSLOTracker builds a tracker for the given objectives (zero fields
// take defaults).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	return &SLOTracker{
		cfg:    cfg,
		sliceD: cfg.Window / time.Duration(cfg.Slices),
		now:    time.Now,
		slices: make([]sloSlice, cfg.Slices),
	}
}

// Record folds one request into the current window slice. failed marks
// an availability violation (server error / shed load); latency is
// scored separately against the objective. Nil-safe.
func (t *SLOTracker) Record(d time.Duration, failed bool) {
	if t == nil {
		return
	}
	epoch := t.now().UnixNano() / int64(t.sliceD)
	t.mu.Lock()
	s := &t.slices[epoch%int64(len(t.slices))]
	if s.epoch != epoch {
		*s = sloSlice{epoch: epoch}
	}
	s.total++
	if failed {
		s.errors++
	}
	s.lat[latencyBucket(int64(d))]++
	t.mu.Unlock()
}

// SLOReport is the scored state of the window, shaped for /slo. Burn
// rates are the classic error-budget ratio: observed bad fraction over
// allowed bad fraction. 1.0 means the budget is being spent exactly as
// fast as it accrues; above 1 the objective will be violated if the
// window's behaviour persists.
type SLOReport struct {
	WindowSeconds float64 `json:"window_seconds"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`

	Availability          float64 `json:"availability"`
	AvailabilityObjective float64 `json:"availability_objective"`
	ErrorBudget           float64 `json:"error_budget"`
	AvailabilityBurnRate  float64 `json:"availability_burn_rate"`

	LatencyObjectiveSeconds float64 `json:"latency_objective_seconds"`
	LatencyQuantile         float64 `json:"latency_quantile"`
	QuantileSeconds         float64 `json:"quantile_seconds"`
	SlowFraction            float64 `json:"slow_fraction"`
	LatencyBurnRate         float64 `json:"latency_burn_rate"`

	Healthy bool `json:"healthy"`
}

// Report scores the current window. An empty window is healthy: with no
// requests there is no evidence of violation. Nil-safe (returns the
// zero report with Healthy=true).
func (t *SLOTracker) Report() SLOReport {
	rep := SLOReport{Healthy: true}
	if t == nil {
		return rep
	}
	rep.WindowSeconds = t.cfg.Window.Seconds()
	rep.AvailabilityObjective = t.cfg.Availability
	rep.ErrorBudget = 1 - t.cfg.Availability
	rep.LatencyObjectiveSeconds = t.cfg.Latency.Seconds()
	rep.LatencyQuantile = t.cfg.LatencyP

	nowEpoch := t.now().UnixNano() / int64(t.sliceD)
	oldest := nowEpoch - int64(len(t.slices)) + 1
	var lat [latencyBuckets]int64
	t.mu.Lock()
	for i := range t.slices {
		s := &t.slices[i]
		if s.epoch < oldest || s.epoch > nowEpoch {
			continue
		}
		rep.Requests += s.total
		rep.Errors += s.errors
		for b, c := range s.lat {
			lat[b] += c
		}
	}
	t.mu.Unlock()

	rep.Availability = 1
	if rep.Requests == 0 {
		return rep
	}
	rep.Availability = 1 - float64(rep.Errors)/float64(rep.Requests)
	rep.AvailabilityBurnRate = (1 - rep.Availability) / rep.ErrorBudget

	rep.QuantileSeconds = log2Quantile(&lat, rep.Requests, t.cfg.LatencyP, 0) / 1e9
	rep.SlowFraction = slowFraction(&lat, rep.Requests, t.cfg.Latency)
	rep.LatencyBurnRate = rep.SlowFraction / (1 - t.cfg.LatencyP)
	rep.Healthy = rep.AvailabilityBurnRate < 1 && rep.LatencyBurnRate < 1
	return rep
}

// slowFraction estimates the fraction of samples slower than the
// threshold from log2-ns buckets, linearly interpolating within the
// octave containing the threshold.
func slowFraction(counts *[latencyBuckets]int64, n int64, threshold time.Duration) float64 {
	if n == 0 {
		return 0
	}
	tns := int64(threshold)
	tb := latencyBucket(tns)
	var slow float64
	for b := tb + 1; b < latencyBuckets; b++ {
		slow += float64(counts[b])
	}
	// Split the threshold's own octave [2^(tb-1), 2^tb) proportionally.
	if c := counts[tb]; c > 0 {
		var lo, hi float64
		if tb == 0 {
			lo, hi = 0, 1
		} else {
			lo = math.Ldexp(1, tb-1)
			hi = lo * 2
		}
		frac := (hi - float64(tns)) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		slow += float64(c) * frac
	}
	return slow / float64(n)
}
