package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// withEnabled runs f with collection forced on, restoring the previous
// state afterwards.
func withEnabled(t testing.TB, f func()) {
	t.Helper()
	prev := Enable()
	defer SetEnabled(prev)
	f()
}

func TestDisabledMetricsStayZero(t *testing.T) {
	prev := Disable()
	defer SetEnabled(prev)
	c := CounterFor("test.disabled.counter")
	g := GaugeFor("test.disabled.gauge")
	h := HistogramFor("test.disabled.hist", []float64{1, 10})
	tm := TimingFor("test.disabled.timing")
	c.Add(5)
	g.Set(3.5)
	h.Observe(4)
	sp := tm.Start()
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tm.Count() != 0 {
		t.Errorf("disabled metrics recorded: counter=%d gauge=%g hist=%d timing=%d",
			c.Value(), g.Value(), h.Count(), tm.Count())
	}
}

func TestCounterGaugeHistogramTiming(t *testing.T) {
	withEnabled(t, func() {
		c := CounterFor("test.counter")
		base := c.Value()
		c.Inc()
		c.Add(4)
		if got := c.Value() - base; got != 5 {
			t.Errorf("counter = %d, want 5", got)
		}

		g := GaugeFor("test.gauge")
		g.Set(2.25)
		if g.Value() != 2.25 {
			t.Errorf("gauge = %g, want 2.25", g.Value())
		}

		h := HistogramFor("test.hist", []float64{1, 10, 100})
		for _, v := range []float64{0.5, 5, 50, 500} {
			h.Observe(v)
		}
		if h.Count() != 4 {
			t.Errorf("hist count = %d, want 4", h.Count())
		}

		tm := TimingFor("test.timing")
		tm.Record(3 * time.Millisecond)
		tm.Record(1 * time.Millisecond)
		if tm.Count() != 2 || tm.Total() != 4*time.Millisecond {
			t.Errorf("timing count=%d total=%v, want 2/4ms", tm.Count(), tm.Total())
		}
	})
}

func TestInterningSharesCells(t *testing.T) {
	if CounterFor("test.shared") != CounterFor("test.shared") {
		t.Error("CounterFor returned distinct cells for one name")
	}
	if TimingFor("test.shared.t") != TimingFor("test.shared.t") {
		t.Error("TimingFor returned distinct cells for one name")
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tm *Timing
	)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	tm.Start().End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tm.Count() != 0 {
		t.Error("nil handles recorded values")
	}
}

func TestSnapshotRoundTripsJSON(t *testing.T) {
	withEnabled(t, func() {
		CounterFor("test.snap.counter").Add(7)
		GaugeFor("test.snap.gauge").Set(1.5)
		HistogramFor("test.snap.hist", []float64{2, 4}).Observe(3)
		TimingFor("test.snap.timing").Record(2 * time.Millisecond)

		s := Capture()
		if s.Counters["test.snap.counter"] < 7 {
			t.Errorf("snapshot counter = %d, want >= 7", s.Counters["test.snap.counter"])
		}
		if s.Gauges["test.snap.gauge"] != 1.5 {
			t.Errorf("snapshot gauge = %g", s.Gauges["test.snap.gauge"])
		}
		hs := s.Histograms["test.snap.hist"]
		if hs.Count < 1 || len(hs.Counts) != len(hs.Bounds)+1 {
			t.Errorf("snapshot histogram malformed: %+v", hs)
		}
		ts := s.Timings["test.snap.timing"]
		if ts.Count < 1 || ts.TotalSeconds <= 0 || ts.MeanSeconds <= 0 {
			t.Errorf("snapshot timing malformed: %+v", ts)
		}

		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Snapshot
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if back.Counters["test.snap.counter"] != s.Counters["test.snap.counter"] {
			t.Error("counter lost in JSON round trip")
		}
	})
}

func TestResetZeroesEverything(t *testing.T) {
	withEnabled(t, func() {
		c := CounterFor("test.reset.counter")
		tm := TimingFor("test.reset.timing")
		c.Add(3)
		tm.Record(time.Millisecond)
		Reset()
		if c.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 {
			t.Errorf("reset left counter=%d timing=%d/%v", c.Value(), tm.Count(), tm.Total())
		}
	})
}

func TestManifestFieldsPopulated(t *testing.T) {
	m := NewManifest()
	if m.GoVersion == "" || m.GOOS == "" || m.NumCPU < 1 || m.GOMAXPROCS < 1 || m.Timestamp == "" {
		t.Errorf("manifest incomplete: %+v", m)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	withEnabled(t, func() {
		c := CounterFor("test.concurrent.counter")
		h := HistogramFor("test.concurrent.hist", []float64{10})
		tm := TimingFor("test.concurrent.timing")
		base := c.Value()
		var wg sync.WaitGroup
		const workers, per = 8, 1000
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc()
					h.Observe(float64(i % 20))
					tm.Record(time.Nanosecond)
				}
			}()
		}
		wg.Wait()
		if got := c.Value() - base; got != workers*per {
			t.Errorf("concurrent counter = %d, want %d", got, workers*per)
		}
	})
}

// BenchmarkObsDisabledNoAlloc guards the zero-overhead-when-disabled
// contract: with collection off, counters, gauges, histograms, and spans
// must not allocate. check.sh runs every NoAlloc benchmark with
// -benchtime=1x and fails on a nonzero allocs/op.
func BenchmarkObsDisabledNoAlloc(b *testing.B) {
	prev := Disable()
	defer SetEnabled(prev)
	c := CounterFor("bench.disabled.counter")
	g := GaugeFor("bench.disabled.gauge")
	h := HistogramFor("bench.disabled.hist", []float64{1, 10, 100})
	tm := TimingFor("bench.disabled.timing")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(3)
		g.Set(float64(i))
		h.Observe(float64(i))
		sp := tm.Start()
		sp.End()
	}
}

// BenchmarkObsEnabledNoAlloc guards the stronger property that even the
// enabled paths are allocation-free, so flipping -metrics on never turns
// an allocation-free solver loop into a GC workload.
func BenchmarkObsEnabledNoAlloc(b *testing.B) {
	prev := Enable()
	defer SetEnabled(prev)
	c := CounterFor("bench.enabled.counter")
	g := GaugeFor("bench.enabled.gauge")
	h := HistogramFor("bench.enabled.hist", []float64{1, 10, 100})
	tm := TimingFor("bench.enabled.timing")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i))
		sp := tm.Start()
		sp.End()
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3} // unsorted on purpose; input must not be mutated
	orig := append([]float64(nil), samples...)
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {0.9, 5}, {0.95, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.q); got != c.want {
			t.Errorf("Percentile(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
	for i := range samples {
		if samples[i] != orig[i] {
			t.Fatalf("Percentile mutated its input: %v", samples)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %g, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Percentile(single, 0.99) = %g, want 7", got)
	}
}
