package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// withEvents runs f with event recording on against a fresh default
// ring, restoring the previous state afterwards.
func withEvents(t testing.TB, f func()) {
	t.Helper()
	prev := EventsEnable()
	EventsReset()
	defer func() {
		SetEventSink(nil)
		SetEventsEnabled(prev)
	}()
	f()
}

func TestEventsDisabledRecordsNothing(t *testing.T) {
	prev := EventsDisable()
	defer SetEventsEnabled(prev)
	EventsReset()
	RecordEvent(Event{Method: "solve"})
	if got := EventsSnapshot(); len(got) != 0 {
		t.Errorf("disabled ring recorded %d events", len(got))
	}
}

func TestEventsSnapshotOrderedByTime(t *testing.T) {
	withEvents(t, func() {
		base := time.Unix(1000, 0)
		// Record out of time order; snapshot must sort.
		RecordEvent(Event{Time: base.Add(2 * time.Second), Method: "solve", Cache: "miss"})
		RecordEvent(Event{Time: base, Method: "solve", Cache: "hit"})
		RecordEvent(Event{Time: base.Add(time.Second), Method: "batch", Items: 3})
		got := EventsSnapshot()
		if len(got) != 3 {
			t.Fatalf("got %d events, want 3", len(got))
		}
		if got[0].Cache != "hit" || got[1].Method != "batch" || got[2].Cache != "miss" {
			t.Errorf("events out of time order: %+v", got)
		}
	})
}

func TestEventsRingWraps(t *testing.T) {
	withEvents(t, func() {
		SetEventCapacity(4)
		defer SetEventCapacity(DefaultEventCapacity)
		base := time.Unix(2000, 0)
		for i := 0; i < 10; i++ {
			RecordEvent(Event{Time: base.Add(time.Duration(i) * time.Second), Status: 200 + i})
		}
		got := EventsSnapshot()
		if len(got) != 4 {
			t.Fatalf("ring holds %d events, want 4", len(got))
		}
		for i, ev := range got {
			if ev.Status != 206+i {
				t.Errorf("event %d status = %d, want %d (last 4 survive)", i, ev.Status, 206+i)
			}
		}
	})
}

func TestEventsFillTimeAndConcurrentRecord(t *testing.T) {
	withEvents(t, func() {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					RecordEvent(Event{Method: "solve", Status: 200})
				}
			}()
		}
		wg.Wait()
		got := EventsSnapshot()
		if len(got) != 400 {
			t.Fatalf("got %d events, want 400", len(got))
		}
		for _, ev := range got {
			if ev.Time.IsZero() {
				t.Fatal("RecordEvent did not stamp a zero Time")
			}
		}
	})
}

func TestEventSinkStreamsJSONLines(t *testing.T) {
	withEvents(t, func() {
		var buf bytes.Buffer
		SetEventSink(&buf)
		RecordEvent(Event{Time: time.Unix(3000, 0), Method: "solve", Cache: "proxied", ServedBy: "peer:9"})
		RecordEvent(Event{Time: time.Unix(3001, 0), Method: "batch", Items: 2})
		SetEventSink(nil)
		RecordEvent(Event{Method: "solve"}) // after nil sink: ring only

		sc := bufio.NewScanner(&buf)
		var lines int
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("sink line %d is not JSON: %v", lines, err)
			}
			lines++
			if lines == 1 && (ev.Cache != "proxied" || ev.ServedBy != "peer:9") {
				t.Errorf("first sink line = %+v", ev)
			}
		}
		if lines != 2 {
			t.Errorf("sink got %d lines, want 2", lines)
		}
		if got := EventsSnapshot(); len(got) != 3 {
			t.Errorf("ring has %d events, want 3", len(got))
		}
	})
}

// TestEventsDroppedCountsUnreadOverwrites exercises the overflow path:
// overwriting a slot nobody has snapshotted yet increments
// events.dropped, while recycling already-read slots stays free.
func TestEventsDroppedCountsUnreadOverwrites(t *testing.T) {
	prevObs := Enable()
	if !prevObs {
		defer Disable()
	}
	withEvents(t, func() {
		SetEventCapacity(4)
		defer SetEventCapacity(DefaultEventCapacity)
		dropped := func() int64 { return CounterFor("events.dropped").Value() }
		base := dropped()

		for i := 0; i < 4; i++ {
			RecordEvent(Event{Method: "solve"})
		}
		if d := dropped() - base; d != 0 {
			t.Fatalf("filling an empty ring dropped %d events", d)
		}

		// Two more writes overwrite never-read slots.
		RecordEvent(Event{Method: "solve"})
		RecordEvent(Event{Method: "solve"})
		if d := dropped() - base; d != 2 {
			t.Fatalf("unread overwrites dropped %d, want 2", d)
		}

		// A snapshot marks everything read; the next full wrap recycles
		// read slots for free, and only the write past the wrap drops.
		EventsSnapshot()
		for i := 0; i < 4; i++ {
			RecordEvent(Event{Method: "solve"})
		}
		if d := dropped() - base; d != 2 {
			t.Fatalf("read overwrites counted as drops: %d, want 2", d)
		}
		RecordEvent(Event{Method: "solve"})
		if d := dropped() - base; d != 3 {
			t.Fatalf("post-wrap unread overwrite dropped %d, want 3", d)
		}
	})
}
