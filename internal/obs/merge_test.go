package obs

import "testing"

func TestMergeSnapshotsSumsCounters(t *testing.T) {
	m := MergeSnapshots(map[string]Snapshot{
		"a:1": {Counters: map[string]int64{"serve_request": 3, "serve_proxy": 1}},
		"b:2": {Counters: map[string]int64{"serve_request": 5}},
	})
	if m.Counters["serve_request"] != 8 {
		t.Errorf("serve_request = %d, want 8", m.Counters["serve_request"])
	}
	if m.Counters["serve_proxy"] != 1 {
		t.Errorf("serve_proxy = %d, want 1", m.Counters["serve_proxy"])
	}
}

func TestMergeSnapshotsHistogramsBucketwise(t *testing.T) {
	bounds := []float64{1, 10, 100}
	m := MergeSnapshots(map[string]Snapshot{
		"a": {Histograms: map[string]HistogramSnapshot{
			"iters": {Bounds: bounds, Counts: []int64{1, 2, 3, 4}, Count: 10, Sum: 55},
		}},
		"b": {Histograms: map[string]HistogramSnapshot{
			"iters": {Bounds: bounds, Counts: []int64{10, 20, 30, 40}, Count: 100, Sum: 500},
		}},
	})
	h := m.Histograms["iters"]
	want := []int64{11, 22, 33, 44}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count != 110 || h.Sum != 555 {
		t.Errorf("count/sum = %d/%v, want 110/555", h.Count, h.Sum)
	}
}

func TestMergeSnapshotsMismatchedBoundsKeyPerPeer(t *testing.T) {
	m := MergeSnapshots(map[string]Snapshot{
		"a": {Histograms: map[string]HistogramSnapshot{
			"iters": {Bounds: []float64{1, 2}, Counts: []int64{1, 1, 1}, Count: 3},
		}},
		"b": {Histograms: map[string]HistogramSnapshot{
			"iters": {Bounds: []float64{1, 2, 3}, Counts: []int64{2, 2, 2, 2}, Count: 8},
		}},
	})
	if m.Histograms["iters"].Count != 3 {
		t.Errorf("first peer's histogram mangled: %+v", m.Histograms["iters"])
	}
	if m.Histograms["iters@b"].Count != 8 {
		t.Errorf("mismatched-bounds histogram not keyed per peer: %v", sortedKeys(m.Histograms))
	}
}

func TestMergeSnapshotsGaugesAndTimingsPerPeer(t *testing.T) {
	m := MergeSnapshots(map[string]Snapshot{
		"a:1": {
			Gauges:  map[string]float64{"inflight": 2},
			Timings: map[string]TimingSnapshot{"solve": {Count: 7}},
		},
		"b:2": {
			Gauges: map[string]float64{"inflight": 5},
		},
	})
	if m.Gauges["inflight@a:1"] != 2 || m.Gauges["inflight@b:2"] != 5 {
		t.Errorf("gauges = %+v", m.Gauges)
	}
	if _, ok := m.Gauges["inflight"]; ok {
		t.Error("gauge merged under plain name; gauges must not sum")
	}
	if m.Timings["solve@a:1"].Count != 7 {
		t.Errorf("timings = %+v", m.Timings)
	}
}

func TestMergeSnapshotsDoesNotAliasInputs(t *testing.T) {
	src := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{4, 5}, Count: 9}
	m := MergeSnapshots(map[string]Snapshot{
		"a": {Histograms: map[string]HistogramSnapshot{"h": src}},
		"b": {Histograms: map[string]HistogramSnapshot{"h": {Bounds: []float64{1}, Counts: []int64{1, 1}, Count: 2}}},
	})
	if src.Counts[0] != 4 {
		t.Errorf("input histogram mutated: %+v", src)
	}
	if m.Histograms["h"].Count != 11 {
		t.Errorf("merged count = %d, want 11", m.Histograms["h"].Count)
	}
}

func TestMergeSnapshotsDisjointCounterSets(t *testing.T) {
	m := MergeSnapshots(map[string]Snapshot{
		"a": {Counters: map[string]int64{"shadow.sampled": 4, "shadow.agree": 4}},
		"b": {Counters: map[string]int64{"shadow.diverge": 2}},
		"c": {}, // peer with no counters at all
	})
	want := map[string]int64{"shadow.sampled": 4, "shadow.agree": 4, "shadow.diverge": 2}
	if len(m.Counters) != len(want) {
		t.Fatalf("merged counters = %v, want %v", m.Counters, want)
	}
	for name, v := range want {
		if m.Counters[name] != v {
			t.Errorf("%s = %d, want %d", name, m.Counters[name], v)
		}
	}
}

// TestMergeSnapshotsLaterPeerRejoinsBaseBounds pins the three-peer
// behavior: a peer with mismatched bounds is keyed aside, but a later
// peer whose bounds match the first still merges into the base entry.
func TestMergeSnapshotsLaterPeerRejoinsBaseBounds(t *testing.T) {
	bounds := []float64{1, 10}
	m := MergeSnapshots(map[string]Snapshot{
		"a": {Histograms: map[string]HistogramSnapshot{
			"iters": {Bounds: bounds, Counts: []int64{1, 2, 3}, Count: 6, Sum: 10},
		}},
		"b": {Histograms: map[string]HistogramSnapshot{
			"iters": {Bounds: []float64{5}, Counts: []int64{7, 7}, Count: 14, Sum: 20},
		}},
		"c": {Histograms: map[string]HistogramSnapshot{
			"iters": {Bounds: bounds, Counts: []int64{10, 20, 30}, Count: 60, Sum: 100},
		}},
	})
	h := m.Histograms["iters"]
	if h.Count != 66 || h.Sum != 110 {
		t.Fatalf("a+c not merged: %+v", h)
	}
	for i, want := range []int64{11, 22, 33} {
		if h.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	if m.Histograms["iters@b"].Count != 14 {
		t.Errorf("peer b not keyed aside: %v", sortedKeys(m.Histograms))
	}
}
