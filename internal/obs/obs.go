// Package obs is the solver-aware observability layer: a stdlib-only
// metrics registry of atomic counters, gauges, bounded histograms, and
// nestable timing spans that the hot solver packages (linalg, petri, mrgp,
// parallel, nvp, des, percept) report into.
//
// The design contract is zero overhead when disabled: instrumentation is
// off by default, every metric operation short-circuits on one atomic
// load, and neither the disabled nor the enabled path allocates — Span is
// a value type and the update paths are pure atomics — so instrumented
// kernels keep their AllocsPerRun == 0 guarantees (see
// BenchmarkObsDisabledNoAlloc and BenchmarkObsEnabledNoAlloc).
//
// Metric handles are package-level: resolve them once in a var block
// (CounterFor et al. intern by name) and call the methods from hot loops.
// All handles and the registry are safe for concurrent use; a nil handle
// is valid and inert, so tests can zero-value structs freely.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every metric update. It is process-global: the CLI flips
// it when -metrics or bench asks for a snapshot, and benchmarks flip it to
// measure both paths.
var enabled atomic.Bool

// Enable turns metric collection on and reports the previous state.
func Enable() bool { return enabled.Swap(true) }

// Disable turns metric collection off and reports the previous state.
func Disable() bool { return enabled.Swap(false) }

// SetEnabled restores a state previously returned by Enable or Disable.
func SetEnabled(on bool) {
	enabled.Store(on)
}

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// registry interns metrics by name so every CounterFor("x") call across
// packages shares one cell. Registration happens in package var blocks
// (cold); updates never touch the registry.
type registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timings    map[string]*Timing
}

var def = &registry{
	counters:   make(map[string]*Counter),
	gauges:     make(map[string]*Gauge),
	histograms: make(map[string]*Histogram),
	timings:    make(map[string]*Timing),
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// CounterFor returns the counter registered under name, creating it on
// first use.
func CounterFor(name string) *Counter {
	def.mu.Lock()
	defer def.mu.Unlock()
	c, ok := def.counters[name]
	if !ok {
		c = &Counter{name: name}
		def.counters[name] = c
	}
	return c
}

// Add increments the counter by n. A no-op when collection is disabled or
// the receiver is nil.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 holding the most recent observation of some
// level (a residual, a utilization, a tail mass).
type Gauge struct {
	name string
	bits atomic.Uint64
}

// GaugeFor returns the gauge registered under name, creating it on first
// use.
func GaugeFor(name string) *Gauge {
	def.mu.Lock()
	defer def.mu.Unlock()
	g, ok := def.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		def.gauges[name] = g
	}
	return g
}

// Set records v. A no-op when collection is disabled or the receiver is
// nil.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (zero before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded histogram with fixed upper-bound buckets plus an
// implicit overflow bucket. Bucket counts, the total count, and the sum
// are all atomics, so Observe is lock-free and allocation-free.
type Histogram struct {
	name    string
	bounds  []float64 // sorted inclusive upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// HistogramFor returns the histogram registered under name, creating it
// with the given sorted inclusive upper bounds on first use (later calls
// ignore bounds). An empty bounds slice yields a count/sum-only summary.
// Bounds must be finite-or-+Inf-free of NaN and strictly increasing;
// violating that is a programmer error and panics with the offending
// name, because a malformed bucket layout silently misroutes every
// observation for the life of the process.
func HistogramFor(name string, bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram %q bound %d is NaN", name, i))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing at %d (%g after %g)", name, i, b, bounds[i-1]))
		}
	}
	def.mu.Lock()
	defer def.mu.Unlock()
	h, ok := def.histograms[name]
	if !ok {
		h = &Histogram{
			name:    name,
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		def.histograms[name] = h
	}
	return h
}

// Observe records v into its bucket. A no-op when collection is disabled
// or the receiver is nil.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// latencyBuckets is the fixed bucket count of the per-Timing latency
// histogram: one log2 bucket per possible bits.Len64 of a nanosecond
// duration (0..64), so bucketing is a single instruction with no search
// and no allocation — Record stays on the enabled-path zero-alloc
// contract guarded by BenchmarkObsEnabledNoAlloc.
const latencyBuckets = 65

// latencyBucket maps a duration in nanoseconds to its log2 bucket:
// bucket b holds durations in [2^(b-1), 2^b) ns (bucket 0 holds 0 and
// negatives, which clock skew can produce).
func latencyBucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// Timing aggregates durations: count, total, max, and a bounded log2
// latency histogram (for tail percentile estimates), in nanoseconds.
// Spans started from a Timing may nest freely — each Span is an
// independent value and sibling or enclosing spans do not interact.
type Timing struct {
	name  string
	count atomic.Int64
	total atomic.Int64
	max   atomic.Int64
	lat   [latencyBuckets]atomic.Int64
}

// TimingFor returns the timing registered under name, creating it on
// first use.
func TimingFor(name string) *Timing {
	def.mu.Lock()
	defer def.mu.Unlock()
	t, ok := def.timings[name]
	if !ok {
		t = &Timing{name: name}
		def.timings[name] = t
	}
	return t
}

// Span is an in-flight timing measurement. The zero Span (returned when
// collection is disabled) is inert.
type Span struct {
	t     *Timing
	start time.Time
}

// Start opens a span against the timing. When collection is disabled (or
// t is nil) it returns the inert zero Span without reading the clock.
func (t *Timing) Start() Span {
	if t == nil || !enabled.Load() {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// End closes the span, folding its duration into the timing. Safe on the
// zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Record(time.Since(s.start))
}

// Record folds an externally measured duration into the timing.
func (t *Timing) Record(d time.Duration) {
	if t == nil || !enabled.Load() {
		return
	}
	ns := int64(d)
	t.count.Add(1)
	t.total.Add(ns)
	t.lat[latencyBucket(ns)].Add(1)
	for {
		old := t.max.Load()
		if ns <= old || t.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Count returns the number of recorded spans.
func (t *Timing) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timing) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) of recorded durations
// from the log2 latency histogram, interpolating linearly within the
// containing bucket and clamping to the recorded max (an estimate can
// otherwise land past it, since a bucket's range is a full octave). Zero
// when nothing has been recorded.
func (t *Timing) Quantile(q float64) time.Duration {
	if t == nil {
		return 0
	}
	var counts [latencyBuckets]int64
	var n int64
	for i := range t.lat {
		counts[i] = t.lat[i].Load()
		n += counts[i]
	}
	if n == 0 {
		return 0
	}
	return time.Duration(log2Quantile(&counts, n, q, float64(t.max.Load())))
}

// log2Quantile estimates the q-quantile in nanoseconds from a log2-ns
// bucket array holding n samples, interpolating linearly within the
// containing octave and clamping to maxNS when positive. Shared by
// Timing.Quantile and the SLO tracker's windowed histograms.
func log2Quantile(counts *[latencyBuckets]int64, n int64, q float64, maxNS float64) float64 {
	rank := q * float64(n)
	var cum int64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		before := float64(cum)
		cum += c
		if float64(cum) < rank {
			continue
		}
		var lo, hi float64
		if b == 0 {
			lo, hi = 0, 1
		} else {
			lo = math.Ldexp(1, b-1)
			hi = lo * 2
		}
		est := lo + (hi-lo)*(rank-before)/float64(c)
		if maxNS > 0 && est > maxNS {
			est = maxNS
		}
		return est
	}
	return maxNS
}

// Reset zeroes every registered metric (counts, gauges, histograms,
// timings). Registration survives; handles stay valid. Meant for bench
// harnesses that want per-run snapshots, not for concurrent use with
// active updates.
func Reset() {
	def.mu.Lock()
	defer def.mu.Unlock()
	for _, c := range def.counters {
		c.v.Store(0)
	}
	for _, g := range def.gauges {
		g.bits.Store(0)
	}
	for _, h := range def.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
	}
	for _, t := range def.timings {
		t.count.Store(0)
		t.total.Store(0)
		t.max.Store(0)
		for i := range t.lat {
			t.lat[i].Store(0)
		}
	}
}
