package obs

import (
	"math"
	"runtime"
	"time"
)

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON export (maps marshal with sorted keys, so snapshots diff cleanly).
// Zero-valued metrics are included: a counter that stayed at zero is
// itself a finding (e.g. "no dense fallbacks happened").
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timings    map[string]TimingSnapshot    `json:"timings,omitempty"`
}

// HistogramSnapshot is one histogram's state: parallel bounds/counts
// slices (the final count is the overflow bucket past the last bound).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// TimingSnapshot is one timing's state in seconds. The percentiles are
// estimates from a per-Timing bounded log2 latency histogram (linear
// interpolation within the containing octave, clamped to the observed
// max), so tails are accurate to within a factor of two — enough to
// tell a 10 ms p99 from a 100 ms one, which is what the exposition is
// for.
type TimingSnapshot struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	P50Seconds   float64 `json:"p50_seconds"`
	P95Seconds   float64 `json:"p95_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
}

// Capture snapshots the default registry. It is safe against concurrent
// updates (individual cells are read atomically; the snapshot is not a
// single consistent cut, which metric exports never need).
func Capture() Snapshot {
	def.mu.Lock()
	defer def.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(def.counters)),
		Gauges:     make(map[string]float64, len(def.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(def.histograms)),
		Timings:    make(map[string]TimingSnapshot, len(def.timings)),
	}
	for name, c := range def.counters {
		s.Counters[name] = c.v.Load()
	}
	for name, g := range def.gauges {
		s.Gauges[name] = math.Float64frombits(g.bits.Load())
	}
	for name, h := range def.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sumBits.Load()),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	for name, t := range def.timings {
		ts := TimingSnapshot{
			Count:        t.count.Load(),
			TotalSeconds: time.Duration(t.total.Load()).Seconds(),
			MaxSeconds:   time.Duration(t.max.Load()).Seconds(),
			P50Seconds:   t.Quantile(0.50).Seconds(),
			P95Seconds:   t.Quantile(0.95).Seconds(),
			P99Seconds:   t.Quantile(0.99).Seconds(),
		}
		if ts.Count > 0 {
			ts.MeanSeconds = ts.TotalSeconds / float64(ts.Count)
		}
		s.Timings[name] = ts
	}
	return s
}

// Manifest identifies the run a snapshot came from: toolchain, machine
// shape, the command and a hash of its full parameter vector, and the
// wall clock per phase. Everything needed to tell two BENCH_*.json or
// metrics snapshots apart months later.
type Manifest struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp"`

	// Command and ParamsHash pin what ran: the subcommand name and an
	// FNV-64a hash of the full argument vector (flags included), so runs
	// with different parameters never collide silently.
	Command    string `json:"command,omitempty"`
	ParamsHash string `json:"params_hash,omitempty"`

	// Workers is the parallel engine's effective default worker count.
	Workers int `json:"workers,omitempty"`

	// WallSeconds is the total command wall clock; Phases breaks it down
	// (phase names are caller-defined, e.g. one per bench experiment).
	WallSeconds float64            `json:"wall_seconds,omitempty"`
	Phases      map[string]float64 `json:"phases,omitempty"`
}

// NewManifest fills the machine/toolchain fields; the caller owns the
// command, hash, workers, and phase fields.
func NewManifest() Manifest {
	return Manifest{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}
