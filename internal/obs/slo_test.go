package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// testSLO returns a tracker with a deterministic fake clock the test
// can advance.
func testSLO(cfg SLOConfig) (*SLOTracker, *time.Time) {
	tr := NewSLOTracker(cfg)
	now := time.Unix(10_000, 0)
	tr.now = func() time.Time { return now }
	return tr, &now
}

func TestSLOEmptyWindowIsHealthy(t *testing.T) {
	tr, _ := testSLO(SLOConfig{})
	rep := tr.Report()
	if !rep.Healthy || rep.Requests != 0 || rep.Availability != 1 {
		t.Errorf("empty report = %+v", rep)
	}
	var nilTr *SLOTracker
	nilTr.Record(time.Second, true)
	if rep := nilTr.Report(); !rep.Healthy {
		t.Error("nil tracker unhealthy")
	}
}

func TestSLODefaultsAndClamp(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Availability: 1.0, LatencyP: 2})
	if tr.cfg.Availability >= 1 || tr.cfg.LatencyP >= 1 {
		t.Errorf("objectives not clamped below 1: %+v", tr.cfg)
	}
	if tr.cfg.Window != 5*time.Minute || tr.cfg.Slices != 30 || tr.cfg.Latency != time.Second {
		t.Errorf("defaults not applied: %+v", tr.cfg)
	}
	rep := tr.Report()
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}
}

func TestSLOAvailabilityBurn(t *testing.T) {
	tr, _ := testSLO(SLOConfig{Availability: 0.99})
	for i := 0; i < 98; i++ {
		tr.Record(time.Millisecond, false)
	}
	tr.Record(time.Millisecond, true)
	tr.Record(time.Millisecond, true)
	rep := tr.Report()
	if rep.Requests != 100 || rep.Errors != 2 {
		t.Fatalf("window counts = %d/%d", rep.Requests, rep.Errors)
	}
	if rep.Availability != 0.98 {
		t.Errorf("availability = %v", rep.Availability)
	}
	// 2% errors against a 1% budget: burning at 2x.
	if rep.AvailabilityBurnRate < 1.99 || rep.AvailabilityBurnRate > 2.01 {
		t.Errorf("availability burn = %v, want ~2", rep.AvailabilityBurnRate)
	}
	if rep.Healthy {
		t.Error("burn rate 2 reported healthy")
	}
}

func TestSLOLatencyBurn(t *testing.T) {
	// p99 <= 1s objective; feed 10% of requests at 4s (well above the
	// threshold octave) — slow fraction ~0.1 against a 0.01 budget.
	tr, _ := testSLO(SLOConfig{LatencyP: 0.99, Latency: time.Second})
	for i := 0; i < 90; i++ {
		tr.Record(10*time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		tr.Record(4*time.Second, false)
	}
	rep := tr.Report()
	if rep.SlowFraction < 0.09 || rep.SlowFraction > 0.11 {
		t.Errorf("slow fraction = %v, want ~0.1", rep.SlowFraction)
	}
	if rep.LatencyBurnRate < 9 || rep.LatencyBurnRate > 11 {
		t.Errorf("latency burn = %v, want ~10", rep.LatencyBurnRate)
	}
	if rep.Healthy {
		t.Error("latency burn 10x reported healthy")
	}
	if rep.QuantileSeconds < 1 {
		t.Errorf("p99 estimate = %vs, want >= 1s with 10%% at 4s", rep.QuantileSeconds)
	}

	// All-fast traffic stays healthy.
	tr2, _ := testSLO(SLOConfig{})
	for i := 0; i < 1000; i++ {
		tr2.Record(5*time.Millisecond, false)
	}
	if rep := tr2.Report(); !rep.Healthy || rep.LatencyBurnRate != 0 {
		t.Errorf("fast traffic report = %+v", rep)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	tr, now := testSLO(SLOConfig{Window: 30 * time.Second, Slices: 3})
	for i := 0; i < 10; i++ {
		tr.Record(time.Millisecond, true)
	}
	if rep := tr.Report(); rep.Errors != 10 {
		t.Fatalf("errors = %d, want 10", rep.Errors)
	}
	// One slice (10s) later the bad slice is still in the window...
	*now = now.Add(10 * time.Second)
	tr.Record(time.Millisecond, false)
	if rep := tr.Report(); rep.Errors != 10 || rep.Requests != 11 {
		t.Fatalf("after 10s: %d/%d, want 11/10", rep.Requests, rep.Errors)
	}
	// ...but a full window later it has aged out.
	*now = now.Add(40 * time.Second)
	tr.Record(time.Millisecond, false)
	rep := tr.Report()
	if rep.Errors != 0 || rep.Requests != 1 {
		t.Errorf("after window expiry: %d requests / %d errors, want 1/0", rep.Requests, rep.Errors)
	}
	if !rep.Healthy {
		t.Error("recovered window reported unhealthy")
	}
}
