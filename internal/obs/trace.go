package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the hierarchical tracing half of the observability layer:
// where the metric registry answers "how often and how long in aggregate",
// the tracer answers "where inside THIS solve did the time and the
// fallbacks go". Spans nest through a context.Context — StartSpan returns
// a child-aware span plus a derived context, so a solve that routes
// sparse, fails, and recovers on the dense rung leaves a
// solver -> rung -> kernel tree rather than three disconnected numbers.
//
// Completed spans land in a fixed-size lock-light ring buffer: End claims
// a slot with one atomic increment and takes only that slot's mutex, so
// concurrent solves never contend on a global lock. The ring is
// exportable as Chrome trace-event JSON (loadable in Perfetto and
// chrome://tracing) and as a compact per-solve summary.
//
// The contract matches the registry exactly: tracing is off by default,
// StartSpan short-circuits on one atomic load, and the disabled path
// performs zero allocations (BenchmarkTraceDisabledNoAlloc guards this in
// the check.sh no-alloc gate). The enabled path allocates one span per
// StartSpan — tracing is for daemons and diagnosis runs, not for the
// allocation-free kernel benchmarks.

// DefaultTraceCapacity is the span capacity of the default tracer's ring.
const DefaultTraceCapacity = 4096

// maxSpanAttrs bounds the typed attributes carried by one span; setters
// past the limit are dropped silently (the span itself still records).
const maxSpanAttrs = 8

// AttrKind discriminates the typed attribute payloads.
type AttrKind uint8

// Attribute kinds.
const (
	AttrInt AttrKind = iota + 1
	AttrFloat
	AttrStr
)

// Attr is one typed span attribute (N, states, nnz, solve path, sweep
// count, fallback rung, ...). Exactly one payload field is meaningful,
// selected by Kind.
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
}

// Value returns the attribute payload as an any, for JSON export.
func (a Attr) Value() any {
	switch a.Kind {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Float
	default:
		return a.Str
	}
}

// SpanRecord is one completed span as copied out of the ring.
type SpanRecord struct {
	ID     uint64
	Parent uint64 // zero for root spans
	Root   uint64 // ID of the outermost LOCAL enclosing span (== ID for roots)
	Trace  uint64 // per-request trace ID, shared across peer processes
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// idRng is the process-global splitmix64 state behind trace IDs and the
// per-tracer span-ID bases. Seeded from crypto/rand at init (clock
// fallback), it makes identifiers unique across peer processes with
// overwhelming probability — which is what lets spans recorded on two
// daemons stitch into one fleet trace without any coordination.
var idRng atomic.Uint64

func seedIDRng() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idRng.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idRng.Store(uint64(time.Now().UnixNano()))
	}
}

// newID draws the next nonzero identifier from the process-global
// splitmix64 stream. Lock-free and allocation-free.
func newID() uint64 {
	for {
		x := idRng.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// ringSlot is one ring cell. Each slot has its own mutex so concurrent
// End calls only contend when the ring wraps onto a slot being read.
type ringSlot struct {
	mu    sync.Mutex
	valid bool
	rec   SpanRecord
	attrs [maxSpanAttrs]Attr
	n     int
}

// Tracer records completed spans into a fixed-size ring. The zero value
// is not usable; call NewTracer. Most callers use the package-level
// default tracer via StartSpan/TraceEnable.
type Tracer struct {
	enabled atomic.Bool
	idBase  uint64 // random per-tracer offset; keeps span IDs process-unique
	ids     atomic.Uint64
	head    atomic.Uint64
	slots   []ringSlot
}

// NewTracer returns a disabled tracer with the given ring capacity. Span
// IDs are sequential above a random per-tracer base, so they stay
// monotone in claim order locally while never colliding with another
// process's spans in a stitched fleet trace.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{idBase: newID(), slots: make([]ringSlot, capacity)}
}

var defTracer atomic.Pointer[Tracer]

func init() {
	seedIDRng()
	defTracer.Store(NewTracer(DefaultTraceCapacity))
}

// TraceEnable turns span recording on for the default tracer and reports
// the previous state.
func TraceEnable() bool { return defTracer.Load().enabled.Swap(true) }

// TraceDisable turns span recording off and reports the previous state.
func TraceDisable() bool { return defTracer.Load().enabled.Swap(false) }

// SetTraceEnabled restores a state previously returned by TraceEnable or
// TraceDisable.
func SetTraceEnabled(on bool) { defTracer.Load().enabled.Store(on) }

// TraceEnabled reports whether the default tracer is recording.
func TraceEnabled() bool { return defTracer.Load().enabled.Load() }

// SetTraceCapacity replaces the default tracer's ring with a fresh one of
// the given capacity, preserving the enabled state. Meant for daemon
// startup, before spans are in flight; in-flight spans from the old ring
// are dropped.
func SetTraceCapacity(capacity int) {
	t := NewTracer(capacity)
	t.enabled.Store(TraceEnabled())
	defTracer.Store(t)
}

// TraceReset marks every recorded span in the default tracer's ring as
// invalid. Registration state (enabled, capacity) survives.
func TraceReset() { defTracer.Load().Reset() }

// Reset invalidates every recorded span.
func (t *Tracer) Reset() {
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		s.valid = false
		s.mu.Unlock()
	}
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// remoteSpanKey carries a remote parent (trace ID + span ID received in
// an X-Nvrel-Trace header) through a context, so the first local span of
// a proxied request joins the originating peer's trace instead of
// minting its own.
type remoteSpanKey struct{}

type remoteSpan struct {
	trace uint64
	span  uint64
}

// ContextWithRemoteSpan returns a context under which the next StartSpan
// joins an in-flight trace from another process: the new span adopts the
// given trace ID and records the remote span as its parent. A zero trace
// leaves ctx unchanged.
func ContextWithRemoteSpan(ctx context.Context, trace, span uint64) context.Context {
	if trace == 0 {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, remoteSpanKey{}, remoteSpan{trace: trace, span: span})
}

// SpanFromContext returns the span carried by ctx, or nil (which is a
// valid, inert span) when there is none.
func SpanFromContext(ctx context.Context) *TraceSpan {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return sp
}

// TraceSpan is an in-flight span. A nil *TraceSpan (returned whenever
// tracing is disabled) is valid and inert, so instrumentation sites never
// branch on the enabled state themselves.
type TraceSpan struct {
	tr     *Tracer
	id     uint64
	parent uint64
	root   uint64
	trace  uint64
	name   string
	start  time.Time
	attrs  [maxSpanAttrs]Attr
	n      int
}

// StartSpan opens a span named name against the default tracer, nesting
// under the span carried by ctx (if any), and returns a derived context
// carrying the new span plus the span itself. When tracing is disabled it
// returns ctx unchanged and a nil span without reading the clock or
// allocating. A nil ctx is treated as context.Background().
func StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return defTracer.Load().StartSpan(ctx, name)
}

// StartSpan opens a span against this tracer; see the package-level
// StartSpan.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sp := &TraceSpan{tr: t, id: t.idBase + t.ids.Add(1), name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanCtxKey{}).(*TraceSpan); ok && parent != nil {
		sp.parent = parent.id
		sp.root = parent.root
		sp.trace = parent.trace
	} else if rp, ok := ctx.Value(remoteSpanKey{}).(remoteSpan); ok && rp.trace != 0 {
		// A proxied request: adopt the originating peer's trace ID and hang
		// off its span, so the two rings stitch into one timeline.
		sp.root = sp.id
		sp.trace = rp.trace
		sp.parent = rp.span
	} else {
		sp.root = sp.id
		sp.trace = newID()
	}
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// ID returns the span's identifier (zero for the nil span).
func (s *TraceSpan) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Root returns the identifier of the span's outermost local ancestor.
func (s *TraceSpan) Root() uint64 {
	if s == nil {
		return 0
	}
	return s.root
}

// TraceID returns the per-request trace identifier the span belongs to
// (zero for the nil span). Spans of one request share it across every
// peer the request touched.
func (s *TraceSpan) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// FormatTraceID renders a trace (or span) ID as fixed-width hex; the
// zero ID renders as "" so disabled-tracing paths can omit the field.
func FormatTraceID(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

// EncodeTraceHeader renders a trace/span pair in the X-Nvrel-Trace wire
// form "<trace>-<span>" (zero-padded hex). Empty when trace is zero.
func EncodeTraceHeader(trace, span uint64) string {
	if trace == 0 {
		return ""
	}
	return fmt.Sprintf("%016x-%016x", trace, span)
}

// ParseTraceHeader decodes the X-Nvrel-Trace wire form produced by
// EncodeTraceHeader. ok is false for anything malformed or zero-trace,
// so a garbage header degrades to "mint a fresh trace", never an error.
func ParseTraceHeader(h string) (trace, span uint64, ok bool) {
	t, s, found := strings.Cut(strings.TrimSpace(h), "-")
	if !found {
		return 0, 0, false
	}
	trace, err := strconv.ParseUint(t, 16, 64)
	if err != nil || trace == 0 {
		return 0, 0, false
	}
	span, err = strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return trace, span, true
}

func (s *TraceSpan) attr(a Attr) *TraceSpan {
	if s == nil || s.n >= maxSpanAttrs {
		return s
	}
	s.attrs[s.n] = a
	s.n++
	return s
}

// Int attaches an integer attribute. Chainable; a no-op on the nil span.
func (s *TraceSpan) Int(key string, v int64) *TraceSpan {
	return s.attr(Attr{Key: key, Kind: AttrInt, Int: v})
}

// Float attaches a float attribute.
func (s *TraceSpan) Float(key string, v float64) *TraceSpan {
	return s.attr(Attr{Key: key, Kind: AttrFloat, Float: v})
}

// Str attaches a string attribute.
func (s *TraceSpan) Str(key, v string) *TraceSpan {
	return s.attr(Attr{Key: key, Kind: AttrStr, Str: v})
}

// Err attaches err.Error() under "error" when err is non-nil; a no-op
// otherwise, so unconditional deferred calls stay clean on success.
func (s *TraceSpan) Err(err error) *TraceSpan {
	if s == nil || err == nil {
		return s
	}
	return s.Str("error", err.Error())
}

// End closes the span and records it into the tracer's ring. Safe on the
// nil span. The span must not be used after End.
func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	t := s.tr
	if len(t.slots) == 0 {
		return
	}
	slot := &t.slots[(t.head.Add(1)-1)%uint64(len(t.slots))]
	slot.mu.Lock()
	slot.valid = true
	slot.rec = SpanRecord{ID: s.id, Parent: s.parent, Root: s.root, Trace: s.trace, Name: s.name, Start: s.start, Dur: dur}
	slot.attrs = s.attrs
	slot.n = s.n
	slot.mu.Unlock()
}

// TraceSnapshot copies every recorded span out of the default tracer's
// ring, ordered by start time (ties by ID). The snapshot is not a
// consistent cut — spans ending during the copy may or may not appear —
// which trace exports never need.
func TraceSnapshot() []SpanRecord { return defTracer.Load().Snapshot() }

// Snapshot copies every recorded span out of the ring; see TraceSnapshot.
func (t *Tracer) Snapshot() []SpanRecord {
	out := make([]SpanRecord, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.valid {
			rec := s.rec
			if s.n > 0 {
				rec.Attrs = append([]Attr(nil), s.attrs[:s.n]...)
			}
			out = append(out, rec)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CollectTrace returns the recorded spans belonging to one trace (all
// spans whose Trace ID matches), ordered by start time. Best-effort:
// spans evicted by ring wrap-around are absent.
func CollectTrace(trace uint64) []SpanRecord {
	all := TraceSnapshot()
	out := make([]SpanRecord, 0, 8)
	for _, r := range all {
		if r.Trace == trace {
			out = append(out, r)
		}
	}
	return out
}

// traceEvent is one Chrome trace-event ("X" complete event). ts and dur
// are microseconds; tid groups every span of one trace onto one track, so
// Perfetto renders a solve as one nested flame.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the JSON-object form of the trace-event format.
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents encodes the default tracer's ring as Chrome
// trace-event JSON: one complete ("X") event per span in start-time
// order, timestamps in absolute microseconds since the Unix epoch, one
// track (tid) per trace ID. Absolute timestamps and trace-keyed tracks
// are what make two peers' exports stitch: concatenating the event lists
// (see MergeTraceEvents) puts every span of one proxied request on one
// shared track, correctly interleaved. The output loads in Perfetto and
// chrome://tracing (both render relative to the earliest event).
func WriteTraceEvents(w io.Writer) error {
	return EncodeTraceEvents(w, TraceSnapshot())
}

// EncodeTraceEvents encodes an explicit span set as Chrome trace-event
// JSON; see WriteTraceEvents. Records are sorted by start time (ties by
// span ID) whatever order the caller supplies, so exports are stable and
// monotonically ordered.
func EncodeTraceEvents(w io.Writer, records []SpanRecord) error {
	sorted := append([]SpanRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].ID < sorted[j].ID
	})
	doc := traceDoc{TraceEvents: make([]traceEvent, 0, len(sorted)), DisplayTimeUnit: "ms"}
	for _, r := range sorted {
		args := make(map[string]any, len(r.Attrs)+3)
		args["span_id"] = r.ID
		if r.Parent != 0 {
			args["parent_id"] = r.Parent
		}
		if r.Trace != 0 {
			args["trace_id"] = FormatTraceID(r.Trace)
		}
		for _, a := range r.Attrs {
			args[a.Key] = a.Value()
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: r.Name,
			Cat:  "solve",
			Ph:   "X",
			TS:   float64(r.Start.UnixNano()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  r.Trace,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// MergeTraceEvents decodes several Chrome trace-event documents (as
// served by each peer's /traces endpoint) and re-encodes them as one,
// events sorted by timestamp. Because every export uses absolute
// epoch-based timestamps and trace-ID tracks, spans recorded on
// different peers for one proxied request land on one coherent timeline.
func MergeTraceEvents(w io.Writer, docs ...io.Reader) error {
	merged := traceDoc{DisplayTimeUnit: "ms"}
	for i, r := range docs {
		var doc traceDoc
		if err := json.NewDecoder(r).Decode(&doc); err != nil {
			return fmt.Errorf("obs: merge traces: document %d: %w", i, err)
		}
		merged.TraceEvents = append(merged.TraceEvents, doc.TraceEvents...)
	}
	sort.SliceStable(merged.TraceEvents, func(i, j int) bool {
		return merged.TraceEvents[i].TS < merged.TraceEvents[j].TS
	})
	return json.NewEncoder(w).Encode(merged)
}

// SpanSummary is one row of the compact per-solve summary: the span, its
// parent's name, its depth below the root, and its typed attributes.
type SpanSummary struct {
	Name            string         `json:"name"`
	Parent          string         `json:"parent,omitempty"`
	Depth           int            `json:"depth"`
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
}

// SummarizeTrace flattens one trace's spans (as returned by CollectTrace)
// into depth-annotated rows in depth-first order: each root followed by
// its children by start time. Spans whose parent was evicted from the
// ring surface as roots of their own subtree rather than vanishing.
func SummarizeTrace(records []SpanRecord) []SpanSummary {
	byParent := make(map[uint64][]SpanRecord, len(records))
	byID := make(map[uint64]SpanRecord, len(records))
	for _, r := range records {
		byID[r.ID] = r
	}
	var roots []SpanRecord
	for _, r := range records {
		if r.Parent == 0 {
			roots = append(roots, r)
			continue
		}
		if _, ok := byID[r.Parent]; !ok {
			roots = append(roots, r) // orphaned by ring eviction
			continue
		}
		byParent[r.Parent] = append(byParent[r.Parent], r)
	}
	out := make([]SpanSummary, 0, len(records))
	var walk func(r SpanRecord, parent string, depth int)
	walk = func(r SpanRecord, parent string, depth int) {
		row := SpanSummary{Name: r.Name, Parent: parent, Depth: depth, DurationSeconds: r.Dur.Seconds()}
		if len(r.Attrs) > 0 {
			row.Attrs = make(map[string]any, len(r.Attrs))
			for _, a := range r.Attrs {
				row.Attrs[a.Key] = a.Value()
			}
		}
		out = append(out, row)
		for _, c := range byParent[r.ID] {
			walk(c, r.Name, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, "", 0)
	}
	return out
}
