package obs

import "sort"

// Percentile returns the q-quantile (0 <= q <= 1) of samples by the
// nearest-rank method on a sorted copy. Unlike Timing.Quantile, which
// reads the fixed log2-ns histogram and is therefore only accurate to a
// factor of two, this is exact — the load generator uses it to report
// p50/p95/p99 from its recorded per-request latencies, where a gate like
// "hit p50 at least 10x faster than miss p50" needs real resolution.
// Returns 0 for an empty sample set. NaNs sort to the front and should be
// filtered by the caller.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	// Nearest rank: ceil(q*n) in 1-based ranks, clamped.
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
