package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured per-request record: enough to answer "what
// happened to this request" without grepping logs — how it was served
// (cache hit, miss, coalesced wait, or proxied to the owning peer),
// where, how long it took, and which trace to pull for the full span
// tree. Field names are stable JSON contract for /events consumers.
type Event struct {
	Time           time.Time `json:"time"`
	Method         string    `json:"method"`                    // "solve" | "batch"
	Key            string    `json:"params_key_hash,omitempty"` // FNV-64a of the cache key
	Cache          string    `json:"cache,omitempty"`           // hit | miss | coalesced | proxied
	ServedBy       string    `json:"served_by,omitempty"`       // peer that computed the result
	Status         int       `json:"status"`                    // HTTP status
	LatencySeconds float64   `json:"latency_seconds"`
	Path           string    `json:"solve_path,omitempty"`  // SolveDiag path (sparse/dense/...)
	Seeded         bool      `json:"seeded,omitempty"`      // warm-start provenance
	SeedSource     string    `json:"seed_source,omitempty"` //
	TraceID        string    `json:"trace_id,omitempty"`    // hex, correlates with /traces
	Items          int       `json:"items,omitempty"`       // batch size (method=batch)
	Error          string    `json:"error,omitempty"`
	Peer           string    `json:"peer,omitempty"`        // peer a failed proxy hop targeted
	ProxyError     string    `json:"proxy_error,omitempty"` // final proxy failure (status may still be 200 via degraded fallback)
	Degraded       bool      `json:"degraded,omitempty"`    // answered by a degraded-mode local solve
}

// eventRing is a bounded MPMC ring with the same slot-claim discipline
// as the trace ring: writers claim a slot with one atomic add and hold
// only that slot's mutex while copying the event in, so concurrent
// requests never contend on a shared lock. Oldest events are
// overwritten once the ring wraps.
type eventRing struct {
	enabled atomic.Bool
	head    atomic.Uint64
	// readSeq is the highest claim number any snapshot has observed.
	// Overwriting a slot whose event carries a later seq means that
	// event was never read by anyone — counted as events.dropped so a
	// ring sized below the burst rate is visible in /metrics instead of
	// silently forgetting requests.
	readSeq atomic.Uint64
	slots   []eventSlot

	sinkMu sync.Mutex
	sink   io.Writer
	senc   *json.Encoder
}

// metEventsDropped counts ring overwrites of never-snapshotted events.
var metEventsDropped = CounterFor("events.dropped")

type eventSlot struct {
	mu  sync.Mutex
	seq uint64 // 1-based claim number; 0 = never written
	ev  Event
}

// DefaultEventCapacity is the size of the package-level event ring.
const DefaultEventCapacity = 2048

var defEvents atomic.Pointer[eventRing]

func init() {
	defEvents.Store(newEventRing(DefaultEventCapacity))
}

func newEventRing(capacity int) *eventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &eventRing{slots: make([]eventSlot, capacity)}
}

// EventsEnable turns request-event recording on, returning the previous
// state.
func EventsEnable() bool { return defEvents.Load().enabled.Swap(true) }

// EventsDisable turns request-event recording off, returning the
// previous state.
func EventsDisable() bool { return defEvents.Load().enabled.Swap(false) }

// SetEventsEnabled restores a previous enabled state.
func SetEventsEnabled(on bool) { defEvents.Load().enabled.Store(on) }

// EventsEnabled reports whether request events are being recorded.
func EventsEnabled() bool { return defEvents.Load().enabled.Load() }

// SetEventCapacity replaces the ring with an empty one of the given
// capacity, preserving the enabled state and sink.
func SetEventCapacity(capacity int) {
	old := defEvents.Load()
	r := newEventRing(capacity)
	r.enabled.Store(old.enabled.Load())
	old.sinkMu.Lock()
	r.sink, r.senc = old.sink, old.senc
	old.sinkMu.Unlock()
	defEvents.Store(r)
}

// EventsReset drops all recorded events, keeping capacity, enabled
// state, and sink.
func EventsReset() { SetEventCapacity(len(defEvents.Load().slots)) }

// SetEventSink streams every recorded event to w as one JSON object per
// line, in addition to the in-memory ring. nil disables streaming.
// Writes are serialized under an internal mutex; sink errors are
// dropped (observability must not fail requests).
func SetEventSink(w io.Writer) {
	r := defEvents.Load()
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	r.sink = w
	if w == nil {
		r.senc = nil
	} else {
		r.senc = json.NewEncoder(w)
	}
}

// RecordEvent appends one request event to the ring (and the sink, if
// set). No-op while disabled; the disabled path takes no locks and
// allocates nothing.
func RecordEvent(ev Event) {
	r := defEvents.Load()
	if !r.enabled.Load() {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	seq := r.head.Add(1)
	slot := &r.slots[(seq-1)%uint64(len(r.slots))]
	slot.mu.Lock()
	if old := slot.seq; old != 0 && old > r.readSeq.Load() {
		metEventsDropped.Inc()
	}
	slot.seq = seq
	slot.ev = ev
	slot.mu.Unlock()
	r.sinkMu.Lock()
	if r.senc != nil {
		_ = r.senc.Encode(ev) // best-effort; see SetEventSink
	}
	r.sinkMu.Unlock()
}

// EventsSnapshot returns a copy of the retained events ordered by time
// (claim order breaking ties), oldest first.
func EventsSnapshot() []Event {
	r := defEvents.Load()
	type seqEvent struct {
		seq uint64
		ev  Event
	}
	got := make([]seqEvent, 0, len(r.slots))
	var maxSeq uint64
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			got = append(got, seqEvent{s.seq, s.ev})
			if s.seq > maxSeq {
				maxSeq = s.seq
			}
		}
		s.mu.Unlock()
	}
	// Mark everything up to maxSeq as read (monotonic max; losing a CAS
	// race to a later snapshot is fine).
	for {
		cur := r.readSeq.Load()
		if maxSeq <= cur || r.readSeq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
	sort.Slice(got, func(i, j int) bool {
		if !got[i].ev.Time.Equal(got[j].ev.Time) {
			return got[i].ev.Time.Before(got[j].ev.Time)
		}
		return got[i].seq < got[j].seq
	})
	out := make([]Event, len(got))
	for i, g := range got {
		out[i] = g.ev
	}
	return out
}
