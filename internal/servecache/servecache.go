// Package servecache is the serving-scale layer under `nvrel serve`: a
// parameter-keyed solve-result cache with bounded LRU capacity, optional
// TTL expiry, and singleflight coalescing, plus the consistent-hash ring
// that partitions the key space across peer daemons.
//
// The cache trades memory for solver time under the traffic shape the
// ROADMAP targets — millions of users asking identical and near-identical
// parameter questions. A hit returns a copy of the stored value without
// entering the solver at all; N identical in-flight misses cost exactly
// one solve (the first caller computes, the rest wait on its flight); and
// values are cloned on the way out, so a caller can never corrupt what a
// later caller reads.
//
// Correctness stance mirrors internal/warmstart: the cache key is the
// canonical rendering of the full normalized parameter signature, so two
// keys collide only when the solver inputs are bit-identical — a hit is
// the same float64 the solver produced for those exact parameters, never
// an approximation.
package servecache

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"nvrel/internal/obs"
)

// Cache-layer metrics, following the <package>.<area>.<event> convention.
// All updates are no-ops while obs is disabled.
var (
	metHit       = obs.CounterFor("servecache.hit")
	metMiss      = obs.CounterFor("servecache.miss")
	metEvict     = obs.CounterFor("servecache.evict")
	metExpire    = obs.CounterFor("servecache.expire")
	metCoalesced = obs.CounterFor("servecache.coalesced")
	metFill      = obs.CounterFor("servecache.fill")
)

// Status classifies how GetOrCompute satisfied a request.
type Status int

const (
	// StatusMiss means this caller was the flight leader and computed the
	// value (which is now cached for everyone after it).
	StatusMiss Status = iota
	// StatusHit means the value came straight from the cache: no solve, no
	// wait, just a clone of the stored result.
	StatusHit
	// StatusCoalesced means an identical request was already in flight and
	// this caller shared its result — N concurrent identical requests cost
	// one compute.
	StatusCoalesced
)

// String returns the status name used in responses and artifacts.
func (s Status) String() string {
	switch s {
	case StatusHit:
		return "hit"
	case StatusCoalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// flight is one in-progress compute that any number of identical requests
// may wait on. The leader closes done exactly once, after val/err are set.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type entry[V any] struct {
	key  string
	val  V
	when time.Time // fill time, for TTL expiry
}

// Cache is a bounded, TTL-expiring, singleflight-coalescing result cache,
// safe for concurrent use. The zero value is not usable; construct with
// New. A nil *Cache is inert: GetOrCompute always computes, so callers can
// thread an optional cache without nil checks.
type Cache[V any] struct {
	max   int
	ttl   time.Duration
	clone func(V) V
	now   func() time.Time

	mu      sync.Mutex
	lru     *list.List // of *entry[V]; front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight[V]
}

// New returns an empty cache holding at most max entries (max <= 0 means
// unbounded), expiring entries ttl after fill (ttl <= 0 means never), and
// cloning values through clone on every read so cached storage is never
// aliased by callers. A nil clone stores and returns values as-is — only
// safe for value types without reference fields.
func New[V any](max int, ttl time.Duration, clone func(V) V) *Cache[V] {
	if clone == nil {
		clone = func(v V) V { return v }
	}
	c := &Cache[V]{
		max:     max,
		ttl:     ttl,
		clone:   clone,
		now:     time.Now,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight[V]),
	}
	return c
}

// Get returns a clone of the cached value for key, if present and fresh.
// A stale entry is removed (counted as an expiry) and reported as a miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	v, ok := c.getLocked(key)
	c.mu.Unlock()
	if !ok {
		metMiss.Inc()
		return zero, false
	}
	metHit.Inc()
	return v, true
}

// getLocked looks up key, expiring it if stale and promoting it to the
// LRU front otherwise. Callers hold the lock and count the hit/miss.
func (c *Cache[V]) getLocked(key string) (V, bool) {
	var zero V
	el, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	e := el.Value.(*entry[V])
	if c.ttl > 0 && c.now().Sub(e.when) > c.ttl {
		c.lru.Remove(el)
		delete(c.entries, key)
		metExpire.Inc()
		return zero, false
	}
	c.lru.MoveToFront(el)
	return c.clone(e.val), true
}

// put stores val under key (replacing any previous value), evicting the
// least-recently-used entries beyond the capacity bound.
func (c *Cache[V]) put(key string, val V) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		e.val = val
		e.when = c.now()
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry[V]{key: key, val: val, when: c.now()})
	for c.max > 0 && c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*entry[V]).key)
		metEvict.Inc()
	}
}

// GetOrCompute returns the value for key, computing it with fn on a miss.
// Concurrent callers with the same key coalesce onto one flight: only the
// leader runs fn, everyone else waits and shares the leader's result (or
// its error — errors are never cached, so the next request retries). The
// returned Status says which path answered. A panicking fn is converted
// into an error for every waiter before the panic propagates to the
// leader, so coalesced requests can never hang on a dead flight.
func (c *Cache[V]) GetOrCompute(key string, fn func() (V, error)) (V, Status, error) {
	if c == nil {
		v, err := fn()
		return v, StatusMiss, err
	}
	c.mu.Lock()
	if v, ok := c.getLocked(key); ok {
		c.mu.Unlock()
		metHit.Inc()
		return v, StatusHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		metCoalesced.Inc()
		if f.err != nil {
			var zero V
			return zero, StatusCoalesced, f.err
		}
		return c.clone(f.val), StatusCoalesced, nil
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	metMiss.Inc()

	resolved := false
	defer func() {
		// A panicking fn still resolves the flight (as an error) before the
		// panic continues, so waiters never block forever.
		if !resolved {
			f.err = fmt.Errorf("servecache: compute for key %q panicked", key)
			c.mu.Lock()
			delete(c.flights, key)
			c.mu.Unlock()
			close(f.done)
		}
	}()
	val, err := fn()
	resolved = true
	f.val, f.err = val, err
	c.mu.Lock()
	if err == nil {
		c.put(key, val)
		metFill.Inc()
	}
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	if err != nil {
		var zero V
		return zero, StatusMiss, err
	}
	return c.clone(val), StatusMiss, nil
}

// Len reports the number of cached entries (diagnostics/tests).
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// setNow overrides the clock for TTL tests.
func (c *Cache[V]) setNow(now func() time.Time) { c.now = now }

// Key renders a normalized parameter signature as the canonical cache/ring
// key: the prefix (architecture or model family), then every signature
// component in exact hexadecimal float form. Two parameter points share a
// key exactly when every float64 is bit-identical after normalization, so
// a cache hit can never alias two distinguishable solver inputs. This is
// the same signature vector internal/warmstart ranks neighbors with —
// warmstart compares it by L1 distance, the cache by exact identity.
func Key(prefix string, sig []float64) string {
	var b strings.Builder
	b.Grow(len(prefix) + 1 + len(sig)*20)
	b.WriteString(prefix)
	for _, v := range sig {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	return b.String()
}
