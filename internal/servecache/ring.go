package servecache

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual nodes per peer. 64 vnodes keep the
// per-peer share of the key space within a few percent of even for the
// 2-16 peer deployments the -peers flag targets, while the whole ring
// stays a one-page sorted slice that a binary search answers in ~10 steps.
const ringReplicas = 64

// Ring is a consistent-hash partition of the cache key space across a
// fixed set of peer daemons. Every peer builds the identical ring from the
// identical -peers list (the hash is position-independent FNV-64a over the
// peer URL, so list order does not matter), which is what lets any
// instance answer "who owns this key" locally and proxy accordingly: the
// peers' caches partition the model space instead of duplicating it.
//
// A nil *Ring means "no sharding": Owner returns "" and callers serve
// everything locally.
type Ring struct {
	vnodes []vnode
	peers  []string
}

type vnode struct {
	hash uint64
	peer string
}

// NewRing builds the ring for peers (base URLs, e.g. "http://10.0.0.7:8077").
// Duplicate peers are rejected — a doubled entry would silently double that
// peer's key share.
func NewRing(peers []string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("servecache: ring needs at least one peer")
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{vnodes: make([]vnode, 0, len(peers)*ringReplicas)}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("servecache: empty peer URL in ring")
		}
		if seen[p] {
			return nil, fmt.Errorf("servecache: duplicate peer %q in ring", p)
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < ringReplicas; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// Hash ties (astronomically rare) break by peer name so every
		// instance still agrees on the owner.
		return r.vnodes[i].peer < r.vnodes[j].peer
	})
	return r, nil
}

// Owner returns the peer owning key: the first virtual node clockwise from
// the key's hash, wrapping at the top of the ring.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.vnodes) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].peer
}

// Peers returns the ring membership in insertion order.
func (r *Ring) Peers() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.peers...)
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
