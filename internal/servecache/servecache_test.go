package servecache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvrel/internal/obs"
)

func withObs(t *testing.T) {
	t.Helper()
	prev := obs.Enable()
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

func TestCacheHitReturnsClone(t *testing.T) {
	withObs(t)
	c := New(4, 0, func(v []float64) []float64 { return append([]float64(nil), v...) })
	stored := []float64{1, 2, 3}
	if _, st, err := c.GetOrCompute("k", func() ([]float64, error) { return stored, nil }); err != nil || st != StatusMiss {
		t.Fatalf("first GetOrCompute = %v, %v; want miss, nil", st, err)
	}
	got, st, err := c.GetOrCompute("k", func() ([]float64, error) {
		t.Fatal("hit path entered the compute function")
		return nil, nil
	})
	if err != nil || st != StatusHit {
		t.Fatalf("second GetOrCompute = %v, %v; want hit, nil", st, err)
	}
	got[0] = 99 // mutating the returned copy must not poison the cache
	again, ok := c.Get("k")
	if !ok || again[0] != 1 {
		t.Errorf("cache storage corrupted through a returned clone: %v", again)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	withObs(t)
	evict0 := metEvict.Value()
	c := New[int](2, 0, nil)
	c.GetOrCompute("a", func() (int, error) { return 1, nil })
	c.GetOrCompute("b", func() (int, error) { return 2, nil })
	c.Get("a") // touch a so b is the LRU victim
	c.GetOrCompute("c", func() (int, error) { return 3, nil })
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Error("LRU victim b still cached")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently-used a evicted")
	}
	if got := metEvict.Value() - evict0; got != 1 {
		t.Errorf("servecache.evict delta = %d, want 1", got)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	withObs(t)
	expire0 := metExpire.Value()
	c := New[int](4, time.Minute, nil)
	now := time.Unix(1000, 0)
	c.setNow(func() time.Time { return now })
	c.GetOrCompute("k", func() (int, error) { return 7, nil })
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Error("stale entry still served after TTL")
	}
	if got := metExpire.Value() - expire0; got != 1 {
		t.Errorf("servecache.expire delta = %d, want 1", got)
	}
	// The expired slot must be recomputable.
	if _, st, _ := c.GetOrCompute("k", func() (int, error) { return 8, nil }); st != StatusMiss {
		t.Errorf("post-expiry GetOrCompute = %v, want miss", st)
	}
}

// TestCacheSingleflightCoalesces is the core acceptance property: M
// concurrent identical requests perform exactly one compute.
func TestCacheSingleflightCoalesces(t *testing.T) {
	withObs(t)
	const m = 32
	c := New[int](4, 0, nil)
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	statuses := make([]Status, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, st, err := c.GetOrCompute("same", func() (int, error) {
				<-gate // hold the flight open until all goroutines are launched
				computes.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("GetOrCompute = %d, %v", v, err)
			}
			statuses[i] = st
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d concurrent identical requests ran %d computes, want exactly 1", m, n)
	}
	var miss, other int
	for _, st := range statuses {
		if st == StatusMiss {
			miss++
		} else {
			other++
		}
	}
	if miss != 1 || other != m-1 {
		t.Errorf("status split = %d miss / %d shared, want 1 / %d", miss, other, m-1)
	}
}

func TestCacheErrorsNotCachedAndShared(t *testing.T) {
	withObs(t)
	c := New[int](4, 0, nil)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("failed compute was cached")
	}
	if v, st, err := c.GetOrCompute("k", func() (int, error) { return 5, nil }); err != nil || v != 5 || st != StatusMiss {
		t.Errorf("retry after error = %d, %v, %v", v, st, err)
	}
}

func TestCachePanicResolvesFlight(t *testing.T) {
	withObs(t)
	c := New[int](4, 0, nil)
	started := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		c.GetOrCompute("k", func() (int, error) {
			close(started)
			time.Sleep(10 * time.Millisecond) // let the waiter coalesce
			panic("kernel wedged")
		})
	}()
	<-started
	go func() {
		_, _, err := c.GetOrCompute("k", func() (int, error) { return 1, nil })
		errs <- err
	}()
	select {
	case err := <-errs:
		// Either the waiter coalesced onto the panicked flight (error) or it
		// arrived after resolution and computed fresh (nil). Both are fine —
		// what must not happen is a hang.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on a panicked flight")
	}
}

func TestNilCacheComputes(t *testing.T) {
	var c *Cache[int]
	v, st, err := c.GetOrCompute("k", func() (int, error) { return 9, nil })
	if v != 9 || st != StatusMiss || err != nil {
		t.Errorf("nil cache GetOrCompute = %d, %v, %v", v, st, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache claims a hit")
	}
	if c.Len() != 0 {
		t.Error("nil cache Len != 0")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := Key("6v", []float64{1, 2.5, 1523})
	b := Key("6v", []float64{1, 2.5, 1523})
	if a != b {
		t.Errorf("identical signatures render different keys: %q vs %q", a, b)
	}
	if c := Key("4v", []float64{1, 2.5, 1523}); c == a {
		t.Error("prefix ignored in key")
	}
	if c := Key("6v", []float64{1, 2.5, 1523.0000000000002}); c == a {
		t.Error("one-ulp parameter change collides")
	}
	// Distinguishable floats that print identically at low precision must
	// still produce distinct keys (hex rendering is exact).
	x, y := 0.1, 0.1+1e-17
	if x != y && Key("p", []float64{x}) == Key("p", []float64{y}) {
		t.Error("distinct float64s collide")
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	// Order-independence: every instance builds the same ring from its own
	// flag ordering.
	r2, err := NewRing([]string{"http://c:3", "http://a:1", "http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1 != o2 {
			t.Fatalf("ring disagreement for %q: %q vs %q", key, o1, o2)
		}
		counts[o1]++
	}
	for _, p := range peers {
		if counts[p] < 300 {
			t.Errorf("peer %s owns only %d/3000 keys — ring badly unbalanced: %v", p, counts[p], counts)
		}
	}
}

func TestRingRejectsBadPeers(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := NewRing([]string{""}); err == nil {
		t.Error("empty peer URL accepted")
	}
}

func TestNilRingOwnsNothing(t *testing.T) {
	var r *Ring
	if r.Owner("k") != "" {
		t.Error("nil ring claims an owner")
	}
	if r.Peers() != nil {
		t.Error("nil ring has peers")
	}
}
