package percept

import (
	"errors"
	"fmt"

	"nvrel/internal/des"
	"nvrel/internal/nvp"
	"nvrel/internal/voter"
)

// HeteroConfig configures the identity-tracking simulator: unlike the main
// simulator (which tracks only population counts), it follows each module
// version individually, so versions can carry their own healthy error
// rates. It exists to validate the subset-averaging assumption of
// reliability.Heterogeneous: because the lifecycle dynamics treat all
// modules exchangeably, the time-average over which subset is healthy
// equals the uniform subset average the analytic model uses.
type HeteroConfig struct {
	// Params supplies the lifecycle timing, scheme, and compromised error
	// probability (PPrime); the scalar P and Alpha are ignored.
	Params nvp.Params
	// HealthyErr is each version's error probability while healthy
	// (length N). Errors are sampled independently per module.
	HealthyErr []float64
	// Horizon, WarmUp, RequestInterval as in Config.
	Horizon, WarmUp, RequestInterval float64
}

// Validate checks the configuration.
func (c HeteroConfig) Validate() error {
	var errs []error
	if err := c.Params.Validate(false); err != nil {
		errs = append(errs, err)
	}
	if len(c.HealthyErr) != c.Params.N {
		errs = append(errs, fmt.Errorf("percept: %d healthy error rates for %d versions", len(c.HealthyErr), c.Params.N))
	}
	for i, p := range c.HealthyErr {
		if p < 0 || p > 1 || p != p {
			errs = append(errs, fmt.Errorf("percept: version %d error rate %g outside [0,1]", i, p))
		}
	}
	if c.Horizon <= 0 || c.WarmUp < 0 || c.WarmUp >= c.Horizon {
		errs = append(errs, fmt.Errorf("percept: bad window [%g, %g]", c.WarmUp, c.Horizon))
	}
	if c.RequestInterval <= 0 {
		errs = append(errs, errors.New("percept: hetero simulation needs request sampling"))
	}
	return errors.Join(errs...)
}

// moduleHealth is a per-module lifecycle position.
type moduleHealth int

const (
	healthHealthy moduleHealth = iota + 1
	healthCompromised
	healthFailed
)

// heteroSystem simulates the no-rejuvenation architecture with per-module
// identity.
type heteroSystem struct {
	cfg   HeteroConfig
	rng   *des.RNG
	sim   des.Simulation
	state []moduleHealth
	rule  voter.CountRule

	compromiseEv, failEv, repairEv *des.Handle

	measuring bool
	tally     voter.Tally
}

// RunHeterogeneous simulates the no-rejuvenation architecture with
// per-version error rates and returns the request tally.
func RunHeterogeneous(cfg HeteroConfig, rng *des.RNG) (voter.Tally, error) {
	if err := cfg.Validate(); err != nil {
		return voter.Tally{}, err
	}
	if rng == nil {
		return voter.Tally{}, errors.New("percept: nil rng")
	}
	rule, err := voter.NewCountRule(cfg.Params.Scheme().Threshold())
	if err != nil {
		return voter.Tally{}, err
	}
	h := &heteroSystem{
		cfg:   cfg,
		rng:   rng,
		state: make([]moduleHealth, cfg.Params.N),
		rule:  rule,
	}
	for i := range h.state {
		h.state[i] = healthHealthy
	}
	h.reschedule()
	h.scheduleRequest()
	if _, err := h.sim.Schedule(cfg.WarmUp, func() { h.measuring = true }); err != nil {
		return voter.Tally{}, err
	}
	h.sim.RunUntil(cfg.Horizon)
	return h.tally, nil
}

// pick returns a uniformly random module index in the given health state,
// or -1 when none exists.
func (h *heteroSystem) pick(want moduleHealth) int {
	var candidates []int
	for i, st := range h.state {
		if st == want {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[h.rng.Intn(len(candidates))]
}

func (h *heteroSystem) count(want moduleHealth) int {
	n := 0
	for _, st := range h.state {
		if st == want {
			n++
		}
	}
	return n
}

// reschedule re-draws the single-server lifecycle timers (memoryless
// resampling, as in the main simulator).
func (h *heteroSystem) reschedule() {
	p := h.cfg.Params
	h.compromiseEv.Cancel()
	h.compromiseEv = nil
	if h.count(healthHealthy) > 0 {
		h.compromiseEv = h.must(h.rng.Exp(p.MeanTimeToCompromise), func() {
			h.move(healthHealthy, healthCompromised)
		})
	}
	h.failEv.Cancel()
	h.failEv = nil
	if h.count(healthCompromised) > 0 {
		h.failEv = h.must(h.rng.Exp(p.MeanTimeToFailure), func() {
			h.move(healthCompromised, healthFailed)
		})
	}
	h.repairEv.Cancel()
	h.repairEv = nil
	if h.count(healthFailed) > 0 {
		h.repairEv = h.must(h.rng.Exp(p.MeanTimeToRepair), func() {
			h.move(healthFailed, healthHealthy)
		})
	}
}

// move transitions a uniformly chosen module between health states.
func (h *heteroSystem) move(from, to moduleHealth) {
	if i := h.pick(from); i >= 0 {
		h.state[i] = to
	}
	h.reschedule()
}

func (h *heteroSystem) scheduleRequest() {
	h.must(h.rng.Exp(h.cfg.RequestInterval), func() {
		if h.measuring {
			var correct []bool
			for i, st := range h.state {
				switch st {
				case healthHealthy:
					correct = append(correct, !h.rng.Bernoulli(h.cfg.HealthyErr[i]))
				case healthCompromised:
					correct = append(correct, !h.rng.Bernoulli(h.cfg.Params.PPrime))
				}
			}
			h.tally.Record(h.rule.Classify(correct))
		}
		h.scheduleRequest()
	})
}

func (h *heteroSystem) must(delay float64, action func()) *des.Handle {
	hd, err := h.sim.Schedule(delay, action)
	if err != nil {
		panic(fmt.Sprintf("percept: internal scheduling error: %v", err))
	}
	return hd
}
