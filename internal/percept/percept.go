// Package percept is an executable, event-level realization of the
// paper's perception system: N ML modules that are compromised by faults
// and attacks, fail, get repaired, and (in the rejuvenation architecture)
// are proactively rejuvenated by a deterministic clock, while a voter
// classifies a stream of perception requests.
//
// The simulator serves two purposes:
//
//   - cross-validation: its time-weighted state occupancy and analytic-
//     reward estimate must agree with the DSPN solvers (packages nvp,
//     ctmc, mrgp) within confidence bounds, which exercises the entire
//     analytic pipeline end to end;
//   - request-level realism: unlike the analytic models it produces actual
//     voted outputs from a generative error model (package mlsim), so the
//     effect of the approximations baked into the paper's closed-form
//     reliability functions can be measured.
package percept

import (
	"errors"
	"fmt"
	"sort"

	"nvrel/internal/des"
	"nvrel/internal/mlsim"
	"nvrel/internal/nvp"
	"nvrel/internal/reliability"
	"nvrel/internal/voter"
)

// Config configures a simulation run.
type Config struct {
	// Params carries the model parameters (Table II) including N, F, R,
	// the timing constants, and the server semantics.
	Params nvp.Params

	// Rejuvenation enables the clocked architecture of Figures 2(b)+(c).
	Rejuvenation bool

	// Horizon is the simulated duration in seconds.
	Horizon float64

	// WarmUp discards the initial transient: requests before WarmUp are
	// not tallied and occupancy is measured from WarmUp onward.
	WarmUp float64

	// RequestInterval is the mean spacing of perception requests (Poisson
	// arrivals). Zero disables request sampling (state-occupancy only).
	RequestInterval float64

	// Classes, when at least two, switches requests to label-level voting:
	// each request draws a ground-truth label and per-module output labels
	// from the generative model, and LabelScheme decides the output. The
	// count-rule tally is still maintained from the same samples, so both
	// views stay comparable.
	Classes int

	// WrongLabels selects how erring modules choose their wrong label.
	// The zero value means mlsim.CommonWrongLabel (adversarial agreement).
	WrongLabels mlsim.WrongLabelPolicy

	// LabelScheme decides label votes. Nil means the BFT threshold
	// voter.Threshold{K: 2f+r+1}.
	LabelScheme voter.LabelScheme

	// Attacker, when non-nil, replaces the constant-rate compromise
	// process with the Markov-modulated adversary (mirrors
	// nvp.BuildNoRejuvenationAttacked / BuildWithRejuvenationAttacked).
	Attacker *nvp.AttackerParams

	// Observer, when non-nil, receives a timestamped line for every
	// lifecycle event (compromise, failure, repair, rejuvenation,
	// clock tick, attacker phase change). For tracing and debugging;
	// leave nil in measurement runs.
	Observer func(time float64, event string)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if err := c.Params.Validate(c.Rejuvenation); err != nil {
		errs = append(errs, err)
	}
	if c.Horizon <= 0 {
		errs = append(errs, fmt.Errorf("percept: horizon = %g must be positive", c.Horizon))
	}
	if c.WarmUp < 0 || c.WarmUp >= c.Horizon {
		errs = append(errs, fmt.Errorf("percept: warm-up = %g must lie in [0, horizon)", c.WarmUp))
	}
	if c.RequestInterval < 0 {
		errs = append(errs, fmt.Errorf("percept: request interval = %g must be non-negative", c.RequestInterval))
	}
	if c.Classes == 1 || c.Classes < 0 {
		errs = append(errs, fmt.Errorf("percept: classes = %d must be zero or at least two", c.Classes))
	}
	if c.WrongLabels != 0 && c.WrongLabels != mlsim.CommonWrongLabel && c.WrongLabels != mlsim.IndependentWrongLabels {
		errs = append(errs, fmt.Errorf("percept: unknown wrong-label policy %d", c.WrongLabels))
	}
	if c.Attacker != nil {
		if err := c.Attacker.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// wrongLabelPolicy resolves the configured policy default.
func (c Config) wrongLabelPolicy() mlsim.WrongLabelPolicy {
	if c.WrongLabels == 0 {
		return mlsim.CommonWrongLabel
	}
	return c.WrongLabels
}

// Result summarizes one simulation run.
type Result struct {
	// Tally counts voted request outcomes from the generative error model
	// under the paper's counting rule (A.2/A.3).
	Tally voter.Tally

	// LabelTally counts outcomes under the configured label scheme; only
	// populated when Config.Classes enables label voting.
	LabelTally voter.Tally

	// AnalyticReward is the time-weighted average of the paper's
	// reliability function over the visited states: the simulation
	// estimate of E[R_sys], directly comparable to the DSPN solvers.
	AnalyticReward float64

	// Occupancy maps module-population states (i, j, k) to the fraction
	// of post-warm-up time spent there.
	Occupancy map[[3]int]float64

	// Requests is the number of tallied perception requests.
	Requests int

	// FirstOutage is the time at which the voter first became structurally
	// silent (fewer than Threshold operational modules), measured from
	// time zero. Negative when no outage occurred within the horizon.
	FirstOutage float64
}

// System is a single-run simulator instance.
type System struct {
	cfg Config
	rng *des.RNG
	sim des.Simulation

	healthy, compromised, failed, rejuvenating int
	parked                                     int  // undispatched activation tokens (Pac)
	clockWaiting                               bool // waits-for-wave policy: clock held until the wave drains
	attackOn                                   bool // Markov-modulated attacker phase

	compromiseEv, failEv, repairEv, rejuvDoneEv, attackPhaseEv *des.Handle

	errModel *mlsim.ErrorModel
	rf       reliability.StateFn
	rule     voter.CountRule

	labelScheme voter.LabelScheme

	firstOutage float64
	maxDown     int

	occupancy  map[[3]int]float64
	lastState  [3]int
	lastObs    float64
	measuring  bool
	windowLo   float64
	tally      voter.Tally
	labelTally voter.Tally
	requests   int
}

// New prepares a simulator driven by the given random stream.
func New(cfg Config, rng *des.RNG) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("percept: nil rng")
	}
	em, err := mlsim.NewErrorModel(cfg.Params.P, cfg.Params.PPrime, cfg.Params.Alpha)
	if err != nil {
		return nil, err
	}
	rule, err := voter.NewCountRule(cfg.Params.Scheme().Threshold())
	if err != nil {
		return nil, err
	}
	rf, err := paperReliability(cfg.Params)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:       cfg,
		rng:       rng,
		errModel:  em,
		rule:      rule,
		rf:        rf,
		occupancy: make(map[[3]int]float64),
		healthy:   cfg.Params.N,
	}
	s.firstOutage = -1
	s.maxDown = cfg.Params.Scheme().MaxDown()
	if cfg.Classes >= 2 {
		s.labelScheme = cfg.LabelScheme
		if s.labelScheme == nil {
			th, err := voter.NewThreshold(cfg.Params.Scheme().Threshold())
			if err != nil {
				return nil, err
			}
			s.labelScheme = th
		}
	}
	return s, nil
}

// paperReliability selects the same reward the analytic models use: the
// verbatim appendix matrices for the two published configurations, the
// generalized dependent model otherwise (mirrors nvp.Model.PaperReliability).
func paperReliability(p nvp.Params) (reliability.StateFn, error) {
	pr := p.Reliability()
	switch {
	case p.N == 4 && p.F == 1 && p.R == 0:
		return reliability.FourVersion(pr)
	case p.N == 6 && p.F == 1 && p.R == 1:
		return reliability.SixVersion(pr)
	default:
		return reliability.Dependent(pr, p.Scheme())
	}
}

// Run executes the simulation and returns its result. A System is
// single-use: call New again for another replication.
func (s *System) Run() (*Result, error) {
	s.scheduleAttackPhaseFlip()
	s.rescheduleLifecycle()
	if s.cfg.Rejuvenation {
		if err := s.scheduleClockTick(s.cfg.Params.RejuvenationInterval); err != nil {
			return nil, err
		}
	}
	if s.cfg.RequestInterval > 0 {
		if err := s.scheduleNextRequest(); err != nil {
			return nil, err
		}
	}
	if _, err := s.sim.Schedule(s.cfg.WarmUp, s.startMeasuring); err != nil {
		return nil, err
	}
	s.sim.RunUntil(s.cfg.Horizon)
	return s.finish()
}

func (s *System) startMeasuring() {
	s.measuring = true
	s.windowLo = s.sim.Now()
	s.lastObs = s.sim.Now()
	s.lastState = s.stateTriple()
}

func (s *System) finish() (*Result, error) {
	window := s.cfg.Horizon - s.windowLo
	if !s.measuring || window <= 0 {
		return nil, errors.New("percept: measurement window is empty")
	}
	// Close the occupancy window at the horizon.
	s.occupancy[s.lastState] += s.cfg.Horizon - s.lastObs
	s.lastObs = s.cfg.Horizon

	res := &Result{
		Tally:       s.tally,
		LabelTally:  s.labelTally,
		Occupancy:   make(map[[3]int]float64, len(s.occupancy)),
		Requests:    s.requests,
		FirstOutage: s.firstOutage,
	}
	// Sum in sorted state order so results are bit-for-bit reproducible
	// across runs (map iteration order would perturb the last ulp).
	states := make([][3]int, 0, len(s.occupancy))
	for state := range s.occupancy {
		states = append(states, state)
	}
	sort.Slice(states, func(a, b int) bool {
		if states[a][0] != states[b][0] {
			return states[a][0] < states[b][0]
		}
		if states[a][1] != states[b][1] {
			return states[a][1] < states[b][1]
		}
		return states[a][2] < states[b][2]
	})
	var reward float64
	for _, state := range states {
		frac := s.occupancy[state] / window
		res.Occupancy[state] = frac
		reward += frac * s.rf(state[0], state[1], state[2])
	}
	res.AnalyticReward = reward
	return res, nil
}

// stateTriple returns (healthy, compromised, failed+rejuvenating).
func (s *System) stateTriple() [3]int {
	return [3]int{s.healthy, s.compromised, s.failed + s.rejuvenating}
}

// noteStateChange accrues occupancy up to now for the state being left
// and records the first voter outage. Call it after mutating the
// population counts.
func (s *System) noteStateChange() {
	if s.firstOutage < 0 && s.failed+s.rejuvenating > s.maxDown {
		s.firstOutage = s.sim.Now()
	}
	if !s.measuring {
		return
	}
	now := s.sim.Now()
	s.occupancy[s.lastState] += now - s.lastObs
	s.lastObs = now
	s.lastState = s.stateTriple()
}
