package percept

import (
	"errors"
	"math"

	"nvrel/internal/des"
)

// SurvivalEstimate is the simulated probability that a mission window
// passes without a single erroneous voted output.
type SurvivalEstimate struct {
	// Probability is the surviving fraction of replications.
	Probability float64
	// Lo and Hi bound the 95% confidence interval (normal approximation
	// to the binomial).
	Lo, Hi float64
	// Replications is the sample size.
	Replications int
}

// Contains reports whether p lies inside the confidence interval.
func (s SurvivalEstimate) Contains(p float64) bool { return p >= s.Lo && p <= s.Hi }

// EstimateSurvival replicates full-window runs and counts those with zero
// erroneous outputs. The configuration's WarmUp is forced to zero: the
// survival window starts at deployment.
func EstimateSurvival(cfg Config, n int, seed uint64) (*SurvivalEstimate, error) {
	if n <= 0 {
		return nil, errors.New("percept: replication count must be positive")
	}
	if cfg.RequestInterval <= 0 {
		return nil, errors.New("percept: survival estimation needs request sampling")
	}
	cfg.WarmUp = 0
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := des.NewRNG(seed)
	survived := 0
	for rep := 0; rep < n; rep++ {
		sys, err := New(cfg, master.Fork())
		if err != nil {
			return nil, err
		}
		res, err := sys.Run()
		if err != nil {
			return nil, err
		}
		if res.Tally.Erroneous == 0 {
			survived++
		}
	}
	p := float64(survived) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	return &SurvivalEstimate{
		Probability:  p,
		Lo:           math.Max(0, p-1.96*se),
		Hi:           math.Min(1, p+1.96*se),
		Replications: n,
	}, nil
}
