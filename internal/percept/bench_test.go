package percept

import (
	"testing"

	"nvrel/internal/des"
	"nvrel/internal/nvp"
)

func BenchmarkSimulationSixVersion(b *testing.B) {
	cfg := Config{
		Params:          nvp.DefaultSixVersion(),
		Rejuvenation:    true,
		Horizon:         2e5,
		WarmUp:          1e4,
		RequestInterval: 300,
	}
	master := des.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := New(cfg, master.Fork())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulationLabelVoting(b *testing.B) {
	cfg := Config{
		Params:          nvp.DefaultSixVersion(),
		Rejuvenation:    true,
		Horizon:         2e5,
		WarmUp:          1e4,
		RequestInterval: 300,
		Classes:         43,
	}
	master := des.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := New(cfg, master.Fork())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
