package percept

import (
	"testing"

	"nvrel/internal/nvp"
	"nvrel/internal/reliability"
)

func TestEstimateSurvivalValidation(t *testing.T) {
	cfg := fourVersionConfig()
	if _, err := EstimateSurvival(cfg, 0, 1); err == nil {
		t.Error("zero replications accepted")
	}
	cfg.RequestInterval = 0
	if _, err := EstimateSurvival(cfg, 4, 1); err == nil {
		t.Error("missing request stream accepted")
	}
	cfg = fourVersionConfig()
	cfg.Horizon = -1
	if _, err := EstimateSurvival(cfg, 4, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestSurvivalMatchesAnalyticFourVersion cross-validates the defective-
// generator computation end to end: the analytic survival probability
// (with the generative error model, which is exactly what the simulator
// samples) must land in the simulated binomial confidence interval.
func TestSurvivalMatchesAnalyticFourVersion(t *testing.T) {
	const (
		window   = 3 * 3600.0
		interval = 120.0
	)
	model, err := nvp.BuildNoRejuvenation(nvp.DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := reliability.Generative(model.Params.Reliability(), model.Params.Scheme())
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.SurvivalProbability(rf, 1/interval, window)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSurvival(Config{
		Params:          nvp.DefaultFourVersion(),
		Horizon:         window,
		RequestInterval: interval,
	}, 400, 31337)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(want) {
		t.Errorf("analytic survival %.4f outside simulated CI [%.4f, %.4f] (point %.4f)",
			want, est.Lo, est.Hi, est.Probability)
	}
}

func TestSurvivalMatchesAnalyticSixVersion(t *testing.T) {
	const (
		// ~20 requests at a 5.5% per-request error probability keeps the
		// survival probability in a statistically testable band (~0.3).
		window   = 2400.0
		interval = 120.0
	)
	model, err := nvp.BuildWithRejuvenation(nvp.DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	rf, err := reliability.Generative(model.Params.Reliability(), model.Params.Scheme())
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.SurvivalProbability(rf, 1/interval, window)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateSurvival(Config{
		Params:          nvp.DefaultSixVersion(),
		Rejuvenation:    true,
		Horizon:         window,
		RequestInterval: interval,
	}, 300, 271828)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(want) {
		t.Errorf("analytic survival %.4f outside simulated CI [%.4f, %.4f] (point %.4f)",
			want, est.Lo, est.Hi, est.Probability)
	}
}
