package percept

import (
	"errors"
	"fmt"

	"nvrel/internal/des"
)

// RunUntilOutage runs the dynamics until the voter first becomes
// structurally silent (more than N - threshold modules down) or until
// maxHorizon elapses. It returns the outage time, or a negative value when
// censored by the horizon. The system must be fresh (not yet Run).
func (s *System) RunUntilOutage(maxHorizon float64) (float64, error) {
	if maxHorizon <= 0 {
		return 0, fmt.Errorf("percept: max horizon %g must be positive", maxHorizon)
	}
	s.scheduleAttackPhaseFlip()
	s.rescheduleLifecycle()
	if s.cfg.Rejuvenation {
		if err := s.scheduleClockTick(s.cfg.Params.RejuvenationInterval); err != nil {
			return 0, err
		}
	}
	for s.firstOutage < 0 && s.sim.Now() < maxHorizon {
		if !s.sim.Step() {
			break
		}
	}
	return s.firstOutage, nil
}

// OutageEstimate summarizes replicated mean-time-to-outage runs.
type OutageEstimate struct {
	// MeanTime summarizes the outage times of uncensored replications.
	MeanTime des.Summary
	// Censored counts replications that reached maxHorizon without an
	// outage (their times are excluded from MeanTime, so the estimate is
	// biased low when Censored > 0).
	Censored int
	// ExponentialMLE is the censoring-aware maximum-likelihood estimate of
	// the mean time to outage under an exponential model: total observed
	// time (including censored runs) divided by the number of observed
	// outages. Zero when no outage was observed.
	ExponentialMLE float64
}

// EstimateOutage replicates RunUntilOutage. Request sampling and warm-up
// are ignored; only the lifecycle dynamics run.
func EstimateOutage(cfg Config, n int, seed uint64, maxHorizon float64) (*OutageEstimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errors.New("percept: replication count must be positive")
	}
	var (
		acc       des.Accumulator
		censored  int
		totalTime float64
	)
	master := des.NewRNG(seed)
	for rep := 0; rep < n; rep++ {
		sys, err := New(cfg, master.Fork())
		if err != nil {
			return nil, err
		}
		tOut, err := sys.RunUntilOutage(maxHorizon)
		if err != nil {
			return nil, err
		}
		if tOut < 0 {
			censored++
			totalTime += maxHorizon
			continue
		}
		totalTime += tOut
		acc.Add(tOut)
	}
	est := &OutageEstimate{MeanTime: acc.Summarize(), Censored: censored}
	if acc.N() > 0 {
		est.ExponentialMLE = totalTime / float64(acc.N())
	}
	return est, nil
}
