package percept

import "nvrel/internal/obs"

// Metric handles for the simulation layer. All updates are no-ops while obs
// is disabled (the default).
var (
	// Replications completed and their wall-clock timing distribution.
	metReplications    = obs.CounterFor("percept.replications")
	metReplicationTime = obs.TimingFor("percept.replication_time")
)
