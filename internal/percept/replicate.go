package percept

import (
	"errors"

	"nvrel/internal/des"
	"nvrel/internal/parallel"
)

// Estimate aggregates replicated simulation runs.
type Estimate struct {
	// AnalyticReward summarizes the simulation estimate of E[R_sys] under
	// the paper's reliability functions.
	AnalyticReward des.Summary

	// RequestReliability summarizes the fraction of correct voted outputs
	// under the generative error model (zero-valued when request sampling
	// is disabled).
	RequestReliability des.Summary

	// RequestErrorRate summarizes the fraction of erroneous voted outputs.
	RequestErrorRate des.Summary

	// RequestSafety summarizes 1 - error rate: the generative-model
	// counterpart of the paper's R = 1 - P(error) (safe skips count).
	RequestSafety des.Summary

	// LabelReliability and LabelSafety summarize the label-voting tallies
	// (zero-valued unless Config.Classes enables label voting).
	LabelReliability des.Summary
	LabelSafety      des.Summary
}

// Replicate runs n independent replications of the configured simulation
// and summarizes the estimates with 95% confidence intervals.
func Replicate(cfg Config, n int, seed uint64) (*Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, errors.New("percept: replication count must be positive")
	}
	// Fork every replication's RNG substream from the master serially, run
	// the replications in parallel, and accumulate in replication order:
	// the estimate is bit-identical at every worker count.
	master := des.NewRNG(seed)
	rngs := make([]*des.RNG, n)
	for rep := range rngs {
		rngs[rep] = master.Fork()
	}
	results := make([]*Result, n)
	err := parallel.ForEach(n, func(rep int) error {
		span := metReplicationTime.Start()
		sys, err := New(cfg, rngs[rep])
		if err != nil {
			return err
		}
		res, err := sys.Run()
		if err != nil {
			return err
		}
		results[rep] = res
		span.End()
		metReplications.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rewards, reliab, errRate, safety, labelRel, labelSafe des.Accumulator
	for _, res := range results {
		rewards.Add(res.AnalyticReward)
		if cfg.RequestInterval > 0 {
			reliab.Add(res.Tally.Reliability())
			errRate.Add(res.Tally.ErrorRate())
			safety.Add(res.Tally.Safety())
			if cfg.Classes >= 2 {
				labelRel.Add(res.LabelTally.Reliability())
				labelSafe.Add(res.LabelTally.Safety())
			}
		}
	}
	return &Estimate{
		AnalyticReward:     rewards.Summarize(),
		RequestReliability: reliab.Summarize(),
		RequestErrorRate:   errRate.Summarize(),
		RequestSafety:      safety.Summarize(),
		LabelReliability:   labelRel.Summarize(),
		LabelSafety:        labelSafe.Summarize(),
	}, nil
}
