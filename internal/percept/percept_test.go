package percept

import (
	"math"
	"testing"

	"nvrel/internal/des"
	"nvrel/internal/mlsim"
	"nvrel/internal/nvp"
)

func fourVersionConfig() Config {
	return Config{
		Params:          nvp.DefaultFourVersion(),
		Horizon:         2e6,
		WarmUp:          5e4,
		RequestInterval: 400,
	}
}

func sixVersionConfig() Config {
	return Config{
		Params:          nvp.DefaultSixVersion(),
		Rejuvenation:    true,
		Horizon:         2e6,
		WarmUp:          5e4,
		RequestInterval: 400,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{name: "valid", mutate: func(c *Config) {}},
		{name: "zero horizon", mutate: func(c *Config) { c.Horizon = 0 }, wantErr: true},
		{name: "warmup beyond horizon", mutate: func(c *Config) { c.WarmUp = c.Horizon }, wantErr: true},
		{name: "negative warmup", mutate: func(c *Config) { c.WarmUp = -1 }, wantErr: true},
		{name: "negative request interval", mutate: func(c *Config) { c.RequestInterval = -1 }, wantErr: true},
		{name: "bad params", mutate: func(c *Config) { c.Params.P = 5 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := fourVersionConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	// Rejuvenation architecture demands R > 0.
	cfg := fourVersionConfig()
	cfg.Rejuvenation = true
	if err := cfg.Validate(); err == nil {
		t.Error("rejuvenation with R = 0 accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := fourVersionConfig()
	if _, err := New(cfg, nil); err == nil {
		t.Error("nil rng accepted")
	}
	cfg.Horizon = -1
	if _, err := New(cfg, des.NewRNG(1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := fourVersionConfig()
	cfg.Horizon = 2e5
	run := func() *Result {
		sys, err := New(cfg, des.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AnalyticReward != b.AnalyticReward || a.Requests != b.Requests || a.Tally != b.Tally {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestOccupancySumsToOne(t *testing.T) {
	for _, cfg := range []Config{fourVersionConfig(), sixVersionConfig()} {
		cfg.Horizon = 3e5
		sys, err := New(cfg, des.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for state, frac := range res.Occupancy {
			if state[0]+state[1]+state[2] != cfg.Params.N {
				t.Errorf("occupancy state %v does not sum to N", state)
			}
			if frac < 0 {
				t.Errorf("negative occupancy %v: %g", state, frac)
			}
			total += frac
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("occupancy sums to %g", total)
		}
	}
}

// TestFourVersionMatchesAnalytic is the headline cross-validation: the
// simulator's time-weighted reward must agree with the exact CTMC solution.
func TestFourVersionMatchesAnalytic(t *testing.T) {
	model, err := nvp.BuildNoRejuvenation(nvp.DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	cfg := fourVersionConfig()
	cfg.RequestInterval = 0 // occupancy only: faster
	est, err := Replicate(cfg, 24, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if !est.AnalyticReward.Contains(want) {
		t.Errorf("analytic %v outside simulation CI %v", want, est.AnalyticReward)
	}
}

// TestSixVersionMatchesAnalytic cross-validates the MRGP solver through
// the full rejuvenation dynamics.
func TestSixVersionMatchesAnalytic(t *testing.T) {
	model, err := nvp.BuildWithRejuvenation(nvp.DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sixVersionConfig()
	cfg.RequestInterval = 0
	est, err := Replicate(cfg, 24, 2002)
	if err != nil {
		t.Fatal(err)
	}
	if !est.AnalyticReward.Contains(want) {
		t.Errorf("analytic %v outside simulation CI %v", want, est.AnalyticReward)
	}
}

// TestBatchRejuvenationMatchesAnalytic cross-validates the r=2 wave
// semantics (w5/w6 batch arcs, wave parking under guard g2) on an
// eight-version design: the simulator and the MRGP solver must agree.
func TestBatchRejuvenationMatchesAnalytic(t *testing.T) {
	params := nvp.DefaultSixVersion()
	params.N, params.F, params.R = 8, 1, 2
	model, err := nvp.BuildWithRejuvenation(params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Params:       params,
		Rejuvenation: true,
		Horizon:      2e6,
		WarmUp:       5e4,
	}
	est, err := Replicate(cfg, 24, 717)
	if err != nil {
		t.Fatal(err)
	}
	if !est.AnalyticReward.Contains(want) {
		t.Errorf("analytic %v outside simulation CI %v", want, est.AnalyticReward)
	}
}

// TestWaitsPolicyMatchesGeneralSolver cross-validates the general
// Markov-regenerative solver: under the waits-for-wave clock policy the
// simulator and mrgp.SolveGeneral must agree.
func TestWaitsPolicyMatchesGeneralSolver(t *testing.T) {
	params := nvp.DefaultSixVersion()
	params.Clock = nvp.ClockWaitsForWave
	model, err := nvp.BuildWithRejuvenation(params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Params:       params,
		Rejuvenation: true,
		Horizon:      2e6,
		WarmUp:       5e4,
	}
	est, err := Replicate(cfg, 24, 5005)
	if err != nil {
		t.Fatal(err)
	}
	if !est.AnalyticReward.Contains(want) {
		t.Errorf("analytic %v outside simulation CI %v", want, est.AnalyticReward)
	}
}

func TestRequestTallyPlausible(t *testing.T) {
	// The generative error model is a proper distribution while the
	// paper's closed forms are approximations, so request-level
	// reliability lands near—but not exactly on—the analytic value.
	cfg := sixVersionConfig()
	cfg.Horizon = 1e6
	est, err := Replicate(cfg, 8, 3003)
	if err != nil {
		t.Fatal(err)
	}
	if est.RequestReliability.Mean < 0.85 || est.RequestReliability.Mean > 1 {
		t.Errorf("request reliability = %v implausible", est.RequestReliability)
	}
	if est.RequestErrorRate.Mean < 0 || est.RequestErrorRate.Mean > 0.1 {
		t.Errorf("request error rate = %v implausible", est.RequestErrorRate)
	}
	if got := est.RequestSafety.Mean + est.RequestErrorRate.Mean; math.Abs(got-1) > 1e-9 {
		t.Errorf("safety + error rate = %g, want 1", got)
	}
	// The generative-model safety should land within a few percent of the
	// analytic R = 1 - P(error).
	model, err := nvp.BuildWithRejuvenation(nvp.DefaultSixVersion())
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := model.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.RequestSafety.Mean-analytic) > 0.05 {
		t.Errorf("generative safety %.4f far from analytic %.4f", est.RequestSafety.Mean, analytic)
	}
}

func TestRejuvenationKeepsSystemHealthier(t *testing.T) {
	// Compare a six-version system with and without its rejuvenation
	// clock: the clocked variant must spend more time fully healthy.
	healthyFraction := func(rejuvenation bool) float64 {
		p := nvp.DefaultSixVersion()
		if !rejuvenation {
			p.R = 1 // scheme stays valid; the clock is simply absent
		}
		cfg := Config{
			Params:       p,
			Rejuvenation: rejuvenation,
			Horizon:      1.5e6,
			WarmUp:       5e4,
		}
		sys, err := New(cfg, des.NewRNG(11))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		var frac float64
		for state, f := range res.Occupancy {
			if state[0] >= 5 {
				frac += f
			}
		}
		return frac
	}
	with := healthyFraction(true)
	without := healthyFraction(false)
	if with <= without {
		t.Errorf("P(>=5 healthy): with rejuvenation %g, without %g", with, without)
	}
}

func TestAtMostRRejuvenating(t *testing.T) {
	cfg := sixVersionConfig()
	cfg.Horizon = 5e5
	sys, err := New(cfg, des.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// The invariant is structural: rejuvenating+failed can exceed r only
	// through failures (failures are not gated), but rejuvenating alone
	// never exceeds r. Check through the occupancy states: k counts
	// failed + rejuvenating, so bound it by r + N (sanity) and verify no
	// state has more down modules than the module count.
	for state := range sys.occupancy {
		if state[2] < 0 || state[2] > cfg.Params.N {
			t.Errorf("impossible down count in state %v", state)
		}
	}
	if sys.rejuvenating > cfg.Params.R {
		t.Errorf("rejuvenating = %d exceeds r", sys.rejuvenating)
	}
}

func TestLabelVoting(t *testing.T) {
	cfg := sixVersionConfig()
	cfg.Horizon = 5e5
	cfg.Classes = 10
	est, err := Replicate(cfg, 4, 909)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	if est.LabelReliability.Mean <= 0 || est.LabelReliability.Mean > 1 {
		t.Errorf("label reliability = %v", est.LabelReliability)
	}
	if est.LabelSafety.Mean < est.LabelReliability.Mean {
		t.Errorf("label safety %v below reliability %v", est.LabelSafety, est.LabelReliability)
	}
	// The count tally is maintained from the same samples.
	if est.RequestReliability.Mean <= 0 {
		t.Errorf("count-rule tally missing under label voting: %v", est.RequestReliability)
	}
}

func TestLabelVotingBenignErrorsAreSafe(t *testing.T) {
	cfg := sixVersionConfig()
	cfg.Horizon = 5e5
	cfg.Classes = 43
	cfg.WrongLabels = mlsim.IndependentWrongLabels
	est, err := Replicate(cfg, 4, 910)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	// Four independently-wrong modules agreeing on one of 42 wrong labels
	// is essentially impossible.
	if est.LabelSafety.Mean < 0.999 {
		t.Errorf("benign label safety = %v, want ~1", est.LabelSafety)
	}
}

func TestConfigValidateLabelFields(t *testing.T) {
	cfg := fourVersionConfig()
	cfg.Classes = 1
	if err := cfg.Validate(); err == nil {
		t.Error("classes = 1 accepted")
	}
	cfg = fourVersionConfig()
	cfg.Classes = -3
	if err := cfg.Validate(); err == nil {
		t.Error("negative classes accepted")
	}
	cfg = fourVersionConfig()
	cfg.WrongLabels = mlsim.WrongLabelPolicy(42)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown wrong-label policy accepted")
	}
}

// TestAttackedSimulationMatchesAnalytic cross-validates the Markov-
// modulated attacker: the simulator's time-weighted reward must match the
// attacked DSPN's exact solution.
func TestAttackedSimulationMatchesAnalytic(t *testing.T) {
	attacker, err := nvp.BurstyAttacker(1.0/1523, 0.1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	model, err := nvp.BuildWithRejuvenationAttacked(nvp.DefaultSixVersion(), attacker)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.ExpectedPaperReliability()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sixVersionConfig()
	cfg.RequestInterval = 0
	cfg.Attacker = &attacker
	est, err := Replicate(cfg, 24, 606)
	if err != nil {
		t.Fatal(err)
	}
	if !est.AnalyticReward.Contains(want) {
		t.Errorf("analytic %v outside simulation CI %v", want, est.AnalyticReward)
	}
}

func TestAttackedConfigValidation(t *testing.T) {
	cfg := fourVersionConfig()
	cfg.Attacker = &nvp.AttackerParams{} // zero rates in both phases
	if err := cfg.Validate(); err == nil {
		t.Error("invalid attacker accepted")
	}
}

func TestReplicateValidation(t *testing.T) {
	cfg := fourVersionConfig()
	if _, err := Replicate(cfg, 0, 1); err == nil {
		t.Error("zero replications accepted")
	}
	cfg.Horizon = -1
	if _, err := Replicate(cfg, 2, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStateTripleTracksCounts(t *testing.T) {
	cfg := sixVersionConfig()
	sys, err := New(cfg, des.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.stateTriple(); got != [3]int{6, 0, 0} {
		t.Errorf("initial state = %v", got)
	}
}
