package percept

import (
	"testing"

	"nvrel/internal/des"
	"nvrel/internal/nvp"
)

func TestRunUntilOutageValidation(t *testing.T) {
	sys, err := New(fourVersionConfig(), des.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunUntilOutage(0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestRunUntilOutageCensoring(t *testing.T) {
	// A short horizon against a ~39-day MTTO: the run must censor.
	sys, err := New(fourVersionConfig(), des.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	tOut, err := sys.RunUntilOutage(1000)
	if err != nil {
		t.Fatal(err)
	}
	if tOut >= 0 {
		t.Errorf("outage at %g within 1000 s is wildly improbable", tOut)
	}
}

// TestEstimateOutageMatchesExact is the simulation/analysis cross-check
// for the first-passage solver.
func TestEstimateOutageMatchesExact(t *testing.T) {
	model, err := nvp.BuildNoRejuvenation(nvp.DefaultFourVersion())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := model.MeanTimeToVoterOutage()
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateOutage(fourVersionConfig(), 48, 4242, 100*exact)
	if err != nil {
		t.Fatal(err)
	}
	if est.Censored != 0 {
		t.Errorf("censored = %d with a 100x horizon", est.Censored)
	}
	if !est.MeanTime.Contains(exact) {
		t.Errorf("exact %.0f outside simulated CI %v", exact, est.MeanTime)
	}
	// The exponential MLE agrees with the plain mean when nothing is
	// censored.
	if est.ExponentialMLE <= 0 {
		t.Errorf("MLE = %g", est.ExponentialMLE)
	}
}

func TestEstimateOutageValidation(t *testing.T) {
	if _, err := EstimateOutage(fourVersionConfig(), 0, 1, 1e6); err == nil {
		t.Error("zero replications accepted")
	}
	bad := fourVersionConfig()
	bad.Horizon = -1
	if _, err := EstimateOutage(bad, 2, 1, 1e6); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestOutageRejuvenationExtendsAvailability(t *testing.T) {
	// Compare censoring at a fixed horizon: the six-version system with
	// rejuvenation must survive far more often than the four-version one.
	const horizon = 2e7
	four, err := EstimateOutage(fourVersionConfig(), 10, 99, horizon)
	if err != nil {
		t.Fatal(err)
	}
	six, err := EstimateOutage(Config{
		Params:       nvp.DefaultSixVersion(),
		Rejuvenation: true,
		Horizon:      1,
	}, 10, 99, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if six.Censored <= four.Censored {
		t.Errorf("six-version censored %d should exceed four-version %d at horizon %g",
			six.Censored, four.Censored, horizon)
	}
}
