package percept

import (
	"math"
	"testing"

	"nvrel/internal/des"
	"nvrel/internal/nvp"
	"nvrel/internal/reliability"
)

func heteroConfig() HeteroConfig {
	return HeteroConfig{
		Params:          nvp.DefaultFourVersion(),
		HealthyErr:      []float64{0.04, 0.08, 0.12, 0.08},
		Horizon:         2e6,
		WarmUp:          5e4,
		RequestInterval: 200,
	}
}

func TestHeteroConfigValidate(t *testing.T) {
	good := heteroConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*HeteroConfig)
	}{
		{name: "wrong rate count", mutate: func(c *HeteroConfig) { c.HealthyErr = c.HealthyErr[:2] }},
		{name: "rate out of range", mutate: func(c *HeteroConfig) { c.HealthyErr[0] = 2 }},
		{name: "zero horizon", mutate: func(c *HeteroConfig) { c.Horizon = 0 }},
		{name: "no requests", mutate: func(c *HeteroConfig) { c.RequestInterval = 0 }},
		{name: "bad params", mutate: func(c *HeteroConfig) { c.Params.PPrime = 3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := heteroConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := RunHeterogeneous(heteroConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// TestHeterogeneousSimulationMatchesAnalytic validates the subset-
// averaging assumption of reliability.Heterogeneous end to end: the
// identity-tracking simulator's request safety (1 - error rate) must
// match E[R] computed with the subset-averaged Poisson-binomial model
// over the same lifecycle steady state.
func TestHeterogeneousSimulationMatchesAnalytic(t *testing.T) {
	cfg := heteroConfig()

	// Analytic side: the lifecycle ignores identities, so the state
	// distribution is the standard four-version CTMC's; the reward uses
	// the heterogeneous model.
	model, err := nvp.BuildNoRejuvenation(cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := reliability.Heterogeneous(reliability.HeterogeneousParams{
		HealthyErr:     cfg.HealthyErr,
		CompromisedErr: cfg.Params.PPrime,
	}, cfg.Params.Scheme())
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.ExpectedReliability(rf)
	if err != nil {
		t.Fatal(err)
	}

	// Simulated side over replications.
	var acc des.Accumulator
	master := des.NewRNG(13579)
	for rep := 0; rep < 16; rep++ {
		tally, err := RunHeterogeneous(cfg, master.Fork())
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(tally.Safety())
	}
	sum := acc.Summarize()
	if !sum.Contains(want) {
		t.Errorf("analytic %v outside simulated CI %v", want, sum)
	}
}

func TestHeterogeneousSimulationDeterministic(t *testing.T) {
	cfg := heteroConfig()
	cfg.Horizon = 3e5
	a, err := RunHeterogeneous(cfg, des.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHeterogeneous(cfg, des.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different tallies: %+v vs %+v", a, b)
	}
}

func TestHeterogeneousEqualRatesMatchHomogeneous(t *testing.T) {
	// With equal per-version rates the heterogeneous reward reduces to the
	// Independent model, whose E[R] differs from the common-cause
	// generative model; just pin a sanity band here.
	cfg := heteroConfig()
	cfg.HealthyErr = []float64{0.08, 0.08, 0.08, 0.08}
	cfg.Horizon = 1e6
	tally, err := RunHeterogeneous(cfg, des.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if tally.Safety() < 0.7 || tally.Safety() > 0.95 {
		t.Errorf("safety = %.4f out of plausible band", tally.Safety())
	}
	if math.IsNaN(tally.Reliability()) {
		t.Error("NaN reliability")
	}
}
