package percept

import (
	"fmt"

	"nvrel/internal/des"
	"nvrel/internal/nvp"
	"nvrel/internal/voter"
)

// rescheduleLifecycle re-draws the three lifecycle timers (compromise,
// failure, repair) for the current population. Because all firing times
// are exponential, resampling on every state change is statistically
// identical to keeping the clocks running (memorylessness) and matches the
// race semantics of the underlying CTMC exactly, for both single-server
// and per-token semantics.
func (s *System) rescheduleLifecycle() {
	p := s.cfg.Params

	s.compromiseEv.Cancel()
	s.compromiseEv = nil
	if s.healthy > 0 {
		if a := s.cfg.Attacker; a != nil {
			rate := a.OffRate
			if s.attackOn {
				rate = a.OnRate
			}
			if rate > 0 {
				s.compromiseEv = s.mustSchedule(s.rng.Exp(1/rate), s.onCompromise)
			}
		} else {
			s.compromiseEv = s.mustSchedule(s.lifecycleDelay(p.MeanTimeToCompromise, s.healthy), s.onCompromise)
		}
	}

	s.failEv.Cancel()
	s.failEv = nil
	if s.compromised > 0 {
		s.failEv = s.mustSchedule(s.lifecycleDelay(p.MeanTimeToFailure, s.compromised), s.onFailure)
	}

	s.repairEv.Cancel()
	s.repairEv = nil
	if s.failed > 0 {
		s.repairEv = s.mustSchedule(s.lifecycleDelay(p.MeanTimeToRepair, s.failed), s.onRepair)
	}

	// The rejuvenation-completion rate is marking dependent
	// (1/(base x #Pmr)); resample it too.
	s.rejuvDoneEv.Cancel()
	s.rejuvDoneEv = nil
	if s.rejuvenating > 0 {
		mean := p.MeanTimeToRejuvenate * float64(s.rejuvenating)
		s.rejuvDoneEv = s.mustSchedule(s.rng.Exp(mean), s.onRejuvenationDone)
	}
}

// lifecycleDelay draws the next firing delay under the configured server
// semantics.
func (s *System) lifecycleDelay(mean float64, tokens int) float64 {
	if s.cfg.Params.Semantics == nvp.PerToken {
		return s.rng.Exp(mean / float64(tokens))
	}
	return s.rng.Exp(mean)
}

func (s *System) onCompromise() {
	if s.healthy == 0 {
		return
	}
	s.healthy--
	s.compromised++
	s.observe("module compromised")
	s.noteStateChange()
	s.afterTransition()
}

func (s *System) onFailure() {
	if s.compromised == 0 {
		return
	}
	s.compromised--
	s.failed++
	s.observe("module failed")
	s.noteStateChange()
	s.afterTransition()
}

func (s *System) onRepair() {
	if s.failed == 0 {
		return
	}
	s.failed--
	s.healthy++
	s.observe("module repaired")
	s.noteStateChange()
	s.afterTransition()
}

// onRejuvenationDone completes the whole in-flight batch (the net's Trj
// consumes min(#Pmr, r) tokens and returns them to Pmh; #Pmr never exceeds
// r).
func (s *System) onRejuvenationDone() {
	if s.rejuvenating == 0 {
		return
	}
	s.healthy += s.rejuvenating
	s.rejuvenating = 0
	s.observe("rejuvenation complete")
	s.noteStateChange()
	s.afterTransition()
}

// afterTransition dispatches any parked rejuvenation tokens whose guard
// became true, re-arms a waiting clock, and resamples the lifecycle
// timers.
func (s *System) afterTransition() {
	s.dispatchWave()
	s.maybeRestartClock()
	s.rescheduleLifecycle()
}

// scheduleAttackPhaseFlip arms the attacker's next phase change.
func (s *System) scheduleAttackPhaseFlip() {
	a := s.cfg.Attacker
	if a == nil {
		return
	}
	mean := a.MeanTimeOff
	if s.attackOn {
		mean = a.MeanTimeOn
	}
	s.attackPhaseEv = s.mustSchedule(s.rng.Exp(mean), func() {
		s.attackOn = !s.attackOn
		if s.attackOn {
			s.observe("attack campaign started")
		} else {
			s.observe("attack campaign ended")
		}
		s.scheduleAttackPhaseFlip()
		s.rescheduleLifecycle()
	})
}

// scheduleClockTick arms the deterministic rejuvenation clock (Trc).
func (s *System) scheduleClockTick(interval float64) error {
	if _, err := s.sim.Schedule(interval, func() {
		s.onClockTick(interval)
	}); err != nil {
		return fmt.Errorf("percept: scheduling clock: %w", err)
	}
	return nil
}

// onClockTick implements Tac + Trt: if no wave is in flight, dispatch r
// activation tokens (which Trj1/Trj2 consume immediately when guard g2
// holds, or park otherwise). Under the free-running policy the clock
// restarts immediately; under the waits-for-wave policy it restarts when
// the wave drains (see maybeRestartClock).
func (s *System) onClockTick(interval float64) {
	s.observe("rejuvenation clock tick")
	if s.parked == 0 && s.rejuvenating == 0 {
		s.parked = s.cfg.Params.R
		s.dispatchWave()
		s.rescheduleLifecycle()
	}
	if s.cfg.Params.Clock == nvp.ClockWaitsForWave {
		s.clockWaiting = true
		s.maybeRestartClock()
		return
	}
	if err := s.scheduleClockTick(interval); err != nil {
		// Scheduling a positive, finite interval cannot fail; a failure
		// here is a programming error.
		panic(err)
	}
}

// maybeRestartClock re-arms a waiting clock once the rejuvenation wave has
// fully drained (no parked tokens, no module rejuvenating).
func (s *System) maybeRestartClock() {
	if !s.clockWaiting || s.parked > 0 || s.rejuvenating > 0 {
		return
	}
	s.clockWaiting = false
	if err := s.scheduleClockTick(s.cfg.Params.RejuvenationInterval); err != nil {
		panic(err)
	}
}

// dispatchWave moves modules into rejuvenation while activation tokens are
// parked and the guard g2 (#failed + #rejuvenating < r) holds, choosing a
// compromised module with probability j/(i+j) (weights w1/w2: the system
// cannot distinguish healthy from compromised modules).
func (s *System) dispatchWave() {
	r := s.cfg.Params.R
	changed := false
	for s.parked > 0 && s.failed+s.rejuvenating < r && s.healthy+s.compromised > 0 {
		total := s.healthy + s.compromised
		if s.rng.Float64() < float64(s.compromised)/float64(total) {
			s.compromised--
		} else {
			s.healthy--
		}
		s.rejuvenating++
		s.parked--
		changed = true
	}
	if changed {
		s.observe("rejuvenation wave dispatched")
		s.noteStateChange()
	}
}

// scheduleNextRequest arms the Poisson perception-request stream.
func (s *System) scheduleNextRequest() error {
	if _, err := s.sim.Schedule(s.rng.Exp(s.cfg.RequestInterval), s.onRequest); err != nil {
		return fmt.Errorf("percept: scheduling request: %w", err)
	}
	return nil
}

// onRequest samples one perception request. Without label voting the
// operational modules' correctness flags feed the counting rule; with
// label voting enabled each module outputs a class label, the label scheme
// decides, and the counting rule is tallied from the same sample so both
// views stay comparable.
func (s *System) onRequest() {
	if s.measuring {
		if s.labelScheme != nil {
			truth := s.rng.Intn(s.cfg.Classes)
			labels, err := s.errModel.SampleLabels(
				s.rng, truth, s.cfg.Classes, s.healthy, s.compromised, s.cfg.wrongLabelPolicy())
			if err != nil {
				panic(fmt.Sprintf("percept: label sampling: %v", err))
			}
			s.labelTally.Record(voter.ClassifyDecision(s.labelScheme.Decide(labels), truth))
			correct := make([]bool, len(labels))
			for i, l := range labels {
				correct[i] = l == truth
			}
			s.tally.Record(s.rule.Classify(correct))
		} else {
			correct := s.errModel.SampleCorrectness(s.rng, s.healthy, s.compromised)
			s.tally.Record(s.rule.Classify(correct))
		}
		s.requests++
	}
	if err := s.scheduleNextRequest(); err != nil {
		panic(err)
	}
}

// observe emits a trace line if an observer is configured.
func (s *System) observe(event string) {
	if s.cfg.Observer != nil {
		s.cfg.Observer(s.sim.Now(), fmt.Sprintf("%s (H=%d C=%d F=%d R=%d)",
			event, s.healthy, s.compromised, s.failed, s.rejuvenating))
	}
}

// mustSchedule wraps Schedule for delays we generate ourselves.
func (s *System) mustSchedule(delay float64, action func()) *des.Handle {
	h, err := s.sim.Schedule(delay, action)
	if err != nil {
		panic(fmt.Sprintf("percept: internal scheduling error: %v", err))
	}
	return h
}
