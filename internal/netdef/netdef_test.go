package netdef

import (
	"errors"
	"math"
	"strings"
	"testing"

	"nvrel/internal/mrgp"
	"nvrel/internal/petri"
)

const mm1kSource = `
# M/M/1/3 queue
net mm1k
place queue
place free 3

transition arrive exponential rate=2 in=free out=queue
transition serve  exponential rate=3 in=queue out=free
`

func TestParseMM1KAndSolve(t *testing.T) {
	n, err := ParseString(mm1kSource)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if n.Name() != "mm1k" || n.NumPlaces() != 2 || n.NumTransitions() != 2 {
		t.Fatalf("net = %s with %d places, %d transitions", n.Name(), n.NumPlaces(), n.NumTransitions())
	}
	g, err := petri.Explore(n, petri.ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	pi, err := g.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// rho = 2/3; pi(queue=q) ~ rho^q.
	rho := 2.0 / 3
	norm := 1 + rho + rho*rho + rho*rho*rho
	for s, m := range g.Markings {
		want := math.Pow(rho, float64(m[0])) / norm
		if math.Abs(pi[s]-want) > 1e-12 {
			t.Errorf("pi(queue=%d) = %g, want %g", m[0], pi[s], want)
		}
	}
}

func TestParseRejuvenationToy(t *testing.T) {
	// The rejuvenation toy from the mrgp tests, expressed in text,
	// including a guard and an immediate priority.
	src := `
net toy
place fresh 1
place deg
place clock 1
place restore

transition degrade exponential rate=0.5 in=fresh out=deg
transition tick deterministic delay=2 in=clock out=restore
transition restoreDeg immediate weight=1 priority=2 in=restore,deg out=fresh,clock
transition restoreFresh immediate weight=1 priority=1 guard="#deg == 0" in=restore out=clock
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	g, err := petri.Explore(n, petri.ExploreOptions{})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	sol, err := mrgp.Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// P(fresh) = (1 - e^{-lambda tau}) / (lambda tau) with lambda=0.5,
	// tau=2.
	var pFresh float64
	for s, m := range g.Markings {
		if m[0] == 1 {
			pFresh += sol.Pi[s]
		}
	}
	want := (1 - math.Exp(-1)) / 1
	if math.Abs(pFresh-want) > 1e-9 {
		t.Errorf("P(fresh) = %.9f, want %.9f", pFresh, want)
	}
}

func TestParseArcWeights(t *testing.T) {
	src := `
net weighted
place half 4
place whole

transition combine exponential rate=1 in=half*2 out=whole
transition split exponential rate=1 in=whole out=half*2
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	invs, err := n.PInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 || invs[0][0] != 1 || invs[0][1] != 2 {
		t.Errorf("invariants = %v, want [[1 2]]", invs)
	}
}

func TestParseInhibitor(t *testing.T) {
	src := `
net inh
place p 1
place blocker 2

transition t exponential rate=1 in=p out=p inhibit=blocker*3
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	tr, ok := n.TransitionByName("t")
	if !ok {
		t.Fatal("transition missing")
	}
	if !n.Enabled(tr, n.InitialMarking()) {
		t.Error("2 blocker tokens < weight 3: should be enabled")
	}
	m := n.InitialMarking()
	m[1] = 3
	if n.Enabled(tr, m) {
		t.Error("3 blocker tokens: should be inhibited")
	}
}

func TestGuardExpressions(t *testing.T) {
	places := map[string]petri.PlaceRef{"a": 0, "b": 1, "c": 2}
	tests := []struct {
		give    string
		marking petri.Marking
		want    bool
	}{
		{give: "#a > 0", marking: petri.Marking{1, 0, 0}, want: true},
		{give: "#a > 0", marking: petri.Marking{0, 5, 0}, want: false},
		{give: "#a + #b == 3", marking: petri.Marking{1, 2, 9}, want: true},
		{give: "#a + #b != 3", marking: petri.Marking{1, 2, 9}, want: false},
		{give: "#a <= 1 && #b >= 2", marking: petri.Marking{1, 2, 0}, want: true},
		{give: "#a <= 1 && #b >= 2", marking: petri.Marking{2, 2, 0}, want: false},
		{give: "#a == 9 || #c < 1", marking: petri.Marking{0, 0, 0}, want: true},
		{give: "#a == 9 || #c < 1", marking: petri.Marking{0, 0, 2}, want: false},
		{give: "#a>0&&#b>0", marking: petri.Marking{1, 1, 0}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			g, err := parseGuard(tt.give, places)
			if err != nil {
				t.Fatalf("parseGuard: %v", err)
			}
			if got := g(tt.marking); got != tt.want {
				t.Errorf("guard(%v) = %v, want %v", tt.marking, got, tt.want)
			}
		})
	}
}

func TestGuardErrors(t *testing.T) {
	places := map[string]petri.PlaceRef{"a": 0}
	for _, src := range []string{
		"", "#a", "#a >", "#a > x", "a > 0", "#zzz > 0", "#a > 0 extra",
		"#a ** 0", "#a + > 0",
	} {
		if _, err := parseGuard(src, places); err == nil {
			t.Errorf("guard %q: expected error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{name: "missing header", src: "place p 1\ntransition t exponential rate=1 in=p"},
		{name: "duplicate header", src: "net a\nnet b"},
		{name: "place before header", src: "place p 1"},
		{name: "bad tokens", src: "net a\nplace p x"},
		{name: "place arity", src: "net a\nplace p 1 2 3"},
		{name: "unknown directive", src: "net a\nfrobnicate"},
		{name: "unknown kind", src: "net a\nplace p 1\ntransition t gaussian rate=1 in=p"},
		{name: "missing equals", src: "net a\nplace p 1\ntransition t exponential rate 1 in=p"},
		{name: "bad rate", src: "net a\nplace p 1\ntransition t exponential rate=abc in=p"},
		{name: "unknown place in arc", src: "net a\nplace p 1\ntransition t exponential rate=1 in=q"},
		{name: "bad arc weight", src: "net a\nplace p 1\ntransition t exponential rate=1 in=p*x"},
		{name: "empty arcs", src: "net a\nplace p 1\ntransition t exponential rate=1 in="},
		{name: "unknown key", src: "net a\nplace p 1\ntransition t exponential rate=1 in=p color=red"},
		{name: "bad priority", src: "net a\nplace p 1\ntransition t immediate weight=1 priority=x in=p"},
		{name: "bad guard", src: "net a\nplace p 1\ntransition t exponential rate=1 in=p guard=\"#q > 0\""},
		{name: "transition arity", src: "net a\nplace p 1\ntransition t"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.src); !errors.Is(err, ErrSyntax) {
				t.Errorf("err = %v, want ErrSyntax", err)
			}
		})
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
# leading comment

net commented # trailing comment
place p 1  # another
transition t exponential rate=1 in=p out=p
`
	n, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if n.Name() != "commented" {
		t.Errorf("name = %q", n.Name())
	}
}

func TestTokenizeQuotes(t *testing.T) {
	got := tokenize(`transition t immediate weight=1 guard="#a > 0 && #b == 2" in=p`)
	want := []string{"transition", "t", "immediate", "weight=1", `guard=#a > 0 && #b == 2`, "in=p"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseFromReaderError(t *testing.T) {
	if _, err := Parse(strings.NewReader("net x\n")); err == nil {
		t.Error("net with no places should fail at Build")
	}
}

func TestParseReward(t *testing.T) {
	places := map[string]petri.PlaceRef{"a": 0, "b": 1}
	tests := []struct {
		give    string
		marking petri.Marking
		want    float64
	}{
		{give: "#a", marking: petri.Marking{3, 5}, want: 3},
		{give: "#a + #b", marking: petri.Marking{3, 5}, want: 8},
		{give: "2*#a + #b", marking: petri.Marking{3, 5}, want: 11},
		{give: "0.5*#b", marking: petri.Marking{0, 4}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			rf, err := ParseReward(tt.give, places)
			if err != nil {
				t.Fatalf("ParseReward: %v", err)
			}
			if got := rf(tt.marking); got != tt.want {
				t.Errorf("reward(%v) = %g, want %g", tt.marking, got, tt.want)
			}
		})
	}
}

func TestParseRewardErrors(t *testing.T) {
	places := map[string]petri.PlaceRef{"a": 0}
	for _, src := range []string{
		"", "a", "#zzz", "2*", "2 #a", "#a +", "#a - #a", "2*2",
	} {
		if _, err := ParseReward(src, places); err == nil {
			t.Errorf("reward %q: expected error", src)
		}
	}
}
