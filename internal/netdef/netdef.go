// Package netdef parses a small line-oriented text format for defining
// DSPNs, so models can be solved from the command line without writing
// Go. The format covers constant rates, delays, weights, inhibitor arcs,
// priorities, and guard expressions over place token counts:
//
//	# an M/M/1/3 queue with a deterministic inspector
//	net mm1k
//	place free 3
//	place queue
//	place clock 1
//
//	transition arrive exponential rate=2 in=free out=queue
//	transition serve  exponential rate=3 in=queue out=free
//	transition flush  immediate weight=1 priority=2 in=queue*3 out=free*3
//	transition tick   deterministic delay=5 in=clock out=clock guard="#queue + #free >= 1"
//
// Arc lists are comma separated (`in=a,b*2`); `inhibit=` declares
// inhibitor arcs. Guard expressions combine comparisons of token-count
// sums with && and ||:
//
//	guard="#Pac + #Pmr == 0 && #Ptr >= 1"
//
// Marking-dependent rates and arc weights (the w1/w2/w5/w6 constructs of
// the paper's rejuvenation net) are not expressible in text; build those
// models through the Go API (package nvp).
package netdef

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nvrel/internal/petri"
)

// ErrSyntax wraps all parse failures.
var ErrSyntax = errors.New("netdef: syntax error")

// Parse reads a net definition.
func Parse(r io.Reader) (*petri.Net, error) {
	p := &parser{places: make(map[string]petri.PlaceRef)}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := stripComment(scanner.Text())
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if p.builder == nil {
		return nil, fmt.Errorf("%w: missing 'net <name>' header", ErrSyntax)
	}
	return p.builder.Build()
}

// ParseString reads a net definition from a string.
func ParseString(s string) (*petri.Net, error) {
	return Parse(strings.NewReader(s))
}

type parser struct {
	builder *petri.Builder
	places  map[string]petri.PlaceRef
}

func (p *parser) line(line string) error {
	fields := tokenize(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "net":
		if p.builder != nil {
			return errors.New("duplicate 'net' header")
		}
		if len(fields) != 2 {
			return errors.New("want: net <name>")
		}
		p.builder = petri.NewBuilder(fields[1])
		return nil
	case "place":
		return p.place(fields[1:])
	case "transition":
		return p.transition(fields[1:])
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
}

func (p *parser) place(args []string) error {
	if p.builder == nil {
		return errors.New("'place' before 'net' header")
	}
	switch len(args) {
	case 1:
		p.places[args[0]] = p.builder.AddPlace(args[0], 0)
		return nil
	case 2:
		tokens, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("initial marking %q: %v", args[1], err)
		}
		p.places[args[0]] = p.builder.AddPlace(args[0], tokens)
		return nil
	default:
		return errors.New("want: place <name> [initial-tokens]")
	}
}

func (p *parser) transition(args []string) error {
	if p.builder == nil {
		return errors.New("'transition' before 'net' header")
	}
	if len(args) < 2 {
		return errors.New("want: transition <name> <kind> key=value...")
	}
	spec := petri.Spec{Name: args[0]}
	switch args[1] {
	case "exponential":
		spec.Kind = petri.Exponential
	case "immediate":
		spec.Kind = petri.Immediate
	case "deterministic":
		spec.Kind = petri.Deterministic
	default:
		return fmt.Errorf("unknown transition kind %q", args[1])
	}
	for _, kv := range args[2:] {
		key, value, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("want key=value, got %q", kv)
		}
		if err := p.transitionField(&spec, key, value); err != nil {
			return fmt.Errorf("%s: %v", key, err)
		}
	}
	p.builder.AddTransition(spec)
	return nil
}

func (p *parser) transitionField(spec *petri.Spec, key, value string) error {
	switch key {
	case "rate", "weight":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		spec.Rate = v
	case "delay":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		spec.Delay = v
	case "priority":
		v, err := strconv.Atoi(value)
		if err != nil {
			return err
		}
		spec.Priority = v
	case "in":
		arcs, err := p.arcs(value)
		if err != nil {
			return err
		}
		spec.Inputs = arcs
	case "out":
		arcs, err := p.arcs(value)
		if err != nil {
			return err
		}
		spec.Outputs = arcs
	case "inhibit":
		arcs, err := p.arcs(value)
		if err != nil {
			return err
		}
		spec.Inhibitors = arcs
	case "guard":
		g, err := parseGuard(value, p.places)
		if err != nil {
			return err
		}
		spec.Guard = g
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// arcs parses "a,b*2,c".
func (p *parser) arcs(list string) ([]petri.Arc, error) {
	var out []petri.Arc
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(item, "*")
		ref, ok := p.places[name]
		if !ok {
			return nil, fmt.Errorf("unknown place %q", name)
		}
		arc := petri.Arc{Place: ref}
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil {
				return nil, fmt.Errorf("arc weight %q: %v", weightStr, err)
			}
			arc.Weight = w
		}
		out = append(out, arc)
	}
	if len(out) == 0 {
		return nil, errors.New("empty arc list")
	}
	return out, nil
}

// stripComment removes a trailing '#' comment, but not inside quoted
// segments: guard expressions reference token counts as #place.
func stripComment(line string) string {
	inQuotes := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuotes = !inQuotes
		case '#':
			if !inQuotes {
				return line[:i]
			}
		}
	}
	return line
}

// tokenize splits on spaces but keeps quoted segments (for guard="...")
// together, stripping the quotes.
func tokenize(line string) []string {
	var (
		out      []string
		cur      strings.Builder
		inQuotes bool
	)
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '"':
			inQuotes = !inQuotes
		case r == ' ' || r == '\t':
			if inQuotes {
				cur.WriteRune(r)
			} else {
				flush()
			}
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
