package netdef

import (
	"fmt"
	"strconv"
	"strings"

	"nvrel/internal/petri"
)

// parseGuard compiles a guard expression over place token counts:
//
//	expr   := and ('||' and)*
//	and    := cmp ('&&' cmp)*
//	cmp    := sum op integer
//	sum    := '#'place ('+' '#'place)*
//	op     := '<' | '<=' | '==' | '!=' | '>=' | '>'
func parseGuard(src string, places map[string]petri.PlaceRef) (petri.GuardFn, error) {
	p := &guardParser{tokens: lexGuard(src), places: places}
	fn, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("guard %q: %w", src, err)
	}
	if !p.done() {
		return nil, fmt.Errorf("guard %q: trailing input at %q", src, p.peek())
	}
	return fn, nil
}

type guardParser struct {
	tokens []string
	pos    int
	places map[string]petri.PlaceRef
}

func (p *guardParser) done() bool { return p.pos >= len(p.tokens) }

func (p *guardParser) peek() string {
	if p.done() {
		return "<end>"
	}
	return p.tokens[p.pos]
}

func (p *guardParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *guardParser) parseOr() (petri.GuardFn, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for !p.done() && p.peek() == "||" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(m petri.Marking) bool { return l(m) || right(m) }
	}
	return left, nil
}

func (p *guardParser) parseAnd() (petri.GuardFn, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for !p.done() && p.peek() == "&&" {
		p.next()
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(m petri.Marking) bool { return l(m) && right(m) }
	}
	return left, nil
}

func (p *guardParser) parseCmp() (petri.GuardFn, error) {
	refs, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	op := p.next()
	switch op {
	case "<", "<=", "==", "!=", ">=", ">":
	default:
		return nil, fmt.Errorf("want comparison operator, got %q", op)
	}
	lit := p.next()
	bound, err := strconv.Atoi(lit)
	if err != nil {
		return nil, fmt.Errorf("want integer bound, got %q", lit)
	}
	return func(m petri.Marking) bool {
		var sum int
		for _, r := range refs {
			sum += m[r]
		}
		switch op {
		case "<":
			return sum < bound
		case "<=":
			return sum <= bound
		case "==":
			return sum == bound
		case "!=":
			return sum != bound
		case ">=":
			return sum >= bound
		default:
			return sum > bound
		}
	}, nil
}

func (p *guardParser) parseSum() ([]petri.PlaceRef, error) {
	var refs []petri.PlaceRef
	for {
		tok := p.next()
		if !strings.HasPrefix(tok, "#") {
			return nil, fmt.Errorf("want #place, got %q", tok)
		}
		name := tok[1:]
		ref, ok := p.places[name]
		if !ok {
			return nil, fmt.Errorf("unknown place %q", name)
		}
		refs = append(refs, ref)
		if p.done() || p.peek() != "+" {
			return refs, nil
		}
		p.next()
	}
}

// ParseReward compiles a linear reward expression over place token
// counts, e.g. "#fresh" or "2*#half + #whole": the reward of a marking is
// the weighted token sum.
func ParseReward(src string, places map[string]petri.PlaceRef) (petri.RewardFn, error) {
	type term struct {
		weight float64
		place  petri.PlaceRef
	}
	var terms []term
	p := &guardParser{tokens: lexGuard(src), places: places}
	for {
		weight := 1.0
		tok := p.next()
		// Optional "<number>*" prefix.
		if !strings.HasPrefix(tok, "#") {
			w, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("reward %q: want coefficient or #place, got %q", src, tok)
			}
			if star := p.next(); star != "*" {
				return nil, fmt.Errorf("reward %q: want '*' after coefficient, got %q", src, star)
			}
			weight = w
			tok = p.next()
		}
		if !strings.HasPrefix(tok, "#") {
			return nil, fmt.Errorf("reward %q: want #place, got %q", src, tok)
		}
		ref, ok := places[tok[1:]]
		if !ok {
			return nil, fmt.Errorf("reward %q: unknown place %q", src, tok[1:])
		}
		terms = append(terms, term{weight: weight, place: ref})
		if p.done() {
			break
		}
		if plus := p.next(); plus != "+" {
			return nil, fmt.Errorf("reward %q: want '+', got %q", src, plus)
		}
	}
	return func(m petri.Marking) float64 {
		var s float64
		for _, t := range terms {
			s += t.weight * float64(m[t.place])
		}
		return s
	}, nil
}

// lexGuard splits a guard expression into tokens.
func lexGuard(src string) []string {
	var (
		out []string
		cur strings.Builder
	)
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			flush()
			i++
		case c == '+' || c == '*':
			flush()
			out = append(out, string(c))
			i++
		case c == '&' || c == '|':
			flush()
			if i+1 < len(src) && src[i+1] == c {
				out = append(out, string(c)+string(c))
				i += 2
			} else {
				out = append(out, string(c))
				i++
			}
		case c == '<' || c == '>' || c == '=' || c == '!':
			flush()
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, string(c)+"=")
				i += 2
			} else {
				out = append(out, string(c))
				i++
			}
		default:
			cur.WriteByte(c)
			i++
		}
	}
	flush()
	return out
}
