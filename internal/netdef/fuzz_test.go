package netdef

import (
	"strings"
	"testing"

	"nvrel/internal/petri"
)

// FuzzParse asserts the parser never panics and that accepted inputs
// produce structurally valid nets.
func FuzzParse(f *testing.F) {
	f.Add(mm1kSource)
	f.Add("net x\nplace p 1\ntransition t exponential rate=1 in=p out=p\n")
	f.Add("net x\nplace p 1\ntransition t immediate weight=2 priority=1 guard=\"#p > 0\" in=p\n")
	f.Add("net x\nplace p 1\ntransition t deterministic delay=3 in=p*2 out=p*2 inhibit=p*9\n")
	f.Add("net \nplace\ntransition")
	f.Add("# only a comment")
	f.Add("net x\nplace p -1")
	f.Add(`net x
place a 2
place b
transition t exponential rate=0.5 in=a,b*3 out=b guard="#a + #b <= 4 || #b == 0"
`)
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ParseString(src)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if n.NumPlaces() == 0 || n.NumTransitions() == 0 {
			t.Errorf("accepted net with %d places, %d transitions", n.NumPlaces(), n.NumTransitions())
		}
		// A successfully parsed net must at least format its initial
		// marking and expose a well-formed incidence check path.
		_ = n.FormatMarking(n.InitialMarking())
	})
}

// FuzzGuard asserts the guard compiler never panics and compiled guards
// never index out of range on a marking of the declared size.
func FuzzGuard(f *testing.F) {
	f.Add("#a > 0")
	f.Add("#a + #b == 3 && #c < 2")
	f.Add("#a >= 1 || #b != 0")
	f.Add("#a<= 2&&#b>0")
	f.Add("garbage ** #")
	f.Add("#a + + #b > 1")
	places := map[string]petri.PlaceRef{"a": 0, "b": 1, "c": 2}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := parseGuard(src, places)
		if err != nil {
			return
		}
		// Compiled guards must evaluate without panicking.
		_ = g(petri.Marking{1, 2, 3})
		_ = g(petri.Marking{0, 0, 0})
	})
}

// FuzzReward mirrors FuzzGuard for reward expressions.
func FuzzReward(f *testing.F) {
	f.Add("#a")
	f.Add("2*#a + #b")
	f.Add("0.25*#b + 3*#a")
	f.Add("#a *")
	f.Add("* #a")
	places := map[string]petri.PlaceRef{"a": 0, "b": 1}
	f.Fuzz(func(t *testing.T, src string) {
		rf, err := ParseReward(src, places)
		if err != nil {
			return
		}
		if v := rf(petri.Marking{2, 3}); v != v {
			t.Errorf("reward %q produced NaN", src)
		}
	})
}

// FuzzStripComment asserts comment stripping is panic-free and never
// grows the line.
func FuzzStripComment(f *testing.F) {
	f.Add(`place p 1 # comment`)
	f.Add(`transition t immediate guard="#a > 0" # tail`)
	f.Add(`unterminated "quote # inside`)
	f.Fuzz(func(t *testing.T, line string) {
		out := stripComment(line)
		if len(out) > len(line) {
			t.Errorf("stripComment grew the line: %q -> %q", line, out)
		}
		if !strings.HasPrefix(line, out) {
			t.Errorf("stripComment is not a prefix: %q -> %q", line, out)
		}
	})
}
