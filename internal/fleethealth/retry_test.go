package fleethealth

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestRetryFirstAttemptSucceeds(t *testing.T) {
	var slept []time.Duration
	cfg := RetryConfig{
		Attempts: 5,
		Sleep:    func(_ context.Context, d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := Retry(context.Background(), cfg, func(attempt int) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 || len(slept) != 0 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want nil/1/0", err, calls, len(slept))
	}
}

func TestRetryExhaustsAttemptsAndReturnsLastError(t *testing.T) {
	var slept []time.Duration
	cfg := RetryConfig{
		Attempts:  3,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  time.Second,
		Jitter:    func() float64 { return 1.0 }, // deterministic: full window
		Sleep:     func(_ context.Context, d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := Retry(context.Background(), cfg, func(attempt int) error {
		if attempt != calls {
			t.Errorf("attempt index %d, want %d", attempt, calls)
		}
		calls++
		return fmt.Errorf("attempt %d failed", attempt)
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil || err.Error() != "attempt 2 failed" {
		t.Fatalf("err = %v, want the last attempt's error", err)
	}
	// Jitter pinned to 1.0: sleeps are exactly the exponential windows.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRetryBackoffCapsAtMaxDelay(t *testing.T) {
	cfg := RetryConfig{
		Attempts:  8,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  300 * time.Millisecond,
		Jitter:    func() float64 { return 1.0 },
	}
	for attempt, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond,
	} {
		if got := cfg.Backoff(attempt); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
	// Deep attempts must not overflow the shift into a negative window.
	if got := cfg.Backoff(62); got != 300*time.Millisecond {
		t.Errorf("Backoff(62) = %v, want the cap", got)
	}
}

func TestRetryFullJitterBounds(t *testing.T) {
	cfg := RetryConfig{
		BaseDelay: 40 * time.Millisecond,
		MaxDelay:  time.Second,
		Jitter:    func() float64 { return 0.5 },
	}
	if got, want := cfg.Backoff(0), 20*time.Millisecond; got != want {
		t.Errorf("Backoff(0) at jitter 0.5 = %v, want %v", got, want)
	}
	cfg.Jitter = func() float64 { return 0 }
	if got := cfg.Backoff(0); got != 0 {
		t.Errorf("Backoff(0) at jitter 0 = %v, want 0", got)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := RetryConfig{
		Attempts: 10,
		Sleep:    func(_ context.Context, _ time.Duration) {},
	}
	calls := 0
	err := Retry(ctx, cfg, func(attempt int) error {
		calls++
		cancel() // the loop must notice before the next attempt
		return errProbe
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancellation between attempts)", calls)
	}
	if !errors.Is(err, errProbe) {
		t.Fatalf("err = %v, want the attempt's own error to win over ctx.Err()", err)
	}
}

func TestRetryCanceledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryConfig{}, func(int) error {
		t.Fatal("fn must not run under a dead context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
