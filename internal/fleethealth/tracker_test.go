package fleethealth

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestTrackerSnapshotAndHopEvidence(t *testing.T) {
	withObs(t)
	clock := newFakeClock()
	tr := NewTracker(Config{
		Breaker:        BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute},
		UnhealthyAfter: 2,
		Now:            clock.Now,
	}, []string{"http://b", "http://a", "http://a"}) // dup collapses

	peers := tr.Peers()
	if len(peers) != 2 || peers[0] != "http://a" || peers[1] != "http://b" {
		t.Fatalf("Peers() = %v, want sorted unique [http://a http://b]", peers)
	}

	// Optimistic start: never-probed peers are healthy, breakers closed.
	for _, ph := range tr.Snapshot() {
		if !ph.Healthy || ph.Breaker != "closed" || ph.Probes != 0 {
			t.Fatalf("initial snapshot %+v, want healthy/closed/0 probes", ph)
		}
	}

	// Hop failures open the breaker but do not touch probe health.
	tr.ReportHop("http://a", errProbe)
	tr.ReportHop("http://a", errProbe)
	snap := tr.Snapshot()
	if snap[0].Breaker != "open" {
		t.Errorf("breaker after 2 hop failures = %s, want open", snap[0].Breaker)
	}
	if !snap[0].Healthy {
		t.Errorf("hop failures flipped probe health; the prober owns that flag")
	}
	if snap[0].LastError == "" {
		t.Errorf("snapshot lost the hop error")
	}
	if b := tr.Breaker("http://a"); b == nil || b.Allow() {
		t.Errorf("open breaker reachable through Breaker() must reject")
	}
	if tr.Breaker("http://nope") != nil {
		t.Errorf("untracked peer must have a nil breaker")
	}

	// A successful hop closes it again.
	tr.ReportHop("http://a", nil)
	if got := tr.Snapshot()[0].Breaker; got != "closed" {
		t.Errorf("breaker after hop success = %s, want closed", got)
	}
}

func TestTrackerProbeHealthThreshold(t *testing.T) {
	withObs(t)
	clock := newFakeClock()
	tr := NewTracker(Config{
		Breaker:        BreakerConfig{FailureThreshold: 5, Cooldown: time.Minute},
		UnhealthyAfter: 2,
		Now:            clock.Now,
	}, []string{"http://a"})

	tr.ReportProbe("http://a", errProbe)
	if ph := tr.Snapshot()[0]; !ph.Healthy || ph.ConsecutiveFailures != 1 {
		t.Fatalf("after 1 probe failure: %+v, want still healthy with run=1", ph)
	}
	tr.ReportProbe("http://a", errProbe)
	ph := tr.Snapshot()[0]
	if ph.Healthy || ph.ConsecutiveFailures != 2 || ph.ProbeFailures != 2 || ph.Probes != 2 {
		t.Fatalf("after 2 probe failures: %+v, want unhealthy run=2 fails=2 probes=2", ph)
	}
	if got := metPeersUnhealthy.Value(); got != 1 {
		t.Errorf("fleet.peers.unhealthy gauge = %v, want 1", got)
	}

	tr.ReportProbe("http://a", nil)
	ph = tr.Snapshot()[0]
	if !ph.Healthy || ph.ConsecutiveFailures != 0 || ph.LastError != "" {
		t.Fatalf("after recovery probe: %+v, want healthy, run reset, error cleared", ph)
	}
	if got := metPeersUnhealthy.Value(); got != 0 {
		t.Errorf("fleet.peers.unhealthy gauge after recovery = %v, want 0", got)
	}
	if ph.LastProbe.IsZero() {
		t.Errorf("snapshot missing last-probe time")
	}
}

// ProbeAll against real listeners: a healthy peer, a 503 peer, and a
// dead one — one synchronous sweep classifies all three.
func TestTrackerProbeAll(t *testing.T) {
	withObs(t)
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		w.Write([]byte("ready\n"))
	}))
	defer healthy.Close()
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer draining.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused

	clock := newFakeClock()
	tr := NewTracker(Config{
		Breaker:        BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute},
		UnhealthyAfter: 1,
		ProbeTimeout:   2 * time.Second,
		Now:            clock.Now,
	}, []string{healthy.URL, draining.URL, dead.URL})

	ok0, fail0 := metProbeOK.Value(), metProbeFail.Value()
	tr.ProbeAll(context.Background(), healthy.Client())

	byPeer := map[string]PeerHealth{}
	for _, ph := range tr.Snapshot() {
		byPeer[ph.Peer] = ph
	}
	if ph := byPeer[healthy.URL]; !ph.Healthy || ph.Breaker != "closed" {
		t.Errorf("healthy peer snapshot %+v", ph)
	}
	if ph := byPeer[draining.URL]; ph.Healthy || ph.Breaker != "open" {
		t.Errorf("draining peer snapshot %+v, want unhealthy/open", ph)
	}
	if ph := byPeer[dead.URL]; ph.Healthy || ph.Breaker != "open" || ph.LastError == "" {
		t.Errorf("dead peer snapshot %+v, want unhealthy/open with an error", ph)
	}
	if metProbeOK.Value() != ok0+1 || metProbeFail.Value() != fail0+2 {
		t.Errorf("probe counters moved ok=%d fail=%d, want 1/2",
			metProbeOK.Value()-ok0, metProbeFail.Value()-fail0)
	}

	// The peer comes back: one successful probe closes the breaker.
	tr.ReportProbe(dead.URL, nil)
	if ph := tr.Snapshot(); ph[len(ph)-1].Peer == dead.URL && ph[len(ph)-1].Breaker != "closed" {
		t.Errorf("restarted peer breaker = %s, want closed after one good probe", ph[len(ph)-1].Breaker)
	}
}

// The prober loop runs, probes repeatedly, and stops cleanly. The
// readiness signal is the probe count itself, not a sleep.
func TestStartProberRunsAndStops(t *testing.T) {
	withObs(t)
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ready\n"))
	}))
	defer peer.Close()

	tr := NewTracker(Config{ProbeInterval: time.Millisecond, ProbeTimeout: time.Second}, []string{peer.URL})
	stop := tr.StartProber(context.Background(), peer.Client())
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	if hits.Load() < 2 {
		t.Fatalf("prober made %d probes in 5s, want >= 2", hits.Load())
	}
	after := hits.Load()
	// stop() blocks until the loop exits; no further probes may land.
	time.Sleep(5 * time.Millisecond)
	if hits.Load() != after {
		t.Errorf("probes continued after stop(): %d -> %d", after, hits.Load())
	}
}
