package fleethealth

import (
	"context"
	"math/rand"
	"time"
)

// RetryConfig shapes one bounded retry loop. The zero value gets the
// defaults.
type RetryConfig struct {
	// Attempts is the total number of tries, first included (default 3).
	Attempts int
	// BaseDelay is the backoff unit: the attempt-k sleep is drawn
	// uniformly from [0, min(MaxDelay, BaseDelay<<k)) — "full jitter",
	// which decorrelates retry storms across concurrent requests
	// (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff window (default 1s).
	MaxDelay time.Duration
	// Jitter returns a uniform sample in [0, 1) (default the shared
	// math/rand source). Tests inject a deterministic source.
	Jitter func() float64
	// Sleep waits for d or until ctx is done (default a timer). Tests
	// inject a recorder so backoff schedules are assertable without
	// real waiting.
	Sleep func(ctx context.Context, d time.Duration)
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 25 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	if c.Jitter == nil {
		c.Jitter = rand.Float64
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Backoff returns the attempt-k (0-based) sleep: a full-jitter draw from
// the capped exponential window. Exposed so tests can assert the
// schedule the retry loop follows.
func (c RetryConfig) Backoff(attempt int) time.Duration {
	cfg := c.withDefaults()
	window := cfg.BaseDelay << uint(attempt)
	if window <= 0 || window > cfg.MaxDelay {
		window = cfg.MaxDelay
	}
	return time.Duration(cfg.Jitter() * float64(window))
}

// Retry runs fn up to cfg.Attempts times, sleeping a full-jitter backoff
// between tries, and returns the first nil error or the last error. A
// done context stops the loop between attempts (the context's error is
// returned only when fn never ran or last failed with it — the final
// fn error always wins so callers see the real failure).
func Retry(ctx context.Context, cfg RetryConfig, fn func(attempt int) error) error {
	cfg = cfg.withDefaults()
	var err error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			cfg.Sleep(ctx, cfg.Backoff(attempt-1))
		}
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return err
		}
		if err = fn(attempt); err == nil {
			return nil
		}
	}
	return err
}
