package fleethealth

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"nvrel/internal/obs"
)

// Probe accounting: fleet-wide counts plus a gauge of how many peers are
// currently unhealthy (the snapshot carries the per-peer detail).
var (
	metProbeOK        = obs.CounterFor("fleet.probe.ok")
	metProbeFail      = obs.CounterFor("fleet.probe.fail")
	metPeersUnhealthy = obs.GaugeFor("fleet.peers.unhealthy")
)

// Config shapes a Tracker. The zero value gets the defaults.
type Config struct {
	// Breaker is applied to every peer's circuit breaker.
	Breaker BreakerConfig
	// UnhealthyAfter is how many consecutive probe failures mark a peer
	// unhealthy in snapshots (default 2). The breaker has its own
	// threshold — a peer can be "unhealthy" (probes failing) before its
	// breaker opens, and the snapshot shows both.
	UnhealthyAfter int
	// ProbeInterval is the base probe period; each cycle sleeps a
	// full-jitter draw from [interval/2, interval*3/2) so a fleet of
	// daemons booted together never phase-locks its probes (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz round trip (default 2s).
	ProbeTimeout time.Duration
	// Now is the clock shared with the breakers (default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	c.Breaker.Now = c.Now
	return c
}

// peer is one tracked peer's state. The breaker has its own lock; the
// probe bookkeeping is guarded by the Tracker's.
type peer struct {
	name    string
	breaker *Breaker

	probeFails int // consecutive
	probes     int64
	failures   int64
	lastErr    string
	lastProbe  time.Time
	probed     bool
}

// Tracker owns the per-peer resilience state for one daemon: a circuit
// breaker per peer plus the probe history /healthz exposes.
type Tracker struct {
	cfg   Config
	mu    sync.Mutex
	peers map[string]*peer
	order []string
}

// NewTracker builds a tracker for the given peer base URLs (the daemon's
// ring minus itself).
func NewTracker(cfg Config, peers []string) *Tracker {
	t := &Tracker{cfg: cfg.withDefaults(), peers: make(map[string]*peer, len(peers))}
	for _, p := range peers {
		if _, ok := t.peers[p]; ok {
			continue
		}
		t.peers[p] = &peer{name: p, breaker: NewBreaker(t.cfg.Breaker)}
		t.order = append(t.order, p)
	}
	sort.Strings(t.order)
	return t
}

// Breaker returns the named peer's breaker, or nil for an untracked peer
// (callers treat nil as "always allow": *Breaker methods are not
// nil-safe, so the cmd layer guards).
func (t *Tracker) Breaker(name string) *Breaker {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[name]; ok {
		return p.breaker
	}
	return nil
}

// Peers returns the tracked peer names, sorted.
func (t *Tracker) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// ReportHop feeds one proxy-hop outcome into the peer's breaker. Hop
// failures are breaker evidence but not probe evidence: the prober owns
// the healthy flag so a burst of hop failures against a live-but-slow
// peer shows as breaker state, not fake probe history.
func (t *Tracker) ReportHop(name string, err error) {
	t.mu.Lock()
	p, ok := t.peers[name]
	if ok && err != nil {
		p.lastErr = err.Error()
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	if err != nil {
		p.breaker.Failure()
		return
	}
	p.breaker.Success()
}

// ReportProbe feeds one health-probe outcome: probe bookkeeping plus the
// same breaker evidence a hop gives. A successful probe closes an open
// breaker immediately — positive liveness evidence beats waiting out a
// cooldown, which is what lets a restarted peer rejoin the ring within
// one probe interval.
func (t *Tracker) ReportProbe(name string, err error) {
	t.mu.Lock()
	p, ok := t.peers[name]
	if ok {
		p.probes++
		p.probed = true
		p.lastProbe = t.cfg.Now()
		if err != nil {
			p.failures++
			p.probeFails++
			p.lastErr = err.Error()
		} else {
			p.probeFails = 0
			p.lastErr = ""
		}
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	if err != nil {
		metProbeFail.Inc()
		p.breaker.Failure()
	} else {
		metProbeOK.Inc()
		p.breaker.Success()
	}
	t.updateUnhealthyGauge()
}

func (t *Tracker) updateUnhealthyGauge() {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int
	for _, p := range t.peers {
		if p.probeFails >= t.cfg.UnhealthyAfter {
			n++
		}
	}
	metPeersUnhealthy.Set(float64(n))
}

// PeerHealth is one peer's state in a snapshot — the JSON contract of
// /healthz and the cluster documents.
type PeerHealth struct {
	Peer                string    `json:"peer"`
	Breaker             string    `json:"breaker"` // closed | open | half-open
	Healthy             bool      `json:"healthy"`
	ConsecutiveFailures int       `json:"consecutive_failures,omitempty"` // probe run
	Probes              int64     `json:"probes"`
	ProbeFailures       int64     `json:"probe_failures"`
	LastProbe           time.Time `json:"last_probe,omitempty"`
	LastError           string    `json:"last_error,omitempty"`
}

// Snapshot returns every tracked peer's state, sorted by peer name. A
// never-probed peer reports healthy (optimistic start: the ring routes
// to it until evidence says otherwise).
func (t *Tracker) Snapshot() []PeerHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PeerHealth, 0, len(t.order))
	for _, name := range t.order {
		p := t.peers[name]
		out = append(out, PeerHealth{
			Peer:                name,
			Breaker:             p.breaker.State().String(),
			Healthy:             p.probeFails < t.cfg.UnhealthyAfter,
			ConsecutiveFailures: p.probeFails,
			Probes:              p.probes,
			ProbeFailures:       p.failures,
			LastProbe:           p.lastProbe,
			LastError:           p.lastErr,
		})
	}
	return out
}

// ProbeAll probes every tracked peer's /readyz once, synchronously, and
// feeds the outcomes through ReportProbe. Any non-200 answer (including
// 503 "draining"/"warming up") is a failure: a draining peer should stop
// receiving proxied solves just like a dead one.
func (t *Tracker) ProbeAll(ctx context.Context, client *http.Client) {
	for _, name := range t.Peers() {
		t.ReportProbe(name, probeOne(ctx, client, name, t.cfg.ProbeTimeout))
	}
}

func probeOne(ctx context.Context, client *http.Client, base string, timeout time.Duration) error {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz status %d", resp.StatusCode)
	}
	return nil
}

// StartProber runs the probe loop until ctx is done: each cycle probes
// every peer, then sleeps a full-jitter interval. Returns a stop
// function that blocks until the loop has exited (so tests and the
// daemon's shutdown path never leak the goroutine).
func (t *Tracker) StartProber(ctx context.Context, client *http.Client) (stop func()) {
	pctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	go func() {
		defer close(done)
		for {
			t.ProbeAll(pctx, client)
			base := t.cfg.ProbeInterval
			jittered := base/2 + time.Duration(rng.Float64()*float64(base))
			timer := time.NewTimer(jittered)
			select {
			case <-pctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}
