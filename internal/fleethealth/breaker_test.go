package fleethealth

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nvrel/internal/obs"
)

// fakeClock is a hand-advanced clock so open→half-open transitions need
// no real waiting.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func withObs(t *testing.T) {
	t.Helper()
	prev := obs.Enable()
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

func TestBreakerStateMachine(t *testing.T) {
	withObs(t)
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 5 * time.Second, Now: clock.Now})

	open0 := metBreakerOpen.Value()
	half0 := metBreakerHalfOpen.Value()
	close0 := metBreakerClose.Value()

	if got := b.State(); got != StateClosed {
		t.Fatalf("new breaker state = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}

	// Two failures stay closed; the third opens.
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	if metBreakerOpen.Value() != open0+1 {
		t.Errorf("fleet.breaker.open moved %d, want 1", metBreakerOpen.Value()-open0)
	}
	if b.Allow() {
		t.Fatal("open breaker inside cooldown must reject")
	}

	// Cooldown elapses: exactly one half-open trial is admitted.
	clock.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("open breaker past cooldown must admit a trial")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after trial admit = %v, want half-open", got)
	}
	if metBreakerHalfOpen.Value() != half0+1 {
		t.Errorf("fleet.breaker.halfopen moved %d, want 1", metBreakerHalfOpen.Value()-half0)
	}
	if b.Allow() {
		t.Fatal("second caller during the half-open trial must be rejected")
	}

	// Trial failure re-opens and restarts the cooldown.
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after trial failure = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker must reject until the new cooldown elapses")
	}

	// Next trial succeeds: closed, and failures are forgotten.
	clock.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker past cooldown must admit a trial")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after trial success = %v, want closed", got)
	}
	if got := b.ConsecutiveFailures(); got != 0 {
		t.Errorf("failure run after success = %d, want 0", got)
	}
	if metBreakerClose.Value() != close0+1 {
		t.Errorf("fleet.breaker.close moved %d, want 1", metBreakerClose.Value()-close0)
	}
	if metBreakerOpen.Value() != open0+2 {
		t.Errorf("fleet.breaker.open total moved %d, want 2", metBreakerOpen.Value()-open0)
	}
}

// A success in the OPEN state closes the breaker immediately: the prober
// feeds positive evidence and a restarted peer must not wait out the
// cooldown.
func TestBreakerProbeSuccessClosesFromOpen(t *testing.T) {
	withObs(t)
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour, Now: clock.Now})
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}

func TestBreakerFailureRunInterruptedBySuccess(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Now: clock.Now})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("non-consecutive failures opened the breaker (state %v)", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("3 consecutive failures left state %v, want open", got)
	}
}

// Hammer the breaker from many goroutines; the -race run is the assertion.
func TestBreakerConcurrency(t *testing.T) {
	clock := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: time.Millisecond, Now: clock.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Allow()
				if (g+i)%3 == 0 {
					b.Failure()
				} else {
					b.Success()
				}
				if i%50 == 0 {
					clock.Advance(time.Millisecond)
				}
				b.State()
				b.ConsecutiveFailures()
			}
		}(g)
	}
	wg.Wait()
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("default threshold opened after 2 failures (state %v)", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("default threshold did not open after 3 failures (state %v)", got)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{StateClosed: "closed", StateOpen: "open", StateHalfOpen: "half-open", State(99): "invalid"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

var errProbe = errors.New("probe failed")
