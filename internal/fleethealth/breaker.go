// Package fleethealth is the fleet-resilience layer under `nvrel serve`:
// per-peer circuit breakers consulted before every proxy hop, a
// background /readyz prober that detects peer death and recovery, and a
// bounded-retry helper with exponential backoff and full jitter. The
// pieces share one Tracker that owns the per-peer state and exposes it
// as a snapshot for /healthz and the cluster documents.
//
// The design mirrors the paper's rejuvenation thesis applied to the
// serving fleet itself: peers fail and come back (supervisor restarts,
// our own -rejuvenate-after exits), and the ring must route around the
// dead without turning their downtime into client-visible errors. The
// breaker is the routing decision, the prober is the recovery detector,
// and degraded-mode local solves (in cmd/nvrel) are the fallback rung —
// correctness is preserved because solves are pure; only cache
// partitioning degrades.
//
// Everything is deterministic under test: the breaker takes an
// injectable clock, the retry helper an injectable sleep and jitter
// source, and the prober exposes a synchronous ProbeAll for tests that
// must not use sleeps as synchronization.
package fleethealth

import (
	"sync"
	"time"

	"nvrel/internal/obs"
)

// Breaker state-transition counters, fleet-wide (the per-peer attribution
// lives in the Tracker snapshot; the counters answer "is the fleet
// flapping" at a glance and are asserted by the smoke test).
var (
	metBreakerOpen     = obs.CounterFor("fleet.breaker.open")
	metBreakerHalfOpen = obs.CounterFor("fleet.breaker.halfopen")
	metBreakerClose    = obs.CounterFor("fleet.breaker.close")
)

// State is a circuit breaker's position.
type State uint8

const (
	// StateClosed passes traffic and counts consecutive failures.
	StateClosed State = iota
	// StateOpen rejects traffic until the cooldown elapses.
	StateOpen
	// StateHalfOpen admits one trial request; its outcome decides
	// between closing and re-opening.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// BreakerConfig shapes one breaker. The zero value gets the defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures open a closed
	// breaker (default 3).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open trial (default 5s).
	Cooldown time.Duration
	// Now is the clock (default time.Now). Tests inject a fake so
	// open→half-open transitions need no real waiting.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-peer circuit breaker: closed → open after
// FailureThreshold consecutive failures, open → half-open after the
// cooldown, half-open → closed on a success (or back to open on a
// failure). A success in any state closes the breaker — the prober's
// positive evidence is authoritative, so a restarted peer rejoins the
// ring as soon as one probe lands rather than after a cooldown cycle.
// All methods are safe for concurrent use.
type Breaker struct {
	mu            sync.Mutex
	cfg           BreakerConfig
	state         State
	fails         int
	openedAt      time.Time
	trialInFlight bool
}

// NewBreaker builds a breaker with cfg's defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may be sent through the breaker right
// now. Open breakers reject until the cooldown elapses, then flip to
// half-open and admit exactly one trial; additional callers are rejected
// until that trial reports its outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.trialInFlight = true
		metBreakerHalfOpen.Inc()
		return true
	case StateHalfOpen:
		if b.trialInFlight {
			return false
		}
		b.trialInFlight = true
		return true
	}
	return false
}

// Success reports a successful request (or probe) outcome: the failure
// run resets and the breaker closes from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.trialInFlight = false
	if b.state != StateClosed {
		b.state = StateClosed
		metBreakerClose.Inc()
	}
}

// Failure reports a failed request (or probe) outcome. A closed breaker
// opens at the failure threshold; a half-open trial failure re-opens
// immediately (the cooldown restarts).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.trialInFlight = false
	switch b.state {
	case StateClosed:
		if b.fails >= b.cfg.FailureThreshold {
			b.state = StateOpen
			b.openedAt = b.cfg.Now()
			metBreakerOpen.Inc()
		}
	case StateHalfOpen:
		b.state = StateOpen
		b.openedAt = b.cfg.Now()
		metBreakerOpen.Inc()
	}
}

// State returns the breaker's current position without side effects.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ConsecutiveFailures returns the current failure run length.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
