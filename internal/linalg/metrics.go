package linalg

import "nvrel/internal/obs"

// Metric handles for the hot solver kernels. Handles are resolved once
// here; every update short-circuits on one atomic load while obs is
// disabled (the default), so the kernels keep their allocation-free and
// near-zero-overhead properties either way.
var (
	// Gauss-Seidel steady state: solves started, total sweeps across
	// solves, how each solve ended, and the final relative L1 residual
	// (delta/norm) of the most recent solve.
	metGSSolves    = obs.CounterFor("linalg.gs.solves")
	metGSSweeps    = obs.CounterFor("linalg.gs.sweeps")
	metGSConverged = obs.CounterFor("linalg.gs.converged")
	metGSStalled   = obs.CounterFor("linalg.gs.stalled")
	metGSExhausted = obs.CounterFor("linalg.gs.exhausted")
	metGSResidual  = obs.GaugeFor("linalg.gs.final_residual")

	// Workspace pools: a hit reuses released scratch, a miss allocates.
	// Nil-workspace callers (no pooling requested) are not counted.
	metWSVecHit      = obs.CounterFor("linalg.workspace.vec.hit")
	metWSVecMiss     = obs.CounterFor("linalg.workspace.vec.miss")
	metWSMatHit      = obs.CounterFor("linalg.workspace.mat.hit")
	metWSMatMiss     = obs.CounterFor("linalg.workspace.mat.miss")
	metWSCSRHit      = obs.CounterFor("linalg.workspace.csr.hit")
	metWSCSRMiss     = obs.CounterFor("linalg.workspace.csr.miss")
	metWSPoissonHit  = obs.CounterFor("linalg.workspace.poisson.hit")
	metWSPoissonMiss = obs.CounterFor("linalg.workspace.poisson.miss")

	// Uniformized power iteration — the last rung of the steady-state
	// fallback chain. Rejected counts inputs/iterates the guards refused
	// (shared with GS: metGSRejected below).
	metPowerSolves    = obs.CounterFor("linalg.power.solves")
	metPowerIters     = obs.CounterFor("linalg.power.iters")
	metPowerConverged = obs.CounterFor("linalg.power.converged")
	metPowerExhausted = obs.CounterFor("linalg.power.exhausted")
	metPowerResidual  = obs.GaugeFor("linalg.power.final_residual")

	// Guard rejections: generators or iterates refused by the validation
	// layer before or during a GS solve (see validate.go).
	metGSRejected = obs.CounterFor("linalg.gs.rejected")

	// Warm-start seeds: accepted seeds start the iteration from a
	// neighbor's solution; rejected ones (wrong length, non-finite,
	// negative, vanished) silently degrade to the uniform start. The
	// rejected counter is chaos-gate evidence that a corrupted seed was
	// contained (see ApplySeed).
	metSeedWarm     = obs.CounterFor("linalg.seed.warm")
	metSeedRejected = obs.CounterFor("linalg.seed.rejected")

	// Workspace arena: a hit reuses a workspace another worker released;
	// a miss grows the arena by one workspace.
	metArenaHit  = obs.CounterFor("linalg.arena.hit")
	metArenaMiss = obs.CounterFor("linalg.arena.miss")

	// Uniformization: matrix-free series evaluated, series terms run, the
	// distribution of truncation depths K, and the analytic tail mass left
	// beyond the most recent truncation point.
	metUnifSeries = obs.CounterFor("linalg.unif.series")
	metUnifTerms  = obs.CounterFor("linalg.unif.terms")
	metUnifK      = obs.HistogramFor("linalg.unif.truncation_k", []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096})
	metUnifTail   = obs.GaugeFor("linalg.unif.tail_mass")
)
