package linalg

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix. Row i's entries live at positions
// RowPtr[i]..RowPtr[i+1] of ColIdx/Vals, with ColIdx sorted within each row
// and no duplicate columns. The layout is the classic three-array form: the
// pattern (RowPtr, ColIdx) is independent of the values, so structurally
// identical matrices — every point of a re-stamped parameter sweep — can
// reuse one pattern and only rewrite Vals (see petri.GeneratorPlan).
//
// The state spaces produced by the perception-system Petri nets have O(1)
// successors per state (one per enabled timed transition), so a CSR
// generator holds ~(deg+1)*n entries against the dense layout's n*n; the
// matrix-vector kernels below are correspondingly O(nnz) instead of O(n^2).
type CSR struct {
	rows, cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []float64
}

// NewCSR returns a CSR shell with capacity for nnz entries. RowPtr, ColIdx
// and Vals are zeroed; the caller (normally a stamping plan) fills them.
func NewCSR(rows, cols, nnz int) *CSR {
	if rows <= 0 || cols <= 0 || nnz < 0 {
		panic(fmt.Sprintf("linalg: invalid CSR shape %dx%d nnz=%d", rows, cols, nnz))
	}
	return &CSR{
		rows:   rows,
		cols:   cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, nnz),
		Vals:   make([]float64, nnz),
	}
}

// CSRFromDense extracts the non-zero pattern and values of a dense matrix.
// Structural zeros are dropped except on the diagonal of square matrices,
// which is always materialized so generator kernels can read exit rates
// without searching.
func CSRFromDense(d *Dense) *CSR {
	rows, cols := d.Dims()
	nnz := 0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if d.At(i, j) != 0 || (rows == cols && i == j) {
				nnz++
			}
		}
	}
	c := NewCSR(rows, cols, nnz)
	k := 0
	for i := 0; i < rows; i++ {
		c.RowPtr[i] = k
		for j := 0; j < cols; j++ {
			if v := d.At(i, j); v != 0 || (rows == cols && i == j) {
				c.ColIdx[k] = j
				c.Vals[k] = v
				k++
			}
		}
	}
	c.RowPtr[rows] = k
	return c
}

// Dims returns the number of rows and columns.
func (c *CSR) Dims() (rows, cols int) { return c.rows, c.cols }

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.ColIdx) }

// At returns element (i, j) by binary search within row i. It is meant for
// tests and diagnostics, not for kernels.
func (c *CSR) At(i, j int) float64 {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	k := lo + sort.SearchInts(c.ColIdx[lo:hi], j)
	if k < hi && c.ColIdx[k] == j {
		return c.Vals[k]
	}
	return 0
}

// Dense materializes the CSR as a dense matrix.
func (c *CSR) Dense() *Dense {
	d := NewDense(c.rows, c.cols)
	for i := 0; i < c.rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			d.Set(i, c.ColIdx[k], c.Vals[k])
		}
	}
	return d
}

// DenseInto writes the CSR into dst, which must match the CSR's shape.
func (c *CSR) DenseInto(dst *Dense) error {
	if dst.rows != c.rows || dst.cols != c.cols {
		return ErrDimensionMismatch
	}
	dst.Zero()
	for i := 0; i < c.rows; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			dst.Set(i, c.ColIdx[k], c.Vals[k])
		}
	}
	return nil
}

// MulVecInto computes dst = A * x. dst must have length rows and must not
// alias x.
func (c *CSR) MulVecInto(dst, x []float64) error {
	if len(x) != c.cols || len(dst) != c.rows {
		return ErrDimensionMismatch
	}
	for i := 0; i < c.rows; i++ {
		var s float64
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			s += c.Vals[k] * x[c.ColIdx[k]]
		}
		dst[i] = s
	}
	return nil
}

// VecMulInto computes dst = x * A (x treated as a row vector). dst must
// have length cols and must not alias x; existing contents are overwritten.
func (c *CSR) VecMulInto(dst, x []float64) error {
	if len(x) != c.rows || len(dst) != c.cols {
		return ErrDimensionMismatch
	}
	clear(dst)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			dst[c.ColIdx[k]] += xi * c.Vals[k]
		}
	}
	return nil
}

// MulCSRInto computes out = a * b for a dense left operand and a CSR right
// operand: each non-zero a[i][k] scatters a scaled copy of b's row k into
// out's row i, costing O(rows(a) * nnz(b)) instead of the dense product's
// O(rows * cols * inner). out must be sized a.rows x b.cols and must not
// alias a.
func (out *Dense) MulCSRInto(a *Dense, b *CSR) error {
	if a.cols != b.rows || out.rows != a.rows || out.cols != b.cols {
		return ErrDimensionMismatch
	}
	if out == a {
		return ErrDimensionMismatch
	}
	out.Zero()
	for i := 0; i < a.rows; i++ {
		aRow := a.data[i*a.cols : (i+1)*a.cols]
		outRow := out.data[i*out.cols : (i+1)*out.cols]
		for kk, v := range aRow {
			if v == 0 {
				continue
			}
			for k := b.RowPtr[kk]; k < b.RowPtr[kk+1]; k++ {
				outRow[b.ColIdx[k]] += v * b.Vals[k]
			}
		}
	}
	return nil
}

// MaxAbsDiag returns max_i |A[i,i]| for a square CSR whose diagonal is
// materialized (generator CSRs always are). Used to derive uniformization
// rates without a dense scan.
func (c *CSR) MaxAbsDiag() float64 {
	var max float64
	for i := 0; i < c.rows && i < c.cols; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			if c.ColIdx[k] == i {
				v := c.Vals[k]
				if v < 0 {
					v = -v
				}
				if v > max {
					max = v
				}
				break
			}
		}
	}
	return max
}
