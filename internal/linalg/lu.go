package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a matrix is numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n     int
	lu    *Dense // combined L (unit lower) and U (upper)
	pivot []int
	sign  int
}

// Factorize computes the LU factorization of the square matrix a with
// partial pivoting. The input matrix is not modified.
func Factorize(a *Dense) (*LU, error) {
	rows, cols := a.Dims()
	if rows != cols {
		return nil, ErrDimensionMismatch
	}
	n := rows
	f := &LU{n: n, lu: a.Clone(), pivot: make([]int, n), sign: 1}
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot row.
		p, max := k, math.Abs(f.lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			f.swapRows(p, k)
			f.pivot[p], f.pivot[k] = f.pivot[k], f.pivot[p]
			f.sign = -f.sign
		}
		inv := 1 / f.lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := f.lu.At(i, k) * inv
			f.lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu.Add(i, j, -l*f.lu.At(k, j))
			}
		}
	}
	return f, nil
}

func (f *LU) swapRows(i, j int) {
	for c := 0; c < f.n; c++ {
		vi, vj := f.lu.At(i, c), f.lu.At(j, c)
		f.lu.Set(i, c, vj)
		f.lu.Set(j, c, vi)
	}
}

// Solve solves A*x = b for x using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, ErrDimensionMismatch
	}
	x := make([]float64, f.n)
	// Apply permutation: x = P*b.
	for i := 0; i < f.n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < f.n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := f.n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < f.n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = (x[i] - s) / d
	}
	return x, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	det := float64(f.sign)
	for i := 0; i < f.n; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// SolveLinear solves A*x = b directly (factorize + solve).
func SolveLinear(a *Dense, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
