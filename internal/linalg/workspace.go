package linalg

// Workspace recycles the scratch storage of the iterative kernels —
// uniformization vectors and matrices, GTH elimination copies — and
// memoizes Poisson weight vectors keyed on (lambda, epsilon). Solving the
// same-sized model repeatedly (every sweep in the evaluation is exactly
// that) then runs allocation-free after the first solve.
//
// A Workspace is NOT safe for concurrent use; give each worker goroutine
// its own (e.g. via sync.Pool). All workspace-aware kernels accept a nil
// receiver and then behave like their allocate-per-call counterparts.
type Workspace struct {
	vecs    map[int][][]float64
	mats    map[matDim][]*Dense
	csrs    map[csrDim][]*CSR
	poisson map[poissonKey]poissonMemo
}

type matDim struct{ rows, cols int }

type csrDim struct{ rows, cols, nnz int }

type poissonKey struct{ lambda, epsilon float64 }

type poissonMemo struct {
	weights []float64
	right   int
}

// poissonMemoLimit bounds the memo so pathological sweeps over thousands
// of distinct (lambda, epsilon) pairs cannot grow it without bound.
const poissonMemoLimit = 512

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		vecs:    make(map[int][][]float64),
		mats:    make(map[matDim][]*Dense),
		csrs:    make(map[csrDim][]*CSR),
		poisson: make(map[poissonKey]poissonMemo),
	}
}

// Vec returns a zeroed length-n scratch vector, reusing a released one
// when available. With a nil workspace it simply allocates.
func (ws *Workspace) Vec(n int) []float64 {
	if ws == nil {
		return make([]float64, n)
	}
	free := ws.vecs[n]
	if len(free) == 0 {
		metWSVecMiss.Inc()
		return make([]float64, n)
	}
	metWSVecHit.Inc()
	v := free[len(free)-1]
	ws.vecs[n] = free[:len(free)-1]
	clear(v)
	return v
}

// PutVec releases a vector obtained from Vec back to the workspace.
func (ws *Workspace) PutVec(v []float64) {
	if ws == nil || v == nil {
		return
	}
	ws.vecs[len(v)] = append(ws.vecs[len(v)], v)
}

// Mat returns a zeroed rows x cols scratch matrix, reusing a released one
// when available. With a nil workspace it simply allocates.
func (ws *Workspace) Mat(rows, cols int) *Dense {
	if ws == nil {
		return NewDense(rows, cols)
	}
	d := matDim{rows, cols}
	free := ws.mats[d]
	if len(free) == 0 {
		metWSMatMiss.Inc()
		return NewDense(rows, cols)
	}
	metWSMatHit.Inc()
	m := free[len(free)-1]
	ws.mats[d] = free[:len(free)-1]
	m.Zero()
	return m
}

// PutMat releases a matrix obtained from Mat back to the workspace.
func (ws *Workspace) PutMat(m *Dense) {
	if ws == nil || m == nil {
		return
	}
	d := matDim{m.rows, m.cols}
	ws.mats[d] = append(ws.mats[d], m)
}

// CSR returns a rows x cols CSR shell with exactly nnz entries and zeroed
// Vals, reusing a released one when available. The caller (normally a
// stamping plan) fills RowPtr/ColIdx/Vals. With a nil workspace it simply
// allocates.
func (ws *Workspace) CSR(rows, cols, nnz int) *CSR {
	if ws == nil {
		return NewCSR(rows, cols, nnz)
	}
	d := csrDim{rows, cols, nnz}
	free := ws.csrs[d]
	if len(free) == 0 {
		metWSCSRMiss.Inc()
		return NewCSR(rows, cols, nnz)
	}
	metWSCSRHit.Inc()
	c := free[len(free)-1]
	ws.csrs[d] = free[:len(free)-1]
	clear(c.Vals)
	return c
}

// PutCSR releases a CSR obtained from CSR back to the workspace.
func (ws *Workspace) PutCSR(c *CSR) {
	if ws == nil || c == nil {
		return
	}
	d := csrDim{c.rows, c.cols, len(c.ColIdx)}
	ws.csrs[d] = append(ws.csrs[d], c)
}

// Poisson returns the truncated Poisson weight vector for the given mean
// and tail bound, memoized per (lambda, epsilon). The returned slice is
// shared across calls and must be treated as read-only.
func (ws *Workspace) Poisson(lambda, epsilon float64) (weights []float64, right int) {
	if ws == nil {
		return PoissonWeights(lambda, epsilon)
	}
	key := poissonKey{lambda, epsilon}
	if memo, ok := ws.poisson[key]; ok {
		metWSPoissonHit.Inc()
		return memo.weights, memo.right
	}
	metWSPoissonMiss.Inc()
	w, r := PoissonWeights(lambda, epsilon)
	if len(ws.poisson) >= poissonMemoLimit {
		clear(ws.poisson)
	}
	ws.poisson[key] = poissonMemo{weights: w, right: r}
	return w, r
}
