package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestApplySeedValidation(t *testing.T) {
	dst := []float64{9, 9, 9}
	orig := append([]float64(nil), dst...)
	bad := [][]float64{
		nil,
		{1, 2},       // length mismatch
		{1, 2, 3, 4}, // length mismatch
		{1, math.NaN(), 1},
		{1, math.Inf(1), 1},
		{1, -0.5, 1},
		{0, 0, 0},                             // zero mass
		{math.MaxFloat64, math.MaxFloat64, 1}, // mass overflows to +Inf
	}
	for i, seed := range bad {
		if ApplySeed(dst, seed) {
			t.Fatalf("case %d: ApplySeed accepted %v", i, seed)
		}
		for j := range dst {
			if dst[j] != orig[j] {
				t.Fatalf("case %d: rejected seed wrote dst[%d] = %g", i, j, dst[j])
			}
		}
	}
	if !ApplySeed(dst, []float64{1, 1, 2}) {
		t.Fatal("ApplySeed rejected a valid seed")
	}
	want := []float64{0.25, 0.25, 0.5}
	for j := range dst {
		if math.Abs(dst[j]-want[j]) > 1e-15 {
			t.Fatalf("dst[%d] = %g, want %g", j, dst[j], want[j])
		}
	}
}

// transposeDense mirrors the stamp layout the GS kernel consumes: incoming
// edges per state.
func transposeDense(q *Dense, n int) *Dense {
	qt := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qt.Set(j, i, q.At(i, j))
		}
	}
	return qt
}

// perturbedCopy returns pi nudged multiplicatively by up to rel per entry
// and renormalized — the shape of a neighbor point's stationary vector.
func perturbedCopy(rng *rand.Rand, pi []float64, rel float64) []float64 {
	out := make([]float64, len(pi))
	var sum float64
	for i, v := range pi {
		out[i] = v * (1 + rel*(2*rng.Float64()-1))
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// TestSteadyStateGSSeededAgreesWithCold: the warm-start property at the
// kernel level — on random generators, GS started from a perturbed copy of
// a neighbor's solution lands within 1e-12 of the cold solve for nudges
// spanning five orders of magnitude, and a fine nudge (the refinement/
// serving regime the registry targets) never costs more sweeps than the
// cold start. Coarse nudges carry no iteration guarantee — a far seed can
// sit marginally worse than uniform — only the agreement one.
func TestSteadyStateGSSeededAgreesWithCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := NewWorkspace()
	rels := []float64{0.5, 1e-2, 1e-4, 1e-6}
	for rep := 0; rep < 20; rep++ {
		n := 2 + rng.Intn(60)
		qt := CSRFromDense(transposeDense(randomGenerator(rng, n), n))
		cold := make([]float64, n)
		coldSweeps, warm, err := ws.SteadyStateGSSeededCtx(nil, qt, cold, nil)
		if err != nil {
			t.Fatalf("rep %d: cold GS: %v", rep, err)
		}
		if warm {
			t.Fatalf("rep %d: nil seed reported warm", rep)
		}
		for _, rel := range rels {
			seed := perturbedCopy(rng, cold, rel)
			got := make([]float64, n)
			sweeps, warm, err := ws.SteadyStateGSSeededCtx(nil, qt, got, seed)
			if err != nil {
				t.Fatalf("rep %d rel=%g: seeded GS: %v", rep, rel, err)
			}
			if !warm {
				t.Fatalf("rep %d rel=%g: valid seed not reported warm", rep, rel)
			}
			if rel <= 1e-4 && sweeps > coldSweeps {
				t.Fatalf("rep %d rel=%g: warm GS took %d sweeps, cold took %d", rep, rel, sweeps, coldSweeps)
			}
			for i := range cold {
				if d := math.Abs(got[i] - cold[i]); d > 1e-12 {
					t.Fatalf("rep %d rel=%g: pi[%d] warm-cold diff %g", rep, rel, i, d)
				}
			}
		}
	}
}

// mixedGenerator is randomGenerator plus a unit-rate uniform re-dispatch
// from every state. The extra mixing keeps the uniformized chain's
// contraction factor well under 1, so the power kernel's successive-
// iterate stopping rule (1e-14) leaves true error far below the 1e-12
// agreement bound this fuzz asserts. (On slowly mixing chains that rule
// can stop ~1e-11 from the fixed point — a property of the kernel, not of
// warm-starting — which is why the production gate measures the GS and
// embedded-chain paths.)
func mixedGenerator(rng *rand.Rand, n int) *Dense {
	q := randomGenerator(rng, n)
	if n > 1 {
		r := 1.0 / float64(n-1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j != i {
					q.Add(i, j, r)
					q.Add(i, i, -r)
				}
			}
		}
	}
	return q
}

// TestSteadyStatePowerSeededAgreesWithCold: the same property on the
// uniformized power backstop.
func TestSteadyStatePowerSeededAgreesWithCold(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ws := NewWorkspace()
	for rep := 0; rep < 12; rep++ {
		n := 2 + rng.Intn(40)
		q := CSRFromDense(mixedGenerator(rng, n))
		cold := make([]float64, n)
		coldIters, warm, err := ws.SteadyStatePowerSeededCtx(nil, q, cold, nil)
		if err != nil {
			t.Fatalf("rep %d: cold power: %v", rep, err)
		}
		if warm {
			t.Fatalf("rep %d: nil seed reported warm", rep)
		}
		for _, rel := range []float64{1e-2, 1e-5} {
			seed := perturbedCopy(rng, cold, rel)
			got := make([]float64, n)
			iters, warm, err := ws.SteadyStatePowerSeededCtx(nil, q, got, seed)
			if err != nil {
				t.Fatalf("rep %d rel=%g: seeded power: %v", rep, rel, err)
			}
			if !warm {
				t.Fatalf("rep %d rel=%g: valid seed not reported warm", rep, rel)
			}
			if rel <= 1e-4 && iters > coldIters {
				t.Fatalf("rep %d rel=%g: warm power took %d iters, cold took %d", rep, rel, iters, coldIters)
			}
			for i := range cold {
				if d := math.Abs(got[i] - cold[i]); d > 1e-12 {
					t.Fatalf("rep %d rel=%g: pi[%d] warm-cold diff %g", rep, rel, i, d)
				}
			}
		}
	}
}

// TestSeededKernelsRejectCorruptSeeds: a poisoned seed degrades to the
// uniform cold start bit-for-bit — same iterate, same iteration count.
func TestSeededKernelsRejectCorruptSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 30
	qt := CSRFromDense(transposeDense(randomGenerator(rng, n), n))
	ws := NewWorkspace()
	cold := make([]float64, n)
	coldSweeps, _, err := ws.SteadyStateGSSeededCtx(nil, qt, cold, nil)
	if err != nil {
		t.Fatalf("cold GS: %v", err)
	}
	corrupt := make([]float64, n)
	for i := range corrupt {
		corrupt[i] = 1
	}
	corrupt[7] = math.NaN()
	got := make([]float64, n)
	sweeps, warm, err := ws.SteadyStateGSSeededCtx(nil, qt, got, corrupt)
	if err != nil {
		t.Fatalf("seeded GS with corrupt seed: %v", err)
	}
	if warm {
		t.Fatal("corrupt seed reported warm")
	}
	if sweeps != coldSweeps {
		t.Fatalf("corrupt seed changed the iteration count: %d vs cold %d", sweeps, coldSweeps)
	}
	for i := range cold {
		if got[i] != cold[i] {
			t.Fatalf("corrupt seed changed pi[%d]: %g vs %g", i, got[i], cold[i])
		}
	}
}

func TestArenaReusesWorkspaces(t *testing.T) {
	a := NewArena()
	ws1 := a.Get()
	ws2 := a.Get()
	if ws1 == ws2 {
		t.Fatal("arena handed out the same workspace twice")
	}
	a.Put(ws1)
	if got := a.Get(); got != ws1 {
		t.Fatal("arena did not reuse the released workspace")
	}
	var nilArena *Arena
	if nilArena.Get() == nil {
		t.Fatal("nil arena returned nil workspace")
	}
	nilArena.Put(ws2) // must not panic
}
