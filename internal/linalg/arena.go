package linalg

import "sync"

// Arena is a concurrency-safe free list of solver workspaces shared across
// a worker pool. Unlike a sync.Pool, an arena never loses its workspaces
// to a garbage-collection cycle, so the scratch vectors, pooled matrices,
// and Poisson memo tables a sweep has warmed stay warm for its whole
// lifetime — per-item allocation is replaced by a handful of workspaces
// that live exactly as long as the driver sharing them.
//
// Get hands out exclusive ownership (a Workspace is not goroutine-safe);
// Put returns it. The arena grows to the peak concurrency of its users
// and no further.
type Arena struct {
	mu   sync.Mutex
	free []*Workspace
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{}
}

// Get returns a workspace for exclusive use, reusing a released one when
// available. A nil arena allocates a fresh workspace every time.
func (a *Arena) Get() *Workspace {
	if a == nil {
		return NewWorkspace()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.free); n > 0 {
		ws := a.free[n-1]
		a.free = a.free[:n-1]
		metArenaHit.Inc()
		return ws
	}
	metArenaMiss.Inc()
	return NewWorkspace()
}

// Put returns a workspace obtained from Get to the arena.
func (a *Arena) Put(ws *Workspace) {
	if a == nil || ws == nil {
		return
	}
	a.mu.Lock()
	a.free = append(a.free, ws)
	a.mu.Unlock()
}
