package linalg

import (
	"context"
	"fmt"
	"math"

	"nvrel/internal/faultinject"
)

// Uniformized power-iteration limits. Power iteration converges at the
// rate of the subdominant eigenvalue of I + Q/rate — far slower than
// Gauss-Seidel on the lattice-shaped chains here — so it is the last rung
// of the fallback chain, not a routing choice, and gets a generous budget.
const (
	powerTol      = 1e-14
	powerStallTol = 1e-12
	powerMaxIters = 500000
)

// SteadyStatePower computes the stationary distribution of an irreducible
// CTMC by power iteration on the uniformized DTMC, matrix-free:
//
//	pi <- normalize(pi + (pi * Q) / rate)
//
// q is the FORWARD generator in CSR form (row i lists the outgoing rates
// of state i plus the diagonal). The method needs nothing from Q beyond
// matvecs — no diagonal dominance, no elimination, no column access — so
// it survives chains that defeat both Gauss-Seidel and dense GTH, at the
// price of rate-ratio many iterations. The result is written into dst
// (length n); the iteration count is returned.
func (ws *Workspace) SteadyStatePower(q *CSR, dst []float64) (iters int, err error) {
	return ws.SteadyStatePowerCtx(nil, q, dst)
}

// SteadyStatePowerCtx is SteadyStatePower with a context: the iteration
// checks for cancellation every 64 rounds and returns a typed
// SolveError{Kind: FailDeadline} when the context dies. A nil context
// never checks.
func (ws *Workspace) SteadyStatePowerCtx(ctx context.Context, q *CSR, dst []float64) (iters int, err error) {
	iters, _, err = ws.SteadyStatePowerSeededCtx(ctx, q, dst, nil)
	return iters, err
}

// SteadyStatePowerSeededCtx is SteadyStatePowerCtx with an optional
// warm-start initial guess, under the same contract as
// SteadyStateGSSeededCtx: an ApplySeed-accepted seed replaces the uniform
// starting vector (warm reports true), anything else reproduces the cold
// solve bit for bit. Power iteration contracts onto the unique stationary
// vector from any starting distribution, so the seed affects only the
// iteration count, never the fixed point.
func (ws *Workspace) SteadyStatePowerSeededCtx(ctx context.Context, q *CSR, dst, seed []float64) (iters int, warm bool, err error) {
	rows, cols := q.Dims()
	if rows != cols {
		return 0, false, ErrDimensionMismatch
	}
	n := rows
	if len(dst) != n {
		return 0, false, ErrDimensionMismatch
	}
	if err := ValidateGeneratorCSR("linalg.power", q); err != nil {
		return 0, false, err
	}
	metPowerSolves.Inc()
	if n == 1 {
		dst[0] = 1
		return 0, false, nil
	}
	rate := q.MaxAbsDiag() * 1.02
	if rate == 0 {
		return 0, false, &SolveError{Site: "linalg.power", Kind: FailGenerator, Index: -1,
			Err: fmt.Errorf("linalg: generator has no rates (frozen chain)")}
	}
	// A state with no exit rate makes the chain absorbing (reducible), for
	// which no unique positive stationary distribution exists. GS and GTH
	// reject such chains; the backstop must not quietly accept them.
	for i := 0; i < n; i++ {
		var diag float64
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			if q.ColIdx[k] == i {
				diag = q.Vals[k]
				break
			}
		}
		if diag >= 0 {
			return 0, false, &SolveError{Site: "linalg.power", Kind: FailGenerator, Index: i, Value: diag,
				Err: fmt.Errorf("linalg: state %d has no exit rate (chain not irreducible?)", i)}
		}
	}
	invRate := 1 / rate
	if !ApplySeed(dst, seed) {
		for i := range dst {
			dst[i] = 1 / float64(n)
		}
	} else {
		warm = true
	}
	tmp := ws.Vec(n)
	defer ws.PutVec(tmp)

	prev := math.Inf(1)
	stall := 0
	for iter := 0; iter < powerMaxIters; iter++ {
		if iter&63 == 0 {
			if err := CtxError("linalg.power", ctx); err != nil {
				return iter, warm, err
			}
		}
		if faultinject.Enabled() {
			fiKernelPanic.Panic()
		}
		if err := q.VecMulInto(tmp, dst); err != nil {
			return iter, warm, err
		}
		var delta, norm float64
		for i := range dst {
			v := dst[i] + tmp[i]*invRate
			d := v - dst[i]
			if d < 0 {
				d = -d
			}
			delta += d
			dst[i] = v
			norm += v
		}
		metPowerIters.Inc()
		if math.IsNaN(delta) || math.IsNaN(norm) {
			return iter + 1, warm, &SolveError{Site: "linalg.power", Kind: FailNaN, Index: -1,
				Err: fmt.Errorf("linalg: power iterate went non-finite at iteration %d", iter)}
		}
		if norm <= 0 {
			return iter + 1, warm, &SolveError{Site: "linalg.power", Kind: FailNotConverged, Index: -1,
				Err: fmt.Errorf("linalg: power iterate vanished at iteration %d", iter)}
		}
		normalize(dst)
		rel := delta / norm
		if rel <= powerTol {
			metPowerConverged.Inc()
			metPowerResidual.Set(rel)
			return iter + 1, warm, nil
		}
		// Stall acceptance mirrors SteadyStateGS: when the per-iteration
		// improvement dies at the rounding floor, the iterate is as
		// converged as float64 allows.
		if delta >= prev*0.98 {
			if stall++; stall >= 20 && rel <= powerStallTol {
				metPowerConverged.Inc()
				metPowerResidual.Set(rel)
				return iter + 1, warm, nil
			}
		} else {
			stall = 0
		}
		prev = delta
	}
	metPowerExhausted.Inc()
	return powerMaxIters, warm, &SolveError{Site: "linalg.power", Kind: FailNotConverged, Index: -1,
		Err: fmt.Errorf("%w: uniformized power iteration after %d iterations", ErrNotConverged, powerMaxIters)}
}
