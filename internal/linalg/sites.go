package linalg

import "nvrel/internal/faultinject"

// Fault-injection sites of the solver kernels, resolved once like the obs
// metric handles. Every hook sits behind the package-global enabled gate
// (one atomic load, no allocation when chaos is off), and the kernels
// additionally pre-check faultinject.Enabled() so the disabled hot path
// pays a single load per sweep.
var (
	// fiGSStall forces SteadyStateGS to give up mid-solve with a typed
	// not-converged error, exercising the GS -> GTH fallback.
	fiGSStall = faultinject.SiteFor("linalg.gs.stall")
	// fiGSPoison writes a NaN into the Gauss-Seidel iterate, exercising
	// the per-sweep non-finite detection.
	fiGSPoison = faultinject.SiteFor("linalg.gs.poison")
	// fiKernelPanic panics inside the iterative kernels, exercising the
	// recover-and-wrap layer of the callers.
	fiKernelPanic = faultinject.SiteFor("linalg.kernel.panic")
	// fiGSDrift perturbs an ACCEPTED Gauss-Seidel iterate with a small
	// simplex-preserving mass transfer: the result passes every
	// distribution guard (finite, non-negative, sums to one) yet differs
	// from an independent solve by far more than the cross-path agreement
	// floor. It models the one failure class the fallback chain cannot
	// catch — a converged-but-wrong iterate — and exists so the shadow
	// verification layer (internal/shadow) has a silent corruption to
	// detect. Deliberately NOT in the default chaos plan: no single-path
	// guard can flag it, only N-version cross-checking can.
	fiGSDrift = faultinject.SiteFor("linalg.gs.drift")
)
