package linalg

import "nvrel/internal/faultinject"

// Fault-injection sites of the solver kernels, resolved once like the obs
// metric handles. Every hook sits behind the package-global enabled gate
// (one atomic load, no allocation when chaos is off), and the kernels
// additionally pre-check faultinject.Enabled() so the disabled hot path
// pays a single load per sweep.
var (
	// fiGSStall forces SteadyStateGS to give up mid-solve with a typed
	// not-converged error, exercising the GS -> GTH fallback.
	fiGSStall = faultinject.SiteFor("linalg.gs.stall")
	// fiGSPoison writes a NaN into the Gauss-Seidel iterate, exercising
	// the per-sweep non-finite detection.
	fiGSPoison = faultinject.SiteFor("linalg.gs.poison")
	// fiKernelPanic panics inside the iterative kernels, exercising the
	// recover-and-wrap layer of the callers.
	fiKernelPanic = faultinject.SiteFor("linalg.kernel.panic")
)
