package linalg

import "math"

// ApplySeed installs a warm-start initial guess into an iterative solver's
// iterate vector. A seed is usable only when it is plausibly a point near
// the probability simplex the iteration converges on: the right length,
// every entry finite and non-negative, and positive total mass. A usable
// seed is copied into dst and normalized; anything else leaves dst
// untouched and reports false, so the caller falls back to the uniform
// vector — a corrupted or mismatched seed can cost the warm-start benefit
// but can never change what the iteration converges to.
//
// A nil seed means "cold by design" and is not counted by the seed
// metrics; a non-nil seed increments linalg.seed.warm when accepted and
// linalg.seed.rejected when refused, so chaos runs that corrupt seeds
// leave counter evidence of the graceful degradation.
func ApplySeed(dst, seed []float64) bool {
	if seed == nil {
		return false
	}
	if len(seed) != len(dst) {
		metSeedRejected.Inc()
		return false
	}
	var sum float64
	for _, v := range seed {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			metSeedRejected.Inc()
			return false
		}
		sum += v
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		metSeedRejected.Inc()
		return false
	}
	inv := 1 / sum
	for i, v := range seed {
		dst[i] = v * inv
	}
	metSeedWarm.Inc()
	return true
}
