package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

// birthDeathGenerator builds the generator of a simple birth-death CTMC with
// birth rate lam and death rate mu on states 0..n-1.
func birthDeathGenerator(n int, lam, mu float64) *Dense {
	q := NewDense(n, n)
	for i := 0; i < n; i++ {
		if i+1 < n {
			q.Set(i, i+1, lam)
			q.Add(i, i, -lam)
		}
		if i > 0 {
			q.Set(i, i-1, mu)
			q.Add(i, i, -mu)
		}
	}
	return q
}

func TestSteadyStateGTHBirthDeath(t *testing.T) {
	// M/M/1/K queue: pi(i) proportional to rho^i.
	const (
		n   = 5
		lam = 2.0
		mu  = 3.0
	)
	q := birthDeathGenerator(n, lam, mu)
	pi, err := SteadyStateGTH(q)
	if err != nil {
		t.Fatalf("SteadyStateGTH: %v", err)
	}
	rho := lam / mu
	var norm float64
	for i := 0; i < n; i++ {
		norm += math.Pow(rho, float64(i))
	}
	for i := 0; i < n; i++ {
		want := math.Pow(rho, float64(i)) / norm
		if !almostEqual(pi[i], want, 1e-12) {
			t.Errorf("pi[%d] = %g, want %g", i, pi[i], want)
		}
	}
}

func TestSteadyStateGTHTwoState(t *testing.T) {
	// Classic up/down machine: pi_up = mu/(lam+mu).
	q, _ := NewDenseFrom([][]float64{
		{-0.1, 0.1},
		{5, -5},
	})
	pi, err := SteadyStateGTH(q)
	if err != nil {
		t.Fatalf("SteadyStateGTH: %v", err)
	}
	if !almostEqual(pi[0], 5/5.1, 1e-12) {
		t.Errorf("pi[0] = %g, want %g", pi[0], 5/5.1)
	}
}

func TestSteadyStateGTHSingleState(t *testing.T) {
	pi, err := SteadyStateGTH(NewDense(1, 1))
	if err != nil {
		t.Fatalf("SteadyStateGTH: %v", err)
	}
	if pi[0] != 1 {
		t.Errorf("pi = %v, want [1]", pi)
	}
}

func TestSteadyStateGTHReducibleFails(t *testing.T) {
	// State 1 unreachable-from and not-reaching state 0: elimination of
	// state 1 has no outgoing mass to lower states.
	q := NewDense(2, 2) // all-zero generator: two absorbing states
	if _, err := SteadyStateGTH(q); err == nil {
		t.Error("expected failure for reducible chain")
	}
}

func TestGTHMatchesLU(t *testing.T) {
	// Stiff generator: rates spanning six orders of magnitude.
	q, _ := NewDenseFrom([][]float64{
		{-1e-3, 1e-3, 0},
		{0, -1e-4, 1e-4},
		{1e2, 0, -1e2},
	})
	gth, err := SteadyStateGTH(q)
	if err != nil {
		t.Fatalf("GTH: %v", err)
	}
	lu, err := SteadyStateLU(q)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	if !vecAlmostEqual(gth, lu, 1e-9) {
		t.Errorf("GTH %v != LU %v", gth, lu)
	}
}

func TestGTHMatchesLUProperty(t *testing.T) {
	f := func(seed uint32) bool {
		// Random irreducible generator: strictly positive off-diagonals.
		const n = 4
		q := NewDense(n, n)
		m := randMatrix(n, n, seed)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				rate := math.Abs(m.At(i, j)) + 0.01
				q.Set(i, j, rate)
				rowSum += rate
			}
			q.Set(i, i, -rowSum)
		}
		gth, err := SteadyStateGTH(q)
		if err != nil {
			return false
		}
		lu, err := SteadyStateLU(q)
		if err != nil {
			return false
		}
		return vecAlmostEqual(gth, lu, 1e-8) && almostEqual(Sum(gth), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSteadyStateDTMC(t *testing.T) {
	p, _ := NewDenseFrom([][]float64{
		{0.5, 0.5},
		{0.25, 0.75},
	})
	pi, err := SteadyStateDTMC(p)
	if err != nil {
		t.Fatalf("SteadyStateDTMC: %v", err)
	}
	// Balance: pi0*0.5 = pi1*0.25 -> pi1 = 2*pi0 -> pi = (1/3, 2/3).
	if !vecAlmostEqual(pi, []float64{1.0 / 3, 2.0 / 3}, 1e-12) {
		t.Errorf("pi = %v, want [1/3 2/3]", pi)
	}
}

func TestSteadyStateDTMCValidation(t *testing.T) {
	bad, _ := NewDenseFrom([][]float64{
		{0.5, 0.4}, // row does not sum to 1
		{0.25, 0.75},
	})
	if _, err := SteadyStateDTMC(bad); err == nil {
		t.Error("expected ErrNotStochastic")
	}
	neg, _ := NewDenseFrom([][]float64{
		{1.5, -0.5},
		{0.25, 0.75},
	})
	if _, err := SteadyStateDTMC(neg); err == nil {
		t.Error("expected error for negative entries")
	}
}

func TestCheckGenerator(t *testing.T) {
	good := birthDeathGenerator(3, 1, 2)
	if err := CheckGenerator(good, 1e-12); err != nil {
		t.Errorf("CheckGenerator(good) = %v", err)
	}
	bad := good.Clone()
	bad.Set(0, 1, -1)
	if err := CheckGenerator(bad, 1e-12); err == nil {
		t.Error("expected error for negative off-diagonal")
	}
	unbalanced := good.Clone()
	unbalanced.Add(0, 0, 0.5)
	if err := CheckGenerator(unbalanced, 1e-12); err == nil {
		t.Error("expected error for non-zero row sum")
	}
	if err := CheckGenerator(NewDense(2, 3), 1e-12); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestNormalizeAndSumAndDot(t *testing.T) {
	v := []float64{1, 3}
	Normalize(v)
	if !vecAlmostEqual(v, []float64{0.25, 0.75}, 1e-15) {
		t.Errorf("Normalize = %v", v)
	}
	if got := Sum(v); !almostEqual(got, 1, 1e-15) {
		t.Errorf("Sum = %g", got)
	}
	d, err := Dot([]float64{1, 2}, []float64{3, 4})
	if err != nil || d != 11 {
		t.Errorf("Dot = %g, %v; want 11", d, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Dot should reject length mismatch")
	}
	// Normalizing the zero vector must not divide by zero.
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize(zero) = %v", z)
	}
}
