package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func vecAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestNewDenseFrom(t *testing.T) {
	m, err := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewDenseFrom: %v", err)
	}
	if r, c := m.Dims(); r != 2 || c != 2 {
		t.Fatalf("Dims = (%d,%d), want (2,2)", r, c)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g, want 3", m.At(1, 0))
	}
}

func TestNewDenseFromErrors(t *testing.T) {
	tests := []struct {
		name string
		give [][]float64
	}{
		{name: "empty", give: nil},
		{name: "empty row", give: [][]float64{{}}},
		{name: "ragged", give: [][]float64{{1, 2}, {3}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewDenseFrom(tt.give); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestIdentityMul(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	id := Identity(3)
	got, err := m.Mul(id)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("M*I != M at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b, _ := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want, _ := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Errorf("(%d,%d) = %g, want %g", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("expected dimension mismatch")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Error("expected dimension mismatch for MulVec")
	}
	if _, err := a.VecMul([]float64{1, 2, 3}); err == nil {
		t.Error("expected dimension mismatch for VecMul")
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	mv, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if !vecAlmostEqual(mv, []float64{3, 7}, 0) {
		t.Errorf("MulVec = %v, want [3 7]", mv)
	}
	vm, err := m.VecMul([]float64{1, 1})
	if err != nil {
		t.Fatalf("VecMul: %v", err)
	}
	if !vecAlmostEqual(vm, []float64{4, 6}, 0) {
		t.Errorf("VecMul = %v, want [4 6]", vm)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("transpose dims = (%d,%d)", r, c)
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %g, want 6", tr.At(2, 1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewDense(2, 2)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestScaleAddMat(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Errorf("Scale: At(1,1) = %g, want 8", m.At(1, 1))
	}
	other, _ := NewDenseFrom([][]float64{{1, 1}, {1, 1}})
	if err := m.AddMat(other); err != nil {
		t.Fatalf("AddMat: %v", err)
	}
	if m.At(0, 0) != 3 {
		t.Errorf("AddMat: At(0,0) = %g, want 3", m.At(0, 0))
	}
	if err := m.AddMat(NewDense(3, 3)); err == nil {
		t.Error("AddMat should reject mismatched dims")
	}
}

func TestRowIsCopy(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row returned aliased storage")
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := NewDenseFrom([][]float64{{-7, 2}, {3, 4}})
	if got := m.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %g, want 7", got)
	}
}

// Property: (A*B)*v == A*(B*v) for random small matrices.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed uint32) bool {
		a := randMatrix(3, 3, seed)
		b := randMatrix(3, 3, seed+1)
		v := []float64{0.5, -1.5, 2.0}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		lhs, err := ab.MulVec(v)
		if err != nil {
			return false
		}
		bv, err := b.MulVec(v)
		if err != nil {
			return false
		}
		rhs, err := a.MulVec(bv)
		if err != nil {
			return false
		}
		return vecAlmostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randMatrix produces a deterministic pseudo-random matrix from a seed using
// a splitmix-style generator (test helper; not for production randomness).
func randMatrix(rows, cols int, seed uint32) *Dense {
	m := NewDense(rows, cols)
	s := uint64(seed)*2654435769 + 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%2000)/1000 - 1
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, next())
		}
	}
	return m
}
