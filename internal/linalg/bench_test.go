package linalg

import "testing"

func benchGenerator(n int) *Dense {
	q := NewDense(n, n)
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			rate := float64((i*31+j*17)%97+1) / 100
			q.Set(i, j, rate)
			row += rate
		}
		q.Set(i, i, -row)
	}
	return q
}

func BenchmarkSteadyStateGTH(b *testing.B) {
	q := benchGenerator(70) // the six-version model's state count
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SteadyStateGTH(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateLU(b *testing.B) {
	q := benchGenerator(70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SteadyStateLU(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolve(b *testing.B) {
	a := benchGenerator(70)
	for i := 0; i < 70; i++ {
		a.Add(i, i, -1) // make it non-singular
	}
	rhs := make([]float64, 70)
	rhs[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLinear(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniformizedPower(b *testing.B) {
	q := benchGenerator(70)
	pi := make([]float64, 70)
	pi[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UniformizedPower(q, pi, 1.5, 0, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	m := benchGenerator(70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mul(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoissonWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PoissonWeights(200, 1e-12)
	}
}
