package linalg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
)

// FailureKind classifies why a solve result or input was rejected. It is
// the machine-readable half of SolveError: fallback chains branch on it
// and chaos reports aggregate by it.
type FailureKind uint8

// Failure kinds, roughly in the order the guards check them.
const (
	// FailUnknown is the zero kind, used only for wrapped foreign errors.
	FailUnknown FailureKind = iota
	// FailNaN: a NaN appeared in a vector or matrix.
	FailNaN
	// FailInf: an infinity appeared in a vector or matrix.
	FailInf
	// FailNegative: a probability fell below -NegativeTol.
	FailNegative
	// FailSimplex: a distribution's mass deviated from 1 beyond SimplexTol.
	FailSimplex
	// FailGenerator: a generator matrix violated its sign pattern or
	// conservation (rows of Q sum to zero).
	FailGenerator
	// FailNotConverged: an iterative solver ran out of budget.
	FailNotConverged
	// FailPanic: a solver kernel panicked and was recovered.
	FailPanic
	// FailDeadline: the solve's context expired or was cancelled.
	FailDeadline
)

func (k FailureKind) String() string {
	switch k {
	case FailNaN:
		return "nan"
	case FailInf:
		return "inf"
	case FailNegative:
		return "negative"
	case FailSimplex:
		return "simplex"
	case FailGenerator:
		return "generator"
	case FailNotConverged:
		return "not-converged"
	case FailPanic:
		return "panic"
	case FailDeadline:
		return "deadline"
	default:
		return "unknown"
	}
}

// Validation tolerances. A steady-state or transient probability may dip
// below zero by rounding; beyond NegativeTol it is a wrong answer. A
// distribution's mass is renormalized by the solvers, so SimplexTol only
// has to absorb the float error of the final normalization and reward
// dot products.
const (
	// NegativeTol is the most negative a probability may be before the
	// guard rejects the vector.
	NegativeTol = 1e-9
	// SimplexTol is the largest |sum - 1| a distribution may carry.
	SimplexTol = 1e-8
	// GeneratorTol is the largest relative conservation defect (total
	// entry sum over total absolute mass) a generator may carry.
	GeneratorTol = 1e-8
)

// SolveError is the typed error every hardened solve surfaces: which site
// failed, how, and with what residual evidence. The contract of the
// hardened pipeline is that a fault either recovers or becomes one of
// these — never a silently wrong number.
type SolveError struct {
	// Site names the guard or kernel that rejected the solve, e.g.
	// "linalg.gs", "petri.solve.gth", "nvp.solve".
	Site string
	// Kind classifies the failure.
	Kind FailureKind
	// Index is the offending vector/matrix slot, -1 when not applicable.
	Index int
	// Value is the offending value (the NaN, the negative mass, ...).
	Value float64
	// Residual is the guard's measured defect: |sum-1| for simplex
	// failures, the conservation defect for generators, the final
	// iteration delta for convergence failures.
	Residual float64
	// Err is the wrapped cause, when the failure wraps another error.
	Err error
}

func (e *SolveError) Error() string {
	msg := fmt.Sprintf("solve error at %s [%s]", e.Site, e.Kind)
	if e.Index >= 0 {
		msg += fmt.Sprintf(": entry %d = %g", e.Index, e.Value)
	}
	if e.Residual != 0 {
		msg += fmt.Sprintf(" (residual %.3g)", e.Residual)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the wrapped cause to errors.Is/As chains.
func (e *SolveError) Unwrap() error { return e.Err }

// AsSolveError unwraps err to a *SolveError when one is in the chain.
func AsSolveError(err error) (*SolveError, bool) {
	var se *SolveError
	if err == nil {
		return nil, false
	}
	ok := errors.As(err, &se)
	return se, ok
}

// NewPanicError converts a recovered panic value into a typed SolveError
// carrying the stack, so fallback chains can keep going while chaos
// reports still see what blew up.
func NewPanicError(site string, recovered any) *SolveError {
	return &SolveError{
		Site:  site,
		Kind:  FailPanic,
		Index: -1,
		Err:   fmt.Errorf("recovered panic: %v\n%s", recovered, debug.Stack()),
	}
}

// CtxError wraps a context expiry into a typed SolveError; it returns nil
// when ctx is nil or still live, so it doubles as the solvers' periodic
// deadline check.
func CtxError(site string, ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &SolveError{Site: site, Kind: FailDeadline, Index: -1, Err: err}
	}
	return nil
}

// ValidateDistribution checks a probability vector: every entry finite,
// none below -NegativeTol, total mass within SimplexTol of 1. It is the
// result guard every steady-state and transient solution passes before a
// caller sees it. The success path is allocation-free.
func ValidateDistribution(site string, v []float64) error {
	if len(v) == 0 {
		return &SolveError{Site: site, Kind: FailSimplex, Index: -1, Residual: 1}
	}
	var sum float64
	for i, x := range v {
		if math.IsNaN(x) {
			return &SolveError{Site: site, Kind: FailNaN, Index: i, Value: x}
		}
		if math.IsInf(x, 0) {
			return &SolveError{Site: site, Kind: FailInf, Index: i, Value: x}
		}
		if x < -NegativeTol {
			return &SolveError{Site: site, Kind: FailNegative, Index: i, Value: x, Residual: -x}
		}
		sum += x
	}
	if d := math.Abs(sum - 1); d > SimplexTol {
		return &SolveError{Site: site, Kind: FailSimplex, Index: -1, Residual: d}
	}
	return nil
}

// ValidateFinite checks every entry of v is finite and no entry is below
// -NegativeTol — the guard for non-simplex vectors (expected sojourn
// times, reward integrals). The success path is allocation-free.
func ValidateFinite(site string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) {
			return &SolveError{Site: site, Kind: FailNaN, Index: i, Value: x}
		}
		if math.IsInf(x, 0) {
			return &SolveError{Site: site, Kind: FailInf, Index: i, Value: x}
		}
		if x < -NegativeTol {
			return &SolveError{Site: site, Kind: FailNegative, Index: i, Value: x, Residual: -x}
		}
	}
	return nil
}

// ValidateGeneratorCSR checks a CTMC generator in CSR form (either
// orientation — the sign pattern and total conservation are transpose
// invariant): every value finite, off-diagonals non-negative, diagonals
// non-positive, and the total entry sum zero relative to the total
// absolute mass. The total-sum check is what catches a single perturbed
// rate: corrupting one off-diagonal without its diagonal twin breaks
// conservation by the full perturbation. The success path is one O(nnz)
// scan with no allocation.
func ValidateGeneratorCSR(site string, q *CSR) error {
	rows, _ := q.Dims()
	var total, totalAbs float64
	for i := 0; i < rows; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			v := q.Vals[k]
			if math.IsNaN(v) {
				return &SolveError{Site: site, Kind: FailNaN, Index: k, Value: v}
			}
			if math.IsInf(v, 0) {
				return &SolveError{Site: site, Kind: FailInf, Index: k, Value: v}
			}
			if q.ColIdx[k] == i {
				if v > 0 {
					return &SolveError{Site: site, Kind: FailGenerator, Index: k, Value: v}
				}
			} else if v < 0 {
				return &SolveError{Site: site, Kind: FailGenerator, Index: k, Value: v}
			}
			total += v
			totalAbs += math.Abs(v)
		}
	}
	if totalAbs > 0 {
		if d := math.Abs(total) / totalAbs; d > GeneratorTol {
			return &SolveError{Site: site, Kind: FailGenerator, Index: -1, Residual: d}
		}
	}
	return nil
}
