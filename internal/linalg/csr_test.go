package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomGenerator builds a random irreducible CTMC generator shaped like a
// reachability graph: every state has a handful of successors (a ring edge
// guarantees irreducibility, plus 0..3 random extras), rates spread over
// several orders of magnitude like the paper's repair-vs-failure ratios.
func randomGenerator(rng *rand.Rand, n int) *Dense {
	q := NewDense(n, n)
	for i := 0; i < n; i++ {
		addRate := func(j int) {
			rate := math.Pow(10, -3+4*rng.Float64()) // 1e-3 .. 1e1
			q.Add(i, j, rate)
			q.Add(i, i, -rate)
		}
		addRate((i + 1) % n)
		for extra := rng.Intn(3); extra > 0; extra-- {
			j := rng.Intn(n)
			if j != i {
				addRate(j)
			}
		}
	}
	return q
}

func TestCSRFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 25} {
		q := randomGenerator(rng, n)
		c := CSRFromDense(q)
		back := c.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if back.At(i, j) != q.At(i, j) {
					t.Fatalf("n=%d: round trip (%d,%d) = %v, want %v", n, i, j, back.At(i, j), q.At(i, j))
				}
				if c.At(i, j) != q.At(i, j) {
					t.Fatalf("n=%d: At(%d,%d) = %v, want %v", n, i, j, c.At(i, j), q.At(i, j))
				}
			}
		}
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for rep := 0; rep < 20; rep++ {
		n := 1 + rng.Intn(30)
		q := randomGenerator(rng, n)
		c := CSRFromDense(q)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}

		// Reference products straight from the dense entries.
		wantAx := make([]float64, n)
		wantXA := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				wantAx[i] += q.At(i, j) * x[j]
				wantXA[j] += x[i] * q.At(i, j)
			}
		}

		gotAx := make([]float64, n)
		if err := c.MulVecInto(gotAx, x); err != nil {
			t.Fatalf("MulVecInto: %v", err)
		}
		gotXA := make([]float64, n)
		if err := c.VecMulInto(gotXA, x); err != nil {
			t.Fatalf("VecMulInto: %v", err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(gotAx[i]-wantAx[i]) > 1e-12*(1+math.Abs(wantAx[i])) {
				t.Fatalf("rep %d: (A x)[%d] = %v, want %v", rep, i, gotAx[i], wantAx[i])
			}
			if math.Abs(gotXA[i]-wantXA[i]) > 1e-12*(1+math.Abs(wantXA[i])) {
				t.Fatalf("rep %d: (x A)[%d] = %v, want %v", rep, i, gotXA[i], wantXA[i])
			}
		}
	}
}

func TestMulCSRIntoMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for rep := 0; rep < 10; rep++ {
		n := 2 + rng.Intn(20)
		q := randomGenerator(rng, n)
		c := CSRFromDense(q)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		want := NewDense(n, n)
		if err := want.MulInto(a, q); err != nil {
			t.Fatalf("MulInto: %v", err)
		}
		got := NewDense(n, n)
		if err := got.MulCSRInto(a, c); err != nil {
			t.Fatalf("MulCSRInto: %v", err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-12*(1+math.Abs(want.At(i, j))) {
					t.Fatalf("rep %d: (%d,%d) = %v, want %v", rep, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestMaxAbsDiag(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := randomGenerator(rng, 15)
	c := CSRFromDense(q)
	var want float64
	for i := 0; i < 15; i++ {
		if d := math.Abs(q.At(i, i)); d > want {
			want = d
		}
	}
	if got := c.MaxAbsDiag(); got != want {
		t.Fatalf("MaxAbsDiag = %v, want %v", got, want)
	}
}

// TestSteadyStateGSMatchesGTH: the property at the heart of the sparse
// path — on random reachability-shaped generators the Gauss-Seidel
// stationary vector agrees with dense GTH elimination to 1e-12.
func TestSteadyStateGSMatchesGTH(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ws := NewWorkspace()
	for rep := 0; rep < 25; rep++ {
		n := 1 + rng.Intn(60)
		q := randomGenerator(rng, n)
		want, err := SteadyStateGTH(q)
		if err != nil {
			t.Fatalf("rep %d: GTH: %v", rep, err)
		}

		// Transpose pattern: GS consumes incoming edges per state.
		qt := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				qt.Set(j, i, q.At(i, j))
			}
		}
		got := make([]float64, n)
		if _, err := ws.SteadyStateGS(CSRFromDense(qt), got); err != nil {
			t.Fatalf("rep %d (n=%d): GS: %v", rep, n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("rep %d (n=%d): pi[%d] = %.17g, want %.17g (diff %g)",
					rep, n, i, got[i], want[i], got[i]-want[i])
			}
		}
	}
}

// TestUniformizedCSRMatchesDense: the matrix-free transient kernels agree
// with the dense uniformization kernels to 1e-12 on random generators.
func TestUniformizedCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ws := NewWorkspace()
	for rep := 0; rep < 15; rep++ {
		n := 1 + rng.Intn(40)
		q := randomGenerator(rng, n)
		c := CSRFromDense(q)
		pi := make([]float64, n)
		pi[rng.Intn(n)] = 1
		for _, horizon := range []float64{0, 0.7, 13} {
			wantP, err := UniformizedPower(q, pi, horizon, 0, 1e-12)
			if err != nil {
				t.Fatalf("dense power: %v", err)
			}
			gotP, err := ws.UniformizedPowerCSR(c, pi, horizon, 0, 1e-12, nil)
			if err != nil {
				t.Fatalf("csr power: %v", err)
			}
			wantU, err := UniformizedIntegral(q, pi, horizon, 0, 1e-12)
			if err != nil {
				t.Fatalf("dense integral: %v", err)
			}
			gotU, err := ws.UniformizedIntegralCSR(c, pi, horizon, 0, 1e-12, nil)
			if err != nil {
				t.Fatalf("csr integral: %v", err)
			}
			for i := 0; i < n; i++ {
				if math.Abs(gotP[i]-wantP[i]) > 1e-12 {
					t.Fatalf("rep %d t=%g: power[%d] = %.17g, want %.17g", rep, horizon, i, gotP[i], wantP[i])
				}
				if math.Abs(gotU[i]-wantU[i]) > 1e-12*(1+horizon) {
					t.Fatalf("rep %d t=%g: integral[%d] = %.17g, want %.17g", rep, horizon, i, gotU[i], wantU[i])
				}
			}
		}
	}
}

// TestWorkspaceCSRPooling: released shells are reused (same backing arrays)
// and come back with zeroed values.
func TestWorkspaceCSRPooling(t *testing.T) {
	ws := NewWorkspace()
	c := ws.CSR(3, 3, 5)
	c.Vals[0] = 42
	c.ColIdx[0] = 2
	ws.PutCSR(c)
	again := ws.CSR(3, 3, 5)
	if again != c {
		t.Fatal("pooled CSR not reused")
	}
	if again.Vals[0] != 0 {
		t.Fatalf("reused Vals not zeroed: %v", again.Vals[0])
	}
	other := ws.CSR(3, 3, 6)
	if other == c {
		t.Fatal("pool returned a shell with the wrong nnz")
	}
}

// TestSteadyStateGSNoAlloc: with a warmed workspace and caller-owned
// destination, repeated GS solves must be allocation-free.
func TestSteadyStateGSNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := randomGenerator(rng, 30)
	qt := NewDense(30, 30)
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			qt.Set(j, i, q.At(i, j))
		}
	}
	c := CSRFromDense(qt)
	dst := make([]float64, 30)
	ws := NewWorkspace()
	if _, err := ws.SteadyStateGS(c, dst); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.SteadyStateGS(c, dst); err != nil {
			t.Fatalf("SteadyStateGS: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("allocations = %v, want 0", allocs)
	}
}

// BenchmarkSteadyStateGSNoAlloc guards the allocation-free property in
// benchmark form; -benchmem must report 0 allocs/op.
func BenchmarkSteadyStateGSNoAlloc(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	q := randomGenerator(rng, 30)
	qt := NewDense(30, 30)
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			qt.Set(j, i, q.At(i, j))
		}
	}
	c := CSRFromDense(qt)
	dst := make([]float64, 30)
	ws := NewWorkspace()
	if _, err := ws.SteadyStateGS(c, dst); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.SteadyStateGS(c, dst); err != nil {
			b.Fatal(err)
		}
	}
}
