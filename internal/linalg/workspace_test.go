package linalg

import (
	"testing"
)

// testGenerator returns a small irreducible CTMC generator.
func testGenerator() *Dense {
	q := NewDense(4, 4)
	rows := [][]float64{
		{-3, 1, 1, 1},
		{0.5, -2, 1, 0.5},
		{2, 1, -4, 1},
		{0.25, 0.25, 0.5, -1},
	}
	for i, r := range rows {
		for j, v := range r {
			q.Set(i, j, v)
		}
	}
	return q
}

// TestWorkspaceUniformizedPowerMatchesPlain: the pooled kernel must be
// float-for-float identical to the allocating one, including on reuse.
func TestWorkspaceUniformizedPowerMatchesPlain(t *testing.T) {
	q := testGenerator()
	pi := []float64{1, 0, 0, 0}
	ws := NewWorkspace()
	for rep := 0; rep < 3; rep++ {
		for _, tt := range []float64{0, 0.3, 1.7, 12} {
			want, err := UniformizedPower(q, pi, tt, 0, 1e-12)
			if err != nil {
				t.Fatalf("plain t=%g: %v", tt, err)
			}
			got, err := ws.UniformizedPower(q, pi, tt, 0, 1e-12, nil)
			if err != nil {
				t.Fatalf("ws t=%g: %v", tt, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("rep %d t=%g: got[%d] = %v, want %v", rep, tt, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWorkspaceUniformizedIntegralMatchesPlain: same contract for the
// accumulated-occupancy kernel.
func TestWorkspaceUniformizedIntegralMatchesPlain(t *testing.T) {
	q := testGenerator()
	pi := []float64{0.25, 0.25, 0.25, 0.25}
	ws := NewWorkspace()
	for rep := 0; rep < 3; rep++ {
		for _, tt := range []float64{0, 0.5, 4} {
			want, err := UniformizedIntegral(q, pi, tt, 0, 1e-12)
			if err != nil {
				t.Fatalf("plain t=%g: %v", tt, err)
			}
			got, err := ws.UniformizedIntegral(q, pi, tt, 0, 1e-12, nil)
			if err != nil {
				t.Fatalf("ws t=%g: %v", tt, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("rep %d t=%g: got[%d] = %v, want %v", rep, tt, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWorkspaceGTHMatchesPlain: pooled GTH elimination equals the
// allocating path and must not clobber its input.
func TestWorkspaceGTHMatchesPlain(t *testing.T) {
	q := testGenerator()
	snapshot := NewDense(4, 4)
	snapshot.CopyFrom(q)
	want, err := SteadyStateGTH(q)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	ws := NewWorkspace()
	for rep := 0; rep < 3; rep++ {
		got, err := ws.SteadyStateGTH(q, nil)
		if err != nil {
			t.Fatalf("ws rep %d: %v", rep, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rep %d: got[%d] = %v, want %v", rep, i, got[i], want[i])
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if q.At(i, j) != snapshot.At(i, j) {
				t.Fatalf("input generator was modified at (%d,%d)", i, j)
			}
		}
	}
}

// TestWorkspacePoissonMemo: memoized weights are identical to the direct
// computation, and the memo returns the same backing slice on a hit.
func TestWorkspacePoissonMemo(t *testing.T) {
	ws := NewWorkspace()
	want, wantRight := PoissonWeights(37.5, 1e-12)
	got, right := ws.Poisson(37.5, 1e-12)
	if right != wantRight {
		t.Fatalf("right = %d, want %d", right, wantRight)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("weights[%d] = %v, want %v", k, got[k], want[k])
		}
	}
	again, _ := ws.Poisson(37.5, 1e-12)
	if &again[0] != &got[0] {
		t.Error("memo miss on identical (lambda, epsilon)")
	}
}

// TestUniformizedPowerNoAlloc: after warm-up, the workspace kernel with a
// caller-provided destination must run allocation-free — the point of the
// whole workspace layer.
func TestUniformizedPowerNoAlloc(t *testing.T) {
	q := testGenerator()
	pi := []float64{1, 0, 0, 0}
	dst := make([]float64, 4)
	ws := NewWorkspace()
	if _, err := ws.UniformizedPower(q, pi, 1.7, 0, 1e-12, dst); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ws.UniformizedPower(q, pi, 1.7, 0, 1e-12, dst); err != nil {
			t.Fatalf("UniformizedPower: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state allocations = %v, want 0", allocs)
	}
}

// BenchmarkUniformizedPowerNoAlloc guards the allocation-free property in
// benchmark form; -benchmem must report 0 allocs/op after warm-up.
func BenchmarkUniformizedPowerNoAlloc(b *testing.B) {
	q := testGenerator()
	pi := []float64{1, 0, 0, 0}
	dst := make([]float64, 4)
	ws := NewWorkspace()
	if _, err := ws.UniformizedPower(q, pi, 1.7, 0, 1e-12, dst); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.UniformizedPower(q, pi, 1.7, 0, 1e-12, dst); err != nil {
			b.Fatal(err)
		}
	}
}
