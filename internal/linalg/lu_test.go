package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLUSolveKnown(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	want := []float64{2, 3, -1}
	if !vecAlmostEqual(x, want, 1e-10) {
		t.Errorf("x = %v, want %v", x, want)
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factorize(NewDense(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestLUSolveWrongLength(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if _, err := f.Solve([]float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestLUDet(t *testing.T) {
	a, _ := NewDenseFrom([][]float64{
		{3, 0, 0},
		{0, 2, 0},
		{0, 0, 5},
	})
	f, err := Factorize(a)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if got := f.Det(); !almostEqual(got, 30, 1e-12) {
		t.Errorf("Det = %g, want 30", got)
	}
	// Determinant sign under a row swap.
	b, _ := NewDenseFrom([][]float64{
		{0, 1},
		{1, 0},
	})
	fb, err := Factorize(b)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if got := fb.Det(); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Det = %g, want -1", got)
	}
}

func TestLUPivotingRequired(t *testing.T) {
	// Leading zero forces a pivot swap.
	a, _ := NewDenseFrom([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := SolveLinear(a, []float64{3, 7})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if !vecAlmostEqual(x, []float64{7, 3}, 1e-12) {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

// Property: for random well-conditioned matrices, A * Solve(A, b) == b.
func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed uint32) bool {
		a := randMatrix(4, 4, seed)
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < 4; i++ {
			a.Add(i, i, 5)
		}
		b := []float64{1, -2, 3, -4}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		return vecAlmostEqual(ax, b, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLUSolveHilbertModerate(t *testing.T) {
	// A mildly ill-conditioned system still solves to reasonable accuracy.
	const n = 5
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
		}
	}
	xTrue := []float64{1, 1, 1, 1, 1}
	b, err := a.MulVec(xTrue)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-6 {
			t.Errorf("x[%d] = %g, want 1", i, x[i])
		}
	}
}
