package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonWeightsSumToOne(t *testing.T) {
	for _, lambda := range []float64{0, 0.1, 1, 10, 100, 5000} {
		w, right := PoissonWeights(lambda, 1e-12)
		if len(w) != right+1 {
			t.Fatalf("lambda=%g: len(w)=%d, right=%d", lambda, len(w), right)
		}
		if s := Sum(w); !almostEqual(s, 1, 1e-12) {
			t.Errorf("lambda=%g: sum = %g, want 1", lambda, s)
		}
	}
}

func TestPoissonWeightsKnownValues(t *testing.T) {
	// Poisson(1): P[K=0] = e^-1, P[K=1] = e^-1, P[K=2] = e^-1/2.
	w, _ := PoissonWeights(1, 1e-14)
	e := math.Exp(-1)
	if !almostEqual(w[0], e, 1e-12) || !almostEqual(w[1], e, 1e-12) || !almostEqual(w[2], e/2, 1e-12) {
		t.Errorf("w[0..2] = %v %v %v, want %v %v %v", w[0], w[1], w[2], e, e, e/2)
	}
}

func TestPoissonWeightsMeanProperty(t *testing.T) {
	f := func(raw uint8) bool {
		lambda := float64(raw)/4 + 0.25 // (0.25, 64)
		w, _ := PoissonWeights(lambda, 1e-13)
		var mean float64
		for k, p := range w {
			mean += float64(k) * p
		}
		return almostEqual(mean, lambda, 1e-6*math.Max(1, lambda))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPoissonWeightsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative lambda")
		}
	}()
	PoissonWeights(-1, 1e-12)
}

func TestUniformizedPowerTwoState(t *testing.T) {
	// Two-state chain with known transient solution:
	// p01(t) = lam/(lam+mu) * (1 - e^{-(lam+mu)t}).
	const (
		lam = 0.7
		mu  = 1.3
	)
	q, _ := NewDenseFrom([][]float64{
		{-lam, lam},
		{mu, -mu},
	})
	for _, tt := range []float64{0, 0.1, 0.5, 1, 5, 50} {
		got, err := UniformizedPower(q, []float64{1, 0}, tt, 0, 1e-13)
		if err != nil {
			t.Fatalf("t=%g: %v", tt, err)
		}
		want1 := lam / (lam + mu) * (1 - math.Exp(-(lam+mu)*tt))
		if !almostEqual(got[1], want1, 1e-9) {
			t.Errorf("t=%g: p01 = %g, want %g", tt, got[1], want1)
		}
		if !almostEqual(Sum(got), 1, 1e-9) {
			t.Errorf("t=%g: sum = %g", tt, Sum(got))
		}
	}
}

func TestUniformizedPowerZeroGenerator(t *testing.T) {
	q := NewDense(3, 3)
	pi := []float64{0.2, 0.3, 0.5}
	got, err := UniformizedPower(q, pi, 10, 0, 1e-12)
	if err != nil {
		t.Fatalf("UniformizedPower: %v", err)
	}
	if !vecAlmostEqual(got, pi, 1e-15) {
		t.Errorf("got %v, want %v", got, pi)
	}
}

func TestUniformizedPowerConvergesToSteadyState(t *testing.T) {
	q := birthDeathGenerator(4, 1, 2)
	pi0 := []float64{1, 0, 0, 0}
	long, err := UniformizedPower(q, pi0, 200, 0, 1e-13)
	if err != nil {
		t.Fatalf("UniformizedPower: %v", err)
	}
	ss, err := SteadyStateGTH(q)
	if err != nil {
		t.Fatalf("SteadyStateGTH: %v", err)
	}
	if !vecAlmostEqual(long, ss, 1e-8) {
		t.Errorf("transient at t=200 %v != steady state %v", long, ss)
	}
}

func TestUniformizedIntegralTwoState(t *testing.T) {
	// Expected time spent in state 1 over [0,t] starting in 0:
	// integral of p01(s) ds = a*t - a/(lam+mu) * (1 - e^{-(lam+mu)t}),
	// with a = lam/(lam+mu).
	const (
		lam = 0.7
		mu  = 1.3
	)
	q, _ := NewDenseFrom([][]float64{
		{-lam, lam},
		{mu, -mu},
	})
	for _, tt := range []float64{0.5, 1, 10} {
		got, err := UniformizedIntegral(q, []float64{1, 0}, tt, 0, 1e-13)
		if err != nil {
			t.Fatalf("t=%g: %v", tt, err)
		}
		a := lam / (lam + mu)
		want1 := a*tt - a/(lam+mu)*(1-math.Exp(-(lam+mu)*tt))
		if !almostEqual(got[1], want1, 1e-8) {
			t.Errorf("t=%g: integral[1] = %g, want %g", tt, got[1], want1)
		}
		// Total occupancy equals elapsed time.
		if !almostEqual(Sum(got), tt, 1e-8) {
			t.Errorf("t=%g: total occupancy = %g", tt, Sum(got))
		}
	}
}

func TestUniformizedIntegralZeroCases(t *testing.T) {
	q := birthDeathGenerator(3, 1, 1)
	got, err := UniformizedIntegral(q, []float64{1, 0, 0}, 0, 0, 1e-12)
	if err != nil {
		t.Fatalf("UniformizedIntegral: %v", err)
	}
	if Sum(got) != 0 {
		t.Errorf("integral over [0,0] = %v", got)
	}
	// Zero generator: occupancy is t * pi.
	z := NewDense(2, 2)
	got, err = UniformizedIntegral(z, []float64{0.5, 0.5}, 4, 0, 1e-12)
	if err != nil {
		t.Fatalf("UniformizedIntegral: %v", err)
	}
	if !vecAlmostEqual(got, []float64{2, 2}, 1e-12) {
		t.Errorf("got %v, want [2 2]", got)
	}
}

func TestUniformizedDimensionErrors(t *testing.T) {
	q := birthDeathGenerator(3, 1, 1)
	if _, err := UniformizedPower(q, []float64{1, 0}, 1, 0, 1e-12); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := UniformizedIntegral(q, []float64{1, 0}, 1, 0, 1e-12); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := UniformizedPower(q, []float64{1, 0, 0}, -1, 0, 1e-12); err == nil {
		t.Error("expected error for negative time")
	}
}
