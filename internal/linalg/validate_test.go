package linalg

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"nvrel/internal/faultinject"
)

func TestValidateDistribution(t *testing.T) {
	if err := ValidateDistribution("t", []float64{0.25, 0.25, 0.5}); err != nil {
		t.Fatalf("clean distribution rejected: %v", err)
	}
	cases := []struct {
		name string
		v    []float64
		kind FailureKind
		idx  int
	}{
		{"nan", []float64{0.5, math.NaN(), 0.5}, FailNaN, 1},
		{"inf", []float64{math.Inf(1), 0, 0}, FailInf, 0},
		{"negative", []float64{1.1, -0.1, 0}, FailNegative, 1},
		{"simplex", []float64{0.4, 0.4, 0.4}, FailSimplex, -1},
		{"empty", nil, FailSimplex, -1},
	}
	for _, tc := range cases {
		err := ValidateDistribution("t", tc.v)
		se, ok := AsSolveError(err)
		if !ok {
			t.Fatalf("%s: got %v, want *SolveError", tc.name, err)
		}
		if se.Kind != tc.kind || se.Index != tc.idx || se.Site != "t" {
			t.Fatalf("%s: got kind=%v idx=%d site=%q", tc.name, se.Kind, se.Index, se.Site)
		}
	}
	// Rounding-level negativity stays accepted.
	if err := ValidateDistribution("t", []float64{1 + 1e-12, -1e-12}); err != nil {
		t.Fatalf("rounding-level negative rejected: %v", err)
	}
}

func TestValidateFinite(t *testing.T) {
	if err := ValidateFinite("t", []float64{0, 3.5, 1e9}); err != nil {
		t.Fatalf("clean vector rejected: %v", err)
	}
	if se, ok := AsSolveError(ValidateFinite("t", []float64{0, math.NaN()})); !ok || se.Kind != FailNaN {
		t.Fatalf("NaN not caught: %v %v", se, ok)
	}
	if se, ok := AsSolveError(ValidateFinite("t", []float64{-1})); !ok || se.Kind != FailNegative {
		t.Fatalf("negative not caught: %v %v", se, ok)
	}
}

func TestValidateGeneratorCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := CSRFromDense(randomGenerator(rng, 12))
	if err := ValidateGeneratorCSR("t", q); err != nil {
		t.Fatalf("clean generator rejected: %v", err)
	}
	// Find an off-diagonal slot to corrupt.
	off := -1
	for i := 0; i < 12 && off < 0; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			if q.ColIdx[k] != i {
				off = k
				break
			}
		}
	}
	corrupt := func(k int, v float64) *CSR {
		c := CSRFromDense(q.Dense())
		c.Vals[k] = v
		return c
	}
	if se, ok := AsSolveError(ValidateGeneratorCSR("t", corrupt(off, math.NaN()))); !ok || se.Kind != FailNaN {
		t.Fatalf("NaN stamp not caught: %v", se)
	}
	if se, ok := AsSolveError(ValidateGeneratorCSR("t", corrupt(off, -q.Vals[off]))); !ok || se.Kind != FailGenerator {
		t.Fatalf("negated rate not caught: %v", se)
	}
	// A silently perturbed rate breaks conservation even though the sign
	// pattern stays legal — the defect equals the full perturbation.
	if se, ok := AsSolveError(ValidateGeneratorCSR("t", corrupt(off, q.Vals[off]*1.75))); !ok || se.Kind != FailGenerator || se.Residual == 0 {
		t.Fatalf("scaled rate not caught: %v", se)
	}
}

func TestSolveErrorWrapping(t *testing.T) {
	se := &SolveError{Site: "linalg.gs", Kind: FailNotConverged, Index: -1,
		Err: ErrNotConverged}
	if !errors.Is(se, ErrNotConverged) {
		t.Fatal("errors.Is does not see the wrapped cause")
	}
	got, ok := AsSolveError(se)
	if !ok || got != se {
		t.Fatal("AsSolveError failed on a direct SolveError")
	}
	if _, ok := AsSolveError(errors.New("plain")); ok {
		t.Fatal("AsSolveError matched a plain error")
	}
	if _, ok := AsSolveError(nil); ok {
		t.Fatal("AsSolveError matched nil")
	}
}

func TestCtxError(t *testing.T) {
	if err := CtxError("t", nil); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := CtxError("t", context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	se, ok := AsSolveError(CtxError("t", ctx))
	if !ok || se.Kind != FailDeadline || !errors.Is(se, context.Canceled) {
		t.Fatalf("cancelled ctx: %v", se)
	}
}

// TestSteadyStatePowerMatchesGTH: the last-rung backstop agrees with the
// dense direct solver on random reachability-shaped generators. Power
// iteration converges at the subdominant-eigenvalue rate, so its stall
// floor leaves O(1e-8) absolute error where GS/GTH reach 1e-12 — the
// comparison tolerance reflects that.
func TestSteadyStatePowerMatchesGTH(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ws := NewWorkspace()
	for _, n := range []int{1, 2, 9, 40} {
		q := randomGenerator(rng, n)
		want, err := SteadyStateGTH(q.Clone())
		if err != nil {
			t.Fatalf("n=%d: GTH: %v", n, err)
		}
		got := make([]float64, n)
		iters, err := ws.SteadyStatePower(CSRFromDense(q), got)
		if err != nil {
			t.Fatalf("n=%d: power: %v", n, err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("n=%d: pi[%d] = %v, want %v (iters=%d)", n, i, got[i], want[i], iters)
			}
		}
		if err := ValidateDistribution("test", got); err != nil {
			t.Fatalf("n=%d: power result fails guard: %v", n, err)
		}
	}
}

// TestCorruptedGeneratorAlwaysTypedError is the satellite property test:
// whatever single-slot corruption hits a generator — NaN, Inf, sign flip,
// silent rate perturbation — every steady-state kernel returns a typed
// *SolveError rather than a result. Fuzz-style over random generators,
// sizes, slots and corruption kinds.
func TestCorruptedGeneratorAlwaysTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ws := NewWorkspace()
	corruptions := []struct {
		name  string
		apply func(v float64) float64
	}{
		{"nan", func(float64) float64 { return math.NaN() }},
		{"inf", func(float64) float64 { return math.Inf(1) }},
		{"negate", func(v float64) float64 { return -v }},
		{"scale", func(v float64) float64 { return v * 1.75 }},
	}
	for rep := 0; rep < 40; rep++ {
		n := 2 + rng.Intn(40)
		q := CSRFromDense(randomGenerator(rng, n))
		k := rng.Intn(len(q.Vals))
		c := corruptions[rep%len(corruptions)]
		orig := q.Vals[k]
		q.Vals[k] = c.apply(orig)
		if q.Vals[k] == orig {
			continue // negating/scaling an exact zero changes nothing
		}
		dst := make([]float64, n)
		if _, err := ws.SteadyStateGS(q, dst); err == nil {
			t.Fatalf("rep %d (%s, n=%d, slot %d): GS accepted a corrupted generator", rep, c.name, n, k)
		} else if _, ok := AsSolveError(err); !ok {
			t.Fatalf("rep %d (%s): GS returned untyped error %v", rep, c.name, err)
		}
		if _, err := ws.SteadyStatePower(q, dst); err == nil {
			t.Fatalf("rep %d (%s, n=%d, slot %d): power accepted a corrupted generator", rep, c.name, n, k)
		} else if _, ok := AsSolveError(err); !ok {
			t.Fatalf("rep %d (%s): power returned untyped error %v", rep, c.name, err)
		}
	}
}

// TestSteadyStateGSCtxDeadline: an expired context surfaces as a typed
// deadline error from both iterative kernels.
func TestSteadyStateGSCtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	q := CSRFromDense(randomGenerator(rng, 20))
	ws := NewWorkspace()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	dst := make([]float64, 20)
	for name, solve := range map[string]func() error{
		"gs":    func() error { _, err := ws.SteadyStateGSCtx(ctx, q, dst); return err },
		"power": func() error { _, err := ws.SteadyStatePowerCtx(ctx, q, dst); return err },
	} {
		se, ok := AsSolveError(solve())
		if !ok || se.Kind != FailDeadline {
			t.Fatalf("%s: expired ctx gave %v", name, se)
		}
	}
}

// TestGSInjectedFaults: the in-kernel fault sites produce exactly the
// typed failures the fallback chain keys on.
func TestGSInjectedFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	q := CSRFromDense(randomGenerator(rng, 25))
	ws := NewWorkspace()
	dst := make([]float64, 25)

	arm := func(site string) {
		t.Helper()
		faultinject.Reset()
		if err := faultinject.Arm(faultinject.Fault{Site: site}, 1); err != nil {
			t.Fatal(err)
		}
		faultinject.Enable()
	}
	defer func() {
		faultinject.Disable()
		faultinject.Reset()
	}()

	arm("linalg.gs.stall")
	se, ok := AsSolveError(func() error { _, err := ws.SteadyStateGS(q, dst); return err }())
	if !ok || se.Kind != FailNotConverged || !errors.Is(se, ErrNotConverged) {
		t.Fatalf("injected stall gave %v", se)
	}

	arm("linalg.gs.poison")
	se, ok = AsSolveError(func() error { _, err := ws.SteadyStateGS(q, dst); return err }())
	if !ok || se.Kind != FailNaN {
		t.Fatalf("injected poison gave %v", se)
	}

	arm("linalg.kernel.panic")
	func() {
		defer func() {
			if _, isInjected := recover().(*faultinject.Injected); !isInjected {
				t.Fatal("injected kernel panic did not surface")
			}
		}()
		ws.SteadyStateGS(q, dst)
	}()
}
