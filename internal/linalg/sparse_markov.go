package linalg

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nvrel/internal/faultinject"
)

// ErrNotConverged is returned by the iterative sparse solvers when the
// iteration budget runs out before the convergence criterion is met.
// Callers fall back to the dense direct solvers (the GTH backstop).
var ErrNotConverged = errors.New("linalg: iterative solver did not converge")

// SparseThreshold is the state count at and above which the solver routing
// prefers the CSR kernels over the dense ones. Below it the dense direct
// methods (GTH, dense uniformization) win on constant factors; above it the
// sparse kernels' O(nnz) matvecs and O(n) memory dominate. The default was
// chosen from the BENCH_scale.json curves: the CTMC steady state crosses
// over at ~153 states and the transient series wins from the smallest
// models, while the MRGP path is within 4% of parity at 176 states and
// wins outright from 247 — so 160 sits in the tie band where no family
// loses measurably and the fast-growing ones already win.
var SparseThreshold = 160

// GS iteration limits. The tolerance is on the L1 change of the iterate per
// sweep relative to its L1 norm; the stall detection accepts the attainable
// rounding floor when the sweep-to-sweep improvement dies out.
const (
	gsTol       = 1e-14
	gsStallTol  = 1e-10
	gsMaxSweeps = 200000
)

// SteadyStateGS computes the stationary distribution of an irreducible
// CTMC by Gauss-Seidel sweeps over pi*Q = 0. qt must be the TRANSPOSE of
// the generator in CSR form (row j lists the incoming rates q_ij, plus the
// diagonal q_jj), because the update for pi_j consumes column j of Q:
//
//	pi_j <- (sum_{i != j} pi_i q_ij) / |q_jj|
//
// with immediate (in-place) updates and a normalization per sweep. For the
// lattice-shaped reachability graphs of the perception models Gauss-Seidel
// converges in tens to hundreds of sweeps where power iteration on the
// uniformized chain would need rate-ratio many; each sweep costs O(nnz).
//
// The result is written into dst (length n) and the number of sweeps run
// is returned so callers can surface convergence behavior. Every failure
// is a typed *SolveError: the generator is validated before the first
// sweep (sign pattern, finiteness, conservation — so a corrupted stamp is
// rejected instead of iterated on), a non-finite iterate is detected the
// sweep it appears, and an exhausted budget carries Kind FailNotConverged
// (wrapping ErrNotConverged); callers then fall back along the chain.
func (ws *Workspace) SteadyStateGS(qt *CSR, dst []float64) (sweeps int, err error) {
	return ws.SteadyStateGSCtx(nil, qt, dst)
}

// SteadyStateGSCtx is SteadyStateGS with a context: the sweep loop checks
// for cancellation every 64 sweeps and returns a typed SolveError{Kind:
// FailDeadline} when the context dies, so a stalled solve times out
// instead of hanging its worker. A nil context never checks.
func (ws *Workspace) SteadyStateGSCtx(ctx context.Context, qt *CSR, dst []float64) (sweeps int, err error) {
	sweeps, _, err = ws.SteadyStateGSSeededCtx(ctx, qt, dst, nil)
	return sweeps, err
}

// SteadyStateGSSeededCtx is SteadyStateGSCtx with an optional warm-start
// initial guess: when seed passes ApplySeed (right length, finite,
// non-negative, positive mass) the sweeps start from its normalized copy
// instead of the uniform vector, and warm reports that the seed was used.
// The convergence criterion, validation guards, and failure taxonomy are
// identical either way — a seed only moves the starting point of an
// iteration that contracts onto the same stationary vector, so warm and
// cold solves agree to the solver tolerance. A nil or unusable seed
// reproduces the cold solve bit for bit.
func (ws *Workspace) SteadyStateGSSeededCtx(ctx context.Context, qt *CSR, dst, seed []float64) (sweeps int, warm bool, err error) {
	sweeps, warm, _, err = ws.SteadyStateGSSeededResCtx(ctx, qt, dst, seed)
	return sweeps, warm, err
}

// SteadyStateGSSeededResCtx is SteadyStateGSSeededCtx additionally
// reporting the final relative L1 residual of the accepting sweep
// (delta/norm — the same number the convergence criterion compares
// against gsTol, zero for the trivial one-state chain). Callers thread
// it into SolveDiag so the numerics flight recorder can rank solves by
// how hard the acceptance band was hit.
func (ws *Workspace) SteadyStateGSSeededResCtx(ctx context.Context, qt *CSR, dst, seed []float64) (sweeps int, warm bool, residual float64, err error) {
	rows, cols := qt.Dims()
	if rows != cols {
		return 0, false, 0, ErrDimensionMismatch
	}
	n := rows
	if len(dst) != n {
		return 0, false, 0, ErrDimensionMismatch
	}
	if err := ValidateGeneratorCSR("linalg.gs", qt); err != nil {
		metGSRejected.Inc()
		return 0, false, 0, err
	}
	metGSSolves.Inc()
	if n == 1 {
		dst[0] = 1
		return 0, false, 0, nil
	}
	if !ApplySeed(dst, seed) {
		for i := range dst {
			dst[i] = 1 / float64(n)
		}
	} else {
		warm = true
	}
	prev := math.Inf(1)
	stall := 0
	for sweep := 0; sweep < gsMaxSweeps; sweep++ {
		if sweep&63 == 0 {
			if err := CtxError("linalg.gs", ctx); err != nil {
				return sweep, warm, 0, err
			}
		}
		if faultinject.Enabled() {
			fiKernelPanic.Panic()
			if fiGSStall.Fire() {
				return sweep, warm, 0, &SolveError{Site: "linalg.gs", Kind: FailNotConverged, Index: -1,
					Err: fmt.Errorf("%w: injected Gauss-Seidel stall at sweep %d", ErrNotConverged, sweep)}
			}
			if fiGSPoison.Fire() {
				dst[0] = math.NaN()
			}
		}
		var delta, norm float64
		for j := 0; j < n; j++ {
			var s, diag float64
			for k := qt.RowPtr[j]; k < qt.RowPtr[j+1]; k++ {
				c := qt.ColIdx[k]
				if c == j {
					diag = qt.Vals[k]
					continue
				}
				s += qt.Vals[k] * dst[c]
			}
			if diag >= 0 {
				return sweep, warm, 0, &SolveError{Site: "linalg.gs", Kind: FailGenerator, Index: j, Value: diag,
					Err: fmt.Errorf("linalg: state %d has no exit rate (chain not irreducible?)", j)}
			}
			v := s / -diag
			d := v - dst[j]
			if d < 0 {
				d = -d
			}
			delta += d
			dst[j] = v
			norm += v
		}
		metGSSweeps.Inc()
		// A NaN anywhere in the sweep poisons delta and norm, so this one
		// check catches a non-finite iterate the sweep it appears instead
		// of spinning to the budget with a poisoned vector.
		if math.IsNaN(delta) || math.IsNaN(norm) || math.IsInf(norm, 0) {
			metGSRejected.Inc()
			return sweep + 1, warm, 0, &SolveError{Site: "linalg.gs", Kind: FailNaN, Index: -1,
				Err: fmt.Errorf("linalg: Gauss-Seidel iterate went non-finite at sweep %d", sweep)}
		}
		if norm <= 0 {
			return sweep + 1, warm, 0, &SolveError{Site: "linalg.gs", Kind: FailNotConverged, Index: -1,
				Err: fmt.Errorf("linalg: Gauss-Seidel iterate vanished at sweep %d", sweep)}
		}
		normalize(dst)
		if delta <= gsTol*norm {
			metGSConverged.Inc()
			residual = delta / norm
			metGSResidual.Set(residual)
			driftGS(dst)
			return sweep + 1, warm, residual, nil
		}
		// Stalled at the rounding floor: the iterate stopped improving but
		// sits below the acceptance band, which is as converged as float64
		// will ever get for this chain.
		if delta >= prev*0.98 {
			if stall++; stall >= 10 && delta <= gsStallTol*norm {
				metGSStalled.Inc()
				residual = delta / norm
				metGSResidual.Set(residual)
				driftGS(dst)
				return sweep + 1, warm, residual, nil
			}
		} else {
			stall = 0
		}
		prev = delta
	}
	metGSExhausted.Inc()
	return gsMaxSweeps, warm, prev, &SolveError{Site: "linalg.gs", Kind: FailNotConverged, Index: -1, Residual: prev,
		Err: fmt.Errorf("%w: Gauss-Seidel after %d sweeps", ErrNotConverged, gsMaxSweeps)}
}

// driftGS applies the linalg.gs.drift chaos site to an accepted iterate:
// it moves a small fraction of the largest entry's mass onto a neighbor.
// The sum, non-negativity, and finiteness are all preserved, so every
// downstream distribution guard passes — the vector is simply wrong by
// ~1e-4 of its largest component, orders of magnitude above both the
// solver tolerance and the shadow-verification agreement bands. Inert
// unless chaos injection armed the site.
func driftGS(dst []float64) {
	if !faultinject.Enabled() || !fiGSDrift.Fire() || len(dst) < 2 {
		return
	}
	hi := 0
	for i, v := range dst {
		if v > dst[hi] {
			hi = i
		}
	}
	lo := (hi + 1) % len(dst)
	eps := dst[hi] * 1e-4
	dst[hi] -= eps
	dst[lo] += eps
}

// UniformizedPowerCSR computes pi * e^{Q t} for a CSR generator Q without
// ever materializing the uniformized DTMC: one series step is
//
//	cur <- cur + (cur * Q) / rate
//
// which is algebraically cur * (I + Q/rate). rate must be >=
// max_i |Q[i,i]|; pass 0 to derive it from the (materialized) diagonal.
// The result is written into dst when non-nil (length n). All scratch
// comes from the workspace, so repeated calls at a stamped size run
// allocation-free.
func (ws *Workspace) UniformizedPowerCSR(q *CSR, pi []float64, t, rate, epsilon float64, dst []float64) ([]float64, error) {
	rows, cols := q.Dims()
	if rows != cols || len(pi) != rows {
		return nil, ErrDimensionMismatch
	}
	n := rows
	if dst == nil {
		dst = make([]float64, n)
	} else if len(dst) != n {
		return nil, ErrDimensionMismatch
	}
	if t < 0 {
		return nil, ErrDimensionMismatch
	}
	if rate <= 0 {
		rate = q.MaxAbsDiag() * 1.02
	}
	if rate == 0 || t == 0 {
		copy(dst, pi)
		return dst, nil
	}
	weights, right := ws.Poisson(rate*t, epsilon)
	invRate := 1 / rate
	metUnifSeries.Inc()
	metUnifTerms.Add(int64(right) + 1)

	cur := ws.Vec(n)
	tmp := ws.Vec(n)
	copy(cur, pi)
	clear(dst)
	for k := 0; k <= right; k++ {
		w := weights[k]
		for i := range dst {
			dst[i] += w * cur[i]
		}
		if k == right {
			break
		}
		if err := q.VecMulInto(tmp, cur); err != nil {
			return nil, err
		}
		for i := range cur {
			cur[i] += tmp[i] * invRate
		}
	}
	ws.PutVec(cur)
	ws.PutVec(tmp)
	return dst, nil
}

// UniformizedIntegralCSR computes pi * Integral_0^t e^{Q s} ds with the
// same matrix-free series as UniformizedPowerCSR, using the tail-weight
// identity of UniformizedIntegral.
func (ws *Workspace) UniformizedIntegralCSR(q *CSR, pi []float64, t, rate, epsilon float64, dst []float64) ([]float64, error) {
	rows, cols := q.Dims()
	if rows != cols || len(pi) != rows {
		return nil, ErrDimensionMismatch
	}
	n := rows
	if dst == nil {
		dst = make([]float64, n)
	} else if len(dst) != n {
		return nil, ErrDimensionMismatch
	}
	if t < 0 {
		return nil, ErrDimensionMismatch
	}
	clear(dst)
	if t == 0 {
		return dst, nil
	}
	if rate <= 0 {
		rate = q.MaxAbsDiag() * 1.02
	}
	if rate == 0 {
		for i := range dst {
			dst[i] = t * pi[i]
		}
		return dst, nil
	}
	weights, right := ws.Poisson(rate*t, epsilon)
	invRate := 1 / rate
	metUnifSeries.Inc()
	metUnifTerms.Add(int64(right) + 1)
	tail := ws.Vec(right + 1)
	acc := 0.0
	for k := 0; k <= right; k++ {
		acc += weights[k]
		tail[k] = 1 - acc
		if tail[k] < 0 {
			tail[k] = 0
		}
	}
	cur := ws.Vec(n)
	tmp := ws.Vec(n)
	copy(cur, pi)
	for k := 0; k <= right; k++ {
		w := tail[k] * invRate
		for i := range dst {
			dst[i] += w * cur[i]
		}
		if k == right {
			break
		}
		if err := q.VecMulInto(tmp, cur); err != nil {
			return nil, err
		}
		for i := range cur {
			cur[i] += tmp[i] * invRate
		}
	}
	ws.PutVec(cur)
	ws.PutVec(tmp)
	ws.PutVec(tail)
	// Same truncation-mass rescale as the dense kernel: analytically the
	// integral masses sum to t; restore that when the discrepancy is pure
	// truncation noise.
	var total float64
	for _, v := range dst {
		total += v
	}
	if total > 0 {
		scale := t / total
		if math.Abs(scale-1) < 1e-6 {
			for i := range dst {
				dst[i] *= scale
			}
		}
	}
	return dst, nil
}
