package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotStochastic is returned when a matrix fails a stochasticity check.
var ErrNotStochastic = errors.New("linalg: matrix is not stochastic")

// SteadyStateGTH computes the stationary distribution of an irreducible
// continuous-time Markov chain from its generator matrix Q (rows sum to
// zero, off-diagonals non-negative) using the Grassmann–Taksar–Heyman
// algorithm. GTH is subtraction-free and therefore numerically robust even
// for stiff chains (the repair rate here is ~three orders of magnitude
// faster than the fault rates).
func SteadyStateGTH(q *Dense) ([]float64, error) {
	return (*Workspace)(nil).SteadyStateGTH(q, nil)
}

// SteadyStateGTH is the workspace-backed form of the package-level function:
// the elimination copy comes from the workspace and the result is written
// into dst when it is non-nil (it must then have length n).
func (ws *Workspace) SteadyStateGTH(q *Dense, dst []float64) ([]float64, error) {
	rows, cols := q.Dims()
	if rows != cols {
		return nil, ErrDimensionMismatch
	}
	n := rows
	if dst == nil {
		dst = make([]float64, n)
	} else if len(dst) != n {
		return nil, ErrDimensionMismatch
	}
	if n == 1 {
		dst[0] = 1
		return dst, nil
	}
	// Work on a copy; the algorithm operates on transition *rates*, and is
	// identical for a CTMC generator with the diagonal ignored.
	a := ws.Mat(n, n)
	defer ws.PutMat(a)
	a.CopyFrom(q)
	// Censoring sweep: eliminate states n-1, n-2, ..., 1.
	for k := n - 1; k >= 1; k-- {
		var s float64
		for j := 0; j < k; j++ {
			s += a.At(k, j)
		}
		if s <= 0 {
			return nil, fmt.Errorf("linalg: GTH elimination failed at state %d (chain not irreducible?)", k)
		}
		for i := 0; i < k; i++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			f := aik / s
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				a.Add(i, j, f*a.At(k, j))
			}
		}
	}
	// Back substitution.
	pi := dst
	clear(pi)
	pi[0] = 1
	for k := 1; k < n; k++ {
		var s float64
		for j := 0; j < k; j++ {
			s += a.At(k, j)
		}
		var num float64
		for i := 0; i < k; i++ {
			num += pi[i] * a.At(i, k)
		}
		pi[k] = num / s
	}
	normalize(pi)
	return pi, nil
}

// SteadyStateDTMC computes the stationary distribution of an irreducible
// discrete-time Markov chain with transition matrix P (rows sum to one)
// using GTH elimination on P - I restated in rate form.
func SteadyStateDTMC(p *Dense) ([]float64, error) {
	return (*Workspace)(nil).SteadyStateDTMC(p, nil)
}

// SteadyStateDTMC is the workspace-backed form of the package-level
// function; see Workspace.SteadyStateGTH for the dst contract.
func (ws *Workspace) SteadyStateDTMC(p *Dense, dst []float64) ([]float64, error) {
	rows, cols := p.Dims()
	if rows != cols {
		return nil, ErrDimensionMismatch
	}
	for i := 0; i < rows; i++ {
		var s float64
		for j := 0; j < cols; j++ {
			v := p.At(i, j)
			if v < -1e-12 {
				return nil, fmt.Errorf("%w: negative entry P[%d,%d]=%g", ErrNotStochastic, i, j, v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-8 {
			return nil, fmt.Errorf("%w: row %d sums to %g", ErrNotStochastic, i, s)
		}
	}
	// GTH works on the off-diagonal structure, which for a DTMC is the same
	// as for the generator P - I.
	q := ws.Mat(rows, cols)
	defer ws.PutMat(q)
	q.CopyFrom(p)
	for i := 0; i < rows; i++ {
		q.Add(i, i, -1)
		q.Set(i, i, 0) // diagonal is ignored by GTH; zero it for clarity
	}
	return ws.SteadyStateGTH(q, dst)
}

// SteadyStateLU computes the stationary distribution of a CTMC generator by
// solving pi*Q = 0 with the normalization constraint sum(pi) = 1 via LU.
// It exists mainly as an independent cross-check of SteadyStateGTH.
func SteadyStateLU(q *Dense) ([]float64, error) {
	rows, cols := q.Dims()
	if rows != cols {
		return nil, ErrDimensionMismatch
	}
	n := rows
	// Transpose Q and replace the last equation by the normalization.
	a := q.Transpose()
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := SolveLinear(a, b)
	if err != nil {
		return nil, err
	}
	for i, v := range pi {
		if v < 0 && v > -1e-10 {
			pi[i] = 0
		} else if v < 0 {
			return nil, fmt.Errorf("linalg: LU steady state produced negative probability %g at state %d", v, i)
		}
	}
	normalize(pi)
	return pi, nil
}

// CheckGenerator validates that q is a CTMC generator: non-negative
// off-diagonals and rows summing to zero within tol.
func CheckGenerator(q *Dense, tol float64) error {
	rows, cols := q.Dims()
	if rows != cols {
		return ErrDimensionMismatch
	}
	for i := 0; i < rows; i++ {
		var s float64
		for j := 0; j < cols; j++ {
			v := q.At(i, j)
			if i != j && v < 0 {
				return fmt.Errorf("linalg: negative off-diagonal Q[%d,%d]=%g", i, j, v)
			}
			s += v
		}
		if math.Abs(s) > tol {
			return fmt.Errorf("linalg: generator row %d sums to %g (tol %g)", i, s, tol)
		}
	}
	return nil
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// Normalize scales v so its entries sum to one. It is exported for the
// solver packages that assemble probability vectors incrementally.
func Normalize(v []float64) { normalize(v) }

// Sum returns the sum of the entries of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrDimensionMismatch
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}
