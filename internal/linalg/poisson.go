package linalg

import (
	"math"
)

// PoissonWeights returns the Poisson probabilities P[K = k] for k in
// [0, right] with mean lambda, together with the chosen truncation point.
// The truncation point is selected so the neglected right tail is below
// epsilon. The weights are computed in log space to avoid overflow for
// large lambda and renormalized to sum to one over the returned range.
//
// These weights drive uniformization: e^{Qt} = sum_k Poisson(k; qt) P^k.
func PoissonWeights(lambda, epsilon float64) (weights []float64, right int) {
	if lambda < 0 {
		panic("linalg: negative Poisson mean")
	}
	if epsilon <= 0 {
		epsilon = 1e-12
	}
	if lambda == 0 {
		return []float64{1}, 0
	}
	// A generous truncation: mean + c*sqrt(mean) covers the tail; grow the
	// constant until the analytic tail bound is satisfied.
	right = int(math.Ceil(lambda + 6*math.Sqrt(lambda) + 10))
	for poissonRightTail(lambda, right) > epsilon {
		right += int(math.Ceil(2*math.Sqrt(lambda))) + 5
	}
	weights = make([]float64, right+1)
	logLambda := math.Log(lambda)
	// log P[K=k] = -lambda + k*log(lambda) - lgamma(k+1)
	var sum float64
	for k := 0; k <= right; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		weights[k] = math.Exp(-lambda + float64(k)*logLambda - lg)
		sum += weights[k]
	}
	for k := range weights {
		weights[k] /= sum
	}
	// 1 - sum is the truncated tail mass (the weights themselves are
	// renormalized above, so record the deficit before it vanishes).
	metUnifK.Observe(float64(right))
	metUnifTail.Set(1 - sum)
	return weights, right
}

// poissonRightTail bounds P[K > right] for K ~ Poisson(lambda) using a
// Chernoff bound. It is intentionally conservative.
func poissonRightTail(lambda float64, right int) float64 {
	r := float64(right)
	if r <= lambda {
		return 1
	}
	// Chernoff: P[K >= r] <= exp(-lambda) (e*lambda/r)^r for r > lambda.
	logBound := -lambda + r*(1+math.Log(lambda/r))
	return math.Exp(logBound)
}

// UniformizedPower computes pi * e^{Q t} for a CTMC generator Q using
// uniformization. rate must be >= max_i |Q[i,i]|; pass 0 to have it derived
// from Q. epsilon bounds the truncation error.
func UniformizedPower(q *Dense, pi []float64, t, rate, epsilon float64) ([]float64, error) {
	return (*Workspace)(nil).UniformizedPower(q, pi, t, rate, epsilon, nil)
}

// UniformizedPower is the workspace-backed form of the package-level
// function: scratch vectors, the uniformized DTMC matrix, and the Poisson
// weights come from the workspace, and the result is written into dst when
// it is non-nil (it must then have length n). After the first call at a
// given size the steady state allocates nothing. The result is
// float-for-float identical to the allocating path.
func (ws *Workspace) UniformizedPower(q *Dense, pi []float64, t, rate, epsilon float64, dst []float64) ([]float64, error) {
	n, cols := q.Dims()
	if n != cols || len(pi) != n {
		return nil, ErrDimensionMismatch
	}
	if dst == nil {
		dst = make([]float64, n)
	} else if len(dst) != n {
		return nil, ErrDimensionMismatch
	}
	if t < 0 {
		return nil, ErrDimensionMismatch
	}
	if rate <= 0 {
		rate = uniformizationRate(q)
	}
	if rate == 0 || t == 0 {
		copy(dst, pi)
		return dst, nil
	}
	p := ws.uniformizedDTMC(q, rate)
	defer ws.PutMat(p)
	weights, right := ws.Poisson(rate*t, epsilon)

	cur := ws.Vec(n)
	next := ws.Vec(n)
	copy(cur, pi)
	clear(dst)
	for k := 0; k <= right; k++ {
		w := weights[k]
		for i := range dst {
			dst[i] += w * cur[i]
		}
		if k == right {
			break
		}
		if err := p.VecMulInto(next, cur); err != nil {
			return nil, err
		}
		cur, next = next, cur
	}
	ws.PutVec(cur)
	ws.PutVec(next)
	return dst, nil
}

// UniformizedIntegral computes pi * Integral_0^t e^{Q s} ds using
// uniformization. The result, dotted with a reward vector, yields the
// expected accumulated reward over [0, t] starting from distribution pi.
//
// Using the identity
//
//	Integral_0^t e^{Qs} ds = (1/rate) * sum_{k>=0} tailP(k) * P^k
//
// where tailP(k) = P[K > k] for K ~ Poisson(rate*t).
func UniformizedIntegral(q *Dense, pi []float64, t, rate, epsilon float64) ([]float64, error) {
	return (*Workspace)(nil).UniformizedIntegral(q, pi, t, rate, epsilon, nil)
}

// UniformizedIntegral is the workspace-backed form of the package-level
// function; see Workspace.UniformizedPower for the dst and reuse contract.
func (ws *Workspace) UniformizedIntegral(q *Dense, pi []float64, t, rate, epsilon float64, dst []float64) ([]float64, error) {
	n, cols := q.Dims()
	if n != cols || len(pi) != n {
		return nil, ErrDimensionMismatch
	}
	if dst == nil {
		dst = make([]float64, n)
	} else if len(dst) != n {
		return nil, ErrDimensionMismatch
	}
	if t < 0 {
		return nil, ErrDimensionMismatch
	}
	clear(dst)
	if t == 0 {
		return dst, nil
	}
	if rate <= 0 {
		rate = uniformizationRate(q)
	}
	if rate == 0 {
		// Q == 0: the chain never moves; integral is t * pi.
		for i := range dst {
			dst[i] = t * pi[i]
		}
		return dst, nil
	}
	p := ws.uniformizedDTMC(q, rate)
	defer ws.PutMat(p)
	weights, right := ws.Poisson(rate*t, epsilon)
	// tail[k] = P[K > k] = 1 - sum_{j<=k} w[j]
	tail := ws.Vec(right + 1)
	acc := 0.0
	for k := 0; k <= right; k++ {
		acc += weights[k]
		tail[k] = 1 - acc
		if tail[k] < 0 {
			tail[k] = 0
		}
	}
	cur := ws.Vec(n)
	next := ws.Vec(n)
	copy(cur, pi)
	for k := 0; k <= right; k++ {
		w := tail[k] / rate
		for i := range dst {
			dst[i] += w * cur[i]
		}
		if k == right {
			break
		}
		if err := p.VecMulInto(next, cur); err != nil {
			return nil, err
		}
		cur, next = next, cur
	}
	ws.PutVec(cur)
	ws.PutVec(next)
	ws.PutVec(tail)
	// The truncated series omits sum_{k>right} tail(k)/rate ~= 0 by choice
	// of right; additionally t - sum_k tail(k)/rate == 0 analytically, so
	// rescale the total mass to t for exactness.
	var total float64
	for _, v := range dst {
		total += v
	}
	if total > 0 {
		scale := t / total
		// Only rescale when the truncation error is small; otherwise the
		// scale factor would hide a real problem.
		if math.Abs(scale-1) < 1e-6 {
			for i := range dst {
				dst[i] *= scale
			}
		}
	}
	return dst, nil
}

// uniformizationRate returns max_i |Q[i,i]| times a small safety margin.
func uniformizationRate(q *Dense) float64 {
	n, _ := q.Dims()
	var max float64
	for i := 0; i < n; i++ {
		if a := math.Abs(q.At(i, i)); a > max {
			max = a
		}
	}
	return max * 1.02
}

// uniformizedDTMC returns P = I + Q/rate in a workspace matrix.
func (ws *Workspace) uniformizedDTMC(q *Dense, rate float64) *Dense {
	n, _ := q.Dims()
	p := ws.Mat(n, n)
	p.CopyFrom(q)
	p.Scale(1 / rate)
	for i := 0; i < n; i++ {
		p.Add(i, i, 1)
	}
	return p
}
