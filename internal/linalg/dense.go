// Package linalg provides the small dense linear-algebra kernel used by the
// stochastic solvers in this repository: dense matrices, LU factorization,
// steady-state solvers for Markov chains (GTH), and Poisson weights for
// uniformization.
//
// The package is deliberately minimal and dependency-free. All matrices are
// dense and row-major; the state spaces produced by the perception-system
// Petri nets are tiny (tens of states), so asymptotic sophistication would
// only obscure the numerics.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Dense is a dense row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of rows. All rows must have the
// same length. The data is copied.
func NewDenseFrom(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix literal")
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged matrix literal: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Zero sets every element to zero.
func (m *Dense) Zero() { clear(m.data) }

// CopyFrom overwrites m with the contents of src.
func (m *Dense) CopyFrom(src *Dense) error {
	if m.rows != src.rows || m.cols != src.cols {
		return ErrDimensionMismatch
	}
	copy(m.data, src.data)
	return nil
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddMat adds other to m in place.
func (m *Dense) AddMat(other *Dense) error {
	if m.rows != other.rows || m.cols != other.cols {
		return ErrDimensionMismatch
	}
	for i := range m.data {
		m.data[i] += other.data[i]
	}
	return nil
}

// Mul returns the matrix product m * other.
func (m *Dense) Mul(other *Dense) (*Dense, error) {
	out := NewDense(m.rows, other.cols)
	if err := out.MulInto(m, other); err != nil {
		return nil, err
	}
	return out, nil
}

// MulInto computes out = a * b into the receiver, which must be sized
// a.rows x b.cols and must not alias a or b. Existing contents are
// overwritten.
func (out *Dense) MulInto(a, b *Dense) error {
	if a.cols != b.rows || out.rows != a.rows || out.cols != b.cols {
		return ErrDimensionMismatch
	}
	if out == a || out == b {
		return ErrDimensionMismatch
	}
	out.Zero()
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			v := a.data[i*a.cols+k]
			if v == 0 {
				continue
			}
			rowK := b.data[k*b.cols : (k+1)*b.cols]
			outRow := out.data[i*out.cols : (i+1)*out.cols]
			for j, w := range rowK {
				outRow[j] += v * w
			}
		}
	}
	return nil
}

// MulVec returns the matrix-vector product m * x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, ErrDimensionMismatch
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// VecMul returns the vector-matrix product x * m (x treated as a row vector).
func (m *Dense) VecMul(x []float64) ([]float64, error) {
	out := make([]float64, m.cols)
	if err := m.VecMulInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// VecMulInto computes dst = x * m (x treated as a row vector). dst must be
// length m.cols and must not alias x; existing contents are overwritten.
func (m *Dense) VecMulInto(dst, x []float64) error {
	if m.rows != len(x) || m.cols != len(dst) {
		return ErrDimensionMismatch
	}
	clear(dst)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			dst[j] += xi * a
		}
	}
	return nil
}

// Transpose returns the transpose of m.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%12.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
