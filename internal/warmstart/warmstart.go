// Package warmstart holds already-solved stationary vectors keyed by model
// topology, so an iterative solve at a nearby parameter point can start
// from its nearest solved neighbor's solution instead of the uniform
// vector. A registry is a cache of hints, never of answers: every vector
// it hands out is re-validated by linalg.ApplySeed and only moves the
// starting point of an iteration that contracts onto the same fixed point,
// so a stale, mismatched, or corrupted seed can cost iterations but never
// change a result.
//
// Keys are opaque topology identities (petri.Graph.TopologyKey — the
// pointer shared by Restamp siblings), so seeds can only ever flow between
// graphs with the identical state enumeration. Within a topology, entries
// carry the parameter signature (petri.Graph.RateSignature) of the point
// they were solved at; Lookup returns the entry with the smallest relative
// L1 distance to the query signature.
package warmstart

import (
	"sync"

	"nvrel/internal/faultinject"
	"nvrel/internal/obs"
)

var (
	metLookupHit  = obs.CounterFor("warmstart.lookup.hit")
	metLookupMiss = obs.CounterFor("warmstart.lookup.miss")
	metInserts    = obs.CounterFor("warmstart.insert")

	// fiSeedCorrupt corrupts the seed vector handed out by Lookup (on a
	// copy — registry storage is never mutated), modeling a torn or
	// poisoned cache read. ApplySeed downstream must reject the vector and
	// degrade to the uniform cold start.
	fiSeedCorrupt = faultinject.SiteFor("warmstart.seed.corrupt")
)

// maxEntriesPerKey bounds the solved-neighbor memory per topology. Sweep
// drivers move through parameter space smoothly, so a handful of recent
// points always contains a near neighbor; more entries would only slow the
// linear nearest-neighbor scan.
const maxEntriesPerKey = 8

type entry struct {
	sig  []float64
	vec  []float64
	seq  uint64 // insertion order, for oldest-first eviction
	dist float64
}

// Registry is a concurrency-safe warm-start seed store. The zero value is
// not usable; construct with NewRegistry. A nil *Registry is inert: Lookup
// misses and Insert drops, so callers can thread an optional registry
// without nil checks.
type Registry struct {
	mu    sync.Mutex
	seq   uint64
	byKey map[any][]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[any][]entry)}
}

// Insert records a solved iterate vec for topology key at parameter point
// sig. Both slices are copied, so the caller may keep mutating its
// buffers. A nil key (graph without a shared topology) or empty vector is
// ignored. When the per-key bound is reached the oldest entry is evicted —
// sweeps visit parameter space in order, so old points are the far ones.
func (r *Registry) Insert(key any, sig, vec []float64) {
	if r == nil || key == nil || len(vec) == 0 {
		return
	}
	e := entry{
		sig: append([]float64(nil), sig...),
		vec: append([]float64(nil), vec...),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e.seq = r.seq
	entries := r.byKey[key]
	if len(entries) >= maxEntriesPerKey {
		oldest := 0
		for i := 1; i < len(entries); i++ {
			if entries[i].seq < entries[oldest].seq {
				oldest = i
			}
		}
		entries[oldest] = e
	} else {
		entries = append(entries, e)
	}
	r.byKey[key] = entries
	metInserts.Inc()
}

// Lookup returns a copy of the stored iterate nearest to sig under the
// relative L1 metric (sum |a-b| / (1 + sum |b|)), or nil when the registry
// holds nothing for key. The copy is the caller's to keep; registry
// storage is never aliased, so a downstream corruption (including the
// warmstart.seed.corrupt chaos site, which fires here on the copy) cannot
// poison later lookups.
func (r *Registry) Lookup(key any, sig []float64) []float64 {
	if r == nil || key == nil {
		return nil
	}
	r.mu.Lock()
	var best *entry
	for i := range r.byKey[key] {
		e := &r.byKey[key][i]
		d, ok := relL1(sig, e.sig)
		if !ok {
			continue
		}
		e.dist = d
		if best == nil || d < best.dist {
			best = e
		}
	}
	var out []float64
	if best != nil {
		out = append([]float64(nil), best.vec...)
	}
	r.mu.Unlock()
	if out == nil {
		metLookupMiss.Inc()
		return nil
	}
	metLookupHit.Inc()
	if faultinject.Enabled() {
		fiSeedCorrupt.Corrupt(out)
	}
	return out
}

// Len reports the number of stored entries for key (diagnostics/tests).
func (r *Registry) Len(key any) int {
	if r == nil || key == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byKey[key])
}

// relL1 is the L1 distance from query signature a to candidate b, scaled
// by the query's own norm; ok is false on length mismatch (signatures
// from a different builder layout are never comparable). Normalizing by
// the query — constant across the candidates of one Lookup — keeps the
// ranking identical to plain L1 nearest-neighbor while making the
// magnitude comparable across parameter scales.
func relL1(a, b []float64) (d float64, ok bool) {
	if len(a) != len(b) {
		return 0, false
	}
	var diff, norm float64
	for i := range a {
		v := a[i] - b[i]
		if v < 0 {
			v = -v
		}
		diff += v
		w := a[i]
		if w < 0 {
			w = -w
		}
		norm += w
	}
	return diff / (1 + norm), true
}
