package warmstart

import "testing"

type key struct{ id int }

func TestRegistryNearestNeighbor(t *testing.T) {
	r := NewRegistry()
	k := &key{1}
	for i := 0; i < 4; i++ {
		sig := []float64{float64(10 * i)}
		r.Insert(k, sig, []float64{float64(i)})
	}
	got := r.Lookup(k, []float64{21})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Lookup(21) = %v, want the sig=20 entry's vector [2]", got)
	}
	got = r.Lookup(k, []float64{-3})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Lookup(-3) = %v, want the sig=0 entry's vector [0]", got)
	}
}

func TestRegistryKeyIsolation(t *testing.T) {
	r := NewRegistry()
	k1, k2 := &key{1}, &key{2}
	r.Insert(k1, []float64{1}, []float64{42})
	if got := r.Lookup(k2, []float64{1}); got != nil {
		t.Fatalf("Lookup on a different topology key returned %v", got)
	}
	if got := r.Lookup(k1, []float64{1}); got == nil {
		t.Fatal("Lookup on the inserting key missed")
	}
}

func TestRegistrySignatureLengthMismatch(t *testing.T) {
	r := NewRegistry()
	k := &key{1}
	r.Insert(k, []float64{1, 2}, []float64{0.5})
	if got := r.Lookup(k, []float64{1}); got != nil {
		t.Fatalf("Lookup with mismatched signature length returned %v", got)
	}
}

func TestRegistryEvictsOldest(t *testing.T) {
	r := NewRegistry()
	k := &key{1}
	for i := 0; i < maxEntriesPerKey+3; i++ {
		r.Insert(k, []float64{float64(i)}, []float64{float64(i)})
	}
	if got := r.Len(k); got != maxEntriesPerKey {
		t.Fatalf("Len = %d, want the %d-entry bound", got, maxEntriesPerKey)
	}
	// The three oldest points (sigs 0, 1, 2) are gone: a query at sig=0
	// must resolve to the oldest survivor, sig=3.
	got := r.Lookup(k, []float64{0})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Lookup(0) after eviction = %v, want [3]", got)
	}
}

func TestRegistryLookupReturnsCopy(t *testing.T) {
	r := NewRegistry()
	k := &key{1}
	r.Insert(k, []float64{1}, []float64{0.25, 0.75})
	first := r.Lookup(k, []float64{1})
	first[0] = -1 // caller corrupts its copy
	second := r.Lookup(k, []float64{1})
	if second[0] != 0.25 {
		t.Fatalf("registry storage was aliased: second lookup sees %v", second)
	}
}

func TestRegistryNilAndDegenerate(t *testing.T) {
	var r *Registry
	r.Insert(&key{1}, []float64{1}, []float64{1}) // must not panic
	if got := r.Lookup(&key{1}, []float64{1}); got != nil {
		t.Fatalf("nil registry Lookup = %v", got)
	}
	if got := r.Len(&key{1}); got != 0 {
		t.Fatalf("nil registry Len = %d", got)
	}
	live := NewRegistry()
	live.Insert(nil, []float64{1}, []float64{1})
	live.Insert(&key{1}, []float64{1}, nil)
	if got := live.Lookup(nil, []float64{1}); got != nil {
		t.Fatalf("nil-key Lookup = %v", got)
	}
	if got := live.Len(&key{1}); got != 0 {
		t.Fatalf("degenerate inserts were stored: Len = %d", got)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	k := &key{1}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sig := []float64{float64(w*1000 + i)}
				r.Insert(k, sig, []float64{1})
				r.Lookup(k, sig)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := r.Len(k); got != maxEntriesPerKey {
		t.Fatalf("Len = %d after concurrent churn, want %d", got, maxEntriesPerKey)
	}
}

func TestRelL1(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
		ok   bool
	}{
		{[]float64{1, 2}, []float64{1, 2}, 0, true},
		{[]float64{2, 2}, []float64{1, 2}, 1.0 / 5, true},
		{[]float64{1}, []float64{1, 2}, 0, false},
		{nil, nil, 0, true},
	}
	for i, c := range cases {
		d, ok := relL1(c.a, c.b)
		if ok != c.ok || d != c.want {
			t.Fatalf("case %d: relL1(%v, %v) = (%v, %v), want (%v, %v)",
				i, c.a, c.b, d, ok, c.want, c.ok)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	r := NewRegistry()
	k := &key{1}
	sig := make([]float64, 64)
	vec := make([]float64, 300)
	for i := 0; i < maxEntriesPerKey; i++ {
		sig[0] = float64(i)
		r.Insert(k, sig, vec)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sig[0] = float64(i % 10)
		if r.Lookup(k, sig) == nil {
			b.Fatal("miss")
		}
	}
}
