package voter

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		give Outcome
		want string
	}{
		{Correct, "correct"},
		{Erroneous, "erroneous"},
		{Skipped, "skipped"},
		{Outcome(9), "Outcome(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestNewCountRule(t *testing.T) {
	if _, err := NewCountRule(0); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("err = %v", err)
	}
	r, err := NewCountRule(3)
	if err != nil || r.Threshold != 3 {
		t.Errorf("NewCountRule = %+v, %v", r, err)
	}
}

func TestCountRuleClassify(t *testing.T) {
	rule := CountRule{Threshold: 3}
	tests := []struct {
		name string
		give []bool
		want Outcome
	}{
		{name: "all correct", give: []bool{true, true, true, true}, want: Correct},
		{name: "exactly threshold correct", give: []bool{true, true, true, false}, want: Correct},
		{name: "exactly threshold wrong", give: []bool{false, false, false, true}, want: Erroneous},
		{name: "all wrong", give: []bool{false, false, false, false}, want: Erroneous},
		{name: "split two-two", give: []bool{true, true, false, false}, want: Skipped},
		{name: "too few votes", give: []bool{true, true}, want: Skipped},
		{name: "no votes", give: nil, want: Skipped},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := rule.Classify(tt.give); got != tt.want {
				t.Errorf("Classify(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestThresholdDecide(t *testing.T) {
	th, err := NewThreshold(4)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		give []int
		want Decision
	}{
		{name: "clear winner", give: []int{7, 7, 7, 7, 3, 2}, want: Decision{Label: 7, Decided: true}},
		{name: "below threshold", give: []int{7, 7, 7, 3, 3, 2}, want: Decision{}},
		{name: "empty", give: nil, want: Decision{}},
		{name: "unanimous", give: []int{1, 1, 1, 1}, want: Decision{Label: 1, Decided: true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := th.Decide(tt.give); got != tt.want {
				t.Errorf("Decide(%v) = %+v, want %+v", tt.give, got, tt.want)
			}
		})
	}
	if _, err := NewThreshold(0); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("err = %v", err)
	}
	if th.Name() == "" {
		t.Error("empty name")
	}
}

func TestThresholdTieSkips(t *testing.T) {
	th := Threshold{K: 2}
	if got := th.Decide([]int{1, 1, 2, 2}); got.Decided {
		t.Errorf("tie decided: %+v", got)
	}
}

func TestMajority(t *testing.T) {
	var m Majority
	tests := []struct {
		name string
		give []int
		want Decision
	}{
		{name: "majority of three", give: []int{5, 5, 9}, want: Decision{Label: 5, Decided: true}},
		{name: "no majority", give: []int{5, 9, 7}, want: Decision{}},
		{name: "even split", give: []int{5, 5, 9, 9}, want: Decision{}},
		{name: "empty", give: nil, want: Decision{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Decide(tt.give); got != tt.want {
				t.Errorf("Decide(%v) = %+v, want %+v", tt.give, got, tt.want)
			}
		})
	}
	if m.Name() != "majority" {
		t.Error("name")
	}
}

func TestUnanimity(t *testing.T) {
	var u Unanimity
	if got := u.Decide([]int{4, 4, 4}); !got.Decided || got.Label != 4 {
		t.Errorf("Decide = %+v", got)
	}
	if got := u.Decide([]int{4, 4, 5}); got.Decided {
		t.Errorf("Decide = %+v", got)
	}
	if got := u.Decide(nil); got.Decided {
		t.Errorf("Decide(nil) = %+v", got)
	}
	if u.Name() != "unanimity" {
		t.Error("name")
	}
}

func TestPlurality(t *testing.T) {
	var p Plurality
	if got := p.Decide([]int{1, 2, 2}); !got.Decided || got.Label != 2 {
		t.Errorf("Decide = %+v", got)
	}
	if got := p.Decide([]int{1, 2}); got.Decided {
		t.Errorf("tie should skip: %+v", got)
	}
	if p.Name() != "plurality" {
		t.Error("name")
	}
}

func TestClassifyDecision(t *testing.T) {
	tests := []struct {
		name  string
		give  Decision
		truth int
		want  Outcome
	}{
		{name: "correct", give: Decision{Label: 3, Decided: true}, truth: 3, want: Correct},
		{name: "wrong", give: Decision{Label: 4, Decided: true}, truth: 3, want: Erroneous},
		{name: "skip", give: Decision{}, truth: 3, want: Skipped},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyDecision(tt.give, tt.truth); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTally(t *testing.T) {
	var ta Tally
	for _, o := range []Outcome{Correct, Correct, Correct, Erroneous, Skipped} {
		ta.Record(o)
	}
	if ta.Total() != 5 {
		t.Errorf("Total = %d", ta.Total())
	}
	if ta.Reliability() != 0.6 {
		t.Errorf("Reliability = %g", ta.Reliability())
	}
	if ta.ErrorRate() != 0.2 {
		t.Errorf("ErrorRate = %g", ta.ErrorRate())
	}
	if ta.Safety() != 0.8 {
		t.Errorf("Safety = %g", ta.Safety())
	}
	var empty Tally
	if empty.Reliability() != 0 || empty.ErrorRate() != 0 || empty.Safety() != 0 {
		t.Error("empty tally rates should be zero")
	}
}

// Property: with BFT thresholds (K > n/2), at most one label can reach the
// threshold, so a decision is never ambiguous and equals the plurality
// winner when decided.
func TestThresholdAgreesWithPluralityProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		labels := make([]int, len(raw))
		for i, r := range raw {
			labels[i] = int(r % 4)
		}
		k := len(labels)/2 + 1
		d := Threshold{K: k}.Decide(labels)
		if !d.Decided {
			return true
		}
		p := Plurality{}.Decide(labels)
		return p.Decided && p.Label == d.Label
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the counting rule never reports both thresholds met (for
// threshold > half the module count).
func TestCountRuleConsistencyProperty(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) > 9 {
			bits = bits[:9]
		}
		threshold := len(bits)/2 + 1
		if threshold == 0 {
			return true
		}
		rule := CountRule{Threshold: threshold}
		o := rule.Classify(bits)
		return o == Correct || o == Erroneous || o == Skipped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
