// Package voter implements the output-decision schemes of an N-version
// perception system: the paper's BFT-style counting rule (assumptions
// A.2/A.3, errors only when at least 2f+1 or 2f+r+1 modules output
// incorrectly) and label-level voting schemes (threshold, majority,
// unanimity, plurality) for the event-level simulator.
package voter

import (
	"errors"
	"fmt"
)

// Outcome classifies a single voted perception output.
type Outcome int

// Voting outcomes. A skipped output is "inconclusive but safe": the voter
// could not gather enough agreeing outputs and suppresses the result.
const (
	Correct Outcome = iota + 1
	Erroneous
	Skipped
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Correct:
		return "correct"
	case Erroneous:
		return "erroneous"
	case Skipped:
		return "skipped"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// ErrBadThreshold is returned for non-positive decision thresholds.
var ErrBadThreshold = errors.New("voter: threshold must be positive")

// CountRule is the paper's abstract voter: given which operational modules
// produced a correct output, the decision is Correct when at least
// Threshold outputs are correct, Erroneous when at least Threshold are
// incorrect, and Skipped otherwise.
type CountRule struct {
	Threshold int
}

// NewCountRule validates and returns a counting rule.
func NewCountRule(threshold int) (CountRule, error) {
	if threshold <= 0 {
		return CountRule{}, ErrBadThreshold
	}
	return CountRule{Threshold: threshold}, nil
}

// Classify applies the rule to per-module correctness flags. Modules that
// are non-operational or rejuvenating simply do not appear in the slice.
func (c CountRule) Classify(correct []bool) Outcome {
	var right, wrong int
	for _, ok := range correct {
		if ok {
			right++
		} else {
			wrong++
		}
	}
	switch {
	case right >= c.Threshold:
		return Correct
	case wrong >= c.Threshold:
		return Erroneous
	default:
		return Skipped
	}
}

// Decision is the result of a label vote.
type Decision struct {
	Label   int
	Decided bool
}

// LabelScheme decides a final label from individual module labels.
type LabelScheme interface {
	// Decide returns the voted label. Decided is false when the scheme
	// cannot reach a decision (the voter skips the output).
	Decide(labels []int) Decision

	// Name identifies the scheme in reports.
	Name() string
}

// Threshold is a k-out-of-n label scheme: a label wins when at least K
// modules vote for it. With the BFT thresholds used here at most one label
// can win; for generic K ties produce a skip.
type Threshold struct {
	K int
}

// NewThreshold validates and returns a threshold scheme.
func NewThreshold(k int) (Threshold, error) {
	if k <= 0 {
		return Threshold{}, ErrBadThreshold
	}
	return Threshold{K: k}, nil
}

// Name implements LabelScheme.
func (t Threshold) Name() string { return fmt.Sprintf("%d-out-of-n", t.K) }

// Decide implements LabelScheme.
func (t Threshold) Decide(labels []int) Decision {
	best, bestCount, tie := 0, 0, false
	for label, count := range tally(labels) {
		switch {
		case count > bestCount:
			best, bestCount, tie = label, count, false
		case count == bestCount:
			tie = true
		}
	}
	if bestCount < t.K || tie {
		return Decision{}
	}
	return Decision{Label: best, Decided: true}
}

// Majority decides by simple majority of the votes cast.
type Majority struct{}

// Name implements LabelScheme.
func (Majority) Name() string { return "majority" }

// Decide implements LabelScheme.
func (Majority) Decide(labels []int) Decision {
	if len(labels) == 0 {
		return Decision{}
	}
	return Threshold{K: len(labels)/2 + 1}.Decide(labels)
}

// Unanimity decides only when every module agrees.
type Unanimity struct{}

// Name implements LabelScheme.
func (Unanimity) Name() string { return "unanimity" }

// Decide implements LabelScheme.
func (Unanimity) Decide(labels []int) Decision {
	if len(labels) == 0 {
		return Decision{}
	}
	first := labels[0]
	for _, l := range labels[1:] {
		if l != first {
			return Decision{}
		}
	}
	return Decision{Label: first, Decided: true}
}

// Plurality picks the most voted label; ties skip.
type Plurality struct{}

// Name implements LabelScheme.
func (Plurality) Name() string { return "plurality" }

// Decide implements LabelScheme.
func (Plurality) Decide(labels []int) Decision {
	return Threshold{K: 1}.Decide(labels)
}

// ClassifyDecision compares a label decision against the ground truth.
func ClassifyDecision(d Decision, truth int) Outcome {
	switch {
	case !d.Decided:
		return Skipped
	case d.Label == truth:
		return Correct
	default:
		return Erroneous
	}
}

// Tally counts outcomes over a sequence of decisions.
type Tally struct {
	Correct, Erroneous, Skipped int
}

// Record adds an outcome.
func (t *Tally) Record(o Outcome) {
	switch o {
	case Correct:
		t.Correct++
	case Erroneous:
		t.Erroneous++
	case Skipped:
		t.Skipped++
	}
}

// Total returns the number of recorded outcomes.
func (t *Tally) Total() int { return t.Correct + t.Erroneous + t.Skipped }

// Reliability returns the fraction of outputs that were correct (the
// paper's output reliability metric: skips are safe but not correct).
func (t *Tally) Reliability() float64 {
	if t.Total() == 0 {
		return 0
	}
	return float64(t.Correct) / float64(t.Total())
}

// ErrorRate returns the fraction of outputs that were erroneous.
func (t *Tally) ErrorRate() float64 {
	if t.Total() == 0 {
		return 0
	}
	return float64(t.Erroneous) / float64(t.Total())
}

// Safety returns 1 - ErrorRate: the fraction of outputs that were not
// perception errors. This is the quantity the paper's reliability
// functions R = 1 - P(error) measure — an inconclusive-but-safe skip
// counts toward it, unlike Reliability.
func (t *Tally) Safety() float64 {
	if t.Total() == 0 {
		return 0
	}
	return 1 - t.ErrorRate()
}

func tally(labels []int) map[int]int {
	m := make(map[int]int, len(labels))
	for _, l := range labels {
		m[l]++
	}
	return m
}
