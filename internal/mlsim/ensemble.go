// Package mlsim simulates the ML modules of an N-version perception
// system at two levels of abstraction:
//
//   - ErrorModel generates correlated per-module correctness outcomes from
//     the paper's parameters (p, p', alpha) using a common-cause chain
//     model. It is the generative counterpart of the analytic dependent-
//     error formulas: a request triggers a common perturbation with
//     probability p, the perturbation fools one healthy module outright
//     and every other healthy module with probability alpha, while
//     compromised modules fail independently with probability p'.
//   - SignBenchmark is a synthetic traffic-sign-like classification task
//     with diverse prototype classifiers. The paper estimates p = 0.08 as
//     the mean inaccuracy of LeNet/AlexNet/ResNet on GTSRB; the benchmark
//     regenerates a comparable scalar without the dataset or the networks
//     (see DESIGN.md, substitutions).
package mlsim

import (
	"errors"
	"fmt"

	"nvrel/internal/des"
)

// ErrorModel draws joint correctness outcomes for the modules of a
// perception system.
type ErrorModel struct {
	// P is a healthy module's marginal exposure to the common-cause
	// perturbation (the paper's p).
	P float64
	// PPrime is a compromised module's independent error probability.
	PPrime float64
	// Alpha is the probability that the perturbation also fools each
	// additional healthy module (the paper's error dependency).
	Alpha float64
}

// NewErrorModel validates the parameters.
func NewErrorModel(p, pPrime, alpha float64) (*ErrorModel, error) {
	for name, v := range map[string]float64{"p": p, "p'": pPrime, "alpha": alpha} {
		if v < 0 || v > 1 || v != v {
			return nil, fmt.Errorf("mlsim: parameter %s = %g outside [0,1]", name, v)
		}
	}
	return &ErrorModel{P: p, PPrime: pPrime, Alpha: alpha}, nil
}

// SampleCorrectness returns per-module correctness for one perception
// request: the first healthy entries then compromised entries. The
// returned slice is freshly allocated.
func (m *ErrorModel) SampleCorrectness(rng *des.RNG, healthy, compromised int) []bool {
	if healthy < 0 || compromised < 0 {
		panic("mlsim: negative module count")
	}
	out := make([]bool, healthy+compromised)
	for i := range out {
		out[i] = true
	}
	if healthy > 0 && rng.Bernoulli(m.P) {
		// Common-cause perturbation: one healthy module is fooled outright,
		// the rest independently with probability alpha.
		victim := rng.Intn(healthy)
		out[victim] = false
		for i := 0; i < healthy; i++ {
			if i != victim && rng.Bernoulli(m.Alpha) {
				out[i] = false
			}
		}
	}
	for i := 0; i < compromised; i++ {
		if rng.Bernoulli(m.PPrime) {
			out[healthy+i] = false
		}
	}
	return out
}

// WrongLabelPolicy controls which wrong label erring modules output.
type WrongLabelPolicy int

const (
	// CommonWrongLabel makes all erring modules agree on one wrong label
	// (adversarial worst case for a threshold voter: wrong outputs can
	// reach the decision threshold).
	CommonWrongLabel WrongLabelPolicy = iota + 1
	// IndependentWrongLabels draws a wrong label per erring module
	// (benign misclassification: wrong outputs rarely agree).
	IndependentWrongLabels
)

// String returns the policy name.
func (p WrongLabelPolicy) String() string {
	switch p {
	case CommonWrongLabel:
		return "common-wrong-label"
	case IndependentWrongLabels:
		return "independent-wrong-labels"
	default:
		return fmt.Sprintf("WrongLabelPolicy(%d)", int(p))
	}
}

// ErrTooFewClasses is returned when label sampling needs at least two
// classes.
var ErrTooFewClasses = errors.New("mlsim: need at least two classes")

// SampleLabels draws per-module output labels for a request with the given
// ground-truth label. Erring modules output a wrong label chosen by the
// policy.
func (m *ErrorModel) SampleLabels(rng *des.RNG, truth, classes, healthy, compromised int, policy WrongLabelPolicy) ([]int, error) {
	if classes < 2 {
		return nil, ErrTooFewClasses
	}
	if truth < 0 || truth >= classes {
		return nil, fmt.Errorf("mlsim: truth label %d outside [0,%d)", truth, classes)
	}
	correct := m.SampleCorrectness(rng, healthy, compromised)
	labels := make([]int, len(correct))
	common := wrongLabel(rng, truth, classes)
	for i, ok := range correct {
		switch {
		case ok:
			labels[i] = truth
		case policy == CommonWrongLabel:
			labels[i] = common
		default:
			labels[i] = wrongLabel(rng, truth, classes)
		}
	}
	return labels, nil
}

// wrongLabel samples a label different from truth.
func wrongLabel(rng *des.RNG, truth, classes int) int {
	l := rng.Intn(classes - 1)
	if l >= truth {
		l++
	}
	return l
}
