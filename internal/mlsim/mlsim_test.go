package mlsim

import (
	"errors"
	"math"
	"testing"

	"nvrel/internal/des"
	"nvrel/internal/reliability"
)

func TestNewErrorModelValidation(t *testing.T) {
	if _, err := NewErrorModel(-0.1, 0.5, 0.5); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := NewErrorModel(0.1, 1.5, 0.5); err == nil {
		t.Error("p' > 1 accepted")
	}
	if _, err := NewErrorModel(0.1, 0.5, math.NaN()); err == nil {
		t.Error("NaN alpha accepted")
	}
	if _, err := NewErrorModel(0.08, 0.5, 0.5); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSampleCorrectnessMarginals(t *testing.T) {
	m, err := NewErrorModel(0.08, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(1)
	const (
		samples     = 200000
		healthy     = 4
		compromised = 2
	)
	healthyErrs, compromisedErrs := 0, 0
	for s := 0; s < samples; s++ {
		out := m.SampleCorrectness(rng, healthy, compromised)
		if len(out) != healthy+compromised {
			t.Fatalf("len = %d", len(out))
		}
		for i := 0; i < healthy; i++ {
			if !out[i] {
				healthyErrs++
			}
		}
		for i := healthy; i < healthy+compromised; i++ {
			if !out[i] {
				compromisedErrs++
			}
		}
	}
	// Healthy marginal: p * (1/i + (i-1)/i * alpha) per module.
	wantHealthy := 0.08 * (1.0/healthy + float64(healthy-1)/healthy*0.5)
	gotHealthy := float64(healthyErrs) / float64(samples*healthy)
	if math.Abs(gotHealthy-wantHealthy) > 0.003 {
		t.Errorf("healthy error marginal = %.4f, want ~%.4f", gotHealthy, wantHealthy)
	}
	gotCompromised := float64(compromisedErrs) / float64(samples*compromised)
	if math.Abs(gotCompromised-0.5) > 0.005 {
		t.Errorf("compromised error marginal = %.4f, want ~0.5", gotCompromised)
	}
}

func TestSampleCorrectnessAtLeastOneVictim(t *testing.T) {
	// With p = 1 the perturbation always fires: at least one healthy
	// module must err in every sample.
	m, err := NewErrorModel(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(2)
	for s := 0; s < 1000; s++ {
		out := m.SampleCorrectness(rng, 5, 0)
		errs := 0
		for _, ok := range out {
			if !ok {
				errs++
			}
		}
		if errs != 1 {
			// alpha = 0: exactly the single victim errs.
			t.Fatalf("errs = %d, want 1", errs)
		}
	}
}

func TestSampleCorrectnessFullDependency(t *testing.T) {
	// alpha = 1: when the perturbation fires, every healthy module errs.
	m, err := NewErrorModel(0.5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(3)
	for s := 0; s < 2000; s++ {
		out := m.SampleCorrectness(rng, 4, 0)
		errs := 0
		for _, ok := range out {
			if !ok {
				errs++
			}
		}
		if errs != 0 && errs != 4 {
			t.Fatalf("errs = %d, want 0 or 4 under full dependency", errs)
		}
	}
}

// TestSampleCorrectnessMatchesGenerativeModel verifies that the sampler's
// joint law equals the closed-form reliability.Generative model: the
// Monte Carlo frequency of ">= threshold wrong" must match 1 - R.
func TestSampleCorrectnessMatchesGenerativeModel(t *testing.T) {
	const (
		healthy     = 4
		compromised = 2
		threshold   = 4
		samples     = 400000
	)
	pr := reliability.Params{P: 0.08, PPrime: 0.5, Alpha: 0.5}
	rf, err := reliability.Generative(pr, reliability.Scheme{N: 6, F: 1, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewErrorModel(pr.P, pr.PPrime, pr.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(123)
	errCount := 0
	for s := 0; s < samples; s++ {
		out := m.SampleCorrectness(rng, healthy, compromised)
		wrong := 0
		for _, ok := range out {
			if !ok {
				wrong++
			}
		}
		if wrong >= threshold {
			errCount++
		}
	}
	got := float64(errCount) / samples
	want := 1 - rf(healthy, compromised, 0)
	if math.Abs(got-want) > 0.002 {
		t.Errorf("P(>=%d wrong) = %.5f, closed form %.5f", threshold, got, want)
	}
}

func TestSampleCorrectnessPanicsOnNegative(t *testing.T) {
	m, _ := NewErrorModel(0.1, 0.5, 0.5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.SampleCorrectness(des.NewRNG(1), -1, 0)
}

func TestSampleLabels(t *testing.T) {
	m, err := NewErrorModel(0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRNG(4)
	const (
		truth   = 7
		classes = 10
	)
	for s := 0; s < 2000; s++ {
		labels, err := m.SampleLabels(rng, truth, classes, 3, 2, CommonWrongLabel)
		if err != nil {
			t.Fatal(err)
		}
		if len(labels) != 5 {
			t.Fatalf("len = %d", len(labels))
		}
		var wrong []int
		for _, l := range labels {
			if l < 0 || l >= classes {
				t.Fatalf("label %d out of range", l)
			}
			if l != truth {
				wrong = append(wrong, l)
			}
		}
		// Under CommonWrongLabel, every erring module shares one label.
		for i := 1; i < len(wrong); i++ {
			if wrong[i] != wrong[0] {
				t.Fatalf("wrong labels disagree under CommonWrongLabel: %v", wrong)
			}
		}
	}
}

func TestSampleLabelsIndependentPolicy(t *testing.T) {
	m, _ := NewErrorModel(1, 1, 1)
	rng := des.NewRNG(5)
	disagreements := 0
	for s := 0; s < 500; s++ {
		labels, err := m.SampleLabels(rng, 0, 50, 4, 0, IndependentWrongLabels)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, l := range labels {
			seen[l] = true
		}
		if len(seen) > 1 {
			disagreements++
		}
	}
	if disagreements < 400 {
		t.Errorf("independent wrong labels almost always disagree with 50 classes; got %d/500", disagreements)
	}
}

func TestSampleLabelsValidation(t *testing.T) {
	m, _ := NewErrorModel(0.1, 0.5, 0.5)
	rng := des.NewRNG(1)
	if _, err := m.SampleLabels(rng, 0, 1, 2, 0, CommonWrongLabel); !errors.Is(err, ErrTooFewClasses) {
		t.Errorf("err = %v", err)
	}
	if _, err := m.SampleLabels(rng, 9, 5, 2, 0, CommonWrongLabel); err == nil {
		t.Error("out-of-range truth accepted")
	}
}

func TestWrongLabelNeverTruth(t *testing.T) {
	rng := des.NewRNG(6)
	for truth := 0; truth < 5; truth++ {
		for s := 0; s < 200; s++ {
			if l := wrongLabel(rng, truth, 5); l == truth || l < 0 || l >= 5 {
				t.Fatalf("wrongLabel(truth=%d) = %d", truth, l)
			}
		}
	}
}

func TestWrongLabelPolicyString(t *testing.T) {
	if CommonWrongLabel.String() != "common-wrong-label" ||
		IndependentWrongLabels.String() != "independent-wrong-labels" ||
		WrongLabelPolicy(9).String() != "WrongLabelPolicy(9)" {
		t.Error("policy names wrong")
	}
}

func TestNewSignBenchmarkValidation(t *testing.T) {
	if _, err := NewSignBenchmark(BenchmarkConfig{Classes: 1, Dims: 8}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := NewSignBenchmark(BenchmarkConfig{Classes: 5, Dims: 0}); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := NewSignBenchmark(BenchmarkConfig{Classes: 5, Dims: 4, InputNoise: -1}); err == nil {
		t.Error("negative noise accepted")
	}
}

func defaultBenchmark(t *testing.T) *SignBenchmark {
	t.Helper()
	b, err := NewSignBenchmark(DefaultBenchmarkConfig())
	if err != nil {
		t.Fatalf("NewSignBenchmark: %v", err)
	}
	return b
}

func TestDefaultBenchmarkReproducesPaperP(t *testing.T) {
	// The calibrated defaults play the role of "average inaccuracy of
	// LeNet/AlexNet/ResNet on GTSRB": the measured p must land near the
	// paper's 0.08.
	b := defaultBenchmark(t)
	var cs []*Classifier
	for i := 0; i < 3; i++ {
		c, err := b.NewClassifier(DefaultDiversity, uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	p, err := b.EstimateEnsembleInaccuracy(cs, 6000, des.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.05 || p > 0.11 {
		t.Errorf("measured p = %.4f, want near the paper's 0.08", p)
	}
}

func TestBenchmarkNoiselessClassifierIsPerfect(t *testing.T) {
	b, err := NewSignBenchmark(BenchmarkConfig{Classes: 10, Dims: 16, InputNoise: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.NewClassifier(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.EstimateInaccuracy(c, 2000, des.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("noiseless inaccuracy = %g, want 0", p)
	}
}

func TestBenchmarkHealthyInaccuracyModerate(t *testing.T) {
	// The default benchmark is tuned so that diverse healthy classifiers
	// land in the paper's regime (a few percent inaccuracy).
	b := defaultBenchmark(t)
	var cs []*Classifier
	for i := 0; i < 3; i++ {
		c, err := b.NewClassifier(DefaultDiversity, uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	p, err := b.EstimateEnsembleInaccuracy(cs, 4000, des.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 0.3 {
		t.Errorf("ensemble inaccuracy = %g, want in (0, 0.3]", p)
	}
}

func TestBenchmarkCompromiseDegradesAccuracy(t *testing.T) {
	b := defaultBenchmark(t)
	c, err := b.NewClassifier(0.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := b.EstimateInaccuracy(c, 4000, des.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	c.Compromise(3)
	if !c.Compromised() {
		t.Error("Compromised() = false after Compromise")
	}
	attacked, err := b.EstimateInaccuracy(c, 4000, des.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if attacked <= healthy+0.1 {
		t.Errorf("attack did not degrade accuracy: healthy %g, attacked %g", healthy, attacked)
	}
	c.Rejuvenate()
	if c.Compromised() {
		t.Error("Compromised() = true after Rejuvenate")
	}
	restored, err := b.EstimateInaccuracy(c, 4000, des.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(restored-healthy) > 0.02 {
		t.Errorf("rejuvenation did not restore accuracy: %g vs %g", restored, healthy)
	}
}

func TestBenchmarkDiversityCreatesDisagreement(t *testing.T) {
	// Diverse modules must err on (partially) different inputs; identical
	// modules err identically.
	b := defaultBenchmark(t)
	c1, _ := b.NewClassifier(0.15, 31)
	c2, _ := b.NewClassifier(0.15, 32)
	rng := des.NewRNG(7)
	disagree := 0
	const n = 3000
	for i := 0; i < n; i++ {
		x, _ := b.Sample(rng)
		if c1.Classify(x) != c2.Classify(x) {
			disagree++
		}
	}
	if disagree == 0 {
		t.Error("diverse classifiers never disagree")
	}
}

func TestBenchmarkEstimateValidation(t *testing.T) {
	b := defaultBenchmark(t)
	c, _ := b.NewClassifier(0.1, 1)
	if _, err := b.EstimateInaccuracy(c, 0, des.NewRNG(1)); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := b.EstimateEnsembleInaccuracy(nil, 10, des.NewRNG(1)); err == nil {
		t.Error("empty ensemble accepted")
	}
	if _, err := b.NewClassifier(-1, 1); err == nil {
		t.Error("negative diversity accepted")
	}
}

func TestBenchmarkSampleLabelRange(t *testing.T) {
	b := defaultBenchmark(t)
	rng := des.NewRNG(8)
	for i := 0; i < 500; i++ {
		x, label := b.Sample(rng)
		if label < 0 || label >= b.Classes() {
			t.Fatalf("label %d out of range", label)
		}
		if len(x) != 24 {
			t.Fatalf("dim = %d", len(x))
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := des.NewRNG(9)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		g := gaussian(rng)
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("gaussian mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("gaussian variance = %g", variance)
	}
}
