package mlsim

import (
	"errors"
	"fmt"
	"math"

	"nvrel/internal/des"
)

// SignBenchmark is a synthetic stand-in for the German Traffic Sign
// Recognition Benchmark: C classes are represented by prototype vectors in
// D dimensions; inputs are prototypes corrupted by observation noise.
// Classifiers are diverse noisy prototype matchers: each module carries its
// own perturbed copy of the prototypes, so modules err on different inputs
// (the diversity NVP relies on) while sharing a common task difficulty.
type SignBenchmark struct {
	classes    int
	dims       int
	inputNoise float64
	prototypes [][]float64
}

// BenchmarkConfig configures a synthetic sign benchmark.
type BenchmarkConfig struct {
	// Classes is the number of sign classes (GTSRB has 43).
	Classes int
	// Dims is the feature dimensionality.
	Dims int
	// InputNoise is the standard deviation of the observation noise added
	// to each prototype coordinate when sampling an input.
	InputNoise float64
	// Seed fixes the prototype geometry.
	Seed uint64
}

// DefaultBenchmarkConfig returns the calibrated stand-in for GTSRB: 43
// classes (as GTSRB) with noise and diversity tuned so a three-module
// ensemble of diverse classifiers (DefaultDiversity) measures roughly the
// paper's healthy inaccuracy p = 0.08.
func DefaultBenchmarkConfig() BenchmarkConfig {
	return BenchmarkConfig{Classes: 43, Dims: 24, InputNoise: 0.2, Seed: 1}
}

// DefaultDiversity is the per-module weight-perturbation level paired with
// DefaultBenchmarkConfig.
const DefaultDiversity = 0.1

// NewSignBenchmark builds the benchmark task.
func NewSignBenchmark(cfg BenchmarkConfig) (*SignBenchmark, error) {
	if cfg.Classes < 2 {
		return nil, ErrTooFewClasses
	}
	if cfg.Dims <= 0 {
		return nil, fmt.Errorf("mlsim: dims = %d must be positive", cfg.Dims)
	}
	if cfg.InputNoise < 0 || math.IsNaN(cfg.InputNoise) {
		return nil, fmt.Errorf("mlsim: input noise = %g must be non-negative", cfg.InputNoise)
	}
	rng := des.NewRNG(cfg.Seed)
	b := &SignBenchmark{
		classes:    cfg.Classes,
		dims:       cfg.Dims,
		inputNoise: cfg.InputNoise,
		prototypes: make([][]float64, cfg.Classes),
	}
	for c := range b.prototypes {
		v := make([]float64, cfg.Dims)
		for d := range v {
			v[d] = gaussian(rng)
		}
		normalize(v)
		b.prototypes[c] = v
	}
	return b, nil
}

// Classes returns the number of classes.
func (b *SignBenchmark) Classes() int { return b.classes }

// Sample draws a labeled input: a class chosen uniformly and its prototype
// plus observation noise.
func (b *SignBenchmark) Sample(rng *des.RNG) (x []float64, label int) {
	label = rng.Intn(b.classes)
	x = make([]float64, b.dims)
	proto := b.prototypes[label]
	for d := range x {
		x[d] = proto[d] + b.inputNoise*gaussian(rng)
	}
	return x, label
}

// Classifier is a diverse prototype matcher, one per ML module version.
type Classifier struct {
	weights     [][]float64
	attackNoise float64
	rng         *des.RNG
}

// NewClassifier derives a module-specific classifier from the benchmark.
// diversity is the standard deviation of the per-module weight
// perturbation: zero yields identical modules, larger values yield more
// diverse (and individually less accurate) modules.
func (b *SignBenchmark) NewClassifier(diversity float64, seed uint64) (*Classifier, error) {
	if diversity < 0 || math.IsNaN(diversity) {
		return nil, errors.New("mlsim: diversity must be non-negative")
	}
	rng := des.NewRNG(seed)
	w := make([][]float64, b.classes)
	for c, proto := range b.prototypes {
		row := make([]float64, b.dims)
		for d, v := range proto {
			row[d] = v + diversity*gaussian(rng)
		}
		w[c] = row
	}
	return &Classifier{weights: w, rng: rng}, nil
}

// Compromise degrades the classifier: an attack or fault adds persistent
// noise of the given magnitude to every inference (the paper's compromised
// state, where accuracy decays toward random guessing as the magnitude
// grows).
func (c *Classifier) Compromise(magnitude float64) {
	if magnitude < 0 {
		magnitude = 0
	}
	c.attackNoise = magnitude
}

// Rejuvenate restores the classifier to its healthy state (the paper's
// reload-from-safe-memory rejuvenation action).
func (c *Classifier) Rejuvenate() { c.attackNoise = 0 }

// Compromised reports whether the classifier currently carries attack
// noise.
func (c *Classifier) Compromised() bool { return c.attackNoise > 0 }

// Classify returns the predicted label for input x.
func (c *Classifier) Classify(x []float64) int {
	best, bestScore := 0, math.Inf(-1)
	for label, w := range c.weights {
		var score float64
		for d := range w {
			score += w[d] * x[d]
		}
		if c.attackNoise > 0 {
			score += c.attackNoise * gaussian(c.rng)
		}
		if score > bestScore {
			best, bestScore = label, score
		}
	}
	return best
}

// EstimateInaccuracy measures a classifier's error rate over n sampled
// inputs: the benchmark's stand-in for the paper's "average inaccuracy of
// LeNet, AlexNet and ResNet on GTSRB" (their p = 0.08).
func (b *SignBenchmark) EstimateInaccuracy(c *Classifier, n int, rng *des.RNG) (float64, error) {
	if n <= 0 {
		return 0, errors.New("mlsim: sample count must be positive")
	}
	errs := 0
	for i := 0; i < n; i++ {
		x, label := b.Sample(rng)
		if c.Classify(x) != label {
			errs++
		}
	}
	return float64(errs) / float64(n), nil
}

// EstimateEnsembleInaccuracy returns the mean inaccuracy over a set of
// classifiers, mirroring the paper's averaging over three networks.
func (b *SignBenchmark) EstimateEnsembleInaccuracy(cs []*Classifier, n int, rng *des.RNG) (float64, error) {
	if len(cs) == 0 {
		return 0, errors.New("mlsim: no classifiers")
	}
	var total float64
	for _, c := range cs {
		p, err := b.EstimateInaccuracy(c, n, rng)
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total / float64(len(cs)), nil
}

// gaussian draws a standard normal sample via Box-Muller.
func gaussian(rng *des.RNG) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}
