// Package shadow is the N-version self-checking layer of the serving
// stack: for a sampled fraction of production solves it re-solves the
// same parameter point on a deliberately different numerical path (the
// rung chosen by nvp.Model.ShadowRung) and compares the two steady-state
// distributions against tight agreement bands. The fallback chain and
// the distribution guards catch solves that fail loudly; the shadow
// layer exists for the one class they cannot catch — a solve that
// converges to a plausible but wrong answer. Divergences increment
// shadow.diverge, land as structured events in the obs event ring, and
// flip the /healthz numerics field, so a silent numerical regression
// becomes a paging signal instead of a quietly wrong reliability curve.
//
// Verification runs on its own worker pool with its own model cache and
// workspace arena, strictly off the request path: the caller hands over
// a copy of the primary result and returns immediately. A full queue
// sheds load (shadow.skipped) rather than back-pressuring the server,
// so enabling shadowing leaves request latency untouched.
package shadow

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nvrel/internal/linalg"
	"nvrel/internal/nvp"
	"nvrel/internal/obs"
	"nvrel/internal/petri"
)

// Default agreement tolerances. Every rung pair shares them: GS accepts
// at a 1e-14 relative-delta floor, GTH is direct elimination (exact to
// rounding), and uniformized power iterates to the same family of
// stopping rules, so honest solves of the paper's models (hundreds of
// states, well-conditioned generators) agree to ~1e-12 in L-inf. 1e-9
// leaves three orders of headroom for conditioning while still sitting
// five orders below the smallest corruption worth catching (the
// linalg.gs.drift chaos site moves 1e-4 of the modal mass).
const (
	DefaultPiTol  = 1e-9
	DefaultRelTol = 1e-9
)

// Verdict labels for a completed shadow comparison.
const (
	VerdictAgree   = "agree"
	VerdictDiverge = "diverge"
	VerdictSkipped = "skipped"
	VerdictError   = "error"
)

// agreementBounds bucket the observed L-inf disagreement between the
// primary and shadow distributions. The interesting structure is all
// below 1e-8 (honest agreement) and above 1e-6 (corruption), so the
// bands tighten there.
var agreementBounds = []float64{1e-16, 1e-14, 1e-12, 1e-10, 1e-9, 1e-8, 1e-6, 1e-4, 1e-2, 1}

// Aggregate counters, resolved once like the solver metrics. The
// verifier additionally keeps per-instance atomics so /healthz can
// report its own numerics status even when several verifiers share the
// process (tests, self-serve loadgen).
var (
	metSampled = obs.CounterFor("shadow.sampled")
	metAgree   = obs.CounterFor("shadow.agree")
	metDiverge = obs.CounterFor("shadow.diverge")
	metSkipped = obs.CounterFor("shadow.skipped")
	metError   = obs.CounterFor("shadow.error")
)

// Config sizes a Verifier.
type Config struct {
	// Rate is the sampled fraction of solves in [0, 1]. Sampling is a
	// deterministic hash of the cache key, so a given parameter point is
	// either always or never shadowed at a fixed rate — reruns are
	// reproducible and the sampled set is stable across peers.
	Rate float64
	// PiTol is the L-inf agreement band on the steady-state
	// distribution (default DefaultPiTol).
	PiTol float64
	// RelTol is the absolute agreement band on E[R_sys] (default
	// DefaultRelTol).
	RelTol float64
	// Workers is the verification pool size (default 1); shadow solves
	// are deliberately cheap background work.
	Workers int
	// Queue bounds the pending-job channel (default 64). A full queue
	// skips rather than blocks.
	Queue int
	// Timeout bounds one shadow solve (default 30s).
	Timeout time.Duration
	// Source tags flight records and events ("serve", "sweep", ...).
	Source string
}

// Job is one sampled primary solve handed to the verifier. Pi must be a
// copy the verifier may keep.
type Job struct {
	Arch    string // "4v" | "6v"
	Params  nvp.Params
	KeyHash string
	TraceID uint64
	Pi      []float64
	Rel     float64
	Diag    petri.SolveDiag
}

// Stats is a point-in-time read of one verifier's outcome counts.
// Sampled == Agree+Diverge+Skipped+Errors once the queue is drained.
type Stats struct {
	Sampled int64 `json:"sampled"`
	Agree   int64 `json:"agree"`
	Diverge int64 `json:"diverge"`
	Skipped int64 `json:"skipped"`
	Errors  int64 `json:"errors"`
}

// Verifier owns the shadow worker pool. It builds models through its
// own cache and solves on its own arena so verification never contends
// with the request path for warm state.
type Verifier struct {
	cfg   Config
	cache *nvp.ModelCache
	arena *linalg.Arena

	mu      sync.RWMutex // guards jobs vs Close
	closed  bool
	jobs    chan Job
	workers sync.WaitGroup
	pending sync.WaitGroup

	sampled atomic.Int64
	agree   atomic.Int64
	diverge atomic.Int64
	skipped atomic.Int64
	errs    atomic.Int64
}

// New starts a verifier with cfg's pool. Callers must Close it.
func New(cfg Config) *Verifier {
	if cfg.PiTol <= 0 {
		cfg.PiTol = DefaultPiTol
	}
	if cfg.RelTol <= 0 {
		cfg.RelTol = DefaultRelTol
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Source == "" {
		cfg.Source = "serve"
	}
	v := &Verifier{
		cfg:   cfg,
		cache: nvp.NewModelCache(),
		arena: linalg.NewArena(),
		jobs:  make(chan Job, cfg.Queue),
	}
	v.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer v.workers.Done()
			for job := range v.jobs {
				v.verify(job)
			}
		}()
	}
	return v
}

// Sampled reports whether the deterministic sampler selects keyHash at
// the configured rate: the upper 53 bits of an FNV-64a rehash of the
// key hash, mapped to [0, 1).
func (v *Verifier) Sampled(keyHash string) bool {
	if v.cfg.Rate <= 0 {
		return false
	}
	if v.cfg.Rate >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(keyHash))
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return u < v.cfg.Rate
}

// Offer samples the job and, when selected, enqueues it for async
// verification. It never blocks: a full queue counts the job as
// skipped. Returns whether the job was enqueued.
func (v *Verifier) Offer(job Job) bool {
	if v == nil || !v.Sampled(job.KeyHash) {
		return false
	}
	v.sampled.Add(1)
	metSampled.Inc()
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		v.skipped.Add(1)
		metSkipped.Inc()
		return false
	}
	v.pending.Add(1)
	select {
	case v.jobs <- job:
		return true
	default:
		v.pending.Done()
		v.skipped.Add(1)
		metSkipped.Inc()
		return false
	}
}

// Flush blocks until every enqueued job has been verified. Drivers call
// it before reading counters or dumping flight state.
func (v *Verifier) Flush() {
	if v == nil {
		return
	}
	v.pending.Wait()
}

// Close drains the queue and stops the workers. Offers after Close are
// counted as skipped.
func (v *Verifier) Close() {
	if v == nil {
		return
	}
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return
	}
	v.closed = true
	close(v.jobs)
	v.mu.Unlock()
	v.workers.Wait()
}

// Stats snapshots this verifier's outcome counts.
func (v *Verifier) Stats() Stats {
	if v == nil {
		return Stats{}
	}
	return Stats{
		Sampled: v.sampled.Load(),
		Agree:   v.agree.Load(),
		Diverge: v.diverge.Load(),
		Skipped: v.skipped.Load(),
		Errors:  v.errs.Load(),
	}
}

// Healthy reports whether no divergence has been observed.
func (v *Verifier) Healthy() bool { return v == nil || v.diverge.Load() == 0 }

// verify runs one shadow comparison on a worker goroutine.
func (v *Verifier) verify(job Job) {
	defer v.pending.Done()
	start := time.Now()
	oc := &Outcome{}
	finish := func() {
		oc.ElapsedSeconds = time.Since(start).Seconds()
		AttachOutcome(job.KeyHash, oc)
	}

	var (
		model *nvp.Model
		err   error
	)
	if job.Arch == "4v" {
		model, err = v.cache.BuildNoRejuvenation(job.Params)
	} else {
		model, err = v.cache.BuildWithRejuvenation(job.Params)
	}
	if err != nil {
		v.fail(job, oc, "", fmt.Errorf("rebuild model: %w", err))
		finish()
		return
	}
	rung := model.ShadowRung(job.Diag)
	oc.Rung = rung
	if rung == "" {
		// The primary already exhausted the chain (or the architecture
		// has a single formulation); nothing independent to compare.
		v.skipped.Add(1)
		metSkipped.Inc()
		oc.Verdict = VerdictSkipped
		finish()
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), v.cfg.Timeout)
	ws := v.arena.Get()
	pi, _, err := model.SolveRungCtxWS(ctx, ws, rung)
	v.arena.Put(ws)
	cancel()
	if err != nil {
		v.fail(job, oc, rung, fmt.Errorf("shadow rung %s: %w", rung, err))
		finish()
		return
	}
	rel, err := model.ExpectedPaperReliabilityFrom(pi)
	if err != nil {
		v.fail(job, oc, rung, fmt.Errorf("shadow rung %s reward: %w", rung, err))
		finish()
		return
	}

	primary := primaryLabel(model, job.Diag)
	piDelta := linfDelta(job.Pi, pi)
	relDelta := math.Abs(job.Rel - rel)
	oc.PiDelta, oc.RelDelta = piDelta, relDelta
	obs.HistogramFor("shadow.agreement."+primary+"_vs_"+rung, agreementBounds).Observe(piDelta)

	if piDelta > v.cfg.PiTol || relDelta > v.cfg.RelTol {
		v.diverge.Add(1)
		metDiverge.Inc()
		oc.Verdict = VerdictDiverge
		ev := obs.Event{
			Time:           time.Now().UTC(),
			Method:         "shadow",
			Key:            job.KeyHash,
			Path:           primary,
			LatencySeconds: time.Since(start).Seconds(),
			Error: fmt.Sprintf("shadow diverged on rung %s: |dpi|=%.3g (tol %.3g) |dR|=%.3g (tol %.3g)",
				rung, piDelta, v.cfg.PiTol, relDelta, v.cfg.RelTol),
		}
		if job.TraceID != 0 {
			ev.TraceID = obs.FormatTraceID(job.TraceID)
		}
		obs.RecordEvent(ev)
	} else {
		v.agree.Add(1)
		metAgree.Inc()
		oc.Verdict = VerdictAgree
	}
	finish()
}

// fail records a shadow solve that itself errored. A broken shadow path
// is evidence too — it shows up in metrics and the flight ring rather
// than vanishing.
func (v *Verifier) fail(job Job, oc *Outcome, rung string, err error) {
	v.errs.Add(1)
	metError.Inc()
	oc.Verdict = VerdictError
	oc.Error = err.Error()
	ev := obs.Event{
		Time:   time.Now().UTC(),
		Method: "shadow",
		Key:    job.KeyHash,
		Error:  err.Error(),
	}
	if rung != "" {
		ev.Path = rung
	}
	if job.TraceID != 0 {
		ev.TraceID = obs.FormatTraceID(job.TraceID)
	}
	obs.RecordEvent(ev)
}

// primaryLabel names the path that produced the primary result, for the
// per-pair agreement histogram.
func primaryLabel(model *nvp.Model, diag petri.SolveDiag) string {
	if model.SolverKind() == "ctmc" {
		return diag.Path.String()
	}
	// For MRGP PowerIters carries the sparse path's cycle count; the
	// dense formulation reports zero.
	if diag.PowerIters > 0 {
		return "mrgp-sparse"
	}
	return "mrgp-dense"
}

// linfDelta is the L-inf distance between two distributions; length
// mismatch (a reachability-graph discrepancy, the worst possible
// divergence) saturates to 1.
func linfDelta(a, b []float64) float64 {
	if len(a) != len(b) {
		return 1
	}
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
